// Applies the paper's three content-level optimisations to the Microscape
// page and reports the cumulative payload savings:
//   1. transport compression (deflate on the HTML),
//   2. CSS1 replacement of text/bullet/spacer images,
//   3. GIF->PNG and animated-GIF->MNG conversion,
// ending with the paper's back-of-the-envelope modem download estimate.
#include <cstdio>

#include "content/css.hpp"
#include "content/gif.hpp"
#include "content/microscape.hpp"
#include "content/mng.hpp"
#include "content/png.hpp"
#include "deflate/deflate.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  using namespace hsim::content;
  const MicroscapeSite& site = harness::shared_site();

  const std::size_t html = site.html.size();
  const std::size_t images = site.total_image_bytes();
  const std::size_t original = html + images;
  std::printf("Microscape page: %zu bytes HTML + %zu bytes images = %zu "
              "total\n\n",
              html, images, original);

  // 1. Transport compression.
  const std::size_t html_deflated =
      deflate::zlib_compress(std::span<const std::uint8_t>(
                                 reinterpret_cast<const std::uint8_t*>(
                                     site.html.data()),
                                 site.html.size()))
          .size();
  std::printf("1. deflate the HTML:      %6zu -> %6zu bytes (%.1fx)\n", html,
              html_deflated, static_cast<double>(html) / html_deflated);

  // 2. CSS replacement.
  const CssAnalysis css = analyze_replacements(site.css_replacements());
  std::printf("2. CSS replacement:       -%zu bytes of GIFs, +%zu of markup, "
              "-%zu requests\n",
              css.gif_bytes_replaceable, css.css_bytes, css.requests_saved);

  // 3. PNG/MNG conversion of the images CSS could not replace.
  std::size_t remaining_gif = 0, converted = 0;
  for (const SiteImage& img : site.images) {
    if (img.animated) {
      remaining_gif += img.gif_bytes.size();
      converted += encode_mng(img.source_animation).size();
      continue;
    }
    const ImageReplacement r = make_replacement(
        img.path, img.kind, img.gif_bytes.size(), img.width, img.height);
    if (r.replaceable) continue;  // already handled by CSS
    remaining_gif += img.gif_bytes.size();
    converted += encode_png(img.source).size();
  }
  std::printf("3. PNG/MNG conversion:    %6zu -> %6zu bytes on the "
              "unreplaced images\n\n",
              remaining_gif, converted);

  const std::size_t optimized =
      html_deflated + css.css_bytes + converted;
  std::printf("Fully optimised payload:  %zu bytes (%.0f%% of the "
              "original)\n",
              optimized, 100.0 * optimized / original);

  const double modem_bytes_per_sec = 28'800.0 / 8.0;
  std::printf("\n28.8k modem download estimate: %.1fs -> %.1fs (%.0f%% of "
              "the HTTP/1.0 time;\nthe paper's back-of-the-envelope estimate "
              "was ~60%%)\n",
              original / modem_bytes_per_sec,
              optimized / modem_bytes_per_sec, 100.0 * optimized / original);
  return 0;
}
