// General-purpose experiment runner: compose any network / server / client /
// scenario combination from the command line and choose the output format.
//
// Usage:
//   run_experiment [--net lan|wan|ppp|mobile] [--server jigsaw|apache|apache-b2]
//                  [--mode 1.0|1.1|pipe|pipec|h2] [--scenario first|reval]
//                  [--runs N] [--seed S]
//                  [--buffer BYTES] [--flush-ms MS] [--no-explicit-flush]
//                  [--max-conns N] [--no-nodelay] [--ranges]
//                  [--cc reno|newreno|cubic|bbr]
//                  [--profile flat|NAME|FILE] [--content paper|modern|avif]
//                  [--chaos FAULT] [--format summary|tsv|trace]
//
// --chaos layers a named fault regime (see harness/chaos.hpp) onto the run
// and arms the client's recovery machinery: none, burst-loss, outage,
// link-flaps, duplication, reordering, corruption, server-stall,
// premature-close, server-errors.
//
// --profile overlays a time-varying netem link profile on the access path:
// "flat" (the identity — byte-exact with the static link), a built-in name
// (3g-drive, 4g-walk, lte-stationary, wifi-congested) or a profiles/*.netem
// file. Unset, the HSIM_PROFILE environment variable is consulted.
// --content swaps the 1997 GIF payloads for WebP-class ("modern") or
// AVIF-class ("avif") encodings of the same page.
//
// Examples:
//   run_experiment --net ppp --mode pipec --scenario first
//   run_experiment --net wan --server apache --mode pipe --format tsv
//   run_experiment --net lan --mode 1.0 --format trace | head -40
//   run_experiment --net wan --mode pipe --chaos burst-loss
//   run_experiment --net wan --mode 1.1 --chaos server-stall --format trace
//   run_experiment --net mobile --profile 3g-drive --mode pipe
//   run_experiment --net mobile --profile 4g-walk --content modern --mode h2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/chaos.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"
#include "server/static_site.hpp"

namespace {

using namespace hsim;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--net lan|wan|ppp|mobile] [--server jigsaw|apache|"
               "apache-b2]\n"
               "          [--mode 1.0|1.1|pipe|pipec|h2] [--scenario first|reval]"
               "\n"
               "          [--runs N] [--seed S] [--buffer BYTES] "
               "[--flush-ms MS]\n"
               "          [--no-explicit-flush] [--max-conns N] "
               "[--no-nodelay] [--ranges]\n"
               "          [--cc reno|newreno|cubic|bbr]\n"
               "          [--profile flat|3g-drive|4g-walk|lte-stationary|"
               "wifi-congested|FILE]\n"
               "          [--content paper|modern|avif]\n"
               "          [--chaos none|burst-loss|outage|link-flaps|"
               "duplication|reordering|\n"
               "                   corruption|server-stall|premature-close|"
               "server-errors]\n"
               "          [--format summary|tsv|trace]\n",
               argv0);
  std::exit(2);
}

struct Options {
  harness::NetworkProfile network = harness::wan_profile();
  server::ServerConfig server = server::jigsaw_config();
  client::ProtocolMode mode = client::ProtocolMode::kHttp11Pipelined;
  harness::Scenario scenario = harness::Scenario::kFirstVisit;
  unsigned runs = 3;
  std::uint64_t seed = 1;
  std::string format = "summary";
  // Client overrides (SIZE_MAX / -1 = leave default).
  std::size_t buffer = SIZE_MAX;
  int flush_ms = -1;
  bool no_explicit_flush = false;
  unsigned max_conns = 0;
  bool no_nodelay = false;
  bool ranges = false;
  harness::ChaosFault chaos = harness::ChaosFault::kNone;
  bool chaos_set = false;  // "--chaos none" still arms the recovery knobs
  tcp::CcKind cc = tcp::CcKind::kReno;
  std::string profile;     // netem overlay; empty consults HSIM_PROFILE
  std::string content = "paper";
};

const content::MicroscapeSite& site_for(const Options& o) {
  if (o.content == "modern") {
    return harness::shared_modern_site(content::ModernCodec::kWebP);
  }
  if (o.content == "avif") {
    return harness::shared_modern_site(content::ModernCodec::kAvif);
  }
  return harness::shared_site();
}

harness::ChaosFault parse_fault(const std::string& v, const char* argv0) {
  if (v == "none") return harness::ChaosFault::kNone;
  for (const harness::ChaosFault fault : harness::all_chaos_faults()) {
    if (v == to_string(fault)) return fault;
  }
  usage(argv0);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--net") {
      const std::string v = need_value(i);
      if (v == "lan") o.network = harness::lan_profile();
      else if (v == "wan") o.network = harness::wan_profile();
      else if (v == "ppp") o.network = harness::ppp_profile();
      else if (v == "mobile") o.network = harness::mobile_profile();
      else usage(argv[0]);
    } else if (a == "--server") {
      const std::string v = need_value(i);
      if (v == "jigsaw") o.server = server::jigsaw_config();
      else if (v == "apache") o.server = server::apache_config();
      else if (v == "apache-b2") o.server = server::apache_beta2_config();
      else usage(argv[0]);
    } else if (a == "--mode") {
      const std::string v = need_value(i);
      if (v == "1.0") o.mode = client::ProtocolMode::kHttp10Parallel;
      else if (v == "1.1") o.mode = client::ProtocolMode::kHttp11Persistent;
      else if (v == "pipe") o.mode = client::ProtocolMode::kHttp11Pipelined;
      else if (v == "pipec")
        o.mode = client::ProtocolMode::kHttp11PipelinedCompressed;
      else if (v == "h2") o.mode = client::ProtocolMode::kH2;
      else usage(argv[0]);
    } else if (a == "--scenario") {
      const std::string v = need_value(i);
      if (v == "first") o.scenario = harness::Scenario::kFirstVisit;
      else if (v == "reval") o.scenario = harness::Scenario::kRevalidation;
      else usage(argv[0]);
    } else if (a == "--runs") {
      o.runs = static_cast<unsigned>(std::atoi(need_value(i)));
      if (o.runs == 0) usage(argv[0]);
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
    } else if (a == "--buffer") {
      o.buffer = static_cast<std::size_t>(std::atoll(need_value(i)));
    } else if (a == "--flush-ms") {
      o.flush_ms = std::atoi(need_value(i));
    } else if (a == "--no-explicit-flush") {
      o.no_explicit_flush = true;
    } else if (a == "--max-conns") {
      o.max_conns = static_cast<unsigned>(std::atoi(need_value(i)));
    } else if (a == "--no-nodelay") {
      o.no_nodelay = true;
    } else if (a == "--ranges") {
      o.ranges = true;
    } else if (a == "--cc") {
      if (!tcp::parse_cc_kind(need_value(i), &o.cc)) usage(argv[0]);
    } else if (a == "--profile") {
      o.profile = need_value(i);
      try {  // fail fast on an unknown name / unparsable file
        bool flat = false;
        (void)harness::resolve_profile(o.profile, &flat);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        std::exit(2);
      }
    } else if (a == "--content") {
      o.content = need_value(i);
      if (o.content != "paper" && o.content != "modern" &&
          o.content != "avif") {
        usage(argv[0]);
      }
    } else if (a == "--chaos") {
      o.chaos = parse_fault(need_value(i), argv[0]);
      o.chaos_set = true;
    } else if (a == "--format") {
      o.format = need_value(i);
      if (o.format != "summary" && o.format != "tsv" && o.format != "trace") {
        usage(argv[0]);
      }
    } else {
      usage(argv[0]);
    }
  }
  return o;
}

int run_trace_format(const Options& o) {
  // Single run with the full tcpdump-style trace on stdout.
  const content::MicroscapeSite& site = site_for(o);

  // Route the chaos mutations through an ExperimentSpec so the trace path
  // injects exactly what run_once would.
  harness::ExperimentSpec spec;
  spec.server = o.server;
  spec.client = harness::robot_config(o.mode);
  spec.server.tcp.cc = o.cc;
  spec.client.tcp.cc = o.cc;
  if (o.chaos_set) harness::apply_chaos(o.chaos, spec);
  net::ChannelConfig channel_config = o.network.channel_config();
  if (spec.mutate_channel) spec.mutate_channel(channel_config);
  harness::apply_profile_overlay(o.profile, channel_config, "access");

  sim::EventQueue queue;
  sim::Rng rng(o.seed);
  net::Channel channel(queue, channel_config, rng.fork());
  tcp::Host client_host(queue, 1, "client", rng.fork());
  tcp::Host server_host(queue, 2, "server", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());
  net::PacketTrace trace(1);
  channel.set_trace(&trace);
  server::HttpServer server(server_host,
                            server::StaticSite::from_microscape(site),
                            spec.server, rng.fork());
  server.start(80);
  client::ClientConfig config = spec.client;
  config.tcp.recv_buffer =
      std::min(config.tcp.recv_buffer, o.network.client_recv_buffer);
  config.validate_with_ranges = o.ranges;
  client::Robot robot(client_host, 2, 80, config);
  if (o.scenario == harness::Scenario::kRevalidation) {
    robot.start_first_visit("/index.html", [] {});
    queue.run_until(sim::seconds(600));
    trace.clear();
    robot.start_revalidation("/index.html", [] {});
  } else {
    robot.start_first_visit("/index.html", [] {});
  }
  queue.run_until(queue.now() + sim::seconds(600));
  std::fputs(trace.to_text().c_str(), stdout);
  const net::TraceSummary s = trace.summarize();
  std::fprintf(stderr,
               "# %llu packets, %llu wire bytes, %.1f%% overhead, "
               "%zu retransmitted, longest gap %.3fs\n",
               static_cast<unsigned long long>(s.packets),
               static_cast<unsigned long long>(s.wire_bytes),
               s.overhead_percent, trace.retransmitted_data_packets(),
               sim::to_seconds(trace.longest_quiet_gap()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.format == "trace") return run_trace_format(o);

  harness::ExperimentSpec spec;
  spec.network = o.network;
  spec.server = o.server;
  spec.client = harness::robot_config(o.mode);
  spec.scenario = o.scenario;
  spec.seed = o.seed;
  spec.profile = o.profile;
  spec.server.tcp.cc = o.cc;
  spec.client.tcp.cc = o.cc;
  if (o.buffer != SIZE_MAX) spec.client.pipeline_buffer = o.buffer;
  if (o.flush_ms >= 0) {
    spec.client.flush_timeout = sim::milliseconds(o.flush_ms);
  }
  if (o.no_explicit_flush) spec.client.explicit_first_flush = false;
  if (o.max_conns > 0) spec.client.max_connections = o.max_conns;
  if (o.no_nodelay) spec.client.nodelay = false;
  spec.client.validate_with_ranges = o.ranges;
  if (o.chaos_set) harness::apply_chaos(o.chaos, spec);

  const harness::AveragedResult r =
      harness::run_averaged(spec, site_for(o), o.runs);

  if (o.format == "tsv") {
    std::printf("network\tserver\tmode\tscenario\truns\tpackets\tbytes\t"
                "seconds\toverhead_pct\tc2s\ts2c\tconns\ttrain\tcomplete\n");
    std::printf("%s\t%s\t%s\t%s\t%u\t%.1f\t%.0f\t%.3f\t%.1f\t%.1f\t%.1f\t"
                "%.1f\t%.1f\t%d\n",
                o.network.name.c_str(), o.server.server_name.c_str(),
                std::string(client::to_string(o.mode)).c_str(),
                std::string(harness::to_string(o.scenario)).c_str(), o.runs,
                r.packets, r.bytes, r.seconds, r.overhead_percent,
                r.packets_c2s, r.packets_s2c, r.connections,
                r.mean_packet_train, r.all_complete ? 1 : 0);
    return 0;
  }

  std::printf("Network:  %s\nServer:   %s\nClient:   %s\nScenario: %s "
              "(%u runs)\n\n",
              o.network.name.c_str(), o.server.server_name.c_str(),
              std::string(client::to_string(o.mode)).c_str(),
              std::string(harness::to_string(o.scenario)).c_str(), o.runs);
  std::printf("%s\n", harness::render_summary_line("result", r).c_str());
  if (!r.all_complete) {
    std::printf("WARNING: at least one run did not complete\n");
    return 1;
  }
  return 0;
}
