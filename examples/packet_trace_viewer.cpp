// Shows the trace/analysis API: runs one pipelined first visit over the WAN,
// prints the opening of the tcpdump-style listing, packet-train statistics
// and an xplot-style time/sequence excerpt — the paper's own tooling
// (tcpdump, xplot) recreated against the simulator.
#include <cstdio>

#include "harness/experiment.hpp"
#include "server/static_site.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  sim::EventQueue queue;
  sim::Rng rng(7);
  net::Channel channel(queue, harness::wan_profile().channel_config(),
                       rng.fork());
  tcp::Host client_host(queue, 1, "client", rng.fork());
  tcp::Host server_host(queue, 2, "server", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());
  net::PacketTrace trace(1);
  channel.set_trace(&trace);

  server::HttpServer server(server_host,
                            server::StaticSite::from_microscape(site),
                            server::jigsaw_config(), rng.fork());
  server.start(80);
  client::Robot robot(
      client_host, 2, 80,
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  robot.start_first_visit("/index.html", [] {});
  queue.run_until(sim::seconds(120));

  std::printf("First 30 packets of the pipelined first visit (WAN):\n%s\n",
              trace.to_text(30).c_str());

  const net::TraceSummary s = trace.summarize();
  std::printf("Summary: %llu packets, %llu wire bytes, mean packet %.0f "
              "bytes, overhead %.1f%%\n",
              static_cast<unsigned long long>(s.packets),
              static_cast<unsigned long long>(s.wire_bytes),
              s.mean_packet_size, s.overhead_percent);
  std::printf("Connections in trace: %zu, mean packet train %.1f packets\n\n",
              trace.connection_count(), trace.mean_packet_train_length());

  const std::string ts = trace.to_time_sequence(/*client_to_server=*/false);
  std::printf("xplot-style time/sequence data (server->client), first 10 "
              "lines:\n");
  std::size_t printed = 0, pos = 0;
  while (printed < 10 && pos < ts.size()) {
    const std::size_t eol = ts.find('\n', pos);
    if (eol == std::string::npos) break;
    std::printf("  %s\n", ts.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++printed;
  }
  return 0;
}
