// Quickstart: fetch the Microscape page over a simulated WAN with each of
// the paper's four protocol configurations and print what tcpdump would see.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();
  std::printf("Microscape test site: HTML %zu bytes, %zu images, "
              "%zu image bytes\n\n",
              site.html.size(), site.images.size(), site.total_image_bytes());

  const client::ProtocolMode modes[] = {
      client::ProtocolMode::kHttp10Parallel,
      client::ProtocolMode::kHttp11Persistent,
      client::ProtocolMode::kHttp11Pipelined,
      client::ProtocolMode::kHttp11PipelinedCompressed,
  };

  std::printf("First-time retrieval, Jigsaw profile, WAN (~90ms RTT):\n");
  for (const auto mode : modes) {
    harness::ExperimentSpec spec;
    spec.network = harness::wan_profile();
    spec.server = server::jigsaw_config();
    spec.client = harness::robot_config(mode);
    spec.scenario = harness::Scenario::kFirstVisit;
    const harness::AveragedResult r = harness::run_averaged(spec, site, 3);
    std::printf("%s\n",
                harness::render_summary_line(
                    std::string(client::to_string(mode)), r)
                    .c_str());
  }

  std::printf("\nCache validation, same setup:\n");
  for (const auto mode : modes) {
    harness::ExperimentSpec spec;
    spec.network = harness::wan_profile();
    spec.server = server::jigsaw_config();
    spec.client = harness::robot_config(mode);
    spec.scenario = harness::Scenario::kRevalidation;
    const harness::AveragedResult r = harness::run_averaged(spec, site, 3);
    std::printf("%s\n",
                harness::render_summary_line(
                    std::string(client::to_string(mode)), r)
                    .c_str());
  }
  return 0;
}
