// Runs the paper's full protocol matrix over a chosen network environment
// and prints a Table 4..9-style summary.
//
// Usage: compare_protocols [lan|wan|ppp] [jigsaw|apache] [runs]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  harness::NetworkProfile network = harness::wan_profile();
  server::ServerConfig server_config = server::jigsaw_config();
  unsigned runs = 3;

  if (argc > 1) {
    if (std::strcmp(argv[1], "lan") == 0) network = harness::lan_profile();
    else if (std::strcmp(argv[1], "wan") == 0) network = harness::wan_profile();
    else if (std::strcmp(argv[1], "ppp") == 0) network = harness::ppp_profile();
    else {
      std::fprintf(stderr, "usage: %s [lan|wan|ppp] [jigsaw|apache] [runs]\n",
                   argv[0]);
      return 2;
    }
  }
  if (argc > 2 && std::strcmp(argv[2], "apache") == 0) {
    server_config = server::apache_config();
  }
  if (argc > 3) runs = static_cast<unsigned>(std::atoi(argv[3]));

  const content::MicroscapeSite& site = harness::shared_site();
  std::printf("Network: %s   Server: %s   (%u runs per cell)\n\n",
              network.name.c_str(), server_config.server_name.c_str(), runs);

  std::vector<harness::TableRow> rows;
  const client::ProtocolMode modes[] = {
      client::ProtocolMode::kHttp10Parallel,
      client::ProtocolMode::kHttp11Persistent,
      client::ProtocolMode::kHttp11Pipelined,
      client::ProtocolMode::kHttp11PipelinedCompressed,
  };
  for (const auto mode : modes) {
    // The paper omits HTTP/1.0 for the modem link.
    if (network.bandwidth_bps < 100'000 &&
        mode == client::ProtocolMode::kHttp10Parallel) {
      continue;
    }
    harness::TableRow row;
    row.label = std::string(client::to_string(mode));
    harness::ExperimentSpec spec;
    spec.network = network;
    spec.server = server_config;
    spec.client = harness::robot_config(mode);
    spec.scenario = harness::Scenario::kFirstVisit;
    row.first_visit = harness::run_averaged(spec, site, runs);
    spec.scenario = harness::Scenario::kRevalidation;
    row.revalidation = harness::run_averaged(spec, site, runs);
    rows.push_back(std::move(row));
  }
  std::printf("%s\n",
              harness::render_table("Protocol comparison", rows, false).c_str());
  return 0;
}
