// Demonstrates why HTTP/1.1's persistent-connection signalling differs from
// HTTP/1.0 Keep-Alive: a blind relay proxy forwards the hop-by-hop
// "Connection: Keep-Alive" header to the origin, the origin obligingly holds
// its connection open, and the relay — which only closes when the origin
// closes — leaves everything hanging (paper, "Changes to HTTP").
#include <cstdio>

#include "harness/experiment.hpp"
#include "http/parser.hpp"
#include "proxy/proxy.hpp"
#include "server/server.hpp"
#include "server/static_site.hpp"

namespace {
using namespace hsim;

struct Router : net::PacketSink {
  std::map<net::IpAddr, net::Link*> routes;
  void deliver(net::Packet p) override {
    if (auto it = routes.find(p.dst); it != routes.end()) {
      it->second->transmit(std::move(p));
    }
  }
};

void run(bool strip_connection_headers) {
  sim::EventQueue queue;
  sim::Rng rng(1);
  net::Channel cp(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(20)),
                  rng.fork());
  net::Channel po(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(20)),
                  rng.fork());
  tcp::Host client(queue, 1, "client", rng.fork());
  tcp::Host proxy_host(queue, 2, "proxy", rng.fork());
  tcp::Host origin(queue, 3, "origin", rng.fork());
  net::Link proxy_uplink(queue, net::LinkConfig{}, rng.fork());
  Router router;
  cp.attach_a(&client);
  cp.attach_b(&proxy_host);
  po.attach_a(&proxy_host);
  po.attach_b(&origin);
  client.attach_uplink(&cp.uplink_from_a());
  origin.attach_uplink(&po.uplink_from_b());
  router.routes[1] = &cp.uplink_from_b();
  router.routes[3] = &po.uplink_from_a();
  proxy_uplink.set_sink(&router);
  proxy_host.attach_uplink(&proxy_uplink);

  server::ServerConfig oc = server::apache_config();
  oc.keep_alive = true;
  oc.idle_timeout = sim::seconds(300);
  server::HttpServer origin_server(
      origin, server::StaticSite::from_microscape(harness::shared_site()), oc,
      rng.fork());
  origin_server.start(80);

  proxy::TunnelProxyConfig tc;
  tc.origin_addr = 3;
  tc.strip_connection_headers = strip_connection_headers;
  tc.idle_timeout = sim::seconds(120);
  proxy::TunnelProxy tunnel(proxy_host, tc);
  tunnel.start(8080);

  auto conn = client.connect(2, 8080, tcp::TcpOptions{});
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  sim::Time response_at = -1, closed_at = -1;
  conn->set_on_data([&] {
    parser.feed(conn->read_all());
    if (parser.next() && response_at < 0) response_at = queue.now();
  });
  conn->set_on_peer_fin([&] {
    closed_at = queue.now();
    conn->shutdown_send();  // well-behaved client closes its half too
  });
  conn->set_on_connected([&] {
    conn->send("GET /images/img00.gif HTTP/1.0\r\nHost: microscape\r\n"
               "Connection: Keep-Alive\r\n\r\n");
  });
  queue.run_until(sim::seconds(400));

  std::printf("%s proxy:\n",
              strip_connection_headers ? "Header-aware" : "Blind");
  std::printf("  response delivered at %.2fs\n",
              sim::to_seconds(response_at));
  if (closed_at >= 0) {
    std::printf("  connection closed at  %.2fs%s\n",
                sim::to_seconds(closed_at),
                closed_at > sim::seconds(100)
                    ? "  <-- only the proxy's 120s idle reaper saved us"
                    : "");
  } else {
    std::printf("  connection NEVER closed (still hung)\n");
  }
  std::printf("  Connection headers stripped: %llu, idle hangups: %llu\n\n",
              static_cast<unsigned long long>(
                  tunnel.stats().keep_alive_headers_stripped),
              static_cast<unsigned long long>(tunnel.stats().idle_hangups));
}

}  // namespace

int main() {
  std::printf("The HTTP/1.0 Keep-Alive-through-proxies trap\n");
  std::printf("============================================\n\n");
  std::printf(
      "A client sends \"Connection: Keep-Alive\" through a relay proxy to\n"
      "an origin that honours it. Hop-by-hop headers forwarded blindly\n"
      "deadlock the relay: the origin waits for more requests, the proxy\n"
      "waits for the origin to close.\n\n");
  run(/*strip_connection_headers=*/false);
  run(/*strip_connection_headers=*/true);
  std::printf(
      "HTTP/1.1's fix: persistence is the default, Connection is defined\n"
      "as hop-by-hop, and proxies MUST strip it and the headers it names\n"
      "(see proxy::HttpProxy::strip_hop_by_hop).\n");
  return 0;
}
