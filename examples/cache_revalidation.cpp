// Walks through the cache-revalidation flow in detail: a first visit
// populates the client cache with validators; a revalidation visit turns 43
// GETs into 43 conditional GETs answered by tiny 304s; the packet trace of
// the revalidation is printed tcpdump-style.
#include <cstdio>

#include "harness/experiment.hpp"
#include "server/static_site.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  sim::EventQueue queue;
  sim::Rng rng(2024);
  const harness::NetworkProfile network = harness::wan_profile();
  net::Channel channel(queue, network.channel_config(), rng.fork());
  tcp::Host client_host(queue, 1, "client", rng.fork());
  tcp::Host server_host(queue, 2, "server", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());

  server::HttpServer server(server_host,
                            server::StaticSite::from_microscape(site),
                            server::apache_config(), rng.fork());
  server.start(80);

  client::ClientConfig config =
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  client::Robot robot(client_host, 2, 80, config);

  std::printf("First visit (populates the cache)...\n");
  robot.start_first_visit("/index.html", [] {});
  queue.run_until(sim::seconds(120));
  std::printf("  cache entries: %zu, bytes fetched: %llu, elapsed %.2fs\n\n",
              robot.cache().size(),
              static_cast<unsigned long long>(robot.stats().body_bytes),
              robot.stats().elapsed_seconds());

  const client::CacheEntry* html = robot.cache().find("/index.html");
  if (html != nullptr) {
    std::printf("Cached /index.html validators: ETag %s, Last-Modified %s\n\n",
                html->etag.c_str(),
                http::format_http_date(html->last_modified).c_str());
  }

  // Trace only the revalidation.
  net::PacketTrace trace(1);
  channel.set_trace(&trace);
  std::printf("Revalidation visit (43 conditional GETs)...\n");
  robot.start_revalidation("/index.html", [] {});
  queue.run_until(queue.now() + sim::seconds(120));

  std::printf("  304 responses: %zu, body bytes transferred: %llu, "
              "elapsed %.2fs\n",
              robot.stats().responses_not_modified,
              static_cast<unsigned long long>(robot.stats().body_bytes),
              robot.stats().elapsed_seconds());
  const net::TraceSummary s = trace.summarize();
  std::printf("  packets: %llu (%llu c->s, %llu s->c), wire bytes: %llu, "
              "overhead %.1f%%\n\n",
              static_cast<unsigned long long>(s.packets),
              static_cast<unsigned long long>(s.packets_client_to_server),
              static_cast<unsigned long long>(s.packets_server_to_client),
              static_cast<unsigned long long>(s.wire_bytes),
              s.overhead_percent);

  std::printf("tcpdump-style trace of the revalidation:\n%s",
              trace.to_text(40).c_str());
  return 0;
}
