// Many-client scale experiment: the paper's HTTP/1.0 vs HTTP/1.1 comparison
// *in aggregate*. N independent clients behind one shared bottleneck fetch
// the Microscape site from one server; we report total packets, server
// connection churn, median/p95 page time and Jain's fairness index at
// N = 10 / 100 / 1000.
//
// The paper's single-robot tables show HTTP/1.1 saving packets and
// connections per client; this experiment shows the aggregate effect the
// paper argues for — fewer connections and packets per client means less
// server and network load when everyone contends for the same link.
//
// Deterministic: a fixed master seed makes every number below reproducible
// byte-for-byte (same seed -> identical output).
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace {
using namespace hsim;

harness::WorkloadConfig base_config(unsigned n, client::ProtocolMode mode) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = n;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(100);
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 10'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 256;
  cfg.master_seed = 42;

  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 128;
  cfg.server.max_concurrent_connections = 64;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;

  cfg.client = harness::robot_config(mode);
  // Harden the clients so overload resolves instead of hanging: bounded
  // retries with backoff and a page deadline that attributes stragglers.
  cfg.client.max_attempts = 8;
  cfg.client.retry_backoff = sim::milliseconds(200);
  cfg.client.page_deadline = sim::seconds(420);
  cfg.client.retry_server_errors = true;
  return cfg;
}

void run_row(unsigned n, client::ProtocolMode mode) {
  const harness::WorkloadConfig cfg = base_config(n, mode);
  const harness::WorkloadResult r =
      harness::run_workload(cfg, harness::shared_site());

  std::printf(
      "%-20s | %8llu | %7llu | %7llu | %6.2f | %6.2f | %6.4f | %4u/%-4u\n",
      std::string(to_string(mode)).c_str(),
      static_cast<unsigned long long>(r.bottleneck.packets),
      static_cast<unsigned long long>(r.server_connections_total),
      static_cast<unsigned long long>(r.bottleneck_queue_drops),
      r.median_page_seconds(), r.p95_page_seconds(), r.jain_fairness_index(),
      r.completed(), n);
  if (!r.all_resolved() || r.server_open_after_drain != 0) {
    std::printf("  !! anomaly: resolved=%s leaked_server_conns=%zu\n",
                r.all_resolved() ? "yes" : "NO", r.server_open_after_drain);
  }
}

void run_table(unsigned n) {
  std::printf("N = %u clients (Poisson arrivals, mean 100 ms; 10 Mbit/s "
              "shared bottleneck; backlog 128; 64 served concurrently)\n",
              n);
  std::printf("%-20s | %8s | %7s | %7s | %6s | %6s | %6s | %s\n", "Mode",
              "Packets", "Conns", "Drops", "MedSec", "p95Sec", "Jain",
              "Done");
  std::printf("%s\n", std::string(92, '-').c_str());
  run_row(n, client::ProtocolMode::kHttp10Parallel);
  run_row(n, client::ProtocolMode::kHttp11Persistent);
  run_row(n, client::ProtocolMode::kHttp11Pipelined);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Many-client aggregate: HTTP/1.0 vs HTTP/1.1 ===\n");
  std::printf("Site: Microscape first visit per client.  Columns: total\n"
              "bottleneck packets, server connections created (churn),\n"
              "bottleneck queue drops, median and 95th-percentile page\n"
              "seconds, Jain's fairness index over completed pages.\n\n");
  run_table(10);
  run_table(100);
  run_table(1000);
  return 0;
}
