// Reproduces Table 9: Apache, low bandwidth / high latency (28.8k PPP).
#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using bench::PaperRow;
  using client::ProtocolMode;
  const std::vector<PaperRow> rows = {
      {"HTTP/1.1", ProtocolMode::kHttp11Persistent,
       {308.6, 187869, 65.6, 6.2}, {89.0, 13843, 11.1, 20.5}},
      {"HTTP/1.1 Pipelined", ProtocolMode::kHttp11Pipelined,
       {281.4, 187918, 53.4, 5.7}, {26.0, 13912, 3.4, 7.0}},
      {"HTTP/1.1 Pipelined w. compression",
       ProtocolMode::kHttp11PipelinedCompressed,
       {233.0, 157214, 47.2, 5.6}, {26.0, 13905, 3.4, 7.0}},
      // The paper predates HTTP/2; this row extrapolates the study with the
      // multiplexed framing layer (one connection, server push). No paper
      // numbers exist, so no "(paper)" line is printed.
      {"HTTP/2 mux", ProtocolMode::kH2, {}, {}},
  };
  bench::run_protocol_table("Table 9 - Apache - Low Bandwidth, High Latency",
                            harness::ppp_profile(), server::apache_config(),
                            rows);
  return 0;
}
