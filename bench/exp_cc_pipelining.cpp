// Does the paper's pipelining win survive modern congestion control?
//
// The headline HTTP/1.1 result (one pipelined connection beats 4-parallel
// HTTP/1.0 on packets and elapsed time) was measured under a 1997-era Reno
// TCP. This experiment reruns the RED-dumbbell contention bench — N = 100
// clients sharing a T1-class bottleneck, the configuration where PR 5 showed
// the pipelining win under contention — once per congestion-control module
// (Reno / NewReno / CUBIC / BBR-lite), with both endpoints of every
// connection switched via WorkloadConfig::cc.
//
// Besides the contention columns, each row reports the aggregate loss
// forensics the CC refactor surfaces through the registry (tcp.cc.*):
// fast-recovery entries, RTO episodes, the dangerous recovery->loss
// transitions, and NewReno-style partial-ACK hole repairs.
//
// Deterministic: one fixed master seed; same seed -> byte-identical table,
// including RED's drop pattern (its own forked stream) and every module's
// window arithmetic (integer/double math on simulated time only).
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"
#include "tcp/congestion.hpp"

namespace {
using namespace hsim;

constexpr unsigned kClients = 100;
constexpr std::int64_t kBottleneckBps = 1'544'000;  // T1-class shared pipe

harness::WorkloadConfig base_config(client::ProtocolMode mode,
                                    tcp::CcKind cc) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = kClients;
  cfg.topology = harness::TopologyKind::kDumbbell;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(100);
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = kBottleneckBps;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 64;  // tight: contention must be visible
  cfg.bottleneck_queue.kind = topo::QueueDiscKind::kRed;
  cfg.master_seed = 42;
  cfg.cc = cc;

  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 128;
  cfg.server.max_concurrent_connections = 64;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;

  cfg.client = harness::robot_config(mode);
  cfg.client.max_attempts = 8;
  cfg.client.retry_backoff = sim::milliseconds(200);
  cfg.client.page_deadline = sim::seconds(420);
  cfg.client.retry_server_errors = true;
  return cfg;
}

void run_row(tcp::CcKind cc, client::ProtocolMode mode) {
  const harness::WorkloadResult r =
      harness::run_workload(base_config(mode, cc), harness::shared_site());

  std::uint64_t drops = 0;
  for (const harness::QueueSummary& q : r.queues) drops += q.stats.dropped();
  std::printf(
      "%-8s | %-12s | %7.2fs | %8llu | %7llu | %6llu | %6.2f | %6.2f | "
      "%6.4f | %4u/%-4u | %5llu | %4llu | %5llu | %6llu\n",
      std::string(to_string(cc)).c_str(),
      std::string(to_string(mode)).c_str(), r.bottleneck.elapsed_seconds(),
      static_cast<unsigned long long>(r.bottleneck.packets),
      static_cast<unsigned long long>(r.tcp_retransmits),
      static_cast<unsigned long long>(drops), r.median_page_seconds(),
      r.p95_page_seconds(), r.jain_fairness_index(), r.completed(), kClients,
      static_cast<unsigned long long>(
          r.metrics.counter("tcp.cc.enter_recovery")),
      static_cast<unsigned long long>(r.metrics.counter("tcp.cc.enter_loss")),
      static_cast<unsigned long long>(
          r.metrics.counter("tcp.cc.recovery_to_loss")),
      static_cast<unsigned long long>(
          r.metrics.counter("tcp.cc.partial_ack_retransmits")));
  if (!r.all_resolved() || r.server_open_after_drain != 0) {
    std::printf("  !! anomaly: resolved=%s leaked_server_conns=%zu\n",
                r.all_resolved() ? "yes" : "NO", r.server_open_after_drain);
  }
}

}  // namespace

int main() {
  std::printf("=== CC x pipelining: the paper's win under modern congestion "
              "control ===\n");
  std::printf(
      "N = %u clients, %.3f Mbit/s shared dumbbell bottleneck, RED queue\n"
      "(64 packets/direction). Both endpoints of every connection run the\n"
      "row's CC module. Rec/Loss/R->L/PAretx are the aggregate tcp.cc.*\n"
      "loss-forensics counters (fast-recovery entries, RTO episodes,\n"
      "recovery->loss transitions, partial-ACK hole repairs).\n\n",
      kClients, static_cast<double>(kBottleneckBps) / 1e6);
  std::printf(
      "%-8s | %-12s | %8s | %8s | %7s | %6s | %6s | %6s | %6s | %9s | "
      "%5s | %4s | %5s | %6s\n",
      "CC", "Mode", "Elapsed", "Packets", "Retrans", "Drops", "MedSec",
      "p95Sec", "Jain", "Done", "Rec", "Loss", "R->L", "PAretx");
  std::printf("%s\n", std::string(132, '-').c_str());
  for (const tcp::CcKind cc : tcp::kAllCcKinds) {
    run_row(cc, client::ProtocolMode::kHttp10Parallel);
    run_row(cc, client::ProtocolMode::kHttp11Pipelined);
  }
  return 0;
}
