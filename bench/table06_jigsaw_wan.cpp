// Reproduces Table 6: Jigsaw, high bandwidth / high latency (WAN).
#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using bench::PaperRow;
  using client::ProtocolMode;
  const std::vector<PaperRow> rows = {
      {"HTTP/1.0", ProtocolMode::kHttp10Parallel,
       {565.8, 251913, 4.17, 8.2}, {389.2, 62348, 2.96, 20.0}},
      {"HTTP/1.1", ProtocolMode::kHttp11Persistent,
       {304.0, 193595, 6.64, 5.9}, {137.0, 18065.6, 4.95, 23.3}},
      {"HTTP/1.1 Pipelined", ProtocolMode::kHttp11Pipelined,
       {214.2, 193887, 2.33, 4.2}, {34.8, 18233.2, 1.10, 7.1}},
      {"HTTP/1.1 Pipelined w. compression",
       ProtocolMode::kHttp11PipelinedCompressed,
       {183.2, 161698, 2.09, 4.3}, {35.4, 19102.2, 1.15, 6.9}},
      // The paper predates HTTP/2; this row extrapolates the study with the
      // multiplexed framing layer (one connection, server push). No paper
      // numbers exist, so no "(paper)" line is printed.
      {"HTTP/2 mux", ProtocolMode::kH2, {}, {}},
  };
  bench::run_protocol_table("Table 6 - Jigsaw - High Bandwidth, High Latency",
                            harness::wan_profile(), server::jigsaw_config(),
                            rows);
  return 0;
}
