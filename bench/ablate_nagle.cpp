// Ablation: the Nagle interaction (paper §"Nagle Interaction").
//
// A pipelined implementation that buffers its output well rarely trips the
// Nagle algorithm; one that dribbles small writes interacts badly with it
// and can suffer "very significant performance degradation". The scenario
// is a WAN first visit, where image requests are generated progressively as
// the HTML arrives — so an unbuffered client issues many small writes while
// earlier request bytes are still unacknowledged. Four cells:
//   {well-buffered, small writes} x {Nagle on, TCP_NODELAY}.
#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  struct Cell {
    const char* label;
    bool buffered;
    bool nodelay;
  };
  const Cell cells[] = {
      {"buffered output, TCP_NODELAY", true, true},
      {"buffered output, Nagle on", true, false},
      {"small writes,    TCP_NODELAY", false, true},
      {"small writes,    Nagle on", false, false},
  };

  std::printf("=== Ablation: Nagle x output buffering (pipelined first "
              "visit, Jigsaw, WAN) ===\n\n");
  std::printf("%-34s %8s %8s %10s\n", "Configuration", "Pa", "Sec", "Bytes");
  for (const Cell& cell : cells) {
    harness::ExperimentSpec spec;
    spec.network = harness::wan_profile();
    spec.server = server::jigsaw_config();
    spec.client =
        harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
    spec.client.nodelay = cell.nodelay;
    spec.client.tcp.nodelay = cell.nodelay;
    spec.server.nodelay = cell.nodelay;
    if (!cell.buffered) {
      spec.client.pipeline_buffer = 1;  // write each request as generated
      spec.client.explicit_first_flush = false;
      spec.client.flush_timeout = sim::milliseconds(1);
    }
    spec.scenario = harness::Scenario::kFirstVisit;
    const harness::RunResult r = harness::run_once(spec, site);
    std::printf("%-34s %8.0f %8.2f %10.0f\n", cell.label, r.packets(),
                r.seconds(), r.bytes());
  }
  std::printf(
      "\nExpected shape: with good buffering Nagle is harmless (identical\n"
      "rows); with small writes Nagle coalesces packets at the cost of\n"
      "waiting for ACKs, while TCP_NODELAY spends more, smaller packets.\n"
      "Hence the paper's advice: implementations that buffer output should\n"
      "set TCP_NODELAY.\n");
  return 0;
}
