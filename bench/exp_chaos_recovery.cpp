// Chaos-recovery experiment: the retrieval cost of surviving faults.
//
// For every fault regime × protocol mode this runs a full Microscape first
// visit on the WAN profile and reports how the recovery machinery paid for
// it: wall-clock time, wire packets, retries, deadline firings, and whether
// the site arrived byte-exact. The interesting comparison is *across modes*:
// a pipelined HTTP/1.1 client concentrates all requests on one connection,
// so a single fault has a wider blast radius than in HTTP/1.0's four-way
// parallel mode — but it also recovers with far fewer new connections.
#include <cstdio>

#include "harness/chaos.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  const client::ProtocolMode modes[] = {
      client::ProtocolMode::kHttp10Parallel,
      client::ProtocolMode::kHttp11Persistent,
      client::ProtocolMode::kHttp11Pipelined,
      client::ProtocolMode::kHttp11PipelinedCompressed,
  };

  std::printf("=== Chaos recovery: Microscape first visit, WAN profile ===\n");
  std::printf("%-16s %-34s %7s %8s %7s %7s %9s %6s\n", "Fault", "Mode", "Sec",
              "Packets", "Retries", "Failed", "Deadlines", "Exact");
  std::printf("%s\n", std::string(100, '-').c_str());

  std::vector<harness::ChaosFault> faults = {harness::ChaosFault::kNone};
  const auto injected = harness::all_chaos_faults();
  faults.insert(faults.end(), injected.begin(), injected.end());

  for (const harness::ChaosFault fault : faults) {
    for (const client::ProtocolMode mode : modes) {
      const harness::ChaosOutcome outcome =
          harness::run_chaos(fault, mode, site, /*seed=*/1);
      const client::RobotStats& robot = outcome.result.robot;
      std::printf("%-16s %-34s %7.2f %8.0f %7zu %7zu %9zu %6s\n",
                  std::string(to_string(fault)).c_str(),
                  std::string(to_string(mode)).c_str(),
                  robot.elapsed_seconds(), outcome.result.packets(),
                  robot.retries, robot.requests_failed,
                  robot.request_deadlines_fired,
                  outcome.byte_exact ? "yes" : "NO");
    }
    std::printf("\n");
  }
  return 0;
}
