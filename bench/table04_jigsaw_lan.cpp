// Reproduces Table 4: Jigsaw, high bandwidth / low latency (LAN).
#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using bench::PaperRow;
  using client::ProtocolMode;
  const std::vector<PaperRow> rows = {
      {"HTTP/1.0", ProtocolMode::kHttp10Parallel,
       {510.2, 216289, 0.97, 8.6}, {374.8, 61117, 0.78, 19.7}},
      {"HTTP/1.1", ProtocolMode::kHttp11Persistent,
       {281.0, 191843, 1.25, 5.5}, {133.4, 17694, 0.89, 23.2}},
      {"HTTP/1.1 Pipelined", ProtocolMode::kHttp11Pipelined,
       {181.8, 191551, 0.68, 3.7}, {32.8, 17694, 0.54, 6.9}},
      {"HTTP/1.1 Pipelined w. compression",
       ProtocolMode::kHttp11PipelinedCompressed,
       {148.8, 159654, 0.71, 3.6}, {32.6, 17687, 0.54, 6.9}},
      // The paper predates HTTP/2; this row extrapolates the study with the
      // multiplexed framing layer (one connection, server push). No paper
      // numbers exist, so no "(paper)" line is printed.
      {"HTTP/2 mux", ProtocolMode::kH2, {}, {}},
  };
  bench::run_protocol_table("Table 4 - Jigsaw - High Bandwidth, Low Latency",
                            harness::lan_profile(), server::jigsaw_config(),
                            rows);
  return 0;
}
