// Extension experiment: "poor man's multiplexing" (paper §"Range Requests
// and Validation"). A revalidation visit after the site's largest image
// changed: plain conditional GETs re-transfer the whole new image, while
// If-None-Match + Range: bytes=0-N retrieves only its metadata prefix.
#include <cstdio>

#include "harness/experiment.hpp"
#include "obs/metrics.hpp"
#include "server/static_site.hpp"

namespace {

using namespace hsim;

struct Outcome {
  double seconds = 0;
  double body_bytes = 0;
  double packets = 0;
};

Outcome run(bool with_ranges, const harness::NetworkProfile& network) {
  // All reported numbers come out of the metrics registry (trace.* for the
  // measured packets, client.* for page time and body bytes), same as the
  // harness-driven table benches.
  obs::Registry registry;
  obs::ScopedRegistry scoped(&registry);

  const content::MicroscapeSite& site = harness::shared_site();
  sim::EventQueue queue;
  sim::Rng rng(17);
  net::Channel channel(queue, network.channel_config(), rng.fork());
  tcp::Host client_host(queue, 1, "client", rng.fork());
  tcp::Host server_host(queue, 2, "server", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());
  net::PacketTrace trace(1);

  server::HttpServer server(server_host,
                            server::StaticSite::from_microscape(site),
                            server::apache_config(), rng.fork());
  server.start(80);
  client::ClientConfig config =
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  config.validate_with_ranges = with_ranges;
  config.tcp.recv_buffer =
      std::min(config.tcp.recv_buffer, network.client_recv_buffer);
  client::Robot robot(client_host, 2, 80, config);

  bool done = false;
  robot.start_first_visit("/index.html", [&] { done = true; });
  queue.run_until(sim::seconds(600));

  // Revise the hero image before revalidating.
  std::string hero;
  std::size_t hero_size = 0;
  for (const auto& img : site.images) {
    if (img.gif_bytes.size() > hero_size) {
      hero_size = img.gif_bytes.size();
      hero = img.path;
    }
  }
  server.site().update(hero, std::vector<std::uint8_t>(hero_size, 0x5A),
                       http::kSimulationEpoch + 100);

  channel.set_trace(&trace);
  done = false;
  robot.start_revalidation("/index.html", [&] { done = true; });
  queue.run_until(queue.now() + sim::seconds(600));

  Outcome o;
  o.seconds = sim::to_seconds(registry.gauge_value("client.page_finished_ns") -
                              registry.gauge_value("client.page_started_ns"));
  o.body_bytes =
      static_cast<double>(registry.gauge_value("client.body_bytes"));
  o.packets = static_cast<double>(registry.counter_value("trace.packets"));
  return o;
}

}  // namespace

int main() {
  using namespace hsim;
  std::printf("=== Range validation (\"poor man's multiplexing\"): "
              "revalidation after the ~40 KB hero image changed ===\n\n");
  std::printf("%-8s %-22s %8s %10s %8s\n", "Network", "Validation", "Sec",
              "BodyBytes", "Pa");
  for (const auto& network : {harness::wan_profile(), harness::ppp_profile()}) {
    for (const bool ranges : {false, true}) {
      const Outcome o = run(ranges, network);
      std::printf("%-8.*s %-22s %8.2f %10.0f %8.0f\n", 3, network.name.c_str(),
                  ranges ? "If-None-Match + Range" : "If-None-Match only",
                  o.seconds, o.body_bytes, o.packets);
    }
  }
  std::printf(
      "\nThe bounded Range keeps a changed large object from monopolizing\n"
      "the single HTTP/1.1 connection: the client gets the new metadata\n"
      "immediately and can schedule the full fetch on its own terms.\n");
  return 0;
}
