// Reproduces Table 3: the paper's *initial*, untuned high-bandwidth
// low-latency cache-revalidation measurements, taken before the buffer
// tuning described in "Initial Investigations and Tuning":
//   - the pipelined client used a 1-second flush timer and no explicit
//     application flush;
//   - the HTTP/1.0 robot revalidated with one GET plus 42 HEADs;
//   - the interesting result: persistent and even pipelined HTTP/1.1 had
//     *worse elapsed time* than HTTP/1.0 despite far fewer packets.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using client::ProtocolMode;
  const content::MicroscapeSite& site = harness::shared_site();

  struct Row {
    const char* label;
    ProtocolMode mode;
    double paper_c2s, paper_s2c, paper_total, paper_sec, paper_sockets;
  };
  const Row rows[] = {
      {"HTTP/1.0", ProtocolMode::kHttp10Parallel, 226, 271, 497, 1.85, 40},
      {"HTTP/1.1 Persistent", ProtocolMode::kHttp11Persistent, 70, 153, 223,
       4.13, 1},
      {"HTTP/1.1 Pipeline", ProtocolMode::kHttp11Pipelined, 25, 58, 83, 3.02,
       1},
  };

  std::printf(
      "=== Table 3 - Jigsaw - Initial (untuned) High Bandwidth, Low Latency "
      "Cache Revalidation ===\n");
  std::printf("Pipelined client untuned: 1 s flush timer, no explicit "
              "flush.\n\n");
  std::printf("%-22s %8s %8s %8s %7s %8s\n", "Mode", "c->s Pa", "s->c Pa",
              "Total", "Sec", "Sockets");
  for (const Row& row : rows) {
    harness::ExperimentSpec spec;
    spec.network = harness::lan_profile();
    spec.server = server::jigsaw_config();
    spec.client = harness::robot_config(row.mode);
    // Untuned pipelining: rely on the long flush timer only.
    spec.client.flush_timeout = sim::seconds(1);
    spec.client.explicit_first_flush = false;
    spec.scenario = harness::Scenario::kRevalidation;
    const harness::AveragedResult r = harness::run_averaged(spec, site, 5);
    std::printf("%-22s %8.1f %8.1f %8.1f %7.2f %8.1f\n", row.label,
                r.packets_c2s, r.packets_s2c, r.packets, r.seconds,
                r.connections);
    std::printf("%-22s %8.0f %8.0f %8.0f %7.2f %8.0f\n", "  (paper)",
                row.paper_c2s, row.paper_s2c, row.paper_total, row.paper_sec,
                row.paper_sockets);
  }
  std::printf(
      "\nNote: as in the paper, the untuned pipelined client saves packets\n"
      "but pays elapsed-time penalties waiting on its own flush timer.\n");
  return 0;
}
