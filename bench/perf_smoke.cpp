// Machine-readable perf trajectory seed (ROADMAP "hot-path speed pass").
//
// Runs the N = 1000 dumbbell contention workload once (the configuration the
// event-queue rewrite and the zero-copy pipeline were judged on) and emits
// BENCH_tcp.json: wall seconds, simulated packets/sec, events/sec and a few
// identifying dimensions. The JSON is written both to stdout and, when a
// path is given, to the file named by argv[1] — CI checks a result in per PR
// so perf claims stop living only in commit messages.
//
// The *simulation outputs* (packets, events, simulated seconds) are
// deterministic for the fixed seed; only the wall-clock figures vary run to
// run, which is exactly what a trajectory wants: stable work, measured time.
#include <chrono>
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace {
using namespace hsim;

harness::WorkloadConfig config() {
  harness::WorkloadConfig cfg;
  cfg.num_clients = 1000;
  cfg.topology = harness::TopologyKind::kDumbbell;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(10);
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 10'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 256;
  cfg.master_seed = 42;
  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 512;
  cfg.server.max_concurrent_connections = 256;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;
  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  cfg.client.page_deadline = sim::seconds(420);
  return cfg;
}

// The h2 smoke: the same N = 1000 fleet on the legacy star topology, every
// client a multiplexed session with server push. The star keeps the framing
// layer itself (frame encode/decode, scheduler, flow control) the hot path
// rather than router queueing. Emits BENCH_h2.json.
harness::WorkloadConfig h2_config() {
  harness::WorkloadConfig cfg;
  cfg.num_clients = 1000;
  cfg.topology = harness::TopologyKind::kStar;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(10);
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 10'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 256;
  cfg.master_seed = 42;
  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 512;
  cfg.server.max_concurrent_connections = 256;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;
  cfg.client = harness::robot_config(client::ProtocolMode::kH2);
  cfg.client.page_deadline = sim::seconds(420);
  return cfg;
}

// The netem smoke: a pipelined star fleet with the 3g-drive mobile profile
// on every access link. Half the fleet of the tcp smoke — the time-varying
// 300k–3.5M down link stretches each page load an order of magnitude, and
// 500 clients already give a multi-minute simulated horizon. Emits
// BENCH_netem.json.
harness::WorkloadConfig netem_config() {
  harness::WorkloadConfig cfg;
  cfg.num_clients = 500;
  cfg.topology = harness::TopologyKind::kStar;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(10);
  cfg.access = harness::mobile_profile();
  cfg.profile = "3g-drive";
  cfg.bottleneck_bandwidth_bps = 10'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 256;
  cfg.master_seed = 42;
  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 512;
  cfg.server.max_concurrent_connections = 256;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;
  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  cfg.client.page_deadline = sim::seconds(420);
  return cfg;
}

std::uint64_t total_h2_frames(const obs::Snapshot& m) {
  static const char* kSent[] = {
      "h2.frames_sent.data",          "h2.frames_sent.headers",
      "h2.frames_sent.rst_stream",    "h2.frames_sent.settings",
      "h2.frames_sent.push_promise",  "h2.frames_sent.goaway",
      "h2.frames_sent.window_update",
  };
  std::uint64_t total = 0;
  for (const char* name : kSent) total += m.counter(name);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const auto t0 = std::chrono::steady_clock::now();
  const harness::WorkloadResult r =
      harness::run_workload(config(), harness::shared_site());
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // The bottleneck tap alone would undercount the access legs;
  // net.link.packets_sent is the unlabelled aggregate every link feeds,
  // the honest "packets simulated".
  const std::uint64_t packets = r.metrics.counter(
      "net.link.packets_sent", r.bottleneck.packets);
  const std::uint64_t events = r.events_executed;
  const double sim_seconds = r.bottleneck.elapsed_seconds();

  char json[1024];
  std::snprintf(
      json, sizeof json,
      "{\n"
      "  \"bench\": \"perf_smoke\",\n"
      "  \"area\": \"tcp\",\n"
      "  \"workload\": \"dumbbell pipelined N=1000, 10 Mbit/s, seed 42\",\n"
      "  \"clients\": 1000,\n"
      "  \"completed\": %u,\n"
      "  \"bottleneck_packets\": %llu,\n"
      "  \"packets_delivered\": %llu,\n"
      "  \"events_executed\": %llu,\n"
      "  \"sim_seconds\": %.3f,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"packets_per_sec\": %.0f,\n"
      "  \"events_per_sec\": %.0f\n"
      "}\n",
      r.completed(), static_cast<unsigned long long>(r.bottleneck.packets),
      static_cast<unsigned long long>(packets),
      static_cast<unsigned long long>(events), sim_seconds, wall_seconds,
      static_cast<double>(packets) / wall_seconds,
      static_cast<double>(events) / wall_seconds);
  std::fputs(json, stdout);

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", argv[1]);
      return 1;
    }
    std::fputs(json, f);
    std::fclose(f);
  }

  // ---- h2 smoke ----------------------------------------------------------
  const auto t1 = std::chrono::steady_clock::now();
  const harness::WorkloadResult h2r =
      harness::run_workload(h2_config(), harness::shared_site());
  const double h2_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  // Frame counters aggregate the client sessions AND the server's (both
  // bind the same registry names), i.e. every frame any session emitted.
  const std::uint64_t frames = total_h2_frames(h2r.metrics);
  const std::uint64_t stalls = h2r.metrics.counter("h2.flow_stalls");
  const std::uint64_t pushes = h2r.metrics.counter("h2.pushes_accepted");
  const std::uint64_t h2_events = h2r.events_executed;

  char h2json[1024];
  std::snprintf(
      h2json, sizeof h2json,
      "{\n"
      "  \"bench\": \"perf_smoke\",\n"
      "  \"area\": \"h2\",\n"
      "  \"workload\": \"star h2 multiplexed N=1000, 10 Mbit/s, seed 42\",\n"
      "  \"clients\": 1000,\n"
      "  \"completed\": %u,\n"
      "  \"h2_frames\": %llu,\n"
      "  \"flow_control_stalls\": %llu,\n"
      "  \"pushes_accepted\": %llu,\n"
      "  \"events_executed\": %llu,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"frames_per_sec\": %.0f,\n"
      "  \"events_per_sec\": %.0f\n"
      "}\n",
      h2r.completed(), static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(stalls),
      static_cast<unsigned long long>(pushes),
      static_cast<unsigned long long>(h2_events), h2_wall,
      static_cast<double>(frames) / h2_wall,
      static_cast<double>(h2_events) / h2_wall);
  std::fputs(h2json, stdout);

  if (argc > 2) {
    std::FILE* f = std::fopen(argv[2], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", argv[2]);
      return 1;
    }
    std::fputs(h2json, f);
    std::fclose(f);
  }

  // ---- netem smoke -------------------------------------------------------
  // The pipelined star fleet again, but with the 3g-drive profile overlaid
  // on every access link: time-indexed serialisation, radio wakeups and the
  // per-transmit profile lookup all sit on the hot path, so this row is the
  // perf trajectory for the netem subsystem. Emits BENCH_netem.json.
  const auto t2 = std::chrono::steady_clock::now();
  const harness::WorkloadResult nr =
      harness::run_workload(netem_config(), harness::shared_site());
  const double netem_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t2)
          .count();

  const std::uint64_t netem_packets = nr.metrics.counter(
      "net.link.packets_sent", nr.bottleneck.packets);
  const std::uint64_t wakeups = nr.metrics.counter("netem.radio_wakeups");
  const std::uint64_t netem_events = nr.events_executed;

  char njson[1024];
  std::snprintf(
      njson, sizeof njson,
      "{\n"
      "  \"bench\": \"perf_smoke\",\n"
      "  \"area\": \"netem\",\n"
      "  \"workload\": \"star pipelined N=500, 3g-drive profile, seed 42\",\n"
      "  \"clients\": 500,\n"
      "  \"completed\": %u,\n"
      "  \"packets_delivered\": %llu,\n"
      "  \"radio_wakeups\": %llu,\n"
      "  \"events_executed\": %llu,\n"
      "  \"sim_seconds\": %.3f,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"packets_per_sec\": %.0f,\n"
      "  \"events_per_sec\": %.0f\n"
      "}\n",
      nr.completed(), static_cast<unsigned long long>(netem_packets),
      static_cast<unsigned long long>(wakeups),
      static_cast<unsigned long long>(netem_events),
      nr.bottleneck.elapsed_seconds(), netem_wall,
      static_cast<double>(netem_packets) / netem_wall,
      static_cast<double>(netem_events) / netem_wall);
  std::fputs(njson, stdout);

  if (argc > 3) {
    std::FILE* f = std::fopen(argv[3], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "perf_smoke: cannot write %s\n", argv[3]);
      return 1;
    }
    std::fputs(njson, f);
    std::fclose(f);
  }
  return 0;
}
