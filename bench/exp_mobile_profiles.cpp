// The paper's question under 2020s networks and payloads.
//
// "Fewer bytes vs fewer round trips" was settled on three static networks
// (LAN/WAN/PPP) with 1997 GIF payloads. This bench re-asks it on the netem
// time-varying profiles — fluctuating cellular bandwidth, radio-wakeup
// latency, deep buffers, asymmetric up/down — crossed with the modern
// content axis (WebP-class payloads, content::modernize_site):
//
//   protocol rows:  HTTP/1.0 x 4 parallel | HTTP/1.1 pipelined | HTTP/2 mux
//   CC modules:     Reno | CUBIC | BBR-lite
//   profiles:       3g-drive | 4g-walk | lte-stationary | wifi-congested
//   content:        paper (GIF histogram) | modern (WebP-class)
//
// Every cell is one run_once first-visit page load over the mobile base
// network with the named profile overlaid on the access channel. The radio
// wakeup count comes from the run's netem.radio_wakeups counter.
//
// Identity oracle: before the grid, the static WAN/LAN baselines (Tables 6
// and 4) are re-run under --profile flat and compared cell-for-cell; any
// divergence fails the bench (non-zero exit), which is what pins the netem
// serialisation fast path to the legacy static-link arithmetic in CI.
//
// Deterministic: one fixed seed; same seed -> byte-identical table.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "tcp/congestion.hpp"

namespace {
using namespace hsim;

constexpr std::uint64_t kSeed = 7;

struct ModeRow {
  const char* name;
  client::ProtocolMode mode;
};

const std::vector<ModeRow>& modes() {
  static const std::vector<ModeRow> rows = {
      {"HTTP/1.0 x4", client::ProtocolMode::kHttp10Parallel},
      {"HTTP/1.1 pipe", client::ProtocolMode::kHttp11Pipelined},
      {"HTTP/2 mux", client::ProtocolMode::kH2},
  };
  return rows;
}

harness::RunResult run_cell(const std::string& profile, tcp::CcKind cc,
                            client::ProtocolMode mode,
                            const content::MicroscapeSite& site) {
  harness::ExperimentSpec spec;
  spec.network = harness::mobile_profile();
  spec.profile = profile;
  spec.scenario = harness::Scenario::kFirstVisit;
  spec.seed = kSeed;
  spec.client = harness::robot_config(mode);
  spec.client.tcp.cc = cc;
  spec.server.tcp.cc = cc;
  return harness::run_once(spec, site);
}

/// Compares a legacy static-link run against the same spec under the flat
/// identity profile. Returns true when every reported quantity matches
/// exactly (same floating-point bits: the flat path must reproduce the
/// legacy arithmetic, not approximate it).
bool flat_identity_row(const char* label, harness::ExperimentSpec spec) {
  spec.profile.clear();
  const harness::RunResult base = harness::run_once(spec, harness::shared_site());
  spec.profile = "flat";
  const harness::RunResult flat = harness::run_once(spec, harness::shared_site());
  const bool identical = base.packets() == flat.packets() &&
                         base.bytes() == flat.bytes() &&
                         base.seconds() == flat.seconds() &&
                         base.overhead_percent() == flat.overhead_percent();
  std::printf("%-28s %8.0f pkts %9.0f B %8.3f s   flat: %8.0f %9.0f %8.3f  %s\n",
              label, base.packets(), base.bytes(), base.seconds(),
              flat.packets(), flat.bytes(), flat.seconds(),
              identical ? "identical" : "DIVERGED");
  return identical;
}

}  // namespace

int main() {
  std::printf("netem identity oracle (static link vs --profile flat):\n");
  bool ok = true;
  ok &= flat_identity_row("Table 4 (1.0x4, Jigsaw, LAN)",
                          harness::golden_table4_spec());
  ok &= flat_identity_row("Table 6 (1.1 pipe, Jigsaw, WAN)",
                          harness::golden_table6_spec());
  if (!ok) {
    std::printf("\nFLAT-PROFILE IDENTITY VIOLATED\n");
    return 1;
  }

  const std::vector<std::string> profiles = {"3g-drive", "4g-walk",
                                             "lte-stationary",
                                             "wifi-congested"};
  const std::vector<tcp::CcKind> ccs = {tcp::CcKind::kReno,
                                        tcp::CcKind::kCubic,
                                        tcp::CcKind::kBbrLite};

  for (const bool modern : {false, true}) {
    const content::MicroscapeSite& site =
        modern ? harness::shared_modern_site() : harness::shared_site();
    std::printf("\n==== content: %s (%zu payload bytes) ====\n",
                modern ? "modern (WebP-class)" : "paper (GIF)",
                site.total_payload_bytes());
    std::printf("%-16s %-14s %-6s %8s %10s %8s %7s %8s\n", "profile",
                "protocol", "cc", "packets", "bytes", "secs", "rexmit",
                "wakeups");
    for (const std::string& profile : profiles) {
      for (const ModeRow& mode : modes()) {
        for (tcp::CcKind cc : ccs) {
          const harness::RunResult r =
              run_cell(profile, cc, mode.mode, site);
          std::printf("%-16s %-14s %-6s %8.0f %10.0f %8.3f %7llu %8llu\n",
                      profile.c_str(), mode.name,
                      std::string(tcp::to_string(cc)).c_str(), r.packets(),
                      r.bytes(), r.seconds(),
                      static_cast<unsigned long long>(
                          r.metrics.counter("tcp.retransmits")),
                      static_cast<unsigned long long>(
                          r.metrics.counter("netem.radio_wakeups")));
        }
      }
    }
  }
  return 0;
}
