// Reproduces Figure 1 and the "Replacing Images with HTML and CSS" analysis:
// the 682-byte "solutions" GIF versus its ~150-byte HTML+CSS equivalent, and
// the page-wide replacement estimate over the Microscape test page.
#include <cstdio>

#include "content/css.hpp"
#include "content/microscape.hpp"
#include "deflate/deflate.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  using namespace hsim::content;
  const MicroscapeSite& site = harness::shared_site();

  // --- Figure 1: the "solutions" banner ---
  const SiteImage& banner = site.images[14];  // fitted to the 682-byte target
  const std::string css = solutions_banner_css();
  std::printf("=== Figure 1 - the \"solutions\" text banner ===\n");
  std::printf("GIF banner:          %5zu bytes  (paper: 682)\n",
              banner.gif_bytes.size());
  std::printf("HTML+CSS equivalent: %5zu bytes  (paper: ~150)\n", css.size());
  std::printf("Reduction factor:    %5.1fx      (paper: >4x)\n\n",
              static_cast<double>(banner.gif_bytes.size()) / css.size());
  std::printf("%s\n", css.c_str());

  // --- Whole-page replacement analysis over the 40 static GIFs ---
  const CssAnalysis a = analyze_replacements(site.css_replacements());
  std::printf("=== Whole-page CSS replacement (40 static GIFs) ===\n");
  std::printf("Replaceable images:       %zu of %zu\n", a.replaceable_images,
              a.total_images);
  std::printf("GIF bytes eliminated:     %zu of %zu (%.0f%%)\n",
              a.gif_bytes_replaceable, a.gif_bytes_total,
              100.0 * a.gif_bytes_replaceable / a.gif_bytes_total);
  std::printf("HTML+CSS bytes added:     %zu\n", a.css_bytes);
  std::printf("Net payload saving:       %zu bytes (%.1fx reduction on "
              "replaced content)\n",
              a.gif_bytes_replaceable - a.css_bytes,
              a.byte_reduction_factor());
  std::printf("HTTP requests eliminated: %zu of 43\n\n", a.requests_saved);

  // The added markup lives inside the HTML, which is itself deflatable —
  // CSS and transport compression compose.
  std::string enriched = site.html;
  for (const ImageReplacement& r : a.images) {
    if (r.replaceable) enriched += r.replacement_markup;
  }
  const auto plain = deflate::zlib_compress(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(enriched.data()),
          enriched.size()));
  std::printf("Enriched HTML (page + replacement markup): %zu bytes, "
              "deflates to %zu\n",
              enriched.size(), plain.size());

  const std::size_t before = site.html.size() + site.total_image_bytes();
  const std::size_t after = enriched.size() + site.total_image_bytes() -
                            a.gif_bytes_replaceable;
  std::printf("\nTotal page payload: %zu -> %zu bytes (%.0f%% of original) "
              "with CSS replacement alone\n",
              before, after, 100.0 * after / before);
  return 0;
}
