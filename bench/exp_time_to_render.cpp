// Extension experiment: perceived performance (the paper's future-work
// "time to render"). Measures, per protocol mode over the 28.8k PPP link:
//   - time to the first decoded HTML byte (first paint of text),
//   - time until the document is fully parsed (layout complete),
//   - time until the first embedded image has arrived,
//   - total page time.
// Compression shines here: the deflated document completes ~3x sooner, long
// before the images finish.
#include <cstdio>

#include "harness/experiment.hpp"
#include "server/static_site.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  std::printf("=== Perceived performance over PPP (Jigsaw, first visit) "
              "===\n\n");
  std::printf("%-36s %10s %12s %12s %8s\n", "Mode", "firstHTML",
              "HTMLcomplete", "firstImage", "total");
  const client::ProtocolMode modes[] = {
      client::ProtocolMode::kHttp11Persistent,
      client::ProtocolMode::kHttp11Pipelined,
      client::ProtocolMode::kHttp11PipelinedCompressed,
  };
  for (const auto mode : modes) {
    sim::EventQueue queue;
    sim::Rng rng(23);
    const auto network = harness::ppp_profile();
    net::Channel channel(queue, network.channel_config(), rng.fork());
    tcp::Host client_host(queue, 1, "c", rng.fork());
    tcp::Host server_host(queue, 2, "s", rng.fork());
    channel.attach_a(&client_host);
    channel.attach_b(&server_host);
    client_host.attach_uplink(&channel.uplink_from_a());
    server_host.attach_uplink(&channel.uplink_from_b());
    server::HttpServer server(server_host,
                              server::StaticSite::from_microscape(site),
                              server::jigsaw_config(), rng.fork());
    server.start(80);
    client::ClientConfig config = harness::robot_config(mode);
    config.tcp.recv_buffer =
        std::min(config.tcp.recv_buffer, network.client_recv_buffer);
    client::Robot robot(client_host, 2, 80, config);
    robot.start_first_visit("/index.html", [] {});
    queue.run_until(sim::seconds(600));
    const client::RobotStats& s = robot.stats();
    std::printf("%-36s %9.2fs %11.2fs %11.2fs %7.1fs\n",
                std::string(client::to_string(mode)).c_str(),
                s.seconds_to_first_html(), s.seconds_to_html_complete(),
                sim::to_seconds(s.first_image_done_at - s.started),
                s.elapsed_seconds());
  }
  std::printf(
      "\nCompression moves \"document fully parsed\" far earlier: the page\n"
      "text is renderable in about a third of the time, even though the\n"
      "total page time (dominated by image bytes) improves less.\n");
  return 0;
}
