// Reproduces two content-level compression findings:
//
// 1. Tag case (paper §"Further Compression Experiments"): "Compression is
//    significantly worse (.35 rather than .27) if mixed case HTML tags are
//    used. The best compression was found if all HTML tags were uniformly
//    lower case."
// 2. Preset dictionaries (paper §"Future Work"): "the use of compression
//    dictionaries optimized for HTML and CSS1 text" — measured here with a
//    real RFC 1950 FDICT stream.
#include <cstdio>
#include <string>

#include "deflate/deflate.hpp"
#include "harness/experiment.hpp"
#include "sim/random.hpp"

namespace {

using namespace hsim;

/// Rewrites tag and attribute names with the given casing policy.
/// policy: 0 = lowercase (as generated), 1 = mixed case, 2 = UPPERCASE.
std::string recase_tags(const std::string& html, int policy,
                        std::uint64_t seed) {
  sim::Rng rng(seed);
  std::string out = html;
  bool in_tag = false;
  bool in_quotes = false;
  bool upper_this_word = false;
  bool at_word_start = true;
  for (char& c : out) {
    if (!in_tag) {
      if (c == '<') {
        in_tag = true;
        at_word_start = true;
      }
      continue;
    }
    if (c == '"') in_quotes = !in_quotes;
    if (in_quotes) continue;
    if (c == '>') {
      in_tag = false;
      continue;
    }
    const bool is_letter =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    if (!is_letter) {
      at_word_start = true;
      continue;
    }
    if (at_word_start) {
      at_word_start = false;
      upper_this_word = policy == 2 || (policy == 1 && rng.chance(0.5));
    }
    if (upper_this_word && c >= 'a' && c <= 'z') {
      c = static_cast<char>(c - 'a' + 'A');
    }
  }
  return out;
}

double ratio(const std::string& text) {
  const auto compressed = deflate::zlib_compress(text);
  return static_cast<double>(compressed.size()) / text.size();
}

}  // namespace

int main() {
  const std::string& html = harness::shared_site().html;

  std::printf("=== Tag case vs deflate ratio (42 KB Microscape HTML) ===\n\n");
  const char* labels[] = {"all lowercase tags", "mixed case tags",
                          "ALL UPPERCASE tags"};
  double ratios[3];
  for (int policy = 0; policy < 3; ++policy) {
    const std::string variant = recase_tags(html, policy, 42);
    ratios[policy] = ratio(variant);
    std::printf("%-22s ratio %.3f\n", labels[policy], ratios[policy]);
  }
  std::printf("\nPaper: 0.27 lowercase vs 0.35 mixed — lowercase lets the\n"
              "compression dictionary reuse common English words. Measured\n"
              "penalty for mixed case: +%.0f%% compressed size.\n\n",
              100.0 * (ratios[1] - ratios[0]) / ratios[0]);

  std::printf("=== Preset HTML dictionary (RFC 1950 FDICT) ===\n\n");
  const auto dict = hsim::deflate::html_preset_dictionary();
  std::printf("Dictionary: %zu bytes of common 1997 markup phrases\n\n",
              dict.size());
  std::printf("%-26s %8s %10s %10s %8s\n", "Document", "Size", "deflate",
              "+dict", "gain");
  struct Doc {
    const char* label;
    std::string text;
  };
  const Doc docs[] = {
      {"tiny page (1 KB)", html.substr(0, 1024)},
      {"small page (4 KB)", html.substr(0, 4096)},
      {"CSS style rule", "P.banner { color: white; background: #FC0; "
                         "font: bold oblique 20px sans-serif; "
                         "padding: 0.2em 10em 0.2em 1em }"},
      {"full page (42 KB)", html},
  };
  for (const Doc& doc : docs) {
    const std::span<const std::uint8_t> bytes(
        reinterpret_cast<const std::uint8_t*>(doc.text.data()),
        doc.text.size());
    const auto plain = hsim::deflate::zlib_compress(bytes);
    const auto with_dict =
        hsim::deflate::zlib_compress_with_dictionary(bytes, dict);
    std::printf("%-26s %8zu %10zu %10zu %7.0f%%\n", doc.label,
                doc.text.size(), plain.size(), with_dict.size(),
                100.0 * (static_cast<double>(plain.size()) -
                         static_cast<double>(with_dict.size())) /
                    static_cast<double>(plain.size()));
  }
  std::printf("\nDictionaries pay off most on small documents — exactly the\n"
              "HTTP headers / small-stylesheet regime the paper's future-work\n"
              "section points at.\n");
  return 0;
}
