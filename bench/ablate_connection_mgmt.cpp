// Ablation: connection management (paper §"Connection Management").
//
// 1. Apache 1.2b2's 5-requests-per-connection limit truncates pipelined
//    bursts: the client reconnects repeatedly and re-sends requests.
// 2. A server that closes both connection halves at once ("naive close")
//    draws RSTs from late pipelined requests and destroys responses the
//    client had received but not read; graceful half-close does not.
#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  std::printf("=== Ablation: max requests per connection (pipelined first "
              "visit, LAN) ===\n\n");
  std::printf("%10s %8s %8s %8s %8s %8s\n", "MaxReq", "Pa", "Sec", "Bytes",
              "Conns", "Retries");
  for (const unsigned limit : {0u, 5u, 10u, 20u}) {
    harness::ExperimentSpec spec;
    spec.network = harness::lan_profile();
    spec.server = server::apache_config();
    spec.server.max_requests_per_connection = limit;
    spec.client =
        harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
    spec.scenario = harness::Scenario::kFirstVisit;
    // Averages hide retry variance; run once deterministically per limit,
    // plus stats from run_once.
    const harness::RunResult r = harness::run_once(spec, site);
    std::printf("%10u %8.0f %8.2f %8.0f %8lu %8zu\n", limit, r.packets(),
                r.seconds(), r.bytes(),
                static_cast<unsigned long>(r.connections_used),
                r.robot.retries);
  }
  std::printf("\n(0 = unlimited; Apache 1.2b2 shipped with 5. \"When using "
              "pipelining, the number of HTTP\nrequests served is often a "
              "poor indicator for when to close the connection.\")\n\n");

  std::printf("=== Ablation: naive close vs graceful half-close "
              "(5-request limit, WAN) ===\n\n");
  std::printf("%-18s %8s %8s %8s %8s %8s\n", "Close style", "Pa", "Sec",
              "Conns", "Retries", "RSTs");
  for (const bool naive : {false, true}) {
    harness::ExperimentSpec spec;
    spec.network = harness::wan_profile();
    spec.server = server::apache_config();
    spec.server.max_requests_per_connection = 5;
    spec.server.close_style =
        naive ? server::CloseStyle::kNaive : server::CloseStyle::kGraceful;
    spec.client =
        harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
    spec.scenario = harness::Scenario::kFirstVisit;
    const harness::RunResult r = harness::run_once(spec, site);
    std::printf("%-18s %8.0f %8.2f %8lu %8zu %8zu\n",
                naive ? "naive (both)" : "graceful (half)", r.packets(),
                r.seconds(), static_cast<unsigned long>(r.connections_used),
                r.robot.retries, r.robot.resets_seen);
  }
  std::printf("\n\"Servers must therefore close each half of the connection "
              "independently.\"\n");
  return 0;
}
