// Parallel-engine scaling matrix (ROADMAP "host-sharded parallel engine").
//
// Runs the contended dumbbell workload over N x T = {1000, 10000} x
// {1, 2, 4, 8} and emits BENCH_parallel.json: wall seconds, simulated
// packets/sec and events/sec per cell, plus std::thread::hardware_concurrency
// so a reader can judge the speedup against the cores that were actually
// available — a single-core container honestly reports ~1x at every T
// rather than a fabricated scaling curve. The simulation outputs per cell
// (packets, events, completed clients) are deterministic and asserted
// identical across the whole thread matrix, so the JSON doubles as a
// determinism check on exactly the configurations the perf claims cite.
//
// The bottleneck bandwidth scales with the fleet (10 Mbit/s per 1000
// clients) and the arrival window shrinks, keeping per-client contention —
// and therefore wall time per client — roughly constant across N.
//
//   exp_parallel_scaling [out.json] [--large]
//
// --large appends the N=100k completion cell (one run, T=4): the
// configuration the sharded engine exists for, included on demand because it
// simulates two orders of magnitude more traffic than the default matrix.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace {
using namespace hsim;

struct Cell {
  unsigned clients;
  unsigned threads;
  unsigned completed;
  std::uint64_t packets;
  std::uint64_t events;
  double sim_seconds;
  double wall_seconds;
};

harness::WorkloadConfig config(unsigned clients) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = clients;
  cfg.topology = harness::TopologyKind::kDumbbell;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  // Same offered load per client at every N: the fleet arrives over ~10 s
  // and shares a pipe sized 10 Mbit/s per 1000 clients.
  cfg.mean_interarrival = sim::seconds(10) / clients;
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 10'000'000LL * (clients / 1000);
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 256;
  cfg.master_seed = 42;
  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 512;
  cfg.server.max_concurrent_connections = 256;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;
  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  cfg.client.page_deadline = sim::seconds(420);
  return cfg;
}

Cell run_cell(unsigned clients, unsigned threads) {
  harness::WorkloadConfig cfg = config(clients);
  cfg.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const harness::WorkloadResult r =
      harness::run_workload(cfg, harness::shared_site());
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  Cell cell;
  cell.clients = clients;
  cell.threads = threads;
  cell.completed = r.completed();
  cell.packets = r.metrics.counter("net.link.packets_sent",
                                   r.bottleneck.packets);
  cell.events = r.events_executed;
  cell.sim_seconds = r.bottleneck.elapsed_seconds();
  cell.wall_seconds = wall;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_parallel.json";
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) {
      large = true;
    } else {
      out_path = argv[i];
    }
  }

  std::vector<Cell> cells;
  bool identical = true;
  if (large) {
    // The completion cell alone: two orders of magnitude more traffic than
    // a matrix cell, so it replaces the matrix rather than extending it.
    cells.push_back(run_cell(100'000, 4));
  } else {
    for (unsigned clients : {1000u, 10000u}) {
      Cell base{};
      for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const Cell cell = run_cell(clients, threads);
        cells.push_back(cell);
        std::fprintf(stderr,
                     "N=%u T=%u: %llu events, %.1fs wall (%.0f events/s)\n",
                     clients, threads,
                     static_cast<unsigned long long>(cell.events),
                     cell.wall_seconds, cell.events / cell.wall_seconds);
        if (threads == 1) {
          base = cell;
        } else if (cell.packets != base.packets ||
                   cell.events != base.events ||
                   cell.completed != base.completed) {
          identical = false;
          std::fprintf(stderr, "DETERMINISM VIOLATION at N=%u T=%u vs T=1\n",
                       clients, threads);
        }
      }
    }
  }

  std::string json = "{\n  \"bench\": \"exp_parallel_scaling\",\n";
  json += "  \"area\": \"parallel\",\n";
  json += "  \"workload\": \"dumbbell pipelined, 10 Mbit/s per 1000 clients, "
          "seed 42\",\n";
  json += "  \"hardware_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += std::string("  \"thread_matrix_identical\": ") +
          (identical ? "true" : "false") + ",\n";
  json += "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "    {\"clients\": %u, \"threads\": %u, \"completed\": %u, "
                  "\"packets_delivered\": %llu, \"events_executed\": %llu, "
                  "\"sim_seconds\": %.3f, \"wall_seconds\": %.3f, "
                  "\"packets_per_sec\": %.0f, \"events_per_sec\": %.0f}%s\n",
                  c.clients, c.threads, c.completed,
                  static_cast<unsigned long long>(c.packets),
                  static_cast<unsigned long long>(c.events), c.sim_seconds,
                  c.wall_seconds, c.packets / c.wall_seconds,
                  c.events / c.wall_seconds,
                  i + 1 < cells.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";
  std::fputs(json.c_str(), stdout);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "exp_parallel_scaling: cannot write %s\n", out_path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  return identical ? 0 : 2;
}
