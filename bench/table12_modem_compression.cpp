// Reproduces the paper's §8.2.1 modem-compression experiment: a single GET
// of the Microscape HTML page over the 28.8k PPP link, uncompressed versus
// served as a pre-deflated entity. Extended with a V.42bis row pair: the
// paper's claim is that zlib/deflate beats the dictionary compression in
// the modems, and that already-deflated data gains nothing further.
#include <cstdio>

#include "deflate/deflate.hpp"
#include "harness/experiment.hpp"
#include "modem/v42bis.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  struct Row {
    const char* label;
    bool deflated;   // serve pre-deflated HTML
    bool v42bis;     // modem dictionary compression on the link
    double paper_pa, paper_sec;  // 0 = not in the paper
  };
  const Row rows[] = {
      {"Uncompressed HTML", false, false, 67, 12.21},
      {"Compressed HTML (deflate)", true, false, 21.0, 4.35},
      {"Uncompressed HTML + V.42bis modem", false, true, 0, 0},
      {"Compressed HTML + V.42bis modem", true, true, 0, 0},
  };

  std::printf("=== Paper 8.2.1 - Compression vs 28.8k modem (single GET of "
              "the HTML page, Jigsaw) ===\n\n");
  std::printf("%-36s %8s %8s %10s\n", "Configuration", "Pa", "Sec",
              "WireBytes");
  double base_sec = 0;
  for (const Row& row : rows) {
    harness::ExperimentSpec spec;
    spec.network = harness::ppp_profile();
    spec.server = server::jigsaw_config();
    spec.client = harness::robot_config(
        row.deflated ? client::ProtocolMode::kHttp11PipelinedCompressed
                     : client::ProtocolMode::kHttp11Pipelined);
    spec.client.follow_embedded = false;
    spec.scenario = harness::Scenario::kFirstVisit;
    if (row.v42bis) {
      spec.make_link_sizer = [] {
        auto state = std::make_shared<modem::V42bis>();
        return modem::make_modem_sizer(state);
      };
    }
    const harness::AveragedResult r = harness::run_averaged(spec, site, 5);
    std::printf("%-36s %8.1f %8.2f %10.0f\n", row.label, r.packets, r.seconds,
                r.bytes);
    if (row.paper_pa > 0) {
      std::printf("%-36s %8.1f %8.2f %10s\n", "  (paper)", row.paper_pa,
                  row.paper_sec, "-");
    }
    if (base_sec == 0) base_sec = r.seconds;
    if (&row == &rows[1]) {
      std::printf("  -> deflate saves %.1f%% of elapsed time (paper: 64.4%%)\n",
                  100.0 * (base_sec - r.seconds) / base_sec);
    }
  }

  // Steady-state document-level comparison.
  std::vector<std::uint8_t> html(site.html.begin(), site.html.end());
  modem::V42bis v;
  const std::size_t modem_size = v.process(html);
  const std::size_t deflate_size = deflate::zlib_compress(html).size();
  std::printf("\nDocument compression ratios on the 42 KB HTML page:\n");
  std::printf("  V.42bis (modem dictionary): %.2f   (%zu bytes)\n",
              static_cast<double>(modem_size) / html.size(), modem_size);
  std::printf("  deflate (zlib default):     %.2f   (%zu bytes; paper: "
              "0.27)\n",
              static_cast<double>(deflate_size) / html.size(), deflate_size);
  return 0;
}
