// Topology-chaos experiment: recovery time and goodput degradation when the
// shared bottleneck itself fails under load.
//
// Two tables, 100 clients each, Microscape first visits:
//
//   Failover — redundant dumbbell, primary pair flaps twice. The routers
//   reroute onto the backup pair after the detection delay and fail back
//   afterwards; the table shows recovery is nearly free (median/P95 vs the
//   clean baseline, goodput flat, zero failed clients).
//
//   Retry storm — plain dumbbell (no backup path), one 20 s bottleneck
//   outage. Head-of-line responses stop progressing, request deadlines fire,
//   and every client re-issues into the dead link on its backoff clock.
//   Comparing variants at the same seed:
//
//     storm     — recovery armed, no retry budget, no jitter
//     budgeted  — same seed, plus per-client retry budgets (hard stop with
//                 attribution when the bucket empties) and seeded backoff
//                 jitter
//
//   The soak tests pin down and this table quantifies: budgets + jitter
//   strictly reduce duplicate-request volume during the outage.
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/soak.hpp"

namespace {

using namespace hsim;

harness::SoakConfig base_config(client::ProtocolMode mode) {
  harness::SoakConfig config;
  config.num_clients = 100;
  config.client = harness::robot_config(mode);
  config.client.max_attempts = 10;
  config.client.request_deadline = sim::seconds(5);
  config.client.retry_backoff = sim::milliseconds(500);
  config.server = server::apache_config();
  config.horizon = sim::seconds(120);
  config.drain = sim::seconds(60);
  config.master_seed = 7;
  return config;
}

void print_header() {
  std::printf("%-22s %-9s %5s %5s %7s %7s %8s %6s %5s %5s %9s %7s\n", "Mode",
              "Variant", "Done", "Fail", "Median", "P95", "Retries", "Exh",
              "F/over", "F/back", "GoodputMB", "vsClean");
  std::printf("%s\n", std::string(114, '-').c_str());
}

void print_row(client::ProtocolMode mode, const char* variant,
               const harness::SoakResult& result, double clean_median) {
  const double median = result.workload.median_page_seconds();
  const double vs_clean =
      clean_median > 0.0 ? 100.0 * (median / clean_median - 1.0) : 0.0;
  std::printf(
      "%-22s %-9s %5u %5u %7.2f %7.2f %8llu %6llu %5llu %5llu %9.2f "
      "%+6.1f%%\n",
      std::string(to_string(mode)).c_str(), variant,
      result.workload.completed(), result.workload.failed(), median,
      result.workload.p95_page_seconds(),
      static_cast<unsigned long long>(result.retries),
      static_cast<unsigned long long>(result.retry_budget_exhausted),
      static_cast<unsigned long long>(result.failovers),
      static_cast<unsigned long long>(result.failbacks),
      static_cast<double>(result.body_bytes) / (1024.0 * 1024.0), vs_clean);
  if (!result.ok()) {
    std::printf("  !! soak oracles: %zu violation(s); first: %s\n",
                result.violations.size(),
                result.violations.empty() ? "(terminal check)"
                                          : result.violations[0].c_str());
  }
}

}  // namespace

int main() {
  const content::MicroscapeSite& site = harness::shared_site();

  const client::ProtocolMode modes[] = {
      client::ProtocolMode::kHttp10Parallel,
      client::ProtocolMode::kHttp11Pipelined,
  };

  std::printf(
      "=== Failover: redundant dumbbell, primary bottleneck flaps twice "
      "===\n");
  print_header();
  for (const client::ProtocolMode mode : modes) {
    double clean_median = 0.0;
    for (const char* variant : {"clean", "failover"}) {
      harness::SoakConfig config = base_config(mode);
      if (std::string(variant) == "failover") {
        config.timeline = {
            {harness::TopoFaultKind::kBottleneckFlap, "", sim::seconds(3),
             sim::milliseconds(1500)},
            {harness::TopoFaultKind::kBottleneckFlap, "", sim::seconds(9),
             sim::milliseconds(400)},
        };
      }
      const harness::SoakResult result = harness::run_soak(config, site);
      if (std::string(variant) == "clean") {
        clean_median = result.workload.median_page_seconds();
      }
      print_row(mode, variant, result, clean_median);
    }
    std::printf("\n");
  }

  std::printf(
      "=== Retry storm: plain dumbbell (no backup), one 20 s bottleneck "
      "outage ===\n");
  print_header();
  for (const client::ProtocolMode mode : modes) {
    double clean_median = 0.0;
    std::uint64_t storm_retries = 0, budgeted_retries = 0;
    for (const char* variant : {"clean", "storm", "budgeted"}) {
      harness::SoakConfig config = base_config(mode);
      config.topology = harness::TopologyKind::kDumbbell;
      if (std::string(variant) != "clean") {
        config.timeline = {{harness::TopoFaultKind::kBottleneckFlap, "",
                            sim::seconds(3), sim::seconds(20)}};
      }
      if (std::string(variant) == "budgeted") {
        config.client.retry_budget = 3;
        config.client.retry_jitter = 0.5;
      }
      const harness::SoakResult result = harness::run_soak(config, site);
      if (std::string(variant) == "clean") {
        clean_median = result.workload.median_page_seconds();
      }
      if (std::string(variant) == "storm") storm_retries = result.retries;
      if (std::string(variant) == "budgeted") {
        budgeted_retries = result.retries;
      }
      print_row(mode, variant, result, clean_median);
    }
    std::printf("  budgets+jitter vs unbudgeted duplicate volume: %llu -> "
                "%llu (%s)\n\n",
                static_cast<unsigned long long>(storm_retries),
                static_cast<unsigned long long>(budgeted_retries),
                budgeted_retries < storm_retries ? "reduced" : "NOT reduced");
  }
  return 0;
}
