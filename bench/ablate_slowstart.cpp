// Ablation: slow-start initial window x HTML compression (paper §"Why
// Compression is Important").
//
// The first TCP segment of the response carries ~1400 bytes of HTML; the
// client can only pipeline requests for references it has already seen.
// Compressed HTML packs ~3x more document into that first segment, so the
// first batch of image requests fills (and flushes) sooner — and the effect
// interacts with how many segments the server's stack sends before waiting
// for the first ACK ("some TCP stacks implement slow start using one TCP
// segment whereas others use two").
#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  std::printf("=== Ablation: initial cwnd x compression (pipelined first "
              "visit, Jigsaw, WAN) ===\n\n");
  std::printf("%10s %-14s %8s %8s %10s\n", "init cwnd", "HTML", "Pa", "Sec",
              "Bytes");
  for (const unsigned segments : {1u, 2u, 4u}) {
    for (const bool compressed : {false, true}) {
      harness::ExperimentSpec spec;
      spec.network = harness::wan_profile();
      spec.server = server::jigsaw_config();
      spec.server.tcp.initial_cwnd_segments = segments;
      spec.client = harness::robot_config(
          compressed ? client::ProtocolMode::kHttp11PipelinedCompressed
                     : client::ProtocolMode::kHttp11Pipelined);
      spec.client.tcp.initial_cwnd_segments = segments;
      spec.scenario = harness::Scenario::kFirstVisit;
      const harness::AveragedResult r = harness::run_averaged(spec, site, 3);
      std::printf("%10u %-14s %8.1f %8.2f %10.0f\n", segments,
                  compressed ? "deflated" : "plain", r.packets, r.seconds,
                  r.bytes);
    }
  }
  std::printf(
      "\nThe relative gain from compression grows as the initial window\n"
      "shrinks: with less HTML in the first flight, getting 3x more\n"
      "document per segment matters more (\"the first packets on a\n"
      "connection are relatively more expensive than later packets\").\n");
  return 0;
}
