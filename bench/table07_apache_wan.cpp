// Reproduces Table 7: Apache, high bandwidth / high latency (WAN).
#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using bench::PaperRow;
  using client::ProtocolMode;
  const std::vector<PaperRow> rows = {
      {"HTTP/1.0", ProtocolMode::kHttp10Parallel,
       {559.6, 248655.2, 4.09, 8.3}, {370.0, 61887, 2.64, 19.3}},
      {"HTTP/1.1", ProtocolMode::kHttp11Persistent,
       {309.4, 191436.0, 6.14, 6.1}, {104.2, 14255, 4.43, 22.6}},
      {"HTTP/1.1 Pipelined", ProtocolMode::kHttp11Pipelined,
       {221.4, 191180.6, 2.23, 4.4}, {29.8, 15352, 0.86, 7.2}},
      {"HTTP/1.1 Pipelined w. compression",
       ProtocolMode::kHttp11PipelinedCompressed,
       {182.0, 159170.0, 2.11, 4.4}, {29.0, 15088, 0.83, 7.2}},
      // The paper predates HTTP/2; this row extrapolates the study with the
      // multiplexed framing layer (one connection, server push). No paper
      // numbers exist, so no "(paper)" line is printed.
      {"HTTP/2 mux", ProtocolMode::kH2, {}, {}},
  };
  bench::run_protocol_table("Table 7 - Apache - High Bandwidth, High Latency",
                            harness::wan_profile(), server::apache_config(),
                            rows);
  return 0;
}
