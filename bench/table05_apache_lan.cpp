// Reproduces Table 5: Apache, high bandwidth / low latency (LAN).
#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using bench::PaperRow;
  using client::ProtocolMode;
  const std::vector<PaperRow> rows = {
      {"HTTP/1.0", ProtocolMode::kHttp10Parallel,
       {489.4, 215536, 0.72, 8.3}, {365.4, 60605, 0.41, 19.4}},
      {"HTTP/1.1", ProtocolMode::kHttp11Persistent,
       {244.2, 189023, 0.81, 4.9}, {98.4, 14009, 0.40, 21.9}},
      {"HTTP/1.1 Pipelined", ProtocolMode::kHttp11Pipelined,
       {175.8, 189607, 0.49, 3.6}, {29.2, 14009, 0.23, 7.7}},
      {"HTTP/1.1 Pipelined w. compression",
       ProtocolMode::kHttp11PipelinedCompressed,
       {139.8, 156834, 0.41, 3.4}, {28.4, 14002, 0.23, 7.5}},
      // The paper predates HTTP/2; this row extrapolates the study with the
      // multiplexed framing layer (one connection, server push). No paper
      // numbers exist, so no "(paper)" line is printed.
      {"HTTP/2 mux", ProtocolMode::kH2, {}, {}},
  };
  bench::run_protocol_table("Table 5 - Apache - High Bandwidth, Low Latency",
                            harness::lan_profile(), server::apache_config(),
                            rows);
  return 0;
}
