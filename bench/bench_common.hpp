// Shared machinery for the table-reproduction benches (Tables 4-9): runs the
// paper's four protocol rows for one server/network combination and prints
// the measured values next to the paper's published ones.
//
// All measured numbers flow out of the per-run metrics registry (see
// obs/metrics.hpp): harness::run_once rebuilds Pa/Bytes/%ov from the trace.*
// counters and Sec from the client.page_*_ns gauges — byte-identical to the
// record-walk summaries the benches printed before the registry existed.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace hsim::bench {

struct PaperCell {
  double pa = 0, bytes = 0, sec = 0, ov = 0;
};

struct PaperRow {
  const char* label;
  client::ProtocolMode mode;
  PaperCell first;
  PaperCell reval;

  /// Rows for protocols the paper never measured (the h2 extrapolation
  /// column) carry all-zero paper cells and print no "(paper)" line.
  bool has_paper_numbers() const {
    return first.pa != 0 || first.bytes != 0 || first.sec != 0 ||
           first.ov != 0 || reval.pa != 0 || reval.bytes != 0 ||
           reval.sec != 0 || reval.ov != 0;
  }
};

inline void print_network(const harness::NetworkProfile& n) {
  std::printf("Network: %s  (%.0f kbit/s, RTT %.1f ms)\n", n.name.c_str(),
              n.bandwidth_bps / 1000.0, sim::to_milliseconds(n.rtt));
}

/// Runs all rows of one of Tables 4-9 and prints the paper comparison.
inline void run_protocol_table(const std::string& title,
                               const harness::NetworkProfile& network,
                               const server::ServerConfig& server,
                               const std::vector<PaperRow>& rows,
                               unsigned runs = 5) {
  const content::MicroscapeSite& site = harness::shared_site();
  std::printf("=== %s ===\n", title.c_str());
  print_network(network);
  std::printf("Server: %s\n\n", server.server_name.c_str());
  std::printf("%-34s | %28s | %28s\n", "", "First Time Retrieval",
              "Cache Validation");
  std::printf("%-34s | %6s %8s %6s %5s | %6s %8s %6s %5s\n", "Mode", "Pa",
              "Bytes", "Sec", "%ov", "Pa", "Bytes", "Sec", "%ov");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const PaperRow& row : rows) {
    harness::ExperimentSpec spec;
    spec.network = network;
    spec.server = server;
    spec.client = harness::robot_config(row.mode);

    spec.scenario = harness::Scenario::kFirstVisit;
    const harness::AveragedResult first =
        harness::run_averaged(spec, site, runs);
    spec.scenario = harness::Scenario::kRevalidation;
    const harness::AveragedResult reval =
        harness::run_averaged(spec, site, runs);

    std::printf("%-34s | %6.1f %8.0f %6.2f %5.1f | %6.1f %8.0f %6.2f %5.1f\n",
                row.label, first.packets, first.bytes, first.seconds,
                first.overhead_percent, reval.packets, reval.bytes,
                reval.seconds, reval.overhead_percent);
    if (row.has_paper_numbers()) {
      std::printf(
          "%-34s | %6.1f %8.0f %6.2f %5.1f | %6.1f %8.0f %6.2f %5.1f\n",
          "  (paper)", row.first.pa, row.first.bytes, row.first.sec,
          row.first.ov, row.reval.pa, row.reval.bytes, row.reval.sec,
          row.reval.ov);
    }
  }
  std::printf("\n");
}

inline const PaperRow* find_row(const std::vector<PaperRow>& rows,
                                client::ProtocolMode mode) {
  for (const PaperRow& r : rows) {
    if (r.mode == mode) return &r;
  }
  return nullptr;
}

}  // namespace hsim::bench
