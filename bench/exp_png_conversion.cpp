// Reproduces "Converting images from GIF to PNG and MNG": batch-converts the
// Microscape page's 40 static GIFs to PNG (with gAMA, as the paper's
// conversion pipeline produced) and the 2 animations to MNG, reporting the
// byte totals the paper gives (103,299 -> 92,096 GIF->PNG; 24,988 -> 16,329
// animated GIF -> MNG).
#include <cstdio>

#include "content/gif.hpp"
#include "content/mng.hpp"
#include "content/png.hpp"
#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  using namespace hsim::content;
  const MicroscapeSite& site = harness::shared_site();

  std::size_t gif_total = 0, png_total = 0;
  std::size_t small_gif = 0, small_png = 0, small_count = 0;
  std::size_t png_wins = 0, statics = 0;
  for (const SiteImage& img : site.images) {
    if (img.animated) continue;
    ++statics;
    const auto png = encode_png(img.source);
    gif_total += img.gif_bytes.size();
    png_total += png.size();
    if (png.size() < img.gif_bytes.size()) ++png_wins;
    if (img.gif_bytes.size() < 200) {
      small_gif += img.gif_bytes.size();
      small_png += png.size();
      ++small_count;
    }
  }

  std::printf("=== GIF -> PNG conversion (40 static images) ===\n");
  std::printf("%-28s %10s %10s\n", "", "measured", "paper");
  std::printf("%-28s %10zu %10d\n", "GIF bytes", gif_total, 103299);
  std::printf("%-28s %10zu %10d\n", "PNG bytes", png_total, 92096);
  std::printf("%-28s %10zd %10d\n", "Saved",
              static_cast<std::ptrdiff_t>(gif_total) -
                  static_cast<std::ptrdiff_t>(png_total),
              11203);
  std::printf("PNG smaller for %zu of %zu images\n", png_wins, statics);
  std::printf("Sub-200-byte images: GIF %zu vs PNG %zu bytes over %zu images "
              "(PNG loses, as the paper notes)\n\n",
              small_gif, small_png, small_count);

  std::size_t agif_total = 0, mng_total = 0;
  for (const SiteImage& img : site.images) {
    if (!img.animated) continue;
    const auto mng = encode_mng(img.source_animation);
    agif_total += img.gif_bytes.size();
    mng_total += mng.size();
  }
  std::printf("=== Animated GIF -> MNG conversion (2 animations) ===\n");
  std::printf("%-28s %10s %10s\n", "", "measured", "paper");
  std::printf("%-28s %10zu %10d\n", "Animated GIF bytes", agif_total, 24988);
  std::printf("%-28s %10zu %10d\n", "MNG bytes", mng_total, 16329);
  std::printf("%-28s %10zd %10d\n", "Saved",
              static_cast<std::ptrdiff_t>(agif_total) -
                  static_cast<std::ptrdiff_t>(mng_total),
              8659);

  const std::size_t image_total = gif_total + agif_total;
  const std::size_t converted_total = png_total + mng_total;
  std::printf("\nOverall image payload: %zu -> %zu bytes (%.0f%% of the image "
              "bytes saved; paper: ~19%%)\n",
              image_total, converted_total,
              100.0 * (image_total - converted_total) / image_total);
  return 0;
}
