// Microbenchmark for the zero-copy buffer pipeline.
//
// Part 1 times the three buffer idioms the refactor replaced, old style vs
// chain, on the access patterns the simulator actually performs:
//   - enqueue:   stage a response body for output (copy vs shared slice);
//   - segment:   cut MSS-sized send segments, including retransmit re-cuts
//                (rebuild a fresh vector vs alias the send chain);
//   - consume:   drain a buffer from the front in small reads
//                (vector erase-front vs chain pop_front).
//
// Part 2 runs one full PPP first-visit experiment (the Table 8 pipelined
// row) and reports the global copy/alloc counters. In a default build the
// counters read zero — configure with -DHSIM_COUNT_COPIES=ON to see the
// payload-byte accounting that EXPERIMENTS.md quotes.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "buf/bytes.hpp"
#include "harness/experiment.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr std::size_t kBody = 40'000;   // the paper's GIF-heavy page scale
constexpr std::size_t kMss = 1460;
constexpr int kRounds = 2'000;

volatile std::uint8_t g_sink = 0;  // defeat dead-code elimination

void enqueue_old(const std::vector<std::uint8_t>& asset) {
  std::vector<std::uint8_t> out_buffer;
  for (int i = 0; i < kRounds; ++i) {
    out_buffer.assign(asset.begin(), asset.end());
    g_sink = out_buffer[i % out_buffer.size()];
  }
}

void enqueue_chain(const hsim::buf::Bytes& asset) {
  for (int i = 0; i < kRounds; ++i) {
    hsim::buf::Chain out_buffer;
    out_buffer.append(asset);
    g_sink = out_buffer[i % out_buffer.size()];
  }
}

void segment_old(const std::vector<std::uint8_t>& body) {
  for (int i = 0; i < kRounds / 10; ++i) {
    for (std::size_t off = 0; off < body.size(); off += kMss) {
      const std::size_t n = std::min(kMss, body.size() - off);
      std::vector<std::uint8_t> payload(body.begin() + off,
                                        body.begin() + off + n);
      g_sink = payload[0];
    }
  }
}

void segment_chain(const hsim::buf::Chain& send_buf) {
  for (int i = 0; i < kRounds / 10; ++i) {
    for (std::size_t off = 0; off < send_buf.size(); off += kMss) {
      const std::size_t n = std::min(kMss, send_buf.size() - off);
      const hsim::buf::Bytes payload = send_buf.slice_bytes(off, n);
      g_sink = payload[0];
    }
  }
}

void consume_old(const std::vector<std::uint8_t>& body) {
  for (int i = 0; i < kRounds / 100; ++i) {
    std::vector<std::uint8_t> buffer(body.begin(), body.end());
    while (!buffer.empty()) {
      const std::size_t n = std::min<std::size_t>(kMss, buffer.size());
      g_sink = buffer[0];
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
}

void consume_chain(const hsim::buf::Bytes& body) {
  for (int i = 0; i < kRounds / 100; ++i) {
    hsim::buf::Chain buffer;
    buffer.append(body);
    while (!buffer.empty()) {
      const std::size_t n = std::min<std::size_t>(kMss, buffer.size());
      g_sink = buffer[0];
      buffer.pop_front(n);
    }
  }
}

template <typename Fn>
double timed(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  return ms_since(start);
}

void report(const char* op, double old_ms, double chain_ms) {
  std::printf("  %-28s %9.2f ms %9.2f ms %8.1fx\n", op, old_ms, chain_ms,
              chain_ms > 0 ? old_ms / chain_ms : 0.0);
}

}  // namespace

int main() {
  std::vector<std::uint8_t> raw(kBody);
  std::iota(raw.begin(), raw.end(), 0);
  const hsim::buf::Bytes asset{
      std::span<const std::uint8_t>(raw.data(), raw.size())};
  hsim::buf::Chain send_buf;
  send_buf.append(asset);

  std::printf("=== Buffer pipeline microbenchmarks ===\n");
  std::printf("body=%zu B, mss=%zu, rounds=%d\n\n", kBody, kMss, kRounds);
  std::printf("  %-28s %12s %12s %9s\n", "operation", "copying", "chain",
              "speedup");
  report("enqueue response body", timed([&] { enqueue_old(raw); }),
         timed([&] { enqueue_chain(asset); }));
  report("cut MSS send segments", timed([&] { segment_old(raw); }),
         timed([&] { segment_chain(send_buf); }));
  report("front-consume in MSS reads", timed([&] { consume_old(raw); }),
         timed([&] { consume_chain(asset); }));

  std::printf("\n=== Copy accounting: one PPP first visit (pipelined) ===\n");
  hsim::harness::ExperimentSpec spec;
  spec.network = hsim::harness::ppp_profile();
  spec.client =
      hsim::harness::robot_config(hsim::client::ProtocolMode::kHttp11Pipelined);
  spec.scenario = hsim::harness::Scenario::kFirstVisit;
  hsim::buf::counters().reset();
  const auto result =
      hsim::harness::run_once(spec, hsim::harness::shared_site());
  const auto& c = hsim::buf::counters();
  const double body_bytes = static_cast<double>(result.robot.body_bytes);
  std::printf("payload bytes delivered to client : %12.0f\n", body_bytes);
  std::printf("bytes memcpy'd through buffers    : %12llu\n",
              static_cast<unsigned long long>(c.bytes_copied));
  std::printf("bytes moved by reference          : %12llu\n",
              static_cast<unsigned long long>(c.bytes_shared));
  std::printf("buffer block allocations          : %12llu\n",
              static_cast<unsigned long long>(c.allocations));
  if (c.bytes_copied == 0 && c.bytes_shared == 0) {
    std::printf("(counters disabled: configure with -DHSIM_COUNT_COPIES=ON)\n");
  } else {
    std::printf("copies per delivered payload byte : %12.2f\n",
                body_bytes > 0 ? static_cast<double>(c.bytes_copied) /
                                     body_bytes
                               : 0.0);
  }
  return 0;
}
