// Reproduces Table 10: Netscape Navigator 4.0b5 and MS Internet Explorer
// 4.0b1 against Jigsaw over the 28.8k PPP link (3 runs, as in the paper).
//
// MSIE's beta revalidation against Jigsaw degenerated to refetching the page
// and HEAD-validating images (the paper's Table 10 shows it moving ~61 KB
// where Navigator moved ~19 KB); msie_client_config(true) reproduces that.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  struct Row {
    const char* label;
    client::ClientConfig config;
    bench::PaperCell first, reval;
  };
  const Row rows[] = {
      {"Netscape Navigator", harness::netscape_client_config(),
       {339.4, 201807, 58.8, 6.3}, {108, 19282, 14.9, 18.3}},
      {"Internet Explorer", harness::msie_client_config(true),
       {360.3, 199934, 63.0, 6.7}, {301.0, 61009, 17.0, 16.5}},
  };

  std::printf("=== Table 10 - Jigsaw - Navigator & MSIE, Low Bandwidth, "
              "High Latency ===\n\n");
  std::printf("%-22s | %28s | %28s\n", "", "First Time Retrieval",
              "Cache Validation");
  std::printf("%-22s | %6s %8s %6s %5s | %6s %8s %6s %5s\n", "Browser", "Pa",
              "Bytes", "Sec", "%ov", "Pa", "Bytes", "Sec", "%ov");
  for (const Row& row : rows) {
    harness::ExperimentSpec spec;
    spec.network = harness::ppp_profile();
    spec.server = server::jigsaw_config();
    spec.client = row.config;

    spec.scenario = harness::Scenario::kFirstVisit;
    const auto first = harness::run_averaged(spec, site, 3);
    spec.scenario = harness::Scenario::kRevalidation;
    const auto reval = harness::run_averaged(spec, site, 3);
    std::printf("%-22s | %6.1f %8.0f %6.2f %5.1f | %6.1f %8.0f %6.2f %5.1f\n",
                row.label, first.packets, first.bytes, first.seconds,
                first.overhead_percent, reval.packets, reval.bytes,
                reval.seconds, reval.overhead_percent);
    std::printf("%-22s | %6.1f %8.0f %6.2f %5.1f | %6.1f %8.0f %6.2f %5.1f\n",
                "  (paper)", row.first.pa, row.first.bytes, row.first.sec,
                row.first.ov, row.reval.pa, row.reval.bytes, row.reval.sec,
                row.reval.ov);
  }
  return 0;
}
