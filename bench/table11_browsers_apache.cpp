// Reproduces Table 11: Netscape Navigator 4.0b5 and MSIE 4.0b1 against
// Apache over the 28.8k PPP link (3 runs, as in the paper). Against Apache,
// MSIE's conditional requests worked, so both browsers validate cheaply.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  struct Row {
    const char* label;
    client::ClientConfig config;
    bench::PaperCell first, reval;
  };
  const Row rows[] = {
      {"Netscape Navigator", harness::netscape_client_config(),
       {334.3, 199243, 58.7, 6.3}, {103.3, 23741, 5.9, 14.8}},
      {"Internet Explorer", harness::msie_client_config(false),
       {381.3, 204219, 60.6, 6.9}, {117.0, 23056, 8.3, 16.9}},
  };

  std::printf("=== Table 11 - Apache - Navigator & MSIE, Low Bandwidth, "
              "High Latency ===\n\n");
  std::printf("%-22s | %28s | %28s\n", "", "First Time Retrieval",
              "Cache Validation");
  std::printf("%-22s | %6s %8s %6s %5s | %6s %8s %6s %5s\n", "Browser", "Pa",
              "Bytes", "Sec", "%ov", "Pa", "Bytes", "Sec", "%ov");
  for (const Row& row : rows) {
    harness::ExperimentSpec spec;
    spec.network = harness::ppp_profile();
    spec.server = server::apache_config();
    spec.client = row.config;

    spec.scenario = harness::Scenario::kFirstVisit;
    const auto first = harness::run_averaged(spec, site, 3);
    spec.scenario = harness::Scenario::kRevalidation;
    const auto reval = harness::run_averaged(spec, site, 3);
    std::printf("%-22s | %6.1f %8.0f %6.2f %5.1f | %6.1f %8.0f %6.2f %5.1f\n",
                row.label, first.packets, first.bytes, first.seconds,
                first.overhead_percent, reval.packets, reval.bytes,
                reval.seconds, reval.overhead_percent);
    std::printf("%-22s | %6.1f %8.0f %6.2f %5.1f | %6.1f %8.0f %6.2f %5.1f\n",
                "  (paper)", row.first.pa, row.first.bytes, row.first.sec,
                row.first.ov, row.reval.pa, row.reval.bytes, row.reval.sec,
                row.reval.ov);
  }
  return 0;
}
