// Ablation: pipeline output-buffer size, flush timer, and the explicit
// application flush (paper §"Initial Investigations and Tuning" and
// §"Buffer Tuning").
#include <cstdio>

#include "harness/experiment.hpp"

int main() {
  using namespace hsim;
  const content::MicroscapeSite& site = harness::shared_site();

  std::printf("=== Ablation: pipeline buffer size (flush timer 50 ms, "
              "explicit first flush, WAN first visit) ===\n\n");
  std::printf("%8s %8s %8s %8s\n", "BufBytes", "Pa", "Sec", "Bytes");
  for (std::size_t buf : {64u, 256u, 512u, 1024u, 1460u, 2920u, 8192u}) {
    harness::ExperimentSpec spec;
    spec.network = harness::wan_profile();
    spec.server = server::jigsaw_config();
    spec.client =
        harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
    spec.client.pipeline_buffer = buf;
    spec.scenario = harness::Scenario::kFirstVisit;
    const harness::AveragedResult r = harness::run_averaged(spec, site, 3);
    std::printf("%8zu %8.1f %8.2f %8.0f\n", buf, r.packets, r.seconds,
                r.bytes);
  }
  std::printf("\nThe paper chose 1024 bytes: two 512-byte or one Ethernet "
              "segment.\n\n");

  std::printf("=== Ablation: flush timer (buffer 1024 B, WAN cache "
              "revalidation) ===\n\n");
  std::printf("%10s %8s %8s  %s\n", "Timer[ms]", "Pa", "Sec",
              "explicit first flush");
  for (const bool explicit_flush : {true, false}) {
    for (const int timer_ms : {10, 50, 200, 1000}) {
      harness::ExperimentSpec spec;
      spec.network = harness::wan_profile();
      spec.server = server::jigsaw_config();
      spec.client =
          harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
      spec.client.flush_timeout = sim::milliseconds(timer_ms);
      spec.client.explicit_first_flush = explicit_flush;
      spec.scenario = harness::Scenario::kRevalidation;
      const harness::AveragedResult r = harness::run_averaged(spec, site, 3);
      std::printf("%10d %8.1f %8.2f  %s\n", timer_ms, r.packets, r.seconds,
                  explicit_flush ? "yes" : "no");
    }
  }
  std::printf(
      "\nThe paper's initial tests used a 1 s timer and no explicit flush\n"
      "(Table 3's poor elapsed times); application knowledge — flushing\n"
      "right after the HTML request — beats any timer setting.\n");
  return 0;
}
