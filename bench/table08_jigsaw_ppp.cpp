// Reproduces Table 8: Jigsaw, low bandwidth / high latency (28.8k PPP).
// The paper omits HTTP/1.0 on PPP, so the rows start at persistent HTTP/1.1.
#include "bench_common.hpp"

int main() {
  using namespace hsim;
  using bench::PaperRow;
  using client::ProtocolMode;
  const std::vector<PaperRow> rows = {
      {"HTTP/1.1", ProtocolMode::kHttp11Persistent,
       {309.6, 190687, 63.8, 6.1}, {89.2, 17528, 12.9, 16.9}},
      {"HTTP/1.1 Pipelined", ProtocolMode::kHttp11Pipelined,
       {284.4, 190735, 53.3, 5.6}, {31.0, 17598, 5.4, 6.6}},
      {"HTTP/1.1 Pipelined w. compression",
       ProtocolMode::kHttp11PipelinedCompressed,
       {234.2, 159449, 47.4, 5.5}, {31.0, 17591, 5.4, 6.6}},
      // The paper predates HTTP/2; this row extrapolates the study with the
      // multiplexed framing layer (one connection, server push). No paper
      // numbers exist, so no "(paper)" line is printed.
      {"HTTP/2 mux", ProtocolMode::kH2, {}, {}},
  };
  bench::run_protocol_table("Table 8 - Jigsaw - Low Bandwidth, High Latency",
                            harness::ppp_profile(), server::jigsaw_config(),
                            rows);
  return 0;
}
