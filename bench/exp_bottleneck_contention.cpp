// Shared-bottleneck contention experiment: the paper's HTTP/1.0 vs HTTP/1.1
// comparison under *real* contention. N clients share one dumbbell
// bottleneck (routers + queue discipline, topo subsystem) — unlike the
// legacy star shape, every byte of every client crosses the same two
// queues, so N-parallel HTTP/1.0 connections genuinely fight each other
// for buffer space and bandwidth.
//
// The paper argues (§5, Table 8) that one pipelined HTTP/1.1 connection
// uses fewer packets and fewer simultaneous connections than 4-parallel
// HTTP/1.0; this experiment shows the systemic consequence: at N = 100
// clients the parallel-1.0 fleet overflows the shared queue, pays for it
// in retransmits, and finishes *later in aggregate* than the pipelined
// fleet, despite opening 4x the connections.
//
// Reported per (N, capacity, mode): aggregate elapsed time (first to last
// packet on the bottleneck), total packets, TCP retransmits, queue drops
// (per direction), median/p95 page seconds, Jain's fairness index.
//
// Deterministic: a fixed master seed makes every number reproducible
// byte-for-byte (same seed -> identical output), including RED's drop
// pattern, which draws from its own seeded stream.
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace {
using namespace hsim;

harness::WorkloadConfig base_config(unsigned n, client::ProtocolMode mode,
                                    std::int64_t bottleneck_bps) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = n;
  cfg.topology = harness::TopologyKind::kDumbbell;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(100);
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = bottleneck_bps;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 64;  // tight: contention must be visible
  cfg.master_seed = 42;

  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 128;
  cfg.server.max_concurrent_connections = 64;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;

  cfg.client = harness::robot_config(mode);
  cfg.client.max_attempts = 8;
  cfg.client.retry_backoff = sim::milliseconds(200);
  cfg.client.page_deadline = sim::seconds(420);
  cfg.client.retry_server_errors = true;
  return cfg;
}

void print_header() {
  std::printf("%-20s | %8s | %8s | %7s | %11s | %6s | %6s | %6s | %s\n",
              "Mode", "Elapsed", "Packets", "Retrans", "Drops up/dn",
              "MedSec", "p95Sec", "Jain", "Done");
  std::printf("%s\n", std::string(104, '-').c_str());
}

void run_row(unsigned n, client::ProtocolMode mode, std::int64_t bps,
             topo::QueueDiscKind qdisc) {
  harness::WorkloadConfig cfg = base_config(n, mode, bps);
  cfg.bottleneck_queue.kind = qdisc;
  const harness::WorkloadResult r =
      harness::run_workload(cfg, harness::shared_site());

  std::uint64_t drops_up = 0, drops_down = 0;
  for (const harness::QueueSummary& q : r.queues) {
    if (q.label == "bn.up") drops_up = q.stats.dropped();
    if (q.label == "bn.down") drops_down = q.stats.dropped();
  }
  std::printf(
      "%-20s | %7.2fs | %8llu | %7llu | %5llu/%-5llu | %6.2f | %6.2f | "
      "%6.4f | %4u/%-4u\n",
      std::string(to_string(mode)).c_str(), r.bottleneck.elapsed_seconds(),
      static_cast<unsigned long long>(r.bottleneck.packets),
      static_cast<unsigned long long>(r.tcp_retransmits),
      static_cast<unsigned long long>(drops_up),
      static_cast<unsigned long long>(drops_down), r.median_page_seconds(),
      r.p95_page_seconds(), r.jain_fairness_index(), r.completed(), n);
  if (!r.all_resolved() || r.server_open_after_drain != 0) {
    std::printf("  !! anomaly: resolved=%s leaked_server_conns=%zu\n",
                r.all_resolved() ? "yes" : "NO", r.server_open_after_drain);
  }
}

void run_table(unsigned n, std::int64_t bps, topo::QueueDiscKind qdisc) {
  std::printf("N = %u clients, %.1f Mbit/s shared dumbbell bottleneck, "
              "%s queue (64 packets/direction)\n",
              n, static_cast<double>(bps) / 1e6,
              qdisc == topo::QueueDiscKind::kRed ? "RED" : "DropTail");
  print_header();
  run_row(n, client::ProtocolMode::kHttp10Parallel, bps, qdisc);
  run_row(n, client::ProtocolMode::kHttp11Pipelined, bps, qdisc);
  run_row(n, client::ProtocolMode::kH2, bps, qdisc);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Shared-bottleneck contention: HTTP/1.0 x N vs HTTP/1.1 "
              "pipelined ===\n");
  std::printf(
      "Dumbbell topology (routers + per-direction queue discipline); every\n"
      "client's packets cross the same two bottleneck queues. Elapsed is\n"
      "first-to-last packet on the bottleneck (aggregate completion);\n"
      "Retrans counts every TCP retransmission at any host.\n\n");

  // Capacity sweep: a T1-class shared pipe and a 10 Mbit/s shared pipe.
  run_table(10, 1'544'000, topo::QueueDiscKind::kDropTail);
  run_table(10, 10'000'000, topo::QueueDiscKind::kDropTail);
  run_table(100, 1'544'000, topo::QueueDiscKind::kDropTail);
  run_table(100, 10'000'000, topo::QueueDiscKind::kDropTail);
  run_table(1000, 10'000'000, topo::QueueDiscKind::kDropTail);

  // Same contention point under RED: early drops spread the loss across
  // flows instead of bursting it at queue overflow.
  run_table(100, 1'544'000, topo::QueueDiscKind::kRed);
  return 0;
}
