// Google-benchmark microbenchmarks for the library's substrates: deflate,
// inflate, GIF-LZW, Huffman construction, HTTP parsing and the event-driven
// TCP simulator itself.
#include <benchmark/benchmark.h>

#include "content/gif.hpp"
#include "deflate/deflate.hpp"
#include "deflate/huffman.hpp"
#include "deflate/inflate.hpp"
#include "harness/experiment.hpp"
#include "http/parser.hpp"
#include "sim/random.hpp"

namespace {

using namespace hsim;

std::vector<std::uint8_t> html_bytes() {
  const std::string& html = harness::shared_site().html;
  return {html.begin(), html.end()};
}

void BM_DeflateHtml(benchmark::State& state) {
  const auto input = html_bytes();
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        deflate::zlib_compress(input, deflate::DeflateOptions{level}));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}
BENCHMARK(BM_DeflateHtml)->Arg(1)->Arg(6)->Arg(9);

void BM_InflateHtml(benchmark::State& state) {
  const auto compressed = deflate::zlib_compress(html_bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(deflate::zlib_decompress(compressed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(compressed.size()));
}
BENCHMARK(BM_InflateHtml);

void BM_InflateStreaming(benchmark::State& state) {
  const auto compressed = deflate::zlib_compress(html_bytes());
  const std::size_t chunk = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    deflate::Inflater inf;
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < compressed.size(); i += chunk) {
      const std::size_t n = std::min(chunk, compressed.size() - i);
      inf.feed(std::span(compressed.data() + i, n), out);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_InflateStreaming)->Arg(64)->Arg(1460);

void BM_GifLzwCompress(benchmark::State& state) {
  content::SyntheticSpec spec;
  spec.kind = content::ImageKind::kPhoto;
  spec.width = 200;
  spec.height = 150;
  spec.colors = 128;
  const content::IndexedImage img = content::generate_image(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(content::gif_lzw_compress(img.pixels, 8));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.pixels.size()));
}
BENCHMARK(BM_GifLzwCompress);

void BM_HuffmanBuild(benchmark::State& state) {
  sim::Rng rng(1);
  std::vector<std::uint32_t> freqs(288);
  for (auto& f : freqs) {
    f = rng.chance(0.2) ? 0 : static_cast<std::uint32_t>(rng.uniform(1, 5000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deflate::build_code_lengths(freqs, 15));
  }
}
BENCHMARK(BM_HuffmanBuild);

void BM_HttpRequestParse(benchmark::State& state) {
  const std::string wire =
      "GET /images/img07.gif HTTP/1.1\r\n"
      "Host: www.microscape.test\r\n"
      "User-Agent: libwww-robot/5.1\r\n"
      "Accept: image/gif, image/png, text/html, */*\r\n"
      "Accept-Language: en\r\n"
      "Accept-Charset: iso-8859-1,*\r\n\r\n";
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(wire.data()), wire.size());
  for (auto _ : state) {
    http::RequestParser parser;
    parser.feed(bytes);
    benchmark::DoNotOptimize(parser.next());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_HttpRequestParse);

void BM_SimulatedPipelinedRevalidation(benchmark::State& state) {
  // Wall-clock cost of simulating a full pipelined revalidation over the
  // WAN: the simulator's end-to-end event throughput.
  const content::MicroscapeSite& site = harness::shared_site();
  harness::ExperimentSpec spec;
  spec.network = harness::wan_profile();
  spec.client =
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  spec.scenario = harness::Scenario::kRevalidation;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    spec.seed = seed++;
    benchmark::DoNotOptimize(harness::run_once(spec, site));
  }
}
BENCHMARK(BM_SimulatedPipelinedRevalidation)->Unit(benchmark::kMillisecond);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      q.schedule_at(sim::microseconds(i), [&fired] { ++fired; });
    }
    q.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace

BENCHMARK_MAIN();
