// hsim-trace: capture, inspect and compare packet traces.
//
//   hsim-trace run <table4|table6> [--seed N] [--cc CC] [--binary] -o FILE
//       Run a golden scenario and write the client-side trace to FILE
//       (canonical text by default, stable binary with --binary). --cc
//       selects the congestion-control module on both endpoints
//       (reno|newreno|cubic|bbr; default reno, the golden behaviour).
//   hsim-trace run dumbbell [--seed N] [--clients N] [--cc CC] [--binary] -o FILE
//       Run a small shared-bottleneck dumbbell workload with a multi-hop
//       trace attached to every router; the resulting file uses the v2
//       format with a per-hop column (router id + queue depth at enqueue).
//   hsim-trace text FILE
//       Print a trace file (either format) as canonical text; multi-hop
//       traces gain a trailing hop=<router>:<depth> column.
//   hsim-trace summarize FILE [--client ADDR]
//       Print the paper's aggregate numbers (Pa, Bytes, %ov, ...) for a
//       trace file. ADDR defaults to 1, the harness's client address.
//       Multi-hop traces additionally get a per-hop table (one row per
//       recording router, with mean/max egress queue depth).
//   hsim-trace diff A B
//       Structural record-by-record comparison. Exit 0 when identical,
//       1 when the traces differ, 2 on usage/I-O errors.
//
// Two runs of the same scenario with the same seed produce byte-identical
// traces; `hsim-trace diff` of such a pair reports zero differences.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "harness/workload.hpp"
#include "net/trace_io.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace hsim;

int usage() {
  std::fprintf(stderr,
               "usage: hsim-trace run <table4|table6> [--seed N] [--cc CC] [--binary] -o FILE\n"
               "       hsim-trace run dumbbell [--seed N] [--clients N] [--cc CC] [--binary] -o FILE\n"
               "       hsim-trace text FILE\n"
               "       hsim-trace summarize FILE [--client ADDR]\n"
               "       hsim-trace diff A B\n");
  return 2;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "hsim-trace: %s\n", message.c_str());
  return 2;
}

int write_records(const std::string& scenario,
                  const std::vector<net::TraceRecord>& records,
                  const std::string& out_path, bool binary,
                  unsigned long long seed) {
  const bool ok = binary
                      ? net::write_file(out_path, net::trace_to_binary(records))
                      : net::write_file(out_path, net::trace_to_text(records));
  if (!ok) return fail("cannot write " + out_path);
  std::printf("%s: %zu records (%s, seed %llu) -> %s\n", scenario.c_str(),
              records.size(), binary ? "binary" : "text", seed,
              out_path.c_str());
  return 0;
}

/// Per-link drop table from the run's metrics registry: every labelled link
/// publishes `net.link.<label>.*` counters, so drops are visible at every
/// layer, not just the bottleneck queues.
void print_link_table(const obs::Snapshot& metrics) {
  struct Row {
    std::uint64_t sent = 0, queue = 0, random = 0, burst = 0, outage = 0,
                  corrupted = 0;
  };
  std::map<std::string, Row> rows;
  const std::string prefix = "net.link.";
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t field_dot = name.rfind('.');
    if (field_dot <= prefix.size()) continue;  // unlabelled aggregate counter
    const std::string label = name.substr(prefix.size(),
                                          field_dot - prefix.size());
    const std::string field = name.substr(field_dot + 1);
    Row& row = rows[label];
    if (field == "packets_sent") row.sent = value;
    else if (field == "dropped_queue") row.queue = value;
    else if (field == "dropped_random") row.random = value;
    else if (field == "dropped_burst") row.burst = value;
    else if (field == "dropped_outage") row.outage = value;
    else if (field == "corrupted") row.corrupted = value;
  }
  if (rows.empty()) return;
  std::printf("\nper-link (net.link.<label>.*):\n");
  std::printf("%-14s %10s %8s %8s %8s %8s %9s\n", "link", "sent", "d-queue",
              "d-rand", "d-burst", "d-outage", "corrupted");
  for (const auto& [label, row] : rows) {
    std::printf("%-14s %10llu %8llu %8llu %8llu %8llu %9llu\n", label.c_str(),
                static_cast<unsigned long long>(row.sent),
                static_cast<unsigned long long>(row.queue),
                static_cast<unsigned long long>(row.random),
                static_cast<unsigned long long>(row.burst),
                static_cast<unsigned long long>(row.outage),
                static_cast<unsigned long long>(row.corrupted));
  }
}

/// A small dumbbell workload with a multi-hop trace on every router: each
/// packet appears once per router crossed, tagged with the router id and the
/// egress queue depth it found at enqueue.
int cmd_run_dumbbell(const std::vector<std::string>& args,
                     const std::string& out_path, bool binary,
                     std::uint64_t seed, unsigned clients, tcp::CcKind cc) {
  harness::WorkloadConfig config;
  config.num_clients = clients;
  config.master_seed = seed;
  config.topology = harness::TopologyKind::kDumbbell;
  config.cc = cc;
  net::PacketTrace hop_trace(/*client_addr=*/1);  // direction anchor: server
  config.hop_trace = &hop_trace;
  const harness::WorkloadResult result =
      harness::run_workload(config, harness::shared_site());
  (void)args;
  const int status = write_records("dumbbell", hop_trace.records(), out_path,
                                   binary,
                                   static_cast<unsigned long long>(seed));
  if (status == 0) print_link_table(result.metrics);
  return status;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string out_path;
  bool binary = false;
  std::uint64_t seed = 1;
  unsigned clients = 4;
  tcp::CcKind cc = tcp::CcKind::kReno;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--clients" && i + 1 < args.size()) {
      clients = static_cast<unsigned>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--cc" && i + 1 < args.size()) {
      if (!tcp::parse_cc_kind(args[++i], &cc)) {
        return fail("unknown --cc (try: reno, newreno, cubic, bbr)");
      }
    } else if (args[i] == "--binary") {
      binary = true;
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      return usage();
    }
  }
  if (out_path.empty()) return usage();

  if (args[0] == "dumbbell") {
    return cmd_run_dumbbell(args, out_path, binary, seed, clients, cc);
  }
  harness::ExperimentSpec spec;
  if (!harness::golden_spec_by_name(args[0], &spec)) {
    return fail("unknown scenario '" + args[0] +
                "' (try: table4, table6, dumbbell)");
  }
  spec.seed = seed;
  spec.server.tcp.cc = cc;
  spec.client.tcp.cc = cc;
  const std::vector<net::TraceRecord> records =
      harness::capture_trace(spec, harness::shared_site());
  return write_records(args[0], records, out_path, binary,
                       static_cast<unsigned long long>(spec.seed));
}

int cmd_text(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::vector<net::TraceRecord> records;
  std::string error;
  if (!net::load_trace_file(args[0], &records, &error)) return fail(error);
  std::fputs(net::trace_to_text(records).c_str(), stdout);
  return 0;
}

int cmd_summarize(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  net::IpAddr client_addr = 1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--client" && i + 1 < args.size()) {
      client_addr = static_cast<net::IpAddr>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else {
      return usage();
    }
  }
  std::vector<net::TraceRecord> records;
  std::string error;
  if (!net::load_trace_file(args[0], &records, &error)) return fail(error);
  const net::TraceSummary s = net::summarize_records(records, client_addr);
  std::printf("records            %zu\n", records.size());
  std::printf("packets            %llu\n",
              static_cast<unsigned long long>(s.packets));
  std::printf("wire bytes         %llu\n",
              static_cast<unsigned long long>(s.wire_bytes));
  std::printf("payload bytes      %llu\n",
              static_cast<unsigned long long>(s.payload_bytes));
  std::printf("packets c->s       %llu\n",
              static_cast<unsigned long long>(s.packets_client_to_server));
  std::printf("packets s->c       %llu\n",
              static_cast<unsigned long long>(s.packets_server_to_client));
  std::printf("overhead           %.2f%%\n", s.overhead_percent);
  std::printf("mean packet size   %.1f\n", s.mean_packet_size);
  std::printf("elapsed            %.6f s\n", s.elapsed_seconds());
  if (net::trace_has_hops(records)) {
    std::printf("\nper-hop (multi-hop trace):\n");
    std::printf("%-8s %10s %12s %10s %10s %9s %8s\n", "hop", "packets",
                "wire-bytes", "c->s", "s->c", "mean-q", "max-q");
    for (const net::HopSummary& h : net::summarize_by_hop(records,
                                                          client_addr)) {
      char hop_name[16];
      if (h.hop_router < 0) {
        std::snprintf(hop_name, sizeof hop_name, "edge");
      } else {
        std::snprintf(hop_name, sizeof hop_name, "r%d", h.hop_router);
      }
      std::printf("%-8s %10llu %12llu %10llu %10llu %9.2f %8u\n", hop_name,
                  static_cast<unsigned long long>(h.summary.packets),
                  static_cast<unsigned long long>(h.summary.wire_bytes),
                  static_cast<unsigned long long>(
                      h.summary.packets_client_to_server),
                  static_cast<unsigned long long>(
                      h.summary.packets_server_to_client),
                  h.mean_queue_depth, h.max_queue_depth);
    }
  }
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  std::vector<net::TraceRecord> a, b;
  std::string error;
  if (!net::load_trace_file(args[0], &a, &error)) return fail(error);
  if (!net::load_trace_file(args[1], &b, &error)) return fail(error);
  const net::TraceDiff diff = net::diff_traces(a, b);
  if (diff.identical) {
    std::printf("identical: %zu records\n", a.size());
    return 0;
  }
  std::fputs(diff.report.c_str(), stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") return cmd_run(args);
  if (command == "text") return cmd_text(args);
  if (command == "summarize") return cmd_summarize(args);
  if (command == "diff") return cmd_diff(args);
  return usage();
}
