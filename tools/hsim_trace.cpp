// hsim-trace: capture, inspect and compare packet traces.
//
//   hsim-trace run <table4|table6> [--seed N] [--cc CC] [--binary] -o FILE
//       Run a golden scenario and write the client-side trace to FILE
//       (canonical text by default, stable binary with --binary). --cc
//       selects the congestion-control module on both endpoints
//       (reno|newreno|cubic|bbr; default reno, the golden behaviour).
//   hsim-trace run dumbbell [--seed N] [--clients N] [--cc CC] [--binary] -o FILE
//       Run a small shared-bottleneck dumbbell workload with a multi-hop
//       trace attached to every router; the resulting file uses the v2
//       format with a per-hop column (router id + queue depth at enqueue).
//   hsim-trace text FILE
//       Print a trace file (either format) as canonical text; multi-hop
//       traces gain a trailing hop=<router>:<depth> column.
//   hsim-trace summarize FILE [--client ADDR] [--metrics MFILE]
//       Print the paper's aggregate numbers (Pa, Bytes, %ov, ...) for a
//       trace file. ADDR defaults to 1, the harness's client address.
//       Multi-hop traces additionally get a per-hop table (one row per
//       recording router, with mean/max egress queue depth). --metrics
//       reads a registry dump (obs::Snapshot::dump_text format) captured
//       alongside the trace and adds the per-link netem profile table
//       (radio wakeups, time under 1 Mbit, last bandwidth, standing queue),
//       so a failing mobile-profile trace is diagnosable.
//   hsim-trace profiles [NAME]
//       List the built-in netem profiles, or print NAME's canonical trace
//       file text (how profiles/<name>.netem is (re)generated:
//       hsim-trace profiles 3g-drive > profiles/3g-drive.netem).
//   hsim-trace diff A B
//       Structural record-by-record comparison. Exit 0 when identical,
//       1 when the traces differ, 2 on usage/I-O errors.
//
// Two runs of the same scenario with the same seed produce byte-identical
// traces; `hsim-trace diff` of such a pair reports zero differences.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "harness/scenarios.hpp"
#include "harness/workload.hpp"
#include "net/trace_io.hpp"
#include "netem/profile.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace hsim;

int usage() {
  std::fprintf(stderr,
               "usage: hsim-trace run <table4|table6> [--seed N] [--cc CC] [--profile P] [--binary] -o FILE\n"
               "       hsim-trace run dumbbell [--seed N] [--clients N] [--cc CC] [--profile P] [--binary] -o FILE\n"
               "       hsim-trace text FILE\n"
               "       hsim-trace summarize FILE [--client ADDR] [--metrics MFILE]\n"
               "       hsim-trace profiles [NAME]\n"
               "       hsim-trace diff A B\n");
  return 2;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "hsim-trace: %s\n", message.c_str());
  return 2;
}

int write_records(const std::string& scenario,
                  const std::vector<net::TraceRecord>& records,
                  const std::string& out_path, bool binary,
                  unsigned long long seed) {
  const bool ok = binary
                      ? net::write_file(out_path, net::trace_to_binary(records))
                      : net::write_file(out_path, net::trace_to_text(records));
  if (!ok) return fail("cannot write " + out_path);
  std::printf("%s: %zu records (%s, seed %llu) -> %s\n", scenario.c_str(),
              records.size(), binary ? "binary" : "text", seed,
              out_path.c_str());
  return 0;
}

/// Per-link drop table from the run's metrics registry: every labelled link
/// publishes `net.link.<label>.*` counters, so drops are visible at every
/// layer, not just the bottleneck queues.
void print_link_table(const obs::Snapshot& metrics) {
  struct Row {
    std::uint64_t sent = 0, queue = 0, random = 0, burst = 0, outage = 0,
                  corrupted = 0;
  };
  std::map<std::string, Row> rows;
  const std::string prefix = "net.link.";
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind(prefix, 0) != 0) continue;
    const std::size_t field_dot = name.rfind('.');
    if (field_dot <= prefix.size()) continue;  // unlabelled aggregate counter
    const std::string label = name.substr(prefix.size(),
                                          field_dot - prefix.size());
    const std::string field = name.substr(field_dot + 1);
    Row& row = rows[label];
    if (field == "packets_sent") row.sent = value;
    else if (field == "dropped_queue") row.queue = value;
    else if (field == "dropped_random") row.random = value;
    else if (field == "dropped_burst") row.burst = value;
    else if (field == "dropped_outage") row.outage = value;
    else if (field == "corrupted") row.corrupted = value;
  }
  if (rows.empty()) return;
  std::printf("\nper-link (net.link.<label>.*):\n");
  std::printf("%-14s %10s %8s %8s %8s %8s %9s\n", "link", "sent", "d-queue",
              "d-rand", "d-burst", "d-outage", "corrupted");
  for (const auto& [label, row] : rows) {
    std::printf("%-14s %10llu %8llu %8llu %8llu %8llu %9llu\n", label.c_str(),
                static_cast<unsigned long long>(row.sent),
                static_cast<unsigned long long>(row.queue),
                static_cast<unsigned long long>(row.random),
                static_cast<unsigned long long>(row.burst),
                static_cast<unsigned long long>(row.outage),
                static_cast<unsigned long long>(row.corrupted));
  }
}

/// Per-link netem profile table: radio wakeups, serialisation time spent
/// under 1 Mbit, the bandwidth gauge (last transmission's segment rate) and
/// the standing-queue delay gauge with its bufferbloat peak. Rows exist only
/// for labelled links carrying non-trivial dynamics.
void print_netem_table(const std::map<std::string, std::uint64_t>& counters,
                       const std::map<std::string, std::int64_t>& gauges,
                       const std::map<std::string, std::int64_t>& peaks) {
  struct Row {
    std::uint64_t wakeups = 0, under_1mbit_ns = 0;
    std::int64_t bandwidth = 0, standing_ns = 0, standing_peak_ns = 0;
  };
  std::map<std::string, Row> rows;
  const std::string prefix = "netem.";
  const auto label_of = [&prefix](const std::string& name, std::string* field) {
    const std::size_t field_dot = name.rfind('.');
    if (name.rfind(prefix, 0) != 0 || field_dot <= prefix.size()) return std::string();
    *field = name.substr(field_dot + 1);
    std::string label = name.substr(prefix.size(), field_dot - prefix.size());
    // Two-part field names (bandwidth_bps has no dot, tx_under_1mbit_ns does
    // not either) — nothing else to strip.
    return label;
  };
  for (const auto& [name, value] : counters) {
    std::string field;
    const std::string label = label_of(name, &field);
    if (label.empty()) continue;
    if (field == "radio_wakeups") rows[label].wakeups = value;
    else if (field == "tx_under_1mbit_ns") rows[label].under_1mbit_ns = value;
  }
  for (const auto& [name, value] : gauges) {
    std::string field;
    const std::string label = label_of(name, &field);
    if (label.empty()) continue;
    if (field == "bandwidth_bps") rows[label].bandwidth = value;
    else if (field == "standing_queue_ns") {
      rows[label].standing_ns = value;
      const auto peak = peaks.find(name);
      if (peak != peaks.end()) rows[label].standing_peak_ns = peak->second;
    }
  }
  if (rows.empty()) return;
  std::printf("\nper-link netem profile (netem.<label>.*):\n");
  std::printf("%-14s %8s %14s %12s %11s %11s\n", "link", "wakeups",
              "under-1Mbit-ms", "last-bw-bps", "standing-ms", "peak-q-ms");
  for (const auto& [label, row] : rows) {
    std::printf("%-14s %8llu %14.1f %12lld %11.2f %11.2f\n", label.c_str(),
                static_cast<unsigned long long>(row.wakeups),
                static_cast<double>(row.under_1mbit_ns) / 1e6,
                static_cast<long long>(row.bandwidth),
                static_cast<double>(row.standing_ns) / 1e6,
                static_cast<double>(row.standing_peak_ns) / 1e6);
  }
}

/// A small dumbbell workload with a multi-hop trace on every router: each
/// packet appears once per router crossed, tagged with the router id and the
/// egress queue depth it found at enqueue.
int cmd_run_dumbbell(const std::vector<std::string>& args,
                     const std::string& out_path, bool binary,
                     std::uint64_t seed, unsigned clients, tcp::CcKind cc,
                     const std::string& profile) {
  harness::WorkloadConfig config;
  config.num_clients = clients;
  config.master_seed = seed;
  config.topology = harness::TopologyKind::kDumbbell;
  config.cc = cc;
  config.profile = profile;
  net::PacketTrace hop_trace(/*client_addr=*/1);  // direction anchor: server
  config.hop_trace = &hop_trace;
  const harness::WorkloadResult result =
      harness::run_workload(config, harness::shared_site());
  (void)args;
  const int status = write_records("dumbbell", hop_trace.records(), out_path,
                                   binary,
                                   static_cast<unsigned long long>(seed));
  if (status == 0) {
    print_link_table(result.metrics);
    print_netem_table(result.metrics.counters, result.metrics.gauges,
                      result.metrics.gauge_peaks);
  }
  return status;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string out_path;
  bool binary = false;
  std::uint64_t seed = 1;
  unsigned clients = 4;
  tcp::CcKind cc = tcp::CcKind::kReno;
  std::string profile;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--clients" && i + 1 < args.size()) {
      clients = static_cast<unsigned>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--cc" && i + 1 < args.size()) {
      if (!tcp::parse_cc_kind(args[++i], &cc)) {
        return fail("unknown --cc (try: reno, newreno, cubic, bbr)");
      }
    } else if (args[i] == "--profile" && i + 1 < args.size()) {
      // Netem profile overlay, mirroring --cc / HSIM_CC: the flag wins,
      // empty falls back to HSIM_PROFILE inside the harness.
      profile = args[++i];
    } else if (args[i] == "--binary") {
      binary = true;
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      return usage();
    }
  }
  if (out_path.empty()) return usage();
  if (!profile.empty()) {
    // Validate up front for a friendly message instead of a harness throw.
    try {
      bool flat = false;
      (void)harness::resolve_profile(profile, &flat);
    } catch (const std::invalid_argument& e) {
      return fail(e.what());
    }
  }

  if (args[0] == "dumbbell") {
    return cmd_run_dumbbell(args, out_path, binary, seed, clients, cc,
                            profile);
  }
  harness::ExperimentSpec spec;
  if (!harness::golden_spec_by_name(args[0], &spec)) {
    return fail("unknown scenario '" + args[0] +
                "' (try: table4, table6, dumbbell)");
  }
  spec.seed = seed;
  spec.server.tcp.cc = cc;
  spec.client.tcp.cc = cc;
  spec.profile = profile;
  const std::vector<net::TraceRecord> records =
      harness::capture_trace(spec, harness::shared_site());
  return write_records(args[0], records, out_path, binary,
                       static_cast<unsigned long long>(spec.seed));
}

int cmd_text(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::vector<net::TraceRecord> records;
  std::string error;
  if (!net::load_trace_file(args[0], &records, &error)) return fail(error);
  std::fputs(net::trace_to_text(records).c_str(), stdout);
  return 0;
}

/// Parses an obs::Snapshot::dump_text dump back into counter/gauge maps
/// ("counter NAME V" / "gauge NAME V peak=P" lines; histograms are skipped).
bool load_metrics_dump(const std::string& path,
                       std::map<std::string, std::uint64_t>* counters,
                       std::map<std::string, std::int64_t>* gauges,
                       std::map<std::string, std::int64_t>* peaks) {
  std::ifstream in(path);
  if (!in) return false;
  std::string kind, name;
  while (in >> kind >> name) {
    if (kind == "counter") {
      unsigned long long v = 0;
      if (!(in >> v)) return false;
      (*counters)[name] = v;
    } else if (kind == "gauge") {
      long long v = 0;
      std::string peak_tok;
      if (!(in >> v >> peak_tok)) return false;
      (*gauges)[name] = v;
      if (peak_tok.rfind("peak=", 0) == 0) {
        (*peaks)[name] = std::strtoll(peak_tok.c_str() + 5, nullptr, 10);
      }
    } else {
      in.ignore(4096, '\n');  // histogram or unknown line: skip the rest
    }
  }
  return true;
}

int cmd_summarize(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  net::IpAddr client_addr = 1;
  std::string metrics_path;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--client" && i + 1 < args.size()) {
      client_addr = static_cast<net::IpAddr>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else {
      return usage();
    }
  }
  std::vector<net::TraceRecord> records;
  std::string error;
  if (!net::load_trace_file(args[0], &records, &error)) return fail(error);
  const net::TraceSummary s = net::summarize_records(records, client_addr);
  std::printf("records            %zu\n", records.size());
  std::printf("packets            %llu\n",
              static_cast<unsigned long long>(s.packets));
  std::printf("wire bytes         %llu\n",
              static_cast<unsigned long long>(s.wire_bytes));
  std::printf("payload bytes      %llu\n",
              static_cast<unsigned long long>(s.payload_bytes));
  std::printf("packets c->s       %llu\n",
              static_cast<unsigned long long>(s.packets_client_to_server));
  std::printf("packets s->c       %llu\n",
              static_cast<unsigned long long>(s.packets_server_to_client));
  std::printf("overhead           %.2f%%\n", s.overhead_percent);
  std::printf("mean packet size   %.1f\n", s.mean_packet_size);
  std::printf("elapsed            %.6f s\n", s.elapsed_seconds());
  if (net::trace_has_hops(records)) {
    std::printf("\nper-hop (multi-hop trace):\n");
    std::printf("%-8s %10s %12s %10s %10s %9s %8s\n", "hop", "packets",
                "wire-bytes", "c->s", "s->c", "mean-q", "max-q");
    for (const net::HopSummary& h : net::summarize_by_hop(records,
                                                          client_addr)) {
      char hop_name[16];
      if (h.hop_router < 0) {
        std::snprintf(hop_name, sizeof hop_name, "edge");
      } else {
        std::snprintf(hop_name, sizeof hop_name, "r%d", h.hop_router);
      }
      std::printf("%-8s %10llu %12llu %10llu %10llu %9.2f %8u\n", hop_name,
                  static_cast<unsigned long long>(h.summary.packets),
                  static_cast<unsigned long long>(h.summary.wire_bytes),
                  static_cast<unsigned long long>(
                      h.summary.packets_client_to_server),
                  static_cast<unsigned long long>(
                      h.summary.packets_server_to_client),
                  h.mean_queue_depth, h.max_queue_depth);
    }
  }
  if (!metrics_path.empty()) {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges, peaks;
    if (!load_metrics_dump(metrics_path, &counters, &gauges, &peaks)) {
      return fail("cannot read metrics dump " + metrics_path);
    }
    print_netem_table(counters, gauges, peaks);
    const auto wakeups = counters.find("netem.radio_wakeups");
    const auto under = counters.find("netem.tx_under_1mbit_ns");
    if (wakeups != counters.end() || under != counters.end()) {
      std::printf("\nnetem aggregate: %llu radio wakeups, %.1f ms serialised under 1 Mbit\n",
                  static_cast<unsigned long long>(
                      wakeups != counters.end() ? wakeups->second : 0),
                  static_cast<double>(
                      under != counters.end() ? under->second : 0) / 1e6);
    }
  }
  return 0;
}

int cmd_profiles(const std::vector<std::string>& args) {
  if (args.empty()) {
    for (const std::string& name : netem::named_profile_names()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }
  if (args.size() != 1) return usage();
  const std::optional<netem::PathProfile> p = netem::named_profile(args[0]);
  if (!p) return fail("unknown profile '" + args[0] + "'");
  std::fputs(netem::profile_to_text(*p).c_str(), stdout);
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  std::vector<net::TraceRecord> a, b;
  std::string error;
  if (!net::load_trace_file(args[0], &a, &error)) return fail(error);
  if (!net::load_trace_file(args[1], &b, &error)) return fail(error);
  const net::TraceDiff diff = net::diff_traces(a, b);
  if (diff.identical) {
    std::printf("identical: %zu records\n", a.size());
    return 0;
  }
  std::fputs(diff.report.c_str(), stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") return cmd_run(args);
  if (command == "text") return cmd_text(args);
  if (command == "summarize") return cmd_summarize(args);
  if (command == "profiles") return cmd_profiles(args);
  if (command == "diff") return cmd_diff(args);
  return usage();
}
