// hsim-trace: capture, inspect and compare packet traces.
//
//   hsim-trace run <table4|table6> [--seed N] [--binary] -o FILE
//       Run a golden scenario and write the client-side trace to FILE
//       (canonical text by default, stable binary with --binary).
//   hsim-trace text FILE
//       Print a trace file (either format) as canonical text.
//   hsim-trace summarize FILE [--client ADDR]
//       Print the paper's aggregate numbers (Pa, Bytes, %ov, ...) for a
//       trace file. ADDR defaults to 1, the harness's client address.
//   hsim-trace diff A B
//       Structural record-by-record comparison. Exit 0 when identical,
//       1 when the traces differ, 2 on usage/I-O errors.
//
// Two runs of the same scenario with the same seed produce byte-identical
// traces; `hsim-trace diff` of such a pair reports zero differences.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "net/trace_io.hpp"

namespace {

using namespace hsim;

int usage() {
  std::fprintf(stderr,
               "usage: hsim-trace run <table4|table6> [--seed N] [--binary] -o FILE\n"
               "       hsim-trace text FILE\n"
               "       hsim-trace summarize FILE [--client ADDR]\n"
               "       hsim-trace diff A B\n");
  return 2;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "hsim-trace: %s\n", message.c_str());
  return 2;
}

int cmd_run(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  harness::ExperimentSpec spec;
  if (!harness::golden_spec_by_name(args[0], &spec)) {
    return fail("unknown scenario '" + args[0] + "' (try: table4, table6)");
  }
  std::string out_path;
  bool binary = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--seed" && i + 1 < args.size()) {
      spec.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--binary") {
      binary = true;
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      return usage();
    }
  }
  if (out_path.empty()) return usage();

  const std::vector<net::TraceRecord> records =
      harness::capture_trace(spec, harness::shared_site());
  const bool ok = binary
                      ? net::write_file(out_path, net::trace_to_binary(records))
                      : net::write_file(out_path, net::trace_to_text(records));
  if (!ok) return fail("cannot write " + out_path);
  std::printf("%s: %zu records (%s, seed %llu) -> %s\n", args[0].c_str(),
              records.size(), binary ? "binary" : "text",
              static_cast<unsigned long long>(spec.seed), out_path.c_str());
  return 0;
}

int cmd_text(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  std::vector<net::TraceRecord> records;
  std::string error;
  if (!net::load_trace_file(args[0], &records, &error)) return fail(error);
  std::fputs(net::trace_to_text(records).c_str(), stdout);
  return 0;
}

int cmd_summarize(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  net::IpAddr client_addr = 1;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--client" && i + 1 < args.size()) {
      client_addr = static_cast<net::IpAddr>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else {
      return usage();
    }
  }
  std::vector<net::TraceRecord> records;
  std::string error;
  if (!net::load_trace_file(args[0], &records, &error)) return fail(error);
  const net::TraceSummary s = net::summarize_records(records, client_addr);
  std::printf("records            %zu\n", records.size());
  std::printf("packets            %llu\n",
              static_cast<unsigned long long>(s.packets));
  std::printf("wire bytes         %llu\n",
              static_cast<unsigned long long>(s.wire_bytes));
  std::printf("payload bytes      %llu\n",
              static_cast<unsigned long long>(s.payload_bytes));
  std::printf("packets c->s       %llu\n",
              static_cast<unsigned long long>(s.packets_client_to_server));
  std::printf("packets s->c       %llu\n",
              static_cast<unsigned long long>(s.packets_server_to_client));
  std::printf("overhead           %.2f%%\n", s.overhead_percent);
  std::printf("mean packet size   %.1f\n", s.mean_packet_size);
  std::printf("elapsed            %.6f s\n", s.elapsed_seconds());
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  std::vector<net::TraceRecord> a, b;
  std::string error;
  if (!net::load_trace_file(args[0], &a, &error)) return fail(error);
  if (!net::load_trace_file(args[1], &b, &error)) return fail(error);
  const net::TraceDiff diff = net::diff_traces(a, b);
  if (diff.identical) {
    std::printf("identical: %zu records\n", a.size());
    return 0;
  }
  std::fputs(diff.report.c_str(), stdout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "run") return cmd_run(args);
  if (command == "text") return cmd_text(args);
  if (command == "summarize") return cmd_summarize(args);
  if (command == "diff") return cmd_diff(args);
  return usage();
}
