// Golden-trace regression suite.
//
// Each golden file is the canonical text export of the client-side packet
// trace for one fully-pinned scenario (see harness/scenarios.hpp). The test
// re-runs the scenario and compares byte-for-byte. Any behavioural change —
// a TCP constant, a framing decision, an event-ordering tweak — perturbs the
// trace and fails loudly with a readable structural diff.
//
// When a golden comparison fails, the freshly-captured trace and the diff
// report are written next to the test binary (golden_<name>.actual.trace /
// golden_<name>.diff.txt) so CI can upload them as artifacts.
//
// Regenerating goldens after an *intentional* behaviour change:
//   build/tools/hsim-trace run table4 -o tests/golden/table4.trace
//   build/tools/hsim-trace run table6 -o tests/golden/table6.trace
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/scenarios.hpp"
#include "net/trace_io.hpp"

namespace hsim {
namespace {

#ifndef HSIM_GOLDEN_DIR
#error "HSIM_GOLDEN_DIR must point at tests/golden"
#endif

std::string golden_path(const std::string& name) {
  return std::string(HSIM_GOLDEN_DIR) + "/" + name + ".trace";
}

void check_against_golden(const std::string& name,
                          const harness::ExperimentSpec& spec) {
  const std::vector<net::TraceRecord> actual =
      harness::capture_trace(spec, harness::shared_site());
  ASSERT_FALSE(actual.empty()) << "scenario " << name << " captured no packets";

  std::vector<net::TraceRecord> expected;
  std::string error;
  ASSERT_TRUE(net::load_trace_file(golden_path(name), &expected, &error))
      << error << "\n(regenerate with: hsim-trace run " << name << " -o "
      << golden_path(name) << ")";

  const net::TraceDiff diff = net::diff_traces(expected, actual);
  if (!diff.identical) {
    // Leave artifacts for CI next to the test binary.
    net::write_file("golden_" + name + ".actual.trace",
                    net::trace_to_text(actual));
    net::write_file("golden_" + name + ".diff.txt", diff.report);
  }
  EXPECT_TRUE(diff.identical)
      << "golden trace '" << name << "' diverged (" << diff.differing
      << " differing records, first at index " << diff.first_diff << ")\n"
      << diff.report;

  // The canonical text rendering must match byte-for-byte too — the golden
  // is the file of record, not just its parsed form.
  std::vector<std::uint8_t> raw;
  ASSERT_TRUE(net::read_file(golden_path(name), &raw));
  EXPECT_EQ(std::string(raw.begin(), raw.end()), net::trace_to_text(actual));
}

TEST(GoldenTrace, Table4Http10Lan) {
  check_against_golden("table4", harness::golden_table4_spec());
}

TEST(GoldenTrace, Table6Http11PipelinedWan) {
  check_against_golden("table6", harness::golden_table6_spec());
}

// The h2 goldens pin the multiplexed framing layer end to end: preface,
// SETTINGS exchange, stream scheduling, server push, and flow-control
// WINDOW_UPDATE cadence all shape the packet sequence.
TEST(GoldenTrace, Table4H2Lan) {
  check_against_golden("table4h2", harness::golden_table4_h2_spec());
}

TEST(GoldenTrace, Table6H2Wan) {
  check_against_golden("table6h2", harness::golden_table6_h2_spec());
}

// Same seed, two fresh runs: the simulator itself must be deterministic, or
// the golden comparison above means nothing.
TEST(GoldenTrace, SameSeedRunsAreIdentical) {
  const harness::ExperimentSpec spec = harness::golden_table4_spec();
  const auto a = harness::capture_trace(spec, harness::shared_site());
  const auto b = harness::capture_trace(spec, harness::shared_site());
  const net::TraceDiff diff = net::diff_traces(a, b);
  EXPECT_TRUE(diff.identical) << diff.report;
  EXPECT_EQ(net::trace_to_text(a), net::trace_to_text(b));
}

// A different seed must perturb the trace — otherwise the seed isn't reaching
// the layers the goldens are supposed to pin down.
TEST(GoldenTrace, DifferentSeedPerturbsTrace) {
  harness::ExperimentSpec spec = harness::golden_table6_spec();
  const auto a = harness::capture_trace(spec, harness::shared_site());
  spec.seed = 2;
  const auto b = harness::capture_trace(spec, harness::shared_site());
  EXPECT_FALSE(net::diff_traces(a, b).identical);
}

// Round-trips: a golden survives text and binary encode/decode unchanged, so
// regenerated files stay comparable across formats.
TEST(GoldenTrace, GoldenRoundTripsThroughBothFormats) {
  for (const std::string& name : harness::golden_scenario_names()) {
    std::vector<net::TraceRecord> records;
    std::string error;
    ASSERT_TRUE(net::load_trace_file(golden_path(name), &records, &error))
        << error;

    std::vector<net::TraceRecord> from_text;
    ASSERT_TRUE(
        net::trace_from_text(net::trace_to_text(records), &from_text, &error))
        << error;
    EXPECT_TRUE(net::diff_traces(records, from_text).identical) << name;

    std::vector<net::TraceRecord> from_binary;
    ASSERT_TRUE(net::trace_from_binary(net::trace_to_binary(records),
                                       &from_binary, &error))
        << error;
    EXPECT_TRUE(net::diff_traces(records, from_binary).identical) << name;
  }
}

}  // namespace
}  // namespace hsim
