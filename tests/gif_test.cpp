#include "content/gif.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace hsim::content {
namespace {

TEST(LzwTest, RoundtripSimpleSequence) {
  std::vector<std::uint8_t> data = {0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3};
  const auto compressed = gif_lzw_compress(data, 2);
  const auto decompressed = gif_lzw_decompress(compressed, 2);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(*decompressed, data);
}

TEST(LzwTest, RoundtripEmpty) {
  const auto compressed = gif_lzw_compress({}, 2);
  const auto decompressed = gif_lzw_decompress(compressed, 2);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_TRUE(decompressed->empty());
}

TEST(LzwTest, RoundtripSingleSymbol) {
  std::vector<std::uint8_t> data = {3};
  const auto decompressed = gif_lzw_decompress(gif_lzw_compress(data, 2), 2);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(*decompressed, data);
}

TEST(LzwTest, LongRunsCompress) {
  std::vector<std::uint8_t> data(50'000, 1);
  const auto compressed = gif_lzw_compress(data, 2);
  EXPECT_LT(compressed.size(), data.size() / 20);
  const auto decompressed = gif_lzw_decompress(compressed, 2);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(*decompressed, data);
}

TEST(LzwTest, DictionaryResetAt4096Codes) {
  // Enough distinct material to overflow the 12-bit code space: random
  // 8-bit symbols force dictionary growth to the reset point.
  sim::Rng rng(3);
  std::vector<std::uint8_t> data(60'000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform(0, 255));
  const auto compressed = gif_lzw_compress(data, 8);
  const auto decompressed = gif_lzw_decompress(compressed, 8);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(*decompressed, data);
}

TEST(LzwTest, KOmegaKCase) {
  // "ababab..." triggers the code == dict.size() special case early.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back(0);
    data.push_back(1);
  }
  const auto decompressed = gif_lzw_decompress(gif_lzw_compress(data, 2), 2);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(*decompressed, data);
}

TEST(LzwTest, RejectsGarbage) {
  std::vector<std::uint8_t> junk = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  // May decode some prefix, but without a valid EOI the decoder must
  // report failure rather than silently succeed.
  const auto result = gif_lzw_decompress(junk, 2);
  EXPECT_FALSE(result.has_value());
}

class LzwProperty : public ::testing::TestWithParam<int> {};

TEST_P(LzwProperty, RandomIndexStreamsRoundtrip) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 5);
  const unsigned mcs = static_cast<unsigned>(rng.uniform(2, 8));
  const std::size_t n = static_cast<std::size_t>(rng.uniform(0, 20'000));
  std::vector<std::uint8_t> data(n);
  const std::uint8_t max_sym = static_cast<std::uint8_t>((1u << mcs) - 1);
  // Mixture of runs and noise.
  std::size_t i = 0;
  while (i < n) {
    if (rng.chance(0.5)) {
      const auto run = static_cast<std::size_t>(rng.uniform(1, 200));
      const auto sym = static_cast<std::uint8_t>(rng.uniform(0, max_sym));
      for (std::size_t j = 0; j < run && i < n; ++j) data[i++] = sym;
    } else {
      data[i++] = static_cast<std::uint8_t>(rng.uniform(0, max_sym));
    }
  }
  const auto decompressed =
      gif_lzw_decompress(gif_lzw_compress(data, mcs), mcs);
  ASSERT_TRUE(decompressed.has_value());
  EXPECT_EQ(*decompressed, data);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LzwProperty, ::testing::Range(0, 20));

TEST(GifTest, EncodeDecodeStaticImage) {
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 60;
  spec.height = 40;
  spec.colors = 16;
  spec.seed = 7;
  const IndexedImage img = generate_image(spec);
  const auto gif = encode_gif(img);
  const GifDecodeResult decoded = decode_gif(gif);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.frames.size(), 1u);
  EXPECT_EQ(decoded.frames[0].width, img.width);
  EXPECT_EQ(decoded.frames[0].height, img.height);
  EXPECT_EQ(decoded.frames[0].pixels, img.pixels);
  EXPECT_EQ(decoded.frames[0].palette, img.palette);
}

TEST(GifTest, SpacerGifIsTiny) {
  // The paper's smallest image is 70 bytes — a 1x1-ish invisible spacer.
  SyntheticSpec spec;
  spec.kind = ImageKind::kSpacer;
  spec.width = 1;
  spec.height = 1;
  spec.colors = 2;
  const auto gif = encode_gif(generate_image(spec));
  EXPECT_LT(gif.size(), 80u);
  EXPECT_TRUE(decode_gif(gif).ok);
}

TEST(GifTest, EncodeDecodeAnimation) {
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 40;
  spec.height = 30;
  spec.colors = 8;
  spec.seed = 11;
  const Animation anim = generate_animation(spec, 5);
  const auto gif = encode_animated_gif(anim);
  const GifDecodeResult decoded = decode_gif(gif);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.frames.size(), 5u);
  for (std::size_t f = 0; f < 5; ++f) {
    EXPECT_EQ(decoded.frames[f].pixels, anim.frames[f].pixels) << f;
  }
}

TEST(GifTest, AnimationLargerThanSingleFrame) {
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 40;
  spec.height = 30;
  spec.colors = 8;
  const auto single = encode_gif(generate_image(spec));
  const auto anim = encode_animated_gif(generate_animation(spec, 8));
  EXPECT_GT(anim.size(), single.size());
}

TEST(GifTest, DecodeRejectsCorruptSignature) {
  std::vector<std::uint8_t> junk = {'J', 'P', 'E', 'G', '0', '0',
                                    0,   0,   0,   0,   0,   0,  0};
  EXPECT_FALSE(decode_gif(junk).ok);
}

TEST(GifTest, DecodeRejectsTruncation) {
  SyntheticSpec spec;
  spec.width = 30;
  spec.height = 30;
  auto gif = encode_gif(generate_image(spec));
  gif.resize(gif.size() / 2);
  EXPECT_FALSE(decode_gif(gif).ok);
}

TEST(GifTest, PhotoCompressesWorseThanBanner) {
  SyntheticSpec photo;
  photo.kind = ImageKind::kPhoto;
  photo.width = 100;
  photo.height = 80;
  photo.colors = 128;
  SyntheticSpec banner = photo;
  banner.kind = ImageKind::kTextBanner;
  banner.colors = 4;
  const auto photo_gif = encode_gif(generate_image(photo));
  const auto banner_gif = encode_gif(generate_image(banner));
  EXPECT_GT(photo_gif.size(), 2 * banner_gif.size());
}

}  // namespace
}  // namespace hsim::content
