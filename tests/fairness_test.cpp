// Fairness property test.
//
// N perfectly symmetric clients — identical configuration, simultaneous
// arrival, identical access links — share one bottleneck into one server
// over HTTP/1.1 persistent connections. Nothing distinguishes the clients
// except their RNG streams, so their page times should cluster: Jain's
// fairness index (Σx)²/(n·Σx²) must stay above a threshold. On failure the
// full per-client spread is printed for debuggability.
//
// Two topologies are exercised: the legacy star (private access legs) and
// the dumbbell, where all clients genuinely contend for one shared DropTail
// bottleneck queue. A failing dumbbell run additionally writes the full
// multi-hop packet trace next to the test binary (CI uploads it as an
// artifact), so unfair runs can be diagnosed packet by packet.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"
#include "net/trace_io.hpp"

namespace hsim {
namespace {

harness::WorkloadConfig symmetric_config(unsigned n) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = n;
  cfg.arrivals = harness::ArrivalProcess::kFixedInterval;
  cfg.mean_interarrival = 0;  // everyone arrives at t = 0: fully symmetric
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 5'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 128;
  cfg.master_seed = 11;

  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 64;
  cfg.server.max_concurrent_connections = 32;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;

  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Persistent);
  cfg.client.max_attempts = 6;
  cfg.client.retry_backoff = sim::milliseconds(200);
  return cfg;
}

std::string spread_report(const harness::WorkloadResult& r) {
  std::ostringstream out;
  const std::vector<double> xs = r.completed_page_seconds();
  double lo = xs.empty() ? 0.0 : xs[0], hi = lo;
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  out << "page-time spread: min=" << lo << "s max=" << hi
      << "s median=" << r.median_page_seconds()
      << "s p95=" << r.p95_page_seconds() << "s\nper-client:";
  for (const harness::ClientOutcome& c : r.clients) {
    out << "\n  client " << c.id << ": "
        << (c.complete() ? std::to_string(c.page_seconds()) + "s"
                         : "INCOMPLETE")
        << " (retries=" << c.stats.retries << ")";
  }
  return out.str();
}

TEST(Fairness, SymmetricPersistentClientsShareTheBottleneckFairly) {
  const unsigned kClients = 16;
  const harness::WorkloadResult r =
      harness::run_workload(symmetric_config(kClients), harness::shared_site());

  ASSERT_EQ(r.completed(), kClients) << spread_report(r);
  const double jain = r.jain_fairness_index();
  EXPECT_GE(jain, 0.90) << "Jain's index " << jain << " below threshold\n"
                        << spread_report(r);
}

TEST(Fairness, SymmetricClientsBehindSharedDropTailBottleneckAreFair) {
  // The dumbbell version of the property: here the clients do not merely
  // share a funnel — every packet crosses the same two DropTail queues, so
  // an unfair discipline (or a TCP pathology like lockout) would directly
  // skew the page-time spread.
  const unsigned kClients = 16;
  harness::WorkloadConfig cfg = symmetric_config(kClients);
  cfg.topology = harness::TopologyKind::kDumbbell;
  cfg.bottleneck_queue.kind = topo::QueueDiscKind::kDropTail;
  net::PacketTrace hop_trace(/*client_addr=*/1);
  cfg.hop_trace = &hop_trace;

  const harness::WorkloadResult r =
      harness::run_workload(cfg, harness::shared_site());

  const double jain = r.jain_fairness_index();
  const bool ok = r.completed() == kClients && jain >= 0.85;
  if (!ok) {
    // Write the multi-hop trace for the CI artifact uploader: every packet
    // at every router, with the bottleneck queue depth it found.
    const char* path = "fairness_dumbbell.failing.trace";
    if (net::write_file(path, net::trace_to_text(hop_trace.records()))) {
      std::fprintf(stderr, "fairness: wrote failing-case trace to %s (%zu records)\n",
                   path, hop_trace.records().size());
    }
  }
  ASSERT_EQ(r.completed(), kClients) << spread_report(r);
  EXPECT_GE(jain, 0.85) << "Jain's index " << jain
                        << " below threshold behind shared DropTail queue\n"
                        << spread_report(r);
  // The property must not hold vacuously: the shared queues really carried
  // every client's packets.
  ASSERT_EQ(r.queues.size(), 2u);
  for (const harness::QueueSummary& q : r.queues) {
    EXPECT_EQ(q.kind, "droptail") << q.label;
    EXPECT_GT(q.stats.enqueued_packets, 0u) << q.label;
  }
}

TEST(Fairness, FairnessHoldsAcrossSeeds) {
  // The property is about the system, not one lucky seed.
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    harness::WorkloadConfig cfg = symmetric_config(16);
    cfg.master_seed = seed;
    const harness::WorkloadResult r =
        harness::run_workload(cfg, harness::shared_site());
    ASSERT_EQ(r.completed(), 16u) << "seed " << seed << "\n"
                                  << spread_report(r);
    EXPECT_GE(r.jain_fairness_index(), 0.90)
        << "seed " << seed << ": Jain's index " << r.jain_fairness_index()
        << "\n" << spread_report(r);
  }
}

}  // namespace
}  // namespace hsim
