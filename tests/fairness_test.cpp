// Fairness property test.
//
// N perfectly symmetric clients — identical configuration, simultaneous
// arrival, identical access links — share one bottleneck into one server
// over HTTP/1.1 persistent connections. Nothing distinguishes the clients
// except their RNG streams, so their page times should cluster: Jain's
// fairness index (Σx)²/(n·Σx²) must stay above a threshold. On failure the
// full per-client spread is printed for debuggability.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace hsim {
namespace {

harness::WorkloadConfig symmetric_config(unsigned n) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = n;
  cfg.arrivals = harness::ArrivalProcess::kFixedInterval;
  cfg.mean_interarrival = 0;  // everyone arrives at t = 0: fully symmetric
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 5'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 128;
  cfg.master_seed = 11;

  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 64;
  cfg.server.max_concurrent_connections = 32;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;

  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Persistent);
  cfg.client.max_attempts = 6;
  cfg.client.retry_backoff = sim::milliseconds(200);
  return cfg;
}

std::string spread_report(const harness::WorkloadResult& r) {
  std::ostringstream out;
  const std::vector<double> xs = r.completed_page_seconds();
  double lo = xs.empty() ? 0.0 : xs[0], hi = lo;
  for (double x : xs) {
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  out << "page-time spread: min=" << lo << "s max=" << hi
      << "s median=" << r.median_page_seconds()
      << "s p95=" << r.p95_page_seconds() << "s\nper-client:";
  for (const harness::ClientOutcome& c : r.clients) {
    out << "\n  client " << c.id << ": "
        << (c.complete() ? std::to_string(c.page_seconds()) + "s"
                         : "INCOMPLETE")
        << " (retries=" << c.stats.retries << ")";
  }
  return out.str();
}

TEST(Fairness, SymmetricPersistentClientsShareTheBottleneckFairly) {
  const unsigned kClients = 16;
  const harness::WorkloadResult r =
      harness::run_workload(symmetric_config(kClients), harness::shared_site());

  ASSERT_EQ(r.completed(), kClients) << spread_report(r);
  const double jain = r.jain_fairness_index();
  EXPECT_GE(jain, 0.90) << "Jain's index " << jain << " below threshold\n"
                        << spread_report(r);
}

TEST(Fairness, FairnessHoldsAcrossSeeds) {
  // The property is about the system, not one lucky seed.
  for (std::uint64_t seed : {101ull, 202ull, 303ull}) {
    harness::WorkloadConfig cfg = symmetric_config(16);
    cfg.master_seed = seed;
    const harness::WorkloadResult r =
        harness::run_workload(cfg, harness::shared_site());
    ASSERT_EQ(r.completed(), 16u) << "seed " << seed << "\n"
                                  << spread_report(r);
    EXPECT_GE(r.jain_fairness_index(), 0.90)
        << "seed " << seed << ": Jain's index " << r.jain_fairness_index()
        << "\n" << spread_report(r);
  }
}

}  // namespace
}  // namespace hsim
