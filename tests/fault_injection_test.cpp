// Link-layer fault injection: Gilbert-Elliott bursty loss, duplication,
// reordering, corruption and scheduled outages. Everything draws from the
// link's seeded Rng, so each expectation is deterministic for its seed.
#include "net/link.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"

namespace hsim::net {
namespace {

class CollectingSink : public PacketSink {
 public:
  explicit CollectingSink(sim::EventQueue& q) : queue_(q) {}
  void deliver(Packet packet) override {
    arrivals.emplace_back(queue_.now(), std::move(packet));
  }
  std::vector<std::pair<sim::Time, Packet>> arrivals;

 private:
  sim::EventQueue& queue_;
};

Packet make_packet(std::size_t payload_bytes, std::uint32_t seq = 0) {
  Packet p;
  p.payload = buf::Bytes(payload_bytes, 0xAB);
  p.tcp.seq = seq;
  return p;
}

TEST(GilbertElliottTest, StationaryAndExpectedLossMatchClosedForm) {
  GilbertElliottConfig ge;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.3;
  ge.loss_good = 0.001;
  ge.loss_bad = 0.4;
  EXPECT_NEAR(ge.stationary_bad(), 0.02 / 0.32, 1e-12);
  const double pb = 0.02 / 0.32;
  EXPECT_NEAR(ge.expected_loss(), pb * 0.4 + (1 - pb) * 0.001, 1e-12);
}

TEST(GilbertElliottTest, EmpiricalLossRateConvergesToExpectation) {
  // The long-run drop fraction of the chain must approach its closed-form
  // expectation, independently of the seed.
  GilbertElliottConfig ge;
  ge.enabled = true;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.25;
  ge.loss_good = 0.0;
  ge.loss_bad = 0.8;
  const double expected = ge.expected_loss();
  constexpr int kPackets = 40'000;

  for (const std::uint64_t seed : {11u, 222u, 3333u}) {
    sim::EventQueue q;
    CollectingSink sink(q);
    LinkConfig cfg;
    cfg.gilbert_elliott = ge;
    cfg.queue_limit_packets = kPackets + 1;
    Link link(q, cfg, sim::Rng(seed));
    link.set_sink(&sink);
    for (int i = 0; i < kPackets; ++i) link.transmit(make_packet(100));
    q.run();
    const double observed =
        static_cast<double>(link.stats().packets_dropped_burst) / kPackets;
    EXPECT_NEAR(observed, expected, 0.15 * expected)
        << "seed " << seed << ": observed " << observed << " vs expected "
        << expected;
    EXPECT_EQ(sink.arrivals.size(),
              kPackets - link.stats().packets_dropped_burst);
  }
}

TEST(GilbertElliottTest, LossesAreBursty) {
  // With loss_bad = 1 and loss_good = 0, drop runs are exactly the bad-state
  // sojourns, whose mean length is 1 / p_bad_to_good — here 4 packets. A
  // uniform Bernoulli process at the same average rate would have mean run
  // length barely above 1.
  GilbertElliottConfig ge;
  ge.enabled = true;
  ge.p_good_to_bad = 0.02;
  ge.p_bad_to_good = 0.25;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;

  sim::EventQueue q;
  CollectingSink sink(q);
  constexpr std::uint32_t kPackets = 30'000;
  LinkConfig cfg;
  cfg.gilbert_elliott = ge;
  cfg.queue_limit_packets = kPackets + 1;
  Link link(q, cfg, sim::Rng(42));
  link.set_sink(&sink);
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    link.transmit(make_packet(100, i));
  }
  q.run();

  std::vector<bool> delivered(kPackets, false);
  for (const auto& [when, p] : sink.arrivals) delivered[p.tcp.seq] = true;
  std::size_t runs = 0, dropped = 0;
  bool in_run = false;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    if (!delivered[i]) {
      ++dropped;
      if (!in_run) {
        ++runs;
        in_run = true;
      }
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 0u);
  const double mean_run = static_cast<double>(dropped) / runs;
  EXPECT_NEAR(mean_run, 4.0, 1.0);
  EXPECT_GT(mean_run, 2.0);  // clearly burstier than uniform loss
}

TEST(FaultInjectionTest, DuplicationDeliversExtraCopies) {
  sim::EventQueue q;
  CollectingSink sink(q);
  constexpr std::uint32_t kPackets = 4000;
  LinkConfig cfg;
  cfg.duplicate_probability = 0.5;
  cfg.queue_limit_packets = kPackets + 1;
  Link link(q, cfg, sim::Rng(7));
  link.set_sink(&sink);
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    link.transmit(make_packet(50, i));
  }
  q.run();
  const std::uint64_t dups = link.stats().packets_duplicated;
  EXPECT_EQ(sink.arrivals.size(), kPackets + dups);
  EXPECT_NEAR(static_cast<double>(dups) / kPackets, 0.5, 0.05);
  // A duplicate carries the same bytes as its original.
  std::vector<unsigned> copies(kPackets, 0);
  for (const auto& [when, p] : sink.arrivals) ++copies[p.tcp.seq];
  for (const unsigned c : copies) {
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, 2u);
  }
}

TEST(FaultInjectionTest, CorruptionConsumesWireTimeButDropsAtReceiver) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;  // 1000 bytes/sec
  cfg.corrupt_probability = 1.0;
  Link link(q, cfg, sim::Rng(3));
  link.set_sink(&sink);
  link.transmit(make_packet(960));  // 1000 wire bytes -> 1 s on the wire
  link.transmit(make_packet(960));
  q.run();
  // Nothing is delivered, but both packets crossed (and occupied) the wire.
  EXPECT_TRUE(sink.arrivals.empty());
  EXPECT_EQ(link.stats().packets_corrupted, 2u);
  EXPECT_EQ(link.stats().bytes_sent, 2000u);
  EXPECT_EQ(link.stats().packets_dropped(), 2u);
  EXPECT_EQ(q.now(), sim::seconds(2));
}

TEST(FaultInjectionTest, ReorderingIsBoundedByExtraDelay) {
  sim::EventQueue q;
  CollectingSink sink(q);
  constexpr std::uint32_t kPackets = 500;
  LinkConfig cfg;
  cfg.propagation_delay = sim::milliseconds(50);
  cfg.reorder_probability = 0.3;
  cfg.reorder_extra_delay = sim::milliseconds(30);
  cfg.queue_limit_packets = kPackets + 1;
  Link link(q, cfg, sim::Rng(17));
  link.set_sink(&sink);
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    link.transmit(make_packet(10, i));
  }
  q.run();
  ASSERT_EQ(sink.arrivals.size(), kPackets);  // reordering never loses data
  EXPECT_GT(link.stats().packets_reordered, 0u);
  std::size_t out_of_order = 0;
  std::uint32_t max_seq_seen = 0;
  for (const auto& [when, p] : sink.arrivals) {
    if (p.tcp.seq < max_seq_seen) ++out_of_order;
    max_seq_seen = std::max(max_seq_seen, p.tcp.seq);
    // Displacement is bounded: no packet arrives later than its nominal
    // delivery time plus the configured extra delay.
    EXPECT_LE(when, sim::milliseconds(50) + sim::milliseconds(30));
  }
  EXPECT_GT(out_of_order, 0u);
  EXPECT_EQ(out_of_order, link.stats().packets_reordered);
}

TEST(FaultInjectionTest, OrderPreservedWhenReorderingDisabled) {
  // The in-order delivery invariant must survive every other fault: jitter,
  // duplication and burst loss may thin or thicken the stream but never
  // permute it.
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.propagation_delay = sim::milliseconds(40);
  cfg.delay_jitter = 0.5;
  cfg.duplicate_probability = 0.2;
  cfg.gilbert_elliott.enabled = true;
  cfg.gilbert_elliott.p_good_to_bad = 0.05;
  cfg.gilbert_elliott.p_bad_to_good = 0.5;
  cfg.gilbert_elliott.loss_bad = 1.0;
  cfg.queue_limit_packets = 2001;
  Link link(q, cfg, sim::Rng(23));
  link.set_sink(&sink);
  constexpr std::uint32_t kPackets = 2000;
  for (std::uint32_t i = 0; i < kPackets; ++i) {
    link.transmit(make_packet(10, i));
  }
  q.run();
  ASSERT_FALSE(sink.arrivals.empty());
  for (std::size_t i = 1; i < sink.arrivals.size(); ++i) {
    EXPECT_LE(sink.arrivals[i - 1].first, sink.arrivals[i].first);
    EXPECT_LE(sink.arrivals[i - 1].second.tcp.seq,
              sink.arrivals[i].second.tcp.seq);
  }
}

TEST(OutageTest, PacketsDuringOutageAreLost) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.outages.push_back({sim::milliseconds(10), sim::milliseconds(20)});
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  EXPECT_FALSE(link.is_down(sim::milliseconds(9)));
  EXPECT_TRUE(link.is_down(sim::milliseconds(10)));
  EXPECT_TRUE(link.is_down(sim::milliseconds(19)));
  EXPECT_FALSE(link.is_down(sim::milliseconds(20)));

  link.transmit(make_packet(10, 0));  // t=0: link up, delivered
  q.schedule_at(sim::milliseconds(12),
                [&] { link.transmit(make_packet(10, 1)); });  // down: lost
  q.schedule_at(sim::milliseconds(25),
                [&] { link.transmit(make_packet(10, 2)); });  // up again
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].second.tcp.seq, 0u);
  EXPECT_EQ(sink.arrivals[1].second.tcp.seq, 2u);
  EXPECT_EQ(link.stats().packets_dropped_outage, 1u);
}

TEST(OutageTest, QueuedPacketsDrainWhenOutageBegins) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;  // 1 s per 1000-wire-byte packet
  cfg.outages.push_back({sim::milliseconds(1500), sim::seconds(100)});
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  for (std::uint32_t i = 0; i < 5; ++i) link.transmit(make_packet(960, i));
  q.run();
  // Packet 0 finishes at 1 s; packet 1 starts while the link is still up
  // (t = 1 s) and completes; packets 2-4 reach the transmitter at t = 2 s,
  // mid-outage, and are lost.
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(link.stats().packets_dropped_outage, 3u);
}

TEST(OutageTest, MakeFlapsBuildsRepeatingPattern) {
  const auto flaps = make_flaps(sim::milliseconds(100), sim::milliseconds(50),
                                sim::milliseconds(150), 3);
  ASSERT_EQ(flaps.size(), 3u);
  EXPECT_EQ(flaps[0].down_at, sim::milliseconds(100));
  EXPECT_EQ(flaps[0].up_at, sim::milliseconds(150));
  EXPECT_EQ(flaps[1].down_at, sim::milliseconds(300));
  EXPECT_EQ(flaps[1].up_at, sim::milliseconds(350));
  EXPECT_EQ(flaps[2].down_at, sim::milliseconds(500));
  EXPECT_EQ(flaps[2].up_at, sim::milliseconds(550));

  LinkConfig cfg;
  cfg.outages = flaps;
  sim::EventQueue q;
  Link link(q, cfg, sim::Rng(1));
  EXPECT_TRUE(link.is_down(sim::milliseconds(320)));
  EXPECT_FALSE(link.is_down(sim::milliseconds(400)));
  EXPECT_TRUE(link.is_down(sim::milliseconds(549)));
  EXPECT_FALSE(link.is_down(sim::milliseconds(600)));
}

}  // namespace
}  // namespace hsim::net
