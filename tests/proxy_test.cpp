// Proxy tests, including the paper's Keep-Alive-through-blind-proxies trap.
#include <gtest/gtest.h>

#include "client/robot.hpp"
#include "harness/experiment.hpp"
#include "http/parser.hpp"
#include "proxy/proxy.hpp"
#include "server/server.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

constexpr net::IpAddr kClientAddr = 1;
constexpr net::IpAddr kProxyAddr = 2;
constexpr net::IpAddr kOriginAddr = 3;

/// Routes the proxy host's outgoing packets onto the right channel by
/// destination address.
struct Router : net::PacketSink {
  std::map<net::IpAddr, net::Link*> routes;
  void deliver(net::Packet p) override {
    const auto it = routes.find(p.dst);
    if (it != routes.end()) it->second->transmit(std::move(p));
  }
};

struct ProxyNet {
  explicit ProxyNet(sim::Time rtt = sim::milliseconds(20))
      : rng(31),
        client_proxy(queue, net::ChannelConfig::symmetric(0, rtt),
                     rng.fork()),
        proxy_origin(queue, net::ChannelConfig::symmetric(0, rtt),
                     rng.fork()),
        client(queue, kClientAddr, "client", rng.fork()),
        proxy_host(queue, kProxyAddr, "proxy", rng.fork()),
        origin(queue, kOriginAddr, "origin", rng.fork()),
        proxy_uplink(queue, net::LinkConfig{}, rng.fork()) {
    client_proxy.attach_a(&client);
    client_proxy.attach_b(&proxy_host);
    proxy_origin.attach_a(&proxy_host);
    proxy_origin.attach_b(&origin);
    client.attach_uplink(&client_proxy.uplink_from_a());
    origin.attach_uplink(&proxy_origin.uplink_from_b());
    router.routes[kClientAddr] = &client_proxy.uplink_from_b();
    router.routes[kOriginAddr] = &proxy_origin.uplink_from_a();
    proxy_uplink.set_sink(&router);
    proxy_host.attach_uplink(&proxy_uplink);
  }

  server::ServerConfig origin_config() {
    server::ServerConfig c = server::apache_config();
    c.per_request_cpu = sim::microseconds(500);
    c.per_connection_cpu = sim::microseconds(500);
    return c;
  }

  sim::EventQueue queue;
  sim::Rng rng;
  net::Channel client_proxy;
  net::Channel proxy_origin;
  tcp::Host client;
  tcp::Host proxy_host;
  tcp::Host origin;
  net::Link proxy_uplink;
  Router router;
};

/// Captures and parses requests crossing the proxy->origin hop.
struct UpstreamRequestTap {
  http::RequestParser parser;
  std::vector<http::Request> requests;
  void attach(net::Link& link) {
    link.set_tap([this](const net::Packet& p) {
      if (p.payload.empty()) return;
      parser.feed({p.payload.data(), p.payload.size()});
      while (auto r = parser.next()) requests.push_back(std::move(*r));
    });
  }
};

TEST(HttpProxyTest, ForwardsGetEndToEnd) {
  ProxyNet net;
  server::HttpServer origin_server(
      net.origin, server::StaticSite::from_microscape(harness::shared_site()),
      net.origin_config(), net.rng.fork());
  origin_server.start(80);
  proxy::HttpProxyConfig pc;
  pc.origin_addr = kOriginAddr;
  proxy::HttpProxy proxy(net.proxy_host, pc);
  proxy.start(8080);

  UpstreamRequestTap tap;
  tap.attach(net.proxy_origin.uplink_from_a());

  auto conn = net.client.connect(kProxyAddr, 8080, tcp::TcpOptions{});
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  std::vector<http::Response> responses;
  conn->set_on_data([&] {
    const auto b = conn->read_all().to_vector();
    parser.feed({b.data(), b.size()});
    while (auto r = parser.next()) responses.push_back(std::move(*r));
  });
  conn->set_on_connected([&] {
    conn->send(
        "GET /index.html HTTP/1.0\r\nHost: x\r\n"
        "Connection: Keep-Alive\r\nKeep-Alive: 30\r\n\r\n");
  });
  net.queue.run_until(sim::seconds(60));

  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body.size(), harness::shared_site().html.size());
  EXPECT_TRUE(responses[0].headers.contains("Via"));

  // The origin-side request must have no hop-by-hop headers left.
  ASSERT_EQ(tap.requests.size(), 1u);
  EXPECT_FALSE(tap.requests[0].headers.contains("Connection"));
  EXPECT_FALSE(tap.requests[0].headers.contains("Keep-Alive"));
  EXPECT_TRUE(tap.requests[0].headers.contains("Via"));
  EXPECT_GE(proxy.stats().keep_alive_headers_stripped, 1u);
}

TEST(HttpProxyTest, SequentialRequestsOnOneClientConnection) {
  ProxyNet net;
  server::HttpServer origin_server(
      net.origin, server::StaticSite::from_microscape(harness::shared_site()),
      net.origin_config(), net.rng.fork());
  origin_server.start(80);
  proxy::HttpProxyConfig pc;
  pc.origin_addr = kOriginAddr;
  proxy::HttpProxy proxy(net.proxy_host, pc);
  proxy.start(8080);

  auto conn = net.client.connect(kProxyAddr, 8080, tcp::TcpOptions{});
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  parser.push_request_context(http::Method::kGet);
  std::vector<http::Response> responses;
  conn->set_on_data([&] {
    const auto b = conn->read_all().to_vector();
    parser.feed({b.data(), b.size()});
    while (auto r = parser.next()) responses.push_back(std::move(*r));
  });
  conn->set_on_connected([&] {
    conn->send(
        "GET /images/img00.gif HTTP/1.1\r\nHost: x\r\n\r\n"
        "GET /images/img01.gif HTTP/1.1\r\nHost: x\r\n\r\n");
  });
  net.queue.run_until(sim::seconds(60));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[1].status, 200);
  // One upstream connection per request, as a 1.0 proxy behaves.
  EXPECT_EQ(proxy.stats().upstream_connections, 2u);
}

TEST(TunnelProxyTest, BlindKeepAliveForwardingHangsConnections) {
  // The paper's trap: the tunnel forwards "Connection: Keep-Alive" verbatim;
  // the origin honours it and keeps its side open; the tunnel (which only
  // closes when the origin closes) leaves the client connection dangling.
  ProxyNet net;
  server::ServerConfig oc = net.origin_config();
  oc.keep_alive = true;
  oc.idle_timeout = sim::seconds(300);  // patient origin
  server::HttpServer origin_server(
      net.origin, server::StaticSite::from_microscape(harness::shared_site()),
      oc, net.rng.fork());
  origin_server.start(80);

  proxy::TunnelProxyConfig tc;
  tc.origin_addr = kOriginAddr;
  tc.strip_connection_headers = false;  // the blind 1996 proxy
  tc.idle_timeout = sim::seconds(120);
  proxy::TunnelProxy tunnel(net.proxy_host, tc);
  tunnel.start(8080);

  auto conn = net.client.connect(kProxyAddr, 8080, tcp::TcpOptions{});
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  bool got_response = false;
  bool peer_closed = false;
  sim::Time closed_at = 0;
  conn->set_on_data([&] {
    const auto b = conn->read_all().to_vector();
    parser.feed({b.data(), b.size()});
    if (parser.next()) got_response = true;
  });
  conn->set_on_peer_fin([&] {
    peer_closed = true;
    closed_at = net.queue.now();
  });
  conn->set_on_connected([&] {
    conn->send(
        "GET /images/img00.gif HTTP/1.0\r\nHost: x\r\n"
        "Connection: Keep-Alive\r\n\r\n");
  });

  net.queue.run_until(sim::seconds(60));
  // The response arrived (framed by Content-Length)...
  EXPECT_TRUE(got_response);
  // ...but nobody closed anything: the origin waits for more requests, the
  // tunnel waits for the origin. The connection is hung.
  EXPECT_FALSE(peer_closed);
  EXPECT_GE(net.origin.open_connections(), 1u);

  // Only the tunnel's idle reaper (120 s) breaks the deadlock.
  net.queue.run_until(sim::seconds(400));
  EXPECT_EQ(tunnel.stats().idle_hangups, 1u);
}

TEST(TunnelProxyTest, StrippingConnectionHeaderAvoidsTheHang) {
  ProxyNet net;
  server::ServerConfig oc = net.origin_config();
  oc.keep_alive = true;
  server::HttpServer origin_server(
      net.origin, server::StaticSite::from_microscape(harness::shared_site()),
      oc, net.rng.fork());
  origin_server.start(80);

  proxy::TunnelProxyConfig tc;
  tc.origin_addr = kOriginAddr;
  tc.strip_connection_headers = true;  // the minimally-aware mitigation
  proxy::TunnelProxy tunnel(net.proxy_host, tc);
  tunnel.start(8080);

  auto conn = net.client.connect(kProxyAddr, 8080, tcp::TcpOptions{});
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  bool got_response = false;
  bool peer_closed = false;
  conn->set_on_data([&] {
    const auto b = conn->read_all().to_vector();
    parser.feed({b.data(), b.size()});
    if (parser.next()) got_response = true;
  });
  conn->set_on_peer_fin([&] { peer_closed = true; });
  conn->set_on_connected([&] {
    conn->send(
        "GET /images/img00.gif HTTP/1.0\r\nHost: x\r\n"
        "Connection: Keep-Alive\r\n\r\n");
  });
  net.queue.run_until(sim::seconds(60));
  // Without the forwarded Keep-Alive, the origin closes after the response,
  // the tunnel mirrors the close, and the client sees a clean end.
  EXPECT_TRUE(got_response);
  EXPECT_TRUE(peer_closed);
  EXPECT_EQ(tunnel.stats().keep_alive_headers_stripped, 1u);
  EXPECT_EQ(tunnel.stats().idle_hangups, 0u);
}

TEST(TunnelProxyTest, TwoProxyChainReproducesThePapersScenario) {
  // "a problem discovered when Keep-Alive is used with MORE THAN ONE proxy
  // between a client and a server": client -> tunnel A -> tunnel B ->
  // origin. Even if the first hop is header-aware, a blind second hop that
  // forwards Keep-Alive re-creates the hang between itself and the origin.
  sim::EventQueue queue;
  sim::Rng rng(77);
  // Hosts: client(1) - proxyA(2) - proxyB(3) - origin(4).
  net::Channel ca(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(10)),
                  rng.fork());
  net::Channel ab(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(10)),
                  rng.fork());
  net::Channel bo(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(10)),
                  rng.fork());
  tcp::Host client(queue, 1, "client", rng.fork());
  tcp::Host proxy_a(queue, 2, "proxyA", rng.fork());
  tcp::Host proxy_b(queue, 3, "proxyB", rng.fork());
  tcp::Host origin(queue, 4, "origin", rng.fork());
  net::Link a_uplink(queue, net::LinkConfig{}, rng.fork());
  net::Link b_uplink(queue, net::LinkConfig{}, rng.fork());
  Router router_a, router_b;

  ca.attach_a(&client);
  ca.attach_b(&proxy_a);
  ab.attach_a(&proxy_a);
  ab.attach_b(&proxy_b);
  bo.attach_a(&proxy_b);
  bo.attach_b(&origin);
  client.attach_uplink(&ca.uplink_from_a());
  origin.attach_uplink(&bo.uplink_from_b());
  router_a.routes[1] = &ca.uplink_from_b();
  router_a.routes[3] = &ab.uplink_from_a();
  a_uplink.set_sink(&router_a);
  proxy_a.attach_uplink(&a_uplink);
  router_b.routes[2] = &ab.uplink_from_b();
  router_b.routes[4] = &bo.uplink_from_a();
  b_uplink.set_sink(&router_b);
  proxy_b.attach_uplink(&b_uplink);

  server::ServerConfig oc = server::apache_config();
  oc.keep_alive = true;
  oc.idle_timeout = sim::seconds(300);
  server::HttpServer origin_server(
      origin, server::StaticSite::from_microscape(harness::shared_site()), oc,
      rng.fork());
  origin_server.start(80);

  // Hop A forwards blindly toward B; hop B forwards blindly to the origin.
  proxy::TunnelProxyConfig ta;
  ta.origin_addr = 3;  // next hop: proxy B
  ta.origin_port = 8080;
  ta.idle_timeout = sim::seconds(200);
  proxy::TunnelProxy tunnel_a(proxy_a, ta);
  tunnel_a.start(8080);
  proxy::TunnelProxyConfig tb;
  tb.origin_addr = 4;
  tb.origin_port = 80;
  tb.idle_timeout = sim::seconds(200);
  proxy::TunnelProxy tunnel_b(proxy_b, tb);
  tunnel_b.start(8080);

  auto conn = client.connect(2, 8080, tcp::TcpOptions{});
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  bool got_response = false;
  bool closed = false;
  conn->set_on_data([&] {
    const auto b = conn->read_all().to_vector();
    parser.feed({b.data(), b.size()});
    if (parser.next()) got_response = true;
  });
  conn->set_on_peer_fin([&] { closed = true; });
  conn->set_on_connected([&] {
    conn->send("GET /images/img00.gif HTTP/1.0\r\nHost: x\r\n"
               "Connection: Keep-Alive\r\n\r\n");
  });
  queue.run_until(sim::seconds(60));
  EXPECT_TRUE(got_response);
  EXPECT_FALSE(closed);  // the whole chain is hung
  EXPECT_GE(origin.open_connections(), 1u);
  // Idle reapers eventually clear the chain.
  queue.run_until(sim::seconds(600));
  EXPECT_GE(tunnel_b.stats().idle_hangups + tunnel_a.stats().idle_hangups,
            1u);
}

TEST(TunnelProxyTest, PipelinedRobotWorksThroughTunnel) {
  // HTTP/1.1 needs no Keep-Alive token, so a blind tunnel is transparent to
  // it: the full pipelined first visit succeeds through the relay.
  ProxyNet net;
  server::HttpServer origin_server(
      net.origin, server::StaticSite::from_microscape(harness::shared_site()),
      net.origin_config(), net.rng.fork());
  origin_server.start(80);
  proxy::TunnelProxyConfig tc;
  tc.origin_addr = kOriginAddr;
  proxy::TunnelProxy tunnel(net.proxy_host, tc);
  tunnel.start(8080);

  client::Robot robot(
      net.client, kProxyAddr, 8080,
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  robot.start_first_visit("/index.html", [&] { done = true; });
  net.queue.run_until(sim::seconds(120));
  EXPECT_TRUE(done);
  EXPECT_EQ(robot.stats().responses_ok, 43u);
  EXPECT_EQ(tunnel.stats().client_connections, 1u);
  EXPECT_GT(tunnel.stats().bytes_relayed_down, 150'000u);
}

}  // namespace
}  // namespace hsim
