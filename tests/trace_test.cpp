#include "net/trace.hpp"

#include <gtest/gtest.h>

namespace hsim::net {
namespace {

Packet packet(IpAddr src, IpAddr dst, Port sp, Port dp, std::uint8_t flags,
              std::size_t len) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.tcp.src_port = sp;
  p.tcp.dst_port = dp;
  p.tcp.flags = flags;
  p.payload = buf::Bytes(len, 0);
  return p;
}

TEST(TraceTest, SummaryCountsAndOverhead) {
  PacketTrace t(/*client=*/1);
  t.record(sim::milliseconds(0), packet(1, 2, 100, 80, flag::kSyn, 0));
  t.record(sim::milliseconds(10), packet(2, 1, 80, 100,
                                         flag::kSyn | flag::kAck, 0));
  t.record(sim::milliseconds(20), packet(1, 2, 100, 80, flag::kAck, 160));
  const TraceSummary s = t.summarize();
  EXPECT_EQ(s.packets, 3u);
  EXPECT_EQ(s.payload_bytes, 160u);
  EXPECT_EQ(s.wire_bytes, 160u + 3 * kIpTcpHeaderBytes);
  EXPECT_EQ(s.packets_client_to_server, 2u);
  EXPECT_EQ(s.packets_server_to_client, 1u);
  EXPECT_DOUBLE_EQ(s.overhead_percent, 100.0 * 120 / 280);
  EXPECT_DOUBLE_EQ(s.elapsed_seconds(), 0.02);
}

TEST(TraceTest, EmptySummaryIsZero) {
  PacketTrace t(1);
  const TraceSummary s = t.summarize();
  EXPECT_EQ(s.packets, 0u);
  EXPECT_EQ(s.wire_bytes, 0u);
}

TEST(TraceTest, PacketTrainsSplitByConnection) {
  PacketTrace t(1);
  // Connection A: 3 packets; connection B (different client port): 2 packets.
  t.record(0, packet(1, 2, 100, 80, flag::kSyn, 0));
  t.record(1, packet(2, 1, 80, 100, flag::kSyn | flag::kAck, 0));
  t.record(2, packet(1, 2, 100, 80, flag::kAck, 10));
  t.record(3, packet(1, 2, 101, 80, flag::kSyn, 0));
  t.record(4, packet(2, 1, 80, 101, flag::kSyn | flag::kAck, 0));
  const auto trains = t.packet_trains();
  ASSERT_EQ(trains.size(), 2u);
  EXPECT_EQ(trains[0], 3u);
  EXPECT_EQ(trains[1], 2u);
  EXPECT_DOUBLE_EQ(t.mean_packet_train_length(), 2.5);
  EXPECT_EQ(t.connection_count(), 2u);
}

TEST(TraceTest, PortReuseStartsNewTrain) {
  PacketTrace t(1);
  t.record(0, packet(1, 2, 100, 80, flag::kSyn, 0));
  t.record(1, packet(1, 2, 100, 80, flag::kFin | flag::kAck, 0));
  // Same 4-tuple, fresh SYN: a second connection.
  t.record(2, packet(1, 2, 100, 80, flag::kSyn, 0));
  const auto trains = t.packet_trains();
  ASSERT_EQ(trains.size(), 2u);
  EXPECT_EQ(trains[0], 2u);
  EXPECT_EQ(trains[1], 1u);
}

TEST(TraceTest, TextRenderingContainsFlagsAndTruncates) {
  PacketTrace t(1);
  for (int i = 0; i < 5; ++i) {
    t.record(sim::milliseconds(i), packet(1, 2, 100, 80, flag::kAck, 10));
  }
  const std::string full = t.to_text();
  EXPECT_NE(full.find("A"), std::string::npos);
  const std::string cut = t.to_text(2);
  EXPECT_NE(cut.find("...\n"), std::string::npos);
}

TEST(TraceTest, RetransmissionDetection) {
  PacketTrace t(1);
  Packet data = packet(1, 2, 100, 80, flag::kAck, 500);
  data.tcp.seq = 1000;
  t.record(0, data);
  t.record(1, data);  // retransmit: same 4-tuple + seq with payload
  data.tcp.seq = 1500;
  t.record(2, data);  // new data
  Packet ack = packet(2, 1, 80, 100, flag::kAck, 0);
  t.record(3, ack);
  t.record(4, ack);  // duplicate ACKs are not data retransmissions
  EXPECT_EQ(t.retransmitted_data_packets(), 1u);
}

TEST(TraceTest, ThroughputSeriesBucketsWireBytes) {
  PacketTrace t(1);
  t.record(sim::milliseconds(10), packet(2, 1, 80, 100, flag::kAck, 960));
  t.record(sim::milliseconds(110), packet(2, 1, 80, 100, flag::kAck, 460));
  t.record(sim::milliseconds(120), packet(1, 2, 100, 80, flag::kAck, 0));
  const auto down = t.throughput_series(false, sim::milliseconds(100));
  ASSERT_EQ(down.size(), 2u);
  EXPECT_EQ(down[0], 1000u);  // 960 + 40 header
  EXPECT_EQ(down[1], 500u);
  const auto up = t.throughput_series(true, sim::milliseconds(100));
  ASSERT_EQ(up.size(), 2u);
  EXPECT_EQ(up[1], 40u);
  EXPECT_TRUE(t.throughput_series(true, 0).empty());
}

TEST(TraceTest, LongestQuietGap) {
  PacketTrace t(1);
  EXPECT_EQ(t.longest_quiet_gap(), 0);
  t.record(0, packet(1, 2, 100, 80, flag::kAck, 1));
  t.record(sim::milliseconds(5), packet(1, 2, 100, 80, flag::kAck, 1));
  t.record(sim::milliseconds(205), packet(1, 2, 100, 80, flag::kAck, 1));
  EXPECT_EQ(t.longest_quiet_gap(), sim::milliseconds(200));
}

TEST(TraceTest, TimeSequenceFiltersDirectionAndEmptyPackets) {
  PacketTrace t(1);
  Packet data = packet(1, 2, 100, 80, flag::kAck, 100);
  data.tcp.seq = 1000;
  t.record(sim::seconds(1), data);
  t.record(sim::seconds(2), packet(2, 1, 80, 100, flag::kAck, 0));
  const std::string c2s = t.to_time_sequence(true);
  EXPECT_NE(c2s.find("1100"), std::string::npos);
  const std::string s2c = t.to_time_sequence(false);
  EXPECT_TRUE(s2c.empty());
}

}  // namespace
}  // namespace hsim::net
