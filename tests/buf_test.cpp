#include "buf/bytes.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <string>
#include <vector>

namespace hsim::buf {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return v;
}

TEST(Bytes, DefaultIsEmpty) {
  Bytes b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(Bytes, CopiesSpanAndAdoptsVector) {
  auto src = pattern(100);
  Bytes copied{std::span<const std::uint8_t>(src)};
  EXPECT_EQ(copied, std::span<const std::uint8_t>(src));
  EXPECT_NE(copied.data(), src.data());

  const std::uint8_t* raw = src.data();
  Bytes adopted{std::move(src)};
  EXPECT_EQ(adopted.data(), raw);  // no copy: same storage
  EXPECT_EQ(adopted.size(), 100u);
}

TEST(Bytes, FromStringView) {
  Bytes b{std::string_view("hello")};
  EXPECT_EQ(b.view(), "hello");
}

TEST(Bytes, SliceSharesBlock) {
  Bytes b{pattern(64)};
  Bytes mid = b.slice(10, 20);
  EXPECT_EQ(mid.size(), 20u);
  EXPECT_EQ(mid.data(), b.data() + 10);
  for (std::size_t i = 0; i < mid.size(); ++i) EXPECT_EQ(mid[i], b[10 + i]);

  // Clamping.
  EXPECT_EQ(b.slice(60).size(), 4u);
  EXPECT_EQ(b.slice(100).size(), 0u);
  EXPECT_EQ(b.slice(0).size(), 64u);
}

TEST(Bytes, SliceOutlivesParent) {
  Bytes tail;
  {
    Bytes b{pattern(256)};
    tail = b.slice(200, 56);
  }
  auto expect = pattern(256);
  EXPECT_EQ(tail, std::span<const std::uint8_t>(expect).subspan(200));
}

TEST(Chain, AppendBytesIsZeroCopy) {
  Bytes b{pattern(50)};
  Chain c;
  c.append(b);
  c.append(b.slice(0, 10));
  EXPECT_EQ(c.size(), 60u);
  EXPECT_EQ(c.node_count(), 2u);
  EXPECT_EQ(c[50], b[0]);
}

TEST(Chain, AppendCopyCoalesces) {
  Chain c;
  for (int i = 0; i < 1000; ++i) {
    std::uint8_t byte = static_cast<std::uint8_t>(i);
    c.append_copy(std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(c.size(), 1000u);
  // 1000 single-byte appends must coalesce into a few blocks, not 1000.
  EXPECT_LE(c.node_count(), 8u);
  for (std::size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(c[i], static_cast<std::uint8_t>(i));
  }
}

TEST(Chain, AppendAfterSliceDoesNotDisturbViews) {
  Chain c;
  c.append_copy(std::string_view("hello "));
  Chain head = c.slice(0, c.size());
  Bytes head_bytes = c.slice_bytes(0, c.size());
  c.append_copy(std::string_view("world"));
  // Earlier views still see only their own bytes.
  EXPECT_TRUE(head.equals(std::string_view("hello ")));
  EXPECT_EQ(head_bytes.view(), "hello ");
  EXPECT_TRUE(c.equals(std::string_view("hello world")));
}

TEST(Chain, CopiedChainDoesNotShareWritableTail) {
  Chain a;
  a.append_copy(std::string_view("abc"));
  Chain b = a;
  a.append_copy(std::string_view("DEF"));
  b.append_copy(std::string_view("xyz"));
  EXPECT_TRUE(a.equals(std::string_view("abcDEF")));
  EXPECT_TRUE(b.equals(std::string_view("abcxyz")));
}

TEST(Chain, PopFrontAcrossNodes) {
  Chain c;
  c.append(Bytes{pattern(10)});
  c.append(Bytes{pattern(10)});
  c.append(Bytes{pattern(10)});
  c.pop_front(15);
  EXPECT_EQ(c.size(), 15u);
  auto expect = pattern(10);
  EXPECT_EQ(c[0], expect[5]);
  c.pop_front(100);  // clamped
  EXPECT_TRUE(c.empty());
}

TEST(Chain, SplitFrontMovesExactBytes) {
  auto all = pattern(100);
  Chain c;
  c.append(Bytes{std::span<const std::uint8_t>(all)}.slice(0, 40));
  c.append_copy(std::span<const std::uint8_t>(all).subspan(40));
  Chain head = c.split_front(55);
  EXPECT_EQ(head.size(), 55u);
  EXPECT_EQ(c.size(), 45u);
  EXPECT_TRUE(head.equals(std::span<const std::uint8_t>(all).subspan(0, 55)));
  EXPECT_TRUE(c.equals(std::span<const std::uint8_t>(all).subspan(55)));
}

TEST(Chain, SliceAndSliceBytes) {
  auto all = pattern(300);
  Chain c;
  c.append(Bytes{std::span<const std::uint8_t>(all)}.slice(0, 100));
  c.append(Bytes{std::span<const std::uint8_t>(all)}.slice(100, 100));
  c.append(Bytes{std::span<const std::uint8_t>(all)}.slice(200, 100));

  Chain mid = c.slice(50, 200);
  EXPECT_EQ(mid.size(), 200u);
  EXPECT_TRUE(mid.equals(std::span<const std::uint8_t>(all).subspan(50, 200)));

  // Within one node: zero-copy (pointer into the original block).
  Bytes inner = c.slice_bytes(110, 50);
  EXPECT_EQ(inner, std::span<const std::uint8_t>(all).subspan(110, 50));

  // Across nodes: flattened but correct.
  Bytes cross = c.slice_bytes(90, 50);
  EXPECT_EQ(cross, std::span<const std::uint8_t>(all).subspan(90, 50));
}

TEST(Chain, ToBytesAndToVector) {
  auto all = pattern(128);
  Chain c;
  c.append_copy(std::span<const std::uint8_t>(all).subspan(0, 64));
  c.append(Bytes{std::span<const std::uint8_t>(all).subspan(64)});
  EXPECT_EQ(c.to_vector(), all);
  EXPECT_EQ(c.to_bytes(), std::span<const std::uint8_t>(all));
}

TEST(Chain, ToString) {
  Chain c;
  c.append_copy(std::string_view("hello "));
  c.append(Bytes{std::string_view("world")});
  EXPECT_EQ(c.to_string(), "hello world");
  EXPECT_EQ(c.to_string(6), "world");
  EXPECT_EQ(c.to_string(0, 5), "hello");
}

TEST(Chain, FindCrossesNodeBoundaries) {
  Chain c;
  c.append(Bytes{std::string_view("HTTP/1.0 200 OK\r")});
  c.append(Bytes{std::string_view("\nContent-Length: 5\r\n")});
  c.append(Bytes{std::string_view("\r")});
  c.append(Bytes{std::string_view("\nhello")});
  EXPECT_EQ(c.find("\r\n"), 15u);
  EXPECT_EQ(c.find("\r\n\r\n"), 34u);
  EXPECT_EQ(c.find("hello"), 38u);
  EXPECT_EQ(c.find("nope"), npos);
  // `from` past the hit skips it.
  EXPECT_EQ(c.find("\r\n", 16), 34u);
  // Empty needle behaves like std::string::find.
  EXPECT_EQ(c.find(""), 0u);
  EXPECT_EQ(c.find("", 7), 7u);
}

TEST(Chain, FindMatchesStringReference) {
  std::mt19937 rng(1234);
  std::string hay;
  for (int i = 0; i < 2000; ++i) {
    hay.push_back("ab\r\n"[rng() % 4]);
  }
  Chain c;
  std::size_t pos = 0;
  while (pos < hay.size()) {
    std::size_t n = 1 + rng() % 17;
    n = std::min(n, hay.size() - pos);
    if (rng() % 2 == 0) {
      c.append_copy(std::string_view(hay).substr(pos, n));
    } else {
      c.append(Bytes{std::string_view(hay).substr(pos, n)});
    }
    pos += n;
  }
  for (std::string_view needle : {"\r\n", "a\r\nb", "abab", "\r\n\r\n"}) {
    std::size_t from = 0;
    for (int k = 0; k < 50; ++k) {
      std::size_t expect = hay.find(needle, from);
      std::size_t got = c.find(needle, from);
      EXPECT_EQ(got, expect == std::string::npos ? npos : expect)
          << "needle=" << needle << " from=" << from;
      if (expect == std::string::npos) break;
      from = expect + 1;
    }
  }
}

TEST(Chain, Equality) {
  auto all = pattern(90);
  Chain a;
  a.append(Bytes{std::span<const std::uint8_t>(all).subspan(0, 30)});
  a.append(Bytes{std::span<const std::uint8_t>(all).subspan(30)});
  Chain b;
  b.append_copy(std::span<const std::uint8_t>(all).subspan(0, 45));
  b.append_copy(std::span<const std::uint8_t>(all).subspan(45));
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a == all);
  EXPECT_TRUE(all == a);
  b.pop_front(1);
  EXPECT_FALSE(a == b);
  Chain c = a;
  c.append_copy(std::string_view("x"));
  EXPECT_FALSE(a == c);
}

TEST(Chain, ForEachVisitsEveryByteInOrder) {
  auto all = pattern(77);
  Chain c;
  c.append(Bytes{std::span<const std::uint8_t>(all).subspan(0, 20)});
  c.append_copy(std::span<const std::uint8_t>(all).subspan(20));
  std::vector<std::uint8_t> seen;
  c.for_each([&](std::span<const std::uint8_t> run) {
    seen.insert(seen.end(), run.begin(), run.end());
  });
  EXPECT_EQ(seen, all);
}

TEST(Chain, MoveAppendStealsNodes) {
  Chain a;
  a.append(Bytes{std::string_view("one")});
  Chain b;
  b.append(Bytes{std::string_view("two")});
  a.append(std::move(b));
  EXPECT_TRUE(a.equals(std::string_view("onetwo")));
  EXPECT_TRUE(b.empty());
}

TEST(Chain, FrontConsumeIsLinearNotQuadratic) {
  // The pattern the HTTP parser uses: append at the back, consume from the
  // front. With 1 MB fed a byte at a time this must finish fast; the old
  // std::string erase(0, n) pattern moved ~500 GB.
  constexpr std::size_t kTotal = 1 << 20;
  Chain c;
  std::size_t consumed = 0;
  std::uint8_t byte = 0x5a;
  for (std::size_t i = 0; i < kTotal; ++i) {
    c.append_copy(std::span<const std::uint8_t>(&byte, 1));
    if (c.size() >= 4096) {
      consumed += c.split_front(4096).size();
    }
  }
  consumed += c.size();
  EXPECT_EQ(consumed, kTotal);
}

}  // namespace
}  // namespace hsim::buf
