// Topology-level fault injection (topo subsystem + soak harness).
//
// Contracts pinned here:
//   - A router crash flushes every queued packet with attribution and halts
//     forwarding; restart resumes with empty buffers; the queue-discipline
//     conservation identity (enqueued == dequeued + dropped_flushed + depth)
//     holds at every stage.
//   - A wedged egress keeps accepting into its discipline until the budget
//     overflows, never feeds the link, and drains completely on unwedge.
//   - Forwarding-table failover is deterministic and traffic-clocked: the
//     primary must be observed down for the detection delay before traffic
//     moves, and observed healthy again for the same delay before it moves
//     back. Two identical runs produce identical delivery counts.
//   - Malformed outage schedules (empty or overlapping windows) are rejected
//     at link construction with std::invalid_argument.
//   - A small-N chaos soak over the redundant dumbbell runs green under the
//     sanitizers and is bit-deterministic for a given master seed.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "harness/experiment.hpp"
#include "harness/soak.hpp"
#include "net/link.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "topo/queue_disc.hpp"
#include "topo/router.hpp"

namespace hsim {
namespace {

net::Packet make_packet(net::IpAddr dst, std::size_t payload_bytes) {
  net::Packet p;
  p.src = 1;
  p.dst = dst;
  p.payload = buf::Bytes(std::string(payload_bytes, 'x'));
  return p;
}

struct CountingSink : net::PacketSink {
  std::uint64_t delivered = 0;
  void deliver(net::Packet) override { ++delivered; }
};

/// A slow 1 Mb/s link so packets queue up in the discipline behind it.
std::unique_ptr<net::Link> slow_link(sim::EventQueue& queue) {
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 1'000'000;
  cfg.propagation_delay = sim::milliseconds(1);
  return std::make_unique<net::Link>(queue, cfg, sim::Rng(1));
}

// ---------------------------------------------------------------------------
// Router crash / restart
// ---------------------------------------------------------------------------

TEST(RouterCrash, FlushesQueuedPacketsWithAttribution) {
  sim::EventQueue queue;
  CountingSink sink;
  auto link = slow_link(queue);
  link->set_sink(&sink);

  topo::Router router(queue, 1, "r");
  const std::size_t egress = router.add_egress(
      link.get(), std::make_unique<topo::DropTail>(
                      "q", topo::DropTailConfig{/*limit_packets=*/64,
                                                /*limit_bytes=*/0}));
  router.set_default_route(egress);

  // 20 packets of 1000 B at 1 Mb/s: ~8 ms each, so most still queued when
  // the crash lands at t=5ms.
  for (int i = 0; i < 20; ++i) router.deliver(make_packet(9, 1000));
  queue.schedule_at(sim::milliseconds(5), [&] { router.crash(); });
  // Arrivals while down are dropped with attribution, not queued.
  queue.schedule_at(sim::milliseconds(6),
                    [&] { router.deliver(make_packet(9, 1000)); });
  queue.schedule_at(sim::milliseconds(10), [&] { router.restart(); });
  // Forwarding resumes after restart.
  queue.schedule_at(sim::milliseconds(11),
                    [&] { router.deliver(make_packet(9, 1000)); });
  queue.run_until(sim::seconds(1));

  const topo::RouterStats& rs = router.stats();
  EXPECT_TRUE(!router.crashed());
  EXPECT_GT(rs.crash_flushed, 0u);
  EXPECT_EQ(rs.dropped_crashed, 1u);
  EXPECT_EQ(rs.forwarded, 21u);  // 20 before the crash + 1 after restart

  const topo::QueueStats& qs = router.egress_queue(egress).stats();
  EXPECT_EQ(qs.dropped_flushed, rs.crash_flushed);
  EXPECT_EQ(qs.enqueued_packets,
            qs.dequeued_packets + qs.dropped_flushed +
                router.egress_queue(egress).depth_packets());
  // Everything dequeued before the crash (plus the post-restart packet)
  // crossed the wire.
  EXPECT_EQ(sink.delivered, qs.dequeued_packets);
  EXPECT_EQ(qs.dequeued_packets + qs.dropped_flushed, 21u);
}

TEST(RouterCrash, CrashIsIdempotent) {
  sim::EventQueue queue;
  CountingSink sink;
  auto link = slow_link(queue);
  link->set_sink(&sink);
  topo::Router router(queue, 1, "r");
  router.set_default_route(router.add_egress(
      link.get(), std::make_unique<topo::DropTail>(
                      "q", topo::DropTailConfig{64, 0})));
  for (int i = 0; i < 5; ++i) router.deliver(make_packet(9, 1000));
  router.crash();
  const std::uint64_t flushed = router.stats().crash_flushed;
  router.crash();  // no double flush
  EXPECT_EQ(router.stats().crash_flushed, flushed);
  router.restart();
  router.restart();  // no-op
  EXPECT_FALSE(router.crashed());
}

// ---------------------------------------------------------------------------
// Queue wedge
// ---------------------------------------------------------------------------

TEST(QueueWedge, FillsOverflowsThenDrains) {
  sim::EventQueue queue;
  CountingSink sink;
  auto link = slow_link(queue);
  link->set_sink(&sink);

  topo::Router router(queue, 1, "r");
  const std::size_t egress = router.add_egress(
      link.get(), std::make_unique<topo::DropTail>(
                      "q", topo::DropTailConfig{/*limit_packets=*/8,
                                                /*limit_bytes=*/0}));
  router.set_default_route(egress);
  router.set_egress_wedged(egress, true);

  for (int i = 0; i < 20; ++i) router.deliver(make_packet(9, 500));
  queue.run_until(sim::milliseconds(100));

  // Wedged: the discipline accepted to its budget, overflowed the rest, and
  // the link never transmitted a thing.
  const topo::QueueStats& qs = router.egress_queue(egress).stats();
  EXPECT_EQ(router.egress_queue(egress).depth_packets(), 8u);
  EXPECT_EQ(qs.dropped_overflow, 12u);
  EXPECT_EQ(link->stats().packets_sent, 0u);
  EXPECT_EQ(sink.delivered, 0u);
  EXPECT_TRUE(router.egress_wedged(egress));

  router.set_egress_wedged(egress, false);
  queue.run_until(sim::seconds(1));
  EXPECT_EQ(sink.delivered, 8u);
  EXPECT_EQ(router.egress_queue(egress).depth_packets(), 0u);
  EXPECT_EQ(qs.enqueued_packets,
            qs.dequeued_packets + qs.dropped_flushed);
}

// ---------------------------------------------------------------------------
// Deterministic failover / failback
// ---------------------------------------------------------------------------

struct FailoverRun {
  std::uint64_t primary_sent = 0;
  std::uint64_t backup_sent = 0;
  std::uint64_t primary_outage_drops = 0;
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t delivered = 0;
};

FailoverRun drive_failover() {
  sim::EventQueue queue;
  CountingSink sink;

  net::LinkConfig primary_cfg;
  primary_cfg.bandwidth_bps = 10'000'000;
  primary_cfg.propagation_delay = sim::milliseconds(1);
  primary_cfg.outages.push_back(
      {sim::milliseconds(100), sim::milliseconds(400)});
  net::Link primary(queue, primary_cfg, sim::Rng(1));
  primary.set_sink(&sink);

  net::LinkConfig backup_cfg;
  backup_cfg.bandwidth_bps = 10'000'000;
  backup_cfg.propagation_delay = sim::milliseconds(2);
  net::Link backup(queue, backup_cfg, sim::Rng(2));
  backup.set_sink(&sink);

  topo::Router router(queue, 1, "r");
  const std::size_t p = router.add_egress(
      &primary,
      std::make_unique<topo::DropTail>("p", topo::DropTailConfig{64, 0}));
  const std::size_t b = router.add_egress(
      &backup,
      std::make_unique<topo::DropTail>("b", topo::DropTailConfig{64, 0}));
  router.set_default_route(p);
  router.set_failover(p, b, sim::milliseconds(50));

  // One packet every 20 ms for 800 ms: the outage covers [100, 400), so the
  // detection window costs a couple of packets into the dead primary, then
  // traffic rides the backup until 400 + 50 ms of observed health.
  for (int i = 0; i < 40; ++i) {
    queue.schedule_at(sim::milliseconds(20) * i,
                      [&] { router.deliver(make_packet(9, 200)); });
  }
  queue.run_until(sim::seconds(2));

  FailoverRun out;
  out.primary_sent = primary.stats().packets_sent;
  out.backup_sent = backup.stats().packets_sent;
  out.primary_outage_drops = primary.stats().packets_dropped_outage;
  out.failovers = router.stats().failovers;
  out.failbacks = router.stats().failbacks;
  out.delivered = sink.delivered;
  return out;
}

TEST(Failover, DetectsReroutesAndFailsBack) {
  const FailoverRun run = drive_failover();
  EXPECT_EQ(run.failovers, 1u);
  EXPECT_EQ(run.failbacks, 1u);
  // Detection is not free: at least one packet died on the down primary.
  EXPECT_GT(run.primary_outage_drops, 0u);
  // The backup genuinely carried traffic during the outage.
  EXPECT_GT(run.backup_sent, 0u);
  // Traffic returned to the primary after recovery: the primary carried
  // packets both before the outage and after failback.
  EXPECT_GT(run.primary_sent, run.primary_outage_drops);
  // Conservation: every offered packet was sent somewhere or died on the
  // down primary.
  EXPECT_EQ(run.primary_sent + run.backup_sent + run.primary_outage_drops,
            40u);
  EXPECT_EQ(run.delivered, run.primary_sent + run.backup_sent);
}

TEST(Failover, SameScheduleIsBitDeterministic) {
  const FailoverRun a = drive_failover();
  const FailoverRun b = drive_failover();
  EXPECT_EQ(a.primary_sent, b.primary_sent);
  EXPECT_EQ(a.backup_sent, b.backup_sent);
  EXPECT_EQ(a.primary_outage_drops, b.primary_outage_drops);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.failbacks, b.failbacks);
  EXPECT_EQ(a.delivered, b.delivered);
}

// ---------------------------------------------------------------------------
// Outage schedule validation
// ---------------------------------------------------------------------------

TEST(OutageSchedule, RejectsEmptyWindow) {
  std::vector<net::OutageWindow> windows = {{sim::seconds(1), sim::seconds(1)}};
  EXPECT_THROW(net::normalize_outages(windows), std::invalid_argument);
}

TEST(OutageSchedule, RejectsOverlappingWindows) {
  std::vector<net::OutageWindow> windows = {
      {sim::seconds(1), sim::seconds(3)},
      {sim::seconds(2), sim::seconds(4)},
  };
  EXPECT_THROW(net::normalize_outages(windows), std::invalid_argument);
}

TEST(OutageSchedule, SortsOutOfOrderWindows) {
  std::vector<net::OutageWindow> windows = {
      {sim::seconds(5), sim::seconds(6)},
      {sim::seconds(1), sim::seconds(2)},
  };
  net::normalize_outages(windows);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].down_at, sim::seconds(1));
  EXPECT_EQ(windows[1].down_at, sim::seconds(5));
}

TEST(OutageSchedule, LinkConstructionRejectsOverlap) {
  sim::EventQueue queue;
  net::LinkConfig cfg;
  cfg.outages = {{sim::seconds(1), sim::seconds(3)},
                 {sim::seconds(2), sim::seconds(4)}};
  EXPECT_THROW(net::Link(queue, cfg, sim::Rng(1)), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Small-N soak: sanitizer coverage + determinism
// ---------------------------------------------------------------------------

harness::SoakConfig small_soak_config() {
  harness::SoakConfig config;
  config.num_clients = 8;
  config.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  config.client.retry_budget = 6;
  config.client.retry_jitter = 0.3;
  // Pages finish within a few seconds at N=8, so the faults are compressed
  // to land mid-retrieval.
  config.timeline = {
      {harness::TopoFaultKind::kBottleneckFlap, "", sim::milliseconds(500),
       sim::milliseconds(700)},
      {harness::TopoFaultKind::kRouterCrash, "gate", sim::milliseconds(1800),
       sim::milliseconds(300)},
      {harness::TopoFaultKind::kQueueWedge, "bnA.up", sim::milliseconds(2500),
       sim::milliseconds(500)},
  };
  config.epoch = sim::milliseconds(500);
  config.horizon = sim::seconds(60);
  config.drain = sim::seconds(30);
  config.verify_cache = true;
  config.master_seed = 11;
  return config;
}

TEST(SmallSoak, OraclesGreenEveryClientAttributed) {
  const harness::SoakResult result =
      harness::run_soak(small_soak_config(), harness::shared_site());
  for (const std::string& v : result.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.epochs_checked, 0u);
  EXPECT_TRUE(result.workload.all_resolved());
  // The crash genuinely hit the data path.
  EXPECT_GT(result.router_crash_flushed + result.router_dropped_crashed, 0u);
}

TEST(SmallSoak, SameSeedSameResult) {
  const harness::SoakResult a =
      harness::run_soak(small_soak_config(), harness::shared_site());
  const harness::SoakResult b =
      harness::run_soak(small_soak_config(), harness::shared_site());
  EXPECT_EQ(a.workload.completed(), b.workload.completed());
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_tokens_consumed, b.retry_tokens_consumed);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.failbacks, b.failbacks);
  EXPECT_EQ(a.workload.metrics.dump_text(), b.workload.metrics.dump_text());
}

}  // namespace
}  // namespace hsim
