#include "content/png.hpp"

#include <gtest/gtest.h>

#include "content/gif.hpp"
#include "content/mng.hpp"
#include "sim/random.hpp"

namespace hsim::content {
namespace {

IndexedImage make_image(ImageKind kind, unsigned w, unsigned h,
                        unsigned colors, std::uint64_t seed = 3) {
  SyntheticSpec spec;
  spec.kind = kind;
  spec.width = w;
  spec.height = h;
  spec.colors = colors;
  spec.seed = seed;
  return generate_image(spec);
}

TEST(PngTest, EncodeDecodeRoundtrip) {
  const IndexedImage img = make_image(ImageKind::kLogo, 60, 40, 16);
  const auto png = encode_png(img);
  const PngDecodeResult decoded = decode_png(png);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  EXPECT_EQ(decoded.image.width, img.width);
  EXPECT_EQ(decoded.image.height, img.height);
  EXPECT_EQ(decoded.image.pixels, img.pixels);
  EXPECT_EQ(decoded.image.palette, img.palette);
  EXPECT_TRUE(decoded.had_gamma);
}

TEST(PngTest, RoundtripAllBitDepths) {
  for (unsigned colors : {2u, 4u, 16u, 128u}) {
    const IndexedImage img = make_image(ImageKind::kLogo, 33, 21, colors);
    const PngDecodeResult decoded = decode_png(encode_png(img));
    ASSERT_TRUE(decoded.ok) << colors << ": " << decoded.error;
    EXPECT_EQ(decoded.image.pixels, img.pixels) << colors;
  }
}

TEST(PngTest, OddWidthsPackCorrectly) {
  // Sub-byte depths with widths that leave partial trailing bytes.
  for (unsigned w : {1u, 3u, 7u, 9u, 17u}) {
    const IndexedImage img = make_image(ImageKind::kBullet, w, 5, 4, w);
    const PngDecodeResult decoded = decode_png(encode_png(img));
    ASSERT_TRUE(decoded.ok) << w;
    EXPECT_EQ(decoded.image.pixels, img.pixels) << w;
  }
}

TEST(PngTest, GammaChunkAddsSixteenBytes) {
  // The paper: "the converted PNG files contain gamma information ... this
  // adds 16 bytes per image".
  const IndexedImage img = make_image(ImageKind::kBullet, 16, 16, 4);
  PngOptions with, without;
  with.include_gamma = true;
  without.include_gamma = false;
  EXPECT_EQ(encode_png(img, with).size(),
            encode_png(img, without).size() + 16);
}

TEST(PngTest, AdaptiveFilteringHelpsPhotos) {
  const IndexedImage img = make_image(ImageKind::kPhoto, 120, 90, 128);
  PngOptions adaptive, fixed;
  adaptive.adaptive_filtering = true;
  fixed.adaptive_filtering = false;
  EXPECT_LE(encode_png(img, adaptive).size(), encode_png(img, fixed).size());
  // And both decode back to the same pixels.
  EXPECT_EQ(decode_png(encode_png(img, adaptive)).image.pixels, img.pixels);
  EXPECT_EQ(decode_png(encode_png(img, fixed)).image.pixels, img.pixels);
}

TEST(PngTest, RejectsCorruptCrc) {
  const IndexedImage img = make_image(ImageKind::kBullet, 16, 16, 4);
  auto png = encode_png(img);
  png[20] ^= 0xFF;  // inside IHDR data
  EXPECT_FALSE(decode_png(png).ok);
}

TEST(PngTest, RejectsBadSignature) {
  std::vector<std::uint8_t> junk(32, 0);
  EXPECT_FALSE(decode_png(junk).ok);
}

TEST(PngVsGifTest, PngSmallerOnLargeImages) {
  // The headline PNG result: standard conversion shrinks the big images.
  const IndexedImage img = make_image(ImageKind::kPhoto, 200, 150, 128);
  const auto gif = encode_gif(img);
  const auto png = encode_png(img);
  EXPECT_LT(png.size(), gif.size());
}

TEST(PngVsGifTest, PngLargerOnTinyImages) {
  // "PNG does not perform as well on the very low bit depth images in the
  // sub-200 byte category because its checksums and other information make
  // the file a bit bigger."
  const IndexedImage img = make_image(ImageKind::kSpacer, 4, 4, 2);
  const auto gif = encode_gif(img);
  const auto png = encode_png(img);
  EXPECT_LT(gif.size(), 200u);
  EXPECT_GT(png.size(), gif.size());
}

TEST(MngTest, EncodeDecodeRoundtrip) {
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 40;
  spec.height = 30;
  spec.colors = 16;
  spec.seed = 21;
  const Animation anim = generate_animation(spec, 6);
  const auto mng = encode_mng(anim);
  const MngDecodeResult decoded = decode_mng(mng);
  ASSERT_TRUE(decoded.ok) << decoded.error;
  ASSERT_EQ(decoded.animation.frames.size(), 6u);
  for (std::size_t f = 0; f < 6; ++f) {
    EXPECT_EQ(decoded.animation.frames[f].pixels, anim.frames[f].pixels) << f;
  }
}

TEST(MngTest, SmallerThanAnimatedGif) {
  // The paper: 24,988 bytes of animated GIF became 16,329 bytes of MNG.
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 80;
  spec.height = 60;
  spec.colors = 16;
  spec.seed = 5;
  const Animation anim = generate_animation(spec, 8);
  const auto gif = encode_animated_gif(anim);
  const auto mng = encode_mng(anim);
  EXPECT_LT(mng.size(), gif.size());
}

TEST(MngTest, RejectsGarbage) {
  std::vector<std::uint8_t> junk(64, 7);
  EXPECT_FALSE(decode_mng(junk).ok);
}

}  // namespace
}  // namespace hsim::content
