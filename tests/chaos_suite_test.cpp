// End-to-end chaos suite: a full Microscape first visit under every fault
// regime, crossed with all four protocol modes. The contract under chaos is
// "resolve, never hang": either the recovery machinery delivers the whole
// site byte-exactly within its bounded retries, or the run terminates with
// structured failures attributing the responsible fault. Fixed seeds make
// every outcome reproducible.
#include "harness/chaos.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

namespace hsim {
namespace {

using client::ProtocolMode;
using harness::ChaosFault;

constexpr std::uint64_t kSeed = 7;

class ChaosSuite
    : public ::testing::TestWithParam<std::tuple<ChaosFault, ProtocolMode>> {};

TEST_P(ChaosSuite, ResolvesByteExactOrCleanlyAttributed) {
  const auto [fault, mode] = GetParam();
  const harness::ChaosOutcome outcome =
      harness::run_chaos(fault, mode, harness::shared_site(), kSeed);
  const client::RobotStats& robot = outcome.result.robot;

  // Never a hang: the retrieval reached a verdict inside the run horizon.
  ASSERT_GT(robot.finished, robot.started)
      << to_string(fault) << " / " << to_string(mode);

  if (robot.complete) {
    // Full success: every object must be byte-identical to the source site.
    EXPECT_TRUE(outcome.byte_exact);
    EXPECT_EQ(robot.requests_failed, 0u);
    EXPECT_TRUE(robot.failures.empty());
  } else {
    // Clean failure: every abandoned request carries an attributed cause
    // and a retry count that respected the attempt budget.
    EXPECT_GT(robot.requests_failed, 0u);
    EXPECT_EQ(robot.requests_failed, robot.failures.size());
    for (const client::RequestFailure& failure : robot.failures) {
      EXPECT_FALSE(failure.target.empty());
      EXPECT_LE(failure.attempts, 8u);  // apply_chaos's max_attempts
      EXPECT_FALSE(std::string(to_string(failure.kind)).empty());
    }
  }

  // Per-regime observability: the injected fault actually bit, and the
  // matching layer counted it.
  const server::ServerStats& server = outcome.result.server;
  const net::TraceSummary& trace = outcome.result.trace;
  switch (fault) {
    case ChaosFault::kServerStall:
      EXPECT_GE(server.stalls_injected, 1u);
      EXPECT_GE(robot.request_deadlines_fired, 1u);
      break;
    case ChaosFault::kPrematureClose:
      EXPECT_GE(server.premature_closes_injected, 1u);
      EXPECT_GT(robot.retries, 0u);
      break;
    case ChaosFault::kServerErrors:
      EXPECT_GE(server.responses_5xx, 1u);
      break;
    default:
      break;  // link faults are asserted via link stats in run_chaos users
  }
  EXPECT_GT(trace.packets, 0u);
}

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<ChaosFault, ProtocolMode>>&
        info) {
  std::string name(to_string(std::get<0>(info.param)));
  name += "_";
  name += to_string(std::get<1>(info.param));
  std::string out;
  bool upper = true;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += upper ? static_cast<char>(std::toupper(c)) : c;
      upper = false;
    } else {
      upper = true;
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllModes, ChaosSuite,
    ::testing::Combine(
        ::testing::ValuesIn(harness::all_chaos_faults()),
        ::testing::Values(ProtocolMode::kHttp10Parallel,
                          ProtocolMode::kHttp11Persistent,
                          ProtocolMode::kHttp11Pipelined,
                          ProtocolMode::kHttp11PipelinedCompressed,
                          ProtocolMode::kH2)),
    param_name);

TEST(ChaosControl, NoFaultRetrievesByteExact) {
  // The hardened client against a healthy stack: byte-exact, no retries.
  for (const ProtocolMode mode :
       {ProtocolMode::kHttp10Parallel, ProtocolMode::kHttp11Persistent,
        ProtocolMode::kHttp11Pipelined,
        ProtocolMode::kHttp11PipelinedCompressed, ProtocolMode::kH2}) {
    const harness::ChaosOutcome outcome = harness::run_chaos(
        ChaosFault::kNone, mode, harness::shared_site(), kSeed);
    EXPECT_TRUE(outcome.result.robot.complete) << to_string(mode);
    EXPECT_TRUE(outcome.byte_exact) << to_string(mode);
    EXPECT_EQ(outcome.result.robot.requests_failed, 0u);
  }
}

TEST(ChaosRecovery, ServerFaultRegimesRecoverByteExact) {
  // These regimes limit the fault to early connections / odd requests, so a
  // correct recovery implementation must come away with the whole site.
  for (const ChaosFault fault :
       {ChaosFault::kServerStall, ChaosFault::kPrematureClose,
        ChaosFault::kServerErrors}) {
    for (const ProtocolMode mode :
         {ProtocolMode::kHttp10Parallel, ProtocolMode::kHttp11Persistent,
          ProtocolMode::kHttp11Pipelined,
          ProtocolMode::kHttp11PipelinedCompressed, ProtocolMode::kH2}) {
      const harness::ChaosOutcome outcome =
          harness::run_chaos(fault, mode, harness::shared_site(), kSeed);
      EXPECT_TRUE(outcome.result.robot.complete)
          << to_string(fault) << " / " << to_string(mode);
      EXPECT_TRUE(outcome.byte_exact)
          << to_string(fault) << " / " << to_string(mode);
    }
  }
}

TEST(ChaosDeterminism, SameSeedReproducesTheRun) {
  for (const ChaosFault fault : harness::all_chaos_faults()) {
    const harness::ChaosOutcome a = harness::run_chaos(
        fault, ProtocolMode::kHttp11Pipelined, harness::shared_site(), 3);
    const harness::ChaosOutcome b = harness::run_chaos(
        fault, ProtocolMode::kHttp11Pipelined, harness::shared_site(), 3);
    EXPECT_EQ(a.result.trace.packets, b.result.trace.packets)
        << to_string(fault);
    EXPECT_EQ(a.result.trace.wire_bytes, b.result.trace.wire_bytes)
        << to_string(fault);
    EXPECT_EQ(a.result.robot.finished, b.result.robot.finished)
        << to_string(fault);
    EXPECT_EQ(a.result.robot.requests_failed, b.result.robot.requests_failed)
        << to_string(fault);
    EXPECT_EQ(a.byte_exact, b.byte_exact) << to_string(fault);
  }
}

// ---------------------------------------------------------------------------
// Dumbbell topology: the same fault regimes with routed forwarding and a
// shared bottleneck between the client and the server.
// ---------------------------------------------------------------------------

class ChaosDumbbell
    : public ::testing::TestWithParam<std::tuple<ChaosFault, ProtocolMode>> {};

TEST_P(ChaosDumbbell, ResolvesByteExactOrCleanlyAttributedThroughRouters) {
  const auto [fault, mode] = GetParam();
  const harness::ChaosOutcome outcome =
      harness::run_chaos(fault, mode, harness::shared_site(), kSeed,
                         harness::TopologyKind::kDumbbell);
  const client::RobotStats& robot = outcome.result.robot;

  // The contract is unchanged by the topology: resolve, never hang.
  ASSERT_GT(robot.finished, robot.started)
      << to_string(fault) << " / " << to_string(mode);

  if (robot.complete) {
    EXPECT_TRUE(outcome.byte_exact)
        << to_string(fault) << " / " << to_string(mode);
    EXPECT_EQ(robot.requests_failed, 0u);
    EXPECT_TRUE(robot.failures.empty());
  } else {
    EXPECT_GT(robot.requests_failed, 0u);
    EXPECT_EQ(robot.requests_failed, robot.failures.size());
    for (const client::RequestFailure& failure : robot.failures) {
      EXPECT_FALSE(failure.target.empty());
      EXPECT_LE(failure.attempts, 8u);  // apply_chaos's max_attempts
      EXPECT_FALSE(std::string(to_string(failure.kind)).empty());
    }
  }

  const server::ServerStats& server = outcome.result.server;
  switch (fault) {
    case ChaosFault::kServerStall:
      EXPECT_GE(server.stalls_injected, 1u);
      break;
    case ChaosFault::kPrematureClose:
      EXPECT_GE(server.premature_closes_injected, 1u);
      break;
    case ChaosFault::kServerErrors:
      EXPECT_GE(server.responses_5xx, 1u);
      break;
    default:
      break;
  }
  // Traffic demonstrably crossed the shared bottleneck.
  EXPECT_GT(outcome.result.trace.packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsDumbbell, ChaosDumbbell,
    ::testing::Combine(
        ::testing::ValuesIn(harness::all_chaos_faults()),
        ::testing::Values(ProtocolMode::kHttp10Parallel,
                          ProtocolMode::kHttp11Pipelined,
                          ProtocolMode::kH2)),
    param_name);

TEST(ChaosDeterminismDumbbell, SameSeedReproducesTheRoutedRun) {
  for (const ChaosFault fault : harness::all_chaos_faults()) {
    const harness::ChaosOutcome a = harness::run_chaos(
        fault, ProtocolMode::kHttp11Pipelined, harness::shared_site(), 3,
        harness::TopologyKind::kDumbbell);
    const harness::ChaosOutcome b = harness::run_chaos(
        fault, ProtocolMode::kHttp11Pipelined, harness::shared_site(), 3,
        harness::TopologyKind::kDumbbell);
    EXPECT_EQ(a.result.trace.packets, b.result.trace.packets)
        << to_string(fault);
    EXPECT_EQ(a.result.trace.wire_bytes, b.result.trace.wire_bytes)
        << to_string(fault);
    EXPECT_EQ(a.result.robot.finished, b.result.robot.finished)
        << to_string(fault);
    EXPECT_EQ(a.result.robot.requests_failed, b.result.robot.requests_failed)
        << to_string(fault);
    EXPECT_EQ(a.byte_exact, b.byte_exact) << to_string(fault);
  }
}

TEST(RetryAttribution, GracefulCloseAndResetPartitionHoldsThroughRouters) {
  // The star-topology partition test below, replayed across the dumbbell:
  // closes and RSTs must survive router forwarding with their attribution
  // intact.
  harness::WorkloadConfig wc;
  wc.num_clients = 1;
  wc.arrivals = harness::ArrivalProcess::kFixedInterval;
  wc.topology = harness::TopologyKind::kDumbbell;
  wc.access = harness::wan_profile();
  wc.client = harness::robot_config(ProtocolMode::kHttp11Pipelined);
  wc.master_seed = 11;
  wc.verify_cache = true;
  wc.horizon = sim::seconds(300);

  wc.server = server::jigsaw_config();
  wc.server.max_requests_per_connection = 5;
  wc.server.close_style = server::CloseStyle::kGraceful;
  const harness::WorkloadResult graceful =
      harness::run_workload(wc, harness::shared_site());
  const client::RobotStats& gstats = graceful.clients.at(0).stats;
  EXPECT_TRUE(gstats.complete);
  EXPECT_TRUE(graceful.clients.at(0).byte_exact);
  EXPECT_GT(gstats.retries_after_close, 0u);
  EXPECT_EQ(gstats.retries_after_reset, 0u);

  wc.server = server::apache_beta2_config();
  const harness::WorkloadResult naive =
      harness::run_workload(wc, harness::shared_site());
  const client::RobotStats& nstats = naive.clients.at(0).stats;
  EXPECT_GT(nstats.resets_seen, 0u);
  EXPECT_GT(nstats.retries_after_reset, 0u);
  EXPECT_EQ(nstats.retries_after_reset + nstats.retries_after_close,
            nstats.retries);
  if (!nstats.complete) {
    EXPECT_EQ(nstats.requests_failed, nstats.failures.size());
    for (const client::RequestFailure& failure : nstats.failures) {
      EXPECT_EQ(failure.kind, client::FailureKind::kConnectionLost);
    }
  }
}

TEST(RetryAttribution, GoawayPartitionsMultiplexedRetries) {
  // HTTP/2 analogue of the close/reset partition: a server that drains after
  // 5 requests announces the cut with GOAWAY(last_stream_id). Streams the
  // server acknowledged processing are charged a retry; streams above the
  // advertised id were provably untouched and retry for free — so the whole
  // site still arrives byte-exact within the ordinary attempt budget.
  harness::ExperimentSpec spec;
  spec.network = harness::wan_profile();
  spec.client = harness::robot_config(ProtocolMode::kH2);
  // Push off: with push on, the whole page rides a single request and the
  // per-connection request limit never trips. Requesting each embedded
  // object as its own stream forces the server through the limit.
  spec.client.h2_enable_push = false;
  spec.seed = 11;

  spec.server = server::jigsaw_config();
  spec.server.max_requests_per_connection = 5;
  spec.server.close_style = server::CloseStyle::kGraceful;
  const harness::RunResult graceful =
      harness::run_once(spec, harness::shared_site());
  EXPECT_TRUE(graceful.robot.complete);
  EXPECT_GT(graceful.robot.h2_goaways_seen, 0u);
  // GOAWAY partitions cleanly: nothing was blamed on an RST.
  EXPECT_EQ(graceful.robot.retries_after_reset, 0u);
  EXPECT_EQ(graceful.robot.requests_failed, 0u);

  // The naive-close server (Apache 1.2b2 model) crashes the connection
  // without draining; the multiplexed client must still resolve every
  // stream — completed, retried, or attributed — and never hang.
  spec.server = server::apache_beta2_config();
  const harness::RunResult naive =
      harness::run_once(spec, harness::shared_site());
  EXPECT_GT(naive.robot.finished, naive.robot.started);
  EXPECT_EQ(naive.robot.retries_after_reset + naive.robot.retries_after_close,
            naive.robot.retries);
  if (!naive.robot.complete) {
    EXPECT_EQ(naive.robot.requests_failed, naive.robot.failures.size());
  }
}

TEST(RetryAttribution, GracefulCloseAndResetArePartitioned) {
  // Satellite of the paper's pipelining-close diagnosis: a server that stops
  // after 5 requests with a graceful close produces retries_after_close;
  // Apache 1.2b2's naive close draws RSTs, producing retries_after_reset.
  harness::ExperimentSpec spec;
  spec.network = harness::wan_profile();
  spec.client = harness::robot_config(ProtocolMode::kHttp11Pipelined);
  spec.seed = 11;

  spec.server = server::jigsaw_config();
  spec.server.max_requests_per_connection = 5;
  spec.server.close_style = server::CloseStyle::kGraceful;
  const harness::RunResult graceful =
      harness::run_once(spec, harness::shared_site());
  EXPECT_TRUE(graceful.robot.complete);
  EXPECT_GT(graceful.robot.retries_after_close, 0u);
  EXPECT_EQ(graceful.robot.retries_after_reset, 0u);

  spec.server = server::apache_beta2_config();
  const harness::RunResult naive =
      harness::run_once(spec, harness::shared_site());
  // Naive close under pipelining draws RSTs (the paper's diagnosis). An RST
  // can destroy responses already in flight, so completion is not
  // guaranteed — but every recovery must be counted, partitioned by cause,
  // and any permanent failure attributed to the lost connection.
  EXPECT_GT(naive.robot.resets_seen, 0u);
  EXPECT_GT(naive.robot.retries_after_reset, 0u);
  EXPECT_EQ(naive.robot.retries_after_reset + naive.robot.retries_after_close,
            naive.robot.retries);
  if (!naive.robot.complete) {
    EXPECT_EQ(naive.robot.requests_failed, naive.robot.failures.size());
    for (const client::RequestFailure& failure : naive.robot.failures) {
      EXPECT_EQ(failure.kind, client::FailureKind::kConnectionLost);
    }
  }
}

}  // namespace
}  // namespace hsim
