// Regression guards for the paper's headline shapes: if a future change to
// the TCP stack, server, or client drifts the reproduction away from the
// published results, these bands catch it. Bands are deliberately loose —
// they encode "who wins by roughly what factor", not exact packet counts.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace hsim {
namespace {

using client::ProtocolMode;
using harness::AveragedResult;
using harness::ExperimentSpec;
using harness::Scenario;

AveragedResult measure(ProtocolMode mode, Scenario scenario,
                       harness::NetworkProfile network,
                       server::ServerConfig server) {
  ExperimentSpec spec;
  spec.network = std::move(network);
  spec.server = std::move(server);
  spec.client = harness::robot_config(mode);
  spec.scenario = scenario;
  return harness::run_averaged(spec, harness::shared_site(), 2);
}

// --- Table 4/6 bands (Jigsaw) ---

TEST(PaperShapesTest, JigsawLanFirstVisitBands) {
  const auto h10 = measure(ProtocolMode::kHttp10Parallel,
                           Scenario::kFirstVisit, harness::lan_profile(),
                           server::jigsaw_config());
  // Paper: 510.2 packets, 216 KB.
  EXPECT_NEAR(h10.packets, 510.0, 110.0);
  EXPECT_NEAR(h10.bytes, 216289.0, 25000.0);

  const auto pipe = measure(ProtocolMode::kHttp11Pipelined,
                            Scenario::kFirstVisit, harness::lan_profile(),
                            server::jigsaw_config());
  // Paper: 181.8 packets, 191.5 KB.
  EXPECT_NEAR(pipe.packets, 182.0, 60.0);
  EXPECT_NEAR(pipe.bytes, 191551.0, 15000.0);
}

TEST(PaperShapesTest, JigsawLanRevalidationBands) {
  const auto pipe = measure(ProtocolMode::kHttp11Pipelined,
                            Scenario::kRevalidation, harness::lan_profile(),
                            server::jigsaw_config());
  // Paper: 32.8 packets, 17.7 KB.
  EXPECT_NEAR(pipe.packets, 32.8, 15.0);
  EXPECT_NEAR(pipe.bytes, 17694.0, 5000.0);
  const auto h10 = measure(ProtocolMode::kHttp10Parallel,
                           Scenario::kRevalidation, harness::lan_profile(),
                           server::jigsaw_config());
  // Factor >= 10 in packets (paper: 374.8 / 32.8 = 11.4).
  EXPECT_GE(h10.packets / pipe.packets, 10.0);
}

TEST(PaperShapesTest, PppPipelinedElapsedNearPaper) {
  const auto pipe = measure(ProtocolMode::kHttp11Pipelined,
                            Scenario::kFirstVisit, harness::ppp_profile(),
                            server::jigsaw_config());
  // Paper: 53.3 s — bandwidth-dominated, so this band is tight.
  EXPECT_NEAR(pipe.seconds, 53.3, 5.0);
  const auto persistent = measure(ProtocolMode::kHttp11Persistent,
                                  Scenario::kFirstVisit,
                                  harness::ppp_profile(),
                                  server::jigsaw_config());
  // Paper: 63.8 s.
  EXPECT_NEAR(persistent.seconds, 63.8, 6.0);
  EXPECT_LT(pipe.seconds, persistent.seconds);
}

TEST(PaperShapesTest, CompressionSavesAboutSixteenPercentOfPackets) {
  const auto plain = measure(ProtocolMode::kHttp11Pipelined,
                             Scenario::kFirstVisit, harness::wan_profile(),
                             server::jigsaw_config());
  const auto comp = measure(ProtocolMode::kHttp11PipelinedCompressed,
                            Scenario::kFirstVisit, harness::wan_profile(),
                            server::jigsaw_config());
  const double packet_saving = 1.0 - comp.packets / plain.packets;
  // Paper: ~16 % of packets ("about 16% of the packets and 12% of the
  // elapsed time").
  EXPECT_GT(packet_saving, 0.08);
  EXPECT_LT(packet_saving, 0.25);
  const double byte_saving = plain.bytes - comp.bytes;
  // Paper: ~31 KB of payload (the deflated HTML).
  EXPECT_NEAR(byte_saving, 31000.0, 8000.0);
}

TEST(PaperShapesTest, OverheadColumnsMatchPaper) {
  const auto h10 = measure(ProtocolMode::kHttp10Parallel,
                           Scenario::kRevalidation, harness::wan_profile(),
                           server::jigsaw_config());
  EXPECT_NEAR(h10.overhead_percent, 20.0, 3.0);  // paper: 20.0
  const auto pipe = measure(ProtocolMode::kHttp11Pipelined,
                            Scenario::kRevalidation, harness::wan_profile(),
                            server::jigsaw_config());
  EXPECT_NEAR(pipe.overhead_percent, 7.1, 2.5);  // paper: 7.1
}

TEST(PaperShapesTest, ApacheOutperformsJigsawOnLanElapsed) {
  const auto jigsaw = measure(ProtocolMode::kHttp11Pipelined,
                              Scenario::kFirstVisit, harness::lan_profile(),
                              server::jigsaw_config());
  const auto apache = measure(ProtocolMode::kHttp11Pipelined,
                              Scenario::kFirstVisit, harness::lan_profile(),
                              server::apache_config());
  // Paper: 0.68 vs 0.49 — Jigsaw roughly 1.4x slower.
  const double ratio = jigsaw.seconds / apache.seconds;
  EXPECT_GT(ratio, 1.1);
  EXPECT_LT(ratio, 2.5);
}

TEST(PaperShapesTest, PersistentLosesToHttp10OnWanElapsed) {
  const auto h10 = measure(ProtocolMode::kHttp10Parallel,
                           Scenario::kFirstVisit, harness::wan_profile(),
                           server::jigsaw_config());
  const auto persistent = measure(ProtocolMode::kHttp11Persistent,
                                  Scenario::kFirstVisit,
                                  harness::wan_profile(),
                                  server::jigsaw_config());
  // Paper: 6.64 vs 4.17 — persistent ~1.6x slower without pipelining.
  const double ratio = persistent.seconds / h10.seconds;
  EXPECT_GT(ratio, 1.2);
  EXPECT_LT(ratio, 2.5);
}

}  // namespace
}  // namespace hsim
