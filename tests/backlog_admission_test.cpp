// Listen-backlog and admission-control regression tests.
//
// Backlog: a SYN burst past the configured backlog must be dropped silently
// (no RST), counted in ListenerStats, and recovered by the clients' own SYN
// retransmission backoff — with the retransmitted SYNs visible in the
// client-side PacketTrace (golden packet-count assertion).
//
// Admission: max_concurrent_connections with the kReject503 policy answers
// excess connections with a 503 and closes; with kQueue it parks them —
// established, unread, no idle timer — until a serving slot frees.
#include <gtest/gtest.h>

#include "http/parser.hpp"
#include "obs/metrics.hpp"
#include "server/server.hpp"
#include "server/static_site.hpp"
#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using server::Resource;
using server::StaticSite;

// ---------------------------------------------------------------------------
// Raw TCP backlog semantics (no HTTP involved).
// ---------------------------------------------------------------------------

struct BurstResult {
  unsigned connected = 0;
  unsigned failed = 0;
  std::uint64_t wire_syns = 0;  // client-side SYN (no ACK) packets
  std::uint64_t wire_rsts = 0;
  tcp::ListenerStats listener;
};

BurstResult run_syn_burst(std::size_t backlog, unsigned clients) {
  TestNet net;  // lossless, 10 ms each way
  std::vector<tcp::ConnectionPtr> accepted;
  net.server.listen(
      80, [&](tcp::ConnectionPtr c) { accepted.push_back(std::move(c)); },
      tcp::TcpOptions{}, tcp::ListenConfig{backlog});

  BurstResult out;
  std::vector<tcp::ConnectionPtr> conns;
  for (unsigned i = 0; i < clients; ++i) {
    auto c = net.client.connect(kServerAddr, 80, tcp::TcpOptions{});
    c->set_on_connected([&out] { ++out.connected; });
    c->set_on_failed([&out] { ++out.failed; });
    conns.push_back(std::move(c));
  }
  net.queue.run_until(sim::seconds(120));

  for (const auto& rec : net.trace.records()) {
    const bool syn = (rec.flags & net::flag::kSyn) != 0;
    const bool ack = (rec.flags & net::flag::kAck) != 0;
    if (syn && !ack) ++out.wire_syns;
    if ((rec.flags & net::flag::kRst) != 0) ++out.wire_rsts;
  }
  const tcp::ListenerStats* ls = net.server.listener_stats(80);
  EXPECT_NE(ls, nullptr);
  if (ls != nullptr) out.listener = *ls;
  return out;
}

TEST(ListenBacklog, SynBurstPastBacklogRecoversViaRetransmit) {
  constexpr unsigned kClients = 8;
  const BurstResult r = run_syn_burst(/*backlog=*/2, kClients);

  // Every client eventually connects; the backlog never causes a hard
  // failure, only delay through the SYN retransmission backoff.
  EXPECT_EQ(r.connected, kClients);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.listener.accepted, kClients);
  EXPECT_GT(r.listener.syns_dropped, 0u);

  // Golden packet-count: on a lossless link every wire SYN either created an
  // embryonic connection (one per client) or hit the full backlog. Both the
  // listener's view and the client-side trace must agree.
  EXPECT_EQ(r.listener.syns_received, kClients + r.listener.syns_dropped);
  EXPECT_EQ(r.wire_syns, kClients + r.listener.syns_dropped);
  EXPECT_GT(r.wire_syns, kClients);  // the retransmitted SYNs are visible
  EXPECT_EQ(r.wire_rsts, 0u);        // silent drop: overflow never RSTs

  // The deterministic wave pattern with backlog 2: all 8 SYNs arrive
  // together (2 enter, 6 drop), the drop cohort retries in lockstep RTO
  // waves (4 drop, then 2, then none).
  EXPECT_EQ(r.listener.syns_dropped, 12u);
}

TEST(ListenBacklog, ZeroBacklogIsUnlimited) {
  constexpr unsigned kClients = 8;
  const BurstResult r = run_syn_burst(/*backlog=*/0, kClients);
  EXPECT_EQ(r.connected, kClients);
  EXPECT_EQ(r.listener.syns_dropped, 0u);
  EXPECT_EQ(r.listener.syns_received, kClients);
  EXPECT_EQ(r.wire_syns, kClients);  // no retransmissions needed
  EXPECT_EQ(r.wire_rsts, 0u);
}

TEST(ListenBacklog, RegistryAggregatesListenerCounters) {
  // ListenerStats is a per-listener struct; the tcp.listener.* registry
  // metrics are the aggregatable view of the same accounting (summable
  // counters plus an embryonic-depth gauge with a peak).
  obs::Registry reg;
  obs::ScopedRegistry scoped(&reg);
  const BurstResult r = run_syn_burst(/*backlog=*/2, /*clients=*/8);

  EXPECT_EQ(reg.counter_value("tcp.listener.syns_received"),
            r.listener.syns_received);
  EXPECT_EQ(reg.counter_value("tcp.listener.syns_dropped"),
            r.listener.syns_dropped);
  EXPECT_EQ(reg.counter_value("tcp.listener.accepted"), r.listener.accepted);

  const obs::Snapshot s = reg.snapshot();
  // All embryonic connections were accepted or torn down by the end.
  EXPECT_EQ(s.gauge("tcp.listener.embryonic"), 0);
  // The burst filled the backlog: both the gauge's high-water mark and the
  // (aggregatable) ListenerStats::embryonic_peak must record the full depth.
  EXPECT_EQ(r.listener.embryonic_peak, 2u);
  ASSERT_TRUE(s.gauge_peaks.count("tcp.listener.embryonic"));
  EXPECT_EQ(s.gauge_peaks.at("tcp.listener.embryonic"),
            static_cast<std::int64_t>(r.listener.embryonic_peak));
}

TEST(ListenBacklog, ListenerCountersMergeAcrossShards) {
  // Two independent runs land in two shard registries; merging folds the
  // counters by summation and the embryonic peaks by max — the shape a
  // sharded workload driver needs to report fleet-wide listener stats.
  obs::Registry shard_a, shard_b;
  BurstResult ra, rb;
  {
    obs::ScopedRegistry scoped(&shard_a);
    ra = run_syn_burst(/*backlog=*/2, /*clients=*/8);
  }
  {
    obs::ScopedRegistry scoped(&shard_b);
    rb = run_syn_burst(/*backlog=*/0, /*clients=*/4);
  }
  obs::Registry merged;
  merged.merge_from(shard_a);
  merged.merge_from(shard_b);
  EXPECT_EQ(merged.counter_value("tcp.listener.syns_received"),
            ra.listener.syns_received + rb.listener.syns_received);
  EXPECT_EQ(merged.counter_value("tcp.listener.syns_dropped"),
            ra.listener.syns_dropped + rb.listener.syns_dropped);
  EXPECT_EQ(merged.counter_value("tcp.listener.accepted"),
            ra.listener.accepted + rb.listener.accepted);
  const obs::Snapshot s = merged.snapshot();
  EXPECT_EQ(s.gauge_peaks.at("tcp.listener.embryonic"),
            static_cast<std::int64_t>(std::max(ra.listener.embryonic_peak,
                                               rb.listener.embryonic_peak)));
}

// ---------------------------------------------------------------------------
// HTTP server admission control.
// ---------------------------------------------------------------------------

StaticSite make_site() {
  StaticSite site;
  Resource page;
  page.path = "/page.html";
  page.content_type = "text/html";
  const std::string body = "<html><body>admission admission</body></html>";
  page.data = buf::Bytes(std::string_view(body));
  page.etag = server::make_etag(page.data.span());
  page.last_modified = http::kSimulationEpoch;
  site.add(page);
  return site;
}

class AdmissionFixture : public ::testing::Test {
 protected:
  struct RawClient {
    tcp::ConnectionPtr conn;
    http::ResponseParser parser;
    std::vector<http::Response> responses;
    std::vector<sim::Time> response_times;
    bool peer_fin = false;
  };

  AdmissionFixture()
      : net_(net::ChannelConfig::symmetric(0, sim::milliseconds(2))) {}

  void start_server(const server::ServerConfig& cfg) {
    server_.emplace(net_.server, make_site(), cfg, sim::Rng(5));
    server_->start(80);
  }

  static server::ServerConfig base_config() {
    server::ServerConfig c = server::apache_config();
    c.per_request_cpu = sim::microseconds(100);
    c.per_connection_cpu = sim::microseconds(100);
    return c;
  }

  /// Opens a connection that sends `wire` once established and parses
  /// whatever comes back (up to `expected` GET responses). The fixture owns
  /// the RawClient; the connection callbacks hold only a raw pointer, so no
  /// shared_ptr cycle keeps dead connections alive.
  RawClient* open_and_send(const std::string& wire, unsigned expected = 1) {
    owned_.push_back(std::make_unique<RawClient>());
    RawClient* rc = owned_.back().get();
    rc->conn = net_.client.connect(kServerAddr, 80, client_opts());
    for (unsigned i = 0; i < expected; ++i) {
      rc->parser.push_request_context(http::Method::kGet);
    }
    rc->conn->set_on_data([this, rc] {
      rc->parser.feed(rc->conn->read_all());
      while (auto r = rc->parser.next()) {
        rc->responses.push_back(std::move(*r));
        rc->response_times.push_back(net_.queue.now());
      }
    });
    rc->conn->set_on_peer_fin([rc] {
      rc->peer_fin = true;
      rc->conn->shutdown_send();
    });
    rc->conn->set_on_connected([rc, wire] { rc->conn->send(wire); });
    return rc;
  }

  void run_for(sim::Time t) { net_.queue.run_until(net_.queue.now() + t); }

  static tcp::TcpOptions client_opts() {
    tcp::TcpOptions o;
    o.nodelay = true;
    return o;
  }

  static constexpr const char* kKeepOpenGet =
      "GET /page.html HTTP/1.1\r\nHost: x\r\n\r\n";
  static constexpr const char* kCloseGet =
      "GET /page.html HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";

  TestNet net_;
  std::optional<server::HttpServer> server_;
  std::vector<std::unique_ptr<RawClient>> owned_;
};

TEST_F(AdmissionFixture, Reject503WhenSaturated) {
  server::ServerConfig cfg = base_config();
  cfg.max_concurrent_connections = 1;
  cfg.admission_policy = server::AdmissionPolicy::kReject503;
  start_server(cfg);

  // A takes the only slot and holds it (persistent connection, stays open).
  auto a = open_and_send(kKeepOpenGet);
  run_for(sim::seconds(1));
  ASSERT_EQ(a->responses.size(), 1u);
  EXPECT_EQ(a->responses[0].status, 200);

  // B finds the server saturated: immediate 503, connection closed.
  auto b = open_and_send(kKeepOpenGet);
  run_for(sim::seconds(1));
  ASSERT_EQ(b->responses.size(), 1u);
  EXPECT_EQ(b->responses[0].status, 503);
  EXPECT_EQ(b->responses[0].headers.get("Connection"), "close");
  EXPECT_TRUE(b->peer_fin);
  EXPECT_EQ(server_->stats().connections_rejected, 1u);

  // Once A is reaped by the idle timeout, the slot frees and C is served.
  run_for(cfg.idle_timeout + sim::seconds(1));
  auto c = open_and_send(kKeepOpenGet);
  run_for(sim::seconds(1));
  ASSERT_EQ(c->responses.size(), 1u);
  EXPECT_EQ(c->responses[0].status, 200);
}

TEST_F(AdmissionFixture, QueuedConnectionServedAfterSlotFrees) {
  server::ServerConfig cfg = base_config();
  cfg.max_concurrent_connections = 1;
  cfg.admission_policy = server::AdmissionPolicy::kQueue;
  start_server(cfg);

  // A holds the slot; B parks in the admission queue with its request
  // sitting unread in the TCP receive buffer.
  auto a = open_and_send(kKeepOpenGet);
  run_for(sim::milliseconds(100));
  auto b = open_and_send(kKeepOpenGet);
  run_for(sim::seconds(1));
  ASSERT_EQ(a->responses.size(), 1u);
  EXPECT_TRUE(b->responses.empty());  // parked: never read, never served
  EXPECT_EQ(server_->stats().connections_queued, 1u);
  EXPECT_EQ(server_->stats().max_admission_queue, 1u);

  // A closes; the slot frees at the server's close, and B — whose request
  // has been waiting in its receive buffer all along — is admitted and
  // served without re-sending anything.
  a->conn->shutdown_send();
  run_for(sim::seconds(1));
  ASSERT_EQ(b->responses.size(), 1u);
  EXPECT_EQ(b->responses[0].status, 200);
  EXPECT_GT(b->response_times[0], a->response_times[0]);
}

TEST_F(AdmissionFixture, ParkedConnectionOutlivesIdleTimeout) {
  // The idle reaper must not collect parked connections: their clock only
  // starts at admission. A holds the slot for the full idle timeout (the
  // reaper closes A), then B — parked for longer than idle_timeout — is
  // admitted and served.
  server::ServerConfig cfg = base_config();
  cfg.max_concurrent_connections = 1;
  cfg.admission_policy = server::AdmissionPolicy::kQueue;
  cfg.idle_timeout = sim::milliseconds(500);
  start_server(cfg);

  auto a = open_and_send(kKeepOpenGet);
  run_for(sim::milliseconds(50));
  auto b = open_and_send(kKeepOpenGet);
  run_for(sim::seconds(3));  // well past several idle periods

  ASSERT_EQ(a->responses.size(), 1u);
  EXPECT_TRUE(a->peer_fin);  // A reaped by the idle timeout
  ASSERT_EQ(b->responses.size(), 1u);
  EXPECT_EQ(b->responses[0].status, 200);
  EXPECT_EQ(server_->stats().connections_queued, 1u);
}

TEST_F(AdmissionFixture, ListenerStatsAccounting) {
  server::ServerConfig cfg = base_config();
  cfg.listen_backlog = 128;
  start_server(cfg);

  constexpr unsigned kConns = 5;
  std::vector<RawClient*> clients;
  for (unsigned i = 0; i < kConns; ++i) {
    clients.push_back(open_and_send(kCloseGet));
    run_for(sim::milliseconds(200));
  }
  run_for(sim::seconds(2));

  for (const auto& rc : clients) {
    ASSERT_EQ(rc->responses.size(), 1u);
    EXPECT_EQ(rc->responses[0].status, 200);
  }
  const tcp::ListenerStats* ls = net_.server.listener_stats(80);
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->syns_received, kConns);
  EXPECT_EQ(ls->syns_dropped, 0u);
  EXPECT_EQ(ls->accepted, kConns);
  EXPECT_EQ(server_->stats().connections_accepted, kConns);
}

}  // namespace
}  // namespace hsim
