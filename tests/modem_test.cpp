#include "modem/v42bis.hpp"

#include <gtest/gtest.h>

#include "deflate/deflate.hpp"
#include "harness/experiment.hpp"
#include "sim/random.hpp"

namespace hsim::modem {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(V42bisTest, CompressesRepetitiveText) {
  std::string s;
  for (int i = 0; i < 300; ++i) s += "<td><img src=\"/images/dot.gif\">";
  V42bis v;
  const auto data = bytes_of(s);
  const std::size_t out = v.process(data);
  EXPECT_LT(out, data.size() / 2);
  EXPECT_EQ(v.total_in(), data.size());
}

TEST(V42bisTest, TransparentModeNeverExpandsMuch) {
  sim::Rng rng(3);
  std::vector<std::uint8_t> noise(10'000);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next_u32());
  V42bis v;
  const std::size_t out = v.process(noise);
  EXPECT_LE(out, noise.size() + 1);
}

TEST(V42bisTest, DictionaryPersistsAcrossPackets) {
  // Feeding the same content twice: the second pass must compress better
  // because the dictionary already holds the phrases.
  const auto data = bytes_of(
      "the quick brown fox jumps over the lazy dog and the quick brown fox");
  V42bis v;
  const std::size_t first = v.process(data);
  const std::size_t second = v.process(data);
  EXPECT_LT(second, first);
}

TEST(V42bisTest, WorseThanDeflateOnHtml) {
  // The paper's §8.2.1 finding: deflate clearly beats modem compression.
  const std::string& html = harness::shared_site().html;
  const auto data = bytes_of(html);
  V42bis v;
  const std::size_t modem_out = v.process(data);
  const std::size_t deflate_out = deflate::zlib_compress(data).size();
  EXPECT_LT(deflate_out, modem_out);
  // Deflate reaches ~0.27 of original; V.42bis lands well above that.
  EXPECT_GT(static_cast<double>(modem_out) / data.size(), 0.35);
}

TEST(V42bisTest, AlreadyDeflatedDataDoesNotCompress) {
  const std::string& html = harness::shared_site().html;
  const auto deflated = deflate::zlib_compress(bytes_of(html));
  V42bis v;
  const std::size_t out = v.process(deflated);
  // At best marginal gains on deflate output; transparent mode caps at +1.
  EXPECT_GT(out, deflated.size() * 9 / 10);
  EXPECT_LE(out, deflated.size() + 1);
}

TEST(V42bisTest, ResetClearsState) {
  const auto data = bytes_of("abcabcabcabcabc");
  V42bis v;
  const std::size_t first = v.process(data);
  v.reset();
  EXPECT_EQ(v.total_in(), 0u);
  const std::size_t again = v.process(data);
  EXPECT_EQ(first, again);
}

TEST(V42bisTest, SizerShrinksLinkSerialisation) {
  // Two identical links, one with modem compression: compressible payloads
  // cross the compressed link faster.
  sim::EventQueue queue;
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 28'800;
  net::Link plain(queue, cfg, sim::Rng(1));
  net::Link compressed(queue, cfg, sim::Rng(2));
  auto v = std::make_shared<V42bis>();
  compressed.set_payload_sizer(make_modem_sizer(v));

  struct Sink : net::PacketSink {
    sim::Time arrival = -1;
    sim::EventQueue& q;
    explicit Sink(sim::EventQueue& q) : q(q) {}
    void deliver(net::Packet) override { arrival = q.now(); }
  } plain_sink(queue), comp_sink(queue);
  plain.set_sink(&plain_sink);
  compressed.set_sink(&comp_sink);

  net::Packet p;
  std::string text;
  for (int i = 0; i < 40; ++i) text += "compressible compressible ";
  p.payload = buf::Bytes(std::string_view(text));
  plain.transmit(p);
  compressed.transmit(p);
  queue.run();
  EXPECT_LT(comp_sink.arrival, plain_sink.arrival);
}

TEST(V42bisTest, EmptyPayloadCostsNothing) {
  V42bis v;
  EXPECT_EQ(v.process({}), 0u);
}

}  // namespace
}  // namespace hsim::modem
