// Unit tests for the HTTP server over a raw TCP connection (no Robot):
// conditional requests, HEAD, ranges, content coding, connection semantics.
#include <gtest/gtest.h>

#include "deflate/deflate.hpp"
#include "deflate/inflate.hpp"
#include "http/parser.hpp"
#include "server/server.hpp"
#include "server/static_site.hpp"
#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using server::Resource;
using server::StaticSite;

StaticSite make_site() {
  StaticSite site;
  Resource page;
  page.path = "/page.html";
  page.content_type = "text/html";
  const std::string body =
      "<html><body>hello hello hello hello hello</body></html>";
  page.data = buf::Bytes(std::string_view(body));
  page.etag = server::make_etag(page.data.span());
  page.last_modified = http::kSimulationEpoch;
  page.deflated = buf::Bytes(deflate::zlib_compress(page.data.span()));
  site.add(page);

  Resource image;
  image.path = "/img.gif";
  image.content_type = "image/gif";
  image.data = buf::Bytes(4000, 0x42);
  image.etag = server::make_etag(image.data.span());
  image.last_modified = http::kSimulationEpoch;
  site.add(image);
  return site;
}

/// Drives one or more raw HTTP requests through a fresh client connection
/// and collects the responses.
class ServerFixture : public ::testing::Test {
 protected:
  ServerFixture()
      : net_(net::ChannelConfig::symmetric(0, sim::milliseconds(2))),
        server_(net_.server, make_site(), config(), sim::Rng(5)) {
    server_.start(80);
  }

  static server::ServerConfig config() {
    server::ServerConfig c = server::apache_config();
    c.per_request_cpu = sim::microseconds(100);
    c.per_connection_cpu = sim::microseconds(100);
    return c;
  }

  /// Sends raw request text; returns all responses parsed with the given
  /// request-method contexts.
  std::vector<http::Response> exchange(
      const std::string& wire,
      const std::vector<http::Method>& methods,
      sim::Time settle = sim::seconds(30)) {
    tcp::TcpOptions opts;
    opts.nodelay = true;
    auto conn = net_.client.connect(kServerAddr, 80, opts);
    http::ResponseParser parser;
    for (const http::Method m : methods) parser.push_request_context(m);
    std::vector<http::Response> responses;
    conn->set_on_data([&] {
      const auto bytes = conn->read_all().to_vector();
      parser.feed({bytes.data(), bytes.size()});
      while (auto r = parser.next()) responses.push_back(std::move(*r));
    });
    conn->set_on_connected([&] { conn->send(wire); });
    net_.queue.run_until(net_.queue.now() + settle);
    conn_ = conn;
    return responses;
  }

  TestNet net_;
  server::HttpServer server_;
  tcp::ConnectionPtr conn_;
};

TEST_F(ServerFixture, SimpleGet) {
  const auto responses =
      exchange("GET /page.html HTTP/1.1\r\nHost: x\r\n\r\n",
               {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].headers.get("Content-Type"), "text/html");
  EXPECT_TRUE(responses[0].headers.contains("ETag"));
  EXPECT_TRUE(responses[0].headers.contains("Last-Modified"));
  EXPECT_TRUE(responses[0].headers.contains("Date"));
  EXPECT_EQ(responses[0].body.size(), 55u);
}

TEST_F(ServerFixture, NotFound) {
  const auto responses = exchange("GET /missing HTTP/1.1\r\nHost: x\r\n\r\n",
                                  {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 404);
  EXPECT_EQ(server_.stats().responses_404, 1u);
}

TEST_F(ServerFixture, HeadOmitsBodyButKeepsLength) {
  const auto responses = exchange("HEAD /img.gif HTTP/1.1\r\nHost: x\r\n\r\n",
                                  {http::Method::kHead});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].headers.get("Content-Length"), "4000");
  EXPECT_TRUE(responses[0].body.empty());
}

TEST_F(ServerFixture, ConditionalGetMatchingEtagReturns304) {
  const std::string etag = make_site().find("/img.gif")->etag;
  const auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nIf-None-Match: " + etag +
          "\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 304);
  EXPECT_TRUE(responses[0].body.empty());
  EXPECT_EQ(responses[0].headers.get("ETag"), etag);
}

TEST_F(ServerFixture, ConditionalGetStaleEtagReturnsFull) {
  const auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nIf-None-Match: \"old\"\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body.size(), 4000u);
}

TEST_F(ServerFixture, IfModifiedSinceHonoured) {
  const std::string fresh = http::format_http_date(http::kSimulationEpoch);
  auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nIf-Modified-Since: " + fresh +
          "\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 304);

  const std::string stale =
      http::format_http_date(http::kSimulationEpoch - 86400);
  responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nIf-Modified-Since: " + stale +
          "\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
}

TEST_F(ServerFixture, RangeRequestReturnsPartial) {
  const auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nRange: bytes=100-199\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 206);
  EXPECT_EQ(responses[0].body.size(), 100u);
  EXPECT_EQ(responses[0].headers.get("Content-Range"), "bytes 100-199/4000");
  EXPECT_EQ(server_.stats().responses_206, 1u);
}

TEST_F(ServerFixture, SuffixAndOpenEndedRanges) {
  auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nRange: bytes=3900-\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 206);
  EXPECT_EQ(responses[0].body.size(), 100u);

  responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nRange: bytes=-50\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 206);
  EXPECT_EQ(responses[0].body.size(), 50u);
  EXPECT_EQ(responses[0].headers.get("Content-Range"), "bytes 3950-3999/4000");
}

TEST_F(ServerFixture, MalformedRangeFallsBackToFull) {
  const auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nRange: bytes=9999-88\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body.size(), 4000u);
}

TEST_F(ServerFixture, IfRangeMismatchSendsFullEntity) {
  const auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nRange: bytes=0-99\r\n"
      "If-Range: \"stale\"\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].body.size(), 4000u);
}

TEST_F(ServerFixture, DeflateVariantServedOnAcceptEncoding) {
  const auto responses = exchange(
      "GET /page.html HTTP/1.1\r\nHost: x\r\nAccept-Encoding: deflate\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].headers.get("Content-Encoding"), "deflate");
  const auto body = responses[0].body.to_vector();
  const auto inflated = deflate::zlib_decompress(body);
  ASSERT_TRUE(inflated.ok);
  EXPECT_EQ(inflated.data.size(), 55u);
  EXPECT_EQ(server_.stats().deflated_responses, 1u);
}

TEST_F(ServerFixture, NoDeflateWithoutAcceptEncoding) {
  const auto responses = exchange(
      "GET /page.html HTTP/1.1\r\nHost: x\r\n\r\n", {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].headers.contains("Content-Encoding"));
}

TEST_F(ServerFixture, ImagesHaveNoDeflateVariant) {
  const auto responses = exchange(
      "GET /img.gif HTTP/1.1\r\nHost: x\r\nAccept-Encoding: deflate\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].headers.contains("Content-Encoding"));
}

TEST_F(ServerFixture, PipelinedRequestsAnsweredInOrder) {
  const auto responses = exchange(
      "GET /page.html HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /img.gif HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /missing HTTP/1.1\r\nHost: x\r\n\r\n",
      {http::Method::kGet, http::Method::kGet, http::Method::kGet});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_EQ(responses[0].headers.get("Content-Type"), "text/html");
  EXPECT_EQ(responses[1].headers.get("Content-Type"), "image/gif");
  EXPECT_EQ(responses[2].status, 404);
}

TEST_F(ServerFixture, MalformedRequestGets400AndClose) {
  const auto responses = exchange("NONSENSE-LINE\r\n\r\n",
                                  {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
  EXPECT_TRUE(conn_->peer_closed() ||
              conn_->state() == tcp::State::kClosed);
}

TEST_F(ServerFixture, Http10RequestGetsConnectionClose) {
  const auto responses = exchange("GET /page.html HTTP/1.0\r\n\r\n",
                                  {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[0].version, http::Version::kHttp10);
  EXPECT_TRUE(responses[0].headers.has_token("Connection", "close"));
  EXPECT_TRUE(conn_->peer_closed() || conn_->state() == tcp::State::kClosed);
}

TEST_F(ServerFixture, Http10KeepAliveHonoured) {
  const auto responses = exchange(
      "GET /page.html HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"
      "GET /img.gif HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
      {http::Method::kGet, http::Method::kGet});
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[0].headers.has_token("Connection", "keep-alive"));
  EXPECT_EQ(responses[1].status, 200);
}

TEST_F(ServerFixture, ConnectionCloseRequestHonoured) {
  const auto responses = exchange(
      "GET /page.html HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
      {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(conn_->peer_closed() || conn_->state() == tcp::State::kClosed);
}

TEST_F(ServerFixture, IdleTimeoutClosesConnection) {
  server::ServerConfig c = config();
  // Re-listen with a short idle timeout on another port.
  c.idle_timeout = sim::seconds(2);
  server::HttpServer quick(net_.server, make_site(), c, sim::Rng(6));
  quick.start(81);
  auto conn = net_.client.connect(kServerAddr, 81, tcp::TcpOptions{});
  bool peer_closed = false;
  conn->set_on_peer_fin([&] { peer_closed = true; });
  net_.queue.run_until(net_.queue.now() + sim::seconds(30));
  EXPECT_TRUE(peer_closed);
}

TEST_F(ServerFixture, SiteUpdateChangesEtagAndContent) {
  ASSERT_TRUE(server_.site().update(
      "/img.gif", std::vector<std::uint8_t>(2000, 0x55),
      http::kSimulationEpoch + 1000));
  const auto responses = exchange("GET /img.gif HTTP/1.1\r\nHost: x\r\n\r\n",
                                  {http::Method::kGet});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].body.size(), 2000u);
  EXPECT_FALSE(server_.site().update("/nope", {}, 0));
}

TEST_F(ServerFixture, VerboseHeadersAddBytes) {
  server::ServerConfig c = config();
  c.verbose_headers = true;
  server::HttpServer verbose(net_.server, make_site(), c, sim::Rng(7));
  verbose.start(82);
  tcp::TcpOptions opts;
  opts.nodelay = true;
  auto conn = net_.client.connect(kServerAddr, 82, opts);
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  std::vector<http::Response> responses;
  conn->set_on_data([&] {
    const auto bytes = conn->read_all().to_vector();
    parser.feed({bytes.data(), bytes.size()});
    while (auto r = parser.next()) responses.push_back(std::move(*r));
  });
  conn->set_on_connected(
      [&] { conn->send("GET /img.gif HTTP/1.1\r\nHost: x\r\n\r\n"); });
  net_.queue.run_until(net_.queue.now() + sim::seconds(10));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(responses[0].headers.contains("Accept-Ranges"));
  EXPECT_TRUE(responses[0].headers.contains("MIME-Version"));
}

}  // namespace
}  // namespace hsim
