// Anti-storm recovery: retry budgets, seeded backoff jitter, Retry-After,
// and the proxy's upstream circuit breaker.
//
// Budget properties (seed sweep over a 5xx storm):
//   - the token bucket is never overdrawn: consumed <= refunded + budget
//   - refunds are bounded by successes (a token comes back only on a
//     successful response)
//   - exhaustion is always attributed: every retry refused on an empty
//     bucket fails its request with FailureKind::kRetryBudgetExhausted
//   - at the same seed, a budgeted client never re-issues more than an
//     unbudgeted one
//
// Retry-After: a 503 carrying the server's overload hint delays the
// re-issue beyond the client's own backoff, and the client still completes.
//
// Circuit breaker: consecutive upstream failures trip it open, requests are
// answered locally with `503 Retry-After`, a half-open probe re-tests the
// origin after open_duration, and a probe success closes it again.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "harness/chaos.hpp"
#include "harness/experiment.hpp"
#include "http/parser.hpp"
#include "proxy/proxy.hpp"
#include "server/server.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

// ---------------------------------------------------------------------------
// Retry-budget properties under a 5xx storm
// ---------------------------------------------------------------------------

harness::ExperimentSpec storm_spec(std::uint64_t seed, unsigned budget) {
  harness::ExperimentSpec spec;
  spec.network = harness::lan_profile();
  spec.client = harness::robot_config(client::ProtocolMode::kHttp10Parallel);
  spec.seed = seed;
  spec.server.faults.error_probability = 0.5;
  spec.client.max_attempts = 10;
  spec.client.retry_backoff = sim::milliseconds(50);
  spec.client.retry_server_errors = true;
  spec.client.request_deadline = sim::seconds(5);
  spec.client.page_deadline = sim::seconds(120);
  spec.client.retry_budget = budget;
  spec.client.retry_jitter = budget > 0 ? 0.5 : 0.0;
  spec.client.retry_jitter_seed = seed * 977 + 1;
  return spec;
}

std::size_t exhaustion_attributions(const client::RobotStats& stats) {
  std::size_t n = 0;
  for (const client::RequestFailure& f : stats.failures) {
    if (f.kind == client::FailureKind::kRetryBudgetExhausted) ++n;
  }
  return n;
}

TEST(RetryBudget, TokenBucketPropertiesHoldAcrossSeeds) {
  constexpr unsigned kBudget = 2;
  const content::MicroscapeSite& site = harness::shared_site();
  std::uint64_t total_exhausted = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const harness::RunResult budgeted =
        harness::run_once(storm_spec(seed, kBudget), site);
    const client::RobotStats& stats = budgeted.robot;

    // Never overdrawn: every consumed token was either part of the initial
    // budget or came back as a refund.
    EXPECT_LE(stats.retry_tokens_consumed,
              stats.retry_tokens_refunded + kBudget)
        << "seed " << seed;
    // Refunds only on success.
    EXPECT_LE(stats.retry_tokens_refunded,
              stats.responses_ok + stats.responses_partial +
                  stats.responses_not_modified)
        << "seed " << seed;
    // Exhaustion is always attributed, one failed request per refusal.
    EXPECT_EQ(exhaustion_attributions(stats), stats.retry_budget_exhausted)
        << "seed " << seed;
    EXPECT_EQ(stats.requests_failed, stats.failures.size()) << "seed " << seed;
    total_exhausted += stats.retry_budget_exhausted;

    // Same seed, no budget: at least as many re-issues.
    const harness::RunResult unbudgeted =
        harness::run_once(storm_spec(seed, 0), site);
    EXPECT_EQ(unbudgeted.robot.retry_budget_exhausted, 0u);
    EXPECT_EQ(unbudgeted.robot.retry_tokens_consumed, 0u);
    EXPECT_GE(unbudgeted.robot.retries + unbudgeted.robot.responses_error,
              stats.retries + stats.retry_budget_exhausted)
        << "seed " << seed;
  }
  // The sweep is not vacuous: the budget genuinely bit somewhere.
  EXPECT_GT(total_exhausted, 0u);
}

TEST(RetryBudget, DisabledBudgetNeverRefusesOrCounts) {
  const harness::RunResult result =
      harness::run_once(storm_spec(3, /*budget=*/0), harness::shared_site());
  EXPECT_EQ(result.robot.retry_budget_exhausted, 0u);
  EXPECT_EQ(result.robot.retry_tokens_consumed, 0u);
  EXPECT_EQ(result.robot.retry_tokens_refunded, 0u);
  EXPECT_EQ(exhaustion_attributions(result.robot), 0u);
}

// ---------------------------------------------------------------------------
// Retry-After honoured on overload 503s
// ---------------------------------------------------------------------------

TEST(RetryAfter, OverloadHintDelaysReissueBeyondBackoff) {
  harness::ExperimentSpec spec;
  spec.network = harness::lan_profile();
  spec.client = harness::robot_config(client::ProtocolMode::kHttp10Parallel);
  spec.seed = 5;
  // Two serving slots for four parallel lanes: the overflow connections are
  // rejected with "503 Retry-After: 2".
  spec.server.max_concurrent_connections = 2;
  spec.server.admission_policy = server::AdmissionPolicy::kReject503;
  spec.server.overload_retry_after = sim::seconds(2);
  spec.client.max_attempts = 10;
  spec.client.retry_backoff = sim::milliseconds(100);
  spec.client.retry_server_errors = true;
  spec.client.page_deadline = sim::seconds(120);

  const harness::RunResult result =
      harness::run_once(spec, harness::shared_site());
  EXPECT_GT(result.robot.retry_after_honored, 0u);
  EXPECT_TRUE(result.robot.complete);
  // The honoured hint is visible in wall-clock: at least one 2 s wait.
  EXPECT_GT(result.seconds(), 2.0);
}

// ---------------------------------------------------------------------------
// Proxy circuit breaker
// ---------------------------------------------------------------------------

constexpr net::IpAddr kClientAddr = 1;
constexpr net::IpAddr kProxyAddr = 2;
constexpr net::IpAddr kOriginAddr = 3;

struct Fanout : net::PacketSink {
  std::map<net::IpAddr, net::Link*> routes;
  void deliver(net::Packet p) override {
    if (auto it = routes.find(p.dst); it != routes.end()) {
      it->second->transmit(std::move(p));
    }
  }
};

/// Client — proxy — origin rig where the origin's first `faulty` connections
/// die mid-response (premature close), and every later one serves cleanly.
struct BreakerRig {
  explicit BreakerRig(unsigned faulty) : BreakerRig(faulty, make_config()) {}

  BreakerRig(unsigned faulty, server::ServerConfig origin_config)
      : rng(41),
        cp(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(5)),
           rng.fork()),
        po(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(20)),
           rng.fork()),
        client(queue, kClientAddr, "client", rng.fork()),
        proxy_host(queue, kProxyAddr, "proxy", rng.fork()),
        origin(queue, kOriginAddr, "origin", rng.fork()),
        proxy_uplink(queue, net::LinkConfig{}, rng.fork()),
        origin_server(origin,
                      server::StaticSite::from_microscape(
                          harness::shared_site()),
                      with_faults(origin_config, faulty), rng.fork()) {
    cp.attach_a(&client);
    cp.attach_b(&proxy_host);
    po.attach_a(&proxy_host);
    po.attach_b(&origin);
    client.attach_uplink(&cp.uplink_from_a());
    origin.attach_uplink(&po.uplink_from_b());
    fanout.routes[kClientAddr] = &cp.uplink_from_b();
    fanout.routes[kOriginAddr] = &po.uplink_from_a();
    proxy_uplink.set_sink(&fanout);
    proxy_host.attach_uplink(&proxy_uplink);
    origin_server.start(80);

    proxy::HttpProxyConfig pc;
    pc.origin_addr = kOriginAddr;
    pc.breaker.enabled = true;
    pc.breaker.failure_threshold = 2;
    pc.breaker.open_duration = sim::seconds(5);
    pc.breaker.retry_after = sim::seconds(3);
    proxy = std::make_unique<proxy::HttpProxy>(proxy_host, pc);
    proxy->start(8080);
  }

  static server::ServerConfig make_config() { return server::apache_config(); }

  static server::ServerConfig with_faults(server::ServerConfig config,
                                          unsigned faulty) {
    config.faults.premature_close_after_bytes = faulty > 0 ? 1 : 0;
    config.faults.faulty_connection_limit = faulty;
    return config;
  }

  /// One GET through the proxy on a fresh connection.
  std::optional<http::Response> get(const std::string& target) {
    auto conn = client.connect(kProxyAddr, 8080, tcp::TcpOptions{});
    http::ResponseParser parser;
    parser.push_request_context(http::Method::kGet);
    std::optional<http::Response> result;
    conn->set_on_data([&, raw = conn.get()] {
      const auto b = raw->read_all().to_vector();
      parser.feed({b.data(), b.size()});
      if (auto r = parser.next()) result = std::move(*r);
    });
    conn->set_on_connected([&, raw = conn.get()] {
      raw->send("GET " + target + " HTTP/1.1\r\nHost: x\r\n\r\n");
      raw->shutdown_send();
    });
    // Short window: requests resolve in well under a second here, and the
    // window must stay below breaker.open_duration so consecutive gets
    // observe the open state rather than racing the half-open transition.
    queue.run_until(queue.now() + sim::seconds(2));
    return result;
  }

  void wait(sim::Time dt) { queue.run_until(queue.now() + dt); }

  sim::EventQueue queue;
  sim::Rng rng;
  net::Channel cp, po;
  tcp::Host client, proxy_host, origin;
  net::Link proxy_uplink;
  Fanout fanout;
  server::HttpServer origin_server;
  std::unique_ptr<proxy::HttpProxy> proxy;
};

TEST(CircuitBreaker, TripsRejectsProbesAndRecovers) {
  // Origin connections 1-3 die mid-response; 4+ serve cleanly.
  BreakerRig rig(/*faulty=*/3);

  // Failures 1 and 2 trip the breaker (threshold 2).
  auto r1 = rig.get("/index.html");
  EXPECT_FALSE(r1.has_value() && r1->status == 200);
  auto r2 = rig.get("/index.html");
  EXPECT_FALSE(r2.has_value() && r2->status == 200);
  EXPECT_EQ(rig.proxy->stats().breaker_trips, 1u);

  // Open: answered locally with 503 + Retry-After, no upstream contact.
  const std::uint64_t upstream_before = rig.proxy->stats().upstream_connections;
  const auto rejected = rig.get("/index.html");
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->status, 503);
  const auto retry_after = rejected->headers.get("Retry-After");
  ASSERT_TRUE(retry_after.has_value());
  EXPECT_EQ(*retry_after, "3");
  EXPECT_EQ(rig.proxy->stats().upstream_connections, upstream_before);
  EXPECT_EQ(rig.proxy->stats().breaker_rejections, 1u);

  // After open_duration: the half-open probe goes upstream, hits the last
  // faulty connection, and the breaker reopens.
  rig.wait(sim::seconds(6));
  const auto probe_fail = rig.get("/index.html");
  EXPECT_FALSE(probe_fail.has_value() && probe_fail->status == 200);
  EXPECT_EQ(rig.proxy->stats().breaker_probes, 1u);
  EXPECT_EQ(rig.proxy->stats().breaker_trips, 2u);

  // Next open_duration: the probe succeeds (faulty budget spent) and the
  // breaker closes — traffic flows again.
  rig.wait(sim::seconds(6));
  const auto probe_ok = rig.get("/index.html");
  ASSERT_TRUE(probe_ok.has_value());
  EXPECT_EQ(probe_ok->status, 200);
  EXPECT_EQ(rig.proxy->stats().breaker_probes, 2u);

  const auto after = rig.get("/images/img05.gif");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->status, 200);
  EXPECT_EQ(rig.proxy->stats().breaker_trips, 2u);
  EXPECT_EQ(rig.proxy->stats().breaker_rejections, 1u);
}

TEST(CircuitBreaker, DisabledBreakerNeverIntervenes) {
  BreakerRig rig(/*faulty=*/0, [] {
    return BreakerRig::make_config();
  }());
  rig.proxy.reset();  // rebuild without breaker
  proxy::HttpProxyConfig pc;
  pc.origin_addr = kOriginAddr;
  rig.proxy = std::make_unique<proxy::HttpProxy>(rig.proxy_host, pc);
  rig.proxy->start(8080);

  const auto ok = rig.get("/index.html");
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->status, 200);
  EXPECT_EQ(rig.proxy->stats().breaker_trips, 0u);
  EXPECT_EQ(rig.proxy->stats().breaker_rejections, 0u);
  EXPECT_EQ(rig.proxy->stats().breaker_probes, 0u);
}

}  // namespace
}  // namespace hsim
