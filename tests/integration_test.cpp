// End-to-end integration: Robot <-> HttpServer across the simulated network,
// exercising every protocol mode against every scenario.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

using client::ProtocolMode;
using harness::ExperimentSpec;
using harness::RunResult;
using harness::Scenario;

const content::MicroscapeSite& site() { return harness::shared_site(); }

RunResult run(ProtocolMode mode, Scenario scenario,
              harness::NetworkProfile network = harness::lan_profile(),
              server::ServerConfig server = server::jigsaw_config(),
              std::uint64_t seed = 42) {
  ExperimentSpec spec;
  spec.network = network;
  spec.server = std::move(server);
  spec.client = harness::robot_config(mode);
  spec.scenario = scenario;
  spec.seed = seed;
  return harness::run_once(spec, site());
}

TEST(IntegrationTest, FirstVisitFetchesEverythingHttp10) {
  const RunResult r = run(ProtocolMode::kHttp10Parallel,
                          Scenario::kFirstVisit);
  EXPECT_TRUE(r.robot.complete);
  EXPECT_EQ(r.robot.responses_ok, 43u);  // HTML + 42 images
  EXPECT_EQ(r.robot.responses_error, 0u);
  // One TCP connection per request. The host-level socket count can exceed
  // the robot's 4-connection cap because closing sockets linger in
  // TIME_WAIT/FIN_WAIT (the paper's Table 3 similarly reports 6 simultaneous
  // sockets for a 4-connection client).
  EXPECT_EQ(r.connections_used, 43u);
  EXPECT_LE(r.max_parallel_connections, 10u);
}

TEST(IntegrationTest, FirstVisitFetchesEverythingPipelined) {
  const RunResult r = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kFirstVisit);
  EXPECT_TRUE(r.robot.complete);
  EXPECT_EQ(r.robot.responses_ok, 43u);
  EXPECT_EQ(r.connections_used, 1u);  // single persistent connection
}

TEST(IntegrationTest, FirstVisitBodyBytesMatchSite) {
  const RunResult r = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kFirstVisit);
  EXPECT_EQ(r.robot.body_bytes,
            site().html.size() + site().total_image_bytes());
}

TEST(IntegrationTest, CompressedModeTransfersFewerBytes) {
  const RunResult plain = run(ProtocolMode::kHttp11Pipelined,
                              Scenario::kFirstVisit);
  const RunResult compressed = run(ProtocolMode::kHttp11PipelinedCompressed,
                                   Scenario::kFirstVisit);
  EXPECT_TRUE(compressed.robot.complete);
  // The HTML travels deflated (~31 KB saved) but the decoded page and the
  // images are identical.
  EXPECT_LT(compressed.trace.wire_bytes + 25'000, plain.trace.wire_bytes);
  EXPECT_EQ(compressed.robot.responses_ok, 43u);
}

TEST(IntegrationTest, CompressedHtmlDecodesIdentically) {
  // The robot's cache stores the *decoded* document; it must match the
  // original HTML exactly after streaming inflation.
  ExperimentSpec spec;
  spec.client = harness::robot_config(
      ProtocolMode::kHttp11PipelinedCompressed);
  spec.scenario = Scenario::kFirstVisit;

  sim::EventQueue queue;
  sim::Rng rng(7);
  net::Channel channel(queue, spec.network.channel_config(), rng.fork());
  tcp::Host ch(queue, 1, "c", rng.fork());
  tcp::Host sh(queue, 2, "s", rng.fork());
  channel.attach_a(&ch);
  channel.attach_b(&sh);
  ch.attach_uplink(&channel.uplink_from_a());
  sh.attach_uplink(&channel.uplink_from_b());
  server::HttpServer server(sh, server::StaticSite::from_microscape(site()),
                            server::jigsaw_config(), rng.fork());
  server.start(80);
  client::Robot robot(ch, 2, 80, spec.client);
  bool done = false;
  robot.start_first_visit("/index.html", [&] { done = true; });
  queue.run_until(sim::seconds(300));
  ASSERT_TRUE(done);
  const client::CacheEntry* entry = robot.cache().find("/index.html");
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->body.equals(std::string_view(site().html)));
}

TEST(IntegrationTest, RevalidationGets304ForEverything) {
  const RunResult r = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kRevalidation);
  EXPECT_TRUE(r.robot.complete);
  EXPECT_EQ(r.robot.responses_not_modified, 43u);
  EXPECT_EQ(r.robot.responses_ok, 0u);
  EXPECT_EQ(r.robot.body_bytes, 0u);  // nothing transferred
}

TEST(IntegrationTest, Http10RevalidationTransfersHtmlAgain) {
  // The old robot's GET + 42 HEAD profile re-downloads the 42 KB page.
  const RunResult r = run(ProtocolMode::kHttp10Parallel,
                          Scenario::kRevalidation);
  EXPECT_TRUE(r.robot.complete);
  EXPECT_GE(r.robot.body_bytes, site().html.size());
  EXPECT_LT(r.robot.body_bytes,
            site().html.size() + 1000);  // images only HEADed
}

TEST(IntegrationTest, PipelinedBeatsHttp10OnPacketsEverywhere) {
  // The paper's headline: at least a factor of two in packets, everywhere.
  for (const auto& network :
       {harness::lan_profile(), harness::wan_profile()}) {
    const RunResult h10 =
        run(ProtocolMode::kHttp10Parallel, Scenario::kFirstVisit, network);
    const RunResult h11p =
        run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit, network);
    EXPECT_GE(h10.trace.packets, 2 * h11p.trace.packets) << network.name;
  }
}

TEST(IntegrationTest, PipelinedRevalidationSavesFactorTen) {
  const RunResult h10 =
      run(ProtocolMode::kHttp10Parallel, Scenario::kRevalidation);
  const RunResult h11p =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kRevalidation);
  EXPECT_GE(h10.trace.packets, 10 * h11p.trace.packets);
}

TEST(IntegrationTest, PersistentWithoutPipeliningIsSlowerThanHttp10) {
  // "An HTTP/1.1 implementation that does not implement pipelining will
  // perform worse (have higher elapsed time) than an HTTP/1.0 implementation
  // using multiple connections."
  for (const auto& network :
       {harness::lan_profile(), harness::wan_profile()}) {
    const RunResult h10 =
        run(ProtocolMode::kHttp10Parallel, Scenario::kFirstVisit, network);
    const RunResult h11 =
        run(ProtocolMode::kHttp11Persistent, Scenario::kFirstVisit, network);
    EXPECT_GT(h11.robot.elapsed_seconds(), h10.robot.elapsed_seconds())
        << network.name;
  }
}

TEST(IntegrationTest, PipelinedFasterThanHttp10Elapsed) {
  for (const auto& network :
       {harness::lan_profile(), harness::wan_profile()}) {
    const RunResult h10 =
        run(ProtocolMode::kHttp10Parallel, Scenario::kFirstVisit, network);
    const RunResult h11p =
        run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit, network);
    EXPECT_LT(h11p.robot.elapsed_seconds(), h10.robot.elapsed_seconds())
        << network.name;
  }
}

TEST(IntegrationTest, MeanPacketSizeRoughlyDoublesWithPipelining) {
  const RunResult h10 =
      run(ProtocolMode::kHttp10Parallel, Scenario::kFirstVisit);
  const RunResult h11p =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit);
  EXPECT_GE(h11p.trace.mean_packet_size, 1.8 * h10.trace.mean_packet_size);
}

TEST(IntegrationTest, PacketTrainsLengthenDramatically) {
  const RunResult h10 =
      run(ProtocolMode::kHttp10Parallel, Scenario::kFirstVisit);
  const RunResult h11p =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit);
  // HTTP/1.0 trains rarely exceed ~12 packets; pipelined is one long train.
  EXPECT_LT(h10.mean_packet_train, 15.0);
  EXPECT_GT(h11p.mean_packet_train, 100.0);
}

TEST(IntegrationTest, OverheadPercentHigherForHttp10) {
  const RunResult h10 =
      run(ProtocolMode::kHttp10Parallel, Scenario::kRevalidation);
  const RunResult h11p =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kRevalidation);
  EXPECT_GT(h10.trace.overhead_percent, 15.0);  // paper: ~19-20 %
  EXPECT_LT(h11p.trace.overhead_percent, 10.0);  // paper: ~7 %
}

TEST(IntegrationTest, ApacheFasterThanJigsaw) {
  const RunResult jigsaw =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit,
          harness::lan_profile(), server::jigsaw_config());
  const RunResult apache =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit,
          harness::lan_profile(), server::apache_config());
  EXPECT_LT(apache.robot.elapsed_seconds(), jigsaw.robot.elapsed_seconds());
}

TEST(IntegrationTest, ApacheBeta2ConnectionLimitForcesReconnects) {
  // 43 pipelined requests against a server that closes (naively) after 5:
  // the robot must retry and still complete, at a packet/time cost.
  const RunResult beta =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit,
          harness::lan_profile(), server::apache_beta2_config());
  EXPECT_TRUE(beta.robot.complete);
  EXPECT_GE(beta.connections_used, 43u / 5);
  EXPECT_GT(beta.robot.retries, 0u);

  const RunResult good =
      run(ProtocolMode::kHttp11Pipelined, Scenario::kFirstVisit,
          harness::lan_profile(), server::apache_config());
  EXPECT_GT(beta.trace.packets, good.trace.packets);
}

TEST(IntegrationTest, PppElapsedIsBandwidthDominated) {
  // 191 KB over 28.8 kbit/s is ~53 s of pure serialisation; the paper
  // reports 53.3 s for pipelined Jigsaw. Generous envelope: 50-60 s.
  const RunResult r = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kFirstVisit, harness::ppp_profile());
  EXPECT_TRUE(r.robot.complete);
  EXPECT_GE(r.robot.elapsed_seconds(), 45.0);
  EXPECT_LE(r.robot.elapsed_seconds(), 60.0);
}

TEST(IntegrationTest, NoRetransmissionsOnCleanNetworks) {
  // On an uncongested LAN nothing should ever be retransmitted; packet
  // counts must be fully deterministic modulo seed.
  const RunResult a = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kFirstVisit, harness::lan_profile(),
                          server::jigsaw_config(), /*seed=*/1);
  const RunResult b = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kFirstVisit, harness::lan_profile(),
                          server::jigsaw_config(), /*seed=*/1);
  EXPECT_EQ(a.trace.packets, b.trace.packets);
  EXPECT_EQ(a.trace.wire_bytes, b.trace.wire_bytes);
  EXPECT_EQ(a.robot.retries, 0u);
}

TEST(IntegrationTest, ServerStatsAccount) {
  const RunResult r = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kFirstVisit);
  EXPECT_EQ(r.server.requests_served, 43u);
  EXPECT_EQ(r.server.responses_200, 43u);
  EXPECT_EQ(r.server.responses_404, 0u);
}

TEST(IntegrationTest, RevalidationServerSees304s) {
  const RunResult r = run(ProtocolMode::kHttp11Pipelined,
                          Scenario::kRevalidation);
  EXPECT_EQ(r.server.responses_304, 43u);
}

TEST(IntegrationTest, DeflateServedOnlyWhenRequested) {
  const RunResult plain = run(ProtocolMode::kHttp11Pipelined,
                              Scenario::kFirstVisit);
  EXPECT_EQ(plain.server.deflated_responses, 0u);
  const RunResult compressed = run(
      ProtocolMode::kHttp11PipelinedCompressed, Scenario::kFirstVisit);
  EXPECT_EQ(compressed.server.deflated_responses, 1u);  // HTML only
}

TEST(IntegrationTest, AveragedResultsAreStable) {
  harness::ExperimentSpec spec;
  spec.client = harness::robot_config(ProtocolMode::kHttp11Pipelined);
  spec.scenario = Scenario::kRevalidation;
  const harness::AveragedResult avg = harness::run_averaged(spec, site(), 3);
  EXPECT_TRUE(avg.all_complete);
  EXPECT_GT(avg.packets, 10);
  EXPECT_LT(avg.packets, 60);
}

}  // namespace
}  // namespace hsim
