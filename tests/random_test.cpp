#include "sim/random.hpp"

#include <gtest/gtest.h>

namespace hsim::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformRealStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(RngTest, JitterCentredOnOne) {
  Rng r(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double j = r.jitter(0.1);
    EXPECT_GE(j, 0.9);
    EXPECT_LE(j, 1.1);
    sum += j;
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng parent_copy(99);
  parent_copy.next_u64();  // consume what fork consumed
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= (child.next_u64() != parent_copy.next_u64());
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace hsim::sim
