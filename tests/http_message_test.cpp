#include "http/message.hpp"

#include <gtest/gtest.h>

#include "http/chunked.hpp"
#include "http/date.hpp"

namespace hsim::http {
namespace {

std::string as_string(const std::vector<std::uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

TEST(HeadersTest, CaseInsensitiveLookup) {
  Headers h;
  h.add("Content-Length", "42");
  EXPECT_EQ(h.get("content-length"), "42");
  EXPECT_EQ(h.get("CONTENT-LENGTH"), "42");
  EXPECT_FALSE(h.get("Content-Type").has_value());
}

TEST(HeadersTest, SetReplacesFirstOccurrence) {
  Headers h;
  h.add("Accept", "text/html");
  h.set("accept", "*/*");
  EXPECT_EQ(h.get("Accept"), "*/*");
  EXPECT_EQ(h.size(), 1u);
  h.set("Host", "example.com");
  EXPECT_EQ(h.size(), 2u);
}

TEST(HeadersTest, RemoveDeletesAllOccurrences) {
  Headers h;
  h.add("Via", "proxy1");
  h.add("Via", "proxy2");
  h.remove("via");
  EXPECT_FALSE(h.contains("Via"));
}

TEST(HeadersTest, HasTokenSplitsOnCommas) {
  Headers h;
  h.add("Connection", "Keep-Alive, Upgrade");
  EXPECT_TRUE(h.has_token("Connection", "keep-alive"));
  EXPECT_TRUE(h.has_token("Connection", "upgrade"));
  EXPECT_FALSE(h.has_token("Connection", "close"));
  EXPECT_FALSE(h.has_token("Missing", "x"));
}

TEST(HeadersTest, WireSizeCountsNameColonSpaceValueCrlf) {
  Headers h;
  h.add("Host", "a");  // "Host: a\r\n" = 9 bytes
  EXPECT_EQ(h.wire_size(), 9u);
}

TEST(RequestTest, SerializeMatchesWireSize) {
  Request r;
  r.method = Method::kGet;
  r.target = "/images/logo.gif";
  r.version = Version::kHttp11;
  r.headers.add("Host", "www.microscape.com");
  r.headers.add("Accept", "*/*");
  const auto bytes = r.serialize();
  EXPECT_EQ(bytes.size(), r.wire_size());
  const std::string s = as_string(bytes);
  EXPECT_TRUE(s.starts_with("GET /images/logo.gif HTTP/1.1\r\n"));
  EXPECT_NE(s.find("Host: www.microscape.com\r\n"), std::string::npos);
  EXPECT_TRUE(s.ends_with("\r\n\r\n"));
}

TEST(ResponseTest, SerializeIncludesStatusLineAndBody) {
  Response r;
  r.version = Version::kHttp11;
  r.status = 200;
  r.reason = "OK";
  r.headers.add("Content-Length", "5");
  r.body.append(buf::Bytes(std::string_view("hello")));
  const std::string s = as_string(r.serialize());
  EXPECT_TRUE(s.starts_with("HTTP/1.1 200 OK\r\n"));
  EXPECT_TRUE(s.ends_with("\r\n\r\nhello"));
  EXPECT_EQ(r.serialize().size(), r.wire_size());
}

TEST(ResponseTest, StatusForbidsBody) {
  Response r;
  r.status = 304;
  EXPECT_TRUE(r.status_forbids_body());
  r.status = 204;
  EXPECT_TRUE(r.status_forbids_body());
  r.status = 101;
  EXPECT_TRUE(r.status_forbids_body());
  r.status = 200;
  EXPECT_FALSE(r.status_forbids_body());
  r.status = 404;
  EXPECT_FALSE(r.status_forbids_body());
}

TEST(ResponseTest, DefaultReasons) {
  EXPECT_EQ(default_reason(200), "OK");
  EXPECT_EQ(default_reason(304), "Not Modified");
  EXPECT_EQ(default_reason(404), "Not Found");
  EXPECT_EQ(default_reason(206), "Partial Content");
  EXPECT_EQ(default_reason(777), "Unknown");
}

TEST(MethodTest, RoundtripParse) {
  for (Method m : {Method::kGet, Method::kHead, Method::kPost}) {
    EXPECT_EQ(parse_method(to_string(m)), m);
  }
  EXPECT_FALSE(parse_method("BREW").has_value());
}

TEST(ChunkedTest, EncodeChunkFormat) {
  std::vector<std::uint8_t> data = {'a', 'b', 'c'};
  EXPECT_EQ(as_string(encode_chunk(data)), "3\r\nabc\r\n");
  EXPECT_EQ(as_string(final_chunk()), "0\r\n\r\n");
}

TEST(ChunkedTest, EncodeChunkedBodySplits) {
  std::vector<std::uint8_t> data(10, 'x');
  const std::string s = as_string(encode_chunked_body(data, 4));
  EXPECT_EQ(s, "4\r\nxxxx\r\n4\r\nxxxx\r\n2\r\nxx\r\n0\r\n\r\n");
}

TEST(DateTest, EpochFormatsToPaperDate) {
  EXPECT_EQ(format_http_date(kSimulationEpoch),
            "Tue, 24 Jun 1997 00:00:00 GMT");
}

TEST(DateTest, KnownDates) {
  EXPECT_EQ(format_http_date(0), "Thu, 01 Jan 1970 00:00:00 GMT");
  EXPECT_EQ(format_http_date(784111777), "Sun, 06 Nov 1994 08:49:37 GMT");
}

TEST(DateTest, ParseRoundtrip) {
  for (UnixSeconds t : {UnixSeconds{0}, UnixSeconds{784111777},
                        kSimulationEpoch, kSimulationEpoch + 86399}) {
    const std::string s = format_http_date(t);
    const auto parsed = parse_http_date(s);
    ASSERT_TRUE(parsed.has_value()) << s;
    EXPECT_EQ(*parsed, t) << s;
  }
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_http_date("not a date").has_value());
  EXPECT_FALSE(parse_http_date("Tue, 24 Jun 1997 00:00:00 PST").has_value());
  EXPECT_FALSE(parse_http_date("").has_value());
}

TEST(DateTest, SimTimeMapping) {
  EXPECT_EQ(sim_to_unix(0), kSimulationEpoch);
  EXPECT_EQ(sim_to_unix(sim::seconds(90)), kSimulationEpoch + 90);
}

}  // namespace
}  // namespace hsim::http
