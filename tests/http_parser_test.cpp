#include "http/parser.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>

namespace hsim::http {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string as_string(const std::vector<std::uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

std::string as_string(const buf::Chain& c) { return c.to_string(); }

TEST(RequestParserTest, ParsesSimpleGet) {
  RequestParser p;
  p.feed(as_bytes("GET /index.html HTTP/1.1\r\nHost: www\r\n\r\n"));
  const auto req = p.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, Method::kGet);
  EXPECT_EQ(req->target, "/index.html");
  EXPECT_EQ(req->version, Version::kHttp11);
  EXPECT_EQ(req->headers.get("Host"), "www");
  EXPECT_FALSE(p.next().has_value());
}

TEST(RequestParserTest, IncrementalFeedAcrossBoundaries) {
  RequestParser p;
  const std::string msg = "HEAD /img.gif HTTP/1.0\r\nAccept: */*\r\n\r\n";
  for (char c : msg) {
    std::string one(1, c);
    p.feed(as_bytes(one));
  }
  const auto req = p.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, Method::kHead);
  EXPECT_EQ(req->version, Version::kHttp10);
}

TEST(RequestParserTest, PipelinedRequestsParseInOrder) {
  RequestParser p;
  p.feed(as_bytes(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(p.next()->target, "/a");
  EXPECT_EQ(p.next()->target, "/b");
  EXPECT_EQ(p.next()->target, "/c");
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(RequestParserTest, BodyWithContentLength) {
  RequestParser p;
  p.feed(as_bytes("POST /submit HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd"));
  const auto req = p.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(as_string(req->body), "abcd");
}

TEST(RequestParserTest, WaitsForFullBody) {
  RequestParser p;
  p.feed(as_bytes("POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"));
  EXPECT_FALSE(p.next().has_value());
  p.feed(as_bytes("defghij"));
  const auto req = p.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->body.size(), 10u);
}

TEST(RequestParserTest, RejectsBadMethod) {
  RequestParser p;
  p.feed(as_bytes("BREW /pot HTTP/1.1\r\n\r\n"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_TRUE(p.failed());
  EXPECT_EQ(p.error(), ParseError::kBadStartLine);
}

TEST(RequestParserTest, RejectsBadVersion) {
  RequestParser p;
  p.feed(as_bytes("GET / HTTP/2.0\r\n\r\n"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ParseError::kBadVersion);
}

TEST(RequestParserTest, RejectsMalformedHeader) {
  RequestParser p;
  p.feed(as_bytes("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ParseError::kBadHeader);
}

TEST(ResponseParserTest, ParsesContentLengthBody) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello"));
  const auto res = p.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->status, 200);
  EXPECT_EQ(res->reason, "OK");
  EXPECT_EQ(as_string(res->body), "hello");
}

TEST(ResponseParserTest, HeadResponseHasNoBodyDespiteContentLength) {
  ResponseParser p;
  p.push_request_context(Method::kHead);
  p.push_request_context(Method::kGet);
  // The HEAD response advertises a length but sends no body; the next
  // response follows immediately.
  p.feed(as_bytes(
      "HTTP/1.1 200 OK\r\nContent-Length: 999\r\n\r\n"
      "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"));
  const auto head_res = p.next();
  ASSERT_TRUE(head_res.has_value());
  EXPECT_TRUE(head_res->body.empty());
  EXPECT_EQ(head_res->headers.get("Content-Length"), "999");
  const auto get_res = p.next();
  ASSERT_TRUE(get_res.has_value());
  EXPECT_EQ(as_string(get_res->body), "ok");
}

TEST(ResponseParserTest, NotModifiedHasNoBody) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.push_request_context(Method::kGet);
  p.feed(as_bytes(
      "HTTP/1.1 304 Not Modified\r\nETag: \"v1\"\r\n\r\n"
      "HTTP/1.1 304 Not Modified\r\nETag: \"v2\"\r\n\r\n"));
  const auto a = p.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->status, 304);
  EXPECT_EQ(a->headers.get("ETag"), "\"v1\"");
  const auto b = p.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->headers.get("ETag"), "\"v2\"");
}

TEST(ResponseParserTest, PipelinedResponsesInterleavedFeeds) {
  ResponseParser p;
  for (int i = 0; i < 3; ++i) p.push_request_context(Method::kGet);
  const std::string wire =
      "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nA"
      "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nB"
      "HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nC";
  // Feed in awkward 7-byte slices.
  std::vector<std::string> bodies;
  for (std::size_t i = 0; i < wire.size(); i += 7) {
    p.feed(as_bytes(wire.substr(i, 7)));
    while (auto res = p.next()) bodies.push_back(as_string(res->body));
  }
  ASSERT_EQ(bodies.size(), 3u);
  EXPECT_EQ(bodies[0], "A");
  EXPECT_EQ(bodies[1], "B");
  EXPECT_EQ(bodies[2], "C");
}

TEST(ResponseParserTest, Http10BodyRunsUntilClose) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes("HTTP/1.0 200 OK\r\n\r\npartial body"));
  EXPECT_FALSE(p.next().has_value());  // no length: body still open
  p.feed(as_bytes(" more"));
  EXPECT_FALSE(p.next().has_value());
  p.on_connection_closed();
  const auto res = p.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(as_string(res->body), "partial body more");
}

TEST(ResponseParserTest, ChunkedBodyDecodes) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"));
  const auto res = p.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(as_string(res->body), "hello world");
}

TEST(ResponseParserTest, ChunkedWithExtensionAndTrailer) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;name=val\r\nabcd\r\n0\r\nX-Trailer: t\r\n\r\n"));
  const auto res = p.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(as_string(res->body), "abcd");
}

TEST(ResponseParserTest, ChunkedSplitAcrossFeeds) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  const std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "a\r\n0123456789\r\n3\r\nxyz\r\n0\r\n\r\n";
  for (char c : wire) {
    std::string one(1, c);
    p.feed(as_bytes(one));
  }
  const auto res = p.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(as_string(res->body), "0123456789xyz");
}

TEST(ResponseParserTest, RejectsBadChunkSize) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes(
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ParseError::kBadChunk);
}

TEST(ResponseParserTest, RejectsBadContentLength) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes("HTTP/1.1 200 OK\r\nContent-Length: 12x\r\n\r\n"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ParseError::kBadContentLength);
}

TEST(ResponseParserTest, RejectsBadStatus) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  p.feed(as_bytes("HTTP/1.1 99 Nope\r\n\r\n"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_EQ(p.error(), ParseError::kBadStartLine);
}

TEST(ResponseParserTest, MidMessageFlagTracksBodyProgress) {
  ResponseParser p;
  p.push_request_context(Method::kGet);
  EXPECT_FALSE(p.mid_message());
  p.feed(as_bytes("HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nab"));
  EXPECT_FALSE(p.next().has_value());
  EXPECT_TRUE(p.mid_message());
  p.feed(as_bytes("cd"));
  EXPECT_TRUE(p.next().has_value());
  EXPECT_FALSE(p.mid_message());
}

TEST(ResponseParserTest, MegabyteBodyFedByteAtATimeStaysLinear) {
  // Regression guard for the old flat-vector parser, which erased the
  // consumed front of its buffer on every feed — quadratic when a large
  // body arrives in tiny segments. The chain-cursor parser must ingest a
  // 1 MB body one byte at a time in linear time, and must not explode the
  // body representation into one node per feed.
  ResponseParser p;
  p.push_request_context(Method::kGet);
  constexpr std::size_t kBody = 1'000'000;
  p.feed(as_bytes("HTTP/1.1 200 OK\r\nContent-Length: " +
                  std::to_string(kBody) + "\r\n\r\n"));
  const auto start = std::chrono::steady_clock::now();
  const std::uint8_t byte = 'x';
  for (std::size_t i = 0; i < kBody; ++i) {
    p.feed(std::span<const std::uint8_t>(&byte, 1));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const auto res = p.next();
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->body.size(), kBody);
  // Contiguous split_front() slices coalesce: ~1 MB / 64 KB blocks, with
  // generous slack — nowhere near one node per byte.
  EXPECT_LE(res->body.node_count(), 64u);
  // A quadratic front-erase moves ~5e11 bytes here (minutes even on fast
  // hardware); the linear path is comfortably under this bound anywhere.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            10'000);
}

TEST(ParseHeaderLineTest, TrimsOptionalWhitespace) {
  std::string name, value;
  ASSERT_TRUE(parse_header_line("Server:   Jigsaw/1.06  ", name, value));
  EXPECT_EQ(name, "Server");
  EXPECT_EQ(value, "Jigsaw/1.06");
  EXPECT_FALSE(parse_header_line("no-colon-line", name, value));
  EXPECT_FALSE(parse_header_line(":empty-name", name, value));
}

}  // namespace
}  // namespace hsim::http
