#include <gtest/gtest.h>

#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using tcp::ConnectionPtr;
using tcp::State;
using tcp::TcpOptions;

TEST(TcpCloseTest, GracefulCloseBothSides) {
  TestNet net;
  ConnectionPtr server_conn;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_peer_fin([raw = c.get()] { raw->shutdown_send(); });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  bool client_closed = false;
  conn->set_on_connected([&] { conn->shutdown_send(); });
  conn->set_on_closed([&] { client_closed = true; });
  net.queue.run_until(sim::seconds(120));
  // The client initiated the close so it passes through TIME_WAIT and then
  // fully closes; the server reaches CLOSED via LAST_ACK.
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(conn->state(), State::kClosed);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->state(), State::kClosed);
  EXPECT_EQ(net.server.open_connections(), 0u);
  EXPECT_EQ(net.client.open_connections(), 0u);
}

TEST(TcpCloseTest, HalfCloseStillDeliversServerData) {
  // Client shuts down its sending direction; the server must still be able
  // to stream a response back (the HTTP/1.1-correct independent half-close).
  TestNet net;
  const auto response = pattern_bytes(30'000);
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_peer_fin([&response, raw = c.get()] {
          std::size_t off = 0;
          off += raw->send(std::span<const std::uint8_t>(response.data(),
                                                         response.size()));
          // 30 KB fits the default send buffer; send in one call.
          ASSERT_EQ(off, response.size());
          raw->shutdown_send();
        });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  Collector rx;
  rx.attach(conn);
  conn->set_on_connected([&] {
    conn->send("request");
    conn->shutdown_send();
  });
  net.queue.run_until(sim::seconds(120));
  EXPECT_EQ(rx.data, response);
  EXPECT_TRUE(rx.peer_fin);
}

TEST(TcpCloseTest, FinPiggybacksOnFinalDataSegment) {
  TestNet net;
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] {
    conn->send("final words");
    conn->shutdown_send();
  });
  net.queue.run_until(sim::seconds(1));
  // The data segment should carry FIN; no separate bare-FIN packet.
  bool saw_data_fin = false;
  bool saw_bare_fin = false;
  for (const auto& r : net.trace.records()) {
    if (r.src != kClientAddr) continue;
    if ((r.flags & net::flag::kFin) != 0) {
      if (r.payload_bytes > 0) saw_data_fin = true;
      else saw_bare_fin = true;
    }
  }
  EXPECT_TRUE(saw_data_fin);
  EXPECT_FALSE(saw_bare_fin);
}

TEST(TcpCloseTest, NaiveCloseResetsLatePipelinedData) {
  // The paper's pitfall: the server closes both directions after serving some
  // requests; data already in flight from the client draws an RST, and the
  // client loses responses it had received but not yet read.
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(50)));
  ConnectionPtr server_conn;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_data([raw = c.get()] {
          (void)raw->read_all();
          // Serve "one response" then naively close both directions.
          raw->send("RESPONSE-1");
          raw->close_naive();
        });
      },
      TcpOptions{});
  TcpOptions copts;
  copts.nodelay = true;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, copts);
  bool client_reset = false;
  std::vector<std::uint8_t> client_read;
  conn->set_on_reset([&] { client_reset = true; });
  conn->set_on_connected([&] { conn->send("REQ-1"); });
  // The client pipelines a second request 60 ms later — after the server has
  // closed, while the first response is still unread in the client buffer.
  net.queue.schedule_at(sim::milliseconds(160), [&] {
    if (conn->state() != State::kClosed) conn->send("REQ-2");
  });
  net.queue.run_until(sim::seconds(10));
  EXPECT_TRUE(client_reset);
  EXPECT_TRUE(conn->was_reset());
  // The buffered response was destroyed by the reset before the app read it.
  EXPECT_EQ(conn->available(), 0u);
}

TEST(TcpCloseTest, GracefulServerCloseDoesNotLoseResponses) {
  // Contrast with the naive close: a server that half-closes (FIN on its send
  // side, keeps receiving) lets the client read everything.
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(50)));
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_data([raw = c.get()] {
          (void)raw->read_all();
          raw->send("RESPONSE-1");
          raw->shutdown_send();  // graceful: receive side stays open
        });
      },
      TcpOptions{});
  TcpOptions copts;
  copts.nodelay = true;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, copts);
  std::string got;
  bool reset = false;
  conn->set_on_reset([&] { reset = true; });
  conn->set_on_data([&] {
    auto b = conn->read_all().to_vector();
    got.append(b.begin(), b.end());
  });
  conn->set_on_connected([&] { conn->send("REQ-1"); });
  net.queue.schedule_at(sim::milliseconds(160), [&] {
    if (conn->state() != State::kClosed) conn->send("REQ-2");
  });
  net.queue.run_until(sim::seconds(10));
  EXPECT_EQ(got, "RESPONSE-1");
  EXPECT_FALSE(reset);
}

TEST(TcpCloseTest, AbortSendsRst) {
  TestNet net;
  ConnectionPtr server_conn;
  bool server_reset = false;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_reset([&] { server_reset = true; });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->abort(); });
  net.queue.run();
  EXPECT_TRUE(server_reset);
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(net.client.open_connections(), 0u);
  EXPECT_EQ(net.server.open_connections(), 0u);
}

TEST(TcpCloseTest, SimultaneousCloseReachesClosedOnBothEnds) {
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(40)));
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  TcpOptions opts;
  opts.time_wait_duration = sim::seconds(1);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  net.queue.run();  // establish
  ASSERT_NE(server_conn, nullptr);
  // Both ends close at the same instant: FINs cross in flight.
  conn->shutdown_send();
  server_conn->shutdown_send();
  net.queue.run_until(sim::seconds(120));
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(server_conn->state(), State::kClosed);
}

TEST(TcpCloseTest, DataAfterFinIsRejectedBySendApi) {
  TestNet net;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] {
    conn->shutdown_send();
    EXPECT_EQ(conn->send("too late"), 0u);
  });
  net.queue.run_until(sim::seconds(60));
}

TEST(TcpCloseTest, TimeWaitExpiresAndReleasesConnection) {
  TestNet net;
  TcpOptions opts;
  opts.time_wait_duration = sim::seconds(5);
  ConnectionPtr server_conn;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_peer_fin([raw = c.get()] { raw->shutdown_send(); });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  conn->set_on_connected([&] { conn->shutdown_send(); });
  net.queue.run_until(sim::seconds(2));
  EXPECT_EQ(conn->state(), State::kTimeWait);
  EXPECT_EQ(net.client.open_connections(), 1u);
  net.queue.run_until(sim::seconds(20));
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(net.client.open_connections(), 0u);
}

}  // namespace
}  // namespace hsim
