#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using obs::TlEvent;
using obs::TlKind;
using tcp::ConnectionPtr;
using tcp::State;
using tcp::TcpOptions;

TEST(TcpCloseTest, GracefulCloseBothSides) {
  TestNet net;
  ConnectionPtr server_conn;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_peer_fin([raw = c.get()] { raw->shutdown_send(); });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  bool client_closed = false;
  conn->set_on_connected([&] { conn->shutdown_send(); });
  conn->set_on_closed([&] { client_closed = true; });
  net.queue.run_until(sim::seconds(120));
  // The client initiated the close so it passes through TIME_WAIT and then
  // fully closes; the server reaches CLOSED via LAST_ACK.
  EXPECT_TRUE(client_closed);
  EXPECT_EQ(conn->state(), State::kClosed);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_EQ(server_conn->state(), State::kClosed);
  EXPECT_EQ(net.server.open_connections(), 0u);
  EXPECT_EQ(net.client.open_connections(), 0u);
}

TEST(TcpCloseTest, HalfCloseStillDeliversServerData) {
  // Client shuts down its sending direction; the server must still be able
  // to stream a response back (the HTTP/1.1-correct independent half-close).
  TestNet net;
  const auto response = pattern_bytes(30'000);
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_peer_fin([&response, raw = c.get()] {
          std::size_t off = 0;
          off += raw->send(std::span<const std::uint8_t>(response.data(),
                                                         response.size()));
          // 30 KB fits the default send buffer; send in one call.
          ASSERT_EQ(off, response.size());
          raw->shutdown_send();
        });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  Collector rx;
  rx.attach(conn);
  conn->set_on_connected([&] {
    conn->send("request");
    conn->shutdown_send();
  });
  net.queue.run_until(sim::seconds(120));
  EXPECT_EQ(rx.data, response);
  EXPECT_TRUE(rx.peer_fin);
}

TEST(TcpCloseTest, FinPiggybacksOnFinalDataSegment) {
  TestNet net;
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] {
    conn->send("final words");
    conn->shutdown_send();
  });
  net.queue.run_until(sim::seconds(1));
  // The data segment should carry FIN; no separate bare-FIN packet.
  bool saw_data_fin = false;
  bool saw_bare_fin = false;
  for (const auto& r : net.trace.records()) {
    if (r.src != kClientAddr) continue;
    if ((r.flags & net::flag::kFin) != 0) {
      if (r.payload_bytes > 0) saw_data_fin = true;
      else saw_bare_fin = true;
    }
  }
  EXPECT_TRUE(saw_data_fin);
  EXPECT_FALSE(saw_bare_fin);
}

TEST(TcpCloseTest, NaiveCloseResetsLatePipelinedData) {
  // The paper's pitfall: the server closes both directions after serving some
  // requests; data already in flight from the client draws an RST, and the
  // client loses responses it had received but not yet read.
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(50)));
  ConnectionPtr server_conn;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_data([raw = c.get()] {
          (void)raw->read_all();
          // Serve "one response" then naively close both directions.
          raw->send("RESPONSE-1");
          raw->close_naive();
        });
      },
      TcpOptions{});
  TcpOptions copts;
  copts.nodelay = true;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, copts);
  bool client_reset = false;
  std::vector<std::uint8_t> client_read;
  conn->set_on_reset([&] { client_reset = true; });
  conn->set_on_connected([&] { conn->send("REQ-1"); });
  // The client pipelines a second request 60 ms later — after the server has
  // closed, while the first response is still unread in the client buffer.
  net.queue.schedule_at(sim::milliseconds(160), [&] {
    if (conn->state() != State::kClosed) conn->send("REQ-2");
  });
  net.queue.run_until(sim::seconds(10));
  EXPECT_TRUE(client_reset);
  EXPECT_TRUE(conn->was_reset());
  // The buffered response was destroyed by the reset before the app read it.
  EXPECT_EQ(conn->available(), 0u);
}

TEST(TcpCloseTest, GracefulServerCloseDoesNotLoseResponses) {
  // Contrast with the naive close: a server that half-closes (FIN on its send
  // side, keeps receiving) lets the client read everything.
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(50)));
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_data([raw = c.get()] {
          (void)raw->read_all();
          raw->send("RESPONSE-1");
          raw->shutdown_send();  // graceful: receive side stays open
        });
      },
      TcpOptions{});
  TcpOptions copts;
  copts.nodelay = true;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, copts);
  std::string got;
  bool reset = false;
  conn->set_on_reset([&] { reset = true; });
  conn->set_on_data([&] {
    auto b = conn->read_all().to_vector();
    got.append(b.begin(), b.end());
  });
  conn->set_on_connected([&] { conn->send("REQ-1"); });
  net.queue.schedule_at(sim::milliseconds(160), [&] {
    if (conn->state() != State::kClosed) conn->send("REQ-2");
  });
  net.queue.run_until(sim::seconds(10));
  EXPECT_EQ(got, "RESPONSE-1");
  EXPECT_FALSE(reset);
}

TEST(TcpCloseTest, AbortSendsRst) {
  TestNet net;
  ConnectionPtr server_conn;
  bool server_reset = false;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_reset([&] { server_reset = true; });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->abort(); });
  net.queue.run();
  EXPECT_TRUE(server_reset);
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(net.client.open_connections(), 0u);
  EXPECT_EQ(net.server.open_connections(), 0u);
}

TEST(TcpCloseTest, SimultaneousCloseReachesClosedOnBothEnds) {
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(40)));
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  TcpOptions opts;
  opts.time_wait_duration = sim::seconds(1);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  net.queue.run();  // establish
  ASSERT_NE(server_conn, nullptr);
  // Both ends close at the same instant: FINs cross in flight.
  conn->shutdown_send();
  server_conn->shutdown_send();
  net.queue.run_until(sim::seconds(120));
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(server_conn->state(), State::kClosed);
}

TEST(TcpCloseTest, DataAfterFinIsRejectedBySendApi) {
  TestNet net;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] {
    conn->shutdown_send();
    EXPECT_EQ(conn->send("too late"), 0u);
  });
  net.queue.run_until(sim::seconds(60));
}

// ---------------------------------------------------------------------------
// Per-connection timeline coverage of the close handshake. With a timeline-
// enabled registry installed, each connection records every state change,
// FIN/ACK segment and RST with its simulated timestamp; these tests assert
// the full handshake shows up, in order, for all four close orderings.
// ---------------------------------------------------------------------------

/// Index of the first state transition to `to`, or npos.
std::size_t index_of_transition(const std::vector<TlEvent>& events, State to) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == TlKind::kStateChange &&
        static_cast<State>(events[i].b) == to) {
      return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

/// Index of the first sent/received segment carrying `flag`, or npos.
std::size_t index_of_segment(const std::vector<TlEvent>& events, TlKind kind,
                             std::uint8_t flag) {
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == kind && (events[i].flags & flag) != 0) return i;
  }
  return static_cast<std::size_t>(-1);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

TEST(TcpCloseTest, TimelineRecordsClientInitiatedClose) {
  obs::Registry reg;
  reg.enable_timelines();
  obs::ScopedRegistry scoped(&reg);
  TestNet net;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_peer_fin([raw = c.get()] { raw->shutdown_send(); });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->shutdown_send(); });
  net.queue.run_until(sim::seconds(120));
  ASSERT_EQ(conn->state(), State::kClosed);

  const obs::ConnTimeline* client_tl = reg.find_timeline("1:10000>2:80");
  const obs::ConnTimeline* server_tl = reg.find_timeline("2:80>1:10000");
  ASSERT_NE(client_tl, nullptr);
  ASSERT_NE(server_tl, nullptr);

  // Initiator walks FIN_WAIT_1 -> FIN_WAIT_2 -> TIME_WAIT -> CLOSED, with its
  // FIN on the wire before the transition out of FIN_WAIT_1 completes.
  const auto ce = client_tl->events();
  const std::size_t fin_sent = index_of_segment(ce, TlKind::kSegSent, net::flag::kFin);
  const std::size_t fw1 = index_of_transition(ce, State::kFinWait1);
  const std::size_t fw2 = index_of_transition(ce, State::kFinWait2);
  const std::size_t tw = index_of_transition(ce, State::kTimeWait);
  const std::size_t closed = index_of_transition(ce, State::kClosed);
  const std::size_t peer_fin =
      index_of_segment(ce, TlKind::kSegRecvd, net::flag::kFin);
  ASSERT_NE(fin_sent, kNpos);
  ASSERT_NE(fw1, kNpos);
  ASSERT_NE(fw2, kNpos);
  ASSERT_NE(tw, kNpos);
  ASSERT_NE(closed, kNpos);
  ASSERT_NE(peer_fin, kNpos);
  EXPECT_LT(fw1, fw2);
  EXPECT_LT(fw2, peer_fin);  // FIN_WAIT_2 entered on the ACK, before peer FIN
  EXPECT_LT(peer_fin, tw);   // peer's FIN drives the TIME_WAIT entry
  EXPECT_LT(tw, closed);
  EXPECT_EQ(reg.counter_value("tcp.time_wait_entered"), 1u);

  // Responder walks CLOSE_WAIT -> LAST_ACK -> CLOSED, FIN received first.
  const auto se = server_tl->events();
  const std::size_t s_peer_fin =
      index_of_segment(se, TlKind::kSegRecvd, net::flag::kFin);
  const std::size_t cw = index_of_transition(se, State::kCloseWait);
  const std::size_t la = index_of_transition(se, State::kLastAck);
  const std::size_t s_closed = index_of_transition(se, State::kClosed);
  ASSERT_NE(s_peer_fin, kNpos);
  ASSERT_NE(cw, kNpos);
  ASSERT_NE(la, kNpos);
  ASSERT_NE(s_closed, kNpos);
  EXPECT_LT(s_peer_fin, la);
  EXPECT_LT(cw, la);
  EXPECT_LT(la, s_closed);
}

TEST(TcpCloseTest, TimelineRecordsServerInitiatedClose) {
  obs::Registry reg;
  reg.enable_timelines();
  obs::ScopedRegistry scoped(&reg);
  TestNet net;
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_peer_fin([&] { conn->shutdown_send(); });
  net.queue.run_until(sim::milliseconds(200));
  ASSERT_NE(server_conn, nullptr);
  server_conn->shutdown_send();
  net.queue.run_until(sim::seconds(120));

  // Mirror image of the client-initiated case: the server is the one that
  // passes through FIN_WAIT and TIME_WAIT.
  const obs::ConnTimeline* server_tl = reg.find_timeline("2:80>1:10000");
  const obs::ConnTimeline* client_tl = reg.find_timeline("1:10000>2:80");
  ASSERT_NE(server_tl, nullptr);
  ASSERT_NE(client_tl, nullptr);
  const auto se = server_tl->events();
  EXPECT_NE(index_of_transition(se, State::kFinWait1), kNpos);
  EXPECT_NE(index_of_transition(se, State::kTimeWait), kNpos);
  const auto ce = client_tl->events();
  const std::size_t cw = index_of_transition(ce, State::kCloseWait);
  const std::size_t la = index_of_transition(ce, State::kLastAck);
  ASSERT_NE(cw, kNpos);
  ASSERT_NE(la, kNpos);
  EXPECT_LT(cw, la);
  EXPECT_EQ(reg.counter_value("tcp.time_wait_entered"), 1u);
}

TEST(TcpCloseTest, TimelineRecordsSimultaneousClose) {
  obs::Registry reg;
  reg.enable_timelines();
  obs::ScopedRegistry scoped(&reg);
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(40)));
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  TcpOptions opts;
  opts.time_wait_duration = sim::seconds(1);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  net.queue.run();
  ASSERT_NE(server_conn, nullptr);
  conn->shutdown_send();
  server_conn->shutdown_send();
  net.queue.run_until(sim::seconds(120));

  // FINs crossed in flight: both ends see the peer FIN while in FIN_WAIT_1,
  // so both pass through CLOSING (never FIN_WAIT_2) and both enter TIME_WAIT.
  for (const char* needle : {"1:10000>2:80", "2:80>1:10000"}) {
    const obs::ConnTimeline* tl = reg.find_timeline(needle);
    ASSERT_NE(tl, nullptr) << needle;
    const auto ev = tl->events();
    const std::size_t fw1 = index_of_transition(ev, State::kFinWait1);
    const std::size_t closing = index_of_transition(ev, State::kClosing);
    const std::size_t tw = index_of_transition(ev, State::kTimeWait);
    ASSERT_NE(fw1, kNpos) << needle;
    ASSERT_NE(closing, kNpos) << needle;
    ASSERT_NE(tw, kNpos) << needle;
    EXPECT_LT(fw1, closing) << needle;
    EXPECT_LT(closing, tw) << needle;
    EXPECT_EQ(index_of_transition(ev, State::kFinWait2), kNpos) << needle;
  }
  EXPECT_EQ(reg.counter_value("tcp.time_wait_entered"), 2u);
}

TEST(TcpCloseTest, TimelineAttributesDeliberateRst) {
  obs::Registry reg;
  reg.enable_timelines();
  obs::ScopedRegistry scoped(&reg);
  TestNet net;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->abort(); });
  net.queue.run();

  // The aborting side records RST-SENT with the deliberate (non-failure)
  // attribution; the victim records RST-RECV and no FIN exchange at all.
  const obs::ConnTimeline* client_tl = reg.find_timeline("1:10000>2:80");
  ASSERT_NE(client_tl, nullptr);
  const auto ce = client_tl->events();
  ASSERT_NE(index_of_transition(ce, State::kClosed), kNpos);
  bool saw_rst_sent = false;
  for (const TlEvent& e : ce) {
    if (e.kind == TlKind::kRstSent) {
      saw_rst_sent = true;
      EXPECT_EQ(e.flags, 0u) << "abort() is a deliberate RST, not a failure";
    }
    EXPECT_FALSE(e.kind == TlKind::kSegSent &&
                 (e.flags & net::flag::kFin) != 0)
        << "no FIN should accompany an abort";
  }
  EXPECT_TRUE(saw_rst_sent);

  const obs::ConnTimeline* server_tl = reg.find_timeline("2:80>1:10000");
  ASSERT_NE(server_tl, nullptr);
  const auto se = server_tl->events();
  bool saw_rst_recvd = false;
  for (const TlEvent& e : se) saw_rst_recvd |= e.kind == TlKind::kRstRecvd;
  EXPECT_TRUE(saw_rst_recvd);
  EXPECT_EQ(reg.counter_value("tcp.rst_sent"), 1u);
  EXPECT_EQ(reg.counter_value("tcp.rst_received"), 1u);
}

TEST(TcpCloseTest, TimelineAttributesFailurePathRst) {
  obs::Registry reg;
  reg.enable_timelines();
  obs::ScopedRegistry scoped(&reg);
  // Link goes down for good shortly after establishment: data retransmits
  // exhaust and the sender gives up with a failure-path RST.
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(0, sim::milliseconds(10));
  cfg.a_to_b.outages.push_back({sim::milliseconds(100), sim::seconds(3600)});
  cfg.b_to_a.outages.push_back({sim::milliseconds(100), sim::seconds(3600)});
  TestNet net(cfg);
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  TcpOptions opts;
  opts.max_data_retransmits = 3;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  bool failed = false;
  conn->set_on_failed([&] { failed = true; });
  net.queue.schedule_at(sim::milliseconds(200), [&] {
    if (conn->state() == State::kEstablished) conn->send("doomed");
  });
  net.queue.run_until(sim::seconds(600));
  ASSERT_TRUE(failed);

  const obs::ConnTimeline* client_tl = reg.find_timeline("1:10000>2:80");
  ASSERT_NE(client_tl, nullptr);
  bool saw_failure_rst = false;
  std::size_t rto_fires = 0;
  for (const TlEvent& e : client_tl->events()) {
    if (e.kind == TlKind::kRstSent) {
      EXPECT_EQ(e.flags, 1u) << "give-up RST must carry the failure flag";
      saw_failure_rst = true;
    }
    if (e.kind == TlKind::kRtoFire) ++rto_fires;
  }
  EXPECT_TRUE(saw_failure_rst);
  EXPECT_GE(rto_fires, 3u);
  EXPECT_EQ(reg.counter_value("tcp.rto_fires"), rto_fires);
}

TEST(TcpCloseTest, TimeWaitExpiresAndReleasesConnection) {
  TestNet net;
  TcpOptions opts;
  opts.time_wait_duration = sim::seconds(5);
  ConnectionPtr server_conn;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        c->set_on_peer_fin([raw = c.get()] { raw->shutdown_send(); });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  conn->set_on_connected([&] { conn->shutdown_send(); });
  net.queue.run_until(sim::seconds(2));
  EXPECT_EQ(conn->state(), State::kTimeWait);
  EXPECT_EQ(net.client.open_connections(), 1u);
  net.queue.run_until(sim::seconds(20));
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(net.client.open_connections(), 0u);
}

}  // namespace
}  // namespace hsim
