// Shared fixture: two TCP hosts joined by a configurable duplex channel.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "tcp/host.hpp"

namespace hsim::testutil {

inline constexpr net::IpAddr kClientAddr = 1;
inline constexpr net::IpAddr kServerAddr = 2;

struct TestNet {
  explicit TestNet(net::ChannelConfig cfg = net::ChannelConfig::symmetric(
                       0, sim::milliseconds(10)),
                   std::uint64_t seed = 1234)
      : channel(queue, cfg, sim::Rng(seed)),
        client(queue, kClientAddr, "client", sim::Rng(seed + 1)),
        server(queue, kServerAddr, "server", sim::Rng(seed + 2)),
        trace(kClientAddr) {
    channel.attach_a(&client);
    channel.attach_b(&server);
    client.attach_uplink(&channel.uplink_from_a());
    server.attach_uplink(&channel.uplink_from_b());
    channel.set_trace(&trace);
  }

  sim::EventQueue queue;
  net::Channel channel;
  tcp::Host client;
  tcp::Host server;
  net::PacketTrace trace;
};

/// An echo-style sink that accumulates everything a connection receives.
struct Collector {
  std::vector<std::uint8_t> data;
  bool peer_fin = false;
  bool closed = false;
  bool reset = false;

  void attach(const tcp::ConnectionPtr& conn) {
    conn->set_on_data([this, c = conn.get()] {
      c->read_all().for_each([this](std::span<const std::uint8_t> run) {
        data.insert(data.end(), run.begin(), run.end());
      });
    });
    conn->set_on_peer_fin([this] { peer_fin = true; });
    conn->set_on_closed([this] { closed = true; });
    conn->set_on_reset([this] { reset = true; });
  }

  std::string as_string() const {
    return std::string(data.begin(), data.end());
  }
};

inline std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

/// Deterministic pseudo-random payload for transfer tests.
inline std::vector<std::uint8_t> pattern_bytes(std::size_t n,
                                               std::uint64_t seed = 7) {
  std::vector<std::uint8_t> v(n);
  sim::Rng rng(seed);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u32());
  return v;
}

}  // namespace hsim::testutil
