// Remaining edge-case coverage: event-queue time windows, robot behaviour on
// missing resources, and server behaviour under pathological clients.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "server/static_site.hpp"
#include "tcp_test_util.hpp"

namespace hsim {
namespace {

TEST(EventQueueEdgeTest, RunForAdvancesRelativeWindow) {
  sim::EventQueue q;
  int fired = 0;
  q.schedule_at(sim::milliseconds(10), [&] { ++fired; });
  q.schedule_at(sim::milliseconds(30), [&] { ++fired; });
  q.run_for(sim::milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), sim::milliseconds(20));
  q.run_for(sim::milliseconds(20));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueEdgeTest, CancelInsideCallbackOfSameTime) {
  sim::EventQueue q;
  bool second_ran = false;
  sim::TimerId second;
  q.schedule_at(sim::milliseconds(5), [&] { q.cancel(second); });
  second = q.schedule_at(sim::milliseconds(5), [&] { second_ran = true; });
  q.run();
  EXPECT_FALSE(second_ran);
}

// A robot whose HTML references a resource the server does not have: the
// visit must still complete, with the miss recorded as an error.
TEST(RobotEdgeTest, MissingImageCountsAsErrorAndCompletes) {
  sim::EventQueue queue;
  sim::Rng rng(3);
  net::Channel channel(queue,
                       net::ChannelConfig::symmetric(0, sim::milliseconds(5)),
                       rng.fork());
  tcp::Host client_host(queue, 1, "c", rng.fork());
  tcp::Host server_host(queue, 2, "s", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());

  // A site whose page references one image that is not served.
  server::StaticSite site;
  server::Resource page;
  page.path = "/index.html";
  page.content_type = "text/html";
  const std::string html =
      "<html><body><img src=\"/ok.gif\"><img src=\"/missing.gif\">"
      "</body></html>";
  page.data = buf::Bytes(std::string_view(html));
  page.etag = server::make_etag(page.data.span());
  site.add(page);
  server::Resource ok;
  ok.path = "/ok.gif";
  ok.content_type = "image/gif";
  ok.data = buf::Bytes(100, 0x11);
  ok.etag = server::make_etag(ok.data.span());
  site.add(ok);

  server::HttpServer server(server_host, std::move(site),
                            server::apache_config(), rng.fork());
  server.start(80);
  client::Robot robot(
      client_host, 2, 80,
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  robot.start_first_visit("/index.html", [&] { done = true; });
  queue.run_until(sim::seconds(60));
  EXPECT_TRUE(done);
  EXPECT_EQ(robot.stats().responses_ok, 2u);     // page + ok.gif
  EXPECT_EQ(robot.stats().responses_error, 1u);  // missing.gif -> 404
  // The 404 is not cached.
  EXPECT_EQ(robot.cache().find("/missing.gif"), nullptr);
  EXPECT_NE(robot.cache().find("/ok.gif"), nullptr);
}

TEST(RobotEdgeTest, HtmlWithNoImagesFinishesAfterOneResponse) {
  sim::EventQueue queue;
  sim::Rng rng(5);
  net::Channel channel(queue,
                       net::ChannelConfig::symmetric(0, sim::milliseconds(5)),
                       rng.fork());
  tcp::Host client_host(queue, 1, "c", rng.fork());
  tcp::Host server_host(queue, 2, "s", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());

  server::StaticSite site;
  server::Resource page;
  page.path = "/plain.html";
  page.content_type = "text/html";
  const std::string html = "<html><body>no images at all</body></html>";
  page.data = buf::Bytes(std::string_view(html));
  page.etag = server::make_etag(page.data.span());
  site.add(page);
  server::HttpServer server(server_host, std::move(site),
                            server::apache_config(), rng.fork());
  server.start(80);
  client::Robot robot(
      client_host, 2, 80,
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  robot.start_first_visit("/plain.html", [&] { done = true; });
  queue.run_until(sim::seconds(30));
  EXPECT_TRUE(done);
  EXPECT_EQ(robot.stats().requests_sent, 1u);
  EXPECT_EQ(robot.stats().responses_ok, 1u);
}

TEST(ServerEdgeTest, ClientThatConnectsAndSendsNothingIsReaped) {
  testutil::TestNet net;
  server::ServerConfig config = server::apache_config();
  config.idle_timeout = sim::seconds(3);
  server::HttpServer server(net.server, server::StaticSite{}, config,
                            sim::Rng(9));
  server.start(80);
  auto conn = net.client.connect(testutil::kServerAddr, 80,
                                 tcp::TcpOptions{});
  bool peer_fin = false;
  conn->set_on_peer_fin([&] { peer_fin = true; });
  net.queue.run_until(sim::seconds(30));
  EXPECT_TRUE(peer_fin);
  EXPECT_EQ(server.stats().requests_served, 0u);
}

TEST(ServerEdgeTest, EmptySiteServes404ForEverything) {
  testutil::TestNet net;
  server::HttpServer server(net.server, server::StaticSite{},
                            server::apache_config(), sim::Rng(9));
  server.start(80);
  tcp::TcpOptions opts;
  opts.nodelay = true;
  auto conn = net.client.connect(testutil::kServerAddr, 80, opts);
  http::ResponseParser parser;
  parser.push_request_context(http::Method::kGet);
  std::optional<http::Response> response;
  conn->set_on_data([&] {
    const auto b = conn->read_all().to_vector();
    parser.feed({b.data(), b.size()});
    if (auto r = parser.next()) response = std::move(*r);
  });
  conn->set_on_connected(
      [&] { conn->send("GET /anything HTTP/1.1\r\nHost: x\r\n\r\n"); });
  net.queue.run_until(sim::seconds(10));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
}

TEST(StaticSiteEdgeTest, TotalBytesAndSize) {
  server::StaticSite site;
  EXPECT_EQ(site.size(), 0u);
  EXPECT_EQ(site.total_bytes(), 0u);
  server::Resource r;
  r.path = "/a";
  r.data = buf::Bytes(10, 1);
  site.add(r);
  r.path = "/b";
  r.data = buf::Bytes(20, 2);
  site.add(std::move(r));
  EXPECT_EQ(site.size(), 2u);
  EXPECT_EQ(site.total_bytes(), 30u);
  EXPECT_NE(site.find("/a"), nullptr);
  EXPECT_EQ(site.find("/c"), nullptr);
}

}  // namespace
}  // namespace hsim
