#include <gtest/gtest.h>

#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using tcp::ConnectionPtr;
using tcp::State;
using tcp::TcpOptions;

TEST(TcpHandshakeTest, ThreeWayHandshakeEstablishesBothEnds) {
  TestNet net;
  ConnectionPtr accepted;
  net.server.listen(80, [&](ConnectionPtr c) { accepted = c; }, TcpOptions{});

  bool client_connected = false;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { client_connected = true; });
  EXPECT_EQ(conn->state(), State::kSynSent);

  net.queue.run();
  EXPECT_TRUE(client_connected);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(conn->state(), State::kEstablished);
  EXPECT_EQ(accepted->state(), State::kEstablished);

  // Exactly three packets: SYN, SYN-ACK, ACK.
  ASSERT_EQ(net.trace.records().size(), 3u);
  EXPECT_EQ(net.trace.records()[0].flags, net::flag::kSyn);
  EXPECT_EQ(net.trace.records()[1].flags, net::flag::kSyn | net::flag::kAck);
  EXPECT_EQ(net.trace.records()[2].flags, net::flag::kAck);
}

TEST(TcpHandshakeTest, HandshakeTakesOneRtt) {
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(90)));
  bool connected = false;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  sim::Time connected_at = 0;
  conn->set_on_connected([&] {
    connected = true;
    connected_at = net.queue.now();
  });
  net.queue.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(connected_at, sim::milliseconds(90));
}

TEST(TcpHandshakeTest, ConnectToClosedPortDrawsReset) {
  TestNet net;
  ConnectionPtr conn = net.client.connect(kServerAddr, 81, TcpOptions{});
  bool reset = false;
  conn->set_on_reset([&] { reset = true; });
  net.queue.run();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_TRUE(conn->was_reset());
}

TEST(TcpHandshakeTest, SynRetransmitsWhenLost) {
  // Dedicated lossy setup: the client->server path drops its first packet
  // (the initial SYN); the connection must still establish via RTO.
  sim::EventQueue q;
  net::ChannelConfig lossy = net::ChannelConfig::symmetric(
      0, sim::milliseconds(10));
  net::Channel ch(q, lossy, sim::Rng(1));
  tcp::Host client(q, kClientAddr, "c", sim::Rng(2));
  tcp::Host server(q, kServerAddr, "s", sim::Rng(3));
  ch.attach_a(&client);
  ch.attach_b(&server);
  server.attach_uplink(&ch.uplink_from_b());

  // Interpose a dropping device on the client uplink.
  struct DropFirst : net::PacketSink {
    net::Link* forward = nullptr;
    int dropped = 0;
    void deliver(net::Packet p) override {
      if (dropped == 0) {
        ++dropped;
        return;
      }
      forward->transmit(std::move(p));
    }
  } dropper;
  dropper.forward = &ch.uplink_from_a();
  // Client transmits into a zero-delay link feeding the dropper.
  net::Link client_out(q, net::LinkConfig{}, sim::Rng(4));
  client_out.set_sink(&dropper);
  client.attach_uplink(&client_out);

  server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr c2 = client.connect(kServerAddr, 80, TcpOptions{});
  bool ok = false;
  c2->set_on_connected([&] { ok = true; });
  q.run_until(sim::seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_GE(c2->stats().retransmits, 1u);
}

TEST(TcpHandshakeTest, EphemeralPortsAreDistinct) {
  TestNet net;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr a = net.client.connect(kServerAddr, 80, TcpOptions{});
  ConnectionPtr b = net.client.connect(kServerAddr, 80, TcpOptions{});
  EXPECT_NE(a->key().local_port, b->key().local_port);
  net.queue.run();
  EXPECT_EQ(net.client.total_connections_created(), 2u);
}

TEST(TcpHandshakeTest, AcceptedConnectionKeyMirrorsClient) {
  TestNet net;
  ConnectionPtr accepted;
  net.server.listen(80, [&](ConnectionPtr c) { accepted = c; }, TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  net.queue.run();
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->key().peer_port, conn->key().local_port);
  EXPECT_EQ(accepted->key().local_port, 80);
  EXPECT_EQ(accepted->key().peer_addr, kClientAddr);
}

TEST(TcpHandshakeTest, StopListeningRefusesNewConnections) {
  TestNet net;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  net.server.stop_listening(80);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  bool reset = false;
  conn->set_on_reset([&] { reset = true; });
  net.queue.run();
  EXPECT_TRUE(reset);
}

}  // namespace
}  // namespace hsim
