// Framing-layer property tests.
//
// 1. Round-trip invariance: a seeded sequence of frames, encoded onto one
//    wire chain, decodes frame-for-frame identical no matter how the wire is
//    re-sliced on arrival — whole-stream, MSS-sized, random cuts, or one
//    byte at a time (every boundary) — mirroring segmentation_property_test:
//    TCP reassembly boundaries must be invisible to the frame stream.
// 2. Typed payload codecs round-trip exactly.
// 3. A malformed-frame table: every corruption maps onto an *attributed*
//    connection error (never UB — this suite runs under ASan in CI), and a
//    failed decoder stays failed.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "h2/frame.hpp"
#include "h2/session.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace hsim::h2 {
namespace {

buf::Chain chain_of(const std::vector<std::uint8_t>& bytes) {
  buf::Chain c;
  c.append_copy(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  return c;
}

std::string flat(const buf::Chain& c) { return c.to_string(0, c.size()); }

struct FlatFrame {
  FrameType type;
  std::uint8_t flags;
  std::uint32_t stream_id;
  std::string payload;

  bool operator==(const FlatFrame&) const = default;
};

FlatFrame flatten(const Frame& f) {
  return {f.type, f.flags, f.stream_id, flat(f.payload)};
}

// A seeded stream of valid frames covering every type, with the per-type
// length constraints the decoder enforces (RST/WINDOW_UPDATE exactly 4,
// SETTINGS a multiple of 6, GOAWAY >= 8, PUSH_PROMISE >= 4).
std::vector<Frame> make_frames(std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<Frame> frames;
  const int count = static_cast<int>(rng.uniform(5, 25));
  for (int i = 0; i < count; ++i) {
    Frame f;
    f.flags = static_cast<std::uint8_t>(rng.next_u32() & 0xFF);
    const int kind = static_cast<int>(rng.uniform(0, 7));
    const std::uint32_t odd_id =
        static_cast<std::uint32_t>(rng.uniform(0, 1000)) * 2 + 1;
    auto random_payload = [&](std::size_t n) {
      std::vector<std::uint8_t> body(n);
      for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u32());
      return chain_of(body);
    };
    switch (kind) {
      case 0:
        f.type = FrameType::kData;
        f.stream_id = odd_id;
        f.payload = random_payload(static_cast<std::size_t>(
            rng.uniform(0, kDefaultMaxFrameSize + 1)));
        break;
      case 1: {
        f.type = FrameType::kHeaders;
        f.stream_id = odd_id;
        http::Request req;
        req.method = http::Method::kGet;
        req.target = "/img" + std::to_string(i) + ".gif";
        req.headers.add("Host", "example.com");
        f.payload = encode_request_block(req);
        break;
      }
      case 2:
        f.type = FrameType::kRstStream;
        f.stream_id = odd_id;
        f.payload = encode_rst_payload(ErrorCode::kCancel);
        break;
      case 3:
        f.type = FrameType::kSettings;
        f.stream_id = 0;
        f.payload = encode_settings_payload(
            {{kSettingsInitialWindowSize,
              static_cast<std::uint32_t>(rng.uniform(1, 1 << 20))},
             {kSettingsMaxFrameSize, kDefaultMaxFrameSize}});
        break;
      case 4: {
        f.type = FrameType::kPushPromise;
        f.stream_id = odd_id;
        http::Request req;
        req.method = http::Method::kGet;
        req.target = "/pushed.png";
        f.payload = encode_push_promise_payload(odd_id + 1, req);
        break;
      }
      case 5:
        f.type = FrameType::kGoAway;
        f.stream_id = 0;
        f.payload = encode_goaway_payload(
            {odd_id, static_cast<std::uint32_t>(ErrorCode::kNoError)});
        break;
      default:
        f.type = FrameType::kWindowUpdate;
        f.stream_id = rng.uniform(0, 2) == 0 ? 0 : odd_id;
        f.payload = encode_window_update_payload(
            static_cast<std::uint32_t>(rng.uniform(1, 1 << 24)));
        break;
    }
    frames.push_back(std::move(f));
  }
  return frames;
}

std::string encode_wire(const std::vector<Frame>& frames) {
  buf::Chain wire;
  for (const Frame& f : frames) wire.append(encode_frame(f));
  return flat(wire);
}

// Decodes `wire` with segment sizes drawn from `next_size`.
std::vector<FlatFrame> decode_segmented(
    const std::string& wire, const std::function<std::size_t()>& next_size) {
  FrameDecoder decoder;
  std::vector<FlatFrame> out;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n =
        std::min(std::max<std::size_t>(next_size(), 1), wire.size() - pos);
    buf::Chain seg;
    seg.append_copy(std::string_view(wire).substr(pos, n));
    pos += n;
    decoder.feed(std::move(seg));
    while (auto f = decoder.next()) out.push_back(flatten(*f));
  }
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(decoder.buffered(), 0u);
  return out;
}

TEST(H2FrameProperty, RoundTripUnderEverySegmentation) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<Frame> frames = make_frames(seed);
    std::vector<FlatFrame> expected;
    for (const Frame& f : frames) expected.push_back(flatten(f));
    const std::string wire = encode_wire(frames);

    // Whole stream in one feed.
    EXPECT_EQ(decode_segmented(wire, [&] { return wire.size(); }), expected)
        << "seed " << seed;
    // One byte at a time: every possible boundary.
    EXPECT_EQ(decode_segmented(wire, [] { return std::size_t{1}; }), expected)
        << "seed " << seed;
    // MSS-sized segments.
    EXPECT_EQ(decode_segmented(wire, [] { return std::size_t{1460}; }),
              expected)
        << "seed " << seed;
    // Random slicing, several draws.
    for (std::uint64_t cut_seed = 100; cut_seed < 103; ++cut_seed) {
      sim::Rng rng(seed * 1000 + cut_seed);
      EXPECT_EQ(decode_segmented(
                    wire,
                    [&] {
                      return static_cast<std::size_t>(rng.uniform(1, 4000));
                    }),
                expected)
          << "seed " << seed << " cut " << cut_seed;
    }
  }
}

TEST(H2FrameProperty, DecodeToleratesManyNodeChains) {
  // Feed a wire built from many 1-byte chain nodes in a single call: the
  // cursor must walk node boundaries, not assume contiguity.
  const std::vector<Frame> frames = make_frames(7);
  std::vector<FlatFrame> expected;
  for (const Frame& f : frames) expected.push_back(flatten(f));
  const std::string wire = encode_wire(frames);

  buf::Chain shredded;
  for (char c : wire) shredded.append_copy(std::string_view(&c, 1));
  FrameDecoder decoder;
  decoder.feed(std::move(shredded));
  std::vector<FlatFrame> out;
  while (auto f = decoder.next()) out.push_back(flatten(*f));
  EXPECT_FALSE(decoder.failed());
  EXPECT_EQ(out, expected);
}

TEST(H2FrameProperty, TypedPayloadsRoundTrip) {
  const std::vector<Setting> settings = {{kSettingsEnablePush, 0},
                                         {kSettingsInitialWindowSize, 12345},
                                         {kSettingsMaxFrameSize, 16384}};
  const auto parsed = parse_settings_payload(encode_settings_payload(settings));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), settings.size());
  for (std::size_t i = 0; i < settings.size(); ++i) {
    EXPECT_EQ((*parsed)[i].id, settings[i].id);
    EXPECT_EQ((*parsed)[i].value, settings[i].value);
  }

  EXPECT_EQ(parse_window_update_payload(encode_window_update_payload(0x7FFFFF)),
            0x7FFFFFu);
  EXPECT_EQ(parse_rst_payload(encode_rst_payload(ErrorCode::kRefusedStream)),
            static_cast<std::uint32_t>(ErrorCode::kRefusedStream));

  const auto goaway = parse_goaway_payload(
      encode_goaway_payload({77, static_cast<std::uint32_t>(
                                     ErrorCode::kInternalError)}));
  ASSERT_TRUE(goaway.has_value());
  EXPECT_EQ(goaway->last_stream_id, 77u);
  EXPECT_EQ(goaway->error_code,
            static_cast<std::uint32_t>(ErrorCode::kInternalError));

  http::Request req;
  req.method = http::Method::kHead;
  req.target = "/a/b?c=d";
  req.headers.add("Host", "h");
  req.headers.add("If-None-Match", "\"x\"");
  const auto decoded_req = decode_request_block(encode_request_block(req));
  ASSERT_TRUE(decoded_req.has_value());
  EXPECT_EQ(decoded_req->method, http::Method::kHead);
  EXPECT_EQ(decoded_req->target, req.target);
  EXPECT_EQ(decoded_req->headers.get("Host"), "h");
  EXPECT_EQ(decoded_req->headers.get("If-None-Match"), "\"x\"");

  http::Response res;
  res.status = 304;
  res.reason = "Not Modified";
  res.headers.add("ETag", "\"y\"");
  const auto decoded_res = decode_response_block(encode_response_block(res));
  ASSERT_TRUE(decoded_res.has_value());
  EXPECT_EQ(decoded_res->status, 304);
  EXPECT_EQ(decoded_res->headers.get("ETag"), "\"y\"");

  http::Request promised;
  promised.method = http::Method::kGet;
  promised.target = "/p.png";
  const auto pp = parse_push_promise_payload(
      encode_push_promise_payload(44, promised));
  ASSERT_TRUE(pp.has_value());
  EXPECT_EQ(pp->promised_id, 44u);
  EXPECT_EQ(pp->request.target, "/p.png");
}

// ---- Malformed-frame table -------------------------------------------------

std::vector<std::uint8_t> raw_frame(std::uint32_t length, std::uint8_t type,
                                    std::uint8_t flags, std::uint32_t stream,
                                    std::size_t payload_bytes) {
  std::vector<std::uint8_t> wire;
  wire.push_back(static_cast<std::uint8_t>((length >> 16) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((length >> 8) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(length & 0xFF));
  wire.push_back(type);
  wire.push_back(flags);
  wire.push_back(static_cast<std::uint8_t>((stream >> 24) & 0x7F));
  wire.push_back(static_cast<std::uint8_t>((stream >> 16) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>((stream >> 8) & 0xFF));
  wire.push_back(static_cast<std::uint8_t>(stream & 0xFF));
  wire.resize(wire.size() + payload_bytes, 0xAB);
  return wire;
}

struct MalformedCase {
  const char* name;
  std::vector<std::uint8_t> wire;
  ErrorCode expected;
};

TEST(H2FrameProperty, MalformedFramesYieldAttributedErrors) {
  const std::vector<MalformedCase> cases = {
      {"length past max_frame_size",
       raw_frame(kDefaultMaxFrameSize + 1, 0x0, 0, 1, 0),
       ErrorCode::kFrameSizeError},
      {"unknown frame type", raw_frame(0, 0x9, 0, 1, 0),
       ErrorCode::kProtocolError},
      {"unknown frame type 0xff", raw_frame(4, 0xFF, 0, 1, 4),
       ErrorCode::kProtocolError},
      {"DATA on stream 0", raw_frame(3, 0x0, 0, 0, 3),
       ErrorCode::kProtocolError},
      {"HEADERS on stream 0", raw_frame(3, 0x1, 0x4, 0, 3),
       ErrorCode::kProtocolError},
      {"SETTINGS on a stream", raw_frame(6, 0x4, 0, 3, 6),
       ErrorCode::kProtocolError},
      {"GOAWAY on a stream", raw_frame(8, 0x7, 0, 5, 8),
       ErrorCode::kProtocolError},
      {"RST_STREAM wrong length", raw_frame(3, 0x3, 0, 1, 3),
       ErrorCode::kFrameSizeError},
      {"WINDOW_UPDATE wrong length", raw_frame(5, 0x8, 0, 1, 5),
       ErrorCode::kFrameSizeError},
      {"SETTINGS length not /6", raw_frame(7, 0x4, 0, 0, 7),
       ErrorCode::kFrameSizeError},
      {"GOAWAY too short", raw_frame(4, 0x7, 0, 0, 4),
       ErrorCode::kFrameSizeError},
      {"PUSH_PROMISE too short", raw_frame(2, 0x5, 0x4, 1, 2),
       ErrorCode::kFrameSizeError},
  };
  for (const MalformedCase& c : cases) {
    // Whole-feed and byte-at-a-time must attribute identically.
    for (const bool byte_wise : {false, true}) {
      FrameDecoder decoder;
      if (byte_wise) {
        for (std::uint8_t b : c.wire) {
          decoder.feed(chain_of({b}));
          (void)decoder.next();
        }
      } else {
        decoder.feed(chain_of(c.wire));
      }
      while (decoder.next()) {
      }
      ASSERT_TRUE(decoder.failed()) << c.name;
      EXPECT_EQ(decoder.error()->code, c.expected) << c.name;
      // Pinned failure: feeding a perfectly valid frame afterwards must not
      // resurrect the decoder.
      decoder.feed(encode_frame(Frame{FrameType::kSettings, 0, 0, {}}));
      EXPECT_FALSE(decoder.next().has_value()) << c.name;
      EXPECT_TRUE(decoder.failed()) << c.name;
    }
  }
}

TEST(H2FrameProperty, WindowOverflowIsConnectionError) {
  // Session-level attribution: a WINDOW_UPDATE lifting the connection send
  // window past 2^31-1 must surface as kFlowControlError and emit GOAWAY.
  sim::EventQueue queue;
  SessionConfig cfg;
  cfg.is_server = true;
  buf::Chain out;
  Session session(queue, cfg, [&](buf::Chain&& bytes) {
    out.append(std::move(bytes));
  });
  std::optional<DecodeError> seen;
  session.on_connection_error = [&](const DecodeError& e) { seen = e; };

  Frame update;
  update.type = FrameType::kWindowUpdate;
  update.stream_id = 0;
  update.payload = encode_window_update_payload(0x7FFFFFFF);
  session.receive(encode_frame(update));

  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->code, ErrorCode::kFlowControlError);
  EXPECT_TRUE(session.failed());
  EXPECT_TRUE(session.goaway_sent());
  EXPECT_EQ(session.stats().conn_errors, 1u);

  // The GOAWAY on the wire carries the same attribution.
  FrameDecoder decoder;
  decoder.feed(std::move(out));
  std::optional<GoAway> goaway;
  while (auto f = decoder.next()) {
    if (f->type == FrameType::kGoAway) {
      goaway = parse_goaway_payload(f->payload);
    }
  }
  ASSERT_TRUE(goaway.has_value());
  EXPECT_EQ(goaway->error_code,
            static_cast<std::uint32_t>(ErrorCode::kFlowControlError));
}

TEST(H2FrameProperty, ZeroWindowIncrementIsProtocolError) {
  sim::EventQueue queue;
  SessionConfig cfg;
  cfg.is_server = true;
  Session session(queue, cfg, [](buf::Chain&&) {});
  std::optional<DecodeError> seen;
  session.on_connection_error = [&](const DecodeError& e) { seen = e; };

  Frame update;
  update.type = FrameType::kWindowUpdate;
  update.stream_id = 0;
  update.payload = encode_window_update_payload(0);
  session.receive(encode_frame(update));

  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->code, ErrorCode::kProtocolError);
}

}  // namespace
}  // namespace hsim::h2
