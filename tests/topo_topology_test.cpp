// Topology-level properties: dumbbell workload determinism, multi-hop trace
// capture and the v2 trace format round-trip.
//
// The dumbbell is the contention path of harness::run_workload; its whole
// value rests on reproducibility (same master seed -> identical run,
// including RED's drop draws and every router's forwarding order) and on
// the hop records being a faithful per-router view of the same packets the
// bottleneck tap counted once.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"
#include "net/trace_io.hpp"

namespace hsim {
namespace {

harness::WorkloadConfig small_dumbbell(std::uint64_t seed,
                                       topo::QueueDiscKind qdisc) {
  harness::WorkloadConfig cfg;
  cfg.num_clients = 6;
  cfg.topology = harness::TopologyKind::kDumbbell;
  cfg.bottleneck_queue.kind = qdisc;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(20);
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 2'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 32;  // tight enough to see drops
  cfg.master_seed = seed;
  cfg.server = server::apache_config();
  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  return cfg;
}

/// The comparable essence of a run: every deterministic output we publish.
std::string fingerprint(const harness::WorkloadResult& r) {
  std::string out;
  out += std::to_string(r.bottleneck.packets) + "/" +
         std::to_string(r.bottleneck.wire_bytes) + "/" +
         std::to_string(r.tcp_retransmits) + "/" +
         std::to_string(r.bottleneck_queue_drops) + "/" +
         std::to_string(r.bottleneck_syns);
  for (const harness::ClientOutcome& c : r.clients) {
    out += ";" + std::to_string(c.complete()) + ":" +
           std::to_string(c.stats.started) + "-" +
           std::to_string(c.stats.finished) + ":" +
           std::to_string(c.stats.retries);
  }
  for (const harness::QueueSummary& q : r.queues) {
    out += ";" + q.label + "=" + std::to_string(q.stats.enqueued_packets) +
           "," + std::to_string(q.stats.dropped()) + "," +
           std::to_string(q.stats.peak_depth_packets);
  }
  return out;
}

TEST(DumbbellWorkload, SameSeedIsByteIdentical) {
  for (const topo::QueueDiscKind qdisc :
       {topo::QueueDiscKind::kDropTail, topo::QueueDiscKind::kRed}) {
    const harness::WorkloadResult a =
        harness::run_workload(small_dumbbell(7, qdisc), harness::shared_site());
    const harness::WorkloadResult b =
        harness::run_workload(small_dumbbell(7, qdisc), harness::shared_site());
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_EQ(a.completed(), 6u);
  }
}

TEST(DumbbellWorkload, ReportsBottleneckQueues) {
  const harness::WorkloadResult r = harness::run_workload(
      small_dumbbell(7, topo::QueueDiscKind::kRed), harness::shared_site());
  ASSERT_EQ(r.queues.size(), 2u);
  EXPECT_EQ(r.queues[0].label, "bn.up");
  EXPECT_EQ(r.queues[1].label, "bn.down");
  for (const harness::QueueSummary& q : r.queues) {
    EXPECT_EQ(q.kind, "red");
    EXPECT_EQ(q.stats.offered_packets,
              q.stats.enqueued_packets + q.stats.dropped());
  }
  // All queue-discipline drops roll up into the published drop figure.
  std::uint64_t disc_drops = 0;
  for (const harness::QueueSummary& q : r.queues) {
    disc_drops += q.stats.dropped();
  }
  EXPECT_EQ(r.bottleneck_queue_drops, disc_drops);
}

TEST(DumbbellWorkload, HopTraceSeesEveryPacketAtBothRouters) {
  harness::WorkloadConfig cfg = small_dumbbell(3, topo::QueueDiscKind::kDropTail);
  cfg.num_clients = 2;
  net::PacketTrace hop_trace(/*client_addr=*/1);
  cfg.hop_trace = &hop_trace;
  const harness::WorkloadResult r =
      harness::run_workload(cfg, harness::shared_site());
  ASSERT_EQ(r.completed(), 2u);

  const std::vector<net::TraceRecord>& records = hop_trace.records();
  ASSERT_FALSE(records.empty());
  EXPECT_TRUE(net::trace_has_hops(records));

  // Group by hop: exactly the two dumbbell routers, each having seen every
  // *forwarded* packet once (drops never produce hop records).
  const std::vector<net::HopSummary> hops =
      net::summarize_by_hop(records, /*client_addr=*/1);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].hop_router, 1);  // gate
  EXPECT_EQ(hops[1].hop_router, 2);  // core
  EXPECT_GT(hops[0].summary.packets, 0u);
  EXPECT_GT(hops[1].summary.packets, 0u);
}

TEST(TraceFormats, HopRecordsRoundTripThroughTextAndBinary) {
  harness::WorkloadConfig cfg = small_dumbbell(5, topo::QueueDiscKind::kDropTail);
  cfg.num_clients = 2;
  net::PacketTrace hop_trace(1);
  cfg.hop_trace = &hop_trace;
  harness::run_workload(cfg, harness::shared_site());
  const std::vector<net::TraceRecord>& records = hop_trace.records();
  ASSERT_TRUE(net::trace_has_hops(records));

  // v2 text round-trip.
  const std::string text = net::trace_to_text(records);
  EXPECT_EQ(text.rfind("# hsim-trace v2", 0), 0u);
  std::vector<net::TraceRecord> from_text;
  std::string error;
  ASSERT_TRUE(net::trace_from_text(text, &from_text, &error)) << error;
  ASSERT_EQ(from_text.size(), records.size());
  EXPECT_TRUE(net::diff_traces(records, from_text).identical);

  // v2 binary round-trip.
  const std::vector<std::uint8_t> blob = net::trace_to_binary(records);
  std::vector<net::TraceRecord> from_binary;
  ASSERT_TRUE(net::trace_from_binary(blob, &from_binary, &error)) << error;
  ASSERT_EQ(from_binary.size(), records.size());
  EXPECT_TRUE(net::diff_traces(records, from_binary).identical);

  // File-level round-trip: load_trace_file must sniff both v2 formats.
  for (const char* path :
       {"topo_v2_roundtrip.text.trace", "topo_v2_roundtrip.bin.trace"}) {
    const bool is_binary = std::string(path).find(".bin.") != std::string::npos;
    ASSERT_TRUE(is_binary ? net::write_file(path, blob)
                          : net::write_file(path, text));
    std::vector<net::TraceRecord> loaded;
    ASSERT_TRUE(net::load_trace_file(path, &loaded, &error)) << path << ": "
                                                             << error;
    EXPECT_TRUE(net::diff_traces(records, loaded).identical) << path;
    std::remove(path);
  }
}

}  // namespace
}  // namespace hsim
