#include <gtest/gtest.h>

#include <algorithm>

#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using tcp::ConnectionPtr;
using tcp::State;
using tcp::TcpOptions;

struct EchoServerNet : TestNet {
  // Server that collects everything and optionally echoes it back.
  explicit EchoServerNet(net::ChannelConfig cfg = net::ChannelConfig::symmetric(
                             0, sim::milliseconds(10)),
                         bool echo = false)
      : TestNet(cfg) {
    server.listen(
        80,
        [this, echo](ConnectionPtr c) {
          server_conn = c;
          c->set_on_data([this, echo, raw = c.get()] {
            auto bytes = raw->read_all().to_vector();
            received.insert(received.end(), bytes.begin(), bytes.end());
            if (echo) {
              raw->send(std::span<const std::uint8_t>(bytes.data(),
                                                      bytes.size()));
            }
          });
          c->set_on_peer_fin([this] { server_saw_fin = true; });
        },
        TcpOptions{});
  }
  ConnectionPtr server_conn;
  std::vector<std::uint8_t> received;
  bool server_saw_fin = false;
};

TEST(TcpTransferTest, SmallSendArrivesIntact) {
  EchoServerNet net;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->send("hello world"); });
  net.queue.run();
  EXPECT_EQ(std::string(net.received.begin(), net.received.end()),
            "hello world");
}

TEST(TcpTransferTest, LargeTransferIsReliableAndOrdered) {
  EchoServerNet net;
  const auto payload = pattern_bytes(200'000);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  std::size_t offset = 0;
  auto pump = [&] {
    offset += conn->send(std::span<const std::uint8_t>(
        payload.data() + offset, payload.size() - offset));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);
  net.queue.run();
  EXPECT_EQ(net.received, payload);
}

TEST(TcpTransferTest, TransferSurvivesPacketLoss) {
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(10'000'000, sim::milliseconds(20));
  cfg.a_to_b.random_drop_probability = 0.05;
  cfg.b_to_a.random_drop_probability = 0.05;
  EchoServerNet net(cfg);
  const auto payload = pattern_bytes(100'000);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  std::size_t offset = 0;
  auto pump = [&] {
    offset += conn->send(std::span<const std::uint8_t>(
        payload.data() + offset, payload.size() - offset));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);
  net.queue.run_until(sim::seconds(300));
  EXPECT_EQ(net.received, payload);
  EXPECT_GE(conn->stats().retransmits, 1u);
}

TEST(TcpTransferTest, EchoRoundTrip) {
  EchoServerNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(10)),
                    /*echo=*/true);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  Collector client_rx;
  client_rx.attach(conn);
  conn->set_on_connected([&] { conn->send("ping"); });
  net.queue.run();
  EXPECT_EQ(client_rx.as_string(), "ping");
}

TEST(TcpTransferTest, SegmentsRespectMss) {
  EchoServerNet net;
  TcpOptions opts;
  opts.mss = 536;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  const auto payload = pattern_bytes(5000);
  conn->set_on_connected([&] {
    conn->send(std::span<const std::uint8_t>(payload.data(), payload.size()));
  });
  net.queue.run();
  EXPECT_EQ(net.received, payload);
  for (const auto& r : net.trace.records()) {
    EXPECT_LE(r.payload_bytes, 536u);
  }
}

TEST(TcpTransferTest, NagleCoalescesSmallWrites) {
  // With Nagle on, a burst of tiny writes while data is in flight coalesces
  // into at most one small segment per RTT.
  EchoServerNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(100)));
  TcpOptions opts;
  opts.nodelay = false;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  // Stagger the writes over 20 ms (RTT is 100 ms): the first goes out alone,
  // the rest must be held by Nagle until the first ACK returns.
  conn->set_on_connected([&] {
    for (int i = 0; i < 20; ++i) {
      net.queue.schedule_in(sim::milliseconds(i), [&] { conn->send("x"); });
    }
  });
  net.queue.run();
  ASSERT_EQ(net.received.size(), 20u);
  // Count client data segments: first tiny write goes out alone, the other
  // 19 bytes ride one coalesced segment after the first ACK returns.
  std::size_t data_segments = 0;
  for (const auto& r : net.trace.records()) {
    if (r.src == kClientAddr && r.payload_bytes > 0) ++data_segments;
  }
  EXPECT_EQ(data_segments, 2u);
  EXPECT_GE(conn->stats().nagle_delays, 1u);
}

TEST(TcpTransferTest, NodelaySendsSmallWritesImmediately) {
  EchoServerNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(100)));
  TcpOptions opts;
  opts.nodelay = true;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  // Same staggered writes as the Nagle test; with TCP_NODELAY each write
  // becomes its own segment.
  conn->set_on_connected([&] {
    for (int i = 0; i < 5; ++i) {
      net.queue.schedule_in(sim::milliseconds(i), [&] { conn->send("x"); });
    }
  });
  net.queue.run();
  ASSERT_EQ(net.received.size(), 5u);
  std::size_t data_segments = 0;
  for (const auto& r : net.trace.records()) {
    if (r.src == kClientAddr && r.payload_bytes > 0) ++data_segments;
  }
  EXPECT_EQ(data_segments, 5u);
}

TEST(TcpTransferTest, DelayedAckHoldsPureAckUpTo200ms) {
  // One small client write, server app sends nothing: the server's ACK should
  // be delayed by the 200 ms delayed-ACK timer rather than sent immediately.
  EchoServerNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(10)));
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->send("q"); });
  net.queue.run();
  // Find the data packet and the ACK covering it.
  sim::Time data_at = -1, ack_at = -1;
  for (const auto& r : net.trace.records()) {
    if (r.src == kClientAddr && r.payload_bytes == 1) data_at = r.time;
    if (r.src == kServerAddr && r.payload_bytes == 0 && data_at >= 0 &&
        ack_at < 0 && r.time > data_at) {
      ack_at = r.time;
    }
  }
  ASSERT_GE(data_at, 0);
  ASSERT_GE(ack_at, 0);
  EXPECT_GE(ack_at - data_at, sim::milliseconds(200));
}

TEST(TcpTransferTest, EverySecondSegmentIsAckedPromptly) {
  // Two back-to-back full segments must trigger an immediate ACK (the
  // "ack every second segment" rule), not a 200 ms delay.
  EchoServerNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(10)));
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  const auto payload = pattern_bytes(2 * 1460);
  conn->set_on_connected([&] {
    conn->send(std::span<const std::uint8_t>(payload.data(), payload.size()));
  });
  net.queue.run();
  sim::Time second_data_at = -1, ack_at = -1;
  int data_count = 0;
  for (const auto& r : net.trace.records()) {
    if (r.src == kClientAddr && r.payload_bytes > 0) {
      if (++data_count == 2) second_data_at = r.time;
    }
    if (r.src == kServerAddr && r.payload_bytes == 0 && second_data_at >= 0 &&
        ack_at < 0 && r.time >= second_data_at) {
      ack_at = r.time;
    }
  }
  ASSERT_GE(ack_at, 0);
  EXPECT_LT(ack_at - second_data_at, sim::milliseconds(200));
}

TEST(TcpTransferTest, SendBufferBackpressureReportsPartialAccept) {
  EchoServerNet net;
  TcpOptions opts;
  opts.send_buffer = 1000;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
  const auto payload = pattern_bytes(5000);
  std::size_t first_accept = 0;
  bool got_space_callback = false;
  conn->set_on_connected([&] {
    first_accept = conn->send(
        std::span<const std::uint8_t>(payload.data(), payload.size()));
  });
  conn->set_on_send_space([&] { got_space_callback = true; });
  net.queue.run();
  EXPECT_LE(first_accept, 1000u);
  EXPECT_GT(first_accept, 0u);
  EXPECT_TRUE(got_space_callback);
}

TEST(TcpTransferTest, SequenceNumbersWrapCorrectly) {
  // Force initial sequence numbers near 2^32 by running many connects until
  // we exercise wrap... instead, run a large transfer with a host RNG seed
  // chosen so the ISS lands within 100 KB of the wrap point.
  for (std::uint64_t seed = 0; seed < 100'000; ++seed) {
    sim::Rng probe(seed + 10);
    const std::uint32_t iss = probe.next_u32();
    // ISS within ~200 KB of the wrap point: the 300 KB transfer crosses it.
    if (iss < 0xFFFCF000u) continue;
    // This seed makes the client host generate an ISS near wrap.
    sim::EventQueue q;
    net::Channel ch(q, net::ChannelConfig::symmetric(0, sim::milliseconds(1)),
                    sim::Rng(1));
    tcp::Host client(q, kClientAddr, "c", sim::Rng(seed + 10));
    tcp::Host server(q, kServerAddr, "s", sim::Rng(99));
    ch.attach_a(&client);
    ch.attach_b(&server);
    client.attach_uplink(&ch.uplink_from_a());
    server.attach_uplink(&ch.uplink_from_b());
    std::vector<std::uint8_t> received;
    server.listen(
        80,
        [&](ConnectionPtr c) {
          c->set_on_data([&received, raw = c.get()] {
            auto b = raw->read_all().to_vector();
            received.insert(received.end(), b.begin(), b.end());
          });
        },
        TcpOptions{});
    const auto payload = pattern_bytes(300'000);
    ConnectionPtr conn = client.connect(kServerAddr, 80, TcpOptions{});
    std::size_t offset = 0;
    auto pump = [&] {
      offset += conn->send(std::span<const std::uint8_t>(
          payload.data() + offset, payload.size() - offset));
    };
    conn->set_on_connected(pump);
    conn->set_on_send_space(pump);
    q.run();
    ASSERT_EQ(received, payload) << "seed " << seed;
    return;  // one wrap-adjacent seed suffices
  }
  GTEST_SKIP() << "no seed produced an ISS near wrap";
}

TEST(TcpTransferTest, BidirectionalSimultaneousTransfer) {
  EchoServerNet net;
  const auto c2s = pattern_bytes(50'000, 1);
  const auto s2c = pattern_bytes(60'000, 2);
  std::vector<std::uint8_t> client_got;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_data([&] {
    auto b = conn->read_all().to_vector();
    client_got.insert(client_got.end(), b.begin(), b.end());
  });
  std::size_t coff = 0;
  auto cpump = [&] {
    coff += conn->send(std::span<const std::uint8_t>(c2s.data() + coff,
                                                     c2s.size() - coff));
  };
  conn->set_on_connected(cpump);
  conn->set_on_send_space(cpump);
  // Server pushes its stream as soon as it accepts.
  net.server.stop_listening(80);
  std::size_t soff = 0;
  ConnectionPtr srv;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        srv = c;
        auto spump = [&soff, &s2c, raw = c.get()] {
          soff += raw->send(std::span<const std::uint8_t>(
              s2c.data() + soff, s2c.size() - soff));
        };
        c->set_on_data([&net, raw = c.get()] {
          auto b = raw->read_all().to_vector();
          net.received.insert(net.received.end(), b.begin(), b.end());
        });
        c->set_on_send_space(spump);
        spump();
      },
      TcpOptions{});
  net.queue.run();
  EXPECT_EQ(net.received, c2s);
  EXPECT_EQ(client_got, s2c);
}

}  // namespace
}  // namespace hsim
