// Additional content-module coverage: synthetic image generation, size
// fitting, animations, and the robot's perceived-performance metrics.
#include <gtest/gtest.h>

#include "content/gif.hpp"
#include "content/image.hpp"
#include "harness/experiment.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

using namespace content;

TEST(ImageGenTest, DeterministicForSameSpec) {
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 40;
  spec.height = 30;
  spec.colors = 16;
  spec.seed = 77;
  const IndexedImage a = generate_image(spec);
  const IndexedImage b = generate_image(spec);
  EXPECT_EQ(a.pixels, b.pixels);
  EXPECT_EQ(a.palette, b.palette);
  spec.seed = 78;
  const IndexedImage c = generate_image(spec);
  EXPECT_NE(a.pixels, c.pixels);
}

TEST(ImageGenTest, PaletteRoundedToPowerOfTwo) {
  SyntheticSpec spec;
  spec.colors = 5;
  const IndexedImage img = generate_image(spec);
  EXPECT_EQ(img.palette.size(), 8u);
  EXPECT_EQ(img.bit_depth(), 3u);
}

TEST(ImageGenTest, PixelsStayWithinPalette) {
  for (const ImageKind kind :
       {ImageKind::kSpacer, ImageKind::kBullet, ImageKind::kTextBanner,
        ImageKind::kPhoto, ImageKind::kLogo}) {
    SyntheticSpec spec;
    spec.kind = kind;
    spec.width = 30;
    spec.height = 20;
    spec.colors = 8;
    spec.seed = 3;
    const IndexedImage img = generate_image(spec);
    for (const std::uint8_t px : img.pixels) {
      EXPECT_LT(px, img.palette.size()) << static_cast<int>(kind);
    }
  }
}

TEST(ImageGenTest, FitSpecLandsNearTarget) {
  SyntheticSpec base;
  base.kind = ImageKind::kLogo;
  base.colors = 16;
  base.width = 24;
  base.height = 16;
  base.seed = 9;
  for (const std::size_t target : {300u, 1500u, 6000u}) {
    const SyntheticSpec fitted = fit_spec_to_size(
        base, target,
        [](const SyntheticSpec& s) {
          return encode_gif(generate_image(s)).size();
        });
    const std::size_t actual = encode_gif(generate_image(fitted)).size();
    EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(target),
                0.2 * target)
        << target;
  }
}

TEST(AnimationTest, FramesShareGeometryAndPalette) {
  SyntheticSpec spec;
  spec.kind = ImageKind::kLogo;
  spec.width = 32;
  spec.height = 24;
  spec.colors = 8;
  spec.seed = 13;
  const Animation anim = generate_animation(spec, 6);
  ASSERT_EQ(anim.frames.size(), 6u);
  for (const IndexedImage& f : anim.frames) {
    EXPECT_EQ(f.width, anim.frames[0].width);
    EXPECT_EQ(f.height, anim.frames[0].height);
    EXPECT_EQ(f.palette, anim.frames[0].palette);
  }
  // Successive frames differ (it is an animation)...
  EXPECT_NE(anim.frames[0].pixels, anim.frames[1].pixels);
  // ...but share most pixels (delta-friendly).
  std::size_t same = 0;
  for (std::size_t i = 0; i < anim.frames[0].pixels.size(); ++i) {
    if (anim.frames[0].pixels[i] == anim.frames[1].pixels[i]) ++same;
  }
  EXPECT_GT(same * 2, anim.frames[0].pixels.size());
}

TEST(RenderMetricsTest, CompressionAcceleratesHtmlCompletion) {
  auto run = [](client::ProtocolMode mode) {
    sim::EventQueue queue;
    sim::Rng rng(23);
    const auto network = harness::ppp_profile();
    net::Channel channel(queue, network.channel_config(), rng.fork());
    tcp::Host client_host(queue, 1, "c", rng.fork());
    tcp::Host server_host(queue, 2, "s", rng.fork());
    channel.attach_a(&client_host);
    channel.attach_b(&server_host);
    client_host.attach_uplink(&channel.uplink_from_a());
    server_host.attach_uplink(&channel.uplink_from_b());
    server::HttpServer server(
        server_host,
        server::StaticSite::from_microscape(harness::shared_site()),
        server::jigsaw_config(), rng.fork());
    server.start(80);
    client::ClientConfig config = harness::robot_config(mode);
    config.tcp.recv_buffer =
        std::min(config.tcp.recv_buffer, network.client_recv_buffer);
    client::Robot robot(client_host, 2, 80, config);
    robot.start_first_visit("/index.html", [] {});
    queue.run_until(sim::seconds(600));
    return robot.stats();
  };
  const auto plain = run(client::ProtocolMode::kHttp11Pipelined);
  const auto compressed =
      run(client::ProtocolMode::kHttp11PipelinedCompressed);
  ASSERT_TRUE(plain.complete);
  ASSERT_TRUE(compressed.complete);
  EXPECT_GT(plain.seconds_to_first_html(), 0.0);
  EXPECT_GT(plain.seconds_to_html_complete(),
            plain.seconds_to_first_html());
  // The deflated document finishes parsing at least 2x sooner.
  EXPECT_LT(2 * compressed.seconds_to_html_complete(),
            plain.seconds_to_html_complete());
  EXPECT_GT(plain.first_image_done_at, plain.started);
}

}  // namespace
}  // namespace hsim
