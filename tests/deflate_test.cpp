#include "deflate/deflate.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "deflate/checksum.hpp"
#include "deflate/inflate.hpp"
#include "sim/random.hpp"

namespace hsim::deflate {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

std::vector<std::uint8_t> roundtrip(const std::vector<std::uint8_t>& input,
                                    int level) {
  const auto compressed = zlib_compress(input, DeflateOptions{level});
  InflateResult r = zlib_decompress(compressed);
  EXPECT_TRUE(r.ok) << r.error;
  return r.data;
}

TEST(ChecksumTest, Adler32KnownVectors) {
  // "Wikipedia" has a documented Adler-32 of 0x11E60398.
  const auto data = bytes_of("Wikipedia");
  EXPECT_EQ(adler32(data), 0x11E60398u);
  EXPECT_EQ(adler32(std::span<const std::uint8_t>{}), 1u);
}

TEST(ChecksumTest, Adler32Incremental) {
  const auto data = bytes_of("The quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = adler32(data);
  std::uint32_t running = kAdlerInit;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, data.size() - i);
    running = adler32(std::span(data).subspan(i, n), running);
  }
  EXPECT_EQ(running, whole);
}

TEST(ChecksumTest, Crc32KnownVectors) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0u);
}

TEST(ChecksumTest, Crc32Incremental) {
  const auto data = bytes_of("incremental crc check data 0123456789");
  const std::uint32_t whole = crc32(data);
  std::uint32_t running = kCrcInit;
  for (std::size_t i = 0; i < data.size(); i += 5) {
    const std::size_t n = std::min<std::size_t>(5, data.size() - i);
    running = crc32(std::span(data).subspan(i, n), running);
  }
  EXPECT_EQ(running, whole);
}

TEST(DeflateTest, EmptyInputRoundtrips) {
  EXPECT_EQ(roundtrip({}, 6), std::vector<std::uint8_t>{});
}

TEST(DeflateTest, SingleByteRoundtrips) {
  EXPECT_EQ(roundtrip({42}, 6), std::vector<std::uint8_t>{42});
}

TEST(DeflateTest, AsciiTextRoundtrips) {
  const auto input = bytes_of(
      "It was the best of times, it was the worst of times, it was the age "
      "of wisdom, it was the age of foolishness, it was the epoch of belief, "
      "it was the epoch of incredulity.");
  EXPECT_EQ(roundtrip(input, 6), input);
}

TEST(DeflateTest, RepetitiveTextCompressesWell) {
  std::string s;
  for (int i = 0; i < 500; ++i) s += "<td><img src=\"/images/dot.gif\"></td>";
  const auto input = bytes_of(s);
  const auto compressed = zlib_compress(input, DeflateOptions{6});
  EXPECT_LT(compressed.size(), input.size() / 10);
  EXPECT_EQ(zlib_decompress(compressed).data, input);
}

TEST(DeflateTest, HtmlLikeTextHitsPaperCompressionFactor) {
  // The paper reports HTML compressing "more than a factor of three".
  std::string html = "<html><head><title>Test page</title></head><body>";
  sim::Rng rng(5);
  const char* words[] = {"solutions", "products",  "download", "support",
                         "internet",  "netscape",  "microsoft", "explorer",
                         "homepage",  "navigate",  "software",  "services"};
  for (int i = 0; i < 400; ++i) {
    html += "<tr><td align=\"left\" valign=\"top\"><a href=\"/";
    html += words[rng.uniform(0, 11)];
    html += ".html\"><img src=\"/images/";
    html += words[rng.uniform(0, 11)];
    html += ".gif\" width=\"88\" height=\"31\" border=\"0\" alt=\"";
    html += words[rng.uniform(0, 11)];
    html += "\"></a></td></tr>\n";
  }
  html += "</body></html>";
  const auto input = bytes_of(html);
  const auto compressed = zlib_compress(input, DeflateOptions{6});
  EXPECT_LT(compressed.size() * 3, input.size());
  EXPECT_EQ(zlib_decompress(compressed).data, input);
}

TEST(DeflateTest, IncompressibleDataSurvives) {
  sim::Rng rng(9);
  std::vector<std::uint8_t> input(50'000);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.next_u32());
  const auto compressed = zlib_compress(input, DeflateOptions{6});
  // Random bytes do not compress; stored blocks keep expansion tiny.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 100 + 64);
  EXPECT_EQ(zlib_decompress(compressed).data, input);
}

TEST(DeflateTest, AllLevelsRoundtrip) {
  std::string s;
  for (int i = 0; i < 200; ++i) {
    s += "line " + std::to_string(i % 17) + ": the rain in spain\n";
  }
  const auto input = bytes_of(s);
  for (int level = 0; level <= 9; ++level) {
    EXPECT_EQ(roundtrip(input, level), input) << "level " << level;
  }
}

TEST(DeflateTest, LargeInputSpanningMultipleBlocks) {
  std::vector<std::uint8_t> input;
  sim::Rng rng(13);
  // A mix of compressible runs and random stretches, > 200 KB.
  for (int chunk = 0; chunk < 40; ++chunk) {
    if (chunk % 2 == 0) {
      input.insert(input.end(), 4000, static_cast<std::uint8_t>('a' + chunk));
    } else {
      for (int i = 0; i < 3000; ++i) {
        input.push_back(static_cast<std::uint8_t>(rng.next_u32()));
      }
    }
  }
  EXPECT_EQ(roundtrip(input, 6), input);
  EXPECT_EQ(roundtrip(input, 1), input);
  EXPECT_EQ(roundtrip(input, 9), input);
}

TEST(DeflateTest, OverlappingMatchesRoundtrip) {
  // RLE-style data exercises matches whose distance < length.
  std::vector<std::uint8_t> input(10'000, 'x');
  EXPECT_EQ(roundtrip(input, 6), input);
  std::vector<std::uint8_t> abab;
  for (int i = 0; i < 5000; ++i) {
    abab.push_back('a');
    abab.push_back('b');
  }
  EXPECT_EQ(roundtrip(abab, 6), abab);
}

TEST(DeflateTest, HigherLevelNeverMuchWorse) {
  std::string s;
  for (int i = 0; i < 300; ++i) {
    s += "<p class=\"banner\">solutions for the enterprise</p>\n";
  }
  const auto input = bytes_of(s);
  const auto l1 = zlib_compress(input, DeflateOptions{1});
  const auto l9 = zlib_compress(input, DeflateOptions{9});
  EXPECT_LE(l9.size(), l1.size() + 16);
}

TEST(InflateTest, StreamingFeedByteAtATime) {
  const auto input = bytes_of(
      "Streaming decompression must produce output incrementally as "
      "compressed bytes arrive from the network. Streaming streaming.");
  const auto compressed = zlib_compress(input, DeflateOptions{6});
  Inflater inf;
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i < compressed.size(); ++i) {
    const auto status = inf.feed(std::span(&compressed[i], 1), out);
    ASSERT_NE(status, Inflater::Status::kError) << inf.error();
  }
  EXPECT_EQ(inf.status(), Inflater::Status::kDone);
  EXPECT_EQ(out, input);
}

TEST(InflateTest, StreamingProducesOutputBeforeStreamEnd) {
  // Feed the first half of a compressed 40 KB document: a streaming inflater
  // must already yield a substantial prefix (this is what lets the paper's
  // client discover <img> tags in the first TCP segment).
  std::string html;
  for (int i = 0; i < 1000; ++i) {
    html += "<tr><td><img src=\"/img/i" + std::to_string(i % 40) +
            ".gif\"></td></tr>\n";
  }
  const auto input = bytes_of(html);
  const auto compressed = zlib_compress(input, DeflateOptions{6});
  Inflater inf;
  std::vector<std::uint8_t> out;
  inf.feed(std::span(compressed.data(), compressed.size() / 2), out);
  EXPECT_EQ(inf.status(), Inflater::Status::kInProgress);
  // The back half of repetitive HTML compresses better than the front, so
  // half the compressed bytes yield somewhat less than half the output — but
  // a streaming inflater must still have produced a substantial prefix.
  EXPECT_GT(out.size(), input.size() / 10);
  // Prefix property: what we have must match the original.
  EXPECT_TRUE(std::equal(out.begin(), out.end(), input.begin()));
}

TEST(InflateTest, RejectsCorruptHeader) {
  std::vector<std::uint8_t> garbage = {0x12, 0x34, 0x56};
  std::vector<std::uint8_t> out;
  Inflater inf;
  EXPECT_EQ(inf.feed(garbage, out), Inflater::Status::kError);
}

TEST(InflateTest, RejectsCorruptAdler) {
  const auto input = bytes_of("checksummed payload");
  auto compressed = zlib_compress(input, DeflateOptions{6});
  compressed.back() ^= 0xFF;
  InflateResult r = zlib_decompress(compressed);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("Adler"), std::string::npos);
}

TEST(InflateTest, RejectsTruncatedStream) {
  const auto input = bytes_of("this stream will be cut short");
  auto compressed = zlib_compress(input, DeflateOptions{6});
  compressed.resize(compressed.size() - 5);
  InflateResult r = zlib_decompress(compressed);
  EXPECT_FALSE(r.ok);
}

TEST(InflateTest, RejectsCorruptPayloadBits) {
  std::string s;
  for (int i = 0; i < 100; ++i) s += "abcdefgh" + std::to_string(i);
  const auto input = bytes_of(s);
  auto compressed = zlib_compress(input, DeflateOptions{6});
  // Flip bits in the middle of the deflate payload; either a decode error or
  // an Adler mismatch must result — never a silent wrong answer.
  compressed[compressed.size() / 2] ^= 0x5A;
  InflateResult r = zlib_decompress(compressed);
  EXPECT_FALSE(r.ok);
}

TEST(InflateTest, RawFormatSkipsZlibFraming) {
  const auto input = bytes_of("raw deflate body");
  const auto raw = deflate_compress(input, DeflateOptions{6});
  Inflater inf(Inflater::Format::kRaw);
  std::vector<std::uint8_t> out;
  EXPECT_EQ(inf.feed(raw, out), Inflater::Status::kDone);
  EXPECT_EQ(out, input);
}

// Robustness fuzz: arbitrary bytes fed to the inflater must never crash,
// hang, or claim success — only clean error/need-more outcomes.
class InflateFuzz : public ::testing::TestWithParam<int> {};

TEST_P(InflateFuzz, RandomGarbageNeverCrashes) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  std::vector<std::uint8_t> junk(
      static_cast<std::size_t>(rng.uniform(1, 5000)));
  for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u32());
  Inflater inf;
  std::vector<std::uint8_t> out;
  const auto status = inf.feed(junk, out);
  EXPECT_NE(status, Inflater::Status::kDone);  // garbage is never a stream
}

TEST_P(InflateFuzz, MutatedValidStreamsFailCleanly) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 9);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "segment " + std::to_string(rng.uniform(0, 50)) + " ";
  }
  auto stream = zlib_compress(bytes_of(text));
  // Random byte mutations anywhere in the stream.
  const int mutations = static_cast<int>(rng.uniform(1, 6));
  for (int i = 0; i < mutations; ++i) {
    stream[static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(stream.size()) - 1))] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(0, 254));
  }
  Inflater inf;
  std::vector<std::uint8_t> out;
  const auto status = inf.feed(stream, out);
  // Either detected as corrupt, or (if mutations cancelled out /hit padding)
  // decoded to the exact original — never a silent wrong answer.
  if (status == Inflater::Status::kDone) {
    EXPECT_EQ(std::string(out.begin(), out.end()), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, InflateFuzz, ::testing::Range(0, 25));

TEST(DictionaryTest, RoundtripWithPresetDictionary) {
  const auto dict = html_preset_dictionary();
  const auto input = bytes_of(
      "<table border=\"0\" cellspacing=\"0\" cellpadding=\"0\" "
      "width=\"600\"><tr><td align=\"left\" valign=\"top\">hello</td></tr>");
  const auto compressed = zlib_compress_with_dictionary(input, dict);
  Inflater inf;
  inf.set_dictionary(dict);
  std::vector<std::uint8_t> out;
  ASSERT_EQ(inf.feed(compressed, out), Inflater::Status::kDone)
      << inf.error();
  EXPECT_EQ(out, input);
}

TEST(DictionaryTest, DictionaryShrinksSmallHtml) {
  // The paper's future-work idea: HTML-optimized dictionaries pay off most
  // on small documents, where deflate has no history to draw on.
  const auto dict = html_preset_dictionary();
  const auto input = bytes_of(
      "<html><head><title>t</title></head><body bgcolor=\"#FFFFFF\">"
      "<table border=\"0\" cellspacing=\"0\" cellpadding=\"0\" "
      "width=\"600\"><tr><td align=\"left\" valign=\"top\">"
      "<font face=\"Arial, Helvetica\" size=\"2\">x</font></td></tr>"
      "</table></body></html>");
  const auto plain = zlib_compress(input);
  const auto with_dict = zlib_compress_with_dictionary(input, dict);
  // The dictionary stream carries 4 extra DICTID bytes yet still wins big.
  EXPECT_LT(with_dict.size() + 20, plain.size());
}

TEST(DictionaryTest, MissingDictionaryIsAnError) {
  const auto dict = html_preset_dictionary();
  const auto input = bytes_of("<p>needs the dictionary</p>");
  const auto compressed = zlib_compress_with_dictionary(input, dict);
  Inflater inf;  // no set_dictionary
  std::vector<std::uint8_t> out;
  EXPECT_EQ(inf.feed(compressed, out), Inflater::Status::kError);
  EXPECT_NE(inf.error().find("dictionary"), std::string::npos);
}

TEST(DictionaryTest, WrongDictionaryIdRejected) {
  const auto dict = html_preset_dictionary();
  const auto input = bytes_of("<p>dict</p>");
  const auto compressed = zlib_compress_with_dictionary(input, dict);
  Inflater inf;
  const auto wrong = bytes_of("a completely different dictionary");
  inf.set_dictionary(wrong);
  std::vector<std::uint8_t> out;
  EXPECT_EQ(inf.feed(compressed, out), Inflater::Status::kError);
}

TEST(DictionaryTest, EmptyInputWithDictionary) {
  const auto dict = html_preset_dictionary();
  const auto compressed = zlib_compress_with_dictionary({}, dict);
  Inflater inf;
  inf.set_dictionary(dict);
  std::vector<std::uint8_t> out;
  ASSERT_EQ(inf.feed(compressed, out), Inflater::Status::kDone)
      << inf.error();
  EXPECT_TRUE(out.empty());
}

TEST(DictionaryTest, LargeDictionaryTruncatedToWindow) {
  std::vector<std::uint8_t> big_dict(50'000);
  sim::Rng rng(4);
  for (auto& b : big_dict) {
    b = static_cast<std::uint8_t>('a' + rng.uniform(0, 3));
  }
  const auto input = std::vector<std::uint8_t>(big_dict.end() - 500,
                                               big_dict.end());
  const auto compressed = zlib_compress_with_dictionary(input, big_dict);
  Inflater inf;
  inf.set_dictionary(big_dict);
  std::vector<std::uint8_t> out;
  ASSERT_EQ(inf.feed(compressed, out), Inflater::Status::kDone)
      << inf.error();
  EXPECT_EQ(out, input);
}

// Property-style sweep: random structured inputs roundtrip at every level.
class DeflateRoundtripProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeflateRoundtripProperty, Roundtrips) {
  const auto [level, seed] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  std::vector<std::uint8_t> input;
  const int sections = static_cast<int>(rng.uniform(1, 12));
  for (int s = 0; s < sections; ++s) {
    switch (rng.uniform(0, 3)) {
      case 0: {  // repeated run
        const auto byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
        input.insert(input.end(), rng.uniform(1, 3000), byte);
        break;
      }
      case 1: {  // random bytes
        const auto n = rng.uniform(1, 2000);
        for (int i = 0; i < n; ++i) {
          input.push_back(static_cast<std::uint8_t>(rng.next_u32()));
        }
        break;
      }
      case 2: {  // text-like
        const auto n = rng.uniform(1, 400);
        for (int i = 0; i < n; ++i) {
          input.push_back(static_cast<std::uint8_t>('a' + rng.uniform(0, 25)));
        }
        break;
      }
      default: {  // short period pattern (overlapping matches)
        const auto period = rng.uniform(1, 7);
        const auto n = rng.uniform(10, 2000);
        for (int i = 0; i < n; ++i) {
          input.push_back(static_cast<std::uint8_t>('0' + (i % period)));
        }
        break;
      }
    }
  }
  const auto compressed = zlib_compress(input, DeflateOptions{level});
  InflateResult r = zlib_decompress(compressed);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.data, input);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeflateRoundtripProperty,
    ::testing::Combine(::testing::Values(0, 1, 4, 6, 9),
                       ::testing::Range(0, 12)));

}  // namespace
}  // namespace hsim::deflate
