// Client-side unit tests: header profiles, wire-level request inspection,
// cache behaviour, flush accounting, and browser emulation details.
#include <gtest/gtest.h>

#include "client/cache.hpp"
#include "client/profile.hpp"
#include "harness/experiment.hpp"
#include "http/parser.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

TEST(ProfileTest, RobotRequestsAreAboutPaperSize) {
  // "The result is an average request size of around 190 bytes."
  const client::HeaderProfile p = client::robot_profile();
  http::Request req;
  req.target = "/images/img00.gif";
  req.headers.add("Host", "www.microscape.test");
  req.headers.add("User-Agent", p.user_agent);
  for (const auto& [n, v] : p.extra_headers) req.headers.add(n, v);
  const std::size_t size = req.wire_size();
  EXPECT_GE(size, 160u);
  EXPECT_LE(size, 220u);
}

TEST(ProfileTest, BrowserHeadersAreVerbose) {
  const auto measure = [](const client::HeaderProfile& p) {
    http::Request req;
    req.target = "/images/img00.gif";
    req.headers.add("Host", "www.microscape.test");
    req.headers.add("User-Agent", p.user_agent);
    for (const auto& [n, v] : p.extra_headers) req.headers.add(n, v);
    return req.wire_size();
  };
  const std::size_t robot = measure(client::robot_profile());
  const std::size_t netscape = measure(client::netscape_profile());
  const std::size_t msie = measure(client::msie_profile());
  EXPECT_GT(netscape, robot);
  EXPECT_GT(msie, netscape);  // the paper's MSIE sent the most header bytes
}

TEST(CacheTest, StoreFindClear) {
  client::Cache cache;
  EXPECT_EQ(cache.find("/a"), nullptr);
  client::CacheEntry e;
  e.etag = "\"x\"";
  e.body.append(buf::Bytes(std::vector<std::uint8_t>{1, 2, 3}));
  cache.store("/a", e);
  ASSERT_NE(cache.find("/a"), nullptr);
  EXPECT_EQ(cache.find("/a")->etag, "\"x\"");
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CacheTest, PathsSorted) {
  client::Cache cache;
  cache.store("/b", {});
  cache.store("/a", {});
  cache.store("/c", {});
  const auto paths = cache.paths();
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
}

// Wire-level inspection: capture actual requests the robot emits.
struct WireRig {
  WireRig(client::ClientConfig config)
      : rng(3),
        channel(queue,
                net::ChannelConfig::symmetric(0, sim::milliseconds(5)),
                rng.fork()),
        client_host(queue, 1, "c", rng.fork()),
        server_host(queue, 2, "s", rng.fork()),
        server(server_host,
               server::StaticSite::from_microscape(harness::shared_site()),
               server::apache_config(), rng.fork()),
        robot(client_host, 2, 80, std::move(config)) {
    channel.attach_a(&client_host);
    channel.attach_b(&server_host);
    client_host.attach_uplink(&channel.uplink_from_a());
    server_host.attach_uplink(&channel.uplink_from_b());
    channel.uplink_from_a().set_tap([this](const net::Packet& p) {
      request_bytes.insert(request_bytes.end(), p.payload.begin(),
                           p.payload.end());
    });
    server.start(80);
  }

  std::vector<http::Request> captured_requests() {
    http::RequestParser parser;
    parser.feed({request_bytes.data(), request_bytes.size()});
    std::vector<http::Request> out;
    while (auto r = parser.next()) out.push_back(std::move(*r));
    return out;
  }

  sim::EventQueue queue;
  sim::Rng rng;
  net::Channel channel;
  tcp::Host client_host;
  tcp::Host server_host;
  server::HttpServer server;
  client::Robot robot;
  std::vector<std::uint8_t> request_bytes;
};

TEST(RobotWireTest, FirstVisitSends43GetsInDocumentOrder) {
  WireRig rig(harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  rig.robot.start_first_visit("/index.html", [&] { done = true; });
  rig.queue.run_until(sim::seconds(120));
  ASSERT_TRUE(done);
  const auto requests = rig.captured_requests();
  ASSERT_EQ(requests.size(), 43u);
  EXPECT_EQ(requests[0].target, "/index.html");
  const auto refs =
      content::scan_image_references(harness::shared_site().html);
  for (std::size_t i = 1; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].target, refs[i - 1]);
    EXPECT_EQ(requests[i].method, http::Method::kGet);
    EXPECT_EQ(requests[i].version, http::Version::kHttp11);
  }
}

TEST(RobotWireTest, CompressedModeAdvertisesDeflate) {
  WireRig rig(harness::robot_config(
      client::ProtocolMode::kHttp11PipelinedCompressed));
  bool done = false;
  rig.robot.start_first_visit("/index.html", [&] { done = true; });
  rig.queue.run_until(sim::seconds(120));
  ASSERT_TRUE(done);
  for (const auto& req : rig.captured_requests()) {
    EXPECT_TRUE(req.headers.has_token("Accept-Encoding", "deflate"))
        << req.target;
  }
}

TEST(RobotWireTest, RevalidationSendsIfNoneMatchWithStoredEtag) {
  WireRig rig(harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  rig.robot.start_first_visit("/index.html", [&] { done = true; });
  rig.queue.run_until(sim::seconds(120));
  ASSERT_TRUE(done);
  rig.request_bytes.clear();
  done = false;
  rig.robot.start_revalidation("/index.html", [&] { done = true; });
  rig.queue.run_until(rig.queue.now() + sim::seconds(120));
  ASSERT_TRUE(done);
  const auto requests = rig.captured_requests();
  ASSERT_EQ(requests.size(), 43u);
  for (const auto& req : requests) {
    const auto inm = req.headers.get("If-None-Match");
    ASSERT_TRUE(inm.has_value()) << req.target;
    const client::CacheEntry* entry = rig.robot.cache().find(req.target);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(*inm, entry->etag);
  }
}

TEST(RobotWireTest, DateBasedRevalidationUsesIfModifiedSince) {
  client::ClientConfig config = harness::netscape_client_config();
  WireRig rig(config);
  bool done = false;
  rig.robot.start_first_visit("/index.html", [&] { done = true; });
  rig.queue.run_until(sim::seconds(120));
  ASSERT_TRUE(done);
  rig.request_bytes.clear();
  done = false;
  rig.robot.start_revalidation("/index.html", [&] { done = true; });
  rig.queue.run_until(rig.queue.now() + sim::seconds(120));
  ASSERT_TRUE(done);
  for (const auto& req : rig.captured_requests()) {
    EXPECT_FALSE(req.headers.contains("If-None-Match"));
    EXPECT_TRUE(req.headers.contains("If-Modified-Since")) << req.target;
    EXPECT_EQ(req.version, http::Version::kHttp10);
    EXPECT_TRUE(req.headers.has_token("Connection", "keep-alive"));
  }
}

TEST(RobotWireTest, Http10HeadRevalidationProfile) {
  WireRig rig(harness::robot_config(client::ProtocolMode::kHttp10Parallel));
  bool done = false;
  rig.robot.start_first_visit("/index.html", [&] { done = true; });
  rig.queue.run_until(sim::seconds(120));
  ASSERT_TRUE(done);
  rig.request_bytes.clear();
  done = false;
  rig.robot.start_revalidation("/index.html", [&] { done = true; });
  rig.queue.run_until(rig.queue.now() + sim::seconds(120));
  ASSERT_TRUE(done);
  const auto requests = rig.captured_requests();
  ASSERT_EQ(requests.size(), 43u);
  std::size_t heads = 0, gets = 0;
  for (const auto& req : requests) {
    if (req.method == http::Method::kHead) ++heads;
    if (req.method == http::Method::kGet) ++gets;
  }
  // "one GET (HTML) and 42 HEAD requests (images)"
  EXPECT_EQ(gets, 1u);
  EXPECT_EQ(heads, 42u);
}

TEST(RobotWireTest, FlushAccountingMatchesMechanisms) {
  WireRig rig(harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  rig.robot.start_first_visit("/index.html", [&] { done = true; });
  rig.queue.run_until(sim::seconds(120));
  ASSERT_TRUE(done);
  const client::RobotStats& s = rig.robot.stats();
  EXPECT_GE(s.explicit_flushes, 1u);  // after the HTML request + tail
  EXPECT_GE(s.size_flushes, 3u);      // 42 requests / ~5 per 1024 B buffer
}

}  // namespace
}  // namespace hsim
