// Trace-driven time-varying link profiles (src/netem).
//
// Covers the subsystem's load-bearing invariants:
//   - the constant-rate fast path reproduces the legacy static-link
//     serialisation arithmetic bit for bit (the flat-identity oracle — also
//     checked end-to-end against the golden Table 4/6 scenarios);
//   - the segment-boundary walk conserves bytes: a transmission straddling a
//     rate change takes exactly the time the piecewise integral says;
//   - the radio machine charges the promotion delay exactly once per idle
//     period, and queued packets ride the same promotion;
//   - trace files round-trip (parse(render(p)) == p), the checked-in
//     profiles/*.netem are byte-pinned to the seeded generators, and
//     malformed input is rejected with line-numbered errors;
//   - min_remote_latency stays a valid lower bound under a profile (the
//     sharded engine's lookahead rule), and thread count does not change
//     results;
//   - the modern content axis shrinks the page deterministically and renames
//     every image reference.
#include "netem/profile.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "content/microscape.hpp"
#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "harness/workload.hpp"
#include "net/channel.hpp"
#include "net/link.hpp"
#include "net/trace_io.hpp"
#include "sim/event_queue.hpp"

#ifndef HSIM_PROFILE_DIR
#error "HSIM_PROFILE_DIR must point at the checked-in profiles/ directory"
#endif

namespace hsim {
namespace {

// ---- Profile timeline ------------------------------------------------------

TEST(NetemProfile, ConstantRateMatchesLegacyArithmetic) {
  // The flat path must be the same double-divide the static link does, not
  // an integer reformulation that rounds differently.
  for (const std::int64_t rate : {28'800LL, 1'000'000LL, 10'000'000LL}) {
    const netem::Profile p = netem::Profile::constant(rate);
    ASSERT_TRUE(p.constant_rate());
    for (const std::size_t bytes : {41u, 576u, 1500u, 65535u}) {
      const sim::Time legacy = sim::from_seconds(
          static_cast<double>(bytes) * 8.0 / static_cast<double>(rate));
      // Time-invariant: the identity profile has no timeline to consult.
      EXPECT_EQ(p.transmit_duration(0, bytes), legacy);
      EXPECT_EQ(p.transmit_duration(sim::seconds(12345), bytes), legacy);
    }
  }
}

TEST(NetemProfile, ZeroRateMeansNoSerialisationDelay) {
  const netem::Profile p = netem::Profile::constant(0);
  EXPECT_EQ(p.transmit_duration(0, 100'000), 0);
}

TEST(NetemProfile, BoundaryWalkConservesBytes) {
  // 8 kbit/s for the first second, 16 kbit/s after. A 1000-wire-byte packet
  // (8000 bits) started at t=0.5s clocks 4000 bits in the slow half-second
  // and the remaining 4000 bits at double rate: exactly 0.75 s.
  const netem::Profile p(
      {{0, 8'000, 0}, {sim::seconds(1), 16'000, 0}});
  EXPECT_EQ(p.transmit_duration(sim::from_seconds(0.5), 1000),
            sim::from_seconds(0.75));
  // Fully inside the second segment: plain rate arithmetic.
  EXPECT_EQ(p.transmit_duration(sim::seconds(2), 1000),
            sim::from_seconds(0.5));
  // Straddling two boundaries of a looping timeline: 1s at 8k (8000 bits),
  // 1s at 16k (16000 bits), then 8000/8000 = 1s into the next loop of the
  // slow segment -> 24000 + 8000 = 32000 bits in exactly 3 s.
  const netem::Profile loop(
      {{0, 8'000, 0}, {sim::seconds(1), 16'000, 0}}, sim::seconds(2));
  EXPECT_EQ(loop.transmit_duration(0, 4000), sim::seconds(3));
}

TEST(NetemProfile, LoopingTimelineWraps) {
  const netem::Profile p({{0, 1'000, sim::milliseconds(5)},
                          {sim::seconds(1), 2'000, sim::milliseconds(9)}},
                         sim::seconds(2));
  EXPECT_EQ(p.bandwidth_at(sim::from_seconds(0.5)), 1'000);
  EXPECT_EQ(p.bandwidth_at(sim::from_seconds(1.5)), 2'000);
  EXPECT_EQ(p.bandwidth_at(sim::from_seconds(2.5)), 1'000);  // wrapped
  EXPECT_EQ(p.extra_latency_at(sim::from_seconds(3.5)), sim::milliseconds(9));
  EXPECT_EQ(p.min_extra_latency(), sim::milliseconds(5));
}

TEST(NetemProfile, ConstructorRejectsMalformedTimelines) {
  using netem::Profile;
  using netem::Segment;
  EXPECT_THROW(Profile(std::vector<Segment>{}), std::invalid_argument);
  // First segment must start at the epoch.
  EXPECT_THROW(Profile({{sim::seconds(1), 1000, 0}}), std::invalid_argument);
  // Strictly increasing starts.
  EXPECT_THROW(Profile({{0, 1000, 0}, {0, 2000, 0}}), std::invalid_argument);
  // Negative extra latency breaks the lookahead lower bound.
  EXPECT_THROW(Profile({{0, 1000, -1}}), std::invalid_argument);
  // Rate 0 (infinite) is only meaningful for the single-segment identity.
  EXPECT_THROW(Profile({{0, 0, 0}, {sim::seconds(1), 1000, 0}}),
               std::invalid_argument);
  // The loop period must extend past the last segment start.
  EXPECT_THROW(Profile({{0, 1000, 0}, {sim::seconds(2), 2000, 0}},
                       sim::seconds(2)),
               std::invalid_argument);
}

// ---- Radio state machine (net::Link integration) ---------------------------

class CollectingSink : public net::PacketSink {
 public:
  explicit CollectingSink(sim::EventQueue& q) : queue_(q) {}
  void deliver(net::Packet packet) override {
    arrivals.emplace_back(queue_.now(), std::move(packet));
  }
  std::vector<std::pair<sim::Time, net::Packet>> arrivals;

 private:
  sim::EventQueue& queue_;
};

net::Packet make_packet(std::size_t payload_bytes) {
  net::Packet p;
  p.payload = buf::Bytes(payload_bytes, 0xAB);
  return p;
}

TEST(NetemRadio, PromotionChargedOncePerIdlePeriod) {
  sim::EventQueue q;
  CollectingSink sink(q);
  net::LinkConfig cfg;
  cfg.bandwidth_bps = 0;  // serialisation comes from the profile
  cfg.propagation_delay = 0;
  cfg.delay_jitter = 0.0;
  auto dyn = std::make_shared<netem::LinkDynamics>();
  dyn->profile = netem::Profile::constant(8'000);  // 1000 wire B = 1 s
  dyn->radio = {true, sim::milliseconds(100), sim::seconds(1)};
  cfg.dynamics = dyn;
  net::Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);

  // Two back-to-back packets from a cold radio: the first pays the 100 ms
  // promotion, the second is queued behind it and rides the same promotion.
  link.transmit(make_packet(960));
  link.transmit(make_packet(960));
  // The second transmission ends at 2.1 s and the radio holds ACTIVE for
  // the 1 s inactivity timeout (until 3.1 s). A packet at 3.05 s is still
  // warm; one at 6 s finds the radio idle again and pays a second promotion.
  q.schedule_at(sim::from_seconds(3.05),
                [&] { link.transmit(make_packet(960)); });
  q.schedule_at(sim::seconds(6), [&] { link.transmit(make_packet(960)); });
  q.run();

  ASSERT_EQ(sink.arrivals.size(), 4u);
  EXPECT_EQ(sink.arrivals[0].first, sim::from_seconds(1.1));
  EXPECT_EQ(sink.arrivals[1].first, sim::from_seconds(2.1));  // no 2nd charge
  EXPECT_EQ(sink.arrivals[2].first, sim::from_seconds(4.05));  // warm radio
  EXPECT_EQ(sink.arrivals[3].first, sim::from_seconds(7.1));   // idle again
  EXPECT_EQ(link.stats().radio_wakeups, 2u);
}

TEST(NetemRadio, ProfileExtraLatencyAddsToPropagation) {
  sim::EventQueue q;
  CollectingSink sink(q);
  net::LinkConfig cfg;
  cfg.propagation_delay = sim::milliseconds(10);
  cfg.delay_jitter = 0.0;
  auto dyn = std::make_shared<netem::LinkDynamics>();
  dyn->profile = netem::Profile(
      {{0, 8'000, sim::milliseconds(40)}, {sim::seconds(10), 8'000, 0}},
      sim::seconds(20));
  cfg.dynamics = dyn;
  net::Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  link.transmit(make_packet(960));  // 1 s serialisation
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first,
            sim::seconds(1) + sim::milliseconds(50));
}

// ---- Lookahead rule --------------------------------------------------------

TEST(NetemLookahead, MinRemoteLatencyAddsProfileFloor) {
  net::LinkConfig cfg;
  cfg.propagation_delay = sim::milliseconds(10);
  cfg.delay_jitter = 0.1;
  const sim::Time base = net::config_min_latency(cfg);
  EXPECT_EQ(base, sim::milliseconds(9));  // 10 ms shrunk by the jitter bound

  auto dyn = std::make_shared<netem::LinkDynamics>();
  dyn->profile = netem::Profile({{0, 1'000, sim::milliseconds(5)},
                                 {sim::seconds(1), 2'000,
                                  sim::milliseconds(9)}},
                                sim::seconds(2));
  cfg.dynamics = dyn;
  // The profile may only ADD latency, so the bound tightens by the timeline
  // minimum — never loosens. Serialisation and radio wakeup push delivery
  // later still, keeping the bound safe.
  EXPECT_EQ(net::config_min_latency(cfg), base + sim::milliseconds(5));

  sim::EventQueue q;
  net::Link link(q, cfg, sim::Rng(1));
  EXPECT_EQ(link.min_remote_latency(), base + sim::milliseconds(5));
}

// ---- Trace file format -----------------------------------------------------

TEST(NetemTraceFormat, NamedProfilesRoundTrip) {
  for (const std::string& name : netem::named_profile_names()) {
    const auto built = netem::named_profile(name);
    ASSERT_TRUE(built.has_value()) << name;
    const std::string text = netem::profile_to_text(*built);
    netem::PathProfile parsed;
    std::string error;
    ASSERT_TRUE(netem::parse_profile(text, &parsed, &error))
        << name << ": " << error;
    EXPECT_EQ(parsed, *built) << name;
  }
}

TEST(NetemTraceFormat, CheckedInFilesArePinnedToGenerators) {
  // profiles/<name>.netem is the canonical rendering of the seeded
  // generator — byte for byte. Regenerate after an intentional change with:
  //   build/tools/hsim-trace profiles <name> > profiles/<name>.netem
  for (const std::string& name : netem::named_profile_names()) {
    const std::string path =
        std::string(HSIM_PROFILE_DIR) + "/" + name + ".netem";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), netem::profile_to_text(*netem::named_profile(name)))
        << path << " diverged from its generator (regenerate with "
        << "hsim-trace profiles " << name << ")";
  }
}

TEST(NetemTraceFormat, AsymmetricUpLineSurvivesRoundTrip) {
  netem::PathProfile p;
  p.name = "asym";
  p.down = netem::Profile({{0, 8'000'000, sim::milliseconds(20)}});
  p.up = netem::Profile({{0, 1'000'000, sim::milliseconds(30)}});
  p.radio = {true, sim::milliseconds(250), sim::seconds(5)};
  p.queue_limit_packets = 300;
  netem::PathProfile parsed;
  std::string error;
  ASSERT_TRUE(netem::parse_profile(netem::profile_to_text(p), &parsed, &error))
      << error;
  EXPECT_EQ(parsed, p);
}

TEST(NetemTraceFormat, MalformedInputsAreRejectedWithLineNumbers) {
  const struct {
    const char* label;
    const char* text;
  } kBad[] = {
      {"empty", ""},
      {"no segments", "profile p\n"},
      {"missing profile line", "down 0 1000 0\n"},
      {"first start nonzero", "profile p\ndown 5 1000 0\n"},
      {"non-increasing starts", "profile p\ndown 0 1000 0\ndown 0 2000 0\n"},
      {"zero rate", "profile p\ndown 0 0 0\ndown 1 1000 0\n"},
      {"negative extra", "profile p\ndown 0 1000 -3\n"},
      {"loop before last start",
       "profile p\nloop 1\ndown 0 1000 0\ndown 5 1000 0\n"},
      {"unknown directive", "profile p\nbogus 1\ndown 0 1000 0\n"},
      {"garbage field", "profile p\ndown 0 fast 0\n"},
  };
  for (const auto& bad : kBad) {
    netem::PathProfile out;
    std::string error;
    EXPECT_FALSE(netem::parse_profile(bad.text, &out, &error)) << bad.label;
    EXPECT_FALSE(error.empty()) << bad.label;
    if (bad.text[0] != '\0') {
      EXPECT_NE(error.find("line"), std::string::npos)
          << bad.label << ": " << error;
    }
  }
}

// ---- Harness overlay -------------------------------------------------------

TEST(NetemOverlay, AsymmetryRadioQueueAndLabels) {
  netem::PathProfile p;
  p.down = netem::Profile({{0, 8'000'000, 0}});
  p.up = netem::Profile({{0, 1'000'000, 0}});
  p.radio = {true, sim::milliseconds(250), sim::seconds(5)};
  p.queue_limit_packets = 300;

  net::ChannelConfig cfg = harness::mobile_profile().channel_config();
  net::apply_path_profile(p, cfg, "access");
  ASSERT_NE(cfg.a_to_b.dynamics, nullptr);
  ASSERT_NE(cfg.b_to_a.dynamics, nullptr);
  EXPECT_EQ(cfg.a_to_b.dynamics->profile, p.up);    // A = client: uplink
  EXPECT_EQ(cfg.b_to_a.dynamics->profile, p.down);
  EXPECT_TRUE(cfg.a_to_b.dynamics->radio.enabled);  // radio on device side
  EXPECT_FALSE(cfg.b_to_a.dynamics->radio.enabled);
  EXPECT_EQ(cfg.a_to_b.queue_limit_packets, 300u);  // bufferbloat override
  EXPECT_EQ(cfg.b_to_a.queue_limit_packets, 300u);
  EXPECT_EQ(cfg.a_to_b.label, "access.up");
  EXPECT_EQ(cfg.b_to_a.label, "access.down");
}

TEST(NetemOverlay, EnvironmentVariableFallbackAndPrecedence) {
  ASSERT_EQ(setenv("HSIM_PROFILE", "3g-drive", 1), 0);
  net::ChannelConfig from_env = harness::mobile_profile().channel_config();
  harness::apply_profile_overlay("", from_env);
  ASSERT_NE(from_env.a_to_b.dynamics, nullptr);
  EXPECT_TRUE(from_env.a_to_b.dynamics->radio.enabled);
  EXPECT_EQ(from_env.a_to_b.queue_limit_packets, 256u);  // 3g-drive's queue

  // An explicit value always wins over the environment.
  net::ChannelConfig flat = harness::mobile_profile().channel_config();
  harness::apply_profile_overlay("flat", flat);
  ASSERT_NE(flat.a_to_b.dynamics, nullptr);
  EXPECT_TRUE(flat.a_to_b.dynamics->profile.constant_rate());
  EXPECT_EQ(flat.a_to_b.dynamics->profile.bandwidth_at(0),
            flat.a_to_b.bandwidth_bps);
  unsetenv("HSIM_PROFILE");
}

TEST(NetemOverlay, UnknownProfileNameThrows) {
  net::ChannelConfig cfg = harness::lan_profile().channel_config();
  EXPECT_THROW(harness::apply_profile_overlay("no-such-profile", cfg),
               std::invalid_argument);
}

// ---- Flat identity oracle --------------------------------------------------

TEST(NetemIdentity, FlatProfileIsByteIdenticalToStaticLink) {
  // The strongest form: the per-packet trace, not just the summary. Any
  // extra rng draw, any reformulated serialisation arithmetic, any metric
  // side effect that perturbs event ordering shows up here.
  for (const bool h2 : {false, true}) {
    harness::ExperimentSpec spec =
        h2 ? harness::golden_table4_h2_spec() : harness::golden_table4_spec();
    spec.profile.clear();
    const auto baseline = harness::capture_trace(spec, harness::shared_site());
    spec.profile = "flat";
    const auto flat = harness::capture_trace(spec, harness::shared_site());
    const net::TraceDiff diff = net::diff_traces(baseline, flat);
    EXPECT_TRUE(diff.identical)
        << (h2 ? "table4h2" : "table4") << ": " << diff.differing
        << " records diverged under --profile flat\n"
        << diff.report;
  }
}

TEST(NetemIdentity, FlatProfileReproducesTable6Numbers) {
  harness::ExperimentSpec spec = harness::golden_table6_spec();
  spec.profile.clear();
  const harness::RunResult base = harness::run_once(spec, harness::shared_site());
  spec.profile = "flat";
  const harness::RunResult flat = harness::run_once(spec, harness::shared_site());
  EXPECT_EQ(base.packets(), flat.packets());
  EXPECT_EQ(base.bytes(), flat.bytes());
  EXPECT_EQ(base.seconds(), flat.seconds());  // exact double equality
  EXPECT_EQ(base.overhead_percent(), flat.overhead_percent());
}

// ---- Determinism -----------------------------------------------------------

harness::WorkloadConfig small_mobile_fleet() {
  harness::WorkloadConfig cfg;
  cfg.num_clients = 16;
  cfg.topology = harness::TopologyKind::kStar;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(20);
  cfg.access = harness::mobile_profile();
  cfg.profile = "3g-drive";
  cfg.master_seed = 11;
  cfg.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  return cfg;
}

TEST(NetemDeterminism, SameSeedSameResults) {
  const harness::WorkloadResult a =
      harness::run_workload(small_mobile_fleet(), harness::shared_site());
  const harness::WorkloadResult b =
      harness::run_workload(small_mobile_fleet(), harness::shared_site());
  EXPECT_EQ(a.metrics.dump_text(), b.metrics.dump_text());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(a.metrics.counter("netem.radio_wakeups"), 0u);
}

TEST(NetemDeterminism, ThreadCountDoesNotChangeResults) {
  // The profile lookup is time-indexed, so the sharded engine's lookahead
  // must stay a valid lower bound (min_extra_latency tightening) for the
  // two-shard run to replay the classic event order exactly. Counters and
  // non-sample gauges must match the classic driver; the client.* sample
  // gauges legitimately merge differently across shards (DESIGN.md §14).
  const auto additive = [](const std::map<std::string, std::int64_t>& gauges) {
    std::map<std::string, std::int64_t> out;
    for (const auto& [name, value] : gauges) {
      if (name.rfind("client.", 0) != 0) out.emplace(name, value);
    }
    return out;
  };
  harness::WorkloadConfig cfg = small_mobile_fleet();
  const harness::WorkloadResult classic =
      harness::run_workload(cfg, harness::shared_site());
  for (const unsigned threads : {2u, 4u}) {
    cfg.threads = threads;
    const harness::WorkloadResult sharded =
        harness::run_workload(cfg, harness::shared_site());
    EXPECT_EQ(classic.metrics.counters, sharded.metrics.counters)
        << "threads=" << threads;
    EXPECT_EQ(additive(classic.metrics.gauges),
              additive(sharded.metrics.gauges))
        << "threads=" << threads;
  }
}

TEST(NetemDeterminism, DifferentSeedsDiverge) {
  harness::WorkloadConfig cfg = small_mobile_fleet();
  const harness::WorkloadResult a =
      harness::run_workload(cfg, harness::shared_site());
  cfg.master_seed = 12;
  const harness::WorkloadResult b =
      harness::run_workload(cfg, harness::shared_site());
  EXPECT_NE(a.metrics.dump_text(), b.metrics.dump_text());
}

// ---- Modern content axis ---------------------------------------------------

TEST(NetemContent, ModernSiteIsSmallerAndRenamed) {
  const content::MicroscapeSite& paper = harness::shared_site();
  const content::MicroscapeSite& webp = harness::shared_modern_site();
  ASSERT_EQ(webp.images.size(), paper.images.size());
  EXPECT_LT(webp.total_image_bytes(), paper.total_image_bytes());
  EXPECT_EQ(webp.html.find(".gif"), std::string::npos);
  for (std::size_t i = 0; i < webp.images.size(); ++i) {
    const std::string& path = webp.images[i].path;
    EXPECT_NE(path.find(".webp"), std::string::npos) << path;
    EXPECT_NE(webp.html.find(path), std::string::npos)
        << path << " not referenced by the modern HTML";
    EXPECT_LT(webp.images[i].gif_bytes.size(),
              paper.images[i].gif_bytes.size())
        << path;
  }
  // AVIF-class encodes smaller still.
  const content::MicroscapeSite& avif =
      harness::shared_modern_site(content::ModernCodec::kAvif);
  EXPECT_LT(avif.total_image_bytes(), webp.total_image_bytes());
}

TEST(NetemContent, ModernizeIsDeterministic) {
  const content::MicroscapeSite a =
      content::modernize_site(harness::shared_site());
  const content::MicroscapeSite b =
      content::modernize_site(harness::shared_site());
  ASSERT_EQ(a.images.size(), b.images.size());
  EXPECT_EQ(a.html, b.html);
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_EQ(a.images[i].gif_bytes, b.images[i].gif_bytes) << i;
  }
}

}  // namespace
}  // namespace hsim
