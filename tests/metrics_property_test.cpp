// Property tests for the obs metrics layer.
//
//   1. Histogram quantile invariants: monotone in q, bounded by [min, max],
//      and within the documented 1/8 relative error of the exact quantile.
//   2. Merge laws: histogram / registry / TraceSummarizer shard merges are
//      associative and order-independent, and equal the unsharded result.
//   3. Determinism: two same-seed harness runs register identical metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "net/trace.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace hsim {
namespace {

using obs::Histogram;
using obs::Registry;

// ---- 1. Histogram quantile invariants -------------------------------------

std::vector<std::uint64_t> sample_set(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  std::vector<std::uint64_t> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mix of scales: exact small values, mid-range, and heavy tail.
    switch (rng.uniform(0, 3)) {
      case 0: xs.push_back(static_cast<std::uint64_t>(rng.uniform(0, 7))); break;
      case 1: xs.push_back(static_cast<std::uint64_t>(rng.uniform(8, 4096))); break;
      case 2: xs.push_back(static_cast<std::uint64_t>(rng.uniform(4097, 1 << 20))); break;
      default: xs.push_back(rng.next_u64() >> (rng.uniform(1, 40))); break;
    }
  }
  return xs;
}

std::uint64_t exact_quantile(std::vector<std::uint64_t> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
}

TEST(HistogramProperty, QuantilesMonotoneAndBounded) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<std::uint64_t> xs = sample_set(seed, 500);
    Histogram h;
    for (std::uint64_t x : xs) h.observe(x);

    const std::uint64_t lo = *std::min_element(xs.begin(), xs.end());
    const std::uint64_t hi = *std::max_element(xs.begin(), xs.end());
    EXPECT_EQ(h.min(), lo);
    EXPECT_EQ(h.max(), hi);
    EXPECT_EQ(h.count(), xs.size());

    std::uint64_t prev = 0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
      const std::uint64_t v = h.quantile(q);
      EXPECT_GE(v, prev) << "quantile not monotone at q=" << q << " seed=" << seed;
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
      prev = v;
    }
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
  }
}

TEST(HistogramProperty, QuantileWithinDocumentedError) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::vector<std::uint64_t> xs = sample_set(seed, 500);
    Histogram h;
    for (std::uint64_t x : xs) h.observe(x);
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
      const std::uint64_t exact = exact_quantile(xs, q);
      const std::uint64_t approx = h.quantile(q);
      // The histogram reports the upper edge of the exact sample's bucket:
      // never below the exact value, and at most one sub-bucket width above
      // (2^(msb-2), i.e. at most 1/4 of the value; +1 covers integer edges).
      EXPECT_GE(approx, exact) << "q=" << q << " seed=" << seed;
      EXPECT_LE(approx, exact + exact / 4 + 1) << "q=" << q << " seed=" << seed;
    }
  }
}

TEST(HistogramProperty, BucketEdgesConsistent) {
  for (std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{8},
        std::uint64_t{9}, std::uint64_t{1023}, std::uint64_t{1024},
        std::uint64_t{1025}, std::uint64_t{1} << 32, UINT64_MAX >> 1}) {
    const std::size_t b = Histogram::bucket_of(v);
    EXPECT_LT(b, Histogram::kBuckets);
    EXPECT_GE(Histogram::bucket_upper(b), v) << v;
    if (b > 0) {
      EXPECT_LT(Histogram::bucket_upper(b - 1), v) << v;
    }
  }
}

// ---- 2. Merge laws ---------------------------------------------------------

TEST(HistogramProperty, ShardMergeEqualsUnsharded) {
  const std::vector<std::uint64_t> xs = sample_set(42, 900);
  Histogram all, s0, s1, s2;
  Histogram* shards[3] = {&s0, &s1, &s2};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    all.observe(xs[i]);
    shards[i % 3]->observe(xs[i]);
  }
  // (s0 ⊕ s1) ⊕ s2 and s2 ⊕ (s1 ⊕ s0): both must equal the unsharded result.
  Histogram left;
  left.merge_from(s0);
  left.merge_from(s1);
  left.merge_from(s2);
  Histogram right;
  right.merge_from(s2);
  right.merge_from(s1);
  right.merge_from(s0);
  for (const Histogram* m : {&left, &right}) {
    EXPECT_EQ(m->count(), all.count());
    EXPECT_EQ(m->sum(), all.sum());
    EXPECT_EQ(m->min(), all.min());
    EXPECT_EQ(m->max(), all.max());
    for (double q : {0.5, 0.95, 0.99}) {
      EXPECT_EQ(m->quantile(q), all.quantile(q));
    }
  }
}

net::Packet make_packet(sim::Rng& rng, net::IpAddr server) {
  net::Packet p;
  const bool to_server = rng.uniform(0, 1) == 0;
  const auto client = static_cast<net::IpAddr>(rng.uniform(10, 20));
  p.src = to_server ? client : server;
  p.dst = to_server ? server : client;
  p.tcp.src_port = static_cast<net::Port>(rng.uniform(1024, 60000));
  p.tcp.dst_port = 80;
  p.tcp.flags = rng.uniform(0, 9) == 0
                    ? static_cast<std::uint8_t>(net::flag::kSyn)
                    : static_cast<std::uint8_t>(net::flag::kAck);
  p.payload =
      buf::Bytes(static_cast<std::size_t>(rng.uniform(0, 1460)), 'x');
  return p;
}

TEST(TraceSummarizerProperty, ShardMergeAssociativeAndExact) {
  constexpr net::IpAddr kServer = 1;
  sim::Rng rng(7);
  std::vector<net::Packet> packets;
  for (int i = 0; i < 600; ++i) packets.push_back(make_packet(rng, kServer));

  net::TraceSummarizer all(kServer);
  net::TraceSummarizer s0(kServer), s1(kServer), s2(kServer);
  net::TraceSummarizer* shards[3] = {&s0, &s1, &s2};
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const auto t = static_cast<sim::Time>(i) * 1000;
    all.record(t, packets[i]);
    shards[i % 3]->record(t, packets[i]);
  }

  const auto check = [&](const net::TraceSummarizer& merged) {
    const net::TraceSummary a = all.summarize();
    const net::TraceSummary m = merged.summarize();
    EXPECT_EQ(m.packets, a.packets);
    EXPECT_EQ(m.wire_bytes, a.wire_bytes);
    EXPECT_EQ(m.payload_bytes, a.payload_bytes);
    EXPECT_EQ(m.packets_client_to_server, a.packets_client_to_server);
    EXPECT_EQ(m.packets_server_to_client, a.packets_server_to_client);
    EXPECT_EQ(m.first_packet, a.first_packet);
    EXPECT_EQ(m.last_packet, a.last_packet);
    EXPECT_DOUBLE_EQ(m.overhead_percent, a.overhead_percent);
    EXPECT_EQ(merged.syn_packets(), all.syn_packets());
  };

  // (s0 ⊕ s1) ⊕ s2 — left fold.
  net::TraceSummarizer left(kServer);
  left.merge_from(s0);
  left.merge_from(s1);
  left.merge_from(s2);
  check(left);
  // s2 ⊕ (s1 ⊕ s0) — opposite order.
  net::TraceSummarizer inner(kServer);
  inner.merge_from(s1);
  inner.merge_from(s0);
  net::TraceSummarizer right(kServer);
  right.merge_from(s2);
  right.merge_from(inner);
  check(right);
}

TEST(RegistryProperty, MergeAssociativeAcrossShards) {
  // Three shard registries fed by TraceSummarizers over a partition of one
  // packet stream; merged in two different orders, both must match the
  // registry that saw everything.
  constexpr net::IpAddr kServer = 1;
  sim::Rng rng(11);
  std::vector<net::Packet> packets;
  for (int i = 0; i < 300; ++i) packets.push_back(make_packet(rng, kServer));

  Registry whole;
  Registry shard[3];
  {
    obs::ScopedRegistry install(&whole);
    net::TraceSummarizer s(kServer);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      s.record(static_cast<sim::Time>(i) * 1000, packets[i]);
    }
  }
  for (int k = 0; k < 3; ++k) {
    obs::ScopedRegistry install(&shard[k]);
    net::TraceSummarizer s(kServer);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      if (static_cast<int>(i % 3) == k) {
        s.record(static_cast<sim::Time>(i) * 1000, packets[i]);
      }
    }
  }

  Registry left;
  left.merge_from(shard[0]);
  left.merge_from(shard[1]);
  left.merge_from(shard[2]);
  Registry right;
  right.merge_from(shard[2]);
  right.merge_from(shard[1]);
  right.merge_from(shard[0]);

  // Counters must match the unsharded registry exactly. (Gauges are
  // last-value metrics — trace.first/last_packet_ns differ per shard by
  // construction, so the counter comparison is the meaningful law here.)
  const obs::Snapshot w = whole.snapshot();
  const obs::Snapshot l = left.snapshot();
  const obs::Snapshot r = right.snapshot();
  EXPECT_EQ(l.counters, w.counters);
  EXPECT_EQ(r.counters, w.counters);
  EXPECT_EQ(l.histograms.size(), w.histograms.size());
}

// ---- 3. Determinism --------------------------------------------------------

TEST(RegistryProperty, SameSeedRunsProduceIdenticalRegistries) {
  harness::ExperimentSpec spec;
  spec.network = harness::lan_profile();
  spec.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  spec.seed = 3;

  const harness::RunResult a = harness::run_once(spec, harness::shared_site());
  const harness::RunResult b = harness::run_once(spec, harness::shared_site());
  ASSERT_TRUE(a.robot.complete);
  // Whole-registry equality: every counter, gauge, peak and histogram.
  EXPECT_EQ(a.metrics.dump_text(), b.metrics.dump_text());
  EXPECT_FALSE(a.metrics.counters.empty());
  // The run registered metrics from every instrumented layer.
  for (const char* name :
       {"trace.packets", "tcp.segments_sent", "net.link.packets_sent",
        "server.requests_served", "client.requests_sent"}) {
    EXPECT_GT(a.metrics.counter(name), 0u) << name;
  }
}

TEST(RegistryProperty, DifferentSeedPerturbsRegistry) {
  harness::ExperimentSpec spec;
  spec.network = harness::wan_profile();
  spec.client = harness::robot_config(client::ProtocolMode::kHttp10Parallel);
  spec.seed = 3;
  const harness::RunResult a = harness::run_once(spec, harness::shared_site());
  spec.seed = 4;
  const harness::RunResult b = harness::run_once(spec, harness::shared_site());
  EXPECT_NE(a.metrics.dump_text(), b.metrics.dump_text());
}

}  // namespace
}  // namespace hsim
