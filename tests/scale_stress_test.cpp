// Deterministic many-client stress test.
//
// 300 HTTP/1.0 clients (heavy connection churn) slam one server through a
// deliberately tight funnel: small listen backlog (SYN drops), small
// admission quota (queueing), and a 5 Mbit/s shared bottleneck. The suite
// asserts the three scale invariants:
//   1. every page either completes byte-exact or fails with an attributed
//      FailureKind — nothing hangs, nothing is silently wrong;
//   2. no connection leaks in any tcp::Host after the drain period;
//   3. two runs with the same master seed produce identical aggregates
//      (the determinism oracle that makes the other assertions trustworthy).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace hsim {
namespace {

harness::WorkloadConfig stress_config() {
  harness::WorkloadConfig cfg;
  cfg.num_clients = 300;
  cfg.arrivals = harness::ArrivalProcess::kPoisson;
  cfg.mean_interarrival = sim::milliseconds(20);  // aggressive ramp-up
  cfg.access = harness::lan_profile();
  cfg.bottleneck_bandwidth_bps = 5'000'000;
  cfg.bottleneck_delay = sim::milliseconds(10);
  cfg.bottleneck_queue_packets = 128;
  cfg.master_seed = 7;

  cfg.server = server::apache_config();
  cfg.server.listen_backlog = 32;  // small enough that the burst overflows
  cfg.server.max_concurrent_connections = 24;
  cfg.server.admission_policy = server::AdmissionPolicy::kQueue;

  cfg.client = harness::robot_config(client::ProtocolMode::kHttp10Parallel);
  cfg.client.max_attempts = 6;
  cfg.client.retry_backoff = sim::milliseconds(200);
  cfg.client.page_deadline = sim::seconds(180);
  cfg.client.retry_server_errors = true;

  cfg.verify_cache = true;
  return cfg;
}

/// The run is expensive; both tests share the first result.
const harness::WorkloadResult& first_run() {
  static const harness::WorkloadResult r =
      harness::run_workload(stress_config(), harness::shared_site());
  return r;
}

TEST(ScaleStress, EveryClientResolvesByteExactOrAttributed) {
  const harness::WorkloadResult& r = first_run();
  ASSERT_EQ(r.clients.size(), 300u);
  EXPECT_TRUE(r.all_resolved());

  for (const harness::ClientOutcome& c : r.clients) {
    SCOPED_TRACE(::testing::Message() << "client " << c.id);
    EXPECT_TRUE(c.resolved);
    if (c.complete()) {
      EXPECT_TRUE(c.byte_exact);
      EXPECT_TRUE(c.stats.failures.empty());
    } else {
      // A non-complete page must carry structured attribution: either
      // per-request failures or the page deadline.
      EXPECT_TRUE(!c.stats.failures.empty() || c.stats.page_deadline_hit);
      EXPECT_EQ(c.stats.failures.size(), c.stats.requests_failed);
      for (const client::RequestFailure& f : c.stats.failures) {
        EXPECT_FALSE(f.target.empty());
        EXPECT_FALSE(std::string(client::to_string(f.kind)).empty());
        EXPECT_GT(f.attempts, 0u);
      }
    }
    EXPECT_EQ(c.leaked_connections, 0u);
  }

  // No leaks on the server side either.
  EXPECT_EQ(r.server_open_after_drain, 0u);

  // The funnel is tight enough that the new machinery actually engages.
  EXPECT_GT(r.listener.syns_dropped, 0u);
  EXPECT_GT(r.server.connections_queued, 0u);
  EXPECT_EQ(r.listener.accepted, r.server.connections_accepted);
}

TEST(ScaleStress, SameSeedProducesIdenticalAggregates) {
  const harness::WorkloadResult& a = first_run();
  const harness::WorkloadResult b =
      harness::run_workload(stress_config(), harness::shared_site());

  EXPECT_EQ(a.bottleneck.packets, b.bottleneck.packets);
  EXPECT_EQ(a.bottleneck.wire_bytes, b.bottleneck.wire_bytes);
  EXPECT_EQ(a.bottleneck.payload_bytes, b.bottleneck.payload_bytes);
  EXPECT_EQ(a.bottleneck_syns, b.bottleneck_syns);
  EXPECT_EQ(a.bottleneck_queue_drops, b.bottleneck_queue_drops);
  EXPECT_EQ(a.listener.syns_received, b.listener.syns_received);
  EXPECT_EQ(a.listener.syns_dropped, b.listener.syns_dropped);
  EXPECT_EQ(a.server.requests_served, b.server.requests_served);
  EXPECT_EQ(a.server.connections_queued, b.server.connections_queued);
  EXPECT_EQ(a.server_connections_total, b.server_connections_total);
  EXPECT_EQ(a.completed(), b.completed());
  EXPECT_EQ(a.failed(), b.failed());

  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t i = 0; i < a.clients.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "client " << i);
    EXPECT_EQ(a.clients[i].complete(), b.clients[i].complete());
    EXPECT_EQ(a.clients[i].stats.requests_sent, b.clients[i].stats.requests_sent);
    EXPECT_EQ(a.clients[i].stats.retries, b.clients[i].stats.retries);
    EXPECT_EQ(a.clients[i].stats.finished, b.clients[i].stats.finished);
  }
}

}  // namespace
}  // namespace hsim
