// Segmentation-invariance property: parsing a pipelined response stream must
// produce byte-identical results no matter how the wire is sliced on arrival —
// one byte at a time, MSS-sized segments, random segment sizes, or the whole
// stream in a single feed — and no matter whether segments arrive as flat
// spans or as zero-copy chains. This pins down the contract the TCP receive
// path relies on: reassembly boundaries are invisible to the HTTP layer.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "http/chunked.hpp"
#include "http/parser.hpp"
#include "sim/random.hpp"

namespace hsim::http {
namespace {

struct ParsedResponse {
  int status = 0;
  std::string body;
  std::size_t header_count = 0;

  bool operator==(const ParsedResponse&) const = default;
};

struct Stream {
  std::vector<std::uint8_t> wire;
  std::vector<Method> methods;
};

Stream make_stream(std::uint64_t seed) {
  sim::Rng rng(seed);
  Stream s;
  const int count = static_cast<int>(rng.uniform(2, 8));
  for (int i = 0; i < count; ++i) {
    Response r;
    r.version = Version::kHttp11;
    r.headers.add("Server", "seg-prop");
    const int kind = static_cast<int>(rng.uniform(0, 3));
    if (kind == 0) {
      // 304: headers only.
      r.status = 304;
      r.reason = std::string(default_reason(304));
      r.headers.add("ETag", "\"seg\"");
      r.headers.add("Content-Length", "0");
    } else {
      r.status = 200;
      r.reason = "OK";
      std::vector<std::uint8_t> body(
          static_cast<std::size_t>(rng.uniform(0, 5000)));
      for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u32());
      if (kind == 2) {
        // Chunked framing with an awkward chunk size.
        r.headers.add("Transfer-Encoding", "chunked");
        const auto head = r.serialize();
        s.wire.insert(s.wire.end(), head.begin(), head.end());
        const auto encoded = encode_chunked_body(
            body, static_cast<std::size_t>(rng.uniform(1, 700)));
        s.wire.insert(s.wire.end(), encoded.begin(), encoded.end());
        s.methods.push_back(Method::kGet);
        continue;
      }
      r.headers.add("Content-Length", std::to_string(body.size()));
      r.body.append(buf::Bytes(std::move(body)));
    }
    const auto bytes = r.serialize();
    s.wire.insert(s.wire.end(), bytes.begin(), bytes.end());
    s.methods.push_back(Method::kGet);
  }
  return s;
}

using SegmentSizer = std::function<std::size_t()>;

std::vector<ParsedResponse> parse_segmented(const Stream& s,
                                            const SegmentSizer& next_size,
                                            bool feed_as_chain) {
  ResponseParser parser;
  for (const Method m : s.methods) parser.push_request_context(m);
  std::vector<ParsedResponse> out;
  std::size_t pos = 0;
  while (pos < s.wire.size()) {
    const std::size_t n =
        std::min(std::max<std::size_t>(next_size(), 1), s.wire.size() - pos);
    const std::span<const std::uint8_t> segment(s.wire.data() + pos, n);
    if (feed_as_chain) {
      buf::Chain chunk;
      chunk.append_copy(segment);
      parser.feed(std::move(chunk));
    } else {
      parser.feed(segment);
    }
    pos += n;
    while (auto r = parser.next()) {
      out.push_back(
          {r->status, r->body.to_string(), r->headers.size()});
    }
  }
  EXPECT_FALSE(parser.failed());
  return out;
}

class SegmentationProperty : public ::testing::TestWithParam<int> {};

TEST_P(SegmentationProperty, ArrivalSlicingIsInvisible) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Stream s = make_stream(seed * 131 + 17);

  // Reference: the whole stream in one feed.
  const auto whole =
      parse_segmented(s, [&] { return s.wire.size(); }, false);
  ASSERT_EQ(whole.size(), s.methods.size());

  // 1-byte arrivals.
  const auto byte_wise = parse_segmented(s, [] { return std::size_t{1}; },
                                         false);
  // MSS-sized arrivals (Ethernet-era 1460).
  const auto mss = parse_segmented(s, [] { return std::size_t{1460}; }, false);
  // Random-sized arrivals.
  sim::Rng rng(seed * 977 + 3);
  const auto random_sized = parse_segmented(
      s, [&] { return static_cast<std::size_t>(rng.uniform(1, 2000)); },
      false);
  // Same three patterns arriving as zero-copy chains.
  const auto byte_wise_chain =
      parse_segmented(s, [] { return std::size_t{1}; }, true);
  const auto mss_chain =
      parse_segmented(s, [] { return std::size_t{1460}; }, true);
  sim::Rng rng2(seed * 977 + 3);
  const auto random_chain = parse_segmented(
      s, [&] { return static_cast<std::size_t>(rng2.uniform(1, 2000)); },
      true);

  EXPECT_EQ(byte_wise, whole);
  EXPECT_EQ(mss, whole);
  EXPECT_EQ(random_sized, whole);
  EXPECT_EQ(byte_wise_chain, whole);
  EXPECT_EQ(mss_chain, whole);
  EXPECT_EQ(random_chain, whole);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SegmentationProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace hsim::http
