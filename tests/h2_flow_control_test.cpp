// Flow-control and scheduler invariants for the h2 session layer:
//
//   - send windows (stream and connection) never go negative, at any
//     observable point;
//   - the sum of DATA bytes emitted never exceeds the window the receiver
//     granted, checked at EVERY emitted frame, not just at the end;
//   - stalled streams resume in deterministic priority order (strict weight
//     first, round-robin by id within a weight) when windows reopen;
//   - bytes are conserved end to end across pushed and reset streams: every
//     body byte a live stream carries arrives exactly once, and a rejected
//     push's bytes are discarded without corrupting neighbouring streams.
//
// Tests drive a real server Session with hand-scripted client frames (exact
// window control), and a client+server Session pair over an in-memory duplex
// relay (push, reset, auto window replenishment).
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "h2/frame.hpp"
#include "h2/session.hpp"
#include "sim/event_queue.hpp"

namespace hsim::h2 {
namespace {

buf::Chain chain_of_string(const std::string& s) {
  buf::Chain c;
  c.append_copy(std::string_view(s));
  return c;
}

std::string flat(const buf::Chain& c) { return c.to_string(0, c.size()); }

std::string patterned_body(std::size_t n, char salt) {
  std::string body(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    body[i] = static_cast<char>((i * 31 + salt) & 0xFF);
  }
  return body;
}

Frame headers_frame(std::uint32_t id, const http::Request& req) {
  Frame f;
  f.type = FrameType::kHeaders;
  f.stream_id = id;
  f.flags = kFlagEndHeaders | kFlagEndStream;
  f.payload = encode_request_block(req);
  return f;
}

Frame window_update_frame(std::uint32_t id, std::uint32_t increment) {
  Frame f;
  f.type = FrameType::kWindowUpdate;
  f.stream_id = id;
  f.payload = encode_window_update_payload(increment);
  return f;
}

Frame settings_frame(const std::vector<Setting>& settings) {
  Frame f;
  f.type = FrameType::kSettings;
  f.payload = encode_settings_payload(settings);
  return f;
}

http::Request get_request(const std::string& target) {
  http::Request req;
  req.method = http::Method::kGet;
  req.target = target;
  req.headers.add("Host", "test");
  return req;
}

// Decodes one direction of the wire and enforces the grant invariant on
// every DATA frame as it appears.
struct GrantMonitor {
  FrameDecoder decoder;
  std::vector<Frame> frames;  // everything seen, in emission order
  std::vector<std::pair<std::uint32_t, std::size_t>> data_log;  // (id, bytes)
  std::map<std::uint32_t, std::string> data_bytes;  // reassembled per stream
  std::map<std::uint32_t, bool> end_stream_seen;

  std::int64_t conn_granted = kDefaultInitialWindow;
  std::int64_t conn_sent = 0;
  std::map<std::uint32_t, std::int64_t> stream_granted;
  std::map<std::uint32_t, std::int64_t> stream_sent;
  std::int64_t default_stream_grant = kDefaultInitialWindow;

  void grant_conn(std::uint32_t inc) { conn_granted += inc; }
  void grant_stream(std::uint32_t id, std::uint32_t inc) {
    touch(id);
    stream_granted[id] += inc;
  }
  void touch(std::uint32_t id) {
    if (stream_granted.find(id) == stream_granted.end()) {
      stream_granted[id] = default_stream_grant;
    }
  }

  void feed(const buf::Chain& bytes) {
    decoder.feed(bytes);
    while (auto f = decoder.next()) {
      if (f->type == FrameType::kData) {
        const std::uint32_t id = f->stream_id;
        touch(id);
        const std::size_t n = f->payload.size();
        conn_sent += static_cast<std::int64_t>(n);
        stream_sent[id] += static_cast<std::int64_t>(n);
        // The grant invariant, at every frame.
        ASSERT_LE(conn_sent, conn_granted) << "stream " << id;
        ASSERT_LE(stream_sent[id], stream_granted[id]) << "stream " << id;
        data_log.emplace_back(id, n);
        data_bytes[id] += flat(f->payload);
        if (f->has_flag(kFlagEndStream)) end_stream_seen[id] = true;
      }
      frames.push_back(std::move(*f));
    }
    ASSERT_FALSE(decoder.failed());
  }
};

void expect_windows_nonnegative(const Session& s,
                                const std::vector<std::uint32_t>& ids) {
  EXPECT_GE(s.conn_send_window(), 0);
  for (std::uint32_t id : ids) {
    const auto w = s.stream_send_window(id);
    if (w.has_value()) EXPECT_GE(*w, 0) << "stream " << id;
  }
}

TEST(H2FlowControl, StreamWindowsGateDataAndResumeRoundRobin) {
  sim::EventQueue queue;
  SessionConfig cfg;
  cfg.is_server = true;
  GrantMonitor monitor;
  const std::vector<std::uint32_t> ids = {1, 3, 5};
  Session server(queue, cfg, [&](buf::Chain&& bytes) {
    monitor.feed(bytes);
    expect_windows_nonnegative(server, ids);
  });
  std::map<std::uint32_t, std::string> bodies;
  server.on_request = [&](std::uint32_t id, http::Request) {
    http::Response res;
    res.status = 200;
    res.reason = "OK";
    const std::string body = patterned_body(5000, static_cast<char>(id));
    bodies[id] = body;
    res.headers.add("Content-Length", std::to_string(body.size()));
    res.body = chain_of_string(body);
    server.submit_response(id, res);
  };

  // Client grants 2000 per stream, a 1000-byte max frame, and leaves the
  // connection window at the ample 65535 default.
  monitor.default_stream_grant = 2000;
  server.receive(encode_frame(settings_frame(
      {{kSettingsInitialWindowSize, 2000}, {kSettingsMaxFrameSize, 1000}})));
  for (std::uint32_t id : ids) {
    server.receive(encode_frame(headers_frame(id, get_request(
        "/r" + std::to_string(id) + ".gif"))));
  }

  // Requests arrive (and are answered) sequentially, so each stream drains
  // exactly its 2000-byte grant — two 1000-byte frames — on arrival, then
  // stalls: 1,1,3,3,5,5. Round-robin among simultaneously eligible streams
  // is exercised by the connection-window test below.
  ASSERT_EQ(monitor.data_log.size(), 6u);
  const std::vector<std::uint32_t> first_round = {1, 1, 3, 3, 5, 5};
  for (std::size_t i = 0; i < first_round.size(); ++i) {
    EXPECT_EQ(monitor.data_log[i].first, first_round[i]) << "pick " << i;
    EXPECT_EQ(monitor.data_log[i].second, 1000u) << "pick " << i;
  }
  // All three streams are now stalled with 3000 bytes queued each.
  EXPECT_EQ(server.queued_send_bytes(), 9000u);
  EXPECT_GE(server.stats().flow_stalls, 3u);
  for (std::uint32_t id : ids) {
    ASSERT_TRUE(server.stream_send_window(id).has_value());
    EXPECT_EQ(*server.stream_send_window(id), 0);
  }

  // Reopen stream 5 fully: only stream 5 resumes, draining its remaining
  // 3000 bytes and closing.
  monitor.grant_stream(5, 3000);
  server.receive(encode_frame(window_update_frame(5, 3000)));
  ASSERT_EQ(monitor.data_log.size(), 9u);
  for (std::size_t i = 6; i < 9; ++i) {
    EXPECT_EQ(monitor.data_log[i].first, 5u);
  }
  EXPECT_TRUE(monitor.end_stream_seen[5]);

  // A partial grant on stream 1 moves exactly that many bytes.
  monitor.grant_stream(1, 500);
  server.receive(encode_frame(window_update_frame(1, 500)));
  ASSERT_EQ(monitor.data_log.size(), 10u);
  EXPECT_EQ(monitor.data_log[9].first, 1u);
  EXPECT_EQ(monitor.data_log[9].second, 500u);

  // Release everything; both remaining streams drain to completion.
  monitor.grant_stream(1, 10000);
  monitor.grant_stream(3, 10000);
  buf::Chain both;
  both.append(encode_frame(window_update_frame(1, 10000)));
  both.append(encode_frame(window_update_frame(3, 10000)));
  server.receive(std::move(both));

  for (std::uint32_t id : ids) {
    EXPECT_EQ(monitor.data_bytes[id], bodies[id]) << "stream " << id;
    EXPECT_TRUE(monitor.end_stream_seen[id]) << "stream " << id;
    EXPECT_TRUE(server.stream_closed(id)) << "stream " << id;
  }
  EXPECT_EQ(server.queued_send_bytes(), 0u);
  EXPECT_EQ(server.stats().data_bytes_sent, 15000u);
}

TEST(H2FlowControl, ConnectionWindowGatesAggregateAndWeightsOrderResume) {
  sim::EventQueue queue;
  SessionConfig cfg;
  cfg.is_server = true;
  GrantMonitor monitor;
  const std::vector<std::uint32_t> ids = {1, 2, 4};
  Session server(queue, cfg, [&](buf::Chain&& bytes) {
    monitor.feed(bytes);
    expect_windows_nonnegative(server, ids);
  });

  // Per-stream windows huge; the 65535 connection window is the bottleneck.
  monitor.default_stream_grant = 1 << 20;
  server.receive(encode_frame(settings_frame(
      {{kSettingsInitialWindowSize, 1 << 20},
       {kSettingsMaxFrameSize, 4096},
       {kSettingsEnablePush, 1}})));

  // One request stream (weight 16) and two pushes promised off it (weight
  // 8), all submitted inside the same on_request — every stream is queued
  // and eligible before the first DATA frame is picked, so the scheduler's
  // weight order and within-weight round-robin are both observable.
  std::map<std::uint32_t, std::string> bodies;
  server.on_request = [&](std::uint32_t id, http::Request) {
    auto respond = [&](const std::string& body) {
      http::Response res;
      res.status = 200;
      res.reason = "OK";
      res.headers.add("Content-Length", std::to_string(body.size()));
      res.body = chain_of_string(body);
      return res;
    };
    const auto p2 = server.promise_push(id, get_request("/p2.png"));
    const auto p4 = server.promise_push(id, get_request("/p4.png"));
    ASSERT_TRUE(p2.has_value());
    ASSERT_TRUE(p4.has_value());
    EXPECT_EQ(*p2, 2u);
    EXPECT_EQ(*p4, 4u);
    bodies[id] = patterned_body(40000, 'r');
    bodies[*p2] = patterned_body(30000, 'a');
    bodies[*p4] = patterned_body(30000, 'b');
    server.submit_response(id, respond(bodies[id]));
    server.push_response(*p2, respond(bodies[*p2]));
    server.push_response(*p4, respond(bodies[*p4]));
  };
  server.receive(encode_frame(headers_frame(1, get_request("/index.html"))));

  // The connection window is exhausted to the byte and nothing is owed
  // beyond it: 100000 queued, 65535 on the wire, both pushes stalled.
  EXPECT_EQ(monitor.conn_sent, 65535);
  EXPECT_EQ(server.conn_send_window(), 0);
  EXPECT_EQ(server.queued_send_bytes(), 100000u - 65535u);
  EXPECT_GE(server.stats().flow_stalls, 2u);

  // Weight order: every byte of the weight-16 request stream went before
  // any weight-8 push byte, even though all three were eligible together.
  bool seen_push_data = false;
  for (const auto& [id, n] : monitor.data_log) {
    if (id % 2 == 0) seen_push_data = true;
    else EXPECT_FALSE(seen_push_data)
        << "request-stream DATA after push DATA while both were eligible";
  }
  EXPECT_TRUE(monitor.end_stream_seen[1]);

  // Reopen the connection window in steps and let everything drain; the
  // invariant checker in the monitor validates every intermediate frame.
  // (Before the stall, push 2 ran alone — push 4's response had not been
  // submitted yet when 2 first pumped — so round-robin is only observable
  // from the resume point on, where both pushes are queued together.)
  const std::size_t drain_start = monitor.data_log.size();
  while (server.queued_send_bytes() > 0) {
    monitor.grant_conn(20000);
    server.receive(encode_frame(window_update_frame(0, 20000)));
  }

  // Round-robin within weight 8 across the resumed region: while both
  // pushes still had queued bytes, no push got two consecutive picks.
  std::map<std::uint32_t, std::size_t> remaining = {
      {2, bodies[2].size()}, {4, bodies[4].size()}};
  for (std::size_t i = 0; i < drain_start; ++i) {
    const auto& [id, n] = monitor.data_log[i];
    if (id % 2 == 0) remaining[id] -= n;
  }
  std::uint32_t prev = 0;
  for (std::size_t i = drain_start; i < monitor.data_log.size(); ++i) {
    const auto& [id, n] = monitor.data_log[i];
    if (id % 2 != 0) continue;
    if (remaining[2] > 0 && remaining[4] > 0 && prev != 0) {
      EXPECT_NE(id, prev) << "same push stream picked twice in a row while "
                             "its sibling had queued data";
    }
    remaining[id] -= n;
    prev = id;
  }
  for (std::uint32_t id : ids) {
    EXPECT_EQ(monitor.data_bytes[id], bodies[id]) << "stream " << id;
    EXPECT_TRUE(monitor.end_stream_seen[id]) << "stream " << id;
  }
  EXPECT_EQ(server.stats().data_bytes_sent, 100000u);
}

// ---- Duplex: two real sessions, push accept/reject, byte conservation ----

struct Relay {
  Session* client = nullptr;
  Session* server = nullptr;
  buf::Chain to_server;  // client -> server bytes awaiting delivery
  buf::Chain to_client;
  GrantMonitor s2c;  // server-emitted frames (the direction carrying bodies)
  FrameDecoder c2s{kDefaultMaxFrameSize};  // client grants feed the monitor
  std::size_t preface_remaining = kClientPreface.size();
  bool draining = false;

  // The client replenishes windows with WINDOW_UPDATE and widens them with
  // SETTINGS; register those grants in the s2c monitor *before* the server
  // learns of them so its very next DATA frame is judged against the grant.
  void register_grants(const buf::Chain& bytes) {
    c2s.feed(bytes);
    while (auto f = c2s.next()) {
      if (f->type == FrameType::kWindowUpdate) {
        const auto inc = parse_window_update_payload(f->payload);
        if (!inc.has_value()) continue;
        if (f->stream_id == 0) s2c.grant_conn(*inc);
        else s2c.grant_stream(f->stream_id, *inc);
      } else if (f->type == FrameType::kSettings && !f->has_flag(kFlagAck)) {
        const auto settings = parse_settings_payload(f->payload);
        if (!settings.has_value()) continue;
        for (const Setting& s : *settings) {
          if (s.id == kSettingsInitialWindowSize) {
            s2c.default_stream_grant = s.value;
          }
        }
      }
    }
  }

  void drain() {
    if (draining || client == nullptr || server == nullptr) return;
    draining = true;
    while (!to_server.empty() || !to_client.empty()) {
      if (!to_server.empty()) {
        if (preface_remaining > 0) {
          const std::size_t n = std::min(preface_remaining, to_server.size());
          to_server.pop_front(n);
          preface_remaining -= n;
          continue;
        }
        buf::Chain bytes = to_server.split_front(to_server.size());
        register_grants(bytes);
        server->receive(std::move(bytes));
      } else {
        buf::Chain bytes = to_client.split_front(to_client.size());
        s2c.feed(bytes);
        client->receive(std::move(bytes));
      }
    }
    draining = false;
  }
};

TEST(H2FlowControl, DuplexPushAcceptRejectConservesBytes) {
  sim::EventQueue queue;
  Relay relay;
  // Stream windows default (65535) on both sides; bodies exceed them so the
  // transfer only completes if auto WINDOW_UPDATE replenishment works.
  SessionConfig client_cfg;
  client_cfg.is_server = false;
  SessionConfig server_cfg;
  server_cfg.is_server = true;
  Session client(queue, client_cfg, [&](buf::Chain&& bytes) {
    relay.to_server.append(std::move(bytes));
    relay.drain();
  });
  Session server(queue, server_cfg, [&](buf::Chain&& bytes) {
    relay.to_client.append(std::move(bytes));
    relay.drain();
  });
  relay.client = &client;
  relay.server = &server;

  std::map<std::uint32_t, std::string> bodies;
  server.on_request = [&](std::uint32_t id, http::Request req) {
    auto respond = [&](const std::string& body) {
      http::Response res;
      res.status = 200;
      res.reason = "OK";
      res.headers.add("Content-Length", std::to_string(body.size()));
      res.body = chain_of_string(body);
      return res;
    };
    ASSERT_EQ(req.target, "/index.html");
    const auto accepted = server.promise_push(id, get_request("/keep.png"));
    const auto rejected = server.promise_push(id, get_request("/drop.png"));
    ASSERT_TRUE(accepted.has_value());
    ASSERT_TRUE(rejected.has_value());
    bodies[id] = patterned_body(100000, 'r');          // stalls: > 65535
    bodies[*accepted] = patterned_body(30000, 'k');
    bodies[*rejected] = patterned_body(30000, 'd');
    server.submit_response(id, respond(bodies[id]));
    server.push_response(*accepted, respond(bodies[*accepted]));
    server.push_response(*rejected, respond(bodies[*rejected]));
  };

  std::vector<std::uint32_t> promised;
  client.on_push_promise = [&](std::uint32_t id, const http::Request& req) {
    promised.push_back(id);
    return req.target == "/keep.png";
  };
  std::vector<std::pair<std::uint32_t, std::string>> completed;
  client.on_response = [&](std::uint32_t id, http::Response res) {
    completed.emplace_back(id, flat(res.body));
  };
  client.on_push_response = [&](std::uint32_t id, http::Response res) {
    completed.emplace_back(id, flat(res.body));
  };

  const std::uint32_t root = client.submit_request(get_request("/index.html"));
  relay.drain();

  // Both promises were seen; the accepted push and the root completed with
  // exactly the bodies the server authored. (The smaller push can *finish*
  // before the larger root — weight only decides who sends while both have
  // window; the weight-order guarantee is pinned by the scripted test.)
  ASSERT_EQ(promised.size(), 2u);
  ASSERT_EQ(completed.size(), 2u);
  for (const auto& [id, body] : completed) {
    EXPECT_EQ(body, bodies[id]) << "stream " << id;
  }
  // The very first DATA byte on the wire belongs to the weight-16 root.
  ASSERT_FALSE(relay.s2c.data_log.empty());
  EXPECT_EQ(relay.s2c.data_log[0].first, root);
  EXPECT_TRUE(client.stream_was_reset(promised[1]));
  EXPECT_EQ(client.stats().pushes_accepted, 1u);
  EXPECT_EQ(client.stats().pushes_reset, 1u);

  // The stall actually happened (bodies exceeded every initial window) and
  // replenishment resolved it.
  EXPECT_GE(server.stats().flow_stalls, 1u);
  EXPECT_EQ(server.queued_send_bytes(), 0u);

  // Byte conservation: every DATA byte the server emitted crossed the relay
  // exactly once (monitor), and the client accounted every one of them —
  // delivered on live streams or discarded on the reset push, never both.
  std::size_t monitored = 0;
  for (const auto& [id, n] : relay.s2c.data_log) monitored += n;
  EXPECT_EQ(server.stats().data_bytes_sent, monitored);
  EXPECT_EQ(server.stats().data_bytes_sent,
            client.stats().data_bytes_received);
  std::size_t delivered = 0;
  for (const auto& [id, body] : completed) delivered += body.size();
  const std::size_t discarded =
      relay.s2c.data_bytes.count(promised[1]) != 0
          ? relay.s2c.data_bytes[promised[1]].size()
          : 0;
  EXPECT_EQ(delivered + discarded, monitored);

  // Windows ended non-negative everywhere.
  expect_windows_nonnegative(server, {root, promised[0], promised[1]});
  expect_windows_nonnegative(client, {root, promised[0], promised[1]});
}

TEST(H2FlowControl, RevalidationRoundTripNoBodies) {
  // 304-style exchanges carry no DATA at all: windows must be untouched.
  sim::EventQueue queue;
  Relay relay;
  SessionConfig client_cfg;
  SessionConfig server_cfg;
  server_cfg.is_server = true;
  Session client(queue, client_cfg, [&](buf::Chain&& bytes) {
    relay.to_server.append(std::move(bytes));
    relay.drain();
  });
  Session server(queue, server_cfg, [&](buf::Chain&& bytes) {
    relay.to_client.append(std::move(bytes));
    relay.drain();
  });
  relay.client = &client;
  relay.server = &server;
  server.on_request = [&](std::uint32_t id, http::Request) {
    http::Response res;
    res.status = 304;
    res.reason = "Not Modified";
    res.headers.add("ETag", "\"v1\"");
    server.submit_response(id, res);
  };
  std::vector<int> statuses;
  client.on_response = [&](std::uint32_t, http::Response res) {
    statuses.push_back(res.status);
  };
  for (int i = 0; i < 5; ++i) {
    http::Request req = get_request("/img" + std::to_string(i) + ".gif");
    req.headers.add("If-None-Match", "\"v1\"");
    client.submit_request(req);
  }
  relay.drain();
  EXPECT_EQ(statuses, std::vector<int>(5, 304));
  EXPECT_EQ(server.conn_send_window(), kDefaultInitialWindow);
  EXPECT_EQ(client.conn_send_window(), kDefaultInitialWindow);
  EXPECT_EQ(server.stats().data_bytes_sent, 0u);
  EXPECT_EQ(relay.s2c.data_log.size(), 0u);
}

}  // namespace
}  // namespace hsim::h2
