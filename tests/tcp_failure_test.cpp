// Terminal TCP failure paths: connect timeout (SYN retry cap) and
// established-connection give-up (max consecutive retransmission timeouts),
// surfaced through Connection::set_on_failed. These are what keep the
// simulator from spinning forever on a dead link.
#include <gtest/gtest.h>

#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using testutil::TestNet;

net::ChannelConfig dead_channel() {
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(0, sim::milliseconds(10));
  cfg.a_to_b.random_drop_probability = 1.0;
  cfg.b_to_a.random_drop_probability = 1.0;
  return cfg;
}

TEST(TcpFailureTest, ConnectTimeoutAfterSynRetriesExhausted) {
  TestNet net(dead_channel());
  tcp::TcpOptions opts;
  opts.max_syn_retries = 3;

  bool failed = false, connected = false;
  tcp::ConnError error = tcp::ConnError::kNone;
  auto conn = net.client.connect(testutil::kServerAddr, 80, opts);
  conn->set_on_connected([&] { connected = true; });
  conn->set_on_failed([&] {
    failed = true;
    error = conn->error();
  });
  net.queue.run();  // must drain: the retry budget bounds the event horizon

  EXPECT_FALSE(connected);
  EXPECT_TRUE(failed);
  EXPECT_EQ(error, tcp::ConnError::kConnectTimeout);
  EXPECT_EQ(net.client.open_connections(), 0u);
}

TEST(TcpFailureTest, ConnectSucceedsOnceOutageEnds) {
  // SYNs vanish into a 3-second outage; the retry budget (default 6)
  // outlasts it and the handshake completes when the link returns.
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(0, sim::milliseconds(10));
  cfg.a_to_b.outages.push_back({0, sim::seconds(3)});
  TestNet net(cfg);
  net.server.listen(80, [](tcp::ConnectionPtr) {}, {});

  bool failed = false, connected = false;
  auto conn = net.client.connect(testutil::kServerAddr, 80, {});
  conn->set_on_connected([&] { connected = true; });
  conn->set_on_failed([&] { failed = true; });
  net.queue.run_until(sim::seconds(60));

  EXPECT_TRUE(connected);
  EXPECT_FALSE(failed);
  EXPECT_EQ(conn->error(), tcp::ConnError::kNone);
}

TEST(TcpFailureTest, EstablishedConnectionGivesUpRetransmitting) {
  // Healthy handshake, then the link dies for good mid-transfer. The sender
  // must stop after max_data_retransmits consecutive RTOs and report a
  // terminal transport failure rather than backing off forever.
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(0, sim::milliseconds(10));
  const sim::Time outage_start = sim::milliseconds(500);
  cfg.a_to_b.outages.push_back({outage_start, sim::seconds(100'000)});
  cfg.b_to_a.outages.push_back({outage_start, sim::seconds(100'000)});
  TestNet net(cfg);

  tcp::ConnectionPtr accepted;
  net.server.listen(80, [&](tcp::ConnectionPtr c) { accepted = c; }, {});

  tcp::TcpOptions opts;
  opts.max_data_retransmits = 4;
  bool failed = false;
  tcp::ConnError error = tcp::ConnError::kNone;
  auto conn = net.client.connect(testutil::kServerAddr, 80, opts);
  conn->set_on_failed([&] {
    failed = true;
    error = conn->error();
  });
  const auto payload = testutil::pattern_bytes(20'000);
  conn->set_on_connected([&] {
    net.queue.schedule_at(outage_start + sim::milliseconds(100), [&] {
      conn->send({payload.data(), payload.size()});
    });
  });
  net.queue.run_until(sim::seconds(7200));

  EXPECT_TRUE(failed);
  EXPECT_EQ(error, tcp::ConnError::kRetransmitTimeout);
  EXPECT_EQ(net.client.open_connections(), 0u);
}

TEST(TcpFailureTest, FailureFallsBackToOnResetWhenUnwired) {
  // Applications that predate set_on_failed still observe the teardown: a
  // give-up loses buffered data exactly like a peer reset would.
  TestNet net(dead_channel());
  tcp::TcpOptions opts;
  opts.max_syn_retries = 2;

  bool reset_seen = false;
  auto conn = net.client.connect(testutil::kServerAddr, 80, opts);
  conn->set_on_reset([&] { reset_seen = true; });
  net.queue.run();

  EXPECT_TRUE(reset_seen);
  EXPECT_EQ(conn->error(), tcp::ConnError::kConnectTimeout);
}

TEST(TcpFailureTest, ZeroDisablesTheGiveUpCaps) {
  // max_syn_retries = 0 means "retry forever": after an hour of a dead
  // channel the connection is still trying, not failed.
  TestNet net(dead_channel());
  tcp::TcpOptions opts;
  opts.max_syn_retries = 0;

  bool failed = false;
  auto conn = net.client.connect(testutil::kServerAddr, 80, opts);
  conn->set_on_failed([&] { failed = true; });
  net.queue.run_until(sim::seconds(3600));

  EXPECT_FALSE(failed);
  EXPECT_EQ(conn->error(), tcp::ConnError::kNone);
}

TEST(TcpFailureTest, ConnErrorToStringIsStable) {
  EXPECT_EQ(to_string(tcp::ConnError::kNone), "none");
  EXPECT_EQ(to_string(tcp::ConnError::kConnectTimeout), "connect-timeout");
  EXPECT_EQ(to_string(tcp::ConnError::kRetransmitTimeout),
            "retransmit-timeout");
}

}  // namespace
}  // namespace hsim
