#include <gtest/gtest.h>

#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using tcp::ConnectionPtr;
using tcp::TcpOptions;

// Helper: drive a one-directional bulk transfer and return the client conn.
struct BulkNet : TestNet {
  explicit BulkNet(net::ChannelConfig cfg, TcpOptions copts = TcpOptions{},
                   TcpOptions sopts = TcpOptions{}, std::uint64_t seed = 1234)
      : TestNet(cfg, seed) {
    server.listen(
        80,
        [this](ConnectionPtr c) {
          c->set_on_data([this, raw = c.get()] {
            auto b = raw->read_all().to_vector();
            received.insert(received.end(), b.begin(), b.end());
          });
        },
        sopts);
    conn = client.connect(kServerAddr, 80, copts);
  }

  void pump_payload(const std::vector<std::uint8_t>& payload) {
    auto pump = [this, &payload] {
      offset += conn->send(std::span<const std::uint8_t>(
          payload.data() + offset, payload.size() - offset));
    };
    conn->set_on_connected(pump);
    conn->set_on_send_space(pump);
  }

  ConnectionPtr conn;
  std::vector<std::uint8_t> received;
  std::size_t offset = 0;
};

TEST(TcpCongestionTest, SlowStartDoublesWindowEachRtt) {
  // On a high-latency link, count data segments per RTT bucket: slow start
  // should send ~2, then ~4, then ~8 segments in successive RTTs.
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(100'000'000, sim::milliseconds(100));
  TcpOptions opts;
  opts.initial_cwnd_segments = 2;
  // Disable the receiver's delayed ACK so growth is the textbook doubling
  // (with delayed ACKs, growth is ~1.5x per RTT — asserted separately below).
  TcpOptions sopts;
  sopts.delayed_ack = false;
  BulkNet net(cfg, opts, sopts);
  const auto payload = pattern_bytes(100'000);
  net.pump_payload(payload);
  net.queue.run();
  ASSERT_EQ(net.received, payload);

  // Bucket client data packets by 100 ms windows after the handshake ACK.
  std::vector<int> per_rtt;
  sim::Time start = -1;
  for (const auto& r : net.trace.records()) {
    if (r.src != kClientAddr || r.payload_bytes == 0) continue;
    if (start < 0) start = r.time;
    const std::size_t bucket =
        static_cast<std::size_t>((r.time - start) / sim::milliseconds(100));
    if (per_rtt.size() <= bucket) per_rtt.resize(bucket + 1, 0);
    ++per_rtt[bucket];
  }
  ASSERT_GE(per_rtt.size(), 3u);
  EXPECT_EQ(per_rtt[0], 2);           // initial window
  EXPECT_GE(per_rtt[1], 3);           // roughly doubled
  EXPECT_LE(per_rtt[1], 4);
  EXPECT_GE(per_rtt[2], 6);           // keeps doubling
}

TEST(TcpCongestionTest, InitialWindowOfOneSegment) {
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(100'000'000, sim::milliseconds(100));
  TcpOptions opts;
  opts.initial_cwnd_segments = 1;
  BulkNet net(cfg, opts);
  const auto payload = pattern_bytes(20'000);
  net.pump_payload(payload);
  net.queue.run();
  ASSERT_EQ(net.received, payload);
  sim::Time first_data = -1;
  int first_rtt_segments = 0;
  for (const auto& r : net.trace.records()) {
    if (r.src != kClientAddr || r.payload_bytes == 0) continue;
    if (first_data < 0) first_data = r.time;
    if (r.time < first_data + sim::milliseconds(100)) ++first_rtt_segments;
  }
  EXPECT_EQ(first_rtt_segments, 1);
}

TEST(TcpCongestionTest, FastRetransmitRecoversSingleLossWithoutRto) {
  // Drop exactly one data packet mid-stream; three dup-ACKs should trigger a
  // fast retransmit long before the RTO would fire.
  sim::EventQueue q;
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(10'000'000, sim::milliseconds(20));
  net::Channel ch(q, cfg, sim::Rng(1));
  tcp::Host client(q, kClientAddr, "c", sim::Rng(2));
  tcp::Host server(q, kServerAddr, "s", sim::Rng(3));
  ch.attach_a(&client);
  ch.attach_b(&server);
  server.attach_uplink(&ch.uplink_from_b());

  struct DropNth : net::PacketSink {
    net::Link* forward = nullptr;
    int data_seen = 0;
    int drop_at = 10;  // drop the 10th data segment
    void deliver(net::Packet p) override {
      if (!p.payload.empty() && ++data_seen == drop_at) return;
      forward->transmit(std::move(p));
    }
  } dropper;
  dropper.forward = &ch.uplink_from_a();
  net::Link client_out(q, net::LinkConfig{}, sim::Rng(4));
  client_out.set_sink(&dropper);
  client.attach_uplink(&client_out);

  std::vector<std::uint8_t> received;
  server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_data([&received, raw = c.get()] {
          auto b = raw->read_all().to_vector();
          received.insert(received.end(), b.begin(), b.end());
        });
      },
      TcpOptions{});
  const auto payload = pattern_bytes(100'000);
  ConnectionPtr conn = client.connect(kServerAddr, 80, TcpOptions{});
  std::size_t offset = 0;
  auto pump = [&] {
    offset += conn->send(std::span<const std::uint8_t>(
        payload.data() + offset, payload.size() - offset));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);
  q.run();
  EXPECT_EQ(received, payload);
  EXPECT_GE(conn->stats().fast_retransmits, 1u);
  EXPECT_EQ(conn->stats().timeouts, 0u);
}

TEST(TcpCongestionTest, RtoFiresWhenAllAcksLost) {
  // Cut the return path entirely: the sender must retransmit via timeout.
  sim::EventQueue q;
  net::Channel ch(q, net::ChannelConfig::symmetric(0, sim::milliseconds(10)),
                  sim::Rng(1));
  tcp::Host client(q, kClientAddr, "c", sim::Rng(2));
  tcp::Host server(q, kServerAddr, "s", sim::Rng(3));
  ch.attach_a(&client);
  ch.attach_b(&server);
  client.attach_uplink(&ch.uplink_from_a());
  server.attach_uplink(&ch.uplink_from_b());
  server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr conn = client.connect(kServerAddr, 80, TcpOptions{});
  bool connected = false;
  conn->set_on_connected([&] {
    connected = true;
    // Now sever the server->client direction: ACKs stop flowing.
    ch.attach_a(nullptr);
    conn->send("data that will never be acked");
  });
  q.run_until(sim::seconds(30));
  EXPECT_TRUE(connected);
  EXPECT_GE(conn->stats().timeouts, 2u);
  EXPECT_GE(conn->stats().retransmits, 2u);
}

TEST(TcpCongestionTest, CwndCollapsesOnTimeoutThenRegrows) {
  sim::EventQueue q;
  net::Channel ch(q, net::ChannelConfig::symmetric(
                         10'000'000, sim::milliseconds(10)),
                  sim::Rng(1));
  tcp::Host client(q, kClientAddr, "c", sim::Rng(2));
  tcp::Host server(q, kServerAddr, "s", sim::Rng(3));
  ch.attach_a(&client);
  ch.attach_b(&server);
  server.attach_uplink(&ch.uplink_from_b());

  struct Gate : net::PacketSink {
    net::Link* forward = nullptr;
    bool open = true;
    void deliver(net::Packet p) override {
      if (open) forward->transmit(std::move(p));
    }
  } gate;
  gate.forward = &ch.uplink_from_a();
  net::Link client_out(q, net::LinkConfig{}, sim::Rng(4));
  client_out.set_sink(&gate);
  client.attach_uplink(&client_out);

  std::vector<std::uint8_t> received;
  server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_data([&received, raw = c.get()] {
          auto b = raw->read_all().to_vector();
          received.insert(received.end(), b.begin(), b.end());
        });
      },
      TcpOptions{});
  const auto payload = pattern_bytes(500'000);
  ConnectionPtr conn = client.connect(kServerAddr, 80, TcpOptions{});
  std::size_t offset = 0;
  auto pump = [&] {
    offset += conn->send(std::span<const std::uint8_t>(
        payload.data() + offset, payload.size() - offset));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);

  // Let the window grow, then black-hole the path for a while.
  q.run_until(sim::milliseconds(300));
  const std::uint32_t cwnd_before = conn->cwnd();
  gate.open = false;
  q.run_until(sim::seconds(5));
  const std::uint32_t cwnd_during = conn->cwnd();
  gate.open = true;
  q.run_until(sim::seconds(120));

  EXPECT_GT(cwnd_before, 2 * 1460u);
  EXPECT_EQ(cwnd_during, 1460u);  // collapsed to one segment
  EXPECT_EQ(received, payload);   // and still delivered everything
}

TEST(TcpCongestionTest, QueueOverflowCongestionIsSurvivable) {
  // A fat sender into a slow, shallow-buffered link: drops occur, TCP adapts,
  // data still arrives intact.
  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(1'000'000, sim::milliseconds(30), 8);
  BulkNet net(cfg);
  const auto payload = pattern_bytes(300'000);
  net.pump_payload(payload);
  net.queue.run_until(sim::seconds(60));
  EXPECT_EQ(net.received, payload);
}

}  // namespace
}  // namespace hsim
