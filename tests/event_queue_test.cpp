#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hsim::sim {
namespace {

TEST(EventQueueTest, StartsAtTimeZero) {
  EventQueue q;
  EXPECT_EQ(q.now(), 0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  q.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  q.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), milliseconds(30));
}

TEST(EventQueueTest, SameTimeEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleInIsRelativeToNow) {
  EventQueue q;
  Time fired_at = -1;
  q.schedule_at(milliseconds(10), [&] {
    q.schedule_in(milliseconds(5), [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_EQ(fired_at, milliseconds(15));
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  Time fired_at = -1;
  q.schedule_at(milliseconds(10), [&] {
    q.schedule_at(milliseconds(2), [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_EQ(fired_at, milliseconds(10));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  TimerId id = q.schedule_at(milliseconds(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  q.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelReturnsFalseForUnknownOrAlreadyRun) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(TimerId{}));
  EXPECT_FALSE(q.cancel(TimerId{999}));
  TimerId id = q.schedule_at(0, [] {});
  q.run();
  // Cancelling after execution is accepted lazily but has no effect; the
  // important property is that double-cancel of a fresh id is rejected.
  TimerId id2 = q.schedule_at(milliseconds(1), [] {});
  EXPECT_TRUE(q.cancel(id2));
  EXPECT_FALSE(q.cancel(id2));
  (void)id;
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.schedule_at(milliseconds(10), [&] { ++count; });
  q.schedule_at(milliseconds(20), [&] { ++count; });
  q.schedule_at(milliseconds(30), [&] { ++count; });
  EXPECT_EQ(q.run_until(milliseconds(20)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), milliseconds(20));
  q.run();
  EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, RunUntilAdvancesClockToDeadlineWhenEventsRemain) {
  EventQueue q;
  q.schedule_at(milliseconds(100), [] {});
  q.run_until(milliseconds(50));
  EXPECT_EQ(q.now(), milliseconds(50));
}

TEST(EventQueueTest, EventsScheduledDuringRunExecute) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) q.schedule_in(milliseconds(1), recurse);
  };
  q.schedule_at(0, recurse);
  q.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.now(), milliseconds(99));
}

TEST(EventQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  TimerId a = q.schedule_at(milliseconds(1), [] {});
  q.schedule_at(milliseconds(2), [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(TimerTest, ArmAndFire) {
  EventQueue q;
  Timer t(q);
  bool fired = false;
  t.arm(milliseconds(10), [&] { fired = true; });
  EXPECT_TRUE(t.armed());
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(t.armed());
}

TEST(TimerTest, RearmReplacesPrevious) {
  EventQueue q;
  Timer t(q);
  int which = 0;
  t.arm(milliseconds(10), [&] { which = 1; });
  t.arm(milliseconds(20), [&] { which = 2; });
  q.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(q.now(), milliseconds(20));
}

TEST(TimerTest, CancelStopsFire) {
  EventQueue q;
  Timer t(q);
  bool fired = false;
  t.arm(milliseconds(10), [&] { fired = true; });
  t.cancel();
  q.run();
  EXPECT_FALSE(fired);
}

TEST(TimerTest, DestructionCancels) {
  EventQueue q;
  bool fired = false;
  {
    Timer t(q);
    t.arm(milliseconds(10), [&] { fired = true; });
  }
  q.run();
  EXPECT_FALSE(fired);
}

}  // namespace
}  // namespace hsim::sim
