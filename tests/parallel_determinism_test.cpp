// Thread-count determinism matrix for the host-sharded engine.
//
// The sharded drivers' contract (harness/parallel.hpp): for a fixed shard
// partition, the worker thread count is a pure performance knob — T=1 and
// T=2/4/8 runs of the same configuration are byte-identical, over every
// surface a consumer can observe: WorkloadResult fields, the full metrics
// registry dump, and the per-packet client trace. This suite pins that
// contract on both canonical topologies over several seeds, and pins the
// sharded T=1 run against the classic single-queue driver on the surfaces
// the two share exactly.
//
// On divergence each test writes the expected/actual dumps next to the test
// binary (parallel_<name>.expected.txt / .actual.txt, and .actual.trace for
// trace divergences) so CI uploads them as artifacts.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/scenarios.hpp"
#include "harness/soak.hpp"
#include "harness/workload.hpp"
#include "net/trace_io.hpp"

namespace hsim {
namespace {

const unsigned kThreadMatrix[] = {2, 4, 8};

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Every field of a WorkloadResult a caller can observe, rendered to text.
/// Includes the full registry dump (counters, gauges with peaks, histogram
/// quantiles), so a single perturbed metric anywhere in the stack fails the
/// byte comparison.
std::string workload_fingerprint(const harness::WorkloadResult& r) {
  std::string out;
  out += "events=" + std::to_string(r.events_executed) + "\n";
  out += "completed=" + std::to_string(r.completed()) +
         " failed=" + std::to_string(r.failed()) +
         " resolved=" + std::to_string(r.all_resolved() ? 1 : 0) + "\n";
  out += "bn.packets=" + std::to_string(r.bottleneck.packets) +
         " bn.wire=" + std::to_string(r.bottleneck.wire_bytes) +
         " bn.payload=" + std::to_string(r.bottleneck.payload_bytes) +
         " bn.syns=" + std::to_string(r.bottleneck_syns) +
         " bn.qdrops=" + std::to_string(r.bottleneck_queue_drops) + "\n";
  out += "tcp.retransmits=" + std::to_string(r.tcp_retransmits) + "\n";
  out += "server.conns=" + std::to_string(r.server_connections_total) +
         " max_open=" + std::to_string(r.server_max_open) +
         " open_after_drain=" + std::to_string(r.server_open_after_drain) +
         "\n";
  for (const harness::ClientOutcome& c : r.clients) {
    out += "client " + std::to_string(c.id) +
           " arrival=" + std::to_string(c.arrival) +
           " resolved=" + std::to_string(c.resolved ? 1 : 0) +
           " complete=" + std::to_string(c.complete() ? 1 : 0) +
           " leaked=" + std::to_string(c.leaked_connections) +
           " page=" + hex_double(c.page_seconds()) + "\n";
  }
  for (const harness::QueueSummary& q : r.queues) {
    out += "queue " + q.label + " kind=" + q.kind +
           " enq=" + std::to_string(q.stats.enqueued_packets) +
           " deq=" + std::to_string(q.stats.dequeued_packets) +
           " drop=" + std::to_string(q.stats.dropped()) + "\n";
  }
  out += r.metrics.dump_text();
  return out;
}

void expect_identical(const std::string& expected, const std::string& actual,
                      const std::string& name) {
  if (expected != actual) {
    net::write_file("parallel_" + name + ".expected.txt", expected);
    net::write_file("parallel_" + name + ".actual.txt", actual);
  }
  EXPECT_EQ(expected, actual) << "thread-count divergence in " << name
                              << " (dumps written for CI artifact upload)";
}

harness::WorkloadConfig matrix_workload(harness::TopologyKind topology,
                                        std::uint64_t seed) {
  harness::WorkloadConfig config;
  config.topology = topology;
  config.num_clients = 8;
  config.master_seed = seed;
  config.mean_interarrival = sim::milliseconds(20);
  config.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  return config;
}

void check_workload_matrix(harness::TopologyKind topology, std::uint64_t seed,
                           const std::string& name) {
  harness::WorkloadConfig config = matrix_workload(topology, seed);
  config.threads = 1;
  const std::string base =
      workload_fingerprint(run_workload(config, harness::shared_site()));
  for (unsigned t : kThreadMatrix) {
    config.threads = t;
    const std::string run =
        workload_fingerprint(run_workload(config, harness::shared_site()));
    expect_identical(base, run,
                     name + "_seed" + std::to_string(seed) + "_T" +
                         std::to_string(t));
  }
}

TEST(ParallelDeterminism, StarThreadMatrixByteIdentical) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    check_workload_matrix(harness::TopologyKind::kStar, seed, "star");
  }
}

TEST(ParallelDeterminism, DumbbellThreadMatrixByteIdentical) {
  for (std::uint64_t seed : {1ull, 1337ull}) {
    check_workload_matrix(harness::TopologyKind::kDumbbell, seed, "dumbbell");
  }
}

// The classic single-queue driver and the sharded T=1 run agree on every
// shared surface. Two gauge families legitimately differ (DESIGN.md §14):
// peaks (taken per shard before the merge) and the client.* sample gauges,
// where set() means "last writer wins" in one registry but the shard merge
// sums one last-write per client shard. So the comparison is everything
// except the registry dump, plus counter-for-counter equality and the
// additive (inc/dec-style) gauges.
TEST(ParallelDeterminism, ShardedMatchesClassicDriver) {
  for (auto topology :
       {harness::TopologyKind::kStar, harness::TopologyKind::kDumbbell}) {
    harness::WorkloadConfig config = matrix_workload(topology, 5);
    config.threads = 0;
    const harness::WorkloadResult classic =
        run_workload(config, harness::shared_site());
    config.threads = 1;
    const harness::WorkloadResult sharded =
        run_workload(config, harness::shared_site());

    std::string a = workload_fingerprint(classic);
    std::string b = workload_fingerprint(sharded);
    a.resize(a.size() - classic.metrics.dump_text().size());
    b.resize(b.size() - sharded.metrics.dump_text().size());
    expect_identical(a, b, "classic_vs_sharded");
    EXPECT_EQ(classic.metrics.counters, sharded.metrics.counters);
    auto additive = [](const std::map<std::string, std::int64_t>& gauges) {
      std::map<std::string, std::int64_t> out;
      for (const auto& [name, value] : gauges) {
        if (name.rfind("client.", 0) != 0) out.emplace(name, value);
      }
      return out;
    };
    EXPECT_EQ(additive(classic.metrics.gauges),
              additive(sharded.metrics.gauges));
  }
}

// run_once: the per-packet client trace (the finest-grained observable — the
// golden-trace format) is identical at every thread count, star scenario
// table4 and WAN scenario table6.
TEST(ParallelDeterminism, RunOnceTraceThreadMatrix) {
  struct Pinned {
    const char* name;
    harness::ExperimentSpec spec;
  };
  const Pinned pinned[] = {
      {"table4", harness::golden_table4_spec()},
      {"table6", harness::golden_table6_spec()},
  };
  for (const Pinned& p : pinned) {
    harness::ExperimentSpec spec = p.spec;
    spec.threads = 1;
    const std::vector<net::TraceRecord> base =
        harness::capture_trace(spec, harness::shared_site());
    ASSERT_FALSE(base.empty());
    for (unsigned t : kThreadMatrix) {
      spec.threads = t;
      const std::vector<net::TraceRecord> run =
          harness::capture_trace(spec, harness::shared_site());
      const net::TraceDiff diff = net::diff_traces(base, run);
      if (!diff.identical) {
        net::write_file(std::string("parallel_") + p.name + "_T" +
                            std::to_string(t) + ".actual.trace",
                        net::trace_to_text(run));
        net::write_file(std::string("parallel_") + p.name + "_T" +
                            std::to_string(t) + ".diff.txt",
                        diff.report);
      }
      EXPECT_TRUE(diff.identical)
          << p.name << " trace diverged at T=" << t << " ("
          << diff.differing << " records differ, first at "
          << diff.first_diff << ")";
    }
  }
}

// run_once result fields (trace summary, page bounds, connection counters)
// across the matrix — and the sharded trace against the classic driver's,
// byte for byte.
TEST(ParallelDeterminism, RunOnceMatchesClassicDriver) {
  harness::ExperimentSpec spec = harness::golden_table4_spec();
  spec.threads = 0;
  const std::vector<net::TraceRecord> classic =
      harness::capture_trace(spec, harness::shared_site());
  spec.threads = 1;
  const std::vector<net::TraceRecord> sharded =
      harness::capture_trace(spec, harness::shared_site());
  const net::TraceDiff diff = net::diff_traces(classic, sharded);
  if (!diff.identical) {
    net::write_file("parallel_classic_vs_sharded.actual.trace",
                    net::trace_to_text(sharded));
    net::write_file("parallel_classic_vs_sharded.diff.txt", diff.report);
  }
  EXPECT_TRUE(diff.identical)
      << "sharded T=1 trace diverged from the classic driver\n"
      << diff.report;
}

// The soak harness's conservation/monotonicity oracles run at engine
// barriers against a merged registry view; they must stay green at T>1 and
// reach the same verdict and counters as the T=1 run.
TEST(ParallelDeterminism, SoakOraclesGreenAcrossThreads) {
  harness::SoakConfig config;
  config.num_clients = 20;
  config.master_seed = 11;
  config.horizon = sim::seconds(30);
  config.drain = sim::seconds(30);
  config.epoch = sim::seconds(2);
  config.timeline = harness::default_soak_timeline();
  config.client = harness::robot_config(client::ProtocolMode::kHttp11Pipelined);

  config.threads = 1;
  const harness::SoakResult base =
      run_soak(config, harness::shared_site());
  EXPECT_TRUE(base.ok()) << (base.violations.empty()
                                 ? "unresolved client or leak"
                                 : base.violations.front());
  for (unsigned t : {2u, 4u}) {
    config.threads = t;
    const harness::SoakResult run =
        run_soak(config, harness::shared_site());
    EXPECT_TRUE(run.ok()) << "soak oracle violation at T=" << t << ": "
                          << (run.violations.empty()
                                  ? "unresolved client or leak"
                                  : run.violations.front());
    EXPECT_EQ(run.epochs_checked, base.epochs_checked);
    expect_identical(workload_fingerprint(base.workload),
                     workload_fingerprint(run.workload),
                     "soak_T" + std::to_string(t));
  }
}

}  // namespace
}  // namespace hsim
