// Chaos-soak suite (LABEL soak — dedicated CI step, 1200 s timeout).
//
// The deterministic soak harness drives a fleet through the redundant
// dumbbell while a scripted multi-fault timeline (bottleneck flap, gate
// crash, bnA.up queue wedge, second flap) hits the topology, with the
// invariant oracles sweeping every epoch:
//
//   N=100  — every oracle green, every client resolved and attributed, the
//            faults demonstrably hit the data path, and two same-seed runs
//            produce bit-identical registries. On oracle failure the run
//            writes soak_n100.failing.trace / soak_n100.metrics.txt next to
//            the binary for the CI artifact uploader.
//   N=1000 — the scale guarantee: the run terminates, every client reaches
//            a verdict, every permanent failure carries an attribution, and
//            no connection leaks on either side.
#include <gtest/gtest.h>

#include <string>

#include "harness/experiment.hpp"
#include "harness/soak.hpp"

namespace hsim {
namespace {

harness::SoakConfig soak_config(unsigned n, client::ProtocolMode mode) {
  harness::SoakConfig config;
  config.num_clients = n;
  config.client = harness::robot_config(mode);
  config.client.max_attempts = 8;
  config.client.request_deadline = sim::seconds(10);
  config.client.retry_backoff = sim::milliseconds(200);
  config.client.retry_budget = 8;
  config.client.retry_jitter = 0.5;
  config.server = server::apache_config();
  config.timeline = harness::default_soak_timeline();
  config.epoch = sim::seconds(5);
  config.horizon = sim::seconds(300);
  config.drain = sim::seconds(120);
  config.master_seed = 42;
  return config;
}

void expect_green(const harness::SoakResult& result) {
  for (const std::string& v : result.violations) ADD_FAILURE() << v;
  EXPECT_EQ(result.violations_suppressed, 0u);
  EXPECT_TRUE(result.workload.all_resolved());
  EXPECT_EQ(result.workload.server_open_after_drain, 0u);
  for (const harness::ClientOutcome& c : result.workload.clients) {
    EXPECT_EQ(c.leaked_connections, 0u) << "client " << c.id;
    EXPECT_EQ(c.stats.requests_failed, c.stats.failures.size())
        << "client " << c.id;
  }
  EXPECT_TRUE(result.ok());
}

TEST(Soak, N100MultiFaultOraclesGreen) {
  harness::SoakConfig config =
      soak_config(100, client::ProtocolMode::kHttp11Pipelined);
  config.verify_cache = true;
  config.failing_artifact_prefix = "soak_n100";
  const harness::SoakResult result =
      harness::run_soak(config, harness::shared_site());

  expect_green(result);
  EXPECT_GT(result.epochs_checked, 0u);
  // Not vacuous: the timeline genuinely hit the data path — the crash
  // flushed or dropped packets, and the flap drove a failover and failback.
  EXPECT_GT(result.router_crash_flushed + result.router_dropped_crashed, 0u);
  EXPECT_GT(result.failovers, 0u);
  EXPECT_GT(result.failbacks, 0u);
  // Clients that completed got the site byte-exact despite the faults.
  unsigned exact = 0;
  for (const harness::ClientOutcome& c : result.workload.clients) {
    if (c.complete()) {
      EXPECT_TRUE(c.byte_exact) << "client " << c.id;
      ++exact;
    }
  }
  EXPECT_GT(exact, 0u);
}

TEST(Soak, N100SameSeedBitIdentical) {
  const harness::SoakConfig config =
      soak_config(100, client::ProtocolMode::kHttp10Parallel);
  const harness::SoakResult a =
      harness::run_soak(config, harness::shared_site());
  const harness::SoakResult b =
      harness::run_soak(config, harness::shared_site());
  EXPECT_EQ(a.workload.completed(), b.workload.completed());
  EXPECT_EQ(a.workload.failed(), b.workload.failed());
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retry_tokens_consumed, b.retry_tokens_consumed);
  EXPECT_EQ(a.retry_budget_exhausted, b.retry_budget_exhausted);
  EXPECT_EQ(a.failovers, b.failovers);
  EXPECT_EQ(a.failbacks, b.failbacks);
  ASSERT_EQ(a.workload.metrics.dump_text(), b.workload.metrics.dump_text());
}

TEST(Soak, N1000TerminatesEveryClientAttributed) {
  harness::SoakConfig config =
      soak_config(1000, client::ProtocolMode::kHttp11Pipelined);
  // Scale knobs: longer arrival spread, no O(N·site) cache verification,
  // no hop trace.
  config.mean_interarrival = sim::milliseconds(20);
  config.horizon = sim::seconds(600);
  config.drain = sim::seconds(120);
  const harness::SoakResult result =
      harness::run_soak(config, harness::shared_site());

  expect_green(result);
  EXPECT_GT(result.epochs_checked, 0u);
  EXPECT_GT(result.workload.completed(), 0u);
  EXPECT_GT(result.failovers, 0u);
}

}  // namespace
}  // namespace hsim
