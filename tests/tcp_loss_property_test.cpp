// Property sweep: TCP must deliver byte streams reliably and in order under
// any combination of loss rate, direction, transfer size and MSS — and the
// full HTTP stack must complete its workload over lossy links.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using tcp::ConnectionPtr;
using tcp::TcpOptions;

struct LossCase {
  double drop_up;    // client -> server
  double drop_down;  // server -> client
  std::size_t transfer;
  std::uint32_t mss;
  std::uint64_t seed;
};

class TcpLossProperty : public ::testing::TestWithParam<int> {};

TEST_P(TcpLossProperty, ReliableDeliveryUnderLoss) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1543 + 17);
  LossCase c;
  c.drop_up = rng.uniform_real(0.0, 0.12);
  c.drop_down = rng.uniform_real(0.0, 0.12);
  c.transfer = static_cast<std::size_t>(rng.uniform(1, 150'000));
  c.mss = rng.chance(0.3) ? 536 : 1460;
  c.seed = rng.next_u64();

  net::ChannelConfig cfg =
      net::ChannelConfig::symmetric(2'000'000, sim::milliseconds(30));
  cfg.a_to_b.random_drop_probability = c.drop_up;
  cfg.b_to_a.random_drop_probability = c.drop_down;
  TestNet net(cfg, c.seed);

  std::vector<std::uint8_t> received;
  net.server.listen(
      80,
      [&](ConnectionPtr conn) {
        conn->set_on_data([&received, raw = conn.get()] {
          auto b = raw->read_all().to_vector();
          received.insert(received.end(), b.begin(), b.end());
        });
      },
      TcpOptions{});

  TcpOptions copts;
  copts.mss = c.mss;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, copts);
  const auto payload = pattern_bytes(c.transfer, c.seed ^ 0xBEEF);
  std::size_t off = 0;
  auto pump = [&] {
    off += conn->send(std::span<const std::uint8_t>(payload.data() + off,
                                                    payload.size() - off));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);
  net.queue.run_until(sim::seconds(1200));
  ASSERT_EQ(received.size(), payload.size())
      << "drop_up=" << c.drop_up << " drop_down=" << c.drop_down
      << " mss=" << c.mss;
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TcpLossProperty, ::testing::Range(0, 16));

class HttpOverLossProperty : public ::testing::TestWithParam<int> {};

TEST_P(HttpOverLossProperty, PipelinedVisitCompletesOverLossyWan) {
  const double drop = 0.005 + 0.005 * GetParam();  // 0.5% .. 2.5%
  harness::ExperimentSpec spec;
  spec.network = harness::wan_profile();
  spec.network.delay_jitter = 0.05;
  auto cfg = spec.network.channel_config();
  // run_once builds its own channel from the profile; emulate loss by
  // driving the rig manually here instead.
  sim::EventQueue queue;
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 5);
  cfg.a_to_b.random_drop_probability = drop;
  cfg.b_to_a.random_drop_probability = drop;
  net::Channel channel(queue, cfg, rng.fork());
  tcp::Host client_host(queue, 1, "c", rng.fork());
  tcp::Host server_host(queue, 2, "s", rng.fork());
  channel.attach_a(&client_host);
  channel.attach_b(&server_host);
  client_host.attach_uplink(&channel.uplink_from_a());
  server_host.attach_uplink(&channel.uplink_from_b());
  server::HttpServer server(
      server_host, server::StaticSite::from_microscape(harness::shared_site()),
      server::apache_config(), rng.fork());
  server.start(80);
  client::Robot robot(
      client_host, 2, 80,
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  bool done = false;
  robot.start_first_visit("/index.html", [&] { done = true; });
  queue.run_until(sim::seconds(1200));
  EXPECT_TRUE(done) << "drop=" << drop;
  EXPECT_EQ(robot.stats().responses_ok, 43u) << "drop=" << drop;
  EXPECT_EQ(robot.stats().body_bytes,
            harness::shared_site().html.size() +
                harness::shared_site().total_image_bytes());
}

INSTANTIATE_TEST_SUITE_P(Sweep, HttpOverLossProperty, ::testing::Range(0, 5));

}  // namespace
}  // namespace hsim
