#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/channel.hpp"
#include "sim/event_queue.hpp"

namespace hsim::net {
namespace {

class CollectingSink : public PacketSink {
 public:
  explicit CollectingSink(sim::EventQueue& q) : queue_(q) {}
  void deliver(Packet packet) override {
    arrivals.emplace_back(queue_.now(), std::move(packet));
  }
  std::vector<std::pair<sim::Time, Packet>> arrivals;

 private:
  sim::EventQueue& queue_;
};

Packet make_packet(std::size_t payload_bytes) {
  Packet p;
  p.payload = buf::Bytes(payload_bytes, 0xAB);
  return p;
}

TEST(LinkTest, InfiniteBandwidthDeliversAfterPropagationDelay) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.propagation_delay = sim::milliseconds(45);
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  link.transmit(make_packet(1000));
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, sim::milliseconds(45));
}

TEST(LinkTest, SerialisationDelayMatchesBandwidth) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;  // 1000 bytes/sec
  cfg.propagation_delay = 0;
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  link.transmit(make_packet(960));  // 1000 wire bytes with 40 B header
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, sim::seconds(1));
}

TEST(LinkTest, BackToBackPacketsSerialiseSequentially) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  link.transmit(make_packet(960));
  link.transmit(make_packet(960));
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].first, sim::seconds(1));
  EXPECT_EQ(sink.arrivals[1].first, sim::seconds(2));
}

TEST(LinkTest, QueueOverflowDropsTail) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;
  cfg.queue_limit_packets = 2;
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  // First packet starts transmitting immediately (not queued); two fit in the
  // queue; the rest drop.
  for (int i = 0; i < 6; ++i) link.transmit(make_packet(960));
  q.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(link.stats().packets_dropped_queue, 3u);
}

TEST(LinkTest, RandomDropInjection) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.random_drop_probability = 1.0;
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  link.transmit(make_packet(100));
  q.run();
  EXPECT_TRUE(sink.arrivals.empty());
  EXPECT_EQ(link.stats().packets_dropped_random, 1u);
}

TEST(LinkTest, StatsCountWireBytes) {
  sim::EventQueue q;
  CollectingSink sink(q);
  Link link(q, LinkConfig{}, sim::Rng(1));
  link.set_sink(&sink);
  link.transmit(make_packet(100));
  link.transmit(make_packet(200));
  q.run();
  EXPECT_EQ(link.stats().packets_sent, 2u);
  EXPECT_EQ(link.stats().bytes_sent, 100u + 200u + 2 * kIpTcpHeaderBytes);
}

TEST(LinkTest, JitterPreservesOrdering) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.propagation_delay = sim::milliseconds(50);
  cfg.delay_jitter = 0.5;
  Link link(q, cfg, sim::Rng(99));
  link.set_sink(&sink);
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(10);
    p.tcp.seq = static_cast<std::uint32_t>(i);
    link.transmit(std::move(p));
  }
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 50u);
  for (std::size_t i = 1; i < sink.arrivals.size(); ++i) {
    EXPECT_LE(sink.arrivals[i - 1].first, sink.arrivals[i].first);
    EXPECT_EQ(sink.arrivals[i].second.tcp.seq, i);
  }
}

TEST(LinkTest, PayloadSizerShrinksSerialisationTime) {
  sim::EventQueue q;
  CollectingSink sink(q);
  LinkConfig cfg;
  cfg.bandwidth_bps = 8000;
  Link link(q, cfg, sim::Rng(1));
  link.set_sink(&sink);
  // Modem-style compression: the 960-byte payload crosses the wire as 460.
  link.set_payload_sizer([](const Packet&) { return std::size_t{460}; });
  link.transmit(make_packet(960));
  q.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, sim::milliseconds(500));
  // The delivered packet still carries its full payload.
  EXPECT_EQ(sink.arrivals[0].second.payload.size(), 960u);
}

TEST(ChannelTest, SymmetricConfigSplitsRtt) {
  const ChannelConfig cfg =
      ChannelConfig::symmetric(1'000'000, sim::milliseconds(90));
  EXPECT_EQ(cfg.a_to_b.propagation_delay, sim::milliseconds(45));
  EXPECT_EQ(cfg.b_to_a.propagation_delay, sim::milliseconds(45));
}

TEST(ChannelTest, TraceSeesBothDirections) {
  sim::EventQueue q;
  Channel ch(q, ChannelConfig::symmetric(0, sim::milliseconds(10)),
             sim::Rng(5));
  CollectingSink a(q), b(q);
  ch.attach_a(&a);
  ch.attach_b(&b);
  PacketTrace trace(/*client_addr=*/1);
  ch.set_trace(&trace);

  Packet from_a = make_packet(10);
  from_a.src = 1;
  from_a.dst = 2;
  ch.uplink_from_a().transmit(std::move(from_a));
  Packet from_b = make_packet(20);
  from_b.src = 2;
  from_b.dst = 1;
  ch.uplink_from_b().transmit(std::move(from_b));
  q.run();

  EXPECT_EQ(b.arrivals.size(), 1u);
  EXPECT_EQ(a.arrivals.size(), 1u);
  ASSERT_EQ(trace.records().size(), 2u);
  const TraceSummary s = trace.summarize();
  EXPECT_EQ(s.packets, 2u);
  EXPECT_EQ(s.packets_client_to_server, 1u);
  EXPECT_EQ(s.packets_server_to_client, 1u);
}

TEST(FlagsToStringTest, RendersCombinations) {
  EXPECT_EQ(flags_to_string(flag::kSyn), "S");
  EXPECT_EQ(flags_to_string(flag::kSyn | flag::kAck), "SA");
  EXPECT_EQ(flags_to_string(flag::kFin | flag::kAck), "FA");
  EXPECT_EQ(flags_to_string(flag::kRst), "R");
  EXPECT_EQ(flags_to_string(0), ".");
}

}  // namespace
}  // namespace hsim::net
