// The keep-alive race, promoted from examples/proxy_keepalive_trap.cpp's
// family of hazards into a regression test: a request that arrives just as
// the server's idle_timeout fires must be retried cleanly by the client —
// never silently lost.
//
// The server's idle timeout is swept in 1 ms steps across the client's
// natural think-time window, so somewhere in the sweep the server's
// FIN (graceful close) or RST (naive close) crosses an in-flight request on
// the wire. Every run must still complete byte-exact, and the robot's
// retry partition from the failure-recovery work must attribute the races:
// graceful closes surface as retries_after_close, naive closes as
// retries_after_reset. The server runs with the admission machinery engaged
// (max_concurrent_connections=1, kQueue) so the race exercises the new
// admission paths too.
#include <gtest/gtest.h>

#include "harness/chaos.hpp"
#include "harness/experiment.hpp"

namespace hsim {
namespace {

struct SweepOutcome {
  unsigned runs = 0;
  unsigned complete = 0;
  unsigned byte_exact = 0;
  std::size_t retries_after_close = 0;
  std::size_t retries_after_reset = 0;
};

SweepOutcome sweep_idle_timeout(server::CloseStyle style,
                                client::ProtocolMode mode) {
  SweepOutcome out;
  // The robot pays ~5 ms of client CPU per response, so server idle windows
  // of a few milliseconds guarantee closes between requests; sweeping in
  // 1 ms steps lands the close on top of an in-flight request somewhere.
  for (int ms = 2; ms <= 30; ++ms) {
    harness::ExperimentSpec spec;
    spec.network = harness::lan_profile();
    spec.server = server::apache_config();
    spec.server.idle_timeout = sim::milliseconds(ms);
    spec.server.close_style = style;
    spec.server.listen_backlog = 8;
    spec.server.max_concurrent_connections = 1;
    spec.server.admission_policy = server::AdmissionPolicy::kQueue;
    spec.client = harness::robot_config(mode);
    spec.client.max_attempts = 8;
    spec.seed = 21;

    bool byte_exact = false;
    spec.inspect_robot = [&byte_exact](client::Robot& robot) {
      byte_exact = harness::cache_matches_site(
          robot.cache(), harness::shared_site(), "/index.html");
    };
    const harness::RunResult res =
        harness::run_once(spec, harness::shared_site());

    ++out.runs;
    if (res.robot.complete) ++out.complete;
    if (byte_exact) ++out.byte_exact;
    out.retries_after_close += res.robot.retries_after_close;
    out.retries_after_reset += res.robot.retries_after_reset;

    EXPECT_TRUE(res.robot.complete)
        << "idle_timeout " << ms << " ms: page did not complete ("
        << res.robot.requests_failed << " failed requests)";
    EXPECT_TRUE(byte_exact)
        << "idle_timeout " << ms << " ms: cache not byte-exact";
  }
  return out;
}

TEST(KeepAliveRace, GracefulCloseRaceIsRetriedNeverLost) {
  const SweepOutcome out =
      sweep_idle_timeout(server::CloseStyle::kGraceful,
                         client::ProtocolMode::kHttp11Persistent);
  EXPECT_EQ(out.complete, out.runs);
  EXPECT_EQ(out.byte_exact, out.runs);
  // The sweep must actually exercise the race: at least one run re-issued a
  // request after the lane died under it with a FIN.
  EXPECT_GE(out.retries_after_close, 1u)
      << "sweep never hit the FIN-crosses-request race; widen the sweep";
}

TEST(KeepAliveRace, NaiveCloseRaceIsRetriedNeverLost) {
  // The RST side of the partition needs pipelining: a naive closer's RST is
  // sent immediately and overtakes response bytes still queued behind the
  // congestion window, so the client sees the RST before the FIN — exactly
  // the paper's pipelining-close diagnosis. (In persistent mode the FIN
  // always arrives first and the race lands on the close side.)
  const SweepOutcome out =
      sweep_idle_timeout(server::CloseStyle::kNaive,
                         client::ProtocolMode::kHttp11Pipelined);
  EXPECT_EQ(out.complete, out.runs);
  EXPECT_EQ(out.byte_exact, out.runs);
  EXPECT_GE(out.retries_after_reset, 1u)
      << "sweep never hit the RST-crosses-request race; widen the sweep";
}

}  // namespace
}  // namespace hsim
