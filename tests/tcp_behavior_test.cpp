// Focused TCP behaviour tests beyond the basic transfer/congestion suites:
// delayed-ACK piggybacking, initial window options, MSS variants, window
// advertisement, determinism, and abort semantics.
#include <gtest/gtest.h>

#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using namespace testutil;
using tcp::ConnectionPtr;
using tcp::State;
using tcp::TcpOptions;

TEST(TcpBehaviorTest, AckPiggybacksOnPromptResponse) {
  // Server app replies immediately: no pure-ACK packet should appear from
  // the server at all (the ACK rides the response segment).
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(10)));
  net.server.listen(
      80,
      [](ConnectionPtr c) {
        c->set_on_data([raw = c.get()] {
          (void)raw->read_all();
          raw->send("RESPONSE");
        });
      },
      TcpOptions{});
  TcpOptions copts;
  copts.nodelay = true;
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, copts);
  Collector rx;
  rx.attach(conn);
  conn->set_on_connected([&] { conn->send("REQ"); });
  net.queue.run_until(sim::seconds(5));
  EXPECT_EQ(rx.as_string(), "RESPONSE");
  std::size_t server_pure_acks = 0;
  for (const auto& r : net.trace.records()) {
    if (r.src == kServerAddr && r.payload_bytes == 0 &&
        (r.flags & net::flag::kSyn) == 0 && (r.flags & net::flag::kFin) == 0) {
      ++server_pure_acks;
    }
  }
  EXPECT_EQ(server_pure_acks, 0u);
}

TEST(TcpBehaviorTest, DelayedAckFiresWhenNoResponseComes) {
  TestNet net(net::ChannelConfig::symmetric(0, sim::milliseconds(10)));
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  conn->set_on_connected([&] { conn->send("no reply expected"); });
  net.queue.run_until(sim::seconds(5));
  ASSERT_NE(server_conn, nullptr);
  EXPECT_GE(server_conn->stats().delayed_acks_fired, 1u);
}

TEST(TcpBehaviorTest, Mss536ProducesMoreSegmentsThan1460) {
  auto run = [](std::uint32_t mss) {
    TestNet net;
    std::size_t received = 0;
    net.server.listen(
        80,
        [&](ConnectionPtr c) {
          c->set_on_data(
              [&received, raw = c.get()] { received += raw->read_all().size(); });
        },
        TcpOptions{});
    TcpOptions opts;
    opts.mss = mss;
    ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
    const auto payload = pattern_bytes(50'000);
    std::size_t off = 0;
    auto pump = [&] {
      off += conn->send(std::span<const std::uint8_t>(payload.data() + off,
                                                      payload.size() - off));
    };
    conn->set_on_connected(pump);
    conn->set_on_send_space(pump);
    net.queue.run();
    EXPECT_EQ(received, payload.size());
    std::size_t data_packets = 0;
    for (const auto& r : net.trace.records()) {
      if (r.src == kClientAddr && r.payload_bytes > 0) ++data_packets;
    }
    return data_packets;
  };
  const std::size_t seg536 = run(536);
  const std::size_t seg1460 = run(1460);
  EXPECT_GT(seg536, 2 * seg1460);
}

TEST(TcpBehaviorTest, IdenticalSeedsProduceIdenticalTraces) {
  auto run = [](std::uint64_t seed) {
    TestNet net(net::ChannelConfig::symmetric(1'000'000,
                                              sim::milliseconds(40)),
                seed);
    std::vector<std::uint8_t> got;
    net.server.listen(
        80,
        [&](ConnectionPtr c) {
          c->set_on_data([&got, raw = c.get()] {
            auto b = raw->read_all().to_vector();
            got.insert(got.end(), b.begin(), b.end());
          });
        },
        TcpOptions{});
    ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
    const auto payload = pattern_bytes(40'000);
    std::size_t off = 0;
    auto pump = [&] {
      off += conn->send(std::span<const std::uint8_t>(payload.data() + off,
                                                      payload.size() - off));
    };
    conn->set_on_connected(pump);
    conn->set_on_send_space(pump);
    net.queue.run();
    std::vector<std::tuple<sim::Time, std::uint32_t, std::uint32_t>> trace;
    for (const auto& r : net.trace.records()) {
      trace.emplace_back(r.time, r.seq, r.payload_bytes);
    }
    return trace;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));  // jitter differs across seeds
}

TEST(TcpBehaviorTest, ReceiveWindowNeverExceeded) {
  // A tiny receive buffer with an app that drains slowly: the sender must
  // respect the advertised window (never more unacked data than rwnd).
  TestNet net;
  TcpOptions sopts;
  sopts.recv_buffer = 4096;
  std::size_t received = 0;
  ConnectionPtr server_conn;
  // Held at test scope so the self-rescheduling closure below can refer to
  // itself weakly (a strong self-capture is a refcount cycle and leaks).
  std::shared_ptr<std::function<void()>> drain;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        server_conn = c;
        // Drain only 1 KB every 50 ms.
        drain = std::make_shared<std::function<void()>>();
        *drain = [&net, &received, raw = c.get(),
                  weak = std::weak_ptr<std::function<void()>>(drain)] {
          received += raw->read_all().size();
          if (auto next = weak.lock()) {
            net.queue.schedule_in(sim::milliseconds(50), *next);
          }
        };
        net.queue.schedule_in(sim::milliseconds(50), *drain);
      },
      sopts);
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  const auto payload = pattern_bytes(60'000);
  std::size_t off = 0;
  auto pump = [&] {
    off += conn->send(std::span<const std::uint8_t>(payload.data() + off,
                                                    payload.size() - off));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);
  net.queue.run_until(sim::seconds(60));
  EXPECT_EQ(received, payload.size());
  EXPECT_EQ(conn->stats().timeouts, 0u);  // flow control, not loss recovery
}

TEST(TcpBehaviorTest, AbortMidTransferStopsEverything) {
  TestNet net(net::ChannelConfig::symmetric(1'000'000, sim::milliseconds(20)));
  ConnectionPtr server_conn;
  net.server.listen(80, [&](ConnectionPtr c) { server_conn = c; },
                    TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  const auto payload = pattern_bytes(100'000);
  std::size_t off = 0;
  auto pump = [&] {
    off += conn->send(std::span<const std::uint8_t>(payload.data() + off,
                                                    payload.size() - off));
  };
  conn->set_on_connected(pump);
  conn->set_on_send_space(pump);
  bool server_reset = false;
  net.queue.schedule_at(sim::milliseconds(200), [&] {
    if (server_conn) server_conn->set_on_reset([&] { server_reset = true; });
    conn->abort();
  });
  net.queue.run_until(sim::seconds(10));
  EXPECT_TRUE(server_reset);
  EXPECT_EQ(conn->state(), State::kClosed);
  EXPECT_EQ(net.client.open_connections(), 0u);
  EXPECT_EQ(net.server.open_connections(), 0u);
}

TEST(TcpBehaviorTest, InitialCwndOptionControlsFirstBurst) {
  for (const std::uint32_t segs : {1u, 2u, 4u}) {
    TestNet net(net::ChannelConfig::symmetric(100'000'000,
                                              sim::milliseconds(100)));
    net.server.listen(
        80,
        [](ConnectionPtr c) {
          c->set_on_data([raw = c.get()] { (void)raw->read_all(); });
        },
        TcpOptions{});
    TcpOptions opts;
    opts.initial_cwnd_segments = segs;
    ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
    const auto payload = pattern_bytes(20'000);
    conn->set_on_connected([&] {
      conn->send(
          std::span<const std::uint8_t>(payload.data(), payload.size()));
    });
    // Run just past the first burst (handshake 100ms + epsilon).
    net.queue.run_until(sim::milliseconds(140));
    std::size_t first_burst = 0;
    for (const auto& r : net.trace.records()) {
      if (r.src == kClientAddr && r.payload_bytes > 0) ++first_burst;
    }
    EXPECT_EQ(first_burst, segs) << segs;
  }
}

TEST(TcpBehaviorTest, PshSetOnFinalSegmentOfBurst) {
  TestNet net;
  net.server.listen(80, [](ConnectionPtr) {}, TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  const auto payload = pattern_bytes(4000);
  conn->set_on_connected([&] {
    conn->send(std::span<const std::uint8_t>(payload.data(), payload.size()));
  });
  net.queue.run_until(sim::seconds(5));
  // Find the last data segment from the client; it must carry PSH.
  const net::TraceRecord* last_data = nullptr;
  for (const auto& r : net.trace.records()) {
    if (r.src == kClientAddr && r.payload_bytes > 0) last_data = &r;
  }
  ASSERT_NE(last_data, nullptr);
  EXPECT_TRUE((last_data->flags & net::flag::kPsh) != 0);
}

TEST(TcpBehaviorTest, ConnectionStatsAccounting) {
  TestNet net;
  std::size_t received = 0;
  net.server.listen(
      80,
      [&](ConnectionPtr c) {
        c->set_on_data(
            [&received, raw = c.get()] { received += raw->read_all().size(); });
      },
      TcpOptions{});
  ConnectionPtr conn = net.client.connect(kServerAddr, 80, TcpOptions{});
  const auto payload = pattern_bytes(10'000);
  conn->set_on_connected([&] {
    conn->send(std::span<const std::uint8_t>(payload.data(), payload.size()));
  });
  net.queue.run();
  EXPECT_EQ(conn->stats().bytes_sent, payload.size());
  EXPECT_GE(conn->stats().segments_sent, payload.size() / 1460);
  EXPECT_EQ(conn->stats().retransmits, 0u);
}

}  // namespace
}  // namespace hsim
