// Caching-proxy tests: fresh hits, revalidated hits, client-conditional
// passthrough, and invalidation when the origin's content changes.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "http/parser.hpp"
#include "proxy/proxy.hpp"
#include "server/server.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

constexpr net::IpAddr kClientAddr = 1;
constexpr net::IpAddr kProxyAddr = 2;
constexpr net::IpAddr kOriginAddr = 3;

struct Router : net::PacketSink {
  std::map<net::IpAddr, net::Link*> routes;
  void deliver(net::Packet p) override {
    if (auto it = routes.find(p.dst); it != routes.end()) {
      it->second->transmit(std::move(p));
    }
  }
};

struct CacheRig {
  explicit CacheRig(sim::Time ttl)
      : rng(41),
        cp(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(10)),
           rng.fork()),
        po(queue, net::ChannelConfig::symmetric(0, sim::milliseconds(40)),
           rng.fork()),
        client(queue, kClientAddr, "client", rng.fork()),
        proxy_host(queue, kProxyAddr, "proxy", rng.fork()),
        origin(queue, kOriginAddr, "origin", rng.fork()),
        proxy_uplink(queue, net::LinkConfig{}, rng.fork()),
        origin_server(origin,
                      server::StaticSite::from_microscape(
                          harness::shared_site()),
                      server::apache_config(), rng.fork()) {
    cp.attach_a(&client);
    cp.attach_b(&proxy_host);
    po.attach_a(&proxy_host);
    po.attach_b(&origin);
    client.attach_uplink(&cp.uplink_from_a());
    origin.attach_uplink(&po.uplink_from_b());
    router.routes[kClientAddr] = &cp.uplink_from_b();
    router.routes[kOriginAddr] = &po.uplink_from_a();
    proxy_uplink.set_sink(&router);
    proxy_host.attach_uplink(&proxy_uplink);
    origin_server.start(80);

    proxy::HttpProxyConfig pc;
    pc.origin_addr = kOriginAddr;
    pc.enable_cache = true;
    pc.cache_fresh_ttl = ttl;
    proxy = std::make_unique<proxy::HttpProxy>(proxy_host, pc);
    proxy->start(8080);
  }

  /// One GET through the proxy on a fresh connection; returns the response.
  std::optional<http::Response> get(const std::string& target,
                                    const std::string& extra_header = "") {
    auto conn = client.connect(kProxyAddr, 8080, tcp::TcpOptions{});
    http::ResponseParser parser;
    parser.push_request_context(http::Method::kGet);
    std::optional<http::Response> result;
    conn->set_on_data([&, raw = conn.get()] {
      const auto b = raw->read_all().to_vector();
      parser.feed({b.data(), b.size()});
      if (auto r = parser.next()) result = std::move(*r);
    });
    conn->set_on_connected([&, raw = conn.get()] {
      std::string wire = "GET " + target + " HTTP/1.1\r\nHost: x\r\n";
      wire += extra_header;
      wire += "\r\n";
      raw->send(wire);
      raw->shutdown_send();
    });
    queue.run_until(queue.now() + sim::seconds(60));
    return result;
  }

  sim::EventQueue queue;
  sim::Rng rng;
  net::Channel cp, po;
  tcp::Host client, proxy_host, origin;
  net::Link proxy_uplink;
  Router router;
  server::HttpServer origin_server;
  std::unique_ptr<proxy::HttpProxy> proxy;
};

TEST(CachingProxyTest, SecondFetchRevalidatesInsteadOfRefetching) {
  CacheRig rig(/*ttl=*/0);  // always revalidate
  const auto first = rig.get("/images/img05.gif");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, 200);
  const std::uint64_t upstream_after_first =
      rig.proxy->stats().upstream_body_bytes;
  EXPECT_EQ(rig.proxy->stats().cache_stores, 1u);

  const auto second = rig.get("/images/img05.gif");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->body, first->body);
  // No additional entity bytes crossed the proxy->origin hop.
  EXPECT_EQ(rig.proxy->stats().upstream_body_bytes, upstream_after_first);
  EXPECT_EQ(rig.proxy->stats().cache_revalidated_hits, 1u);
  // The origin answered the revalidation with a 304.
  EXPECT_EQ(rig.origin_server.stats().responses_304, 1u);
}

TEST(CachingProxyTest, FreshTtlServesWithoutContactingOrigin) {
  CacheRig rig(/*ttl=*/sim::seconds(600));
  ASSERT_TRUE(rig.get("/images/img05.gif").has_value());
  const std::uint64_t upstream_conns =
      rig.proxy->stats().upstream_connections;
  const auto second = rig.get("/images/img05.gif");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(rig.proxy->stats().cache_fresh_hits, 1u);
  // No new upstream connection for the second fetch.
  EXPECT_EQ(rig.proxy->stats().upstream_connections, upstream_conns);
  // The served copy carries an Age header.
  EXPECT_TRUE(second->headers.contains("Age"));
}

TEST(CachingProxyTest, ClientConditionalGets304FromProxy) {
  CacheRig rig(/*ttl=*/sim::seconds(600));
  const auto first = rig.get("/images/img05.gif");
  ASSERT_TRUE(first.has_value());
  const auto etag = first->headers.get("ETag");
  ASSERT_TRUE(etag.has_value());
  const auto second = rig.get(
      "/images/img05.gif",
      "If-None-Match: " + std::string(*etag) + "\r\n");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 304);
  EXPECT_TRUE(second->body.empty());
}

TEST(CachingProxyTest, ChangedOriginContentReplacesCacheEntry) {
  CacheRig rig(/*ttl=*/0);
  const auto first = rig.get("/images/img05.gif");
  ASSERT_TRUE(first.has_value());
  // Revise the resource at the origin.
  std::vector<std::uint8_t> new_data(777, 0x3C);
  ASSERT_TRUE(rig.origin_server.site().update(
      "/images/img05.gif", new_data, http::kSimulationEpoch + 100));
  const auto second = rig.get("/images/img05.gif");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, 200);
  EXPECT_EQ(second->body, new_data);
  EXPECT_EQ(rig.proxy->stats().cache_stores, 2u);  // re-stored
  // And a third fetch revalidates the new entry successfully.
  const auto third = rig.get("/images/img05.gif");
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->body, new_data);
  EXPECT_EQ(rig.proxy->stats().cache_revalidated_hits, 1u);
}

TEST(CachingProxyTest, DifferentTargetsCachedIndependently) {
  CacheRig rig(/*ttl=*/sim::seconds(600));
  ASSERT_TRUE(rig.get("/images/img05.gif").has_value());
  ASSERT_TRUE(rig.get("/images/img06.gif").has_value());
  EXPECT_EQ(rig.proxy->stats().cache_stores, 2u);
  EXPECT_EQ(rig.proxy->stats().cache_misses, 2u);
  rig.get("/images/img05.gif");
  rig.get("/images/img06.gif");
  EXPECT_EQ(rig.proxy->stats().cache_fresh_hits, 2u);
}

}  // namespace
}  // namespace hsim
