// Laws of the sharded engine and the EventKey-ordered queue.
//
// Three families:
//   - EventQueue's sharded surface: the canonical (when, sched, src, seq)
//     order, schedule_cross's no-past-clamp contract, and the cancellation /
//     lazy-compaction laws ported from event_queue_test.cpp onto the extended
//     key (cancelling cross-shard events, purge-on-peek, pending counts).
//   - ShardedEngine rounds: lookahead is never violated by a legal schedule,
//     the violation detector fires on a deliberately overstated lookahead,
//     messages are conserved across shard boundaries (ping-pong and a real
//     net::Link crossing), and epochs fire at barriers with exactly the
//     events before the epoch instant executed.
//   - Thread-count invariance at the engine level: a scripted multi-shard
//     cascade produces an identical per-shard execution log at T=1/2/3/4.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/shard.hpp"
#include "sim/time.hpp"

namespace hsim {
namespace {

using sim::EventKey;
using sim::EventQueue;
using sim::ShardedEngine;
using sim::Time;

// ---- EventKey ordering ----------------------------------------------------

TEST(EventKeyTest, OrdersLexicographically) {
  const EventKey base{100, 50, 2, 7};
  EXPECT_FALSE(base < base);
  EXPECT_TRUE((EventKey{99, 99, 9, 9}) < base);   // earlier fire time wins
  EXPECT_TRUE((EventKey{100, 49, 9, 9}) < base);  // then earlier schedule time
  EXPECT_TRUE((EventKey{100, 50, 1, 9}) < base);  // then lower source shard
  EXPECT_TRUE((EventKey{100, 50, 2, 6}) < base);  // then lower sequence
  EXPECT_TRUE(base < (EventKey{100, 50, 2, 8}));
}

// ---- EventQueue sharded surface -------------------------------------------

TEST(ShardQueueTest, CrossEventsInterleaveCanonicallyWithLocals) {
  EventQueue q;
  q.set_shard(2);
  std::vector<std::string> order;
  // All four fire at t=200 with sched=0; the canonical order is by source
  // shard then per-source sequence, with this queue's own events sitting at
  // src=2 between the src=0 and src=3 injections.
  q.schedule_at(200, [&] { order.push_back("local.a"); });
  q.schedule_at(200, [&] { order.push_back("local.b"); });
  q.schedule_cross(EventKey{200, 0, 3, 1}, [&] { order.push_back("s3.1"); });
  q.schedule_cross(EventKey{200, 0, 0, 2}, [&] { order.push_back("s0.2"); });
  q.schedule_cross(EventKey{200, 0, 0, 1}, [&] { order.push_back("s0.1"); });
  q.run();
  EXPECT_EQ(order, (std::vector<std::string>{"s0.1", "s0.2", "local.a",
                                             "local.b", "s3.1"}));
}

TEST(ShardQueueTest, SameTimeLocalEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(10, [&] { order.push_back(2); });
  q.schedule_at(10, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardQueueTest, LaterScheduleTimeOrdersAfterAtSameFireTime) {
  EventQueue q;
  std::vector<std::string> order;
  // An event scheduled *at* t=5 for t=20 must run after a cross event that
  // was scheduled at t=0 for t=20, even though the cross source shard (9) is
  // higher: sched dominates src in the key.
  q.schedule_cross(EventKey{20, 0, 9, 1}, [&] { order.push_back("early"); });
  q.schedule_at(5, [&] {
    q.schedule_at(20, [&] { order.push_back("late"); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<std::string>{"early", "late"}));
}

TEST(ShardQueueTest, ScheduleCrossDoesNotClampPastTimes) {
  EventQueue q;
  q.advance_to(100);
  bool ran = false;
  q.schedule_cross(EventKey{50, 40, 1, 1}, [&] { ran = true; });
  // The key must surface as-is: a clamped fire time would hide a lookahead
  // violation instead of letting the engine's detector count it.
  EXPECT_EQ(q.next_event_time(), 50);
  EXPECT_TRUE(q.step());
  EXPECT_TRUE(ran);
}

TEST(ShardQueueTest, CancelPreventsExecutionIncludingCrossEvents) {
  EventQueue q;
  bool local_ran = false, cross_ran = false, kept = false;
  const sim::TimerId a = q.schedule_at(10, [&] { local_ran = true; });
  const sim::TimerId b =
      q.schedule_cross(EventKey{10, 0, 1, 1}, [&] { cross_ran = true; });
  q.schedule_at(20, [&] { kept = true; });
  EXPECT_TRUE(q.cancel(a));
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b));  // already cancelled
  q.run();
  EXPECT_FALSE(local_ran);
  EXPECT_FALSE(cross_ran);
  EXPECT_TRUE(kept);
}

TEST(ShardQueueTest, PendingCountExcludesCancelled) {
  EventQueue q;
  const sim::TimerId a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  q.schedule_cross(EventKey{30, 0, 1, 1}, [] {});
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_FALSE(q.empty());
}

TEST(ShardQueueTest, NextEventTimePurgesCancelledTop) {
  EventQueue q;
  const sim::TimerId a = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_TRUE(q.cancel(a));
  // The cancelled earliest event must not be reported as the next event —
  // the engine derives t_min (and thus round boundaries) from this value.
  EXPECT_EQ(q.next_event_time(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(ShardQueueTest, CurrentKeyIsVisibleDuringCallback) {
  EventQueue q;
  q.set_shard(4);
  EventKey seen{};
  q.schedule_at(15, [&] { seen = q.current_key(); });
  q.run();
  EXPECT_EQ(seen.when, 15);
  EXPECT_EQ(seen.sched, 0);
  EXPECT_EQ(seen.src, 4u);
  EXPECT_NE(seen.seq, 0u);
}

// ---- ShardedEngine rounds --------------------------------------------------

TEST(ShardedEngineTest, LegalScheduleNeverViolatesLookahead) {
  ShardedEngine::Config config;
  config.shards = 2;
  config.threads = 2;
  config.lookahead = 100;
  ShardedEngine engine(config);

  // Ping-pong: every delivery re-posts to the other shard at now+150 > W
  // until the horizon. Every message posted must be delivered exactly once.
  int sent = 0, received = 0;
  std::function<void(std::size_t)> bounce = [&](std::size_t self) {
    ++received;
    const Time now = engine.queue(self).now();
    if (now >= 5000) return;
    ++sent;
    engine.post(1 - self, now + 150,
                [&bounce, other = 1 - self] { bounce(other); });
  };
  engine.queue(0).schedule_at(0, [&] {
    ++sent;
    engine.post(1, engine.queue(0).now() + 150, [&bounce] { bounce(1); });
  });

  const std::size_t executed = engine.run_until(10'000);
  EXPECT_EQ(engine.lookahead_violations(), 0u);
  EXPECT_EQ(received, sent);
  EXPECT_GT(received, 30);  // 5000 / 150 hops plus the kick-off
  // Kick-off event + one event per delivered message.
  EXPECT_EQ(executed, static_cast<std::size_t>(received) + 1);
}

TEST(ShardedEngineTest, ViolationDetectorFiresOnOverstatedLookahead) {
  ShardedEngine::Config config;
  config.shards = 2;
  config.threads = 1;
  config.lookahead = 1000;  // deliberately larger than the true 10ns latency
  ShardedEngine engine(config);

  int delivered = 0;
  engine.queue(0).schedule_at(0, [&] {
    engine.post(1, engine.queue(0).now() + 10, [&] { ++delivered; });
  });
  engine.run_until(5000);
  // The message's fire time (10) fell inside the round [0, 1000) its
  // destination had already executed: counted, but still delivered — the
  // detector reports causality breaks, it does not drop events.
  EXPECT_EQ(engine.lookahead_violations(), 1u);
  EXPECT_EQ(delivered, 1);
}

TEST(ShardedEngineTest, CrossShardTieBreakIsCanonical) {
  for (unsigned threads : {1u, 2u, 3u}) {
    ShardedEngine::Config config;
    config.shards = 3;
    config.threads = threads;
    config.lookahead = 100;
    ShardedEngine engine(config);

    std::vector<std::string> order;
    // Shards 0 and 1 each post two messages to shard 2, all colliding on
    // fire time 200 and schedule time 0; shard 2 also holds a local event at
    // the same instant. Canonical order is by (src, seq): sender 0's pair,
    // sender 1's pair, then the local event (src=2).
    engine.queue(2).schedule_at(200, [&] { order.push_back("local"); });
    engine.queue(0).schedule_at(0, [&] {
      engine.post(2, 200, [&] { order.push_back("s0.first"); });
      engine.post(2, 200, [&] { order.push_back("s0.second"); });
    });
    engine.queue(1).schedule_at(0, [&] {
      engine.post(2, 200, [&] { order.push_back("s1.first"); });
      engine.post(2, 200, [&] { order.push_back("s1.second"); });
    });
    engine.run_until(1000);
    EXPECT_EQ(order,
              (std::vector<std::string>{"s0.first", "s0.second", "s1.first",
                                        "s1.second", "local"}))
        << "at threads=" << threads;
    EXPECT_EQ(engine.lookahead_violations(), 0u);
  }
}

TEST(ShardedEngineTest, CancelAcrossRoundsPreventsExecution) {
  ShardedEngine::Config config;
  config.shards = 2;
  config.threads = 2;
  config.lookahead = 100;
  ShardedEngine engine(config);

  bool victim_ran = false;
  const sim::TimerId victim =
      engine.queue(0).schedule_at(500, [&] { victim_ran = true; });
  engine.queue(0).schedule_at(100, [&] { engine.queue(0).cancel(victim); });
  engine.run_until(1000);
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(engine.queue(0).empty());
}

/// A real link crossing the shard boundary: transmission, serialisation,
/// stats and rng draws on shard 0; delivery posted to shard 1. Packets are
/// conserved: everything the link reports sent arrives exactly once.
TEST(ShardedEngineTest, LinkCrossingConservesPackets) {
  struct CountingSink : net::PacketSink {
    int delivered = 0;
    Time last_at = 0;
    EventQueue* queue = nullptr;
    void deliver(net::Packet) override {
      ++delivered;
      last_at = queue->now();
    }
  };

  net::LinkConfig link_config;
  link_config.bandwidth_bps = 8'000'000;  // 1 byte/us
  link_config.propagation_delay = sim::milliseconds(1);
  link_config.queue_limit_packets = 64;

  ShardedEngine::Config config;
  config.shards = 2;
  config.threads = 2;
  // With zero jitter the link's guaranteed minimum cross-shard latency is
  // exactly the propagation delay; the assertion below pins that equation.
  config.lookahead = link_config.propagation_delay;
  ShardedEngine real(config);
  CountingSink sink;
  sink.queue = &real.queue(1);
  net::Link link(real.queue(0), link_config, sim::Rng(7));
  ASSERT_EQ(link.min_remote_latency(), config.lookahead);
  link.set_sink(&sink);
  link.set_remote_deliver([&](Time when, net::Packet packet) {
    real.post(1, when, [&sink, p = std::move(packet)]() mutable {
      sink.deliver(std::move(p));
    });
  });

  constexpr int kPackets = 32;
  real.queue(0).schedule_at(0, [&] {
    for (int i = 0; i < kPackets; ++i) {
      net::Packet packet;
      packet.src = 1;
      packet.dst = 2;
      link.transmit(packet);
    }
  });
  real.run_until(sim::seconds(1));

  EXPECT_EQ(link.stats().packets_sent, static_cast<std::uint64_t>(kPackets));
  EXPECT_EQ(sink.delivered, kPackets);
  EXPECT_EQ(real.lookahead_violations(), 0u);
  // Last delivery: 32 serialisations of 40B back to back + propagation.
  EXPECT_GE(sink.last_at, link_config.propagation_delay);
}

TEST(ShardedEngineTest, EpochsFireAtBarriersBetweenRounds) {
  ShardedEngine::Config config;
  config.shards = 2;
  config.threads = 2;
  config.lookahead = 100;
  ShardedEngine engine(config);

  std::vector<Time> executed[2];
  for (std::size_t s = 0; s < 2; ++s) {
    for (Time t : {Time{50}, Time{150}, Time{250}}) {
      engine.queue(s).schedule_at(
          t, [&executed, s, t] { executed[s].push_back(t); });
    }
  }
  struct EpochObs {
    Time at;
    std::size_t done0, done1;
  };
  std::vector<EpochObs> epochs;
  engine.set_epochs(100, 300, [&](Time at) {
    // Fired at a barrier with all workers parked: reading both shards' logs
    // is safe, and exactly the events strictly before `at` have executed.
    epochs.push_back({at, executed[0].size(), executed[1].size()});
  });
  const std::size_t total = engine.run_until(400);

  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].at, 100);
  EXPECT_EQ(epochs[0].done0, 1u);  // only t=50 has run
  EXPECT_EQ(epochs[0].done1, 1u);
  EXPECT_EQ(epochs[1].at, 200);
  EXPECT_EQ(epochs[1].done0, 2u);
  EXPECT_EQ(epochs[2].at, 300);
  EXPECT_EQ(epochs[2].done0, 3u);
  EXPECT_EQ(total, 6u + 3u);  // six events plus one per epoch firing
}

TEST(ShardedEngineTest, ClockMirrorsRunUntilSemantics) {
  ShardedEngine::Config config;
  config.shards = 2;
  config.threads = 1;
  config.lookahead = 10;
  ShardedEngine engine(config);

  engine.queue(0).schedule_at(100, [] {});
  EXPECT_EQ(engine.run_until(50), 0u);
  EXPECT_EQ(engine.now(), 50);  // event pending beyond the deadline
  EXPECT_EQ(engine.run_until(200), 1u);
  EXPECT_EQ(engine.now(), 100);  // queue drained: time of the last event
}

// ---- Thread-count invariance at the engine level ---------------------------

/// A four-shard cascade: staggered initial events, every delivery re-posts to
/// the next shard with a deterministic, hop-dependent delay >= W. Returns the
/// per-shard logs concatenated in shard order.
std::vector<std::string> run_cascade(unsigned threads) {
  ShardedEngine::Config config;
  config.shards = 4;
  config.threads = threads;
  config.lookahead = 100;
  ShardedEngine engine(config);

  std::vector<std::vector<std::string>> logs(4);
  std::function<void(std::size_t, int)> hop = [&](std::size_t shard,
                                                  int depth) {
    logs[shard].push_back("t=" +
                          std::to_string(engine.queue(shard).now()) +
                          " d=" + std::to_string(depth));
    if (depth >= 12) return;
    const Time delay = 120 + (depth * 37) % 80;
    engine.post((shard + 1) % 4, engine.queue(shard).now() + delay,
                [&hop, next = (shard + 1) % 4, depth] { hop(next, depth + 1); });
  };
  for (std::size_t s = 0; s < 4; ++s) {
    engine.queue(s).schedule_at(10 * (s + 1),
                                [&hop, s] { hop(s, 0); });
  }
  engine.run_until(sim::seconds(1));
  EXPECT_EQ(engine.lookahead_violations(), 0u);

  std::vector<std::string> flat;
  for (std::size_t s = 0; s < 4; ++s) {
    for (const std::string& line : logs[s]) {
      flat.push_back("shard" + std::to_string(s) + " " + line);
    }
  }
  return flat;
}

TEST(ShardedEngineTest, CascadeIsThreadCountInvariant) {
  const std::vector<std::string> base = run_cascade(1);
  ASSERT_GE(base.size(), 4u * 13u);  // every hop chain ran to depth 12
  for (unsigned threads : {2u, 3u, 4u}) {
    EXPECT_EQ(run_cascade(threads), base) << "at threads=" << threads;
  }
}

}  // namespace
}  // namespace hsim
