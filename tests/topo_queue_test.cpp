// Queue-discipline and router properties (topo subsystem).
//
// Three contracts pinned here:
//   - DropTail never holds more than its packet/byte budgets, whatever the
//     arrival/departure interleaving (property test over a seeded random
//     workload).
//   - RED's drop pattern is a pure function of (config, seed, arrival
//     sequence): two same-seed instances driven identically produce the
//     identical accept/drop sequence.
//   - Conservation: packets offered to a router egress reconcile exactly
//     with the queue discipline's counters and the link-level delivery
//     counts — nothing is created, lost or double-counted between the
//     discipline, the link and the far-end sink.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/link.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "topo/queue_disc.hpp"
#include "topo/router.hpp"

namespace hsim {
namespace {

net::Packet make_packet(net::IpAddr dst, std::size_t payload_bytes) {
  net::Packet p;
  p.src = 1;
  p.dst = dst;
  p.payload = buf::Bytes(std::string(payload_bytes, 'x'));
  return p;
}

// ---------------------------------------------------------------------------
// DropTail budgets
// ---------------------------------------------------------------------------

TEST(DropTail, NeverExceedsPacketBudget) {
  topo::DropTail q("t", topo::DropTailConfig{/*limit_packets=*/16,
                                             /*limit_bytes=*/0});
  std::uint64_t accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (q.enqueue(make_packet(9, 100), /*now=*/i) ==
        topo::DropReason::kAccepted) {
      ++accepted;
    }
    EXPECT_LE(q.depth_packets(), 16u);
  }
  EXPECT_EQ(accepted, 16u);
  EXPECT_EQ(q.stats().dropped_overflow, 84u);
  EXPECT_EQ(q.stats().offered_packets, 100u);
}

TEST(DropTail, NeverExceedsByteBudgetProperty) {
  // Random packet sizes and random interleaved dequeues: the byte budget
  // must hold at every step, and the packet FIFO order must be preserved.
  constexpr std::size_t kByteBudget = 4096;
  topo::DropTail q("t", topo::DropTailConfig{/*limit_packets=*/0,
                                             /*limit_bytes=*/kByteBudget});
  sim::Rng rng(7);
  sim::Time now = 0;
  std::uint64_t enq = 0, deq = 0;
  for (int step = 0; step < 5000; ++step) {
    ++now;
    if (rng.uniform_real(0.0, 1.0) < 0.6) {
      const auto payload = static_cast<std::size_t>(rng.uniform(0, 1500));
      if (q.enqueue(make_packet(9, payload), now) ==
          topo::DropReason::kAccepted) {
        ++enq;
      }
    } else if (!q.empty()) {
      q.dequeue(now);
      ++deq;
    }
    ASSERT_LE(q.depth_bytes(), kByteBudget);
  }
  EXPECT_EQ(q.stats().enqueued_packets, enq);
  EXPECT_EQ(q.stats().dequeued_packets, deq);
  EXPECT_GT(q.stats().dropped_overflow, 0u);  // the budget actually bit
  EXPECT_EQ(q.stats().offered_packets,
            q.stats().enqueued_packets + q.stats().dropped());
}

// ---------------------------------------------------------------------------
// RED determinism
// ---------------------------------------------------------------------------

std::vector<topo::DropReason> drive_red(std::uint64_t seed) {
  topo::RedConfig cfg;
  cfg.min_threshold = 4.0;
  cfg.max_threshold = 12.0;
  cfg.max_drop_probability = 0.2;
  cfg.weight = 0.2;  // fast-moving average so the test stays short
  cfg.limit_packets = 32;
  topo::Red q("r", cfg, sim::Rng(seed));

  // Deterministic arrival pattern that holds the queue around the RED band:
  // bursts of 3 arrivals, one departure.
  std::vector<topo::DropReason> out;
  sim::Time now = 0;
  for (int step = 0; step < 400; ++step) {
    ++now;
    for (int a = 0; a < 3; ++a) {
      out.push_back(q.enqueue(make_packet(9, 512), now));
    }
    if (!q.empty()) q.dequeue(now);
    if (!q.empty()) q.dequeue(now);
  }
  return out;
}

TEST(Red, SameSeedSameDropPattern) {
  const std::vector<topo::DropReason> a = drive_red(1234);
  const std::vector<topo::DropReason> b = drive_red(1234);
  EXPECT_EQ(a, b);

  // Not vacuous: the pattern must contain accepts AND early drops.
  int early = 0, accepted = 0;
  for (topo::DropReason r : a) {
    early += r == topo::DropReason::kEarly;
    accepted += r == topo::DropReason::kAccepted;
  }
  EXPECT_GT(early, 0);
  EXPECT_GT(accepted, 0);
}

TEST(Red, DifferentSeedsDivergeSomewhere) {
  // Two seeds chosen so the uniform draws differ; the accept/drop sequences
  // must not be identical (they share the deterministic skeleton but the
  // early-drop coin flips differ).
  EXPECT_NE(drive_red(1), drive_red(999));
}

TEST(Red, HardBudgetAlwaysEnforced) {
  topo::RedConfig cfg;
  cfg.min_threshold = 1000.0;  // early drops effectively disabled
  cfg.max_threshold = 2000.0;
  cfg.limit_packets = 8;
  topo::Red q("r", cfg, sim::Rng(5));
  for (int i = 0; i < 50; ++i) {
    q.enqueue(make_packet(9, 64), i);
    ASSERT_LE(q.depth_packets(), 8u);
  }
  EXPECT_EQ(q.stats().enqueued_packets, 8u);
  EXPECT_EQ(q.stats().dropped_overflow, 42u);
}

// ---------------------------------------------------------------------------
// Conservation through Router + QueueDisc + Link
// ---------------------------------------------------------------------------

struct CountingSink : net::PacketSink {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;
  void deliver(net::Packet p) override {
    ++packets;
    wire_bytes += p.wire_size();
  }
};

TEST(Router, DropCountersReconcileWithLinkDelivery) {
  sim::EventQueue queue;
  net::LinkConfig link_cfg;
  link_cfg.bandwidth_bps = 1'000'000;
  link_cfg.propagation_delay = sim::milliseconds(1);
  link_cfg.queue_limit_packets = 4;  // back-pressure keeps this from mattering
  net::Link link(queue, link_cfg, sim::Rng(3));
  CountingSink sink;
  link.set_sink(&sink);

  topo::Router router(queue, /*id=*/1, "r1");
  const std::size_t egress = router.add_egress(
      &link, std::make_unique<topo::DropTail>(
                 "t", topo::DropTailConfig{/*limit_packets=*/10,
                                           /*limit_bytes=*/0}));
  router.add_route(/*dst=*/9, egress);

  // Offer a burst far exceeding the queue budget, then let it drain.
  constexpr unsigned kOffered = 64;
  for (unsigned i = 0; i < kOffered; ++i) {
    router.deliver(make_packet(9, 1000));
  }
  queue.run_until(sim::seconds(10));

  const topo::QueueStats& qs = router.egress_queue(egress).stats();
  EXPECT_EQ(qs.offered_packets, kOffered);
  EXPECT_EQ(qs.enqueued_packets + qs.dropped(), kOffered);
  EXPECT_GT(qs.dropped_overflow, 0u);
  // Everything the discipline admitted was dequeued and crossed the link:
  EXPECT_EQ(qs.dequeued_packets, qs.enqueued_packets);
  EXPECT_EQ(link.stats().packets_sent, qs.dequeued_packets);
  EXPECT_EQ(link.stats().packets_dropped_queue, 0u);  // back-pressure held
  EXPECT_EQ(sink.packets, qs.dequeued_packets);
  // Router-level attribution matches the discipline's.
  EXPECT_EQ(router.stats().forwarded, qs.enqueued_packets);
  EXPECT_EQ(router.stats().dropped_queue, qs.dropped());
}

TEST(Router, NoRouteDropsAreCounted) {
  sim::EventQueue queue;
  net::Link link(queue, net::LinkConfig{}, sim::Rng(4));
  CountingSink sink;
  link.set_sink(&sink);
  topo::Router router(queue, 1, "r1");
  const std::size_t egress = router.add_egress(
      &link, std::make_unique<topo::DropTail>(
                 "t", topo::DropTailConfig{/*limit_packets=*/0,
                                           /*limit_bytes=*/0}));
  router.add_route(9, egress);

  router.deliver(make_packet(9, 10));   // routed
  router.deliver(make_packet(77, 10));  // no route, no default
  queue.run_until(sim::seconds(1));
  EXPECT_EQ(router.stats().forwarded, 1u);
  EXPECT_EQ(router.stats().dropped_no_route, 1u);
  EXPECT_EQ(sink.packets, 1u);

  router.set_default_route(egress);
  router.deliver(make_packet(77, 10));  // now follows the default
  queue.run_until(sim::seconds(2));
  EXPECT_EQ(router.stats().dropped_no_route, 1u);
  EXPECT_EQ(sink.packets, 2u);
}

}  // namespace
}  // namespace hsim
