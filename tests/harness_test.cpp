// Harness-level tests: network profiles, configuration presets, averaging,
// and table rendering.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/network.hpp"
#include "harness/table.hpp"

namespace hsim::harness {
namespace {

TEST(NetworkProfileTest, PaperTable1Values) {
  const NetworkProfile lan = lan_profile();
  EXPECT_EQ(lan.bandwidth_bps, 10'000'000);
  EXPECT_LT(lan.rtt, sim::milliseconds(1));  // "< 1ms"

  const NetworkProfile wan = wan_profile();
  EXPECT_EQ(wan.rtt, sim::milliseconds(90));  // "~90 ms"

  const NetworkProfile ppp = ppp_profile();
  EXPECT_EQ(ppp.bandwidth_bps, 28'800);
  EXPECT_EQ(ppp.rtt, sim::milliseconds(150));  // "~150 ms"
  // NT 4.0's default receive window keeps the modem queue in check.
  EXPECT_EQ(ppp.client_recv_buffer, 8760u);
}

TEST(NetworkProfileTest, ChannelConfigSplitsRtt) {
  const auto cfg = wan_profile().channel_config();
  EXPECT_EQ(cfg.a_to_b.propagation_delay, sim::milliseconds(45));
  EXPECT_EQ(cfg.b_to_a.propagation_delay, sim::milliseconds(45));
  EXPECT_EQ(cfg.a_to_b.bandwidth_bps, wan_profile().bandwidth_bps);
}

TEST(RobotConfigTest, PaperModeDefaults) {
  const auto h10 = robot_config(client::ProtocolMode::kHttp10Parallel);
  EXPECT_EQ(h10.max_connections, 4u);
  EXPECT_EQ(h10.revalidation, client::RevalidationStyle::kGetPlusHead);
  EXPECT_FALSE(h10.http11());
  EXPECT_FALSE(h10.pipelined());

  const auto h11 = robot_config(client::ProtocolMode::kHttp11Persistent);
  EXPECT_EQ(h11.max_connections, 1u);
  EXPECT_FALSE(h11.pipelined());
  EXPECT_TRUE(h11.http11());

  const auto pipe = robot_config(client::ProtocolMode::kHttp11Pipelined);
  EXPECT_TRUE(pipe.pipelined());
  EXPECT_EQ(pipe.pipeline_buffer, 1024u);  // the paper's tuned value
  EXPECT_EQ(pipe.flush_timeout, sim::milliseconds(50));
  EXPECT_TRUE(pipe.explicit_first_flush);
  EXPECT_FALSE(pipe.wants_deflate());

  const auto comp =
      robot_config(client::ProtocolMode::kHttp11PipelinedCompressed);
  EXPECT_TRUE(comp.wants_deflate());
  EXPECT_TRUE(comp.pipelined());
}

TEST(RobotConfigTest, BrowserPresets) {
  const auto nav = netscape_client_config();
  EXPECT_EQ(nav.mode, client::ProtocolMode::kHttp10Parallel);
  EXPECT_EQ(nav.max_connections, 4u);
  EXPECT_FALSE(nav.use_etags);
  EXPECT_TRUE(nav.profile.send_keep_alive);

  const auto ie_broken = msie_client_config(true);
  EXPECT_EQ(ie_broken.mode, client::ProtocolMode::kHttp11Persistent);
  EXPECT_EQ(ie_broken.revalidation, client::RevalidationStyle::kGetPlusHead);
  const auto ie_ok = msie_client_config(false);
  EXPECT_EQ(ie_ok.revalidation, client::RevalidationStyle::kConditionalGet);
}

TEST(ServerConfigTest, ProfilesDiffer) {
  const auto jigsaw = server::jigsaw_config();
  const auto apache = server::apache_config();
  EXPECT_GT(jigsaw.per_request_cpu, apache.per_request_cpu);
  EXPECT_EQ(jigsaw.max_requests_per_connection, 0u);
  const auto beta = server::apache_beta2_config();
  EXPECT_EQ(beta.max_requests_per_connection, 5u);
  EXPECT_EQ(beta.close_style, server::CloseStyle::kNaive);
}

TEST(AveragingTest, MeansAreBetweenExtremes) {
  ExperimentSpec spec;
  spec.client = robot_config(client::ProtocolMode::kHttp11Pipelined);
  spec.scenario = Scenario::kRevalidation;
  const auto& site = shared_site();
  double lo = 1e18, hi = 0;
  for (unsigned i = 0; i < 3; ++i) {
    ExperimentSpec s = spec;
    s.seed = spec.seed + i * 7919;
    const RunResult r = run_once(s, site);
    lo = std::min(lo, r.seconds());
    hi = std::max(hi, r.seconds());
  }
  const AveragedResult avg = run_averaged(spec, site, 3);
  EXPECT_GE(avg.seconds, lo - 1e-9);
  EXPECT_LE(avg.seconds, hi + 1e-9);
  EXPECT_TRUE(avg.all_complete);
}

TEST(TableRenderTest, ContainsLabelsAndPaperRows) {
  TableRow row;
  row.label = "HTTP/1.1 Pipelined";
  row.first_visit.packets = 123.4;
  row.first_visit.bytes = 191551;
  row.first_visit.seconds = 0.68;
  row.first_visit.overhead_percent = 3.7;
  row.revalidation.packets = 32.8;
  row.paper_first_packets = 181.8;
  row.paper_first_seconds = 0.68;
  row.paper_reval_packets = 32.8;
  row.paper_reval_seconds = 0.54;
  const std::string text = render_table("Table X", {row});
  EXPECT_NE(text.find("Table X"), std::string::npos);
  EXPECT_NE(text.find("HTTP/1.1 Pipelined"), std::string::npos);
  EXPECT_NE(text.find("(paper)"), std::string::npos);
  EXPECT_NE(text.find("123.4"), std::string::npos);
  EXPECT_NE(text.find("181.8"), std::string::npos);

  const std::string bare = render_table("T", {row}, false);
  EXPECT_EQ(bare.find("(paper)"), std::string::npos);
}

TEST(TableRenderTest, SummaryLineFormatsAllFields) {
  AveragedResult r;
  r.packets = 83;
  r.bytes = 17694;
  r.seconds = 3.02;
  r.overhead_percent = 6.9;
  r.packets_c2s = 25;
  r.packets_s2c = 58;
  r.connections = 1;
  r.mean_packet_train = 83;
  const std::string line = render_summary_line("pipeline", r);
  EXPECT_NE(line.find("pipeline"), std::string::npos);
  EXPECT_NE(line.find("17694"), std::string::npos);
  EXPECT_NE(line.find("3.02"), std::string::npos);
}

TEST(SharedSiteTest, IsBuiltOnceAndStable) {
  const content::MicroscapeSite& a = shared_site();
  const content::MicroscapeSite& b = shared_site();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.images.size(), 42u);
}

TEST(ScenarioTest, Names) {
  EXPECT_EQ(to_string(Scenario::kFirstVisit), "First Time Retrieval");
  EXPECT_EQ(to_string(Scenario::kRevalidation), "Cache Validation");
  EXPECT_EQ(client::to_string(client::ProtocolMode::kHttp11Pipelined),
            "HTTP/1.1 Pipelined");
}

}  // namespace
}  // namespace hsim::harness
