// Property-style HTTP tests: messages survive serialize -> split-arbitrarily
// -> parse roundtrips; pipelined streams parse identically regardless of how
// the bytes are sliced.
#include <gtest/gtest.h>

#include "http/chunked.hpp"
#include "http/parser.hpp"
#include "sim/random.hpp"

namespace hsim::http {
namespace {

Request random_request(sim::Rng& rng) {
  Request req;
  const Method methods[] = {Method::kGet, Method::kHead, Method::kPost};
  req.method = methods[rng.uniform(0, 2)];
  req.target = "/path/seg" + std::to_string(rng.uniform(0, 999)) + ".html";
  req.version = rng.chance(0.5) ? Version::kHttp10 : Version::kHttp11;
  req.headers.add("Host", "host" + std::to_string(rng.uniform(0, 99)));
  const int extra = static_cast<int>(rng.uniform(0, 6));
  for (int i = 0; i < extra; ++i) {
    req.headers.add("X-Header-" + std::to_string(i),
                    "value " + std::to_string(rng.uniform(0, 10000)));
  }
  if (req.method == Method::kPost) {
    const auto n = static_cast<std::size_t>(rng.uniform(0, 500));
    req.body.resize(n);
    for (auto& b : req.body) b = static_cast<std::uint8_t>(rng.next_u32());
    req.headers.add("Content-Length", std::to_string(n));
  }
  return req;
}

Response random_response(sim::Rng& rng, Method method) {
  Response res;
  res.version = rng.chance(0.5) ? Version::kHttp10 : Version::kHttp11;
  const int statuses[] = {200, 206, 304, 404, 500};
  res.status = statuses[rng.uniform(0, 4)];
  res.reason = std::string(default_reason(res.status));
  res.headers.add("Server", "prop-test");
  if (!res.status_forbids_body() && method != Method::kHead) {
    const auto n = static_cast<std::size_t>(rng.uniform(0, 4000));
    std::vector<std::uint8_t> body(n);
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u32());
    res.body.append(buf::Bytes(std::move(body)));
  }
  // HEAD responses may still advertise a length; parsers must not consume.
  res.headers.add("Content-Length", std::to_string(res.body.size()));
  return res;
}

void feed_in_random_slices(sim::Rng& rng,
                           const std::vector<std::uint8_t>& wire,
                           const std::function<void(
                               std::span<const std::uint8_t>)>& feed) {
  std::size_t pos = 0;
  while (pos < wire.size()) {
    const std::size_t n = std::min<std::size_t>(
        wire.size() - pos, static_cast<std::size_t>(rng.uniform(1, 97)));
    feed({wire.data() + pos, n});
    pos += n;
  }
}

class HttpSliceProperty : public ::testing::TestWithParam<int> {};

TEST_P(HttpSliceProperty, PipelinedRequestsSurviveAnySlicing) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 3);
  std::vector<Request> sent;
  std::vector<std::uint8_t> wire;
  const int count = static_cast<int>(rng.uniform(1, 8));
  for (int i = 0; i < count; ++i) {
    Request r = random_request(rng);
    const auto bytes = r.serialize();
    wire.insert(wire.end(), bytes.begin(), bytes.end());
    sent.push_back(std::move(r));
  }

  RequestParser parser;
  std::vector<Request> got;
  feed_in_random_slices(rng, wire, [&](std::span<const std::uint8_t> s) {
    parser.feed(s);
    while (auto r = parser.next()) got.push_back(std::move(*r));
  });
  ASSERT_FALSE(parser.failed());
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].method, sent[i].method);
    EXPECT_EQ(got[i].target, sent[i].target);
    EXPECT_EQ(got[i].version, sent[i].version);
    EXPECT_EQ(got[i].body, sent[i].body);
    EXPECT_EQ(got[i].headers.size(), sent[i].headers.size());
  }
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST_P(HttpSliceProperty, PipelinedResponsesSurviveAnySlicing) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  std::vector<Response> sent;
  std::vector<Method> methods;
  std::vector<std::uint8_t> wire;
  const int count = static_cast<int>(rng.uniform(1, 8));
  for (int i = 0; i < count; ++i) {
    const Method m = rng.chance(0.25) ? Method::kHead : Method::kGet;
    Response r = random_response(rng, m);
    std::vector<std::uint8_t> bytes = r.serialize();
    if (m == Method::kHead) {
      // HEAD: the head advertises a length but no body crosses the wire.
      bytes.resize(bytes.size() - r.body.size());
      r.body.clear();
    }
    wire.insert(wire.end(), bytes.begin(), bytes.end());
    sent.push_back(std::move(r));
    methods.push_back(m);
  }

  ResponseParser parser;
  for (const Method m : methods) parser.push_request_context(m);
  std::vector<Response> got;
  feed_in_random_slices(rng, wire, [&](std::span<const std::uint8_t> s) {
    parser.feed(s);
    while (auto r = parser.next()) got.push_back(std::move(*r));
  });
  ASSERT_FALSE(parser.failed());
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].status, sent[i].status);
    EXPECT_EQ(got[i].body, sent[i].body) << i;
  }
}

TEST_P(HttpSliceProperty, ChunkedBodiesSurviveAnySlicing) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 71 + 5);
  std::vector<std::uint8_t> body(
      static_cast<std::size_t>(rng.uniform(0, 10'000)));
  for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u32());
  const std::size_t chunk_size =
      static_cast<std::size_t>(rng.uniform(1, 2000));

  std::string head = "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
  std::vector<std::uint8_t> wire(head.begin(), head.end());
  const auto encoded = encode_chunked_body(body, chunk_size);
  wire.insert(wire.end(), encoded.begin(), encoded.end());

  ResponseParser parser;
  parser.push_request_context(Method::kGet);
  std::optional<Response> got;
  feed_in_random_slices(rng, wire, [&](std::span<const std::uint8_t> s) {
    parser.feed(s);
    if (auto r = parser.next()) got = std::move(*r);
  });
  ASSERT_FALSE(parser.failed());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->body, body);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HttpSliceProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace hsim::http
