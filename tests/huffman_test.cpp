#include "deflate/huffman.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "deflate/tables.hpp"
#include "sim/random.hpp"

namespace hsim::deflate {
namespace {

double kraft_sum(std::span<const std::uint8_t> lengths) {
  double sum = 0;
  for (std::uint8_t l : lengths) {
    if (l > 0) sum += 1.0 / static_cast<double>(1u << l);
  }
  return sum;
}

TEST(HuffmanTest, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint32_t> freqs = {5, 3};
  const auto lengths = build_code_lengths(freqs, 15);
  EXPECT_EQ(lengths[0], 1);
  EXPECT_EQ(lengths[1], 1);
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<std::uint32_t> freqs = {0, 0, 7, 0};
  const auto lengths = build_code_lengths(freqs, 15);
  EXPECT_EQ(lengths[2], 1);
  EXPECT_EQ(lengths[0], 0);
}

TEST(HuffmanTest, ZeroFrequenciesGetNoCode) {
  std::vector<std::uint32_t> freqs(10, 0);
  const auto lengths = build_code_lengths(freqs, 15);
  for (auto l : lengths) EXPECT_EQ(l, 0);
}

TEST(HuffmanTest, SkewedDistributionGivesShortCodeToFrequentSymbol) {
  std::vector<std::uint32_t> freqs = {1000, 1, 1, 1, 1, 1};
  const auto lengths = build_code_lengths(freqs, 15);
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    EXPECT_LE(lengths[0], lengths[i]);
  }
  EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
}

TEST(HuffmanTest, LengthLimitIsRespected) {
  // Fibonacci-like frequencies force very deep unconstrained Huffman trees.
  std::vector<std::uint32_t> freqs;
  std::uint32_t a = 1, b = 1;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back(a);
    const std::uint32_t next = a + b;
    a = b;
    b = next;
  }
  for (unsigned limit : {7u, 10u, 15u}) {
    const auto lengths = build_code_lengths(freqs, limit);
    for (auto l : lengths) EXPECT_LE(l, limit);
    EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
    // Completeness: package-merge produces a full code.
    EXPECT_NEAR(kraft_sum(lengths), 1.0, 1e-12);
  }
}

TEST(HuffmanTest, CanonicalCodesMatchRfcExample) {
  // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) produce codes
  // 010,011,100,101,110,00,1110,1111.
  std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  const auto codes = assign_canonical_codes(lengths);
  EXPECT_EQ(codes[0], 0b010u);
  EXPECT_EQ(codes[1], 0b011u);
  EXPECT_EQ(codes[2], 0b100u);
  EXPECT_EQ(codes[3], 0b101u);
  EXPECT_EQ(codes[4], 0b110u);
  EXPECT_EQ(codes[5], 0b00u);
  EXPECT_EQ(codes[6], 0b1110u);
  EXPECT_EQ(codes[7], 0b1111u);
}

TEST(HuffmanTest, EncodeDecodeRoundtrip) {
  std::vector<std::uint8_t> lengths = {3, 3, 3, 3, 3, 2, 4, 4};
  HuffmanEncoder enc(lengths);
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.build(lengths));

  BitWriter writer;
  std::vector<unsigned> symbols = {5, 0, 7, 3, 6, 1, 2, 4, 5, 5, 5};
  for (unsigned s : symbols) enc.write_symbol(writer, s);
  const auto bytes = writer.take();
  BitReader reader(bytes);
  for (unsigned s : symbols) {
    EXPECT_EQ(dec.decode(reader), static_cast<int>(s));
  }
}

TEST(HuffmanTest, DecoderRejectsOversubscribedCode) {
  // Three 1-bit codes cannot exist.
  std::vector<std::uint8_t> bad = {1, 1, 1};
  HuffmanDecoder dec;
  EXPECT_FALSE(dec.build(bad));
}

TEST(HuffmanTest, DecoderReportsExhaustedInput) {
  std::vector<std::uint8_t> lengths = {2, 2, 2, 2};
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.build(lengths));
  std::vector<std::uint8_t> empty;
  BitReader reader(empty);
  EXPECT_EQ(dec.decode(reader), -1);
}

TEST(HuffmanTest, FixedTablesAreWellFormed) {
  const auto lit = fixed_litlen_lengths();
  const auto dist = fixed_dist_lengths();
  HuffmanDecoder dl, dd;
  EXPECT_TRUE(dl.build(lit));
  EXPECT_TRUE(dd.build(dist));
  EXPECT_NEAR(kraft_sum(lit), 1.0, 1e-12);
  EXPECT_NEAR(kraft_sum(dist), 1.0, 1e-12);
}

TEST(HuffmanTest, LengthAndDistanceCodeMappingsInvertTables) {
  for (unsigned len = kMinMatch; len <= kMaxMatch; ++len) {
    const unsigned code = length_to_code(len);
    ASSERT_LT(code, kLengthCodes.size());
    EXPECT_GE(len, kLengthCodes[code].base);
    EXPECT_LT(len - kLengthCodes[code].base,
              (len == kMaxMatch) ? 1u : (1u << kLengthCodes[code].extra_bits));
  }
  for (unsigned d = 1; d <= kWindowSize; ++d) {
    const unsigned code = distance_to_code(d);
    ASSERT_LT(code, kDistCodes.size());
    EXPECT_GE(d, kDistCodes[code].base);
    EXPECT_LT(d - kDistCodes[code].base, 1u << kDistCodes[code].extra_bits);
  }
}

class HuffmanProperty : public ::testing::TestWithParam<int> {};

TEST_P(HuffmanProperty, RandomFrequenciesRoundtrip) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const std::size_t n = static_cast<std::size_t>(rng.uniform(2, 288));
  std::vector<std::uint32_t> freqs(n);
  for (auto& f : freqs) {
    f = rng.chance(0.3) ? 0 : static_cast<std::uint32_t>(rng.uniform(1, 10000));
  }
  // Ensure at least two nonzero symbols.
  freqs[0] = 1;
  freqs[n - 1] = 1;
  const auto lengths = build_code_lengths(freqs, 15);
  EXPECT_LE(kraft_sum(lengths), 1.0 + 1e-12);
  HuffmanEncoder enc(lengths);
  HuffmanDecoder dec;
  ASSERT_TRUE(dec.build(lengths));

  BitWriter writer;
  std::vector<unsigned> emitted;
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] == 0) continue;
    for (int k = 0; k < 3; ++k) {
      emitted.push_back(static_cast<unsigned>(i));
      enc.write_symbol(writer, static_cast<unsigned>(i));
    }
  }
  const auto bytes = writer.take();
  BitReader reader(bytes);
  for (unsigned s : emitted) {
    ASSERT_EQ(dec.decode(reader), static_cast<int>(s));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HuffmanProperty, ::testing::Range(0, 20));

TEST(BitIoTest, WriterReaderRoundtrip) {
  BitWriter w;
  w.write_bits(0b101, 3);
  w.write_bits(0xFFFF, 16);
  w.write_bits(0, 5);
  w.write_bits(0b1101, 4);
  const auto bytes = w.take();
  BitReader r(bytes);
  EXPECT_EQ(r.read_bits(3), 0b101u);
  EXPECT_EQ(r.read_bits(16), 0xFFFFu);
  EXPECT_EQ(r.read_bits(5), 0u);
  EXPECT_EQ(r.read_bits(4), 0b1101u);
}

TEST(BitIoTest, SeekAndTellRestorePosition) {
  BitWriter w;
  w.write_bits(0b110110, 6);
  w.write_bits(0b1010, 4);
  const auto bytes = w.take();
  BitReader r(bytes);
  r.read_bits(3);
  const auto pos = r.tell();
  const auto a = r.read_bits(5);
  r.seek(pos);
  EXPECT_EQ(r.read_bits(5), a);
}

TEST(BitIoTest, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0b10000000, 8), 0b00000001u);
  EXPECT_EQ(reverse_bits(0, 15), 0u);
}

TEST(BitIoTest, AlignToByte) {
  BitWriter w;
  w.write_bits(0b1, 1);
  w.align_to_byte();
  w.write_bits(0xAB, 8);
  const auto bytes = w.take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[1], 0xAB);
}

}  // namespace
}  // namespace hsim::deflate
