#include "content/microscape.hpp"

#include <gtest/gtest.h>

#include "content/gif.hpp"
#include "deflate/deflate.hpp"

namespace hsim::content {
namespace {

// Building the full site fits 42 images; do it once for the suite.
const MicroscapeSite& site() {
  static const MicroscapeSite s = build_microscape();
  return s;
}

TEST(MicroscapeTest, HtmlSizeNearFortyTwoKb) {
  const std::size_t target = 42 * 1024;
  EXPECT_NEAR(static_cast<double>(site().html.size()),
              static_cast<double>(target), 0.03 * target);
}

TEST(MicroscapeTest, FortyTwoImagesReferencedInOrder) {
  ASSERT_EQ(site().images.size(), 42u);
  const auto refs = scan_image_references(site().html);
  ASSERT_EQ(refs.size(), 42u);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(refs[i], site().images[i].path) << i;
  }
}

TEST(MicroscapeTest, StaticImageBytesMatchPaperTotal) {
  // Paper: 40 static GIFs totalling 103,299 bytes. Synthetic fitting lands
  // within a few percent.
  const double total = static_cast<double>(site().static_gif_bytes());
  EXPECT_NEAR(total, 103299.0, 0.08 * 103299.0);
  std::size_t statics = 0;
  for (const auto& img : site().images) {
    if (!img.animated) ++statics;
  }
  EXPECT_EQ(statics, 40u);
}

TEST(MicroscapeTest, AnimationBytesMatchPaperTotal) {
  const double total = static_cast<double>(site().animated_gif_bytes());
  EXPECT_NEAR(total, 24988.0, 0.15 * 24988.0);
}

TEST(MicroscapeTest, SizeHistogramMatchesPaper) {
  // 19 images under 1 KB, 7 of 1-2 KB, 6 of 2-3 KB.
  unsigned under_1k = 0, under_2k = 0, under_3k = 0;
  for (const auto& img : site().images) {
    if (img.animated) continue;
    const std::size_t n = img.gif_bytes.size();
    if (n < 1024) {
      ++under_1k;
    } else if (n < 2048) {
      ++under_2k;
    } else if (n < 3072) {
      ++under_3k;
    }
  }
  EXPECT_NEAR(under_1k, 19, 2);
  EXPECT_NEAR(under_2k, 7, 2);
  EXPECT_NEAR(under_3k, 6, 2);
}

TEST(MicroscapeTest, ImagesRangeFrom70BytesUp) {
  std::size_t smallest = SIZE_MAX, largest = 0;
  for (const auto& img : site().images) {
    smallest = std::min(smallest, img.gif_bytes.size());
    largest = std::max(largest, img.gif_bytes.size());
  }
  EXPECT_LE(smallest, 100u);   // paper: 70 B
  EXPECT_GE(largest, 30000u);  // paper: ~40 KB
}

TEST(MicroscapeTest, AllGifsDecode) {
  for (const auto& img : site().images) {
    const auto decoded = decode_gif(img.gif_bytes);
    EXPECT_TRUE(decoded.ok) << img.path << ": " << decoded.error;
    if (img.animated) {
      EXPECT_GT(decoded.frames.size(), 1u) << img.path;
    }
  }
}

TEST(MicroscapeTest, HtmlDeflatesByPaperFactor) {
  // Paper: 42 KB -> 11 KB, "more than a factor of three".
  const auto compressed = deflate::zlib_compress(site().html);
  const double factor = static_cast<double>(site().html.size()) /
                        static_cast<double>(compressed.size());
  EXPECT_GE(factor, 3.0);
  EXPECT_LE(factor, 5.5);
}

TEST(MicroscapeTest, DeterministicAcrossBuilds) {
  const MicroscapeSite a = build_microscape();
  const MicroscapeSite b = build_microscape();
  EXPECT_EQ(a.html, b.html);
  ASSERT_EQ(a.images.size(), b.images.size());
  for (std::size_t i = 0; i < a.images.size(); ++i) {
    EXPECT_EQ(a.images[i].gif_bytes, b.images[i].gif_bytes) << i;
  }
}

TEST(MicroscapeTest, ScanHandlesPartialPrefix) {
  const std::string& html = site().html;
  // Find the offset just after the 5th image tag closes.
  const auto all = scan_image_references(html);
  ASSERT_GE(all.size(), 6u);
  // Cut mid-way through the document; scanning must return only complete
  // tags and never crash.
  for (std::size_t cut : {100u, 1000u, 5000u, 20000u}) {
    const auto partial = scan_image_references(
        std::string_view(html).substr(0, cut));
    EXPECT_LE(partial.size(), all.size());
    for (std::size_t i = 0; i < partial.size(); ++i) {
      EXPECT_EQ(partial[i], all[i]);
    }
  }
}

TEST(MicroscapeTest, CssReplacementsCoverStaticImages) {
  const auto reps = site().css_replacements();
  EXPECT_EQ(reps.size(), 40u);
  const CssAnalysis analysis = analyze_replacements(reps);
  EXPECT_EQ(analysis.total_images, 40u);
  // Most small text/bullet/spacer images are replaceable; photos are not.
  EXPECT_GE(analysis.replaceable_images, 15u);
  EXPECT_LT(analysis.replaceable_images, 40u);
  // CSS markup is far smaller than the GIFs it replaces.
  EXPECT_GT(analysis.byte_reduction_factor(), 2.0);
  EXPECT_EQ(analysis.requests_saved, analysis.replaceable_images);
}

TEST(CssTest, SolutionsBannerSnippetIsPaperSized) {
  // The paper says the replacement "only takes up around 150 bytes".
  const std::string css = solutions_banner_css();
  EXPECT_GE(css.size(), 120u);
  EXPECT_LE(css.size(), 200u);
}

TEST(CssTest, Figure1SolutionsBannerRatio) {
  // Figure 1: a 682-byte GIF replaced by ~150 bytes => factor > 4.
  const auto& images = site().images;
  // Image 14 is fitted to the 682-byte target.
  const auto& banner = images[14];
  EXPECT_NEAR(static_cast<double>(banner.gif_bytes.size()), 682.0, 80.0);
  const double factor = static_cast<double>(banner.gif_bytes.size()) /
                        static_cast<double>(solutions_banner_css().size());
  EXPECT_GT(factor, 4.0);
}

TEST(CssTest, PhotosAreNotReplaceable) {
  const auto r = make_replacement("/images/hero.gif", ImageKind::kPhoto,
                                  40000, 400, 300);
  EXPECT_FALSE(r.replaceable);
  const auto r2 = make_replacement("/images/banner.gif",
                                   ImageKind::kTextBanner, 682, 120, 24);
  EXPECT_TRUE(r2.replaceable);
  EXPECT_GT(r2.replacement_bytes(), 0u);
  EXPECT_LT(r2.replacement_bytes(), 682u);
}

}  // namespace
}  // namespace hsim::content
