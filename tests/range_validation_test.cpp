// End-to-end tests for "poor man's multiplexing" (paper §"Range Requests and
// Validation"): revalidation combining If-None-Match with a bounded Range so
// that changed objects return only a metadata prefix.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "server/static_site.hpp"

namespace hsim {
namespace {

struct Rig {
  explicit Rig(client::ClientConfig config,
               harness::NetworkProfile network = harness::wan_profile())
      : rng(11),
        channel(queue, network.channel_config(), rng.fork()),
        client_host(queue, 1, "client", rng.fork()),
        server_host(queue, 2, "server", rng.fork()),
        server(server_host,
               server::StaticSite::from_microscape(harness::shared_site()),
               server::apache_config(), rng.fork()),
        robot(client_host, 2, 80, std::move(config)) {
    channel.attach_a(&client_host);
    channel.attach_b(&server_host);
    client_host.attach_uplink(&channel.uplink_from_a());
    server_host.attach_uplink(&channel.uplink_from_b());
    server.start(80);
  }

  void first_visit() {
    bool done = false;
    robot.start_first_visit("/index.html", [&] { done = true; });
    queue.run_until(queue.now() + sim::seconds(300));
    ASSERT_TRUE(done);
  }

  void revalidate() {
    bool done = false;
    robot.start_revalidation("/index.html", [&] { done = true; });
    queue.run_until(queue.now() + sim::seconds(300));
    ASSERT_TRUE(done);
  }

  sim::EventQueue queue;
  sim::Rng rng;
  net::Channel channel;
  tcp::Host client_host;
  tcp::Host server_host;
  server::HttpServer server;
  client::Robot robot;
};

client::ClientConfig range_config() {
  client::ClientConfig c =
      harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
  c.validate_with_ranges = true;
  c.range_prefix_bytes = 1360;
  return c;
}

TEST(RangeValidationTest, UnchangedSiteStillGetsAll304s) {
  Rig rig(range_config());
  rig.first_visit();
  rig.revalidate();
  EXPECT_EQ(rig.robot.stats().responses_not_modified, 43u);
  EXPECT_EQ(rig.robot.stats().responses_partial, 0u);
}

TEST(RangeValidationTest, ChangedImageReturnsOnlyPrefix) {
  Rig rig(range_config());
  rig.first_visit();
  // Revise the big hero image (the largest resource on the page).
  std::string hero_path;
  std::size_t hero_size = 0;
  for (const auto& img : harness::shared_site().images) {
    if (img.gif_bytes.size() > hero_size) {
      hero_size = img.gif_bytes.size();
      hero_path = img.path;
    }
  }
  ASSERT_GT(hero_size, 20'000u);
  ASSERT_TRUE(rig.server.site().update(
      hero_path, std::vector<std::uint8_t>(hero_size, 0x77),
      http::kSimulationEpoch + 500));

  rig.revalidate();
  EXPECT_EQ(rig.robot.stats().responses_not_modified, 42u);
  EXPECT_EQ(rig.robot.stats().responses_partial, 1u);
  // Only the metadata prefix crossed the wire, not the ~30-40 KB image.
  EXPECT_EQ(rig.robot.stats().body_bytes, 1360u);
}

TEST(RangeValidationTest, WithoutRangesChangedImageMonopolizesConnection) {
  Rig plain(harness::robot_config(client::ProtocolMode::kHttp11Pipelined));
  plain.first_visit();
  std::string hero_path;
  std::size_t hero_size = 0;
  for (const auto& img : harness::shared_site().images) {
    if (img.gif_bytes.size() > hero_size) {
      hero_size = img.gif_bytes.size();
      hero_path = img.path;
    }
  }
  ASSERT_TRUE(plain.server.site().update(
      hero_path, std::vector<std::uint8_t>(hero_size, 0x77),
      http::kSimulationEpoch + 500));
  plain.revalidate();
  // The full new entity is transferred.
  EXPECT_EQ(plain.robot.stats().body_bytes, hero_size);
  EXPECT_EQ(plain.robot.stats().responses_ok, 1u);
  EXPECT_EQ(plain.robot.stats().responses_not_modified, 42u);
}

TEST(RangeValidationTest, RangeValidationFasterOnPpp) {
  // On the modem, a changed 30-40 KB image costs ~10 s of extra transfer
  // unless range validation bounds it.
  auto run = [&](bool with_ranges) {
    client::ClientConfig config =
        harness::robot_config(client::ProtocolMode::kHttp11Pipelined);
    config.validate_with_ranges = with_ranges;
    Rig rig(config, harness::ppp_profile());
    rig.first_visit();
    std::string hero_path;
    std::size_t hero_size = 0;
    for (const auto& img : harness::shared_site().images) {
      if (img.gif_bytes.size() > hero_size) {
        hero_size = img.gif_bytes.size();
        hero_path = img.path;
      }
    }
    rig.server.site().update(hero_path,
                             std::vector<std::uint8_t>(hero_size, 0x77),
                             http::kSimulationEpoch + 500);
    rig.revalidate();
    return rig.robot.stats().elapsed_seconds();
  };
  const double with_ranges = run(true);
  const double without = run(false);
  EXPECT_LT(with_ranges + 5.0, without);
}

TEST(RangeValidationTest, RootIsNeverRangeValidated) {
  // The HTML itself must arrive whole (it drives rendering and parsing).
  Rig rig(range_config());
  rig.first_visit();
  std::string new_html = harness::shared_site().html;
  new_html += "<!-- revised -->";
  rig.server.site().update("/index.html",
                           {new_html.begin(), new_html.end()},
                           http::kSimulationEpoch + 500);
  rig.revalidate();
  EXPECT_EQ(rig.robot.stats().responses_ok, 1u);  // full 200, not 206
  EXPECT_EQ(rig.robot.stats().responses_partial, 0u);
  EXPECT_EQ(rig.robot.stats().body_bytes, new_html.size());
}

}  // namespace
}  // namespace hsim
