// Unit tests for the pluggable congestion-control modules.
//
// Two layers:
//   1. Hook-level scripts drive a bare CongestionControl through a fixed
//      ack/dup-ack/loss/timeout/idle scenario and pin the resulting cwnd
//      sequence against a golden trace per module — any change to a module's
//      window arithmetic shows up as a diff in one of these strings.
//   2. Property tests check the documented contracts (halving floors,
//      partial-ACK policy, CA-state machine, forensics counters) and an
//      end-to-end smoke: every module must still deliver a byte stream
//      reliably over a lossy link.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tcp/congestion.hpp"
#include "tcp_test_util.hpp"

namespace hsim {
namespace {

using tcp::CaState;
using tcp::CcContext;
using tcp::CcKind;
using tcp::CongestionControl;
using tcp::LossReason;

constexpr std::uint32_t kMss = 1000;

CcContext base_ctx() {
  CcContext ctx;
  ctx.mss = kMss;
  ctx.initial_cwnd = 2 * kMss;
  ctx.srtt = sim::milliseconds(20);
  ctx.min_rtt = sim::milliseconds(20);
  return ctx;
}

/// Minimal stand-in for the sending side of tcp::Connection: tracks the
/// stream offsets the hooks consume and keeps bytes_in_flight consistent.
struct CcDriver {
  std::unique_ptr<CongestionControl> cc;
  CcContext ctx = base_ctx();

  explicit CcDriver(CcKind kind) : cc(CongestionControl::make(kind)) {
    cc->init(ctx);
  }

  /// Transmit until the window is full.
  void fill() {
    ctx.snd_max = ctx.snd_acked + cc->cwnd();
    ctx.bytes_in_flight = cc->cwnd();
  }

  /// A cumulative ACK advancing by `bytes`, with a Karn-valid RTT sample.
  bool ack(std::size_t bytes) {
    ctx.now += sim::milliseconds(10);
    ctx.snd_acked += bytes;
    if (ctx.snd_max < ctx.snd_acked) ctx.snd_max = ctx.snd_acked;
    ctx.bytes_in_flight = ctx.snd_max - ctx.snd_acked;
    cc->on_rtt_sample(ctx, sim::milliseconds(20));
    return cc->on_new_ack(ctx, bytes);
  }

  /// Three duplicate ACKs followed by the connection's loss detection.
  bool triple_dup_loss() {
    for (std::uint32_t d = 1; d <= 3; ++d) cc->on_duplicate_ack(ctx, d);
    return cc->on_loss_detected(ctx);
  }

  void timeout() {
    ctx.now += sim::milliseconds(500);
    cc->on_timeout(ctx);
  }
};

/// The fixed scripted scenario every module runs for its golden trace:
/// slow start, a fast-retransmit episode with partial ACKs, clean growth,
/// an RTO with full recovery, and an idle restart.
std::vector<std::uint32_t> scripted_trace(CcKind kind) {
  CcDriver d(kind);
  std::vector<std::uint32_t> trace{d.cc->cwnd()};
  auto ack_and_record = [&](std::size_t bytes) {
    d.ack(bytes);
    trace.push_back(d.cc->cwnd());
  };

  // Phase 1: 20 clean full-MSS ACKs.
  for (int i = 0; i < 20; ++i) {
    d.fill();
    ack_and_record(kMss);
  }
  // Phase 2: loss detected by three duplicate ACKs.
  d.fill();
  d.triple_dup_loss();
  trace.push_back(d.cc->cwnd());
  // Phase 3: two partial ACKs, then the ACK covering the loss point.
  ack_and_record(kMss);
  ack_and_record(kMss);
  ack_and_record(d.ctx.snd_max - d.ctx.snd_acked);
  // Phase 4: 10 clean ACKs.
  for (int i = 0; i < 10; ++i) {
    d.fill();
    ack_and_record(kMss);
  }
  // Phase 5: RTO, then ACK the outstanding flight away in MSS chunks.
  d.fill();
  d.timeout();
  trace.push_back(d.cc->cwnd());
  while (d.ctx.snd_acked < d.ctx.snd_max) {
    ack_and_record(static_cast<std::size_t>(std::min<std::uint64_t>(
        kMss, d.ctx.snd_max - d.ctx.snd_acked)));
  }
  // Phase 6: 10 clean ACKs, then an idle restart and one more ACK.
  for (int i = 0; i < 10; ++i) {
    d.fill();
    ack_and_record(kMss);
  }
  d.ctx.now += sim::seconds(5);
  d.cc->after_idle(d.ctx);
  trace.push_back(d.cc->cwnd());
  d.fill();
  ack_and_record(kMss);
  return trace;
}

std::string format_trace(const std::vector<std::uint32_t>& trace) {
  std::string out;
  for (std::uint32_t v : trace) {
    if (!out.empty()) out += ' ';
    out += std::to_string(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Names and parsing.
// ---------------------------------------------------------------------------

TEST(CcKindTest, ParseRoundTripsEveryKind) {
  for (const CcKind kind : tcp::kAllCcKinds) {
    CcKind parsed = CcKind::kReno;
    ASSERT_TRUE(tcp::parse_cc_kind(to_string(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(CcKindTest, ParseAcceptsBbrAliases) {
  CcKind parsed = CcKind::kReno;
  EXPECT_TRUE(tcp::parse_cc_kind("bbr-lite", &parsed));
  EXPECT_EQ(parsed, CcKind::kBbrLite);
  EXPECT_TRUE(tcp::parse_cc_kind("bbrlite", &parsed));
  EXPECT_EQ(parsed, CcKind::kBbrLite);
}

TEST(CcKindTest, ParseRejectsUnknownAndLeavesOutputUntouched) {
  CcKind parsed = CcKind::kCubic;
  EXPECT_FALSE(tcp::parse_cc_kind("vegas", &parsed));
  EXPECT_FALSE(tcp::parse_cc_kind("", &parsed));
  EXPECT_FALSE(tcp::parse_cc_kind("Reno", &parsed));  // case-sensitive
  EXPECT_EQ(parsed, CcKind::kCubic);
}

TEST(CcKindTest, DefaultTcpOptionsRunReno) {
  EXPECT_EQ(tcp::TcpOptions{}.cc, CcKind::kReno);
}

// ---------------------------------------------------------------------------
// Reno: the byte-exact legacy arithmetic.
// ---------------------------------------------------------------------------

TEST(RenoTest, InitSetsInitialWindowAndOpenSsthresh) {
  CcDriver d(CcKind::kReno);
  EXPECT_EQ(d.cc->cwnd(), 2 * kMss);
  EXPECT_GE(d.cc->ssthresh(), 1u << 30);
  EXPECT_EQ(d.cc->ca_state(), CaState::kSlowStart);
}

TEST(RenoTest, SlowStartAddsOneMssPerMssAcked) {
  CcDriver d(CcKind::kReno);
  d.fill();
  d.ack(kMss);
  EXPECT_EQ(d.cc->cwnd(), 3 * kMss);
  d.fill();
  d.ack(kMss);
  EXPECT_EQ(d.cc->cwnd(), 4 * kMss);
}

TEST(RenoTest, AvoidanceAddsMssSquaredOverCwnd) {
  CcDriver d(CcKind::kReno);
  // Force avoidance: collapse ssthresh with a loss, then recover fully.
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  d.ack(d.ctx.snd_max - d.ctx.snd_acked);  // full ACK ends the episode
  ASSERT_EQ(d.cc->ca_state(), CaState::kAvoidance);
  const std::uint32_t before = d.cc->cwnd();
  d.fill();
  d.ack(kMss);
  EXPECT_EQ(d.cc->cwnd(), before + std::max(1u, kMss * kMss / before));
}

TEST(RenoTest, LossHalvesFlightWithTwoSegmentFloor) {
  CcDriver d(CcKind::kReno);
  // Grow to a 10-segment window, full flight.
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  ASSERT_EQ(d.cc->cwnd(), 10 * kMss);
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_EQ(d.cc->cwnd(), 5 * kMss);
  EXPECT_EQ(d.cc->ssthresh(), 5 * kMss);

  // A second, app-limited connection: only one segment in flight, so the
  // halved window floors at two segments.
  CcDriver e(CcKind::kReno);
  e.ctx.snd_max = kMss;
  e.ctx.bytes_in_flight = kMss;
  ASSERT_TRUE(e.triple_dup_loss());
  EXPECT_EQ(e.cc->cwnd(), 2 * kMss);
  EXPECT_EQ(e.cc->ssthresh(), 2 * kMss);
}

TEST(RenoTest, HalvingCapsFlightAtCwnd) {
  // bytes_in_flight beyond cwnd (e.g. after a mid-flight cwnd collapse)
  // must not inflate ssthresh: the estimate is min(flight, cwnd).
  CcDriver d(CcKind::kReno);
  d.ctx.snd_max = 100 * kMss;
  d.ctx.bytes_in_flight = 100 * kMss;  // way beyond the 2-segment cwnd
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_EQ(d.cc->ssthresh(), 2 * kMss);  // max(cwnd/2, 2*mss) floor
}

TEST(RenoTest, TimeoutCollapsesToOneSegment) {
  CcDriver d(CcKind::kReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  const std::uint32_t pre = d.cc->cwnd();
  d.timeout();
  EXPECT_EQ(d.cc->cwnd(), kMss);
  EXPECT_EQ(d.cc->ssthresh(), pre / 2);
  EXPECT_EQ(d.cc->ca_state(), CaState::kLoss);
}

TEST(RenoTest, ReentersRecoveryAndRehalves) {
  CcDriver d(CcKind::kReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  const std::uint32_t first_half = d.cc->cwnd();
  // Reno's dup-ack logic re-fires inside the same episode and halves again.
  EXPECT_TRUE(d.triple_dup_loss());
  EXPECT_LT(d.cc->cwnd(), first_half);
  EXPECT_EQ(d.cc->forensics().enter_recovery, 2u);
}

TEST(RenoTest, PartialAckDoesNotRequestRetransmit) {
  CcDriver d(CcKind::kReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_FALSE(d.ack(kMss));  // partial ACK: legacy Reno waits for dup-acks
  EXPECT_EQ(d.cc->forensics().partial_ack_retransmits, 0u);
}

TEST(RenoTest, AfterIdleKeepsTheWindow) {
  // The legacy stack had no idle restart; Reno must preserve that (it is
  // what keeps the golden traces byte-exact).
  CcDriver d(CcKind::kReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  const std::uint32_t before = d.cc->cwnd();
  d.ctx.now += sim::seconds(30);
  d.cc->after_idle(d.ctx);
  EXPECT_EQ(d.cc->cwnd(), before);
  EXPECT_EQ(d.cc->forensics().after_idle_resets, 1u);
}

// ---------------------------------------------------------------------------
// NewReno: partial-ACK repair without re-halving.
// ---------------------------------------------------------------------------

TEST(NewRenoTest, PartialAckRequestsImmediateRetransmitWithoutRehalving) {
  CcDriver d(CcKind::kNewReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  const std::uint32_t halved = d.cc->cwnd();
  EXPECT_TRUE(d.ack(kMss));  // partial ACK: repair the next hole now
  EXPECT_EQ(d.cc->cwnd(), halved);  // window frozen during recovery
  EXPECT_EQ(d.cc->forensics().partial_ack_retransmits, 1u);
}

TEST(NewRenoTest, DeclinesReenteringRecovery) {
  CcDriver d(CcKind::kNewReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  const std::uint32_t halved = d.cc->cwnd();
  EXPECT_FALSE(d.triple_dup_loss());  // already recovering: no re-halve
  EXPECT_EQ(d.cc->cwnd(), halved);
  EXPECT_EQ(d.cc->forensics().enter_recovery, 1u);
}

TEST(NewRenoTest, FullAckDeflatesToSsthreshAndExits) {
  CcDriver d(CcKind::kNewReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  d.ack(kMss);                             // partial
  d.ack(d.ctx.snd_max - d.ctx.snd_acked);  // full ACK
  EXPECT_EQ(d.cc->ca_state(), CaState::kAvoidance);
  // The full ACK first deflates to ssthresh, then takes its own avoidance
  // growth step (exit runs before cc_new_ack).
  const std::uint32_t ss = d.cc->ssthresh();
  EXPECT_EQ(d.cc->cwnd(), ss + std::max(1u, kMss * kMss / ss));
  EXPECT_EQ(d.cc->forensics().full_recoveries, 1u);
}

TEST(NewRenoTest, AfterIdleDecaysToInitialWindow) {
  CcDriver d(CcKind::kNewReno);
  for (int i = 0; i < 8; ++i) {
    d.fill();
    d.ack(kMss);
  }
  ASSERT_GT(d.cc->cwnd(), d.ctx.initial_cwnd);
  d.ctx.now += sim::seconds(30);
  d.cc->after_idle(d.ctx);
  EXPECT_EQ(d.cc->cwnd(), d.ctx.initial_cwnd);
}

// ---------------------------------------------------------------------------
// CUBIC.
// ---------------------------------------------------------------------------

TEST(CubicTest, LossAppliesBetaDecrease) {
  CcDriver d(CcKind::kCubic);
  for (int i = 0; i < 18; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  const std::uint32_t pre = d.cc->cwnd();
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_EQ(d.cc->ssthresh(),
            static_cast<std::uint32_t>(static_cast<double>(pre) * 0.7));
  EXPECT_EQ(d.cc->cwnd(), d.cc->ssthresh());
}

TEST(CubicTest, AvoidanceGrowthIsCappedAtOneSegmentPerAck) {
  CcDriver d(CcKind::kCubic);
  for (int i = 0; i < 18; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  d.ack(d.ctx.snd_max - d.ctx.snd_acked);  // exit recovery into avoidance
  ASSERT_EQ(d.cc->ca_state(), CaState::kAvoidance);
  for (int i = 0; i < 30; ++i) {
    const std::uint32_t before = d.cc->cwnd();
    d.fill();
    d.ack(kMss);
    EXPECT_LE(d.cc->cwnd(), before + kMss) << "ack " << i;
    EXPECT_GE(d.cc->cwnd(), before) << "ack " << i;
  }
}

TEST(CubicTest, WindowRecoversTowardsPriorMaxAfterLoss) {
  CcDriver d(CcKind::kCubic);
  for (int i = 0; i < 18; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  const std::uint32_t w_max = d.cc->cwnd();
  ASSERT_TRUE(d.triple_dup_loss());
  d.ack(d.ctx.snd_max - d.ctx.snd_acked);
  // Plenty of clean RTTs: the cubic must climb back to (and past) w_max.
  for (int i = 0; i < 400 && d.cc->cwnd() <= w_max; ++i) {
    d.fill();
    d.ack(kMss);
  }
  EXPECT_GT(d.cc->cwnd(), w_max);
}

// ---------------------------------------------------------------------------
// BBR-lite.
// ---------------------------------------------------------------------------

TEST(BbrTest, CwndNeverFallsBelowFourSegmentsInRecovery) {
  CcDriver d(CcKind::kBbrLite);
  d.ctx.snd_max = kMss;  // app-limited: a single segment in flight
  d.ctx.bytes_in_flight = kMss;
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_GE(d.cc->cwnd(), 4 * kMss);
}

TEST(BbrTest, FullAckRestoresThePreLossWindow) {
  // During startup (before the pipe is declared full) the window is well
  // above the 4-segment floor; a loss with a partially-drained flight drops
  // cwnd to the floor, and the full ACK restores the pre-loss window — loss
  // is treated as a repair problem, not a rate signal.
  CcDriver d(CcKind::kBbrLite);
  for (int i = 0; i < 5; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  d.ctx.bytes_in_flight = 2 * kMss;  // most of the flight already delivered
  const std::uint32_t pre = d.cc->cwnd();
  ASSERT_GT(pre, 4 * kMss);
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_EQ(d.cc->cwnd(), 4 * kMss);  // fell back to max(flight, floor)
  d.ack(d.ctx.snd_max - d.ctx.snd_acked);
  EXPECT_GE(d.cc->cwnd(), pre);  // prior_cwnd restored on the full ACK
}

TEST(BbrTest, PartialAckRequestsRepair) {
  CcDriver d(CcKind::kBbrLite);
  for (int i = 0; i < 12; ++i) {
    d.fill();
    d.ack(kMss);
  }
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_TRUE(d.ack(kMss));
}

// ---------------------------------------------------------------------------
// CA-state machine and forensics (base-class behaviour, all modules).
// ---------------------------------------------------------------------------

TEST(CaStateTest, WalksThroughAllFourStates) {
  CcDriver d(CcKind::kReno);
  EXPECT_EQ(d.cc->ca_state(), CaState::kSlowStart);
  d.fill();
  ASSERT_TRUE(d.triple_dup_loss());
  EXPECT_EQ(d.cc->ca_state(), CaState::kFastRecovery);
  d.fill();
  d.timeout();
  EXPECT_EQ(d.cc->ca_state(), CaState::kLoss);
  d.ack(d.ctx.snd_max - d.ctx.snd_acked);  // covers the loss point
  EXPECT_EQ(d.cc->ca_state(), CaState::kAvoidance);  // cwnd >= ssthresh now

  const tcp::LossForensics& f = d.cc->forensics();
  EXPECT_EQ(f.enter_recovery, 1u);
  EXPECT_EQ(f.enter_loss, 1u);
  EXPECT_EQ(f.recovery_to_loss, 1u);  // the RTO fired while recovering
  EXPECT_EQ(f.ca_entries[static_cast<int>(CaState::kFastRecovery)], 1u);
  EXPECT_EQ(f.ca_entries[static_cast<int>(CaState::kLoss)], 1u);
  // The landing state is recorded at the exit, before the same ACK's growth
  // step lifts cwnd to ssthresh — so the episode lands in slow-start.
  EXPECT_EQ(f.ca_entries[static_cast<int>(CaState::kSlowStart)], 1u);
  EXPECT_EQ(f.ca_entries[static_cast<int>(CaState::kAvoidance)], 0u);
}

TEST(ForensicsTest, FirstLossReasonIsSticky) {
  CcDriver d(CcKind::kReno);
  d.fill();
  d.ctx.now = sim::milliseconds(77);
  ASSERT_TRUE(d.triple_dup_loss());
  d.fill();
  d.timeout();
  EXPECT_EQ(d.cc->forensics().first_loss_reason, LossReason::kDupAck);
  EXPECT_EQ(d.cc->forensics().first_loss_time, sim::milliseconds(77));

  CcDriver e(CcKind::kReno);
  e.fill();
  e.timeout();
  EXPECT_EQ(e.cc->forensics().first_loss_reason, LossReason::kTimeout);
}

TEST(ForensicsTest, SpuriousRtoAndIdleCountersAccumulate) {
  CcDriver d(CcKind::kCubic);
  d.cc->note_spurious_rto();
  d.cc->note_spurious_rto();
  d.cc->after_idle(d.ctx);
  EXPECT_EQ(d.cc->forensics().spurious_rtos, 2u);
  EXPECT_EQ(d.cc->forensics().after_idle_resets, 1u);
}

// ---------------------------------------------------------------------------
// Golden scripted traces: the exact cwnd sequence for the shared scenario.
// ---------------------------------------------------------------------------

TEST(GoldenTraceTest, RenoScriptedCwndTrace) {
  EXPECT_EQ(
      format_trace(scripted_trace(CcKind::kReno)),
      "2000 3000 4000 5000 6000 7000 8000 9000 10000 11000 12000 13000 "
      "14000 15000 16000 17000 18000 19000 20000 21000 22000 11000 11090 "
      "11180 11269 11357 11445 11532 11618 11704 11789 11873 11957 12040 "
      "12123 1000 2000 3000 4000 5000 6000 7000 7142 7282 7419 7553 7685 "
      "7815 7942 8067 8190 8312 8432 8550 8666 8781 8894 9006 9117 9117 "
      "9226");
}

TEST(GoldenTraceTest, NewRenoScriptedCwndTrace) {
  EXPECT_EQ(
      format_trace(scripted_trace(CcKind::kNewReno)),
      "2000 3000 4000 5000 6000 7000 8000 9000 10000 11000 12000 13000 "
      "14000 15000 16000 17000 18000 19000 20000 21000 22000 11000 11000 "
      "11000 11090 11180 11269 11357 11445 11532 11618 11704 11789 11873 "
      "11957 1000 2000 3000 4000 5000 6000 6166 6328 6486 6640 6790 6937 "
      "6145 6307 6465 6619 6770 6917 7061 7202 7340 7476 7609 2000 3000");
}

TEST(GoldenTraceTest, CubicScriptedCwndTrace) {
  EXPECT_EQ(
      format_trace(scripted_trace(CcKind::kCubic)),
      "2000 3000 4000 5000 6000 7000 8000 9000 10000 11000 12000 13000 "
      "14000 15000 16000 17000 18000 19000 20000 21000 22000 15399 15399 "
      "15399 15433 15467 15501 15536 15570 15604 15638 15671 15705 15739 "
      "15773 1000 2000 3000 4000 5000 6000 7000 8000 9000 10000 11000 "
      "12000 12044 12088 12131 12175 12041 12256 12299 12342 12385 12428 "
      "12471 12513 12555 12597 12639 2000 3000");
}

TEST(GoldenTraceTest, BbrScriptedCwndTrace) {
  EXPECT_EQ(
      format_trace(scripted_trace(CcKind::kBbrLite)),
      "2000 3000 4000 5000 5770 5770 5770 5770 4000 4000 4000 4000 4000 "
      "4000 4000 4000 4000 4000 4000 4000 4000 4000 4000 4000 4000 5000 "
      "5000 4000 4000 4000 4000 4000 4000 4000 4000 1000 2000 3000 4000 "
      "4000 4000 4000 5000 5000 4000 4000 4000 4000 4000 4000 4000 5000");
}

TEST(GoldenTraceTest, ScriptIsDeterministic) {
  for (const CcKind kind : tcp::kAllCcKinds) {
    EXPECT_EQ(scripted_trace(kind), scripted_trace(kind))
        << to_string(kind);
  }
}

// ---------------------------------------------------------------------------
// End-to-end smoke: every module still delivers reliably over a lossy link.
// ---------------------------------------------------------------------------

TEST(CcIntegrationTest, AllModulesDeliverReliablyOverLossyLink) {
  using namespace testutil;
  for (const CcKind kind : tcp::kAllCcKinds) {
    SCOPED_TRACE(std::string(to_string(kind)));
    net::ChannelConfig cfg =
        net::ChannelConfig::symmetric(2'000'000, sim::milliseconds(30));
    cfg.a_to_b.random_drop_probability = 0.03;
    cfg.b_to_a.random_drop_probability = 0.03;
    TestNet net(cfg, /*seed=*/991 + static_cast<std::uint64_t>(kind));

    tcp::TcpOptions opts;
    opts.cc = kind;
    std::vector<std::uint8_t> received;
    net.server.listen(
        80,
        [&](tcp::ConnectionPtr conn) {
          conn->set_on_data([&received, raw = conn.get()] {
            auto b = raw->read_all().to_vector();
            received.insert(received.end(), b.begin(), b.end());
          });
        },
        opts);

    tcp::ConnectionPtr conn = net.client.connect(kServerAddr, 80, opts);
    const auto payload = pattern_bytes(60'000, 0xC0FFEE);
    std::size_t off = 0;
    auto pump = [&] {
      off += conn->send(std::span<const std::uint8_t>(payload.data() + off,
                                                      payload.size() - off));
    };
    conn->set_on_connected(pump);
    conn->set_on_send_space(pump);
    net.queue.run_until(sim::seconds(600));

    ASSERT_EQ(received, payload);
    EXPECT_EQ(conn->congestion().kind(), kind);
    // 3% loss each way over 60 KB: some loss episode must have been seen
    // and recorded by the forensics.
    const tcp::LossForensics& f = conn->loss_forensics();
    EXPECT_GT(f.enter_recovery + f.enter_loss, 0u);
  }
}

}  // namespace
}  // namespace hsim
