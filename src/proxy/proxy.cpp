#include "proxy/proxy.hpp"

#include <algorithm>

namespace hsim::proxy {

ProxyMetrics ProxyMetrics::bind() {
  ProxyMetrics m;
  if (obs::registry() == nullptr) return m;
  m.client_connections = obs::counter_handle("proxy.client_connections");
  m.upstream_connections = obs::counter_handle("proxy.upstream_connections");
  m.bytes_up = obs::counter_handle("proxy.bytes_relayed_up");
  m.bytes_down = obs::counter_handle("proxy.bytes_relayed_down");
  m.requests_forwarded = obs::counter_handle("proxy.requests_forwarded");
  m.cache_fresh_hits = obs::counter_handle("proxy.cache_fresh_hits");
  m.cache_revalidated_hits =
      obs::counter_handle("proxy.cache_revalidated_hits");
  m.cache_misses = obs::counter_handle("proxy.cache_misses");
  m.cache_stores = obs::counter_handle("proxy.cache_stores");
  m.upstream_body_bytes = obs::counter_handle("proxy.upstream_body_bytes");
  m.idle_hangups = obs::counter_handle("proxy.idle_hangups");
  m.breaker_trips = obs::counter_handle("proxy.breaker_trips");
  m.breaker_rejections = obs::counter_handle("proxy.breaker_rejections");
  m.breaker_probes = obs::counter_handle("proxy.breaker_probes");
  return m;
}

// ---------------------------------------------------------------------------
// TunnelProxy
// ---------------------------------------------------------------------------

TunnelProxy::TunnelProxy(tcp::Host& host, TunnelProxyConfig config)
    : host_(host), config_(std::move(config)) {}

void TunnelProxy::start(net::Port port) {
  port_ = port;
  host_.listen(port,
               [this](tcp::ConnectionPtr c) { on_client(std::move(c)); },
               config_.tcp);
}

void TunnelProxy::stop() { host_.stop_listening(port_); }

void TunnelProxy::arm_idle(const RelayPtr& relay) {
  if (config_.idle_timeout <= 0) return;
  std::weak_ptr<Relay> weak = relay;
  relay->idle_timer->arm(config_.idle_timeout, [this, weak] {
    if (auto r = weak.lock()) {
      ++stats_.idle_hangups;
      metrics_.idle_hangups.inc();
      if (r->client) r->client->abort();
      if (r->upstream) r->upstream->abort();
      relays_.erase(r->client.get());
    }
  });
}

void TunnelProxy::on_client(tcp::ConnectionPtr conn) {
  ++stats_.client_connections;
  metrics_.client_connections.inc();
  auto relay = std::make_shared<Relay>();
  relay->client = conn;
  relay->idle_timer = std::make_unique<sim::Timer>(host_.event_queue());
  relays_[conn.get()] = relay;

  ++stats_.upstream_connections;
  metrics_.upstream_connections.inc();
  relay->upstream =
      host_.connect(config_.origin_addr, config_.origin_port, config_.tcp);

  std::weak_ptr<Relay> weak = relay;
  relay->upstream->set_on_connected([this, weak] {
    if (auto r = weak.lock()) {
      r->upstream_connected = true;
      if (!r->pending_up.empty()) {
        r->upstream->send(r->pending_up);
        r->pending_up.clear();
      }
    }
  });
  relay->client->set_on_data([this, weak] {
    if (auto r = weak.lock()) relay_up(r);
  });
  relay->upstream->set_on_data([this, weak] {
    if (auto r = weak.lock()) relay_down(r);
  });
  // Close propagation: each side's FIN is mirrored to the other side.
  relay->client->set_on_peer_fin([weak] {
    if (auto r = weak.lock()) r->upstream->shutdown_send();
  });
  relay->upstream->set_on_peer_fin([weak] {
    if (auto r = weak.lock()) r->client->shutdown_send();
  });
  auto cleanup = [this, weak] {
    if (auto r = weak.lock()) {
      r->idle_timer->cancel();
      relays_.erase(r->client.get());
    }
  };
  relay->client->set_on_closed(cleanup);
  relay->client->set_on_reset(cleanup);
  arm_idle(relay);
}

buf::Chain TunnelProxy::filter_request_bytes(const RelayPtr& relay,
                                             buf::Chain bytes) {
  if (!config_.strip_connection_headers || relay->head_scanned) return bytes;
  // Minimal header-awareness: scan the first request head for a Connection
  // line and drop it. (A real mitigating proxy of the era did exactly this
  // and nothing more.) Bytes past the first blank line pass untouched. Only
  // this one head is ever flattened; the steady-state path stays zero-copy.
  const std::string text = bytes.to_string();
  const std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) return bytes;  // head incomplete: pass
  relay->head_scanned = true;
  std::string head = text.substr(0, head_end + 4);
  std::size_t line_start = 0;
  std::string filtered;
  while (line_start < head.size()) {
    std::size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string_view line(head.data() + line_start,
                                line_end - line_start);
    const bool is_connection =
        line.size() >= 11 &&
        http::iequals(line.substr(0, 11), "connection:");
    if (is_connection) {
      ++stats_.keep_alive_headers_stripped;
    } else {
      filtered.append(line);
      filtered.append("\r\n");
    }
    line_start = line_end + 2;
  }
  filtered += text.substr(head_end + 4);
  buf::Chain out;
  out.append(buf::Bytes(std::string_view(filtered)));
  return out;
}

void TunnelProxy::relay_up(const RelayPtr& relay) {
  arm_idle(relay);
  buf::Chain bytes = relay->client->read_all();
  if (bytes.empty()) return;
  bytes = filter_request_bytes(relay, std::move(bytes));
  stats_.bytes_relayed_up += bytes.size();
  metrics_.bytes_up.inc(bytes.size());
  if (!relay->upstream_connected) {
    relay->pending_up.append(std::move(bytes));
    return;
  }
  relay->upstream->send(bytes);
}

void TunnelProxy::relay_down(const RelayPtr& relay) {
  arm_idle(relay);
  const buf::Chain bytes = relay->upstream->read_all();
  if (bytes.empty()) return;
  stats_.bytes_relayed_down += bytes.size();
  metrics_.bytes_down.inc(bytes.size());
  relay->client->send(bytes);
}

// ---------------------------------------------------------------------------
// HttpProxy
// ---------------------------------------------------------------------------

HttpProxy::HttpProxy(tcp::Host& host, HttpProxyConfig config)
    : host_(host), config_(std::move(config)) {}

void HttpProxy::start(net::Port port) {
  port_ = port;
  host_.listen(port,
               [this](tcp::ConnectionPtr c) { on_client(std::move(c)); },
               config_.tcp);
}

void HttpProxy::stop() { host_.stop_listening(port_); }

void HttpProxy::strip_hop_by_hop(http::Headers& headers, ProxyStats& stats) {
  // Remove any headers the Connection header names, then Connection itself
  // (RFC 2068 §14.10 — the fix the paper alludes to).
  if (const auto connection = headers.get("Connection")) {
    std::string value(*connection);
    std::size_t start = 0;
    while (start < value.size()) {
      std::size_t comma = value.find(',', start);
      if (comma == std::string::npos) comma = value.size();
      std::string token = value.substr(start, comma - start);
      // Trim.
      while (!token.empty() && token.front() == ' ') token.erase(0, 1);
      while (!token.empty() && token.back() == ' ') token.pop_back();
      if (!token.empty() && !http::iequals(token, "close")) {
        headers.remove(token);
      }
      start = comma + 1;
    }
    headers.remove("Connection");
    ++stats.keep_alive_headers_stripped;
  }
  headers.remove("Keep-Alive");
  headers.remove("Proxy-Connection");
}

void HttpProxy::on_client(tcp::ConnectionPtr conn) {
  ++stats_.client_connections;
  metrics_.client_connections.inc();
  auto state = std::make_shared<ClientConn>();
  state->conn = conn;
  state->idle_timer = std::make_unique<sim::Timer>(host_.event_queue());
  clients_[conn.get()] = state;

  std::weak_ptr<ClientConn> weak = state;
  conn->set_on_data([this, weak] {
    auto s = weak.lock();
    if (!s) return;
    s->parser.feed(s->conn->read_all());
    while (auto request = s->parser.next()) {
      s->pending.push_back(std::move(*request));
    }
    pump(s);
  });
  auto cleanup = [this, weak] {
    if (auto s = weak.lock()) {
      s->idle_timer->cancel();
      clients_.erase(s->conn.get());
    }
  };
  conn->set_on_closed(cleanup);
  conn->set_on_reset(cleanup);
  conn->set_on_peer_fin([this, weak] {
    if (auto s = weak.lock()) {
      if (s->pending.empty() && !s->forwarding) s->conn->shutdown_send();
    }
  });
  if (config_.idle_timeout > 0) {
    state->idle_timer->arm(config_.idle_timeout, [this, weak] {
      if (auto s = weak.lock()) {
        ++stats_.idle_hangups;
        metrics_.idle_hangups.inc();
        s->conn->shutdown_send();
      }
    });
  }
}

void HttpProxy::pump(const ClientConnPtr& state) {
  if (state->forwarding || state->pending.empty()) return;
  http::Request request = std::move(state->pending.front());
  state->pending.pop_front();
  state->forwarding = true;
  const sim::Time cpu = config_.per_request_cpu;
  std::weak_ptr<ClientConn> weak = state;
  host_.event_queue().schedule_in(cpu, [this, weak,
                                        request = std::move(request)]() mutable {
    if (auto s = weak.lock()) forward(s, std::move(request));
  });
}

void HttpProxy::respond(const ClientConnPtr& state, http::Response response) {
  ++stats_.responses_forwarded;
  strip_hop_by_hop(response.headers, stats_);
  response.headers.add("Via", config_.via_token);
  const buf::Chain wire = response.serialize_chain();
  stats_.bytes_relayed_down += wire.size();
  metrics_.bytes_down.inc(wire.size());
  state->conn->send(wire);
  state->forwarding = false;
  if (state->conn->peer_closed() && state->pending.empty()) {
    state->conn->shutdown_send();
  } else {
    pump(state);
  }
}

namespace {
/// Runs one request against the origin over a fresh connection; calls
/// `handler` with the response, or with nullopt if the origin reset.
void fetch_upstream(tcp::Host& host, const HttpProxyConfig& config,
                    ProxyStats& stats, http::Request request,
                    std::function<void(std::optional<http::Response>)>
                        handler) {
  ++stats.upstream_connections;
  tcp::ConnectionPtr upstream =
      host.connect(config.origin_addr, config.origin_port, config.tcp);
  auto parser = std::make_shared<http::ResponseParser>();
  parser->push_request_context(request.method);
  // A Bytes handle is its own shared ownership — no extra shared_ptr needed.
  const buf::Bytes wire(request.serialize());
  stats.bytes_relayed_up += wire.size();
  auto shared_handler = std::make_shared<
      std::function<void(std::optional<http::Response>)>>(std::move(handler));

  upstream->set_on_connected([upstream = upstream.get(), wire] {
    upstream->send(wire);
    upstream->shutdown_send();  // one request per upstream connection
  });
  upstream->set_on_data(
      [upstream = upstream.get(), parser, shared_handler] {
        parser->feed(upstream->read_all());
        if (auto response = parser->next()) {
          if (*shared_handler) {
            auto h = std::move(*shared_handler);
            *shared_handler = nullptr;
            h(std::move(*response));
          }
        }
      });
  upstream->set_on_peer_fin([upstream = upstream.get(), parser,
                             shared_handler] {
    parser->feed(upstream->read_all());
    parser->on_connection_closed();
    auto response = parser->next();
    if (*shared_handler) {
      auto h = std::move(*shared_handler);
      *shared_handler = nullptr;
      // Close without a complete response is an upstream failure, not a
      // silent hang — the handler must always resolve.
      h(response ? std::optional<http::Response>(std::move(*response))
                 : std::nullopt);
    }
  });
  upstream->set_on_reset([shared_handler] {
    if (*shared_handler) {
      auto h = std::move(*shared_handler);
      *shared_handler = nullptr;
      h(std::nullopt);
    }
  });
}
}  // namespace

void HttpProxy::store_in_cache(const std::string& target,
                               const http::Response& response) {
  CacheEntry entry;
  entry.response = response;
  if (const auto etag = response.headers.get("ETag")) {
    entry.etag = std::string(*etag);
  }
  entry.stored_at = host_.event_queue().now();
  cache_[target] = std::move(entry);
  ++stats_.cache_stores;
  metrics_.cache_stores.inc();
}

bool HttpProxy::try_cache(const ClientConnPtr& state,
                          const http::Request& request) {
  if (!config_.enable_cache || request.method != http::Method::kGet) {
    return false;
  }
  const auto it = cache_.find(request.target);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    metrics_.cache_misses.inc();
    return false;
  }
  const sim::Time now = host_.event_queue().now();

  // Serving helper: honours the *client's* conditional request against the
  // cached validator (a 304 to the client costs almost nothing).
  auto serve_entry = [this, state](const CacheEntry& entry,
                                   const http::Request& req) {
    const auto client_inm = req.headers.get("If-None-Match");
    if (client_inm && !entry.etag.empty() && *client_inm == entry.etag) {
      http::Response not_modified;
      not_modified.version = req.version;
      not_modified.status = 304;
      not_modified.reason = std::string(http::default_reason(304));
      not_modified.headers.add("ETag", entry.etag);
      respond(state, std::move(not_modified));
      return;
    }
    http::Response copy = entry.response;
    copy.headers.set(
        "Age", std::to_string((host_.event_queue().now() - entry.stored_at) /
                              1'000'000'000));
    respond(state, std::move(copy));
  };

  if (config_.cache_fresh_ttl > 0 &&
      now - it->second.stored_at <= config_.cache_fresh_ttl) {
    ++stats_.cache_fresh_hits;
    metrics_.cache_fresh_hits.inc();
    serve_entry(it->second, request);
    return true;
  }

  // Stale: revalidate upstream with our validator (the cheap HTTP/1.1
  // conditional GET the paper expects caches to use extensively).
  if (!breaker_allows()) {
    // Open circuit: a stale copy beats hammering a struggling origin.
    serve_entry(it->second, request);
    return true;
  }
  http::Request conditional = request;
  if (!it->second.etag.empty()) {
    conditional.headers.set("If-None-Match", it->second.etag);
  }
  std::weak_ptr<ClientConn> weak = state;
  metrics_.upstream_connections.inc();
  fetch_upstream(
      host_, config_, stats_, std::move(conditional),
      [this, weak, target = request.target,
       request](std::optional<http::Response> response) {
        breaker_record(response.has_value() && response->status < 500);
        auto s = weak.lock();
        if (!s) return;
        if (!response) {
          s->forwarding = false;
          s->conn->shutdown_send();
          return;
        }
        auto entry_it = cache_.find(target);
        if (response->status == 304 && entry_it != cache_.end()) {
          ++stats_.cache_revalidated_hits;
          metrics_.cache_revalidated_hits.inc();
          entry_it->second.stored_at = host_.event_queue().now();
          const auto client_inm = request.headers.get("If-None-Match");
          if (client_inm && *client_inm == entry_it->second.etag) {
            respond(s, std::move(*response));  // pass the 304 through
            return;
          }
          http::Response copy = entry_it->second.response;
          copy.headers.set("Age", "0");
          respond(s, std::move(copy));
          return;
        }
        stats_.upstream_body_bytes += response->body.size();
        metrics_.upstream_body_bytes.inc(response->body.size());
        if (response->status == 200) store_in_cache(target, *response);
        respond(s, std::move(*response));
      });
  return true;
}

bool HttpProxy::breaker_allows() {
  if (!config_.breaker.enabled) return true;
  const sim::Time now = host_.event_queue().now();
  if (breaker_state_ == BreakerState::kOpen &&
      now - breaker_opened_at_ >= config_.breaker.open_duration) {
    breaker_state_ = BreakerState::kHalfOpen;
  }
  switch (breaker_state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      return false;
    case BreakerState::kHalfOpen:
      if (breaker_probe_in_flight_) return false;
      breaker_probe_in_flight_ = true;
      ++stats_.breaker_probes;
      metrics_.breaker_probes.inc();
      return true;
  }
  return true;
}

void HttpProxy::breaker_record(bool success) {
  if (!config_.breaker.enabled) return;
  breaker_probe_in_flight_ = false;
  if (success) {
    breaker_failures_ = 0;
    breaker_state_ = BreakerState::kClosed;
    return;
  }
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // Failed probe: straight back to open for another full window.
    breaker_state_ = BreakerState::kOpen;
    breaker_opened_at_ = host_.event_queue().now();
    ++stats_.breaker_trips;
    metrics_.breaker_trips.inc();
    return;
  }
  if (breaker_state_ == BreakerState::kClosed &&
      ++breaker_failures_ >= config_.breaker.failure_threshold) {
    breaker_state_ = BreakerState::kOpen;
    breaker_opened_at_ = host_.event_queue().now();
    ++stats_.breaker_trips;
    metrics_.breaker_trips.inc();
  }
}

void HttpProxy::reject_open_circuit(const ClientConnPtr& state,
                                    const http::Request& request) {
  ++stats_.breaker_rejections;
  metrics_.breaker_rejections.inc();
  http::Response response;
  response.version = request.version;
  response.status = 503;
  response.reason = std::string(http::default_reason(503));
  if (config_.breaker.retry_after > 0) {
    response.headers.add(
        "Retry-After",
        std::to_string(config_.breaker.retry_after / 1'000'000'000));
  }
  response.headers.add("Content-Length", "0");
  respond(state, std::move(response));
}

void HttpProxy::forward(const ClientConnPtr& state, http::Request request) {
  ++stats_.requests_forwarded;
  metrics_.requests_forwarded.inc();
  strip_hop_by_hop(request.headers, stats_);
  request.headers.add("Via", config_.via_token);

  if (try_cache(state, request)) return;
  if (!breaker_allows()) {
    reject_open_circuit(state, request);
    return;
  }

  std::weak_ptr<ClientConn> weak = state;
  metrics_.upstream_connections.inc();
  fetch_upstream(
      host_, config_, stats_, request,
      [this, weak, target = request.target,
       method = request.method](std::optional<http::Response> response) {
        breaker_record(response.has_value() && response->status < 500);
        auto s = weak.lock();
        if (!s) return;
        if (!response) {
          // Upstream died: tell the client with a close.
          s->forwarding = false;
          s->conn->shutdown_send();
          return;
        }
        stats_.upstream_body_bytes += response->body.size();
        metrics_.upstream_body_bytes.inc(response->body.size());
        if (config_.enable_cache && method == http::Method::kGet &&
            response->status == 200) {
          store_in_cache(target, *response);
        }
        respond(s, std::move(*response));
      });
}

}  // namespace hsim::proxy
