// HTTP proxies, built to demonstrate why HTTP/1.1's persistent-connection
// signalling differs from HTTP/1.0 Keep-Alive.
//
// The paper: "The 'Keep-Alive' extension to HTTP/1.0 is a form of persistent
// connections. HTTP/1.1's design differs in minor details from Keep-Alive to
// overcome a problem discovered when Keep-Alive is used with more than one
// proxy between a client and a server."
//
// The problem: a pre-Keep-Alive proxy relays bytes blindly. If it forwards a
// client's "Connection: Keep-Alive" hop-by-hop header to the origin, the
// origin holds its connection open waiting for more requests, while the
// proxy — which frames the upstream response by connection close — waits for
// the origin to close. Both sides hang until a timeout, tying up sockets
// (and with close-framed bodies, the client never learns the response ended).
//
// Two proxies are provided:
//   - TunnelProxy: the blind byte shoveler, with an optional
//     `strip_connection_headers` mitigation (a minimally header-aware relay);
//   - HttpProxy: a message-aware HTTP/1.0-style proxy that parses requests
//     and responses, removes hop-by-hop headers, and frames bodies properly.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "http/parser.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "tcp/host.hpp"

namespace hsim::proxy {

struct ProxyStats {
  std::uint64_t client_connections = 0;
  std::uint64_t upstream_connections = 0;
  std::uint64_t bytes_relayed_up = 0;
  std::uint64_t bytes_relayed_down = 0;
  std::uint64_t requests_forwarded = 0;   // HttpProxy only
  std::uint64_t responses_forwarded = 0;  // HttpProxy only
  std::uint64_t keep_alive_headers_stripped = 0;
  std::uint64_t idle_hangups = 0;  // connections reaped by the idle timer

  // Caching proxy counters.
  std::uint64_t cache_fresh_hits = 0;        // served without contacting origin
  std::uint64_t cache_revalidated_hits = 0;  // origin said 304, body from cache
  std::uint64_t cache_misses = 0;            // full fetch from origin
  std::uint64_t cache_stores = 0;
  std::uint64_t upstream_body_bytes = 0;     // entity bytes fetched upstream

  // Circuit breaker counters (HttpProxy only; zero when disabled).
  std::uint64_t breaker_trips = 0;       // closed/half-open -> open
  std::uint64_t breaker_rejections = 0;  // requests answered 503 locally
  std::uint64_t breaker_probes = 0;      // half-open trial requests
};

/// proxy.* registry metrics, shared by TunnelProxy and HttpProxy (all-null
/// handles when no registry is installed).
struct ProxyMetrics {
  obs::CounterHandle client_connections, upstream_connections, bytes_up,
      bytes_down, requests_forwarded, cache_fresh_hits, cache_revalidated_hits,
      cache_misses, cache_stores, upstream_body_bytes, idle_hangups,
      breaker_trips, breaker_rejections, breaker_probes;
  static ProxyMetrics bind();
};

/// Consecutive-failure circuit breaker for HttpProxy's upstream fetches.
/// Closed: requests flow, counting consecutive failures (reset or 5xx).
/// Open (after failure_threshold in a row): requests are answered locally
/// with `503 Retry-After`, shielding a struggling origin from the retry
/// storm. After open_duration one half-open probe is let through; success
/// closes the breaker, failure reopens it for another open_duration.
struct CircuitBreakerConfig {
  bool enabled = false;
  unsigned failure_threshold = 3;
  sim::Time open_duration = sim::seconds(5);
  /// Retry-After hint attached to breaker 503s (0 = no header).
  sim::Time retry_after = sim::seconds(5);
};

struct TunnelProxyConfig {
  net::IpAddr origin_addr = 0;
  net::Port origin_port = 80;
  /// Mitigation: detect and remove "Connection:" header lines from relayed
  /// request heads instead of forwarding them blindly.
  bool strip_connection_headers = false;
  /// Hung relays are reaped after this long (the only defence a blind proxy
  /// has against the Keep-Alive deadlock).
  sim::Time idle_timeout = sim::seconds(120);
  tcp::TcpOptions tcp;
};

/// The blind relay: one upstream connection per client connection, bytes
/// shovelled in both directions, each side's close propagated to the other.
class TunnelProxy {
 public:
  TunnelProxy(tcp::Host& host, TunnelProxyConfig config);

  void start(net::Port port = 8080);
  void stop();

  const ProxyStats& stats() const { return stats_; }

 private:
  struct Relay {
    tcp::ConnectionPtr client;
    tcp::ConnectionPtr upstream;
    bool upstream_connected = false;
    buf::Chain pending_up;  // buffered until upstream opens (shared slices)
    /// Set when the head of the current request has been scanned for
    /// Connection headers (stripping applies to heads only).
    bool head_scanned = false;
    std::unique_ptr<sim::Timer> idle_timer;
  };
  using RelayPtr = std::shared_ptr<Relay>;

  void on_client(tcp::ConnectionPtr conn);
  void relay_up(const RelayPtr& relay);
  void relay_down(const RelayPtr& relay);
  buf::Chain filter_request_bytes(const RelayPtr& relay, buf::Chain bytes);
  void arm_idle(const RelayPtr& relay);

  tcp::Host& host_;
  TunnelProxyConfig config_;
  net::Port port_ = 8080;
  ProxyStats stats_;
  ProxyMetrics metrics_ = ProxyMetrics::bind();
  std::map<const tcp::Connection*, RelayPtr> relays_;
};

struct HttpProxyConfig {
  net::IpAddr origin_addr = 0;
  net::Port origin_port = 80;
  /// Forwarded via one fresh upstream connection per request (HTTP/1.0
  /// proxy behaviour, which is what 1997 deployments did).
  sim::Time idle_timeout = sim::seconds(60);
  sim::Time per_request_cpu = sim::milliseconds(1);
  std::string via_token = "1.0 hsim-proxy";
  tcp::TcpOptions tcp;

  /// Caching proxy mode (paper's conclusion: HTTP/1.1's cheap revalidation
  /// "may find it feasible to perform much more extensive cache
  /// validation"). Cached 200 responses are served locally while fresh;
  /// stale entries are revalidated upstream with If-None-Match and served
  /// from cache on a 304.
  bool enable_cache = false;
  /// How long an entry is served without revalidation (0 = always
  /// revalidate — the "extensive validation" regime).
  sim::Time cache_fresh_ttl = 0;

  /// Upstream circuit breaker (disabled by default).
  CircuitBreakerConfig breaker;
};

/// Message-aware HTTP/1.0 proxy: parses requests and responses, strips
/// hop-by-hop Connection headers (and any header Connection names), adds a
/// Via header, and frames everything with Content-Length — immune to the
/// Keep-Alive trap by construction.
class HttpProxy {
 public:
  HttpProxy(tcp::Host& host, HttpProxyConfig config);

  void start(net::Port port = 8080);
  void stop();

  const ProxyStats& stats() const { return stats_; }

 private:
  struct ClientConn {
    tcp::ConnectionPtr conn;
    http::RequestParser parser;
    std::deque<http::Request> pending;
    bool forwarding = false;
    std::unique_ptr<sim::Timer> idle_timer;
  };
  using ClientConnPtr = std::shared_ptr<ClientConn>;

  struct CacheEntry {
    http::Response response;  // status 200, headers + body as received
    std::string etag;
    sim::Time stored_at = 0;
  };

  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  void on_client(tcp::ConnectionPtr conn);
  void pump(const ClientConnPtr& state);
  void forward(const ClientConnPtr& state, http::Request request);
  void respond(const ClientConnPtr& state, http::Response response);
  /// Cache lookup path; returns true if the request was fully handled.
  bool try_cache(const ClientConnPtr& state, const http::Request& request);
  void store_in_cache(const std::string& target,
                      const http::Response& response);
  static void strip_hop_by_hop(http::Headers& headers,
                               ProxyStats& stats);

  /// May this request go upstream now? Advances open -> half-open on the
  /// clock and claims the half-open probe slot.
  bool breaker_allows();
  /// Feed the breaker an upstream outcome (reset/5xx = failure).
  void breaker_record(bool success);
  /// Locally-built `503 Retry-After` for a rejected request.
  void reject_open_circuit(const ClientConnPtr& state,
                           const http::Request& request);

  tcp::Host& host_;
  HttpProxyConfig config_;
  net::Port port_ = 8080;
  ProxyStats stats_;
  ProxyMetrics metrics_ = ProxyMetrics::bind();
  std::map<const tcp::Connection*, ClientConnPtr> clients_;
  std::map<std::string, CacheEntry> cache_;

  BreakerState breaker_state_ = BreakerState::kClosed;
  unsigned breaker_failures_ = 0;  // consecutive upstream failures
  sim::Time breaker_opened_at_ = 0;
  bool breaker_probe_in_flight_ = false;
};

}  // namespace hsim::proxy
