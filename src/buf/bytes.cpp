#include "buf/bytes.hpp"

#include <algorithm>

namespace hsim::buf {

namespace {

/// Allocation granularity for copied appends. Small enough that a lone
/// request head does not waste much, large enough that byte-at-a-time parser
/// feeds coalesce into a handful of blocks.
constexpr std::size_t kMinBlock = 512;
constexpr std::size_t kMaxBlock = 64 * 1024;

std::shared_ptr<std::uint8_t[]> allocate_block(std::size_t n) {
  HSIM_BUF_COUNT(allocations, 1);
  return std::shared_ptr<std::uint8_t[]>(new std::uint8_t[n]);
}

}  // namespace

CopyCounters& counters() {
  static CopyCounters instance;
  return instance;
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

Bytes::Bytes(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  auto block = allocate_block(data.size());
  std::memcpy(block.get(), data.data(), data.size());
  HSIM_BUF_COUNT(bytes_copied, data.size());
  data_ = block.get();
  size_ = data.size();
  owner_ = std::move(block);
}

Bytes::Bytes(std::vector<std::uint8_t>&& data) {
  if (data.empty()) return;
  auto holder = std::make_shared<std::vector<std::uint8_t>>(std::move(data));
  HSIM_BUF_COUNT(allocations, 1);
  HSIM_BUF_COUNT(bytes_shared, holder->size());
  data_ = holder->data();
  size_ = holder->size();
  owner_ = std::shared_ptr<const std::uint8_t[]>(std::move(holder), data_);
}

Bytes::Bytes(std::size_t n, std::uint8_t fill) {
  if (n == 0) return;
  auto block = allocate_block(n);
  std::memset(block.get(), fill, n);
  HSIM_BUF_COUNT(bytes_copied, n);
  data_ = block.get();
  size_ = n;
  owner_ = std::move(block);
}

Bytes Bytes::slice(std::size_t pos, std::size_t n) const {
  pos = std::min(pos, size_);
  n = std::min(n, size_ - pos);
  HSIM_BUF_COUNT(bytes_shared, n);
  return Bytes(owner_, data_ + pos, n);
}

std::vector<std::uint8_t> Bytes::to_vector() const {
  HSIM_BUF_COUNT(bytes_copied, size_);
  return std::vector<std::uint8_t>(data_, data_ + size_);
}

// ---------------------------------------------------------------------------
// Chain
// ---------------------------------------------------------------------------

Chain& Chain::operator=(const Chain& other) {
  if (this == &other) return *this;
  nodes_ = other.nodes_;
  size_ = other.size_;
  tail_block_.reset();
  tail_cap_ = 0;
  tail_used_ = 0;
  HSIM_BUF_COUNT(bytes_shared, size_);
  return *this;
}

void Chain::clear() {
  nodes_.clear();
  size_ = 0;
  tail_block_.reset();
  tail_cap_ = 0;
  tail_used_ = 0;
}

void Chain::push_node(Bytes bytes) {
  size_ += bytes.size();
  nodes_.push_back(std::move(bytes));
}

void Chain::append(Bytes bytes) {
  if (bytes.empty()) return;
  HSIM_BUF_COUNT(bytes_shared, bytes.size());
  // A slice that directly continues the back node (same owning block,
  // contiguous storage) extends it instead of adding a node, so bodies
  // assembled from many tiny split_front() slices stay O(blocks) long
  // rather than O(slices).
  if (!nodes_.empty()) {
    Bytes& back = nodes_.back();
    if (back.owner_ == bytes.owner_ && back.end() == bytes.data_) {
      back.size_ += bytes.size_;
      size_ += bytes.size_;
      return;
    }
  }
  push_node(std::move(bytes));
}

void Chain::append(const Chain& other) {
  for (const Bytes& node : other.nodes_) append(node);
}

void Chain::append(Chain&& other) {
  if (nodes_.empty() && tail_block_ == nullptr) {
    *this = std::move(other);
    return;
  }
  HSIM_BUF_COUNT(bytes_shared, other.size_);
  for (Bytes& node : other.nodes_) push_node(std::move(node));
  other.clear();
}

const std::uint8_t* Chain::tail_write_pos() const {
  return tail_block_ ? tail_block_.get() + tail_used_ : nullptr;
}

void Chain::append_copy(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  HSIM_BUF_COUNT(bytes_copied, data.size());

  // Fast path: extend the most recent node in place. Safe because no view
  // covers bytes past the node's current end.
  if (!nodes_.empty() && tail_block_ &&
      nodes_.back().end() == tail_write_pos() &&
      tail_used_ + data.size() <= tail_cap_) {
    std::memcpy(tail_block_.get() + tail_used_, data.data(), data.size());
    tail_used_ += data.size();
    nodes_.back().size_ += data.size();
    size_ += data.size();
    return;
  }

  // Spare room in the tail block but the back node no longer abuts it (it
  // was split off or a shared node was appended after it): start a new node
  // in the same block.
  if (tail_block_ && tail_used_ + data.size() <= tail_cap_) {
    std::uint8_t* dst = tail_block_.get() + tail_used_;
    std::memcpy(dst, data.data(), data.size());
    tail_used_ += data.size();
    push_node(Bytes(tail_block_, dst, data.size()));
    return;
  }

  // Allocate a fresh tail block with growth headroom.
  std::size_t cap = std::max(kMinBlock, tail_cap_ * 2);
  cap = std::min(cap, kMaxBlock);
  cap = std::max(cap, data.size());
  tail_block_ = allocate_block(cap);
  tail_cap_ = cap;
  std::memcpy(tail_block_.get(), data.data(), data.size());
  tail_used_ = data.size();
  push_node(Bytes(tail_block_, tail_block_.get(), data.size()));
}

void Chain::pop_front(std::size_t n) {
  n = std::min(n, size_);
  size_ -= n;
  while (n > 0) {
    Bytes& front = nodes_.front();
    if (front.size() <= n) {
      n -= front.size();
      nodes_.pop_front();
    } else {
      front.data_ += n;
      front.size_ -= n;
      n = 0;
    }
  }
}

Chain Chain::split_front(std::size_t n) {
  n = std::min(n, size_);
  Chain out;
  while (n > 0) {
    Bytes& front = nodes_.front();
    if (front.size() <= n) {
      n -= front.size();
      size_ -= front.size();
      HSIM_BUF_COUNT(bytes_shared, front.size());
      out.push_node(std::move(front));
      nodes_.pop_front();
    } else {
      out.append(front.slice(0, n));
      front.data_ += n;
      front.size_ -= n;
      size_ -= n;
      n = 0;
    }
  }
  return out;
}

Chain Chain::slice(std::size_t pos, std::size_t n) const {
  pos = std::min(pos, size_);
  n = std::min(n, size_ - pos);
  Chain out;
  for (const Bytes& node : nodes_) {
    if (n == 0) break;
    if (pos >= node.size()) {
      pos -= node.size();
      continue;
    }
    const std::size_t take = std::min(n, node.size() - pos);
    out.append(node.slice(pos, take));
    pos = 0;
    n -= take;
  }
  return out;
}

Bytes Chain::slice_bytes(std::size_t pos, std::size_t n) const {
  pos = std::min(pos, size_);
  n = std::min(n, size_ - pos);
  if (n == 0) return Bytes();
  // Zero-copy when the range lives inside one node.
  std::size_t skip = pos;
  for (const Bytes& node : nodes_) {
    if (skip < node.size()) {
      if (node.size() - skip >= n) return node.slice(skip, n);
      break;
    }
    skip -= node.size();
  }
  // Spans nodes: flatten.
  auto block = allocate_block(n);
  copy_to(pos, {block.get(), n});
  const std::uint8_t* data = block.get();
  return Bytes(std::move(block), data, n);
}

std::uint8_t Chain::operator[](std::size_t pos) const {
  for (const Bytes& node : nodes_) {
    if (pos < node.size()) return node[pos];
    pos -= node.size();
  }
  return 0;
}

void Chain::copy_to(std::size_t pos, std::span<std::uint8_t> out) const {
  HSIM_BUF_COUNT(bytes_copied, out.size());
  std::size_t written = 0;
  for (const Bytes& node : nodes_) {
    if (written == out.size()) break;
    if (pos >= node.size()) {
      pos -= node.size();
      continue;
    }
    const std::size_t take =
        std::min(out.size() - written, node.size() - pos);
    std::memcpy(out.data() + written, node.data() + pos, take);
    written += take;
    pos = 0;
  }
}

std::vector<std::uint8_t> Chain::to_vector() const {
  std::vector<std::uint8_t> out(size_);
  copy_to(0, {out.data(), out.size()});
  return out;
}

std::string Chain::to_string(std::size_t pos, std::size_t n) const {
  pos = std::min(pos, size_);
  n = std::min(n, size_ - pos);
  std::string out;
  out.resize(n);
  copy_to(pos, {reinterpret_cast<std::uint8_t*>(out.data()), n});
  return out;
}

std::size_t Chain::find(std::string_view needle, std::size_t from) const {
  if (needle.empty()) return std::min(from, size_);
  if (needle.size() > size_ || from > size_ - needle.size()) return npos;
  const std::uint8_t first = static_cast<std::uint8_t>(needle[0]);

  // Walk nodes, using memchr within each for first-byte candidates, then
  // verify the remainder across node boundaries.
  std::size_t node_start = 0;  // absolute offset of nodes_[ni]
  for (std::size_t ni = 0; ni < nodes_.size(); ++ni) {
    const Bytes& node = nodes_[ni];
    if (from >= node_start + node.size()) {
      node_start += node.size();
      continue;
    }
    std::size_t local = from > node_start ? from - node_start : 0;
    while (local < node.size()) {
      const void* hit = std::memchr(node.data() + local, first,
                                    node.size() - local);
      if (hit == nullptr) break;
      const std::size_t abs =
          node_start + (static_cast<const std::uint8_t*>(hit) - node.data());
      if (abs + needle.size() > size_) return npos;
      // Verify the tail of the needle, possibly crossing into later nodes.
      bool match = true;
      std::size_t check_ni = ni;
      std::size_t check_local =
          static_cast<std::size_t>(static_cast<const std::uint8_t*>(hit) -
                                   node.data());
      for (std::size_t k = 0; k < needle.size(); ++k) {
        while (check_local >= nodes_[check_ni].size()) {
          check_local = 0;
          ++check_ni;
        }
        if (nodes_[check_ni][check_local] !=
            static_cast<std::uint8_t>(needle[k])) {
          match = false;
          break;
        }
        ++check_local;
      }
      if (match) return abs;
      local = abs - node_start + 1;
    }
    node_start += node.size();
    if (node_start + needle.size() > size_ + needle.size()) break;
  }
  return npos;
}

bool Chain::operator==(const Chain& other) const {
  if (size_ != other.size_) return false;
  // Dual-cursor byte-run comparison without flattening.
  std::size_t ai = 0, ao = 0, bi = 0, bo = 0;
  std::size_t remaining = size_;
  while (remaining > 0) {
    while (ao == nodes_[ai].size()) {
      ++ai;
      ao = 0;
    }
    while (bo == other.nodes_[bi].size()) {
      ++bi;
      bo = 0;
    }
    const std::size_t run = std::min(
        {nodes_[ai].size() - ao, other.nodes_[bi].size() - bo, remaining});
    if (std::memcmp(nodes_[ai].data() + ao, other.nodes_[bi].data() + bo,
                    run) != 0) {
      return false;
    }
    ao += run;
    bo += run;
    remaining -= run;
  }
  return true;
}

bool Chain::equals(std::span<const std::uint8_t> data) const {
  if (size_ != data.size()) return false;
  std::size_t off = 0;
  for (const Bytes& node : nodes_) {
    if (node.size() > 0 &&
        std::memcmp(node.data(), data.data() + off, node.size()) != 0) {
      return false;
    }
    off += node.size();
  }
  return true;
}

}  // namespace hsim::buf
