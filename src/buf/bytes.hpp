// Zero-copy buffer primitives for the payload data path.
//
// `Bytes` is an immutable, ref-counted slice of a byte block: copying or
// slicing one never touches the underlying bytes, so a server body, the TCP
// segments carved out of it, the packets on the wire and the reassembled
// response on the client can all alias one allocation. `Chain` is a rope of
// `Bytes` nodes with O(1) amortised append, O(nodes) front-consume and
// zero-copy split/slice — the shape every per-connection buffer in the
// simulator (TCP send/receive queues, HTTP parser input, application output
// batches) now uses instead of `std::deque<uint8_t>` / `std::string`.
//
// Immutability contract: the bytes in [data(), data()+size()) of any Bytes
// view are never modified once the view exists. A Chain may keep appending
// into the *spare capacity* of the block backing its tail node; that region
// is invisible to every existing view, so retransmitted TCP segments and
// cached response bodies can safely alias buffers that are still growing.
//
// When compiled with -DHSIM_COUNT_COPIES the module counts every payload
// byte that is memcpy'd versus merely shared, plus backing-block
// allocations; `bench/micro_buffers` reports them (see EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hsim::buf {

/// Global copy/alloc accounting (single-threaded simulator; plain counters).
struct CopyCounters {
  std::uint64_t bytes_copied = 0;  ///< payload bytes physically memcpy'd
  std::uint64_t bytes_shared = 0;  ///< payload bytes moved by reference only
  std::uint64_t allocations = 0;   ///< backing blocks allocated

  void reset() { *this = CopyCounters{}; }
};

CopyCounters& counters();

#ifdef HSIM_COUNT_COPIES
#define HSIM_BUF_COUNT(field, n) (::hsim::buf::counters().field += (n))
#else
#define HSIM_BUF_COUNT(field, n) ((void)0)
#endif

inline constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

/// Immutable ref-counted byte slice. Copy = refcount bump; slice = new view
/// of the same block. The default instance is empty.
class Bytes {
 public:
  Bytes() = default;

  /// Copies `data` into a freshly allocated block (the one deliberate copy
  /// at the edge of the zero-copy world).
  explicit Bytes(std::span<const std::uint8_t> data);
  explicit Bytes(std::string_view text)
      : Bytes(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(text.data()), text.size())) {}

  /// Adopts an existing vector without copying its contents.
  explicit Bytes(std::vector<std::uint8_t>&& data);

  /// A block of `n` copies of `fill`.
  Bytes(std::size_t n, std::uint8_t fill);

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }

  std::span<const std::uint8_t> span() const { return {data_, size_}; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// Zero-copy sub-slice [pos, pos+n) sharing this block. `n` is clamped to
  /// the remaining length.
  Bytes slice(std::size_t pos, std::size_t n = npos) const;

  /// Materialises an owned copy.
  std::vector<std::uint8_t> to_vector() const;

  bool operator==(const Bytes& other) const {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data_, other.data_, size_) == 0);
  }
  bool operator==(std::span<const std::uint8_t> other) const {
    return size_ == other.size() &&
           (size_ == 0 || std::memcmp(data_, other.data(), size_) == 0);
  }

 private:
  friend class Chain;
  Bytes(std::shared_ptr<const std::uint8_t[]> owner, const std::uint8_t* data,
        std::size_t size)
      : owner_(std::move(owner)), data_(data), size_(size) {}

  std::shared_ptr<const std::uint8_t[]> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Rope of immutable slices: O(1) amortised append (small copied appends
/// coalesce into a shared growable tail block), O(1) zero-copy append of a
/// Bytes/Chain, O(nodes) pop_front / split_front, zero-copy slicing.
class Chain {
 public:
  Chain() = default;
  explicit Chain(Bytes bytes) { append(std::move(bytes)); }

  // Copies share every node (refcount bumps) but never the writable tail:
  // at most one Chain may extend a block's spare capacity.
  Chain(const Chain& other) : nodes_(other.nodes_), size_(other.size_) {
    HSIM_BUF_COUNT(bytes_shared, size_);
  }
  Chain& operator=(const Chain& other);
  // Moves transfer the writable tail and leave the source empty (a defaulted
  // move would leave stale scalar members behind).
  Chain(Chain&& other) noexcept
      : nodes_(std::move(other.nodes_)),
        size_(other.size_),
        tail_block_(std::move(other.tail_block_)),
        tail_cap_(other.tail_cap_),
        tail_used_(other.tail_used_) {
    other.clear();
  }
  Chain& operator=(Chain&& other) noexcept {
    if (this != &other) {
      nodes_ = std::move(other.nodes_);
      size_ = other.size_;
      tail_block_ = std::move(other.tail_block_);
      tail_cap_ = other.tail_cap_;
      tail_used_ = other.tail_used_;
      other.clear();
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear();

  /// Appends a shared slice — no byte is copied.
  void append(Bytes bytes);
  void append(const Chain& other);
  void append(Chain&& other);

  /// Appends by copying, coalescing into the tail block when possible (the
  /// amortised path a parser feeding one byte at a time relies on).
  void append_copy(std::span<const std::uint8_t> data);
  void append_copy(std::string_view text) {
    append_copy(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Drops the first `n` bytes (clamped). O(nodes touched).
  void pop_front(std::size_t n);

  /// Removes and returns the first `n` bytes as a Chain of shared slices.
  Chain split_front(std::size_t n);

  /// Zero-copy sub-chain covering [pos, pos+n) (clamped).
  Chain slice(std::size_t pos, std::size_t n = npos) const;

  /// A single contiguous Bytes covering [pos, pos+n): zero-copy when the
  /// range lies within one node, flattened (one copy) otherwise.
  Bytes slice_bytes(std::size_t pos, std::size_t n) const;

  /// Flattens the whole chain into one Bytes (zero-copy if 0 or 1 node).
  Bytes to_bytes() const { return slice_bytes(0, size_); }

  std::uint8_t operator[](std::size_t pos) const;

  void copy_to(std::size_t pos, std::span<std::uint8_t> out) const;
  std::vector<std::uint8_t> to_vector() const;
  std::string to_string(std::size_t pos = 0, std::size_t n = npos) const;

  /// First occurrence of `needle` at or after `from`, crossing node
  /// boundaries; buf::npos if absent.
  std::size_t find(std::string_view needle, std::size_t from = 0) const;

  /// Invokes fn(std::span<const std::uint8_t>) for each contiguous run.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Bytes& node : nodes_) fn(node.span());
  }

  bool operator==(const Chain& other) const;
  bool equals(std::span<const std::uint8_t> data) const;
  bool equals(std::string_view text) const {
    return equals(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
  }

  /// Number of underlying slices (diagnostics / tests).
  std::size_t node_count() const { return nodes_.size(); }

 private:
  const std::uint8_t* tail_write_pos() const;
  void push_node(Bytes bytes);

  std::deque<Bytes> nodes_;
  std::size_t size_ = 0;

  // Growable tail block: append_copy may extend the most recent node (or
  // start a new node) inside this block's unused capacity. Only the Chain
  // holding this pointer ever writes there, and only past every existing
  // view's end — see the immutability contract above.
  std::shared_ptr<std::uint8_t[]> tail_block_;
  std::size_t tail_cap_ = 0;
  std::size_t tail_used_ = 0;
};

inline bool operator==(const Chain& chain,
                       const std::vector<std::uint8_t>& v) {
  return chain.equals(std::span<const std::uint8_t>(v.data(), v.size()));
}
inline bool operator==(const std::vector<std::uint8_t>& v,
                       const Chain& chain) {
  return chain == v;
}

}  // namespace hsim::buf
