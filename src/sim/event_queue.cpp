#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace hsim::sim {

TimerId EventQueue::schedule_at(Time when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  heap_.push_back(Event{EventKey{when, now_, shard_, next_seq_++}, id,
                        std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  maybe_compact();
  return TimerId{id};
}

TimerId EventQueue::schedule_cross(const EventKey& key, Callback cb) {
  const std::uint64_t id = next_id_++;
  heap_.push_back(Event{key, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  maybe_compact();
  return TimerId{id};
}

bool EventQueue::cancel(TimerId id) {
  if (!id) return false;
  // Lazy cancellation: the event stays in the heap but is skipped when popped.
  // An id is only accepted if it is plausibly pending (ids are never reused).
  if (id.value >= next_id_) return false;
  return cancelled_.insert(id.value).second;
}

EventQueue::Event EventQueue::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

void EventQueue::maybe_compact() {
  // Heavy timer churn (delayed-ACK and RTO re-arms across thousands of
  // connections) can leave the heap mostly cancelled events, each keeping its
  // callback captures alive. Rebuild once they outnumber the live ones.
  if (cancelled_.size() < 1024 || cancelled_.size() * 2 < heap_.size()) return;
  std::erase_if(heap_, [this](const Event& ev) {
    return cancelled_.count(ev.id) != 0;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  // Ids cancelled after their event already ran would otherwise linger
  // forever; everything surviving in the heap is live, so start clean.
  cancelled_.clear();
}

Time EventQueue::next_event_time() {
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      pop_event();
      continue;
    }
    return top.key.when;
  }
  return kNoEvent;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    if (!cancelled_.empty()) {
      if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
    }
    now_ = ev.key.when;
    current_key_ = ev.key;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t EventQueue::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Event& top = heap_.front();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      pop_event();
      continue;
    }
    if (top.key.when > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline && !heap_.empty()) now_ = deadline;
  return n;
}

}  // namespace hsim::sim
