#include "sim/event_queue.hpp"

#include <utility>

namespace hsim::sim {

TimerId EventQueue::schedule_at(Time when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(cb)});
  return TimerId{id};
}

bool EventQueue::cancel(TimerId id) {
  if (!id) return false;
  // Lazy cancellation: the event stays in the heap but is skipped when popped.
  // An id is only accepted if it is plausibly pending (ids are never reused).
  if (id.value >= next_id_) return false;
  return cancelled_.insert(id.value).second;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    // priority_queue::top returns const&; move out via const_cast is the
    // standard idiom but fragile — copy the small fields and move the
    // callback by re-pushing is worse. Pop into a local instead.
    Event ev = heap_.top();
    heap_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t EventQueue::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(Time deadline) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.when > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline && !heap_.empty()) now_ = deadline;
  return n;
}

}  // namespace hsim::sim
