// Simulated time for the discrete-event simulator.
//
// All simulator time is expressed as a signed 64-bit count of nanoseconds
// since the start of the simulation. A signed type is used so that interval
// arithmetic (e.g. `deadline - now`) cannot silently wrap.
#pragma once

#include <cstdint>

namespace hsim::sim {

/// Absolute simulated time or a duration, in nanoseconds.
using Time = std::int64_t;

/// A time value meaning "never" / "no deadline".
inline constexpr Time kNever = INT64_MAX;

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t us) { return us * 1'000; }
constexpr Time milliseconds(std::int64_t ms) { return ms * 1'000'000; }
constexpr Time seconds(std::int64_t s) { return s * 1'000'000'000; }

/// Converts a floating-point second count to simulator Time.
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * 1e9);
}

/// Converts a Time to floating-point seconds (for reporting).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / 1e9;
}

/// Converts a Time to floating-point milliseconds (for reporting).
constexpr double to_milliseconds(Time t) {
  return static_cast<double>(t) / 1e6;
}

}  // namespace hsim::sim
