// Host-sharded parallel discrete-event engine (conservative lookahead).
//
// The classic engine runs one global EventQueue on one thread. This engine
// partitions the simulation into S shards, each owning a private EventQueue
// and the components that schedule against it (hosts, robots, the links whose
// transmitter they drive). Shards only interact through explicit cross-shard
// messages (post()), which a component emits instead of scheduling directly
// on another shard's queue — net::Link's remote-delivery hook is the one
// emitter in the stack today.
//
// Execution follows Shadow's conservative barrier design. Let W be the
// lookahead: the minimum latency any cross-shard message can experience
// between being posted and firing (for links, the propagation delay shrunk by
// the worst-case jitter). Rounds then work as follows:
//
//   1. Barrier (single-threaded): pending cross-shard messages are injected
//      into their destination queues in canonical order; the global minimum
//      next-event time t_min is computed.
//   2. Round: every shard runs its queue up to t_min + W (exclusive) in
//      parallel. Any message posted during the round fires at or after
//      post_time + W >= t_min + W, i.e. strictly beyond the round, so no
//      shard can ever miss a message that should have preceded an event it
//      already executed. Rounds skip idle gaps entirely: quiet periods (RTO
//      waits, think times) cost one barrier, not horizon/W barriers.
//
// Determinism argument (DESIGN.md section 14 for the long form): the round
// structure — t_min sequence, round boundaries, injection order, and every
// queue's event order — is a pure function of (shard count, lookahead,
// partition, seeds). Worker threads only decide *which OS thread* executes a
// shard's slice, never the order of events within a shard or across barriers.
// Hence T=1 and T=8 runs of the same sharded configuration are byte-identical
// by construction, and the thread count is a pure performance knob.
//
// Cross-shard messages carry the sender's full EventKey (fire time, schedule
// time, source shard, per-source sequence), and destination queues order all
// events by that key. A single global queue orders by (fire time, global
// insertion order); the sharded order coincides with it except when two
// events from different shards collide on BOTH fire time and schedule time —
// a double coincidence the golden-trace thread matrix empirically rules out
// for the pinned scenarios.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hsim::sim {

class ShardedEngine {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Worker threads; clamped to [1, shards]. Pure performance knob: any
    /// value produces byte-identical results for a fixed shard count.
    unsigned threads = 1;
    /// Synchronization horizon W: a lower bound on the fire-minus-post time
    /// of every cross-shard message. Must be >= 1 ns; larger is faster
    /// (longer rounds, fewer barriers) but must never exceed the true
    /// minimum cross-shard latency or causality breaks (and is counted in
    /// lookahead_violations()).
    Time lookahead = 1;
  };

  explicit ShardedEngine(Config config);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shard_count() const { return queues_.size(); }
  EventQueue& queue(std::size_t shard) { return *queues_[shard]; }

  /// Engine clock, mirroring EventQueue::now() semantics across the whole
  /// simulation: after run_until(d) it reads d if any shard still has
  /// pending events, else the time of the last executed event.
  Time now() const { return now_; }

  /// Posts a cross-shard event. MUST be called from within an executing
  /// event (a worker running some shard's slice); the message carries that
  /// shard's current time as its schedule time plus a per-shard sequence,
  /// making the injection order canonical and thread-count independent.
  void post(std::size_t dst_shard, Time when, EventQueue::Callback cb);

  /// Shard whose slice the calling thread is currently executing
  /// (kNoShard outside a slice).
  static constexpr std::size_t kNoShard = ~std::size_t{0};
  static std::size_t current_shard();

  /// Called on the executing thread right before a shard's slice runs each
  /// round. The harness installs the shard's metrics registry here.
  using ShardHook = std::function<void(std::size_t shard)>;
  void set_shard_enter(ShardHook hook) { enter_ = std::move(hook); }

  /// Fires `fn(t)` at every t = interval, 2*interval, ... <= last, at a
  /// barrier with all workers parked and every event before t executed and
  /// none at or after t — the safe instant for invariant oracles to walk
  /// shared state. Each firing counts as one executed event (parity with the
  /// single-queue driver, which schedules epochs as real events).
  void set_epochs(Time interval, Time last, std::function<void(Time)> fn);

  /// Runs all shards in rounds until every event with time <= deadline has
  /// executed. Returns the number of events executed by this call.
  std::size_t run_until(Time deadline);

  /// Cross-shard messages that arrived too late: their fire time fell inside
  /// a round their destination shard had already executed. Always 0 when the
  /// configured lookahead is a true lower bound on cross-shard latency; the
  /// property tests construct deliberate violations to prove the detector
  /// works.
  std::uint64_t lookahead_violations() const { return violations_; }

 private:
  struct Message {
    std::size_t dst;
    EventKey key;
    EventQueue::Callback fn;
  };
  /// Per-shard state the owning worker writes during a round, padded so two
  /// workers never share a cache line.
  struct alignas(64) ShardState {
    std::vector<Message> outbox;   // messages posted by this shard
    std::uint64_t msg_seq = 1;     // per-shard cross-message sequence
    std::size_t executed = 0;      // events run so far (all rounds)
  };

  void run_slice(unsigned worker);
  void worker_main(unsigned worker);
  void inject_pending();

  Config config_;
  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<ShardState> shards_;
  std::vector<std::vector<std::size_t>> assignment_;  // worker -> shards
  ShardHook enter_;

  Time epoch_interval_ = 0;
  Time epoch_last_ = 0;
  Time next_epoch_ = 0;
  std::function<void(Time)> on_epoch_;
  std::size_t epoch_events_ = 0;

  Time now_ = 0;
  Time round_end_ = 0;        // exclusive bound of the round in flight
  Time last_round_end_ = 0;   // violation watermark for late messages
  std::uint64_t violations_ = 0;

  // Round hand-off: the coordinator bumps generation_ to release workers,
  // each worker bumps done_ when its slice finishes. Spin-then-yield keeps
  // barrier latency low without burning a core while parked.
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<unsigned> done_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace hsim::sim
