// Discrete-event scheduler.
//
// The EventQueue is the heart of the simulator: every component (links, TCP
// timers, application timeouts) schedules callbacks at absolute simulated
// times, and the queue executes them in (time, insertion-order) order.
// Execution is fully deterministic: two events scheduled for the same instant
// run in the order they were scheduled.
//
// The full ordering key is (fire time, schedule time, source shard,
// sequence). For a single queue the extra fields are invisible: schedule
// times are non-decreasing in sequence order (time only moves forward), and
// every local event carries the same source shard, so the order collapses to
// the classic (time, insertion-order). They exist for the sharded engine
// (sim/shard.hpp), where events injected from another shard's queue must
// interleave with local events in a canonical, thread-count-independent
// order.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace hsim::sim {

/// Identifies a scheduled event so it can be cancelled.
struct TimerId {
  std::uint64_t value = 0;

  friend bool operator==(TimerId a, TimerId b) { return a.value == b.value; }
  explicit operator bool() const { return value != 0; }
};

/// The canonical total order on events: fire time, then schedule time, then
/// source shard, then per-source sequence. Cross-shard deliveries carry the
/// sender's key so they land in the same position they would have held in a
/// single global queue (see sim/shard.hpp for the determinism argument).
struct EventKey {
  Time when = 0;
  Time sched = 0;           // queue time at the instant it was scheduled
  std::uint32_t src = 0;    // shard that scheduled it
  std::uint64_t seq = 0;    // per-source insertion order

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.sched != b.sched) return a.sched < b.sched;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Advances only as events are executed.
  Time now() const { return now_; }

  /// Schedules `cb` to run at absolute time `when`. Times in the past are
  /// clamped to `now()` (the event still runs, immediately after the current
  /// event finishes).
  TimerId schedule_at(Time when, Callback cb);

  /// Schedules `cb` to run `delay` nanoseconds from now.
  TimerId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns true if the event had not yet run and
  /// was successfully cancelled.
  bool cancel(TimerId id);

  /// Runs the single next event. Returns false if the queue is empty.
  bool step();

  /// Runs events until the queue is empty. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= `deadline`; afterwards now() == deadline if any
  /// later events remain pending, or the time of the last executed event.
  std::size_t run_until(Time deadline);

  /// Runs events for `duration` from the current time.
  std::size_t run_for(Time duration) { return run_until(now_ + duration); }

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const { return heap_.size() - cancelled_.size(); }

  bool empty() const { return pending() == 0; }

  /// Pre-sizes the heap (a 1000-client workload holds tens of thousands of
  /// timers at once; avoiding regrowth copies of std::function is measurable).
  void reserve(std::size_t n) { heap_.reserve(n); }

  // ---- Sharded-engine surface (sim/shard.hpp) -----------------------------
  // A standalone queue never needs any of this; the defaults leave behaviour
  // identical to the classic single-queue scheduler.

  /// This queue's shard id, stamped as EventKey::src on local events.
  void set_shard(std::uint32_t shard) { shard_ = shard; }
  std::uint32_t shard() const { return shard_; }

  /// Injects an event scheduled by another shard, carrying the sender's key
  /// so it sorts canonically against local events. Times in the past are NOT
  /// clamped — the engine's lookahead guarantees `key.when` is in this
  /// queue's future, and a violation must surface, not be papered over.
  TimerId schedule_cross(const EventKey& key, Callback cb);

  /// Fire time of the earliest pending event, or `kNoEvent` when empty.
  /// Purges lazily-cancelled events from the top as a side effect.
  static constexpr Time kNoEvent = std::numeric_limits<Time>::max();
  Time next_event_time();

  /// Key of the event currently executing (valid only inside a callback).
  /// Taps use it to merge per-shard observation streams in canonical order.
  const EventKey& current_key() const { return current_key_; }

  /// Moves the clock forward to `t` without executing anything (the barrier
  /// scheduler's equivalent of run_until's trailing `now_ = deadline`).
  void advance_to(Time t) {
    if (now_ < t) now_ = t;
  }

 private:
  struct Event {
    EventKey key;
    std::uint64_t id;
    Callback cb;
  };
  // Comparator for a std::*_heap max-heap whose "largest" element is the
  // earliest event: a orders after b when a fires later.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return b.key < a.key;
    }
  };

  /// Pops the earliest event out of the heap by move (std::priority_queue's
  /// const top() would copy the std::function and its captures every pop —
  /// the hottest allocation site in large simulations).
  Event pop_event();
  /// Physically removes lazily-cancelled events once they dominate the heap,
  /// bounding memory held alive by cancelled timers' captures.
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint32_t shard_ = 0;
  EventKey current_key_{};
  std::vector<Event> heap_;  // binary heap maintained via std::push/pop_heap
  std::unordered_set<std::uint64_t> cancelled_;
};

/// RAII helper owning a single restartable timer on an EventQueue.
///
/// TCP and HTTP components hold several of these (retransmit, delayed-ACK,
/// flush). Destroying the Timer cancels any pending callback, so a component
/// can never be called back after destruction.
class Timer {
 public:
  explicit Timer(EventQueue& queue) : queue_(&queue) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer to fire `delay` from now, replacing any pending fire.
  void arm(Time delay, EventQueue::Callback cb) {
    cancel();
    id_ = queue_->schedule_in(delay, [this, cb = std::move(cb)] {
      id_ = TimerId{};
      cb();
    });
  }

  /// True if the timer is armed and has not fired.
  bool armed() const { return static_cast<bool>(id_); }

  void cancel() {
    if (id_) {
      queue_->cancel(id_);
      id_ = TimerId{};
    }
  }

 private:
  EventQueue* queue_;
  TimerId id_;
};

}  // namespace hsim::sim
