#include "sim/shard.hpp"

#include <algorithm>
#include <utility>

namespace hsim::sim {

namespace {
thread_local std::size_t tls_current_shard = ShardedEngine::kNoShard;

/// Spins briefly, then yields: rounds are microseconds apart when traffic is
/// flowing, so the fast path should not pay a futex sleep, but an idle or
/// unbalanced phase must not burn a core either.
template <typename Pred>
void spin_wait(Pred&& ready) {
  for (int i = 0; i < 4096; ++i) {
    if (ready()) return;
  }
  while (!ready()) std::this_thread::yield();
}
}  // namespace

ShardedEngine::ShardedEngine(Config config) : config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.lookahead < 1) config_.lookahead = 1;
  const unsigned workers = std::max(
      1u, std::min(config_.threads,
                   static_cast<unsigned>(config_.shards)));
  config_.threads = workers;

  queues_.reserve(config_.shards);
  shards_ = std::vector<ShardState>(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    queues_.push_back(std::make_unique<EventQueue>());
    queues_.back()->set_shard(static_cast<std::uint32_t>(s));
  }

  // Static shard->worker map. Worker 0 (the coordinating thread itself) gets
  // shard 0 alone when it can: shard 0 carries the server plus the shared
  // bottleneck in the harness layouts, so it is the heaviest slice.
  assignment_.assign(workers, {});
  if (workers == 1) {
    for (std::size_t s = 0; s < config_.shards; ++s)
      assignment_[0].push_back(s);
  } else {
    assignment_[0].push_back(0);
    for (std::size_t s = 1; s < config_.shards; ++s)
      assignment_[1 + (s - 1) % (workers - 1)].push_back(s);
  }

  threads_.reserve(workers > 0 ? workers - 1 : 0);
  for (unsigned w = 1; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  stop_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_acq_rel);
  for (std::thread& t : threads_) t.join();
}

std::size_t ShardedEngine::current_shard() { return tls_current_shard; }

void ShardedEngine::post(std::size_t dst, Time when,
                         EventQueue::Callback cb) {
  const std::size_t src = tls_current_shard;
  ShardState& state = shards_[src];
  EventKey key;
  key.when = when;
  key.sched = queues_[src]->now();
  key.src = static_cast<std::uint32_t>(src);
  key.seq = state.msg_seq++;
  state.outbox.push_back(Message{dst, key, std::move(cb)});
}

void ShardedEngine::set_epochs(Time interval, Time last,
                               std::function<void(Time)> fn) {
  epoch_interval_ = interval;
  epoch_last_ = last;
  next_epoch_ = interval;
  on_epoch_ = std::move(fn);
}

void ShardedEngine::inject_pending() {
  // Shard order then post order — canonical regardless of which worker ran
  // which shard. The destination queue re-orders by the carried key anyway;
  // this only fixes TimerId allocation order, which nothing observes across
  // shards, but determinism is cheaper to guarantee than to argue about.
  for (ShardState& state : shards_) {
    for (Message& msg : state.outbox) {
      if (msg.key.when < last_round_end_) ++violations_;
      queues_[msg.dst]->schedule_cross(msg.key, std::move(msg.fn));
    }
    state.outbox.clear();
  }
}

void ShardedEngine::run_slice(unsigned worker) {
  for (std::size_t s : assignment_[worker]) {
    tls_current_shard = s;
    if (enter_) enter_(s);
    shards_[s].executed += queues_[s]->run_until(round_end_ - 1);
    tls_current_shard = kNoShard;
  }
}

void ShardedEngine::worker_main(unsigned worker) {
  std::uint64_t seen = 0;
  while (true) {
    spin_wait([&] {
      return generation_.load(std::memory_order_acquire) != seen;
    });
    seen = generation_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    run_slice(worker);
    done_.fetch_add(1, std::memory_order_acq_rel);
  }
}

std::size_t ShardedEngine::run_until(Time deadline) {
  std::size_t before = epoch_events_;
  for (const ShardState& s : shards_) before += s.executed;

  const unsigned workers = config_.threads;
  while (true) {
    inject_pending();

    Time t_min = EventQueue::kNoEvent;
    for (auto& q : queues_) t_min = std::min(t_min, q->next_event_time());

    // Epochs fire at barriers where the whole simulation has crossed the
    // epoch time: everything before it has executed, nothing at or after it
    // has. The round bound below never runs past a pending epoch, so the
    // first t_min >= next_epoch_ is exactly that instant.
    if (on_epoch_ && next_epoch_ <= epoch_last_ &&
        t_min >= next_epoch_ && next_epoch_ <= deadline) {
      const Time at = next_epoch_;
      next_epoch_ += epoch_interval_;
      ++epoch_events_;
      now_ = at;
      on_epoch_(at);
      continue;  // the oracle may have scheduled events; recompute
    }

    if (t_min == EventQueue::kNoEvent || t_min > deadline) break;

    round_end_ = t_min + config_.lookahead;
    if (on_epoch_ && next_epoch_ <= epoch_last_ && next_epoch_ < round_end_) {
      round_end_ = next_epoch_;
    }
    if (round_end_ > deadline) round_end_ = deadline + 1;

    if (workers == 1) {
      run_slice(0);
    } else {
      done_.store(0, std::memory_order_release);
      generation_.fetch_add(1, std::memory_order_acq_rel);
      run_slice(0);
      spin_wait([&] {
        return done_.load(std::memory_order_acquire) == workers - 1;
      });
    }
    last_round_end_ = round_end_;
  }

  // Mirror EventQueue::run_until's trailing clock semantics, per shard and
  // for the engine clock.
  bool any_pending = false;
  Time last_executed = 0;
  for (auto& q : queues_) {
    if (q->next_event_time() != EventQueue::kNoEvent) {
      q->advance_to(deadline);
      any_pending = true;
    }
    last_executed = std::max(last_executed, q->now());
  }
  now_ = any_pending ? std::max(now_, deadline) : std::max(now_, last_executed);

  std::size_t after = epoch_events_;
  for (const ShardState& s : shards_) after += s.executed;
  return after - before;
}

}  // namespace hsim::sim
