// Deterministic random source for the simulator.
//
// All stochastic behaviour (server CPU jitter, link latency jitter, initial
// TCP sequence numbers, synthetic content) draws from an explicitly seeded
// Rng so that every experiment run is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace hsim::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// A multiplicative jitter factor in [1-spread, 1+spread].
  double jitter(double spread) { return uniform_real(1.0 - spread, 1.0 + spread); }

  /// Bernoulli trial.
  bool chance(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(engine_()); }
  std::uint64_t next_u64() { return engine_(); }

  /// Derives an independent child stream (for per-run / per-module streams).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hsim::sim
