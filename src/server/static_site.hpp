// Static resource store for the HTTP server: bodies, validators (ETag +
// Last-Modified) and optional precomputed deflate variants.
//
// The paper's server "does not perform on-the-fly compression but sends out
// a pre-computed deflated version of the Microscape HTML page" — hence the
// precompressed variant support. Images are never deflated (already LZW).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "buf/bytes.hpp"
#include "content/microscape.hpp"
#include "http/date.hpp"

namespace hsim::server {

struct Resource {
  std::string path;
  std::string content_type;
  // Each asset is one shared immutable block: every response body, TCP
  // segment and cached copy is a slice of it — serving never copies.
  buf::Bytes data;
  /// Pre-deflated variant (zlib stream) served when the client advertises
  /// "Accept-Encoding: deflate"; empty = none.
  buf::Bytes deflated;
  std::string etag;
  http::UnixSeconds last_modified = http::kSimulationEpoch;
};

class StaticSite {
 public:
  void add(Resource resource);
  const Resource* find(const std::string& path) const;
  std::size_t size() const { return resources_.size(); }

  /// Revises a resource in place: new content, fresh ETag, bumped
  /// Last-Modified (models a site update between visits). Returns false if
  /// the path does not exist.
  bool update(const std::string& path, std::vector<std::uint8_t> data,
              http::UnixSeconds modified_at);

  /// Total body bytes across all resources.
  std::size_t total_bytes() const;

  /// Materializes the Microscape test site: "/index.html" plus the 42
  /// images. `precompress_html` attaches the deflated HTML variant.
  static StaticSite from_microscape(const content::MicroscapeSite& site,
                                    bool precompress_html = true);

 private:
  std::map<std::string, Resource> resources_;
};

/// Builds a strong entity tag from content bytes (hash-based, like real
/// servers derive from inode/mtime/size).
std::string make_etag(std::span<const std::uint8_t> data);

}  // namespace hsim::server
