#include "server/server.hpp"

#include <algorithm>
#include <charconv>

#include "content/microscape.hpp"
#include "http/date.hpp"

namespace hsim::server {

namespace {

ServerConfig base_config() { return ServerConfig{}; }

/// Parses "bytes=a-b" (single range). Returns false if absent/malformed.
bool parse_byte_range(std::string_view value, std::size_t entity_size,
                      std::size_t& first, std::size_t& last) {
  if (!value.starts_with("bytes=")) return false;
  value.remove_prefix(6);
  const std::size_t dash = value.find('-');
  if (dash == std::string_view::npos) return false;
  const std::string_view a = value.substr(0, dash);
  const std::string_view b = value.substr(dash + 1);
  if (a.empty()) {
    // suffix range: last N bytes
    std::size_t n = 0;
    if (std::from_chars(b.data(), b.data() + b.size(), n).ec != std::errc()) {
      return false;
    }
    if (n == 0 || entity_size == 0) return false;
    first = n >= entity_size ? 0 : entity_size - n;
    last = entity_size - 1;
    return true;
  }
  if (std::from_chars(a.data(), a.data() + a.size(), first).ec !=
      std::errc()) {
    return false;
  }
  if (b.empty()) {
    last = entity_size == 0 ? 0 : entity_size - 1;
  } else if (std::from_chars(b.data(), b.data() + b.size(), last).ec !=
             std::errc()) {
    return false;
  }
  if (first > last || first >= entity_size) return false;
  last = std::min(last, entity_size - 1);
  return true;
}

}  // namespace

ServerConfig jigsaw_config() {
  ServerConfig c = base_config();
  c.server_name = "Jigsaw/1.06";
  c.per_request_cpu = sim::milliseconds(6);
  c.per_connection_cpu = sim::milliseconds(5);  // interpreted Java accept path
  c.output_buffer = 8192;
  c.verbose_headers = false;
  return c;
}

ServerConfig apache_config() {
  ServerConfig c = base_config();
  c.server_name = "Apache/1.2b10";
  c.per_request_cpu = sim::microseconds(1800);
  c.per_connection_cpu = sim::microseconds(2500);
  c.output_buffer = 8192;  // b10 adopted the tuned buffering
  c.verbose_headers = false;
  return c;
}

ServerConfig apache_beta2_config() {
  ServerConfig c = apache_config();
  c.server_name = "Apache/1.2b2";
  c.max_requests_per_connection = 5;
  c.close_style = CloseStyle::kNaive;
  c.output_buffer = 512;  // immature buffering in the first beta
  return c;
}

HttpServer::HttpServer(tcp::Host& host, StaticSite site, ServerConfig config,
                       sim::Rng rng)
    : host_(host),
      site_(std::move(site)),
      config_(std::move(config)),
      rng_(rng) {}

void HttpServer::start(net::Port port) {
  port_ = port;
  tcp::TcpOptions opts = config_.tcp;
  opts.nodelay = config_.nodelay;
  host_.listen(port, [this](tcp::ConnectionPtr c) { on_accept(std::move(c)); },
               opts, tcp::ListenConfig{config_.listen_backlog});
}

void HttpServer::stop() { host_.stop_listening(port_); }

HttpServer::Metrics HttpServer::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.accepted = obs::counter_handle("server.connections_accepted");
  m.requests_served = obs::counter_handle("server.requests_served");
  m.rejected = obs::counter_handle("server.connections_rejected");
  m.queued = obs::counter_handle("server.connections_queued");
  m.admission_queue_depth = obs::gauge_handle("server.admission_queue_depth");
  m.active_connections = obs::gauge_handle("server.active_connections");
  return m;
}

void HttpServer::on_accept(tcp::ConnectionPtr conn) {
  ++stats_.connections_accepted;
  metrics_.accepted.inc();
  const bool at_capacity =
      config_.max_concurrent_connections != 0 &&
      active_connections_ >= config_.max_concurrent_connections;
  if (at_capacity && config_.admission_policy == AdmissionPolicy::kReject503) {
    reject_with_503(std::move(conn));
    return;
  }
  auto state = std::make_shared<ConnState>();
  state->conn = conn;
  state->idle_timer = std::make_unique<sim::Timer>(host_.event_queue());
  state->fault_eligible =
      config_.faults.faulty_connection_limit == 0 ||
      stats_.connections_accepted <= config_.faults.faulty_connection_limit;
  connections_[conn.get()] = state;

  std::weak_ptr<ConnState> weak = state;
  conn->set_on_data([this, weak] {
    if (auto s = weak.lock()) {
      // Queued connections are never read: their requests wait in the TCP
      // receive buffer until admission.
      if (s->admitted) on_data(s);
    }
  });
  conn->set_on_send_space([this, weak] {
    if (auto s = weak.lock()) pump_unsent(s);
  });
  conn->set_on_peer_fin([this, weak] {
    // The client finished sending; serve whatever is queued, then close our
    // half once the pipeline drains (handled in process_next).
    if (auto s = weak.lock()) {
      if (!s->processing && s->pending.empty() && s->h2_pending.empty()) {
        begin_close(s);
      }
    }
  });
  auto cleanup = [this, weak] {
    if (auto s = weak.lock()) {
      s->idle_timer->cancel();
      connections_.erase(s->conn.get());
      // Backstop for client-initiated teardown (reset, early FIN) where the
      // server never reached begin_close.
      release_slot(s);
    }
  };
  conn->set_on_closed(cleanup);
  conn->set_on_reset(cleanup);

  if (at_capacity) {
    // AdmissionPolicy::kQueue: park the established connection; no CPU is
    // spent and no idle timer runs until a serving slot frees up.
    ++stats_.connections_queued;
    metrics_.queued.inc();
    admission_queue_.push_back(weak);
    stats_.max_admission_queue =
        std::max<std::uint64_t>(stats_.max_admission_queue,
                                admission_queue_.size());
    metrics_.admission_queue_depth.set(
        static_cast<std::int64_t>(admission_queue_.size()));
    return;
  }
  admit(state);
}

void HttpServer::admit(const ConnStatePtr& state) {
  state->admitted = true;
  ++active_connections_;
  stats_.max_active_connections =
      std::max<std::uint64_t>(stats_.max_active_connections,
                              active_connections_);
  metrics_.active_connections.set(
      static_cast<std::int64_t>(active_connections_));
  // Connection setup consumes CPU on the (single) server processor.
  cpu_free_at_ = std::max(cpu_free_at_, host_.event_queue().now()) +
                 config_.per_connection_cpu;
  arm_idle_timer(state);
  // Serve whatever arrived while the connection sat in the accept queue.
  on_data(state);
}

void HttpServer::release_slot(const ConnStatePtr& state) {
  if (!state->admitted) return;
  state->admitted = false;
  --active_connections_;
  metrics_.active_connections.sub(1);
  admit_from_queue();
}

void HttpServer::admit_from_queue() {
  while (!admission_queue_.empty()) {
    if (config_.max_concurrent_connections != 0 &&
        active_connections_ >= config_.max_concurrent_connections) {
      return;
    }
    ConnStatePtr state = admission_queue_.front().lock();
    admission_queue_.pop_front();
    metrics_.admission_queue_depth.sub(1);
    // Skip clients that gave up (closed/reset) while waiting.
    if (!state || state->conn->state() == tcp::State::kClosed) continue;
    admit(state);
  }
}

void HttpServer::reject_with_503(tcp::ConnectionPtr conn) {
  ++stats_.connections_rejected;
  metrics_.rejected.inc();
  http::Response res;
  res.version = http::Version::kHttp11;
  res.status = 503;
  res.reason = std::string(http::default_reason(503));
  res.headers.add("Date", http::format_http_date(
                              http::sim_to_unix(host_.event_queue().now())));
  res.headers.add("Server", config_.server_name);
  res.headers.add("Connection", "close");
  if (config_.overload_retry_after > 0) {
    res.headers.add("Retry-After",
                    std::to_string(config_.overload_retry_after /
                                   1'000'000'000));
  }
  res.headers.add("Content-Length", "0");
  conn->send(res.serialize_chain());
  conn->shutdown_send();
}

void HttpServer::arm_idle_timer(const ConnStatePtr& state) {
  if (config_.idle_timeout <= 0) return;
  std::weak_ptr<ConnState> weak = state;
  state->idle_timer->arm(config_.idle_timeout, [this, weak] {
    if (auto s = weak.lock()) {
      // The keep-alive clock only runs *between* requests: a connection with
      // a request parsed or on the CPU is busy, not idle. Without this check
      // an aggressive timeout (shorter than the per-request CPU cost) would
      // reap connections mid-request and discard the work.
      if (s->processing || !s->pending.empty() || !s->h2_pending.empty() ||
          (s->h2 != nullptr && s->h2->queued_send_bytes() > 0)) {
        arm_idle_timer(s);
        return;
      }
      begin_close(s);
    }
  });
}

void HttpServer::on_data(const ConnStatePtr& state) {
  arm_idle_timer(state);
  if (state->h2 != nullptr) {
    state->h2->receive(state->conn->read_all());
    return;
  }
  if (config_.h2_enabled && !state->h1_classified) {
    // Classify by comparing arrived bytes against the 24-byte h2 preface.
    // Every HTTP/1.x method diverges within its first bytes ("PRI" vs
    // "POST" at index 1), so classification resolves on the first segment
    // in practice; the accumulated bytes reach the HTTP/1.x parser in the
    // same event they otherwise would.
    state->preface_buf.append(state->conn->read_all());
    const std::size_t n =
        std::min(state->preface_buf.size(), h2::kClientPreface.size());
    if (state->preface_buf.to_string(0, n) != h2::kClientPreface.substr(0, n)) {
      state->h1_classified = true;
      state->parser.feed(std::move(state->preface_buf));
      state->preface_buf.clear();
    } else if (state->preface_buf.size() >= h2::kClientPreface.size()) {
      start_h2(state);
      return;
    } else {
      return;  // too few bytes to classify yet
    }
  } else {
    state->parser.feed(state->conn->read_all());
  }
  while (auto request = state->parser.next()) {
    state->pending.push_back(std::move(*request));
  }
  // Parse errors surface while draining complete messages.
  if (state->parser.failed() && !state->closing) {
    http::Response bad;
    bad.status = 400;
    bad.reason = std::string(http::default_reason(400));
    bad.headers.add("Content-Length", "0");
    enqueue_response(state, bad);
    state->closing = true;
    flush_output(state, /*idle_flush=*/true);
    return;
  }
  if (!state->processing) process_next(state);
}

void HttpServer::start_h2(const ConnStatePtr& state) {
  ++stats_.h2_connections;
  state->preface_buf.pop_front(h2::kClientPreface.size());
  h2::SessionConfig sc;
  sc.is_server = true;
  sc.enable_push = config_.h2_push;
  sc.max_concurrent_streams = config_.h2_max_concurrent_streams;
  sc.initial_window = config_.h2_initial_window;
  std::weak_ptr<ConnState> weak = state;
  // The session writes through the connection's unsent queue, so the wire
  // fault injections (stall-after-bytes, premature close) apply to h2
  // traffic exactly as they do to HTTP/1.x responses.
  state->h2 = std::make_unique<h2::Session>(
      host_.event_queue(), sc, [this, weak](buf::Chain&& bytes) {
        if (auto s = weak.lock()) {
          s->out_unsent.append(std::move(bytes));
          pump_unsent(s);
        }
      });
  state->h2->on_request = [this, weak](std::uint32_t id, http::Request req) {
    if (auto s = weak.lock()) {
      s->h2_pending.emplace_back(id, std::move(req));
      if (!s->processing) process_next(s);
    }
  };
  state->h2->on_connection_error = [this, weak](const h2::DecodeError&) {
    if (auto s = weak.lock()) {
      // The session already answered with an attributed GOAWAY; drain it and
      // tear the connection down.
      ++stats_.h2_conn_errors;
      s->h2_pending.clear();
      s->closing = true;
      flush_output(s, /*idle_flush=*/true);
    }
  };
  // Bytes that arrived glued to the preface (SETTINGS at minimum).
  if (!state->preface_buf.empty()) {
    buf::Chain rest = std::move(state->preface_buf);
    state->preface_buf.clear();
    state->h2->receive(std::move(rest));
  }
}

void HttpServer::process_next(const ConnStatePtr& state) {
  if (state->closing) return;
  if (state->pending.empty() && state->h2_pending.empty()) {
    // "the server maintains a response buffer that it flushes ... when there
    // is no more requests coming in on that connection"
    flush_output(state, /*idle_flush=*/true);
    if (state->conn->peer_closed()) begin_close(state);
    return;
  }
  state->processing = true;
  const sim::Time cpu = static_cast<sim::Time>(
      static_cast<double>(config_.per_request_cpu) *
      rng_.jitter(config_.cpu_jitter));
  // Serialize on the single CPU across all connections.
  const sim::Time now = host_.event_queue().now();
  const sim::Time start = std::max(now, cpu_free_at_);
  cpu_free_at_ = start + cpu;
  std::weak_ptr<ConnState> weak = state;
  host_.event_queue().schedule_in(cpu_free_at_ - now, [this, weak] {
    auto s = weak.lock();
    if (!s || s->conn->state() == tcp::State::kClosed) return;
    s->processing = false;
    if (s->h2 != nullptr) {
      if (s->h2_pending.empty()) return;
      const auto [stream_id, request] = std::move(s->h2_pending.front());
      s->h2_pending.pop_front();
      finish_request_h2(s, stream_id, request);
      return;
    }
    if (s->pending.empty()) return;
    const http::Request request = std::move(s->pending.front());
    s->pending.pop_front();
    finish_request(s, request);
  });
}

http::Response HttpServer::build_response(const http::Request& request) {
  http::Response res;
  res.version = request.version;

  // Fault injection: transient 5xx storm.
  if (config_.faults.error_probability > 0.0 &&
      rng_.chance(config_.faults.error_probability)) {
    res.status = 500;
    res.reason = std::string(http::default_reason(500));
    res.headers.add("Date",
                    http::format_http_date(
                        http::sim_to_unix(host_.event_queue().now())));
    res.headers.add("Server", config_.server_name);
    res.headers.add("Content-Length", "0");
    return res;
  }

  const Resource* resource = site_.find(request.target);
  if (resource == nullptr) {
    res.status = 404;
    res.reason = std::string(http::default_reason(404));
    res.headers.add("Date",
                    http::format_http_date(
                        http::sim_to_unix(host_.event_queue().now())));
    res.headers.add("Server", config_.server_name);
    res.headers.add("Content-Length", "0");
    return res;
  }

  // Cache validation: entity tags take precedence over date checks.
  bool not_modified = false;
  if (const auto inm = request.headers.get("If-None-Match")) {
    not_modified = (*inm == resource->etag);
  } else if (const auto ims = request.headers.get("If-Modified-Since")) {
    if (const auto since = http::parse_http_date(*ims)) {
      not_modified = resource->last_modified <= *since;
    }
  }

  res.headers.add("Date", http::format_http_date(
                              http::sim_to_unix(host_.event_queue().now())));
  res.headers.add("Server", config_.server_name);

  if (not_modified) {
    res.status = 304;
    res.reason = std::string(http::default_reason(304));
    res.headers.add("ETag", resource->etag);
    return res;
  }

  // Content negotiation: precompressed deflate variant.
  const buf::Bytes* body = &resource->data;
  bool deflated = false;
  if (config_.support_deflate && !resource->deflated.empty() &&
      request.headers.has_token("Accept-Encoding", "deflate")) {
    body = &resource->deflated;
    deflated = true;
  }

  // Byte ranges (If-Range gating): ranges apply to the selected variant.
  std::size_t first = 0, last = 0;
  bool ranged = false;
  if (const auto range = request.headers.get("Range")) {
    bool range_valid = true;
    if (const auto if_range = request.headers.get("If-Range")) {
      range_valid = (*if_range == resource->etag);
    }
    if (range_valid &&
        parse_byte_range(*range, body->size(), first, last)) {
      ranged = true;
    }
  }

  res.status = ranged ? 206 : 200;
  res.reason = std::string(http::default_reason(res.status));
  res.headers.add("Content-Type", resource->content_type);
  res.headers.add("ETag", resource->etag);
  res.headers.add("Last-Modified",
                  http::format_http_date(resource->last_modified));
  if (deflated) res.headers.add("Content-Encoding", "deflate");
  if (config_.verbose_headers) {
    res.headers.add("Accept-Ranges", "bytes");
    res.headers.add("MIME-Version", "1.0");
  }

  if (ranged) {
    char content_range[80];
    std::snprintf(content_range, sizeof content_range, "bytes %zu-%zu/%zu",
                  first, last, body->size());
    res.headers.add("Content-Range", content_range);
    res.headers.add("Content-Length", std::to_string(last - first + 1));
    if (request.method != http::Method::kHead) {
      // Range responses slice the shared asset block — no byte is copied.
      res.body.append(body->slice(first, last - first + 1));
    }
  } else {
    res.headers.add("Content-Length", std::to_string(body->size()));
    if (request.method != http::Method::kHead) {
      res.body.append(*body);
    }
  }
  return res;
}

void HttpServer::count_response_status(const http::Response& response) {
  switch (response.status) {
    case 200: ++stats_.responses_200; break;
    case 206: ++stats_.responses_206; break;
    case 304: ++stats_.responses_304; break;
    case 404: ++stats_.responses_404; break;
    case 500: ++stats_.responses_5xx; break;
    default: break;
  }
}

void HttpServer::finish_request(const ConnStatePtr& state,
                                const http::Request& request) {
  ++stats_.requests_served;
  metrics_.requests_served.inc();
  ++state->served;
  http::Response res = build_response(request);
  count_response_status(res);
  if (res.headers.has_token("Content-Encoding", "deflate")) {
    ++stats_.deflated_responses;
  }

  // Decide connection persistence.
  bool close_after = false;
  if (request.headers.has_token("Connection", "close")) {
    close_after = true;
  } else if (request.version == http::Version::kHttp10) {
    const bool wants_keepalive =
        request.headers.has_token("Connection", "keep-alive");
    if (wants_keepalive && config_.keep_alive) {
      res.headers.add("Connection", "Keep-Alive");
    } else {
      close_after = true;
    }
  } else if (!config_.http11) {
    close_after = true;
  }
  if (config_.max_requests_per_connection != 0 &&
      state->served >= config_.max_requests_per_connection) {
    close_after = true;
    ++stats_.connections_closed_by_limit;
  }
  if (close_after && !res.headers.contains("Connection")) {
    res.headers.add("Connection", "close");
  }

  enqueue_response(state, res);
  if (close_after) {
    state->closing = true;
    flush_output(state, /*idle_flush=*/true);
    return;
  }
  process_next(state);
}

void HttpServer::finish_request_h2(const ConnStatePtr& state,
                                   std::uint32_t stream_id,
                                   const http::Request& request) {
  ++stats_.requests_served;
  metrics_.requests_served.inc();
  ++state->served;
  http::Response res = build_response(request);
  count_response_status(res);
  if (res.headers.has_token("Content-Encoding", "deflate")) {
    ++stats_.deflated_responses;
  }

  // Server push: promise every embedded src= reference before the HTML's
  // DATA frames go out, so the client holds the promises before it could
  // parse the references out of the body.
  struct PendingPush {
    std::uint32_t id;
    http::Request req;
  };
  std::vector<PendingPush> pushes;
  if (config_.h2_push && state->h2->peer_push_enabled() && res.status == 200 &&
      request.method == http::Method::kGet) {
    const Resource* resource = site_.find(request.target);
    if (resource != nullptr &&
        std::string_view(resource->content_type).starts_with("text/html")) {
      for (const std::string& ref :
           content::scan_image_references(resource->data.view())) {
        if (site_.find(ref) == nullptr) continue;
        http::Request push_req;
        push_req.method = http::Method::kGet;
        push_req.target = ref;
        push_req.version = http::Version::kHttp11;
        if (const auto host = request.headers.get("Host")) {
          push_req.headers.add("Host", std::string(*host));
        }
        if (auto promised = state->h2->promise_push(stream_id, push_req)) {
          ++stats_.h2_pushes;
          pushes.push_back(PendingPush{*promised, std::move(push_req)});
        }
      }
    }
  }

  state->h2->submit_response(stream_id, res);
  // Pushed responses ride the same build path (validators, ranges, faults)
  // but count as pushes, not served requests. Their statuses still land in
  // the per-status tallies so injected faults stay observable.
  for (const PendingPush& p : pushes) {
    http::Response pushed = build_response(p.req);
    count_response_status(pushed);
    state->h2->push_response(p.id, pushed);
  }

  // h2 persistence is GOAWAY-based: only the per-connection request cap
  // translates into a close here. Queued DATA drains before the FIN.
  if (config_.max_requests_per_connection != 0 &&
      state->served >= config_.max_requests_per_connection) {
    ++stats_.connections_closed_by_limit;
    state->h2->send_goaway(h2::ErrorCode::kNoError);
    state->closing = true;
    flush_output(state, /*idle_flush=*/true);
    return;
  }
  process_next(state);
}

void HttpServer::enqueue_response(const ConnStatePtr& state,
                                  const http::Response& response) {
  // Head bytes are materialized once; the body rides along as shared slices
  // of the site asset.
  state->out_buffer.append(response.serialize_chain());
  if (state->out_buffer.size() >= config_.output_buffer) {
    ++stats_.output_flushes_full;
    flush_output(state, /*idle_flush=*/false);
  }
}

void HttpServer::flush_output(const ConnStatePtr& state, bool idle_flush) {
  if (!state->out_buffer.empty()) {
    if (idle_flush) ++stats_.output_flushes_idle;
    state->out_unsent.append(std::move(state->out_buffer));
  }
  pump_unsent(state);
}

void HttpServer::pump_unsent(const ConnStatePtr& state) {
  const ServerFaults& faults = config_.faults;
  while (!state->out_unsent.empty()) {
    std::size_t take =
        std::min<std::size_t>(state->out_unsent.size(), 32 * 1024);
    if (state->fault_eligible) {
      if (faults.stall_after_bytes > 0) {
        if (state->wire_bytes_pushed >= faults.stall_after_bytes) {
          // The worker wedges: the connection stays open but goes silent.
          if (!state->stalled) {
            state->stalled = true;
            ++stats_.stalls_injected;
          }
          return;
        }
        take = std::min(take,
                        faults.stall_after_bytes - state->wire_bytes_pushed);
      }
      if (faults.premature_close_after_bytes > 0) {
        if (state->wire_bytes_pushed >= faults.premature_close_after_bytes) {
          inject_premature_close(state);
          return;
        }
        take = std::min(take, faults.premature_close_after_bytes -
                                  state->wire_bytes_pushed);
      }
    }
    // The send chain shares the unsent slices — no flattening.
    const std::size_t sent = state->conn->send(state->out_unsent, take);
    state->wire_bytes_pushed += sent;
    state->out_unsent.pop_front(sent);
    if (sent < take) break;  // TCP send buffer full; resume on space
  }
  if (state->closing && state->out_unsent.empty() &&
      state->out_buffer.empty() &&
      (state->h2 == nullptr || state->h2->queued_send_bytes() == 0)) {
    begin_close(state);
  }
}

void HttpServer::inject_premature_close(const ConnStatePtr& state) {
  ++stats_.premature_closes_injected;
  state->fault_eligible = false;  // fire once per connection
  state->out_buffer.clear();
  state->out_unsent.clear();
  state->pending.clear();
  if (state->h2 != nullptr) {
    // A crashing h2 worker still manages a GOAWAY naming the last stream it
    // processed — the partition the client's retry logic keys on. The fault
    // flag is already cleared, so the frame passes pump_unsent untouched.
    state->h2_pending.clear();
    state->h2->send_goaway(h2::ErrorCode::kInternalError);
  }
  state->closing = true;
  if (config_.close_style == CloseStyle::kNaive) {
    state->conn->close_naive();
  } else {
    state->conn->shutdown_send();
  }
  release_slot(state);
}

void HttpServer::begin_close(const ConnStatePtr& state) {
  state->closing = true;
  // A clean h2 close announces itself; emitting the GOAWAY may re-enter
  // begin_close through the pump, hence the close_begun guard below.
  if (state->h2 != nullptr && !state->h2->goaway_sent()) {
    state->h2->send_goaway(h2::ErrorCode::kNoError);
  }
  if (!state->out_unsent.empty() || !state->out_buffer.empty()) {
    flush_output(state, /*idle_flush=*/true);
    return;  // pump_unsent re-enters begin_close once drained
  }
  if (state->close_begun) return;
  state->close_begun = true;
  if (config_.close_style == CloseStyle::kNaive) {
    state->conn->close_naive();
  } else {
    state->conn->shutdown_send();
  }
  // The worker is done with this connection; the FIN exchange and TIME_WAIT
  // are the TCP stack's problem, not the serving slot's.
  release_slot(state);
}

}  // namespace hsim::server
