// HTTP server behavioural profiles.
//
// Jigsaw 1.06 (interpreted Java) and Apache 1.2b10 (C) differ mainly in
// per-request CPU cost and in output buffering maturity; Apache 1.2b2 adds
// the "at most five requests per connection" behaviour whose interaction
// with pipelining the paper diagnoses.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "tcp/options.hpp"

namespace hsim::server {

enum class CloseStyle {
  kGraceful,  // close each half independently (paper's recommendation)
  kNaive,     // close both directions at once (draws RSTs under pipelining)
};

/// What happens to a connection accepted while the server is already at
/// max_concurrent_connections.
enum class AdmissionPolicy {
  /// Hold the connection (established but unserved) until an active slot
  /// frees up — the classic accept-queue model. Requests sit in the TCP
  /// receive buffer meanwhile.
  kQueue,
  /// Immediately answer "503 Service Unavailable" and close. Load is shed
  /// at the application layer instead of parking clients.
  kReject503,
};

/// Injectable server misbehaviours (all off by default). These model the
/// failure modes real HTTP studies keep running into: wedged worker
/// processes, servers that die mid-response, and transient 5xx storms.
struct ServerFaults {
  /// After pushing this many wire bytes on a connection, stop writing and go
  /// silent: the connection stays open but nothing further is sent (a wedged
  /// worker). 0 = off. Only a client deadline gets out of this.
  std::size_t stall_after_bytes = 0;

  /// After pushing this many wire bytes on a connection, discard everything
  /// still buffered and close it (per close_style) — a premature close mid-
  /// response. 0 = off.
  std::size_t premature_close_after_bytes = 0;

  /// Restrict the stall / premature-close faults to the first N accepted
  /// connections (0 = every connection). Letting later connections through
  /// is what makes client-side recovery observable end to end.
  unsigned faulty_connection_limit = 0;

  /// Per-request probability of answering "500 Internal Server Error"
  /// instead of serving the resource.
  double error_probability = 0.0;

  bool any() const {
    return stall_after_bytes > 0 || premature_close_after_bytes > 0 ||
           error_probability > 0.0;
  }
};

struct ServerConfig {
  std::string server_name = "Jigsaw/1.06";

  /// CPU time consumed per request before the response is generated.
  sim::Time per_request_cpu = sim::milliseconds(4);
  /// CPU cost of accepting and tearing down a TCP connection (fork/accept/
  /// close path). This is a large part of why HTTP/1.0's one-connection-per-
  /// object model loses on elapsed time even on a LAN.
  sim::Time per_connection_cpu = sim::milliseconds(3);
  /// Multiplicative jitter on the CPU time (models load / GC noise).
  double cpu_jitter = 0.15;

  /// Response output buffer: flushed when full, or when the connection has
  /// no further pipelined requests pending ("before it goes idle").
  std::size_t output_buffer = 8192;

  /// Close the connection after serving this many requests (0 = unlimited).
  /// Apache 1.2b2 shipped with 5, which truncates pipelined bursts.
  unsigned max_requests_per_connection = 0;

  /// How the connection is closed (see the paper's Connection Management
  /// section).
  CloseStyle close_style = CloseStyle::kGraceful;

  /// Disable Nagle on accepted connections (recommended for buffered
  /// HTTP/1.1 implementations).
  bool nodelay = true;

  /// Whether HTTP/1.1 persistent connections are offered. (HTTP/1.0
  /// requests are still honoured either way.)
  bool http11 = true;

  /// Honour HTTP/1.0 "Connection: Keep-Alive".
  bool keep_alive = true;

  /// Serve precompressed variants when the client accepts deflate.
  bool support_deflate = true;

  /// Close connections idle longer than this (0 = never).
  sim::Time idle_timeout = sim::seconds(30);

  // ---- Scale / admission control -----------------------------------------
  /// TCP-level SYN/accept backlog handed to tcp::Host::listen. SYNs past it
  /// are dropped silently (clients recover via SYN retransmission). 0 =
  /// unlimited, the pre-scale behaviour.
  std::size_t listen_backlog = 0;

  /// Connections concurrently *served* (admitted past the accept queue).
  /// 0 = unlimited. Overload handling follows admission_policy.
  std::size_t max_concurrent_connections = 0;

  /// Policy for connections beyond max_concurrent_connections.
  AdmissionPolicy admission_policy = AdmissionPolicy::kQueue;

  /// When rejecting with 503, advertise this back-off hint in a Retry-After
  /// header (whole seconds; 0 = no header, the legacy byte-exact framing).
  /// Clients that honor it spread their re-issues instead of stampeding the
  /// instant a slot frees.
  sim::Time overload_retry_after = 0;

  // ---- HTTP/2-style framing ----------------------------------------------
  /// Accept h2 connections (detected by the 24-byte client preface). An
  /// HTTP/1.x client never sends the preface, so enabling this leaves the
  /// 1.x byte stream untouched.
  bool h2_enabled = true;

  /// Push embedded resources (the Microscape `src=` graph) on h2
  /// connections whose client advertised ENABLE_PUSH.
  bool h2_push = true;

  /// SETTINGS_MAX_CONCURRENT_STREAMS advertised to h2 clients.
  std::uint32_t h2_max_concurrent_streams = 100;

  /// Per-stream receive window advertised to h2 clients.
  std::uint32_t h2_initial_window = 65535;

  /// Extra response headers (header verbosity differs across servers; this
  /// affects the byte counts in the tables).
  bool verbose_headers = false;

  /// Fault injection (chaos testing); see ServerFaults.
  ServerFaults faults;

  tcp::TcpOptions tcp;
};

/// Jigsaw 1.06: interpreted Java, slower per request.
ServerConfig jigsaw_config();

/// Apache 1.2b10: fast C server, tuned output buffering.
ServerConfig apache_config();

/// Apache 1.2b2: the beta the paper first tested — closes after 5 requests
/// and buffers output less effectively.
ServerConfig apache_beta2_config();

}  // namespace hsim::server
