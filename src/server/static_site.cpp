#include "server/static_site.hpp"

#include <cstdio>

#include "deflate/checksum.hpp"
#include "deflate/deflate.hpp"

namespace hsim::server {

void StaticSite::add(Resource resource) {
  std::string key = resource.path;
  resources_[std::move(key)] = std::move(resource);
}

const Resource* StaticSite::find(const std::string& path) const {
  const auto it = resources_.find(path);
  return it == resources_.end() ? nullptr : &it->second;
}

bool StaticSite::update(const std::string& path,
                        std::vector<std::uint8_t> data,
                        http::UnixSeconds modified_at) {
  const auto it = resources_.find(path);
  if (it == resources_.end()) return false;
  Resource& r = it->second;
  r.data = buf::Bytes(std::move(data));
  r.etag = make_etag(r.data.span());
  r.last_modified = modified_at;
  if (!r.deflated.empty()) {
    r.deflated = buf::Bytes(deflate::zlib_compress(r.data.span()));
  }
  return true;
}

std::size_t StaticSite::total_bytes() const {
  std::size_t n = 0;
  for (const auto& [path, r] : resources_) n += r.data.size();
  return n;
}

std::string make_etag(std::span<const std::uint8_t> data) {
  // Opaque strong validator; CRC-32 over the content is plenty for the
  // simulation and matches the typical "short opaque string" wire cost.
  char buf[16];
  std::snprintf(buf, sizeof buf, "\"%08x\"", deflate::crc32(data));
  return buf;
}

StaticSite StaticSite::from_microscape(const content::MicroscapeSite& site,
                                       bool precompress_html) {
  StaticSite out;
  Resource html;
  html.path = "/index.html";
  html.content_type = "text/html";
  html.data = buf::Bytes(std::string_view(site.html));
  html.etag = make_etag(html.data.span());
  if (precompress_html) {
    html.deflated = buf::Bytes(deflate::zlib_compress(html.data.span()));
  }
  out.add(std::move(html));

  for (const content::SiteImage& img : site.images) {
    Resource r;
    r.path = img.path;
    r.content_type = "image/gif";
    r.data = buf::Bytes(std::span<const std::uint8_t>(img.gif_bytes));
    r.etag = make_etag(r.data.span());
    out.add(std::move(r));
  }
  return out;
}

}  // namespace hsim::server
