// The HTTP server: accepts connections on a tcp::Host, parses possibly
// pipelined requests, serves the static site with correct HTTP/1.0 and 1.1
// semantics (persistent connections, conditional GET, HEAD, byte ranges,
// content coding), and buffers responses with flush-on-idle.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>

#include "h2/session.hpp"
#include "http/message.hpp"
#include "http/parser.hpp"
#include "obs/metrics.hpp"
#include "server/config.hpp"
#include "server/static_site.hpp"
#include "sim/random.hpp"
#include "tcp/host.hpp"

namespace hsim::server {

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t responses_200 = 0;
  std::uint64_t responses_206 = 0;
  std::uint64_t responses_304 = 0;
  std::uint64_t responses_404 = 0;
  std::uint64_t responses_5xx = 0;  // injected server errors
  std::uint64_t deflated_responses = 0;
  std::uint64_t output_flushes_full = 0;  // buffer reached capacity
  std::uint64_t output_flushes_idle = 0;  // flushed because queue went idle
  std::uint64_t connections_closed_by_limit = 0;
  std::uint64_t stalls_injected = 0;           // fault: connection went silent
  std::uint64_t premature_closes_injected = 0;  // fault: closed mid-response
  // ---- Admission control --------------------------------------------------
  std::uint64_t connections_rejected = 0;  // answered 503 and closed
  std::uint64_t connections_queued = 0;    // parked awaiting an active slot
  std::uint64_t max_admission_queue = 0;   // high-water mark of the queue
  std::uint64_t max_active_connections = 0;  // high-water mark of served conns
  // ---- HTTP/2-style framing ----------------------------------------------
  std::uint64_t h2_connections = 0;  // connections classified by preface
  std::uint64_t h2_pushes = 0;       // resources pushed (not requests_served)
  std::uint64_t h2_conn_errors = 0;  // framing violations answered by GOAWAY
};

class HttpServer {
 public:
  HttpServer(tcp::Host& host, StaticSite site, ServerConfig config,
             sim::Rng rng);

  /// Begins accepting connections on `port`.
  void start(net::Port port = 80);
  void stop();

  const ServerStats& stats() const { return stats_; }
  const ServerConfig& config() const { return config_; }

  /// Mutable access to the served site (e.g. revising resources between a
  /// first visit and a revalidation, to exercise range validation).
  StaticSite& site() { return site_; }

 private:
  struct ConnState {
    tcp::ConnectionPtr conn;
    http::RequestParser parser;
    std::deque<http::Request> pending;
    bool processing = false;  // a CPU-delay timer is outstanding
    buf::Chain out_buffer;  // application-level batching (shared body slices)
    buf::Chain out_unsent;  // overflow past the TCP buffer
    unsigned served = 0;
    bool closing = false;
    std::unique_ptr<sim::Timer> idle_timer;
    // Fault-injection bookkeeping.
    std::size_t wire_bytes_pushed = 0;  // bytes handed to the TCP connection
    bool fault_eligible = false;        // stall/close faults apply here
    bool stalled = false;               // the stall fault has triggered
    // Admission control: false while parked in the accept queue. Unadmitted
    // connections are never read from or served.
    bool admitted = false;
    // ---- HTTP/2-style framing ---------------------------------------------
    // Non-null once the connection's first bytes matched the h2 preface;
    // from then on all input feeds the session and the HTTP/1.x parser is
    // never touched.
    std::unique_ptr<h2::Session> h2;
    // True once the first bytes diverged from the preface (HTTP/1.x).
    bool h1_classified = false;
    // Bytes accumulated before classification resolves.
    buf::Chain preface_buf;
    // Complete h2 requests awaiting the single CPU, keyed by stream.
    std::deque<std::pair<std::uint32_t, http::Request>> h2_pending;
    // Guards the close handshake against re-entry via the GOAWAY pump.
    bool close_begun = false;
  };
  using ConnStatePtr = std::shared_ptr<ConnState>;

  void on_accept(tcp::ConnectionPtr conn);
  void admit(const ConnStatePtr& state);
  void admit_from_queue();
  void release_slot(const ConnStatePtr& state);
  void reject_with_503(tcp::ConnectionPtr conn);
  void on_data(const ConnStatePtr& state);
  void start_h2(const ConnStatePtr& state);
  void process_next(const ConnStatePtr& state);
  void finish_request(const ConnStatePtr& state, const http::Request& request);
  void finish_request_h2(const ConnStatePtr& state, std::uint32_t stream_id,
                         const http::Request& request);
  http::Response build_response(const http::Request& request);
  void count_response_status(const http::Response& response);
  void enqueue_response(const ConnStatePtr& state,
                        const http::Response& response);
  void flush_output(const ConnStatePtr& state, bool idle_flush);
  void pump_unsent(const ConnStatePtr& state);
  void inject_premature_close(const ConnStatePtr& state);
  void begin_close(const ConnStatePtr& state);
  void arm_idle_timer(const ConnStatePtr& state);

  tcp::Host& host_;
  StaticSite site_;
  ServerConfig config_;
  sim::Rng rng_;
  net::Port port_ = 80;
  ServerStats stats_;
  /// Single-CPU model: request processing serializes across ALL connections
  /// (a 1997 server did not process four parallel connections' requests
  /// concurrently). Time before which the CPU is busy.
  sim::Time cpu_free_at_ = 0;
  std::map<const tcp::Connection*, ConnStatePtr> connections_;
  /// Connections accepted past max_concurrent_connections under kQueue,
  /// waiting (established, unserved) for an active slot. Weak: a queued
  /// client that gives up disappears without ceremony.
  std::deque<std::weak_ptr<ConnState>> admission_queue_;
  /// Admitted connections the worker is still serving. The slot frees when
  /// the server closes its half (like a worker calling close()); the TCP
  /// machinery finishes FIN/TIME_WAIT in the background without holding it.
  std::size_t active_connections_ = 0;

  /// server.* registry metrics. The two gauges mirror admission_queue_ depth
  /// and active_connections_, so their peaks survive into the run's snapshot.
  struct Metrics {
    obs::CounterHandle accepted, requests_served, rejected, queued;
    obs::GaugeHandle admission_queue_depth, active_connections;
    static Metrics bind();
  };
  Metrics metrics_ = Metrics::bind();
};

}  // namespace hsim::server
