#include "http/parser.hpp"

#include <algorithm>
#include <charconv>

namespace hsim::http {

namespace {

std::optional<Version> parse_version(std::string_view s) {
  if (s == "HTTP/1.0") return Version::kHttp10;
  if (s == "HTTP/1.1") return Version::kHttp11;
  return std::nullopt;
}

/// Finds "\r\n\r\n"; returns offset just past it, or buf::npos. `scan_hint`
/// remembers how far previous calls searched so that feeding a message in
/// many small pieces never rescans old bytes (the separator may straddle the
/// boundary, hence the 3-byte overlap).
std::size_t find_header_end(const buf::Chain& buffer,
                            std::size_t& scan_hint) {
  const std::size_t from = scan_hint > 3 ? scan_hint - 3 : 0;
  const std::size_t pos = buffer.find("\r\n\r\n", from);
  if (pos == buf::npos) {
    scan_hint = buffer.size();
    return buf::npos;
  }
  return pos + 4;
}

bool parse_decimal(std::string_view s, std::size_t& out) {
  if (s.empty()) return false;
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  out = value;
  return true;
}

bool parse_hex(std::string_view s, std::size_t& out) {
  if (s.empty()) return false;
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  out = value;
  return true;
}

}  // namespace

bool parse_header_line(std::string_view line, std::string& name,
                       std::string& value) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  name.assign(line.substr(0, colon));
  std::string_view v = line.substr(colon + 1);
  while (!v.empty() && (v.front() == ' ' || v.front() == '\t')) {
    v.remove_prefix(1);
  }
  while (!v.empty() && (v.back() == ' ' || v.back() == '\t')) {
    v.remove_suffix(1);
  }
  value.assign(v);
  return true;
}

namespace {
/// Parses header lines from `block` (which excludes the final blank line).
bool parse_header_block(std::string_view block, Headers& headers) {
  std::size_t start = 0;
  while (start < block.size()) {
    std::size_t end = block.find("\r\n", start);
    if (end == std::string_view::npos) end = block.size();
    const std::string_view line = block.substr(start, end - start);
    if (!line.empty()) {
      std::string name, value;
      if (!parse_header_line(line, name, value)) return false;
      headers.add(std::move(name), std::move(value));
    }
    start = end + 2;
  }
  return true;
}
}  // namespace

// ---------------------------------------------------------------------------
// RequestParser
// ---------------------------------------------------------------------------

void RequestParser::feed(std::span<const std::uint8_t> data) {
  buffer_.append_copy(data);
}

void RequestParser::feed(buf::Chain data) { buffer_.append(std::move(data)); }

std::optional<Request> RequestParser::next() {
  if (error_ != ParseError::kNone) return std::nullopt;
  Request out;
  if (try_parse(out)) return out;
  return std::nullopt;
}

bool RequestParser::try_parse(Request& out) {
  const std::size_t header_end = find_header_end(buffer_, header_scan_);
  if (header_end == buf::npos) return false;

  // The head is small and line-structured: flatten it once for parsing.
  const std::string head_str = buffer_.to_string(0, header_end - 4);
  const std::string_view head(head_str);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view start_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "METHOD SP target SP HTTP/x.y"
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? std::string_view::npos
                                    : start_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    error_ = ParseError::kBadStartLine;
    return false;
  }
  const auto method = parse_method(start_line.substr(0, sp1));
  if (!method) {
    error_ = ParseError::kBadStartLine;
    return false;
  }
  const auto version = parse_version(start_line.substr(sp2 + 1));
  if (!version) {
    error_ = ParseError::kBadVersion;
    return false;
  }
  Request req;
  req.method = *method;
  req.version = *version;
  req.target = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (line_end != std::string_view::npos &&
      !parse_header_block(head.substr(line_end + 2), req.headers)) {
    error_ = ParseError::kBadHeader;
    return false;
  }

  // Request bodies: Content-Length only (requests in this study are
  // GET/HEAD; POST support exists for completeness).
  std::size_t body_len = 0;
  if (const auto cl = req.headers.get("Content-Length")) {
    if (!parse_decimal(*cl, body_len)) {
      error_ = ParseError::kBadContentLength;
      return false;
    }
  }
  if (buffer_.size() < header_end + body_len) return false;  // need body
  buffer_.pop_front(header_end);
  req.body = buffer_.split_front(body_len).to_vector();
  header_scan_ = 0;
  out = std::move(req);
  return true;
}

// ---------------------------------------------------------------------------
// ResponseParser
// ---------------------------------------------------------------------------

void ResponseParser::push_request_context(Method method) {
  request_methods_.push_back(method);
}

void ResponseParser::feed(std::span<const std::uint8_t> data) {
  buffer_.append_copy(data);
}

void ResponseParser::feed(buf::Chain data) { buffer_.append(std::move(data)); }

void ResponseParser::on_connection_closed() { connection_closed_ = true; }

std::optional<Response> ResponseParser::next() {
  if (error_ != ParseError::kNone) return std::nullopt;
  Response out;
  if (try_parse(out)) return out;
  return std::nullopt;
}

bool ResponseParser::try_parse(Response& out) {
  if (!in_body_) {
    const std::size_t header_end = find_header_end(buffer_, header_scan_);
    if (header_end == buf::npos) return false;

    const std::string head_str = buffer_.to_string(0, header_end - 4);
    const std::string_view head(head_str);
    const std::size_t line_end = head.find("\r\n");
    const std::string_view start_line =
        line_end == std::string_view::npos ? head : head.substr(0, line_end);

    // "HTTP/x.y SP status SP reason"
    const std::size_t sp1 = start_line.find(' ');
    if (sp1 == std::string_view::npos) {
      error_ = ParseError::kBadStartLine;
      return false;
    }
    const auto version = parse_version(start_line.substr(0, sp1));
    if (!version) {
      error_ = ParseError::kBadVersion;
      return false;
    }
    const std::size_t sp2 = start_line.find(' ', sp1 + 1);
    const std::string_view status_str =
        start_line.substr(sp1 + 1, sp2 == std::string_view::npos
                                       ? std::string_view::npos
                                       : sp2 - sp1 - 1);
    std::size_t status = 0;
    if (!parse_decimal(status_str, status) || status < 100 || status > 599) {
      error_ = ParseError::kBadStartLine;
      return false;
    }
    pending_ = Response{};
    pending_.version = *version;
    pending_.status = static_cast<int>(status);
    pending_.reason = sp2 == std::string_view::npos
                          ? std::string()
                          : std::string(start_line.substr(sp2 + 1));
    if (line_end != std::string_view::npos &&
        !parse_header_block(head.substr(line_end + 2), pending_.headers)) {
      error_ = ParseError::kBadHeader;
      return false;
    }
    buffer_.pop_front(header_end);
    header_scan_ = 0;

    // Determine framing.
    const Method req_method = request_methods_.empty()
                                  ? Method::kGet
                                  : request_methods_.front();
    if (!request_methods_.empty()) request_methods_.pop_front();

    if (req_method == Method::kHead || pending_.status_forbids_body()) {
      body_mode_ = BodyMode::kNone;
    } else if (pending_.headers.has_token("Transfer-Encoding", "chunked")) {
      body_mode_ = BodyMode::kChunked;
      chunk_state_ = ChunkState::kSize;
      chunk_remaining_ = 0;
    } else if (const auto cl = pending_.headers.get("Content-Length")) {
      if (!parse_decimal(*cl, body_remaining_)) {
        error_ = ParseError::kBadContentLength;
        return false;
      }
      body_mode_ = BodyMode::kContentLength;
    } else {
      // HTTP/1.0 style: the body runs until the server closes.
      body_mode_ = BodyMode::kUntilClose;
    }
    in_body_ = true;
  }

  // Body accumulation.
  switch (body_mode_) {
    case BodyMode::kNone:
      break;
    case BodyMode::kContentLength: {
      const std::size_t take = std::min(body_remaining_, buffer_.size());
      pending_.body.append(buffer_.split_front(take));
      body_remaining_ -= take;
      if (body_remaining_ > 0) return false;
      break;
    }
    case BodyMode::kUntilClose: {
      pending_.body.append(std::move(buffer_));
      if (!connection_closed_) return false;
      break;
    }
    case BodyMode::kChunked: {
      for (;;) {
        if (chunk_state_ == ChunkState::kSize) {
          const std::size_t eol = buffer_.find("\r\n");
          if (eol == buf::npos) return false;
          const std::string size_line = buffer_.to_string(0, eol);
          std::string_view size_str(size_line);
          // Ignore chunk extensions.
          const std::size_t semi = size_str.find(';');
          if (semi != std::string_view::npos) {
            size_str = size_str.substr(0, semi);
          }
          if (!parse_hex(size_str, chunk_remaining_)) {
            error_ = ParseError::kBadChunk;
            return false;
          }
          buffer_.pop_front(eol + 2);
          chunk_state_ = chunk_remaining_ == 0 ? ChunkState::kTrailer
                                               : ChunkState::kData;
        }
        if (chunk_state_ == ChunkState::kData) {
          const std::size_t take =
              std::min(chunk_remaining_, buffer_.size());
          pending_.body.append(buffer_.split_front(take));
          chunk_remaining_ -= take;
          if (chunk_remaining_ > 0) return false;
          chunk_state_ = ChunkState::kDataCrlf;
        }
        if (chunk_state_ == ChunkState::kDataCrlf) {
          if (buffer_.size() < 2) return false;
          if (buffer_[0] != '\r' || buffer_[1] != '\n') {
            error_ = ParseError::kBadChunk;
            return false;
          }
          buffer_.pop_front(2);
          chunk_state_ = ChunkState::kSize;
          continue;
        }
        if (chunk_state_ == ChunkState::kTrailer) {
          // Trailers end with a blank line; we accept an immediate CRLF or
          // skip trailer headers up to the blank line.
          const std::size_t end = buffer_.find("\r\n");
          if (end == buf::npos) return false;
          if (end == 0) {
            buffer_.pop_front(2);
            break;  // chunked body complete
          }
          buffer_.pop_front(end + 2);  // drop one trailer line, loop again
          continue;
        }
      }
      break;
    }
  }

  in_body_ = false;
  out = std::move(pending_);
  pending_ = Response{};
  return true;
}

}  // namespace hsim::http
