#include "http/chunked.hpp"

#include <cstdio>
#include <cstring>

namespace hsim::http {

std::vector<std::uint8_t> encode_chunk(std::span<const std::uint8_t> data) {
  char header[32];
  const int n = std::snprintf(header, sizeof header, "%zx\r\n", data.size());
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(n) + data.size() + 2);
  out.insert(out.end(), header, header + n);
  out.insert(out.end(), data.begin(), data.end());
  out.push_back('\r');
  out.push_back('\n');
  return out;
}

std::vector<std::uint8_t> final_chunk() {
  static const char terminator[] = "0\r\n\r\n";
  return std::vector<std::uint8_t>(terminator, terminator + 5);
}

std::vector<std::uint8_t> encode_chunked_body(
    std::span<const std::uint8_t> data, std::size_t chunk_size) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t n = std::min(chunk_size, data.size() - pos);
    const auto chunk = encode_chunk(data.subspan(pos, n));
    out.insert(out.end(), chunk.begin(), chunk.end());
    pos += n;
  }
  const auto fin = final_chunk();
  out.insert(out.end(), fin.begin(), fin.end());
  return out;
}

}  // namespace hsim::http
