#include "http/date.hpp"

#include <array>
#include <cstdio>
#include <cstring>

namespace hsim::http {

namespace {

constexpr std::array<const char*, 7> kDayNames = {
    "Thu", "Fri", "Sat", "Sun", "Mon", "Tue", "Wed"};  // day 0 = 1 Jan 1970
constexpr std::array<const char*, 12> kMonthNames = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};

struct CivilDate {
  int year;
  unsigned month;  // 1..12
  unsigned day;    // 1..31
};

// Howard Hinnant's civil-from-days algorithm (public domain).
CivilDate civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp < 10 ? mp + 3 : mp - 9;
  return {static_cast<int>(y + (m <= 2)), m, d};
}

std::int64_t days_from_civil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

}  // namespace

std::string format_http_date(UnixSeconds t) {
  std::int64_t days = t / 86400;
  std::int64_t secs = t % 86400;
  if (secs < 0) {
    secs += 86400;
    --days;
  }
  const CivilDate date = civil_from_days(days);
  const int weekday = static_cast<int>(((days % 7) + 7) % 7);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s, %02u %s %d %02d:%02d:%02d GMT",
                kDayNames[weekday], date.day, kMonthNames[date.month - 1],
                date.year, static_cast<int>(secs / 3600),
                static_cast<int>((secs / 60) % 60),
                static_cast<int>(secs % 60));
  return buf;
}

std::optional<UnixSeconds> parse_http_date(std::string_view s) {
  // "Www, DD Mmm YYYY HH:MM:SS GMT"
  char day_name[4] = {};
  char month_name[4] = {};
  char zone[4] = {};
  unsigned day = 0, year = 0, hh = 0, mm = 0, ss = 0;
  const std::string str(s);
  if (std::sscanf(str.c_str(), "%3s, %2u %3s %4u %2u:%2u:%2u %3s", day_name,
                  &day, month_name, &year, &hh, &mm, &ss, zone) != 8) {
    return std::nullopt;
  }
  if (std::strcmp(zone, "GMT") != 0) return std::nullopt;
  int month = -1;
  for (std::size_t i = 0; i < kMonthNames.size(); ++i) {
    if (std::strcmp(month_name, kMonthNames[i]) == 0) {
      month = static_cast<int>(i) + 1;
      break;
    }
  }
  if (month < 0 || day < 1 || day > 31 || hh > 23 || mm > 59 || ss > 60) {
    return std::nullopt;
  }
  const std::int64_t days =
      days_from_civil(static_cast<int>(year), static_cast<unsigned>(month),
                      day);
  return days * 86400 + hh * 3600 + mm * 60 + ss;
}

}  // namespace hsim::http
