#include "http/message.hpp"

#include <algorithm>
#include <cctype>

namespace hsim::http {

std::string_view to_string(Version v) {
  return v == Version::kHttp10 ? "HTTP/1.0" : "HTTP/1.1";
}

std::string_view to_string(Method m) {
  switch (m) {
    case Method::kGet: return "GET";
    case Method::kHead: return "HEAD";
    case Method::kPost: return "POST";
  }
  return "GET";
}

std::optional<Method> parse_method(std::string_view s) {
  if (s == "GET") return Method::kGet;
  if (s == "HEAD") return Method::kHead;
  if (s == "POST") return Method::kPost;
  return std::nullopt;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void Headers::add(std::string name, std::string value) {
  items_.emplace_back(std::move(name), std::move(value));
}

void Headers::set(std::string name, std::string value) {
  for (auto& [n, v] : items_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  add(std::move(name), std::move(value));
}

void Headers::remove(std::string_view name) {
  std::erase_if(items_,
                [&](const auto& item) { return iequals(item.first, name); });
}

std::optional<std::string_view> Headers::get(std::string_view name) const {
  for (const auto& [n, v] : items_) {
    if (iequals(n, name)) return std::string_view(v);
  }
  return std::nullopt;
}

bool Headers::has_token(std::string_view name, std::string_view token) const {
  const auto value = get(name);
  if (!value) return false;
  std::string_view rest = *value;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    // Trim whitespace.
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) {
      item.remove_prefix(1);
    }
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) {
      item.remove_suffix(1);
    }
    if (iequals(item, token)) return true;
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  return false;
}

std::size_t Headers::wire_size() const {
  std::size_t n = 0;
  for (const auto& [name, value] : items_) {
    n += name.size() + 2 + value.size() + 2;  // "Name: value\r\n"
  }
  return n;
}

namespace {
void append(std::vector<std::uint8_t>& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

void append_headers(std::vector<std::uint8_t>& out, const Headers& headers) {
  for (const auto& [name, value] : headers.items()) {
    append(out, name);
    append(out, ": ");
    append(out, value);
    append(out, "\r\n");
  }
  append(out, "\r\n");
}
}  // namespace

std::vector<std::uint8_t> Request::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());
  append(out, to_string(method));
  append(out, " ");
  append(out, target);
  append(out, " ");
  append(out, to_string(version));
  append(out, "\r\n");
  append_headers(out, headers);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::size_t Request::wire_size() const {
  return to_string(method).size() + 1 + target.size() + 1 + 8 + 2 +
         headers.wire_size() + 2 + body.size();
}

namespace {
std::string response_head(const Response& r) {
  std::string head;
  head.reserve(r.wire_size() - r.body.size());
  head.append(to_string(r.version));
  head.push_back(' ');
  head.append(std::to_string(r.status));
  head.push_back(' ');
  head.append(r.reason);
  head.append("\r\n");
  for (const auto& [name, value] : r.headers.items()) {
    head.append(name);
    head.append(": ");
    head.append(value);
    head.append("\r\n");
  }
  head.append("\r\n");
  return head;
}
}  // namespace

std::vector<std::uint8_t> Response::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(wire_size());
  append(out, response_head(*this));
  const std::size_t head_size = out.size();
  out.resize(head_size + body.size());
  body.copy_to(0, std::span<std::uint8_t>(out).subspan(head_size));
  return out;
}

buf::Chain Response::serialize_chain() const {
  buf::Chain out;
  out.append(buf::Bytes(std::string_view(response_head(*this))));
  out.append(body);
  return out;
}

std::size_t Response::wire_size() const {
  return 8 + 1 + 3 + 1 + reason.size() + 2 + headers.wire_size() + 2 +
         body.size();
}

std::string_view default_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 412: return "Precondition Failed";
    case 416: return "Requested Range Not Satisfiable";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

}  // namespace hsim::http
