// RFC 1123 HTTP date formatting and parsing.
//
// The simulation's wall clock starts at an arbitrary epoch (we use the
// paper's publication date, 24 June 1997 00:00:00 GMT) plus the simulated
// nanoseconds; Last-Modified / If-Modified-Since comparisons only need a
// consistent mapping.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace hsim::http {

/// Seconds since the Unix epoch.
using UnixSeconds = std::int64_t;

/// 24 June 1997 00:00:00 GMT, the paper's publication date.
inline constexpr UnixSeconds kSimulationEpoch = 867110400;

/// Formats like "Tue, 24 Jun 1997 00:00:00 GMT".
std::string format_http_date(UnixSeconds t);

/// Parses the RFC 1123 format produced by format_http_date.
std::optional<UnixSeconds> parse_http_date(std::string_view s);

/// Maps simulated time to an absolute date.
inline UnixSeconds sim_to_unix(sim::Time t) {
  return kSimulationEpoch + t / 1'000'000'000;
}

}  // namespace hsim::http
