// Incremental HTTP message parsers.
//
// Both parsers consume bytes as they arrive from a TCP stream and surface
// complete messages. Pipelining means several messages can be in the buffer
// at once; callers loop on next().
//
// Response framing depends on request context (a response to HEAD has
// headers describing a body that is not sent), so the ResponseParser keeps a
// queue of expected request methods that the client pushes as it issues
// requests — exactly what a pipelined client needs to do.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>

#include "buf/bytes.hpp"
#include "http/message.hpp"

namespace hsim::http {

enum class ParseError {
  kNone,
  kBadStartLine,
  kBadHeader,
  kBadVersion,
  kBadContentLength,
  kBadChunk,
};

class RequestParser {
 public:
  /// Appends raw bytes from the stream (copied into the input chain).
  void feed(std::span<const std::uint8_t> data);
  /// Appends arrived segment slices without copying.
  void feed(buf::Chain data);

  /// Returns the next complete request, if any.
  std::optional<Request> next();

  bool failed() const { return error_ != ParseError::kNone; }
  ParseError error() const { return error_; }

  /// Bytes buffered but not yet parsed into a message.
  std::size_t buffered() const { return buffer_.size(); }

 private:
  bool try_parse(Request& out);

  buf::Chain buffer_;
  // Resume point for the "\r\n\r\n" scan: everything before it has already
  // been searched, so incremental feeds never rescan old bytes.
  std::size_t header_scan_ = 0;
  ParseError error_ = ParseError::kNone;
};

class ResponseParser {
 public:
  /// Registers that a request with `method` was sent; responses are matched
  /// to this queue in FIFO order (HTTP/1.1 pipelining guarantees ordering).
  void push_request_context(Method method);

  void feed(std::span<const std::uint8_t> data);
  /// Appends arrived segment slices without copying; body bytes flow into
  /// the parsed Response as shared slices of these nodes.
  void feed(buf::Chain data);

  /// Signals connection close (end of a read-until-close HTTP/1.0 body).
  /// May complete a pending message.
  void on_connection_closed();

  std::optional<Response> next();

  bool failed() const { return error_ != ParseError::kNone; }
  ParseError error() const { return error_; }
  std::size_t buffered() const { return buffer_.size(); }

  /// True if the parser is mid-message (headers seen, body incomplete).
  bool mid_message() const { return in_body_; }

  /// The partially-received message (headers complete, body still growing),
  /// or nullptr. Lets a pipelining client scan HTML for embedded references
  /// while the document is still arriving.
  const Response* partial() const { return in_body_ ? &pending_ : nullptr; }

 private:
  enum class BodyMode { kNone, kContentLength, kChunked, kUntilClose };

  bool try_parse(Response& out);

  buf::Chain buffer_;
  std::size_t header_scan_ = 0;  // resume point for the "\r\n\r\n" scan
  std::deque<Method> request_methods_;
  ParseError error_ = ParseError::kNone;

  // In-progress message state (headers parsed, awaiting body bytes).
  bool in_body_ = false;
  Response pending_;
  BodyMode body_mode_ = BodyMode::kNone;
  std::size_t body_remaining_ = 0;
  bool connection_closed_ = false;

  // Chunked decoding state.
  enum class ChunkState { kSize, kData, kDataCrlf, kTrailer };
  ChunkState chunk_state_ = ChunkState::kSize;
  std::size_t chunk_remaining_ = 0;
};

/// Splits "Name: value" header lines; shared by both parsers.
/// Returns false on malformed input.
bool parse_header_line(std::string_view line, std::string& name,
                       std::string& value);

}  // namespace hsim::http
