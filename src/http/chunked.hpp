// Chunked transfer-coding encoder (RFC 2068 §3.6). Decoding lives in the
// ResponseParser, which must interleave it with message framing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hsim::http {

/// Encodes one chunk ("size CRLF data CRLF").
std::vector<std::uint8_t> encode_chunk(std::span<const std::uint8_t> data);

/// The terminating zero chunk + final CRLF.
std::vector<std::uint8_t> final_chunk();

/// Convenience: a whole body as a single chunk plus terminator.
std::vector<std::uint8_t> encode_chunked_body(
    std::span<const std::uint8_t> data, std::size_t chunk_size = 4096);

}  // namespace hsim::http
