// HTTP/1.0 and HTTP/1.1 message model: methods, versions, ordered headers
// with case-insensitive lookup, and wire serialization.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "buf/bytes.hpp"

namespace hsim::http {

enum class Version { kHttp10, kHttp11 };
std::string_view to_string(Version v);

enum class Method { kGet, kHead, kPost };
std::string_view to_string(Method m);
std::optional<Method> parse_method(std::string_view s);

/// Ordered header collection. HTTP header names are case-insensitive; order
/// is preserved for faithful byte counts on the wire.
class Headers {
 public:
  void add(std::string name, std::string value);
  /// Replaces an existing header (first occurrence) or adds.
  void set(std::string name, std::string value);
  void remove(std::string_view name);
  std::optional<std::string_view> get(std::string_view name) const;
  bool contains(std::string_view name) const { return get(name).has_value(); }

  /// True if the (comma-separated) value of `name` contains `token`,
  /// case-insensitively — e.g. has_token("Connection", "keep-alive").
  bool has_token(std::string_view name, std::string_view token) const;

  const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }
  std::size_t size() const { return items_.size(); }
  void clear() { items_.clear(); }

  /// Bytes these headers occupy on the wire (incl. per-line CRLF, excl. the
  /// blank line).
  std::size_t wire_size() const;

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// Case-insensitive ASCII comparison (header names, tokens).
bool iequals(std::string_view a, std::string_view b);

struct Request {
  Method method = Method::kGet;
  std::string target = "/";
  Version version = Version::kHttp11;
  Headers headers;
  std::vector<std::uint8_t> body;

  /// Serializes start line + headers + blank line + body.
  std::vector<std::uint8_t> serialize() const;
  std::size_t wire_size() const;
};

struct Response {
  Version version = Version::kHttp11;
  int status = 200;
  std::string reason = "OK";
  Headers headers;
  // Shared slices of the origin bytes (a static_site asset on the server,
  // arrived TCP segments on the client) — copying a Response never copies
  // its payload.
  buf::Chain body;

  std::vector<std::uint8_t> serialize() const;
  /// Wire form as head-bytes + shared body slices: serializing a response
  /// copies only the start line and headers, never the body.
  buf::Chain serialize_chain() const;
  std::size_t wire_size() const;

  /// True for statuses that never carry a body (1xx, 204, 304).
  bool status_forbids_body() const {
    return (status >= 100 && status < 200) || status == 204 || status == 304;
  }
};

std::string_view default_reason(int status);

}  // namespace hsim::http
