// Packet trace capture and analysis — the simulator's tcpdump.
//
// All of the paper's headline measurements (Pa, Bytes, %ov, packet trains,
// mean packet size) are computed from traces captured at the *client* side of
// the link, matching the paper's methodology ("the traces were taken on
// client side").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace hsim::net {

struct TraceRecord {
  sim::Time time = 0;
  IpAddr src = 0;
  IpAddr dst = 0;
  Port src_port = 0;
  Port dst_port = 0;
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint32_t payload_bytes = 0;

  /// Multi-hop capture (topo::Router taps): the router that recorded this
  /// packet, or -1 for a host-edge / single-link capture, plus the egress
  /// queue depth (packets already queued ahead of it) at enqueue time. A
  /// trace mixing hops records the same packet once per router it crosses.
  std::int32_t hop_router = -1;
  std::uint32_t hop_queue_depth = 0;

  bool has_hop() const { return hop_router >= 0; }
  std::size_t wire_size() const { return kIpTcpHeaderBytes + payload_bytes; }
};

/// Aggregate statistics over a trace, in the paper's units.
struct TraceSummary {
  std::uint64_t packets = 0;
  std::uint64_t wire_bytes = 0;     // payload + 40 B header per packet
  std::uint64_t payload_bytes = 0;
  std::uint64_t packets_client_to_server = 0;
  std::uint64_t packets_server_to_client = 0;
  double overhead_percent = 0.0;    // 100 * header bytes / wire bytes
  double mean_packet_size = 0.0;    // wire bytes / packets
  sim::Time first_packet = 0;
  sim::Time last_packet = 0;

  double elapsed_seconds() const {
    return sim::to_seconds(last_packet - first_packet);
  }
};

/// Well-known metric names the trace recorders publish when a registry is
/// installed (see obs/metrics.hpp). One measured trace per registry: two
/// traces feeding the same registry sum their counts.
namespace metric {
inline constexpr std::string_view kTracePackets = "trace.packets";
inline constexpr std::string_view kTraceWireBytes = "trace.wire_bytes";
inline constexpr std::string_view kTracePayloadBytes = "trace.payload_bytes";
inline constexpr std::string_view kTracePacketsC2s = "trace.packets_c2s";
inline constexpr std::string_view kTracePacketsS2c = "trace.packets_s2c";
inline constexpr std::string_view kTraceSyns = "trace.syn_packets";
inline constexpr std::string_view kTraceFirstPacketNs = "trace.first_packet_ns";
inline constexpr std::string_view kTraceLastPacketNs = "trace.last_packet_ns";
}  // namespace metric

/// The trace.* registry handles, resolved once against the registry installed
/// at recorder construction time (all-null when metrics are disabled).
struct TraceMetrics {
  obs::CounterHandle packets, wire_bytes, payload_bytes, c2s, s2c, syns;
  obs::GaugeHandle first_packet, last_packet;

  static TraceMetrics bind();
  void record(sim::Time time, const Packet& packet, bool to_server,
              bool first) const;
};

/// Rebuilds a TraceSummary from the trace.* metrics of a finished run — the
/// registry-backed path the table benches read (byte-identical to
/// PacketTrace::summarize over the same packets).
TraceSummary summary_from_metrics(const obs::Registry& registry);

class PacketTrace {
 public:
  /// Direction classification requires knowing which address is the client.
  explicit PacketTrace(IpAddr client_addr = 0) : client_addr_(client_addr) {}

  void set_client_addr(IpAddr addr) { client_addr_ = addr; }

  void record(sim::Time time, const Packet& packet);

  /// Records a packet observed inside the network at `router`'s egress queue
  /// (depth = packets ahead of it at enqueue). Unlike record(), this does NOT
  /// feed the trace.* registry metrics: a multi-hop trace sees the same
  /// packet several times, and the registry-backed summary must keep counting
  /// each packet once (at the measured link's tap).
  void record_hop(sim::Time time, const Packet& packet, std::int32_t router,
                  std::uint32_t queue_depth);

  void clear() { records_.clear(); }

  const std::vector<TraceRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  TraceSummary summarize() const;

  /// Packet-train lengths: the number of packets per TCP connection
  /// (identified by 4-tuple, SYN starts a new train). The paper observes that
  /// HTTP/1.0 trains rarely exceed 10 packets while pipelined HTTP/1.1 trains
  /// are far longer.
  std::vector<std::size_t> packet_trains() const;
  double mean_packet_train_length() const;

  /// Number of distinct TCP connections (SYNs from the client) in the trace.
  std::size_t connection_count() const;

  /// Emits a human-readable tcpdump-like listing (for debugging / examples).
  std::string to_text(std::size_t max_lines = 0) const;

  /// Emits "time sequence-number" pairs for one direction, xplot-style.
  std::string to_time_sequence(bool client_to_server) const;

  /// Data packets whose (connection, seq) was already seen carrying payload:
  /// the retransmissions a careful trace reader hunts for ("implementers...
  /// must be prepared to examine TCP dumps carefully").
  std::size_t retransmitted_data_packets() const;

  /// Wire bytes per `bucket` of simulated time for one direction — the
  /// throughput-over-time view used to locate stalls.
  std::vector<std::uint64_t> throughput_series(bool client_to_server,
                                               sim::Time bucket) const;

  /// The longest gap between consecutive packets (any direction): a direct
  /// stall detector (delayed ACKs, Nagle waits, RTO backoff all show here).
  sim::Time longest_quiet_gap() const;

 private:
  IpAddr client_addr_;
  std::vector<TraceRecord> records_;
  TraceMetrics metrics_ = TraceMetrics::bind();
};

/// Streaming trace summarizer for many-client workloads.
///
/// Accumulates the same aggregate TraceSummary a PacketTrace would compute,
/// but without storing per-packet records — a 1000-client run pushes millions
/// of packets through the bottleneck, and only the aggregate is wanted there.
/// Direction is classified against the *server* address (everything with
/// dst == server is client-to-server), which works for any number of clients.
class TraceSummarizer {
 public:
  explicit TraceSummarizer(IpAddr server_addr = 0)
      : server_addr_(server_addr) {}

  void record(sim::Time time, const Packet& packet);

  TraceSummary summarize() const;

  /// Client-initiated SYNs observed (connection churn on the wire).
  std::uint64_t syn_packets() const { return syn_packets_; }
  std::uint64_t packets() const { return summary_.packets; }

  /// Shard aggregation: fold another summarizer's counts into this one.
  /// Associative and commutative (asserted by metrics_property_test), so a
  /// partitioned workload can summarize per shard and merge in any order.
  void merge_from(const TraceSummarizer& other);

 private:
  IpAddr server_addr_;
  TraceSummary summary_;  // ratios filled in by summarize()
  std::uint64_t syn_packets_ = 0;
  TraceMetrics metrics_ = TraceMetrics::bind();
};

}  // namespace hsim::net
