#include "net/trace.hpp"

#include "net/trace_io.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <tuple>

namespace hsim::net {

namespace {
/// The paper's derived columns, computed one way for every summary producer
/// (PacketTrace, TraceSummarizer, summarize_records, summary_from_metrics) so
/// registry-backed numbers are byte-identical to the record-walking ones.
void fill_ratios(TraceSummary& s) {
  if (s.packets == 0) return;
  const std::uint64_t header_bytes = s.packets * kIpTcpHeaderBytes;
  s.overhead_percent = 100.0 * static_cast<double>(header_bytes) /
                       static_cast<double>(s.wire_bytes);
  s.mean_packet_size =
      static_cast<double>(s.wire_bytes) / static_cast<double>(s.packets);
}
}  // namespace

TraceMetrics TraceMetrics::bind() {
  TraceMetrics m;
  if (obs::registry() == nullptr) return m;
  m.packets = obs::counter_handle(metric::kTracePackets);
  m.wire_bytes = obs::counter_handle(metric::kTraceWireBytes);
  m.payload_bytes = obs::counter_handle(metric::kTracePayloadBytes);
  m.c2s = obs::counter_handle(metric::kTracePacketsC2s);
  m.s2c = obs::counter_handle(metric::kTracePacketsS2c);
  m.syns = obs::counter_handle(metric::kTraceSyns);
  m.first_packet = obs::gauge_handle(metric::kTraceFirstPacketNs);
  m.last_packet = obs::gauge_handle(metric::kTraceLastPacketNs);
  return m;
}

void TraceMetrics::record(sim::Time time, const Packet& packet, bool to_server,
                          bool first) const {
  packets.inc();
  wire_bytes.inc(packet.wire_size());
  payload_bytes.inc(packet.payload.size());
  (to_server ? c2s : s2c).inc();
  if (packet.tcp.has(flag::kSyn) && !packet.tcp.has(flag::kAck)) syns.inc();
  if (first) first_packet.set(time);
  last_packet.set(time);
}

TraceSummary summary_from_metrics(const obs::Registry& registry) {
  TraceSummary s;
  s.packets = registry.counter_value(metric::kTracePackets);
  s.wire_bytes = registry.counter_value(metric::kTraceWireBytes);
  s.payload_bytes = registry.counter_value(metric::kTracePayloadBytes);
  s.packets_client_to_server = registry.counter_value(metric::kTracePacketsC2s);
  s.packets_server_to_client = registry.counter_value(metric::kTracePacketsS2c);
  s.first_packet = registry.gauge_value(metric::kTraceFirstPacketNs);
  s.last_packet = registry.gauge_value(metric::kTraceLastPacketNs);
  fill_ratios(s);
  return s;
}

namespace {
TraceRecord make_record(sim::Time time, const Packet& packet) {
  TraceRecord r;
  r.time = time;
  r.src = packet.src;
  r.dst = packet.dst;
  r.src_port = packet.tcp.src_port;
  r.dst_port = packet.tcp.dst_port;
  r.flags = packet.tcp.flags;
  r.seq = packet.tcp.seq;
  r.ack = packet.tcp.ack;
  r.payload_bytes = static_cast<std::uint32_t>(packet.payload.size());
  return r;
}
}  // namespace

void PacketTrace::record(sim::Time time, const Packet& packet) {
  metrics_.record(time, packet, /*to_server=*/packet.src == client_addr_,
                  /*first=*/records_.empty());
  records_.push_back(make_record(time, packet));
}

void PacketTrace::record_hop(sim::Time time, const Packet& packet,
                             std::int32_t router, std::uint32_t queue_depth) {
  TraceRecord r = make_record(time, packet);
  r.hop_router = router;
  r.hop_queue_depth = queue_depth;
  records_.push_back(r);
}

TraceSummary PacketTrace::summarize() const {
  return summarize_records(records_, client_addr_);
}

TraceSummary summarize_records(const std::vector<TraceRecord>& records,
                               IpAddr client_addr) {
  TraceSummary s;
  if (records.empty()) return s;
  s.first_packet = records.front().time;
  s.last_packet = records.back().time;
  for (const TraceRecord& r : records) {
    ++s.packets;
    s.wire_bytes += r.wire_size();
    s.payload_bytes += r.payload_bytes;
    if (r.src == client_addr) {
      ++s.packets_client_to_server;
    } else {
      ++s.packets_server_to_client;
    }
    s.first_packet = std::min(s.first_packet, r.time);
    s.last_packet = std::max(s.last_packet, r.time);
  }
  fill_ratios(s);
  return s;
}

void TraceSummarizer::record(sim::Time time, const Packet& packet) {
  metrics_.record(time, packet, /*to_server=*/packet.dst == server_addr_,
                  /*first=*/summary_.packets == 0);
  if (summary_.packets == 0) summary_.first_packet = time;
  summary_.last_packet = std::max(summary_.last_packet, time);
  summary_.first_packet = std::min(summary_.first_packet, time);
  ++summary_.packets;
  summary_.wire_bytes += packet.wire_size();
  summary_.payload_bytes += packet.payload.size();
  if (packet.dst == server_addr_) {
    ++summary_.packets_client_to_server;
  } else {
    ++summary_.packets_server_to_client;
  }
  if (packet.tcp.has(flag::kSyn) && !packet.tcp.has(flag::kAck)) {
    ++syn_packets_;
  }
}

void TraceSummarizer::merge_from(const TraceSummarizer& other) {
  if (other.summary_.packets == 0) return;
  if (summary_.packets == 0) {
    summary_.first_packet = other.summary_.first_packet;
    summary_.last_packet = other.summary_.last_packet;
  } else {
    summary_.first_packet =
        std::min(summary_.first_packet, other.summary_.first_packet);
    summary_.last_packet =
        std::max(summary_.last_packet, other.summary_.last_packet);
  }
  summary_.packets += other.summary_.packets;
  summary_.wire_bytes += other.summary_.wire_bytes;
  summary_.payload_bytes += other.summary_.payload_bytes;
  summary_.packets_client_to_server += other.summary_.packets_client_to_server;
  summary_.packets_server_to_client += other.summary_.packets_server_to_client;
  syn_packets_ += other.syn_packets_;
}

TraceSummary TraceSummarizer::summarize() const {
  TraceSummary s = summary_;
  fill_ratios(s);
  return s;
}

namespace {
using ConnKey = std::tuple<IpAddr, Port, IpAddr, Port>;

ConnKey canonical_key(const TraceRecord& r) {
  // Order the two endpoints so both directions map to the same connection.
  if (std::tie(r.src, r.src_port) < std::tie(r.dst, r.dst_port)) {
    return {r.src, r.src_port, r.dst, r.dst_port};
  }
  return {r.dst, r.dst_port, r.src, r.src_port};
}
}  // namespace

std::vector<std::size_t> PacketTrace::packet_trains() const {
  std::map<ConnKey, std::size_t> index;  // connection -> slot in result
  std::vector<std::size_t> trains;
  for (const TraceRecord& r : records_) {
    const ConnKey key = canonical_key(r);
    auto it = index.find(key);
    // A client SYN (without ACK) starts a fresh train even if the 4-tuple was
    // seen before (port reuse).
    const bool is_initial_syn =
        (r.flags & flag::kSyn) != 0 && (r.flags & flag::kAck) == 0;
    if (it == index.end() || is_initial_syn) {
      trains.push_back(0);
      index[key] = trains.size() - 1;
      it = index.find(key);
    }
    ++trains[it->second];
  }
  return trains;
}

double PacketTrace::mean_packet_train_length() const {
  const std::vector<std::size_t> trains = packet_trains();
  if (trains.empty()) return 0.0;
  std::size_t total = 0;
  for (std::size_t t : trains) total += t;
  return static_cast<double>(total) / static_cast<double>(trains.size());
}

std::size_t PacketTrace::connection_count() const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if ((r.flags & flag::kSyn) != 0 && (r.flags & flag::kAck) == 0) ++n;
  }
  return n;
}

std::string PacketTrace::to_text(std::size_t max_lines) const {
  std::string out;
  char line[160];
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (max_lines != 0 && n >= max_lines) {
      out += "...\n";
      break;
    }
    std::snprintf(line, sizeof line,
                  "%10.6f  %u:%u > %u:%u  %-4s seq=%u ack=%u len=%u\n",
                  sim::to_seconds(r.time), r.src, r.src_port, r.dst, r.dst_port,
                  flags_to_string(r.flags).c_str(), r.seq, r.ack,
                  r.payload_bytes);
    out += line;
    ++n;
  }
  return out;
}

std::size_t PacketTrace::retransmitted_data_packets() const {
  std::map<std::tuple<IpAddr, Port, IpAddr, Port, std::uint32_t>, int> seen;
  std::size_t retransmits = 0;
  for (const TraceRecord& r : records_) {
    if (r.payload_bytes == 0) continue;
    const auto key =
        std::make_tuple(r.src, r.src_port, r.dst, r.dst_port, r.seq);
    if (seen[key]++ > 0) ++retransmits;
  }
  return retransmits;
}

std::vector<std::uint64_t> PacketTrace::throughput_series(
    bool client_to_server, sim::Time bucket) const {
  std::vector<std::uint64_t> series;
  if (bucket <= 0) return series;
  for (const TraceRecord& r : records_) {
    const bool from_client = r.src == client_addr_;
    if (from_client != client_to_server) continue;
    const std::size_t index = static_cast<std::size_t>(r.time / bucket);
    if (series.size() <= index) series.resize(index + 1, 0);
    series[index] += r.wire_size();
  }
  return series;
}

sim::Time PacketTrace::longest_quiet_gap() const {
  sim::Time longest = 0;
  for (std::size_t i = 1; i < records_.size(); ++i) {
    longest = std::max(longest, records_[i].time - records_[i - 1].time);
  }
  return longest;
}

std::string PacketTrace::to_time_sequence(bool client_to_server) const {
  std::string out;
  char line[64];
  for (const TraceRecord& r : records_) {
    const bool from_client = r.src == client_addr_;
    if (from_client != client_to_server) continue;
    if (r.payload_bytes == 0) continue;
    std::snprintf(line, sizeof line, "%.6f %u\n", sim::to_seconds(r.time),
                  r.seq + r.payload_bytes);
    out += line;
  }
  return out;
}

}  // namespace hsim::net
