// Point-to-point link with bandwidth, propagation delay and a drop-tail queue.
//
// A Link is unidirectional. It models a serialising transmitter: packets are
// clocked out at the configured bandwidth one at a time, then experience the
// propagation delay before being delivered to the sink. If more packets are
// enqueued than the transmit queue can hold, excess packets are dropped
// (drop-tail), which is what lets TCP's loss recovery paths be exercised.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hsim::net {

/// Receives packets at the far end of a link.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet packet) = 0;
};

struct LinkConfig {
  /// Bits per second; 0 means infinite (no serialisation delay).
  std::int64_t bandwidth_bps = 0;
  /// One-way propagation delay.
  sim::Time propagation_delay = 0;
  /// Maximum packets queued awaiting transmission (drop-tail beyond this).
  std::size_t queue_limit_packets = 128;
  /// Uniform multiplicative jitter applied to the propagation delay of each
  /// packet, e.g. 0.02 → each packet sees delay * U[0.98, 1.02]. Delivery
  /// order is preserved regardless of jitter.
  double delay_jitter = 0.0;
  /// Probability of randomly dropping a packet (fault injection for tests).
  double random_drop_probability = 0.0;
};

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;  // wire bytes (payload + 40 B header each)
  std::uint64_t packets_dropped_queue = 0;
  std::uint64_t packets_dropped_random = 0;

  std::uint64_t packets_dropped() const {
    return packets_dropped_queue + packets_dropped_random;
  }
};

class Link {
 public:
  /// An optional transformation of payload byte counts, used by the modem
  /// model: given the payload size about to be serialised, returns the number
  /// of bytes that actually cross the physical medium (e.g. after V.42bis
  /// dictionary compression). Header bytes are never compressed.
  using PayloadSizer = std::function<std::size_t(const Packet&)>;

  Link(sim::EventQueue& queue, LinkConfig config, sim::Rng rng);

  void set_sink(PacketSink* sink) { sink_ = sink; }

  /// Optional hook observing every packet accepted for transmission.
  using TapFn = std::function<void(const Packet&)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  void set_payload_sizer(PayloadSizer sizer) { sizer_ = std::move(sizer); }

  /// Enqueues a packet for transmission. May drop (queue overflow / random).
  void transmit(Packet packet);

  const LinkStats& stats() const { return stats_; }
  const LinkConfig& config() const { return config_; }

 private:
  void start_next_transmission();
  sim::Time serialisation_time(std::size_t wire_bytes) const;

  sim::EventQueue& queue_;
  LinkConfig config_;
  sim::Rng rng_;
  PacketSink* sink_ = nullptr;
  TapFn tap_;
  PayloadSizer sizer_;
  std::deque<Packet> tx_queue_;
  bool transmitting_ = false;
  /// Earliest time the next packet may be *delivered*, ensuring in-order
  /// delivery even with delay jitter.
  sim::Time last_delivery_time_ = 0;
  LinkStats stats_;
};

}  // namespace hsim::net
