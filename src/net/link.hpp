// Point-to-point link with bandwidth, propagation delay and a drop-tail queue.
//
// A Link is unidirectional. It models a serialising transmitter: packets are
// clocked out at the configured bandwidth one at a time, then experience the
// propagation delay before being delivered to the sink. If more packets are
// enqueued than the transmit queue can hold, excess packets are dropped
// (drop-tail), which is what lets TCP's loss recovery paths be exercised.
//
// Beyond the physical model the link is also the simulator's fault-injection
// point. All faults draw from the link's own deterministic Rng stream, so a
// fixed seed reproduces the exact same fault sequence:
//   - uniform Bernoulli drop (`random_drop_probability`);
//   - bursty loss via a two-state Gilbert-Elliott chain (`gilbert_elliott`);
//   - packet duplication (`duplicate_probability`);
//   - bounded reordering (`reorder_probability` + `reorder_extra_delay`);
//   - payload corruption, modelled as a checksum failure: the packet crosses
//     the wire (consuming bandwidth) but is discarded at the receiver;
//   - scheduled outage windows (`outages`): while the link is down, packets
//     reaching the transmitter are lost.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.hpp"
#include "netem/profile.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hsim::net {

/// Receives packets at the far end of a link.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet packet) = 0;
};

/// Two-state Markov (Gilbert-Elliott) loss model. The chain advances one step
/// per packet offered to the link; each state drops with its own probability.
/// Mean burst length (packets spent in the bad state per excursion) is
/// 1 / p_bad_to_good; the stationary bad-state probability is
/// p_good_to_bad / (p_good_to_bad + p_bad_to_good).
struct GilbertElliottConfig {
  bool enabled = false;
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_good = 0.0;
  double loss_bad = 1.0;

  double stationary_bad() const {
    const double denom = p_good_to_bad + p_bad_to_good;
    return denom > 0.0 ? p_good_to_bad / denom : 0.0;
  }
  /// Long-run expected packet loss rate of the chain.
  double expected_loss() const {
    const double pb = stationary_bad();
    return pb * loss_bad + (1.0 - pb) * loss_good;
  }
};

/// A scheduled interval during which the link is down: packets reaching the
/// transmitter in [down_at, up_at) are lost.
struct OutageWindow {
  sim::Time down_at = 0;
  sim::Time up_at = 0;
};

/// Builds a repeating down/up pattern ("link flaps"): `count` outages, the
/// first starting at `first_down`, each `down_for` long and separated by
/// `up_for` of healthy link.
std::vector<OutageWindow> make_flaps(sim::Time first_down, sim::Time down_for,
                                     sim::Time up_for, unsigned count);

/// Sorts `windows` by start time and validates the schedule: every window
/// must be non-empty (down_at < up_at) and no two windows may overlap.
/// Throws std::invalid_argument naming the offending window(s) otherwise.
/// Link's constructor applies this to LinkConfig::outages, so a malformed
/// outage schedule fails loudly at wiring time instead of silently double-
/// counting drops mid-run.
void normalize_outages(std::vector<OutageWindow>& windows);

struct LinkConfig {
  /// Bits per second; 0 means infinite (no serialisation delay).
  std::int64_t bandwidth_bps = 0;
  /// One-way propagation delay.
  sim::Time propagation_delay = 0;
  /// Maximum packets queued awaiting transmission (drop-tail beyond this).
  std::size_t queue_limit_packets = 128;
  /// Uniform multiplicative jitter applied to the propagation delay of each
  /// packet, e.g. 0.02 → each packet sees delay * U[0.98, 1.02]. Delivery
  /// order is preserved regardless of jitter.
  double delay_jitter = 0.0;
  /// Probability of randomly dropping a packet (fault injection for tests).
  double random_drop_probability = 0.0;

  // ---- Fault injection ----------------------------------------------------
  /// Bursty (correlated) loss; applied in addition to the uniform drop.
  GilbertElliottConfig gilbert_elliott;
  /// Probability a transmitted packet is delivered twice.
  double duplicate_probability = 0.0;
  /// Probability a packet is pulled out of the in-order delivery sequence and
  /// delivered late. Requires reorder_extra_delay > 0 to have any effect.
  double reorder_probability = 0.0;
  /// Extra delay a reordered packet experiences past its nominal delivery
  /// time. This bounds how far a packet can fall behind its successors.
  sim::Time reorder_extra_delay = 0;
  /// Probability a packet is corrupted in flight: it consumes wire time but
  /// the receiver discards it (failed checksum), so it is never delivered.
  double corrupt_probability = 0.0;
  /// Scheduled link outages (see OutageWindow). Sorted and validated at link
  /// construction by normalize_outages(): overlapping or empty windows are
  /// rejected with std::invalid_argument.
  std::vector<OutageWindow> outages;
  /// Optional identity for per-link registry metrics. When non-empty, the
  /// link publishes `net.link.<label>.*` counters (sent/drop partition by
  /// cause, duplication, reordering) alongside the aggregate `net.link.*`
  /// family, so soak oracles and trace tooling can attribute loss to an
  /// individual link. Empty (the default) keeps the registry untouched.
  std::string label;

  /// Optional time-varying behaviour (netem subsystem): a bandwidth/latency
  /// timeline replacing the static bandwidth_bps, plus the cellular radio
  /// state machine. Null (the default) keeps the legacy static pipe; a
  /// constant single-segment profile with the radio disabled is byte-exact
  /// with null. All fault machinery above (Gilbert-Elliott, outages,
  /// duplication, reordering, corruption, jitter) composes unchanged — the
  /// dynamics only reshape serialisation time and add per-segment latency.
  /// Shared: many per-client links typically point at one dynamics object.
  std::shared_ptr<const netem::LinkDynamics> dynamics;
};

/// Lower bound on (delivery time − transmit-hook instant) for a link built
/// from `cfg`: the propagation delay shrunk by the worst-case jitter draw,
/// plus — when dynamics are attached — the minimum extra latency over the
/// profile timeline. This is the sharded engine's lookahead contract: a
/// profile may only ADD delay (per-segment extra latency is validated >= 0,
/// serialisation and radio promotion only push delivery later), so the bound
/// stays valid no matter where in the timeline a packet lands. Usable before
/// any Link exists; Link::min_remote_latency() delegates here.
sim::Time config_min_latency(const LinkConfig& cfg);

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;  // wire bytes (payload + 40 B header each)
  std::uint64_t packets_dropped_queue = 0;
  std::uint64_t packets_dropped_random = 0;
  std::uint64_t packets_dropped_burst = 0;   // Gilbert-Elliott losses
  std::uint64_t packets_dropped_outage = 0;  // lost to a down link
  std::uint64_t packets_corrupted = 0;  // crossed the wire, dropped at receiver
  std::uint64_t packets_duplicated = 0;
  std::uint64_t packets_reordered = 0;
  /// Radio promotions charged (netem dynamics with the radio machine only):
  /// transmissions that began after the inactivity timeout and paid the
  /// promotion delay before their first bit.
  std::uint64_t radio_wakeups = 0;

  /// Packets that never reached the far end, for any reason.
  std::uint64_t packets_dropped() const {
    return packets_dropped_queue + packets_dropped_random +
           packets_dropped_burst + packets_dropped_outage + packets_corrupted;
  }
};

class Link {
 public:
  /// An optional transformation of payload byte counts, used by the modem
  /// model: given the payload size about to be serialised, returns the number
  /// of bytes that actually cross the physical medium (e.g. after V.42bis
  /// dictionary compression). Header bytes are never compressed.
  using PayloadSizer = std::function<std::size_t(const Packet&)>;

  Link(sim::EventQueue& queue, LinkConfig config, sim::Rng rng);

  void set_sink(PacketSink* sink) { sink_ = sink; }

  /// Optional hook observing every packet accepted for transmission.
  using TapFn = std::function<void(const Packet&)>;
  void set_tap(TapFn tap) { tap_ = std::move(tap); }

  void set_payload_sizer(PayloadSizer sizer) { sizer_ = std::move(sizer); }

  /// Enqueues a packet for transmission. May drop (queue overflow / random /
  /// burst loss).
  void transmit(Packet packet);

  /// True while the transmitter is clocking a packet onto the wire.
  bool transmitting() const { return transmitting_; }

  /// Optional hook fired whenever the transmitter goes idle (its internal
  /// queue drained). A topo::Router uses this as back-pressure: it keeps
  /// packets in its own queue discipline and feeds the link exactly one
  /// packet at a time, so the link's internal drop-tail queue never fills
  /// and all queueing policy lives in the discipline. The callback may call
  /// transmit() reentrantly.
  using IdleFn = std::function<void()>;
  void set_on_idle(IdleFn fn) { on_idle_ = std::move(fn); }

  /// Cross-shard delivery hook (sharded engine only). When set, the link's
  /// delivery events are not scheduled on its own queue; instead the hook
  /// receives the fully-computed arrival time (serialisation + jittered
  /// propagation + in-order clamp, fault draws already taken) and the packet,
  /// and is expected to post an event on the destination shard that hands
  /// the packet to this link's sink (or routes it by packet.dst). Everything
  /// else — queueing, drops, stats, rng draw order — stays on the source
  /// shard, so a remote link consumes its rng stream identically to a local
  /// one.
  using RemoteDeliver = std::function<void(sim::Time when, Packet packet)>;
  void set_remote_deliver(RemoteDeliver fn) { remote_ = std::move(fn); }

  /// Lower bound on (delivery time - the instant the hook is called) for any
  /// packet. The sharded engine's lookahead is the minimum of this over
  /// every cross-shard link; see config_min_latency() for the bound and for
  /// why netem dynamics cannot invalidate it.
  sim::Time min_remote_latency() const { return config_min_latency(config_); }

  PacketSink* sink() const { return sink_; }

  /// True if an outage window covers `at`.
  bool is_down(sim::Time at) const;

  /// Packets accepted but not yet clocked onto the wire. Conservation
  /// oracles need this: dequeues from an upstream discipline equal
  /// packets_sent + drops + this in-transmitter backlog at any instant.
  std::size_t queued_packets() const { return tx_queue_.size(); }

  const LinkStats& stats() const { return stats_; }
  const LinkConfig& config() const { return config_; }

 private:
  void start_next_transmission();
  sim::Time serialisation_time(std::size_t wire_bytes) const;
  /// Profile-driven transmitter-busy time (radio promotion + time-indexed
  /// serialisation); also reports the current segment's extra latency and
  /// refreshes the netem gauges. Only called when config_.dynamics is set.
  sim::Time dynamic_tx_time(std::size_t wire_bytes, sim::Time* extra_latency);
  bool loss_model_drops();

  sim::EventQueue& queue_;
  LinkConfig config_;
  sim::Rng rng_;
  PacketSink* sink_ = nullptr;
  TapFn tap_;
  IdleFn on_idle_;
  RemoteDeliver remote_;
  PayloadSizer sizer_;
  std::deque<Packet> tx_queue_;
  bool transmitting_ = false;
  bool ge_bad_state_ = false;  // Gilbert-Elliott chain state
  /// Radio machine (netem dynamics only): the instant the radio demotes back
  /// to IDLE if nothing else transmits. A transmission starting at or past
  /// it is the "first packet after idle" and is charged the promotion delay;
  /// packets queued behind it ride the same promotion. Starts at 0 = IDLE.
  sim::Time radio_active_until_ = 0;
  /// Wire bytes accepted but not yet clocked out; feeds the standing-queue
  /// delay gauge (bufferbloat observability).
  std::size_t queued_wire_bytes_ = 0;
  /// Earliest time the next packet may be *delivered*, ensuring in-order
  /// delivery even with delay jitter. Reordered packets are exempt.
  sim::Time last_delivery_time_ = 0;
  LinkStats stats_;

  /// Aggregate net.link.* registry metrics, summed over every link in the
  /// simulation (handles are null when no registry is installed).
  struct Metrics {
    obs::CounterHandle packets_sent, wire_bytes, dropped_queue, dropped_faults,
        duplicated, reordered;
    static Metrics bind();
  };
  Metrics metrics_ = Metrics::bind();

  /// Per-link net.link.<label>.* metrics, bound only when config_.label is
  /// set. Unlike the aggregate family this keeps the drop partition by
  /// cause, so a soak oracle can tell an outage loss from a burst loss on
  /// one specific link.
  struct LabelMetrics {
    obs::CounterHandle packets_sent, dropped_queue, dropped_random,
        dropped_burst, dropped_outage, corrupted, duplicated, reordered;
    static LabelMetrics bind(const std::string& label);
  };
  LabelMetrics label_metrics_;

  /// netem.* observability, bound only when the link carries non-trivial
  /// dynamics (a time-varying profile or the radio machine) — a flat
  /// identity profile leaves the registry exactly as the legacy link does.
  /// Counters exist as an aggregate family (`netem.radio_wakeups`,
  /// `netem.tx_under_1mbit_ns`) plus a per-link `netem.<label>.*` family
  /// when the link is labelled; the gauges (current bandwidth, radio state,
  /// standing queue delay) are per-link only.
  struct NetemMetrics {
    obs::CounterHandle radio_wakeups, tx_under_1mbit_ns;
    obs::CounterHandle label_radio_wakeups, label_tx_under_1mbit_ns;
    obs::GaugeHandle bandwidth_bps, radio_state, standing_queue_ns;
    static NetemMetrics bind(const std::string& label);
  };
  NetemMetrics netem_metrics_;
};

}  // namespace hsim::net
