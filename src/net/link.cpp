#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace hsim::net {

std::vector<OutageWindow> make_flaps(sim::Time first_down, sim::Time down_for,
                                     sim::Time up_for, unsigned count) {
  std::vector<OutageWindow> windows;
  windows.reserve(count);
  sim::Time at = first_down;
  for (unsigned i = 0; i < count; ++i) {
    windows.push_back({at, at + down_for});
    at += down_for + up_for;
  }
  return windows;
}

void normalize_outages(std::vector<OutageWindow>& windows) {
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.down_at < b.down_at;
            });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const OutageWindow& w = windows[i];
    if (w.up_at <= w.down_at) {
      throw std::invalid_argument(
          "LinkConfig::outages: empty outage window [" +
          std::to_string(w.down_at) + ", " + std::to_string(w.up_at) + ")");
    }
    if (i > 0 && w.down_at < windows[i - 1].up_at) {
      throw std::invalid_argument(
          "LinkConfig::outages: overlapping outage windows [" +
          std::to_string(windows[i - 1].down_at) + ", " +
          std::to_string(windows[i - 1].up_at) + ") and [" +
          std::to_string(w.down_at) + ", " + std::to_string(w.up_at) + ")");
    }
  }
}

sim::Time config_min_latency(const LinkConfig& cfg) {
  const double shrink = 1.0 - cfg.delay_jitter;
  sim::Time bound = static_cast<sim::Time>(
      static_cast<double>(cfg.propagation_delay) *
      (shrink > 0.0 ? shrink : 0.0));
  if (cfg.dynamics != nullptr) {
    bound += cfg.dynamics->profile.min_extra_latency();
  }
  return bound;
}

Link::Link(sim::EventQueue& queue, LinkConfig config, sim::Rng rng)
    : queue_(queue), config_(std::move(config)), rng_(rng) {
  normalize_outages(config_.outages);
  if (!config_.label.empty()) {
    label_metrics_ = LabelMetrics::bind(config_.label);
  }
  // A flat identity profile must leave the registry exactly as a static link
  // would, so netem metrics bind only for non-trivial dynamics.
  if (config_.dynamics != nullptr &&
      (!config_.dynamics->profile.constant_rate() ||
       config_.dynamics->radio.enabled)) {
    netem_metrics_ = NetemMetrics::bind(config_.label);
  }
}

Link::Metrics Link::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.packets_sent = obs::counter_handle("net.link.packets_sent");
  m.wire_bytes = obs::counter_handle("net.link.wire_bytes");
  m.dropped_queue = obs::counter_handle("net.link.dropped_queue");
  m.dropped_faults = obs::counter_handle("net.link.dropped_faults");
  m.duplicated = obs::counter_handle("net.link.duplicated");
  m.reordered = obs::counter_handle("net.link.reordered");
  return m;
}

Link::NetemMetrics Link::NetemMetrics::bind(const std::string& label) {
  NetemMetrics m;
  if (obs::registry() == nullptr) return m;
  m.radio_wakeups = obs::counter_handle("netem.radio_wakeups");
  m.tx_under_1mbit_ns = obs::counter_handle("netem.tx_under_1mbit_ns");
  if (!label.empty()) {
    const std::string base = "netem." + label + ".";
    m.label_radio_wakeups = obs::counter_handle(base + "radio_wakeups");
    m.label_tx_under_1mbit_ns = obs::counter_handle(base + "tx_under_1mbit_ns");
    m.bandwidth_bps = obs::gauge_handle(base + "bandwidth_bps");
    m.radio_state = obs::gauge_handle(base + "radio_state");
    m.standing_queue_ns = obs::gauge_handle(base + "standing_queue_ns");
  }
  return m;
}

Link::LabelMetrics Link::LabelMetrics::bind(const std::string& label) {
  LabelMetrics m;
  if (obs::registry() == nullptr) return m;
  const std::string base = "net.link." + label + ".";
  m.packets_sent = obs::counter_handle(base + "packets_sent");
  m.dropped_queue = obs::counter_handle(base + "dropped_queue");
  m.dropped_random = obs::counter_handle(base + "dropped_random");
  m.dropped_burst = obs::counter_handle(base + "dropped_burst");
  m.dropped_outage = obs::counter_handle(base + "dropped_outage");
  m.corrupted = obs::counter_handle(base + "corrupted");
  m.duplicated = obs::counter_handle(base + "duplicated");
  m.reordered = obs::counter_handle(base + "reordered");
  return m;
}

sim::Time Link::serialisation_time(std::size_t wire_bytes) const {
  if (config_.bandwidth_bps <= 0) return 0;
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  return sim::from_seconds(bits / static_cast<double>(config_.bandwidth_bps));
}

bool Link::is_down(sim::Time at) const {
  for (const OutageWindow& w : config_.outages) {
    if (at >= w.down_at && at < w.up_at) return true;
  }
  return false;
}

bool Link::loss_model_drops() {
  if (config_.random_drop_probability > 0.0 &&
      rng_.chance(config_.random_drop_probability)) {
    ++stats_.packets_dropped_random;
    metrics_.dropped_faults.inc();
    label_metrics_.dropped_random.inc();
    return true;
  }
  if (config_.gilbert_elliott.enabled) {
    const GilbertElliottConfig& ge = config_.gilbert_elliott;
    // Advance the chain one step per offered packet, then draw the loss.
    if (ge_bad_state_) {
      if (rng_.chance(ge.p_bad_to_good)) ge_bad_state_ = false;
    } else {
      if (rng_.chance(ge.p_good_to_bad)) ge_bad_state_ = true;
    }
    const double p = ge_bad_state_ ? ge.loss_bad : ge.loss_good;
    if (p > 0.0 && rng_.chance(p)) {
      ++stats_.packets_dropped_burst;
      metrics_.dropped_faults.inc();
      label_metrics_.dropped_burst.inc();
      return true;
    }
  }
  return false;
}

void Link::transmit(Packet packet) {
  if (loss_model_drops()) return;
  if (tx_queue_.size() >= config_.queue_limit_packets) {
    ++stats_.packets_dropped_queue;
    metrics_.dropped_queue.inc();
    label_metrics_.dropped_queue.inc();
    return;
  }
  queued_wire_bytes_ += packet.wire_size();
  tx_queue_.push_back(std::move(packet));
  if (!transmitting_) start_next_transmission();
}

sim::Time Link::dynamic_tx_time(std::size_t wire_bytes,
                                sim::Time* extra_latency) {
  const netem::LinkDynamics& dyn = *config_.dynamics;
  const sim::Time now = queue_.now();
  sim::Time wakeup = 0;
  if (dyn.radio.enabled) {
    if (now >= radio_active_until_) {
      // First packet after idle: it (and everything queued behind it, which
      // waits for the transmitter) is charged the promotion exactly once.
      wakeup = dyn.radio.promotion_delay;
      ++stats_.radio_wakeups;
      netem_metrics_.radio_wakeups.inc();
      netem_metrics_.label_radio_wakeups.inc();
      netem_metrics_.radio_state.set(
          static_cast<std::int64_t>(netem::RadioState::kPromoting));
    } else {
      netem_metrics_.radio_state.set(
          static_cast<std::int64_t>(netem::RadioState::kActive));
    }
  }
  // The first bit hits the wire after the promotion, so the timeline is
  // indexed there; the segment's extra latency rides the same instant.
  const sim::Time tx_start = now + wakeup;
  const sim::Time ser = dyn.profile.transmit_duration(tx_start, wire_bytes);
  *extra_latency = dyn.profile.extra_latency_at(tx_start);
  if (dyn.radio.enabled) {
    radio_active_until_ = now + wakeup + ser + dyn.radio.inactivity_timeout;
  }

  const std::int64_t bw = dyn.profile.bandwidth_at(tx_start);
  netem_metrics_.bandwidth_bps.set(bw);
  if (bw > 0 && bw < 1'000'000) {
    netem_metrics_.tx_under_1mbit_ns.inc(static_cast<std::uint64_t>(ser));
    netem_metrics_.label_tx_under_1mbit_ns.inc(static_cast<std::uint64_t>(ser));
  }
  if (bw > 0) {
    // Standing-queue delay: the drain time of the backlog behind this packet
    // at the current rate — the bufferbloat number.
    const double queued_bits = static_cast<double>(queued_wire_bytes_) * 8.0;
    netem_metrics_.standing_queue_ns.set(
        sim::from_seconds(queued_bits / static_cast<double>(bw)));
  }
  return wakeup + ser;
}

void Link::start_next_transmission() {
  // A down link loses everything reaching the transmitter; drain instantly so
  // the queue does not replay stale packets when the link comes back.
  while (!tx_queue_.empty() && is_down(queue_.now())) {
    queued_wire_bytes_ -= tx_queue_.front().wire_size();
    tx_queue_.pop_front();
    ++stats_.packets_dropped_outage;
    metrics_.dropped_faults.inc();
    label_metrics_.dropped_outage.inc();
  }
  if (tx_queue_.empty()) {
    transmitting_ = false;
    if (on_idle_) on_idle_();
    return;
  }
  transmitting_ = true;
  Packet packet = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  queued_wire_bytes_ -= packet.wire_size();

  if (tap_) tap_(packet);
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.wire_size();
  metrics_.packets_sent.inc();
  metrics_.wire_bytes.inc(packet.wire_size());
  label_metrics_.packets_sent.inc();

  // The modem model may shrink (or for incompressible data slightly grow) the
  // number of payload bytes that actually cross the physical medium.
  std::size_t physical_payload = packet.payload.size();
  if (sizer_) physical_payload = sizer_(packet);
  const std::size_t physical_wire = kIpTcpHeaderBytes + physical_payload;

  // Transmitter-busy time: static pipe arithmetic, or — with netem dynamics
  // attached — radio promotion plus time-indexed serialisation. The flat
  // identity profile takes the same from_seconds(bits/rate) path, adds zero
  // extra latency and draws nothing, so it stays byte-exact with the static
  // link. Fault draws below keep their legacy order in both cases.
  sim::Time tx_done;
  sim::Time extra_latency = 0;
  if (config_.dynamics != nullptr) {
    tx_done = dynamic_tx_time(physical_wire, &extra_latency);
  } else {
    tx_done = serialisation_time(physical_wire);
  }
  sim::Time prop = config_.propagation_delay;
  if (config_.delay_jitter > 0.0) {
    prop = static_cast<sim::Time>(static_cast<double>(prop) *
                                  rng_.jitter(config_.delay_jitter));
  }

  sim::Time delivery = queue_.now() + tx_done + prop + extra_latency;

  const bool corrupted = config_.corrupt_probability > 0.0 &&
                         rng_.chance(config_.corrupt_probability);
  const bool reordered = !corrupted && config_.reorder_extra_delay > 0 &&
                         config_.reorder_probability > 0.0 &&
                         rng_.chance(config_.reorder_probability);
  const bool duplicated = !corrupted && config_.duplicate_probability > 0.0 &&
                          rng_.chance(config_.duplicate_probability);

  if (reordered) {
    // Delivered late, outside the in-order sequence: successors may overtake
    // it, but by no more than reorder_extra_delay.
    delivery += config_.reorder_extra_delay;
    ++stats_.packets_reordered;
    metrics_.reordered.inc();
    label_metrics_.reordered.inc();
  } else {
    // Links never reorder on their own: a jittered packet may not overtake
    // its predecessor.
    delivery = std::max(delivery, last_delivery_time_);
    last_delivery_time_ = delivery;
  }

  queue_.schedule_in(tx_done, [this] { start_next_transmission(); });

  if (corrupted) {
    // The bytes crossed the wire but fail the receiver's checksum.
    queue_.schedule_at(delivery, [this] {
      ++stats_.packets_corrupted;
      metrics_.dropped_faults.inc();
      label_metrics_.corrupted.inc();
    });
    return;
  }
  if (duplicated) {
    ++stats_.packets_duplicated;
    metrics_.duplicated.inc();
    label_metrics_.duplicated.inc();
    if (remote_) {
      remote_(delivery, packet);
    } else {
      queue_.schedule_at(delivery, [this, p = packet]() mutable {
        if (sink_ != nullptr) sink_->deliver(std::move(p));
      });
    }
  }
  if (remote_) {
    remote_(delivery, std::move(packet));
    return;
  }
  queue_.schedule_at(delivery, [this, p = std::move(packet)]() mutable {
    if (sink_ != nullptr) sink_->deliver(std::move(p));
  });
}

std::string flags_to_string(std::uint8_t flags) {
  std::string s;
  if (flags & flag::kSyn) s += 'S';
  if (flags & flag::kFin) s += 'F';
  if (flags & flag::kRst) s += 'R';
  if (flags & flag::kPsh) s += 'P';
  if (flags & flag::kAck) s += 'A';
  if (s.empty()) s.push_back('.');
  return s;
}

}  // namespace hsim::net
