#include "net/link.hpp"

#include <algorithm>
#include <utility>

namespace hsim::net {

Link::Link(sim::EventQueue& queue, LinkConfig config, sim::Rng rng)
    : queue_(queue), config_(config), rng_(rng) {}

sim::Time Link::serialisation_time(std::size_t wire_bytes) const {
  if (config_.bandwidth_bps <= 0) return 0;
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  return sim::from_seconds(bits / static_cast<double>(config_.bandwidth_bps));
}

void Link::transmit(Packet packet) {
  if (config_.random_drop_probability > 0.0 &&
      rng_.chance(config_.random_drop_probability)) {
    ++stats_.packets_dropped_random;
    return;
  }
  if (tx_queue_.size() >= config_.queue_limit_packets) {
    ++stats_.packets_dropped_queue;
    return;
  }
  tx_queue_.push_back(std::move(packet));
  if (!transmitting_) start_next_transmission();
}

void Link::start_next_transmission() {
  if (tx_queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  Packet packet = std::move(tx_queue_.front());
  tx_queue_.pop_front();

  if (tap_) tap_(packet);
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.wire_size();

  // The modem model may shrink (or for incompressible data slightly grow) the
  // number of payload bytes that actually cross the physical medium.
  std::size_t physical_payload = packet.payload.size();
  if (sizer_) physical_payload = sizer_(packet);
  const std::size_t physical_wire = kIpTcpHeaderBytes + physical_payload;

  const sim::Time tx_done = serialisation_time(physical_wire);
  sim::Time prop = config_.propagation_delay;
  if (config_.delay_jitter > 0.0) {
    prop = static_cast<sim::Time>(static_cast<double>(prop) *
                                  rng_.jitter(config_.delay_jitter));
  }

  sim::Time delivery = queue_.now() + tx_done + prop;
  // Links never reorder: a jittered packet may not overtake its predecessor.
  delivery = std::max(delivery, last_delivery_time_);
  last_delivery_time_ = delivery;

  queue_.schedule_in(tx_done, [this] { start_next_transmission(); });
  queue_.schedule_at(delivery, [this, p = std::move(packet)]() mutable {
    if (sink_ != nullptr) sink_->deliver(std::move(p));
  });
}

std::string flags_to_string(std::uint8_t flags) {
  std::string s;
  if (flags & flag::kSyn) s += 'S';
  if (flags & flag::kFin) s += 'F';
  if (flags & flag::kRst) s += 'R';
  if (flags & flag::kPsh) s += 'P';
  if (flags & flag::kAck) s += 'A';
  if (s.empty()) s.push_back('.');
  return s;
}

}  // namespace hsim::net
