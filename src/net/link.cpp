#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace hsim::net {

std::vector<OutageWindow> make_flaps(sim::Time first_down, sim::Time down_for,
                                     sim::Time up_for, unsigned count) {
  std::vector<OutageWindow> windows;
  windows.reserve(count);
  sim::Time at = first_down;
  for (unsigned i = 0; i < count; ++i) {
    windows.push_back({at, at + down_for});
    at += down_for + up_for;
  }
  return windows;
}

void normalize_outages(std::vector<OutageWindow>& windows) {
  std::sort(windows.begin(), windows.end(),
            [](const OutageWindow& a, const OutageWindow& b) {
              return a.down_at < b.down_at;
            });
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const OutageWindow& w = windows[i];
    if (w.up_at <= w.down_at) {
      throw std::invalid_argument(
          "LinkConfig::outages: empty outage window [" +
          std::to_string(w.down_at) + ", " + std::to_string(w.up_at) + ")");
    }
    if (i > 0 && w.down_at < windows[i - 1].up_at) {
      throw std::invalid_argument(
          "LinkConfig::outages: overlapping outage windows [" +
          std::to_string(windows[i - 1].down_at) + ", " +
          std::to_string(windows[i - 1].up_at) + ") and [" +
          std::to_string(w.down_at) + ", " + std::to_string(w.up_at) + ")");
    }
  }
}

Link::Link(sim::EventQueue& queue, LinkConfig config, sim::Rng rng)
    : queue_(queue), config_(std::move(config)), rng_(rng) {
  normalize_outages(config_.outages);
  if (!config_.label.empty()) {
    label_metrics_ = LabelMetrics::bind(config_.label);
  }
}

Link::Metrics Link::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.packets_sent = obs::counter_handle("net.link.packets_sent");
  m.wire_bytes = obs::counter_handle("net.link.wire_bytes");
  m.dropped_queue = obs::counter_handle("net.link.dropped_queue");
  m.dropped_faults = obs::counter_handle("net.link.dropped_faults");
  m.duplicated = obs::counter_handle("net.link.duplicated");
  m.reordered = obs::counter_handle("net.link.reordered");
  return m;
}

Link::LabelMetrics Link::LabelMetrics::bind(const std::string& label) {
  LabelMetrics m;
  if (obs::registry() == nullptr) return m;
  const std::string base = "net.link." + label + ".";
  m.packets_sent = obs::counter_handle(base + "packets_sent");
  m.dropped_queue = obs::counter_handle(base + "dropped_queue");
  m.dropped_random = obs::counter_handle(base + "dropped_random");
  m.dropped_burst = obs::counter_handle(base + "dropped_burst");
  m.dropped_outage = obs::counter_handle(base + "dropped_outage");
  m.corrupted = obs::counter_handle(base + "corrupted");
  m.duplicated = obs::counter_handle(base + "duplicated");
  m.reordered = obs::counter_handle(base + "reordered");
  return m;
}

sim::Time Link::serialisation_time(std::size_t wire_bytes) const {
  if (config_.bandwidth_bps <= 0) return 0;
  const double bits = static_cast<double>(wire_bytes) * 8.0;
  return sim::from_seconds(bits / static_cast<double>(config_.bandwidth_bps));
}

bool Link::is_down(sim::Time at) const {
  for (const OutageWindow& w : config_.outages) {
    if (at >= w.down_at && at < w.up_at) return true;
  }
  return false;
}

bool Link::loss_model_drops() {
  if (config_.random_drop_probability > 0.0 &&
      rng_.chance(config_.random_drop_probability)) {
    ++stats_.packets_dropped_random;
    metrics_.dropped_faults.inc();
    label_metrics_.dropped_random.inc();
    return true;
  }
  if (config_.gilbert_elliott.enabled) {
    const GilbertElliottConfig& ge = config_.gilbert_elliott;
    // Advance the chain one step per offered packet, then draw the loss.
    if (ge_bad_state_) {
      if (rng_.chance(ge.p_bad_to_good)) ge_bad_state_ = false;
    } else {
      if (rng_.chance(ge.p_good_to_bad)) ge_bad_state_ = true;
    }
    const double p = ge_bad_state_ ? ge.loss_bad : ge.loss_good;
    if (p > 0.0 && rng_.chance(p)) {
      ++stats_.packets_dropped_burst;
      metrics_.dropped_faults.inc();
      label_metrics_.dropped_burst.inc();
      return true;
    }
  }
  return false;
}

void Link::transmit(Packet packet) {
  if (loss_model_drops()) return;
  if (tx_queue_.size() >= config_.queue_limit_packets) {
    ++stats_.packets_dropped_queue;
    metrics_.dropped_queue.inc();
    label_metrics_.dropped_queue.inc();
    return;
  }
  tx_queue_.push_back(std::move(packet));
  if (!transmitting_) start_next_transmission();
}

void Link::start_next_transmission() {
  // A down link loses everything reaching the transmitter; drain instantly so
  // the queue does not replay stale packets when the link comes back.
  while (!tx_queue_.empty() && is_down(queue_.now())) {
    tx_queue_.pop_front();
    ++stats_.packets_dropped_outage;
    metrics_.dropped_faults.inc();
    label_metrics_.dropped_outage.inc();
  }
  if (tx_queue_.empty()) {
    transmitting_ = false;
    if (on_idle_) on_idle_();
    return;
  }
  transmitting_ = true;
  Packet packet = std::move(tx_queue_.front());
  tx_queue_.pop_front();

  if (tap_) tap_(packet);
  ++stats_.packets_sent;
  stats_.bytes_sent += packet.wire_size();
  metrics_.packets_sent.inc();
  metrics_.wire_bytes.inc(packet.wire_size());
  label_metrics_.packets_sent.inc();

  // The modem model may shrink (or for incompressible data slightly grow) the
  // number of payload bytes that actually cross the physical medium.
  std::size_t physical_payload = packet.payload.size();
  if (sizer_) physical_payload = sizer_(packet);
  const std::size_t physical_wire = kIpTcpHeaderBytes + physical_payload;

  const sim::Time tx_done = serialisation_time(physical_wire);
  sim::Time prop = config_.propagation_delay;
  if (config_.delay_jitter > 0.0) {
    prop = static_cast<sim::Time>(static_cast<double>(prop) *
                                  rng_.jitter(config_.delay_jitter));
  }

  sim::Time delivery = queue_.now() + tx_done + prop;

  const bool corrupted = config_.corrupt_probability > 0.0 &&
                         rng_.chance(config_.corrupt_probability);
  const bool reordered = !corrupted && config_.reorder_extra_delay > 0 &&
                         config_.reorder_probability > 0.0 &&
                         rng_.chance(config_.reorder_probability);
  const bool duplicated = !corrupted && config_.duplicate_probability > 0.0 &&
                          rng_.chance(config_.duplicate_probability);

  if (reordered) {
    // Delivered late, outside the in-order sequence: successors may overtake
    // it, but by no more than reorder_extra_delay.
    delivery += config_.reorder_extra_delay;
    ++stats_.packets_reordered;
    metrics_.reordered.inc();
    label_metrics_.reordered.inc();
  } else {
    // Links never reorder on their own: a jittered packet may not overtake
    // its predecessor.
    delivery = std::max(delivery, last_delivery_time_);
    last_delivery_time_ = delivery;
  }

  queue_.schedule_in(tx_done, [this] { start_next_transmission(); });

  if (corrupted) {
    // The bytes crossed the wire but fail the receiver's checksum.
    queue_.schedule_at(delivery, [this] {
      ++stats_.packets_corrupted;
      metrics_.dropped_faults.inc();
      label_metrics_.corrupted.inc();
    });
    return;
  }
  if (duplicated) {
    ++stats_.packets_duplicated;
    metrics_.duplicated.inc();
    label_metrics_.duplicated.inc();
    if (remote_) {
      remote_(delivery, packet);
    } else {
      queue_.schedule_at(delivery, [this, p = packet]() mutable {
        if (sink_ != nullptr) sink_->deliver(std::move(p));
      });
    }
  }
  if (remote_) {
    remote_(delivery, std::move(packet));
    return;
  }
  queue_.schedule_at(delivery, [this, p = std::move(packet)]() mutable {
    if (sink_ != nullptr) sink_->deliver(std::move(p));
  });
}

std::string flags_to_string(std::uint8_t flags) {
  std::string s;
  if (flags & flag::kSyn) s += 'S';
  if (flags & flag::kFin) s += 'F';
  if (flags & flag::kRst) s += 'R';
  if (flags & flag::kPsh) s += 'P';
  if (flags & flag::kAck) s += 'A';
  if (s.empty()) s.push_back('.');
  return s;
}

}  // namespace hsim::net
