// Wire-level packet model.
//
// The simulator carries real payload bytes end to end (HTTP messages flow
// through TCP segments), but models IP/TCP headers abstractly: each packet
// costs a fixed 40 bytes of header on the wire (20 IP + 20 TCP, no options),
// which is exactly the overhead definition the paper uses for its "%ov"
// column.
#pragma once

#include <cstdint>
#include <string>

#include "buf/bytes.hpp"

namespace hsim::net {

/// Host address. The simulator only needs distinct endpoint identities.
using IpAddr = std::uint32_t;

/// TCP port number.
using Port = std::uint16_t;

/// Combined IP (20 B) + TCP (20 B) header cost per packet on the wire.
inline constexpr std::size_t kIpTcpHeaderBytes = 40;

/// TCP flag bits.
namespace flag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace flag

struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;  // receive window advertisement, in bytes

  bool has(std::uint8_t f) const { return (flags & f) != 0; }
};

struct Packet {
  IpAddr src = 0;
  IpAddr dst = 0;
  TcpHeader tcp;
  // Immutable shared slice: queueing, duplication-fault copies and taps all
  // alias the sender's buffer instead of deep-copying the bytes.
  buf::Bytes payload;

  /// Total bytes this packet occupies on the wire.
  std::size_t wire_size() const { return kIpTcpHeaderBytes + payload.size(); }
};

/// Renders flags like "S", "SA", "FA", "R" for traces and test diagnostics.
std::string flags_to_string(std::uint8_t flags);

}  // namespace hsim::net
