// Pcap-style trace export: a stable binary format plus a canonical
// tcpdump-like text format for captured packet traces, with a structural
// differ. The golden-trace regression suite and the hsim-trace CLI are built
// on these three pieces:
//
//   - text:    one versioned header line, then one line per packet. The
//              rendering is byte-stable for a given record sequence, so two
//              same-seed runs produce identical files and goldens can be
//              diffed byte-for-byte.
//   - binary:  magic "HSTRC1\n" + u32 record count + fixed 34-byte
//              little-endian records. Stable across platforms.
//   - diff:    record-by-record comparison with a readable report of the
//              first divergence (what a failing golden test prints).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/trace.hpp"

namespace hsim::net {

inline constexpr std::string_view kTraceTextHeader = "# hsim-trace v1";
inline constexpr std::string_view kTraceBinaryMagic = "HSTRC1\n";

/// Canonical one-line rendering of a single record (no trailing newline).
std::string format_trace_record(const TraceRecord& r);

/// Canonical text export: header line + one line per record.
std::string trace_to_text(const std::vector<TraceRecord>& records);

/// Stable binary export.
std::vector<std::uint8_t> trace_to_binary(const std::vector<TraceRecord>& records);

/// Parses the binary format. Returns false (and sets *error) on a malformed
/// or truncated input.
bool trace_from_binary(const std::vector<std::uint8_t>& data,
                       std::vector<TraceRecord>* out, std::string* error);

/// Parses the canonical text format (header + record lines). Lines beginning
/// with '#' are ignored beyond the version check.
bool trace_from_text(const std::string& text, std::vector<TraceRecord>* out,
                     std::string* error);

struct TraceDiff {
  bool identical = true;
  std::size_t records_a = 0;
  std::size_t records_b = 0;
  std::size_t differing = 0;     // mismatched positions (incl. length delta)
  std::size_t first_diff = 0;    // index of the first divergence
  std::string report;            // human-readable summary of the divergences
};

/// Structural record-by-record diff; `max_report_lines` bounds the report.
TraceDiff diff_traces(const std::vector<TraceRecord>& a,
                      const std::vector<TraceRecord>& b,
                      std::size_t max_report_lines = 16);

/// Aggregate summary over raw records, classifying direction against
/// `client_addr` (the same computation PacketTrace::summarize performs).
TraceSummary summarize_records(const std::vector<TraceRecord>& records,
                               IpAddr client_addr);

// ---- File helpers (used by hsim-trace and the golden suite) ---------------

/// Writes `data` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& data);
bool write_file(const std::string& path, const std::vector<std::uint8_t>& data);

/// Reads a whole file; returns false if unreadable.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out);

/// Loads a trace file in either format (sniffs the magic / header).
bool load_trace_file(const std::string& path, std::vector<TraceRecord>* out,
                     std::string* error);

}  // namespace hsim::net
