// Pcap-style trace export: a stable binary format plus a canonical
// tcpdump-like text format for captured packet traces, with a structural
// differ. The golden-trace regression suite and the hsim-trace CLI are built
// on these three pieces:
//
//   - text:    one versioned header line, then one line per packet. The
//              rendering is byte-stable for a given record sequence, so two
//              same-seed runs produce identical files and goldens can be
//              diffed byte-for-byte. Traces carrying multi-hop information
//              (topo::Router captures) use the v2 header and append a
//              per-hop column (`hop=<router>:<queue depth>`, or `hop=-` for
//              host-edge records); hopless traces keep the v1 rendering
//              byte-identical to what pre-topology builds produced.
//   - binary:  magic "HSTRC1\n" + u32 record count + fixed 34-byte
//              little-endian records; multi-hop traces use "HSTRC2\n" with
//              42-byte records (34 + i32 router + u32 queue depth). Both
//              stable across platforms; readers accept either.
//   - diff:    record-by-record comparison with a readable report of the
//              first divergence (what a failing golden test prints).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/trace.hpp"

namespace hsim::net {

inline constexpr std::string_view kTraceTextHeader = "# hsim-trace v1";
inline constexpr std::string_view kTraceTextHeaderV2 = "# hsim-trace v2";
inline constexpr std::string_view kTraceBinaryMagic = "HSTRC1\n";
inline constexpr std::string_view kTraceBinaryMagicV2 = "HSTRC2\n";

/// True if any record carries multi-hop (router) information, which selects
/// the v2 file formats.
bool trace_has_hops(const std::vector<TraceRecord>& records);

/// Canonical one-line rendering of a single record (no trailing newline).
/// `with_hop` appends the v2 hop column; v1 files never render it.
std::string format_trace_record(const TraceRecord& r, bool with_hop = false);

/// Canonical text export: header line + one line per record.
std::string trace_to_text(const std::vector<TraceRecord>& records);

/// Stable binary export.
std::vector<std::uint8_t> trace_to_binary(const std::vector<TraceRecord>& records);

/// Parses the binary format. Returns false (and sets *error) on a malformed
/// or truncated input.
bool trace_from_binary(const std::vector<std::uint8_t>& data,
                       std::vector<TraceRecord>* out, std::string* error);

/// Parses the canonical text format (header + record lines). Lines beginning
/// with '#' are ignored beyond the version check.
bool trace_from_text(const std::string& text, std::vector<TraceRecord>* out,
                     std::string* error);

struct TraceDiff {
  bool identical = true;
  std::size_t records_a = 0;
  std::size_t records_b = 0;
  std::size_t differing = 0;     // mismatched positions (incl. length delta)
  std::size_t first_diff = 0;    // index of the first divergence
  std::string report;            // human-readable summary of the divergences
};

/// Structural record-by-record diff; `max_report_lines` bounds the report.
TraceDiff diff_traces(const std::vector<TraceRecord>& a,
                      const std::vector<TraceRecord>& b,
                      std::size_t max_report_lines = 16);

/// Aggregate summary over raw records, classifying direction against
/// `client_addr` (the same computation PacketTrace::summarize performs).
TraceSummary summarize_records(const std::vector<TraceRecord>& records,
                               IpAddr client_addr);

/// Per-hop aggregate for multi-hop traces. A packet crossing two routers is
/// recorded at each, so a flat summary would double-count it; grouping by
/// the recording hop keeps each group a faithful single-observation-point
/// summary, plus the queue-depth statistics only routers can observe.
struct HopSummary {
  std::int32_t hop_router = -1;  // -1: host-edge records (no router)
  TraceSummary summary;
  double mean_queue_depth = 0.0;   // over this hop's records, in packets
  std::uint32_t max_queue_depth = 0;
};

/// Groups records by recording hop (ascending router id; host-edge records,
/// if any, first) and summarizes each group independently.
std::vector<HopSummary> summarize_by_hop(const std::vector<TraceRecord>& records,
                                         IpAddr client_addr);

// ---- File helpers (used by hsim-trace and the golden suite) ---------------

/// Writes `data` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, const std::string& data);
bool write_file(const std::string& path, const std::vector<std::uint8_t>& data);

/// Reads a whole file; returns false if unreadable.
bool read_file(const std::string& path, std::vector<std::uint8_t>* out);

/// Loads a trace file in either format (sniffs the magic / header).
bool load_trace_file(const std::string& path, std::vector<TraceRecord>* out,
                     std::string* error);

}  // namespace hsim::net
