// A duplex channel: two links joining two endpoints, plus a client-side trace.
#pragma once

#include <memory>

#include "net/link.hpp"
#include "net/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace hsim::net {

/// Per-direction configuration; most channels are symmetric but dialup PPP
/// commonly has asymmetric behaviour worth modelling.
struct ChannelConfig {
  LinkConfig a_to_b;
  LinkConfig b_to_a;

  /// Builds a symmetric channel whose one-way delay is rtt/2 per direction.
  static ChannelConfig symmetric(std::int64_t bandwidth_bps, sim::Time rtt,
                                 std::size_t queue_limit = 128,
                                 double delay_jitter = 0.0) {
    LinkConfig one;
    one.bandwidth_bps = bandwidth_bps;
    one.propagation_delay = rtt / 2;
    one.queue_limit_packets = queue_limit;
    one.delay_jitter = delay_jitter;
    return ChannelConfig{one, one};
  }
};

/// Joins endpoint A (by convention the client) to endpoint B (the server).
/// Packets transmitted on either side are recorded in a shared PacketTrace,
/// stamped at the moment they enter the wire on the client side of the path —
/// mirroring a tcpdump running on the client machine.
class Channel {
 public:
  Channel(sim::EventQueue& queue, const ChannelConfig& config, sim::Rng rng)
      : a_to_b_(queue, config.a_to_b, rng.fork()),
        b_to_a_(queue, config.b_to_a, rng.fork()) {
    a_to_b_.set_tap([this, &queue](const Packet& p) {
      if (trace_ != nullptr) trace_->record(queue.now(), p);
    });
    b_to_a_.set_tap([this, &queue](const Packet& p) {
      if (trace_ != nullptr) trace_->record(queue.now(), p);
    });
  }

  void attach_a(PacketSink* a) { b_to_a_.set_sink(a); }
  void attach_b(PacketSink* b) { a_to_b_.set_sink(b); }

  /// The link an endpoint must transmit on.
  Link& uplink_from_a() { return a_to_b_; }
  Link& uplink_from_b() { return b_to_a_; }

  void set_trace(PacketTrace* trace) { trace_ = trace; }

 private:
  Link a_to_b_;
  Link b_to_a_;
  PacketTrace* trace_ = nullptr;
};

}  // namespace hsim::net
