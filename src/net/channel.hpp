// A duplex channel: two links joining two endpoints, plus a client-side trace.
#pragma once

#include <memory>
#include <string>

#include "net/link.hpp"
#include "netem/profile.hpp"
#include "net/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace hsim::net {

/// Per-direction configuration; most channels are symmetric but dialup PPP
/// commonly has asymmetric behaviour worth modelling.
struct ChannelConfig {
  LinkConfig a_to_b;
  LinkConfig b_to_a;

  /// Builds a symmetric channel whose one-way delay is rtt/2 per direction.
  static ChannelConfig symmetric(std::int64_t bandwidth_bps, sim::Time rtt,
                                 std::size_t queue_limit = 128,
                                 double delay_jitter = 0.0) {
    LinkConfig one;
    one.bandwidth_bps = bandwidth_bps;
    one.propagation_delay = rtt / 2;
    one.queue_limit_packets = queue_limit;
    one.delay_jitter = delay_jitter;
    return ChannelConfig{one, one};
  }
};

/// Overlays a netem path profile on a duplex channel config: the profile's
/// `up` timeline and the radio machine ride the a→b direction (by convention
/// the client/device side), `down` rides b→a, and a positive queue override
/// deepens both drop-tail buffers (bufferbloat). Applied AFTER any
/// mutate_channel fault hook, so Gilbert-Elliott / outage / reordering
/// regimes compose unchanged. When `label_prefix` is non-null, unlabelled
/// links get "<prefix>.up"/"<prefix>.down" so the per-link netem.* gauges
/// bind; null leaves labels alone (e.g. many-client stars, where the
/// aggregate netem counters carry the story).
inline void apply_path_profile(const netem::PathProfile& profile,
                               ChannelConfig& cfg,
                               const char* label_prefix = nullptr) {
  auto up = std::make_shared<netem::LinkDynamics>();
  up->profile = profile.up;
  up->radio = profile.radio;
  auto down = std::make_shared<netem::LinkDynamics>();
  down->profile = profile.down;  // the radio is charged on the uplink only
  cfg.a_to_b.dynamics = std::move(up);
  cfg.b_to_a.dynamics = std::move(down);
  if (profile.queue_limit_packets > 0) {
    cfg.a_to_b.queue_limit_packets = profile.queue_limit_packets;
    cfg.b_to_a.queue_limit_packets = profile.queue_limit_packets;
  }
  if (label_prefix != nullptr) {
    const std::string prefix(label_prefix);
    if (cfg.a_to_b.label.empty()) cfg.a_to_b.label = prefix + ".up";
    if (cfg.b_to_a.label.empty()) cfg.b_to_a.label = prefix + ".down";
  }
}

/// Joins endpoint A (by convention the client) to endpoint B (the server).
/// Packets transmitted on either side are recorded in a shared PacketTrace,
/// stamped at the moment they enter the wire on the client side of the path —
/// mirroring a tcpdump running on the client machine.
class Channel {
 public:
  Channel(sim::EventQueue& queue, const ChannelConfig& config, sim::Rng rng)
      : a_to_b_(queue, config.a_to_b, rng.fork()),
        b_to_a_(queue, config.b_to_a, rng.fork()) {
    a_to_b_.set_tap([this, &queue](const Packet& p) {
      if (trace_ != nullptr) trace_->record(queue.now(), p);
    });
    b_to_a_.set_tap([this, &queue](const Packet& p) {
      if (trace_ != nullptr) trace_->record(queue.now(), p);
    });
  }

  void attach_a(PacketSink* a) { b_to_a_.set_sink(a); }
  void attach_b(PacketSink* b) { a_to_b_.set_sink(b); }

  /// The link an endpoint must transmit on.
  Link& uplink_from_a() { return a_to_b_; }
  Link& uplink_from_b() { return b_to_a_; }

  void set_trace(PacketTrace* trace) { trace_ = trace; }

 private:
  Link a_to_b_;
  Link b_to_a_;
  PacketTrace* trace_ = nullptr;
};

}  // namespace hsim::net
