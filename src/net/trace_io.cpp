#include "net/trace_io.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace hsim::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// time(8) src(4) dst(4) sport(2) dport(2) flags(1) pad(1) seq(4) ack(4) len(4)
constexpr std::size_t kBinaryRecordBytes = 34;

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  return a.time == b.time && a.src == b.src && a.dst == b.dst &&
         a.src_port == b.src_port && a.dst_port == b.dst_port &&
         a.flags == b.flags && a.seq == b.seq && a.ack == b.ack &&
         a.payload_bytes == b.payload_bytes;
}

}  // namespace

std::string format_trace_record(const TraceRecord& r) {
  // Nine decimals = exact nanoseconds: the text format must round-trip
  // losslessly (golden traces are parsed back for structural diffing).
  char line[160];
  std::snprintf(line, sizeof line,
                "%13.9f  %u:%u > %u:%u  %-4s seq=%u ack=%u len=%u",
                sim::to_seconds(r.time), r.src, r.src_port, r.dst, r.dst_port,
                flags_to_string(r.flags).c_str(), r.seq, r.ack,
                r.payload_bytes);
  return line;
}

std::string trace_to_text(const std::vector<TraceRecord>& records) {
  std::string out(kTraceTextHeader);
  out += '\n';
  for (const TraceRecord& r : records) {
    out += format_trace_record(r);
    out += '\n';
  }
  return out;
}

std::vector<std::uint8_t> trace_to_binary(
    const std::vector<TraceRecord>& records) {
  std::vector<std::uint8_t> out;
  out.reserve(kTraceBinaryMagic.size() + 4 +
              records.size() * kBinaryRecordBytes);
  out.insert(out.end(), kTraceBinaryMagic.begin(), kTraceBinaryMagic.end());
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const TraceRecord& r : records) {
    put_u64(out, static_cast<std::uint64_t>(r.time));
    put_u32(out, r.src);
    put_u32(out, r.dst);
    put_u16(out, r.src_port);
    put_u16(out, r.dst_port);
    out.push_back(r.flags);
    out.push_back(0);  // pad / reserved
    put_u32(out, r.seq);
    put_u32(out, r.ack);
    put_u32(out, r.payload_bytes);
  }
  return out;
}

bool trace_from_binary(const std::vector<std::uint8_t>& data,
                       std::vector<TraceRecord>* out, std::string* error) {
  out->clear();
  const std::size_t magic_len = kTraceBinaryMagic.size();
  if (data.size() < magic_len + 4 ||
      std::memcmp(data.data(), kTraceBinaryMagic.data(), magic_len) != 0) {
    if (error != nullptr) *error = "not an hsim binary trace (bad magic)";
    return false;
  }
  const std::uint32_t count = get_u32(data.data() + magic_len);
  const std::size_t need = magic_len + 4 +
                           static_cast<std::size_t>(count) * kBinaryRecordBytes;
  if (data.size() < need) {
    if (error != nullptr) *error = "truncated trace file";
    return false;
  }
  out->reserve(count);
  const std::uint8_t* p = data.data() + magic_len + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += kBinaryRecordBytes) {
    TraceRecord r;
    r.time = static_cast<sim::Time>(get_u64(p));
    r.src = get_u32(p + 8);
    r.dst = get_u32(p + 12);
    r.src_port = get_u16(p + 16);
    r.dst_port = get_u16(p + 18);
    r.flags = p[20];
    r.seq = get_u32(p + 22);
    r.ack = get_u32(p + 26);
    r.payload_bytes = get_u32(p + 30);
    out->push_back(r);
  }
  return true;
}

bool trace_from_text(const std::string& text, std::vector<TraceRecord>* out,
                     std::string* error) {
  out->clear();
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind(kTraceTextHeader, 0) == 0) saw_header = true;
      continue;
    }
    double seconds = 0.0;
    unsigned src = 0, sport = 0, dst = 0, dport = 0;
    char flags[16] = {0};
    unsigned seq = 0, ack = 0, len = 0;
    // The flags token is letters only (e.g. "SA", "FA", ".") — %15s stops at
    // whitespace, matching the canonical single-space-separated rendering.
    const int n = std::sscanf(line.c_str(),
                              "%lf %u:%u > %u:%u %15s seq=%u ack=%u len=%u",
                              &seconds, &src, &sport, &dst, &dport, flags,
                              &seq, &ack, &len);
    if (n != 9) {
      if (error != nullptr) *error = "unparsable trace line: " + line;
      return false;
    }
    TraceRecord r;
    // llround, not from_seconds: the truncating cast can land one nanosecond
    // low after the double round-trip of the 9-decimal rendering.
    r.time = static_cast<sim::Time>(std::llround(seconds * 1e9));
    r.src = src;
    r.src_port = static_cast<Port>(sport);
    r.dst = dst;
    r.dst_port = static_cast<Port>(dport);
    r.seq = seq;
    r.ack = ack;
    r.payload_bytes = len;
    r.flags = 0;
    for (const char* f = flags; *f != 0; ++f) {
      switch (*f) {
        case 'S': r.flags |= flag::kSyn; break;
        case 'F': r.flags |= flag::kFin; break;
        case 'R': r.flags |= flag::kRst; break;
        case 'P': r.flags |= flag::kPsh; break;
        case 'A': r.flags |= flag::kAck; break;
        default: break;
      }
    }
    out->push_back(r);
  }
  if (!saw_header) {
    if (error != nullptr) *error = "missing hsim-trace header line";
    return false;
  }
  return true;
}

TraceDiff diff_traces(const std::vector<TraceRecord>& a,
                      const std::vector<TraceRecord>& b,
                      std::size_t max_report_lines) {
  TraceDiff d;
  d.records_a = a.size();
  d.records_b = b.size();
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t reported = 0;
  char head[96];
  for (std::size_t i = 0; i < common; ++i) {
    if (records_equal(a[i], b[i])) continue;
    if (d.identical) {
      d.identical = false;
      d.first_diff = i;
    }
    ++d.differing;
    if (reported < max_report_lines) {
      std::snprintf(head, sizeof head, "record %zu differs:\n", i);
      d.report += head;
      d.report += "  a: " + format_trace_record(a[i]) + "\n";
      d.report += "  b: " + format_trace_record(b[i]) + "\n";
      ++reported;
    }
  }
  if (a.size() != b.size()) {
    if (d.identical) {
      d.identical = false;
      d.first_diff = common;
    }
    const std::size_t extra = a.size() > b.size() ? a.size() - b.size()
                                                  : b.size() - a.size();
    d.differing += extra;
    std::snprintf(head, sizeof head,
                  "length differs: a has %zu records, b has %zu\n", a.size(),
                  b.size());
    d.report += head;
    const auto& longer = a.size() > b.size() ? a : b;
    const char tag = a.size() > b.size() ? 'a' : 'b';
    for (std::size_t i = common;
         i < longer.size() && reported < max_report_lines; ++i, ++reported) {
      d.report += "  ";
      d.report += tag;
      d.report += " only: " + format_trace_record(longer[i]) + "\n";
    }
  }
  if (!d.identical && d.differing > reported) {
    std::snprintf(head, sizeof head, "(%zu further differences omitted)\n",
                  d.differing - reported);
    d.report += head;
  }
  return d;
}

bool write_file(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = std::fclose(f) == 0 && n == data.size();
  return ok;
}

bool write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = std::fclose(f) == 0 && n == data.size();
  return ok;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool load_trace_file(const std::string& path, std::vector<TraceRecord>* out,
                     std::string* error) {
  std::vector<std::uint8_t> data;
  if (!read_file(path, &data)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  if (data.size() >= kTraceBinaryMagic.size() &&
      std::memcmp(data.data(), kTraceBinaryMagic.data(),
                  kTraceBinaryMagic.size()) == 0) {
    return trace_from_binary(data, out, error);
  }
  return trace_from_text(std::string(data.begin(), data.end()), out, error);
}

}  // namespace hsim::net
