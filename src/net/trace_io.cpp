#include "net/trace_io.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>

namespace hsim::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// time(8) src(4) dst(4) sport(2) dport(2) flags(1) pad(1) seq(4) ack(4) len(4)
constexpr std::size_t kBinaryRecordBytes = 34;
/// v2 appends hop_router(i4) hop_queue_depth(4).
constexpr std::size_t kBinaryRecordBytesV2 = 42;

bool records_equal(const TraceRecord& a, const TraceRecord& b) {
  return a.time == b.time && a.src == b.src && a.dst == b.dst &&
         a.src_port == b.src_port && a.dst_port == b.dst_port &&
         a.flags == b.flags && a.seq == b.seq && a.ack == b.ack &&
         a.payload_bytes == b.payload_bytes && a.hop_router == b.hop_router &&
         a.hop_queue_depth == b.hop_queue_depth;
}

}  // namespace

bool trace_has_hops(const std::vector<TraceRecord>& records) {
  for (const TraceRecord& r : records) {
    if (r.has_hop()) return true;
  }
  return false;
}

std::string format_trace_record(const TraceRecord& r, bool with_hop) {
  // Nine decimals = exact nanoseconds: the text format must round-trip
  // losslessly (golden traces are parsed back for structural diffing).
  char line[192];
  int n = std::snprintf(line, sizeof line,
                        "%13.9f  %u:%u > %u:%u  %-4s seq=%u ack=%u len=%u",
                        sim::to_seconds(r.time), r.src, r.src_port, r.dst,
                        r.dst_port, flags_to_string(r.flags).c_str(), r.seq,
                        r.ack, r.payload_bytes);
  if (with_hop && n > 0 && static_cast<std::size_t>(n) < sizeof line) {
    if (r.has_hop()) {
      std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                    "  hop=%d:%u", r.hop_router, r.hop_queue_depth);
    } else {
      std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                    "  hop=-");
    }
  }
  return line;
}

std::string trace_to_text(const std::vector<TraceRecord>& records) {
  const bool hops = trace_has_hops(records);
  std::string out(hops ? kTraceTextHeaderV2 : kTraceTextHeader);
  out += '\n';
  for (const TraceRecord& r : records) {
    out += format_trace_record(r, hops);
    out += '\n';
  }
  return out;
}

std::vector<std::uint8_t> trace_to_binary(
    const std::vector<TraceRecord>& records) {
  const bool hops = trace_has_hops(records);
  const std::string_view magic = hops ? kTraceBinaryMagicV2 : kTraceBinaryMagic;
  const std::size_t record_bytes =
      hops ? kBinaryRecordBytesV2 : kBinaryRecordBytes;
  std::vector<std::uint8_t> out;
  out.reserve(magic.size() + 4 + records.size() * record_bytes);
  out.insert(out.end(), magic.begin(), magic.end());
  put_u32(out, static_cast<std::uint32_t>(records.size()));
  for (const TraceRecord& r : records) {
    put_u64(out, static_cast<std::uint64_t>(r.time));
    put_u32(out, r.src);
    put_u32(out, r.dst);
    put_u16(out, r.src_port);
    put_u16(out, r.dst_port);
    out.push_back(r.flags);
    out.push_back(0);  // pad / reserved
    put_u32(out, r.seq);
    put_u32(out, r.ack);
    put_u32(out, r.payload_bytes);
    if (hops) {
      put_u32(out, static_cast<std::uint32_t>(r.hop_router));
      put_u32(out, r.hop_queue_depth);
    }
  }
  return out;
}

bool trace_from_binary(const std::vector<std::uint8_t>& data,
                       std::vector<TraceRecord>* out, std::string* error) {
  out->clear();
  const std::size_t magic_len = kTraceBinaryMagic.size();
  bool v2 = false;
  if (data.size() >= kTraceBinaryMagicV2.size() &&
      std::memcmp(data.data(), kTraceBinaryMagicV2.data(),
                  kTraceBinaryMagicV2.size()) == 0) {
    v2 = true;
  } else if (data.size() < magic_len + 4 ||
             std::memcmp(data.data(), kTraceBinaryMagic.data(), magic_len) !=
                 0) {
    if (error != nullptr) *error = "not an hsim binary trace (bad magic)";
    return false;
  }
  const std::size_t record_bytes =
      v2 ? kBinaryRecordBytesV2 : kBinaryRecordBytes;
  const std::uint32_t count = get_u32(data.data() + magic_len);
  const std::size_t need =
      magic_len + 4 + static_cast<std::size_t>(count) * record_bytes;
  if (data.size() < need) {
    if (error != nullptr) *error = "truncated trace file";
    return false;
  }
  out->reserve(count);
  const std::uint8_t* p = data.data() + magic_len + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += record_bytes) {
    TraceRecord r;
    r.time = static_cast<sim::Time>(get_u64(p));
    r.src = get_u32(p + 8);
    r.dst = get_u32(p + 12);
    r.src_port = get_u16(p + 16);
    r.dst_port = get_u16(p + 18);
    r.flags = p[20];
    r.seq = get_u32(p + 22);
    r.ack = get_u32(p + 26);
    r.payload_bytes = get_u32(p + 30);
    if (v2) {
      r.hop_router = static_cast<std::int32_t>(get_u32(p + 34));
      r.hop_queue_depth = get_u32(p + 38);
    }
    out->push_back(r);
  }
  return true;
}

bool trace_from_text(const std::string& text, std::vector<TraceRecord>* out,
                     std::string* error) {
  out->clear();
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind(kTraceTextHeader, 0) == 0 ||
          line.rfind(kTraceTextHeaderV2, 0) == 0) {
        saw_header = true;
      }
      continue;
    }
    double seconds = 0.0;
    unsigned src = 0, sport = 0, dst = 0, dport = 0;
    char flags[16] = {0};
    unsigned seq = 0, ack = 0, len = 0;
    // The flags token is letters only (e.g. "SA", "FA", ".") — %15s stops at
    // whitespace, matching the canonical single-space-separated rendering.
    const int n = std::sscanf(line.c_str(),
                              "%lf %u:%u > %u:%u %15s seq=%u ack=%u len=%u",
                              &seconds, &src, &sport, &dst, &dport, flags,
                              &seq, &ack, &len);
    if (n != 9) {
      if (error != nullptr) *error = "unparsable trace line: " + line;
      return false;
    }
    TraceRecord r;
    // llround, not from_seconds: the truncating cast can land one nanosecond
    // low after the double round-trip of the 9-decimal rendering.
    r.time = static_cast<sim::Time>(std::llround(seconds * 1e9));
    r.src = src;
    r.src_port = static_cast<Port>(sport);
    r.dst = dst;
    r.dst_port = static_cast<Port>(dport);
    r.seq = seq;
    r.ack = ack;
    r.payload_bytes = len;
    r.flags = 0;
    for (const char* f = flags; *f != 0; ++f) {
      switch (*f) {
        case 'S': r.flags |= flag::kSyn; break;
        case 'F': r.flags |= flag::kFin; break;
        case 'R': r.flags |= flag::kRst; break;
        case 'P': r.flags |= flag::kPsh; break;
        case 'A': r.flags |= flag::kAck; break;
        default: break;
      }
    }
    // Optional v2 hop column: "hop=-" (host edge) or "hop=<router>:<depth>".
    if (const std::size_t hop_at = line.find(" hop=");
        hop_at != std::string::npos) {
      int router = -1;
      unsigned depth = 0;
      if (std::sscanf(line.c_str() + hop_at, " hop=%d:%u", &router, &depth) ==
          2) {
        r.hop_router = router;
        r.hop_queue_depth = depth;
      }
    }
    out->push_back(r);
  }
  if (!saw_header) {
    if (error != nullptr) *error = "missing hsim-trace header line";
    return false;
  }
  return true;
}

TraceDiff diff_traces(const std::vector<TraceRecord>& a,
                      const std::vector<TraceRecord>& b,
                      std::size_t max_report_lines) {
  TraceDiff d;
  d.records_a = a.size();
  d.records_b = b.size();
  const bool hops = trace_has_hops(a) || trace_has_hops(b);
  const std::size_t common = std::min(a.size(), b.size());
  std::size_t reported = 0;
  char head[96];
  for (std::size_t i = 0; i < common; ++i) {
    if (records_equal(a[i], b[i])) continue;
    if (d.identical) {
      d.identical = false;
      d.first_diff = i;
    }
    ++d.differing;
    if (reported < max_report_lines) {
      std::snprintf(head, sizeof head, "record %zu differs:\n", i);
      d.report += head;
      d.report += "  a: " + format_trace_record(a[i], hops) + "\n";
      d.report += "  b: " + format_trace_record(b[i], hops) + "\n";
      ++reported;
    }
  }
  if (a.size() != b.size()) {
    if (d.identical) {
      d.identical = false;
      d.first_diff = common;
    }
    const std::size_t extra = a.size() > b.size() ? a.size() - b.size()
                                                  : b.size() - a.size();
    d.differing += extra;
    std::snprintf(head, sizeof head,
                  "length differs: a has %zu records, b has %zu\n", a.size(),
                  b.size());
    d.report += head;
    const auto& longer = a.size() > b.size() ? a : b;
    const char tag = a.size() > b.size() ? 'a' : 'b';
    for (std::size_t i = common;
         i < longer.size() && reported < max_report_lines; ++i, ++reported) {
      d.report += "  ";
      d.report += tag;
      d.report += " only: " + format_trace_record(longer[i], hops) + "\n";
    }
  }
  if (!d.identical && d.differing > reported) {
    std::snprintf(head, sizeof head, "(%zu further differences omitted)\n",
                  d.differing - reported);
    d.report += head;
  }
  return d;
}

std::vector<HopSummary> summarize_by_hop(
    const std::vector<TraceRecord>& records, IpAddr client_addr) {
  // Group preserving ascending hop order (-1 host-edge first). A std::map
  // keyed by hop id gives the deterministic ordering summarize output needs.
  std::map<std::int32_t, std::vector<TraceRecord>> groups;
  std::map<std::int32_t, std::pair<std::uint64_t, std::uint32_t>> depths;
  for (const TraceRecord& r : records) {
    groups[r.hop_router].push_back(r);
    auto& [sum, max] = depths[r.hop_router];
    sum += r.hop_queue_depth;
    max = std::max(max, r.hop_queue_depth);
  }
  std::vector<HopSummary> out;
  out.reserve(groups.size());
  for (const auto& [hop, recs] : groups) {
    HopSummary h;
    h.hop_router = hop;
    h.summary = summarize_records(recs, client_addr);
    const auto& [sum, max] = depths[hop];
    h.mean_queue_depth =
        recs.empty() ? 0.0
                     : static_cast<double>(sum) / static_cast<double>(recs.size());
    h.max_queue_depth = max;
    out.push_back(std::move(h));
  }
  return out;
}

bool write_file(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = std::fclose(f) == 0 && n == data.size();
  return ok;
}

bool write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(data.data(), 1, data.size(), f);
  const bool ok = std::fclose(f) == 0 && n == data.size();
  return ok;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out->insert(out->end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool load_trace_file(const std::string& path, std::vector<TraceRecord>* out,
                     std::string* error) {
  std::vector<std::uint8_t> data;
  if (!read_file(path, &data)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  const bool binary =
      (data.size() >= kTraceBinaryMagic.size() &&
       std::memcmp(data.data(), kTraceBinaryMagic.data(),
                   kTraceBinaryMagic.size()) == 0) ||
      (data.size() >= kTraceBinaryMagicV2.size() &&
       std::memcmp(data.data(), kTraceBinaryMagicV2.data(),
                   kTraceBinaryMagicV2.size()) == 0);
  if (binary) return trace_from_binary(data, out, error);
  return trace_from_text(std::string(data.begin(), data.end()), out, error);
}

}  // namespace hsim::net
