// 32-bit TCP sequence-number arithmetic (RFC 793 modular comparisons).
#pragma once

#include <cstdint>

namespace hsim::tcp {

using Seq = std::uint32_t;

/// a < b in sequence space.
inline bool seq_lt(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
inline bool seq_gt(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) > 0;
}
inline bool seq_ge(Seq a, Seq b) {
  return static_cast<std::int32_t>(a - b) >= 0;
}

}  // namespace hsim::tcp
