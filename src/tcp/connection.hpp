// A single TCP connection: RFC 793 state machine with Van Jacobson congestion
// control, delayed ACKs, Nagle, fast retransmit and graceful half-close.
//
// Applications use the socket-like surface (send / read_all / shutdown_send /
// close_naive / abort plus callbacks); the owning tcp::Host feeds arriving
// segments in via `segment_arrived` and provides the transmit path.
//
// Internally, application data positions are tracked as 64-bit stream offsets
// and converted to 32-bit wire sequence numbers at the segment boundary, so
// the implementation is immune to wraparound bugs while still exchanging
// genuine modular sequence numbers on the wire (tested explicitly with
// initial sequence numbers near 2^32).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "buf/bytes.hpp"
#include "net/packet.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "sim/event_queue.hpp"
#include "tcp/congestion.hpp"
#include "tcp/options.hpp"
#include "tcp/seq.hpp"

namespace hsim::tcp {

class Host;

enum class State {
  kClosed,
  kListen,  // unused by Connection (listening lives in Host) but kept for
            // completeness of the classic diagram
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

std::string_view to_string(State s);

/// Terminal failure cause reported through on_failed.
enum class ConnError {
  kNone,
  kConnectTimeout,     // SYN (or SYN-ACK) retries exhausted
  kRetransmitTimeout,  // established, but retransmissions never got through
};

std::string_view to_string(ConnError e);

struct ConnectionStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t bytes_sent = 0;      // payload only
  std::uint64_t bytes_received = 0;  // payload only
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t delayed_acks_fired = 0;  // pure ACKs sent by the 200 ms timer
  std::uint64_t nagle_delays = 0;  // times Nagle withheld a small segment
};

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  using Callback = std::function<void()>;

  /// Identifies this connection within its host.
  struct Key {
    net::IpAddr peer_addr = 0;
    net::Port local_port = 0;
    net::Port peer_port = 0;
    auto operator<=>(const Key&) const = default;
  };

  Connection(Host& host, Key key, TcpOptions options);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // ---- Application interface -------------------------------------------

  /// Buffers application data for transmission. Returns the number of bytes
  /// accepted (may be less than data.size() if the send buffer is full; the
  /// on_send_space callback fires when room becomes available again).
  /// The span/string overloads copy into the send chain; the Bytes/Chain
  /// overloads enqueue shared slices without touching the payload bytes.
  std::size_t send(std::span<const std::uint8_t> data);
  std::size_t send(std::string_view text);
  std::size_t send(buf::Bytes data);
  /// Enqueues up to `limit` bytes from the front of `data` (zero-copy).
  std::size_t send(const buf::Chain& data, std::size_t limit = buf::npos);

  /// Drains and returns all bytes currently readable as shared slices of the
  /// arrived segments — no copy.
  buf::Chain read_all();
  std::size_t available() const { return recv_ready_.size(); }

  /// Free space in the send buffer.
  std::size_t send_space() const;

  /// Graceful close of the sending direction only: a FIN follows all buffered
  /// data; the receiving direction stays open (correct HTTP/1.1 behaviour —
  /// "servers must close each half of the connection independently").
  void shutdown_send();

  /// The naive close the paper warns about: closes both directions at once.
  /// Any data that arrives afterwards is answered with RST, which on the peer
  /// destroys buffered-but-unread responses.
  void close_naive();

  /// Aborts with RST immediately.
  void abort();

  void set_nodelay(bool nodelay) { options_.nodelay = nodelay; }

  State state() const { return state_; }
  const Key& key() const { return key_; }
  const TcpOptions& options() const { return options_; }
  const ConnectionStats& stats() const { return stats_; }
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }

  /// The congestion-control module driving this connection's window.
  const CongestionControl& congestion() const { return *cc_; }
  CaState ca_state() const { return cc_->ca_state(); }
  const LossForensics& loss_forensics() const { return cc_->forensics(); }

  /// This connection's event timeline, or nullptr unless a registry with
  /// enable_timelines() was installed when the connection was constructed.
  const obs::ConnTimeline* timeline() const { return timeline_; }

  /// True once the peer's FIN has been received and delivered in order.
  bool peer_closed() const { return peer_fin_delivered_; }
  /// True if the connection was torn down by an incoming RST.
  bool was_reset() const { return was_reset_; }
  /// Terminal failure cause, or kNone if the connection did not fail.
  ConnError error() const { return error_; }

  // Callbacks. All optional; fired from within event processing.
  void set_on_connected(Callback cb) { on_connected_ = std::move(cb); }
  void set_on_data(Callback cb) { on_data_ = std::move(cb); }
  void set_on_peer_fin(Callback cb) { on_peer_fin_ = std::move(cb); }
  void set_on_closed(Callback cb) { on_closed_ = std::move(cb); }
  void set_on_reset(Callback cb) { on_reset_ = std::move(cb); }
  void set_on_send_space(Callback cb) { on_send_space_ = std::move(cb); }
  /// Terminal failure (connect timeout / retransmission give-up). If unset,
  /// on_reset fires instead — a failed connection loses data like a reset
  /// does, so reset handling is the correct fallback.
  void set_on_failed(Callback cb) { on_failed_ = std::move(cb); }

  // ---- Host interface ----------------------------------------------------

  /// Starts an active open (client side): transmits SYN.
  void start_connect();
  /// Starts a passive open (server side) in response to a received SYN.
  void start_accept(const net::Packet& syn);
  /// Processes one arriving segment.
  void segment_arrived(const net::Packet& packet);

 private:
  using Offset = std::uint64_t;  // absolute position in the byte stream

  // Segment construction / transmission.
  void send_segment(std::uint8_t flags, Seq seq, buf::Bytes payload,
                    bool is_retransmit);
  void send_pure_ack();
  void send_rst(Seq seq, bool failure_path = false);
  std::uint32_t advertised_window() const;

  // Observability: state transitions and congestion-window updates are
  // funnelled through these so the timeline and the tcp.* metrics see every
  // change exactly once.
  void set_state(State s);
  void set_cwnd(std::uint32_t cwnd, std::uint32_t ssthresh);
  void tl(obs::TlKind kind, std::uint8_t flags = 0, std::uint64_t a = 0,
          std::uint64_t b = 0);

  // Output machinery. Application sends are flushed via a zero-delay event so
  // that several writes (and a shutdown) issued in the same instant coalesce
  // into the fewest possible segments, as a buffered socket layer would.
  void schedule_output();
  void try_send();
  bool nagle_blocks(std::size_t segment_len, bool carries_fin) const;
  void maybe_send_fin();

  // Input machinery.
  void handle_ack(const net::Packet& packet);
  void accept_payload(const net::Packet& packet);
  void deliver_in_order();
  void schedule_ack(bool force_now);

  // Timers and congestion control. The window arithmetic itself lives in the
  // cc_ module (tcp/congestion.hpp); the connection reports events via the
  // hook interface and mirrors the module's cwnd/ssthresh through sync_cwnd.
  void arm_rto();
  void on_rto_fire();
  /// Returns true when the CC module asked for an immediate retransmission of
  /// the first unacked segment (NewReno-style partial-ACK hole repair).
  bool on_new_data_acked(Offset newly_acked_end, std::size_t acked_bytes);
  /// Builds the sender-state snapshot passed to every CC hook.
  CcContext cc_ctx() const;
  /// Mirrors cc_->cwnd()/ssthresh() into cwnd_/ssthresh_ via set_cwnd.
  /// `force` replicates a legacy unconditional set_cwnd call site (the
  /// histogram observes on every call there, even when nothing changed);
  /// non-forced sites only record when the module actually moved the window.
  void sync_cwnd(bool force);
  /// Retransmits the earliest unacked segment (the fast-retransmit slice) and
  /// re-arms the RTO. No-op when nothing is outstanding.
  void retransmit_front_segment();
  /// Adds this connection's loss forensics into the tcp.cc.* aggregate
  /// registry counters (once, at teardown).
  void flush_forensics();
  void enter_time_wait();
  void become_closed(bool notify_reset);
  void become_failed(ConnError error);

  Offset bytes_in_flight() const { return snd_next_ - snd_acked_; }
  Seq wire_seq(Offset data_offset) const;

  Host& host_;
  Key key_;
  TcpOptions options_;
  State state_ = State::kClosed;
  ConnectionStats stats_;

  /// Aggregate tcp.* registry metrics (all-null handles when disabled).
  struct Metrics {
    obs::CounterHandle segments_sent, segments_received, bytes_sent,
        bytes_received, retransmits, fast_retransmits, rto_fires, delayed_acks,
        nagle_holds, rst_sent, rst_received, time_wait_entered, opened;
    // Loss forensics (tcp.cc.*), flushed once per connection at teardown.
    obs::CounterHandle cc_enter_recovery, cc_enter_loss, cc_recovery_to_loss,
        cc_full_recoveries, cc_partial_ack_retx, cc_spurious_rtos,
        cc_after_idle, cc_first_loss_dupack, cc_first_loss_timeout,
        cc_ca_entries[4];
    obs::HistogramHandle cwnd_bytes;
    static Metrics bind();
  };
  Metrics metrics_;
  obs::ConnTimeline* timeline_ = nullptr;  // owned by the registry

  // ---- Send side ----
  Seq iss_ = 0;                 // initial send sequence number
  // Unacked + unsent bytes [snd_acked_, snd_buffered_) as shared slices.
  // Segments — including retransmissions — are zero-copy sub-slices of these
  // nodes; acking is pop_front.
  buf::Chain send_buf_;
  Offset snd_acked_ = 0;        // stream offset cumulatively acked
  Offset snd_next_ = 0;         // next stream offset to transmit
  Offset snd_max_ = 0;          // highest offset ever transmitted
  Offset snd_buffered_ = 0;     // total bytes ever accepted from the app
  bool syn_sent_ = false;
  bool syn_acked_ = false;
  bool fin_requested_ = false;  // app called shutdown
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::uint32_t peer_window_ = 0;
  bool send_space_was_exhausted_ = false;
  bool output_scheduled_ = false;

  // Congestion control: the module owns the window; cwnd_/ssthresh_ mirror
  // it (updated only through sync_cwnd -> set_cwnd so the timeline and the
  // tcp.cwnd_bytes histogram see every change exactly once).
  std::unique_ptr<CongestionControl> cc_;
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  std::uint32_t dup_acks_ = 0;
  Seq last_ack_received_ = 0;
  CaState ca_state_recorded_ = CaState::kSlowStart;  // last state in timeline
  sim::Time min_rtt_ = 0;            // smallest Karn-valid RTT sample (0=none)
  sim::Time last_send_time_ = -1;    // last SYN/FIN/data transmission
  sim::Time rto_collapse_time_ = -1;  // pending spurious-RTO probe, -1 = none
  bool forensics_flushed_ = false;

  // RTT estimation (Jacobson), Karn's rule via single in-flight sample.
  std::optional<std::pair<Offset, sim::Time>> rtt_sample_;  // (end, sent_at)
  sim::Time srtt_ = 0;
  sim::Time rttvar_ = 0;
  sim::Time rto_;
  sim::Timer rto_timer_;
  std::uint32_t syn_retries_ = 0;
  std::uint32_t consecutive_rtos_ = 0;  // reset whenever an ACK makes progress
  ConnError error_ = ConnError::kNone;

  // ---- Receive side ----
  Seq irs_ = 0;  // initial receive sequence number
  Offset rcv_next_ = 0;  // next in-order stream offset expected
  std::map<Offset, buf::Bytes> reassembly_;  // out-of-order segment slices
  buf::Chain recv_ready_;  // in-order bytes awaiting the app
  std::optional<Offset> peer_fin_offset_;
  bool peer_fin_delivered_ = false;
  bool recv_shutdown_ = false;  // naive close: arriving data answered w/ RST
  bool was_reset_ = false;
  bool window_update_needed_ = false;  // advertised a tiny window; update on read

  // Delayed ACK state.
  bool ack_pending_ = false;
  std::uint32_t unacked_segments_ = 0;
  sim::Timer delack_timer_;
  sim::Timer time_wait_timer_;

  Callback on_connected_;
  Callback on_data_;
  Callback on_peer_fin_;
  Callback on_closed_;
  Callback on_reset_;
  Callback on_send_space_;
  Callback on_failed_;
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Renders a connection timeline as a human-readable annotated trace:
/// timestamps in seconds, TCP state names, flag strings, cwnd/ssthresh in
/// bytes. This is the TCP-aware companion to obs::ConnTimeline::dump().
std::string format_timeline(const obs::ConnTimeline& timeline);

}  // namespace hsim::tcp
