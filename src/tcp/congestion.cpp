#include "tcp/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace hsim::tcp {

namespace {
// "Infinite" initial ssthresh: slow start runs until the first loss event.
constexpr std::uint32_t kInitialSsthresh = 1u << 30;
}  // namespace

std::string_view to_string(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return "reno";
    case CcKind::kNewReno: return "newreno";
    case CcKind::kCubic: return "cubic";
    case CcKind::kBbrLite: return "bbr";
  }
  return "?";
}

bool parse_cc_kind(std::string_view name, CcKind* out) {
  for (const CcKind kind : kAllCcKinds) {
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  if (name == "bbr-lite" || name == "bbrlite") {
    *out = CcKind::kBbrLite;
    return true;
  }
  return false;
}

std::string_view to_string(CaState s) {
  switch (s) {
    case CaState::kSlowStart: return "slow-start";
    case CaState::kAvoidance: return "avoidance";
    case CaState::kFastRecovery: return "fast-recovery";
    case CaState::kLoss: return "loss";
  }
  return "?";
}

std::string_view to_string(LossReason r) {
  switch (r) {
    case LossReason::kNone: return "none";
    case LossReason::kDupAck: return "dup-ack";
    case LossReason::kTimeout: return "timeout";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Base class: CA state machine + forensics; modules do window arithmetic.
// ---------------------------------------------------------------------------

CaState CongestionControl::ca_state() const {
  switch (episode_) {
    case Episode::kFastRecovery: return CaState::kFastRecovery;
    case Episode::kLoss: return CaState::kLoss;
    case Episode::kNone: break;
  }
  return cwnd_ < ssthresh_ ? CaState::kSlowStart : CaState::kAvoidance;
}

void CongestionControl::note_first_loss(LossReason reason, sim::Time now) {
  if (forensics_.first_loss_reason == LossReason::kNone) {
    forensics_.first_loss_reason = reason;
    forensics_.first_loss_time = now;
  }
}

void CongestionControl::init(const CcContext& ctx) {
  episode_ = Episode::kNone;
  cc_init(ctx);
}

bool CongestionControl::on_new_ack(const CcContext& ctx,
                                   std::size_t acked_bytes) {
  bool retransmit = false;
  if (episode_ != Episode::kNone) {
    if (ctx.snd_acked >= recovery_point_) {
      // Full ACK: the episode is over. Exit before growth so a module's
      // exit deflation (e.g. NewReno's cwnd = ssthresh) applies first.
      const bool was_recovery = episode_ == Episode::kFastRecovery;
      episode_ = Episode::kNone;
      if (was_recovery) ++forensics_.full_recoveries;
      cc_exit_recovery(ctx);
      ++forensics_.ca_entries[static_cast<std::size_t>(ca_state())];
    } else if (episode_ == Episode::kFastRecovery) {
      // Partial ACK during fast recovery: the module decides whether to
      // repair the next hole immediately (NewReno) or wait (Reno).
      retransmit = cc_partial_ack(ctx, acked_bytes);
      if (retransmit) ++forensics_.partial_ack_retransmits;
    }
  }
  cc_new_ack(ctx, acked_bytes);
  return retransmit;
}

void CongestionControl::on_duplicate_ack(const CcContext& ctx,
                                         std::uint32_t count) {
  cc_duplicate_ack(ctx, count);
}

bool CongestionControl::on_loss_detected(const CcContext& ctx) {
  if (episode_ == Episode::kFastRecovery && !cc_reenter_recovery()) {
    return false;
  }
  note_first_loss(LossReason::kDupAck, ctx.now);
  ++forensics_.enter_recovery;
  ++forensics_.ca_entries[static_cast<std::size_t>(CaState::kFastRecovery)];
  episode_ = Episode::kFastRecovery;
  recovery_point_ = ctx.snd_max;
  cc_enter_fast_recovery(ctx);
  return true;
}

void CongestionControl::on_timeout(const CcContext& ctx) {
  if (episode_ == Episode::kFastRecovery) ++forensics_.recovery_to_loss;
  note_first_loss(LossReason::kTimeout, ctx.now);
  ++forensics_.enter_loss;
  ++forensics_.ca_entries[static_cast<std::size_t>(CaState::kLoss)];
  episode_ = Episode::kLoss;
  recovery_point_ = ctx.snd_max;
  cc_timeout(ctx);
}

void CongestionControl::on_rtt_sample(const CcContext& ctx, sim::Time rtt) {
  cc_rtt_sample(ctx, rtt);
}

void CongestionControl::after_idle(const CcContext& ctx) {
  ++forensics_.after_idle_resets;
  cc_after_idle(ctx);
}

void CongestionControl::note_spurious_rto() { ++forensics_.spurious_rtos; }

void CongestionControl::cc_duplicate_ack(const CcContext&, std::uint32_t) {}
void CongestionControl::cc_exit_recovery(const CcContext&) {}
bool CongestionControl::cc_partial_ack(const CcContext&, std::size_t) {
  return false;
}
void CongestionControl::cc_rtt_sample(const CcContext&, sim::Time) {}
void CongestionControl::cc_after_idle(const CcContext&) {}

std::uint32_t CongestionControl::halved_window(const CcContext& ctx) const {
  // The one shared flight/half computation: the in-flight estimate is capped
  // by cwnd (an application-limited sender must not inflate ssthresh), and
  // the halved window is floored at two segments (RFC 5681 eq. 4).
  const std::uint32_t flight = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(ctx.bytes_in_flight, cwnd_));
  return std::max(flight / 2, 2 * ctx.mss);
}

void CongestionControl::reno_growth(const CcContext& ctx,
                                    std::size_t acked_bytes) {
  if (cwnd_ < ssthresh_) {
    // Slow start: one MSS per MSS-worth of new data acknowledged.
    cwnd_ += static_cast<std::uint32_t>(
        std::min<std::size_t>(acked_bytes, ctx.mss));
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    cwnd_ += std::max<std::uint32_t>(
        1, ctx.mss * ctx.mss / std::max<std::uint32_t>(cwnd_, 1));
  }
}

// ---------------------------------------------------------------------------
// Reno: the original hard-wired behaviour, byte-exact.
// ---------------------------------------------------------------------------

namespace {

class Reno : public CongestionControl {
 public:
  CcKind kind() const override { return CcKind::kReno; }

 protected:
  void cc_init(const CcContext& ctx) override {
    cwnd_ = ctx.initial_cwnd;
    ssthresh_ = kInitialSsthresh;
  }
  void cc_new_ack(const CcContext& ctx, std::size_t acked) override {
    reno_growth(ctx, acked);
  }
  void cc_enter_fast_recovery(const CcContext& ctx) override {
    const std::uint32_t half = halved_window(ctx);
    cwnd_ = half;
    ssthresh_ = half;
  }
  void cc_timeout(const CcContext& ctx) override {
    // Multiplicative decrease, restart from one segment in slow start.
    // Order matters: ssthresh derives from the pre-collapse window.
    ssthresh_ = halved_window(ctx);
    cwnd_ = ctx.mss;
  }
};

// ---------------------------------------------------------------------------
// NewReno: Reno + partial-ACK hole repair without re-halving (RFC 6582).
// ---------------------------------------------------------------------------

class NewReno : public Reno {
 public:
  CcKind kind() const override { return CcKind::kNewReno; }

 protected:
  bool cc_reenter_recovery() const override { return false; }
  void cc_new_ack(const CcContext& ctx, std::size_t acked) override {
    // The window holds at ssthresh for the duration of fast recovery;
    // growth resumes once the full ACK arrives (cc_exit_recovery). After an
    // RTO (loss state) the normal slow-start regrowth applies.
    if (ca_state() == CaState::kFastRecovery) return;
    reno_growth(ctx, acked);
  }
  bool cc_partial_ack(const CcContext&, std::size_t) override {
    // A partial ACK means the next hole is known: repair it now instead of
    // waiting for three more duplicate ACKs — and do NOT halve again.
    return true;
  }
  void cc_exit_recovery(const CcContext&) override { cwnd_ = ssthresh_; }
  void cc_after_idle(const CcContext& ctx) override {
    // RFC 5681 §4.1 restart: the window decays to the initial window after
    // an idle period of one RTO; ssthresh keeps the path memory.
    cwnd_ = std::min(cwnd_, ctx.initial_cwnd);
  }
};

// ---------------------------------------------------------------------------
// CUBIC (RFC 8312): time-based window growth with fast convergence.
// ---------------------------------------------------------------------------

class Cubic : public CongestionControl {
 public:
  CcKind kind() const override { return CcKind::kCubic; }

 protected:
  static constexpr double kC = 0.4;      // aggressiveness (segments/sec^3)
  static constexpr double kBeta = 0.7;   // multiplicative decrease factor
  // TCP-friendly region slope: 3(1-beta)/(1+beta).
  static constexpr double kAlpha = 3.0 * (1.0 - kBeta) / (1.0 + kBeta);

  void cc_init(const CcContext& ctx) override {
    cwnd_ = ctx.initial_cwnd;
    ssthresh_ = kInitialSsthresh;
    w_max_ = 0.0;
    epoch_start_ = -1;
  }

  void cc_new_ack(const CcContext& ctx, std::size_t acked) override {
    if (ca_state() == CaState::kFastRecovery) return;  // hold during recovery
    if (cwnd_ < ssthresh_) {
      // Slow start is unchanged from Reno (no HyStart in this model).
      cwnd_ += static_cast<std::uint32_t>(
          std::min<std::size_t>(acked, ctx.mss));
      epoch_start_ = -1;
      return;
    }
    const double seg = static_cast<double>(ctx.mss);
    const double cur = static_cast<double>(cwnd_) / seg;
    if (epoch_start_ < 0) {
      // New congestion-avoidance epoch: aim the cubic at the last w_max.
      epoch_start_ = ctx.now;
      if (w_max_ < cur) {
        w_max_ = cur;
        k_ = 0.0;
      } else {
        k_ = std::cbrt((w_max_ - cur) / kC);
      }
      w_est_ = cur;
    }
    // Target the cubic one RTT ahead: W(t + RTT) = C(t - K)^3 + w_max.
    const double t = sim::to_seconds(ctx.now - epoch_start_ + ctx.srtt);
    const double d = t - k_;
    const double target = kC * d * d * d + w_max_;
    // TCP-friendly region: never slower than a Reno flow would be.
    w_est_ += kAlpha * (static_cast<double>(std::min<std::size_t>(
                           acked, ctx.mss)) / seg) / cur;
    double next = cur;
    if (target > cur) next = cur + (target - cur) / cur;  // per-ACK step
    if (w_est_ > next) next = w_est_;
    if (next > cur + 1.0) next = cur + 1.0;  // at most one segment per ACK
    if (next > cur) cwnd_ = static_cast<std::uint32_t>(next * seg);
  }

  bool cc_reenter_recovery() const override { return false; }

  void cc_enter_fast_recovery(const CcContext& ctx) override {
    shrink(ctx);
    cwnd_ = ssthresh_;
  }

  bool cc_partial_ack(const CcContext&, std::size_t) override { return true; }

  void cc_exit_recovery(const CcContext&) override { cwnd_ = ssthresh_; }

  void cc_timeout(const CcContext& ctx) override {
    shrink(ctx);
    cwnd_ = ctx.mss;
  }

  void cc_after_idle(const CcContext& ctx) override {
    cwnd_ = std::min(cwnd_, ctx.initial_cwnd);
    epoch_start_ = -1;
  }

 private:
  /// Shared multiplicative-decrease bookkeeping: remember where the loss
  /// happened (with fast convergence) and set ssthresh = beta * cwnd.
  void shrink(const CcContext& ctx) {
    const double cur = static_cast<double>(cwnd_) / ctx.mss;
    // Fast convergence: a loss below the previous w_max means a new flow is
    // taking share — release extra room by remembering a lower ceiling.
    w_max_ = cur < w_max_ ? cur * (2.0 - kBeta) / 2.0 : cur;
    ssthresh_ = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(static_cast<double>(cwnd_) * kBeta),
        2 * ctx.mss);
    epoch_start_ = -1;
  }

  double w_max_ = 0.0;        // window (segments) at the last loss event
  sim::Time epoch_start_ = -1;  // start of the current avoidance epoch
  double k_ = 0.0;            // time (sec) for the cubic to reach w_max
  double w_est_ = 0.0;        // Reno-equivalent window (TCP-friendly region)
};

// ---------------------------------------------------------------------------
// BBR-lite: delivery-rate + min-RTT model with a pacing-gain cycle.
// ---------------------------------------------------------------------------

class BbrLite : public CongestionControl {
 public:
  CcKind kind() const override { return CcKind::kBbrLite; }

 protected:
  static constexpr double kStartupGain = 2.885;  // 2/ln(2)
  static constexpr int kCycleLength = 8;
  static constexpr std::uint64_t kBwWindowRounds = 10;

  void cc_init(const CcContext& ctx) override {
    cwnd_ = ctx.initial_cwnd;
    ssthresh_ = kInitialSsthresh;
    round_start_time_ = ctx.now;
  }

  void cc_new_ack(const CcContext& ctx, std::size_t acked) override {
    delivered_ += acked;
    if (delivered_ >= next_round_delivered_) advance_round(ctx);

    const double bw = max_bw_bps();
    if (bw <= 0.0 || ctx.min_rtt <= 0) {
      // No model yet (pre-first-RTT): grow like slow start.
      cwnd_ += static_cast<std::uint32_t>(
          std::min<std::size_t>(acked, ctx.mss));
      return;
    }
    double gain;
    if (!filled_pipe_) {
      gain = kStartupGain;
    } else {
      // Probe-bandwidth gain cycle, advanced once per min-RTT: one
      // probing phase (1.25), one draining phase (0.75), six cruise phases.
      if (ctx.now - cycle_start_ >= ctx.min_rtt) {
        cycle_index_ = (cycle_index_ + 1) % kCycleLength;
        cycle_start_ = ctx.now;
      }
      gain = cycle_gain(cycle_index_);
    }
    const double bdp_bytes = bw / 8.0 * sim::to_seconds(ctx.min_rtt);
    const std::uint64_t target = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(gain * bdp_bytes),
        4ull * ctx.mss);
    if (cwnd_ < target) {
      // Approach the target at slow-start pace rather than jumping, so a
      // stale bandwidth spike cannot instantly flood the path.
      cwnd_ = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          target, static_cast<std::uint64_t>(cwnd_) + acked));
    } else {
      cwnd_ = static_cast<std::uint32_t>(target);
    }
    if (filled_pipe_) {
      // Report the operating point through ssthresh so timelines and the CA
      // state read "avoidance" once the pipe is filled (BBR itself has no
      // ssthresh notion).
      ssthresh_ = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(target, 4ull * ctx.mss));
    }
  }

  bool cc_reenter_recovery() const override { return false; }

  void cc_enter_fast_recovery(const CcContext& ctx) override {
    // Loss is a repair problem, not a rate signal: remember the window,
    // fall back to roughly what is actually in flight while the holes fill.
    prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
    cwnd_ = std::max(static_cast<std::uint32_t>(std::min<std::uint64_t>(
                         ctx.bytes_in_flight, cwnd_)),
                     4 * ctx.mss);
  }

  bool cc_partial_ack(const CcContext&, std::size_t) override { return true; }

  void cc_exit_recovery(const CcContext&) override {
    // Restore the pre-loss window: the model, not the loss, sets the rate.
    cwnd_ = std::max(cwnd_, prior_cwnd_);
    prior_cwnd_ = 0;
  }

  void cc_timeout(const CcContext& ctx) override {
    prior_cwnd_ = std::max(prior_cwnd_, cwnd_);
    cwnd_ = ctx.mss;  // conservative go-back-N restart; restored on full ACK
  }

  void cc_after_idle(const CcContext& ctx) override {
    // Rate model survives idle; just restart the gain cycle conservatively.
    cycle_index_ = 0;
    cycle_start_ = ctx.now;
  }

 private:
  static double cycle_gain(int index) {
    if (index == 0) return 1.25;
    if (index == 1) return 0.75;
    return 1.0;
  }

  void advance_round(const CcContext& ctx) {
    const sim::Time dt = ctx.now - round_start_time_;
    if (dt > 0 && delivered_ > round_start_delivered_) {
      const double bps =
          static_cast<double>(delivered_ - round_start_delivered_) * 8.0 /
          sim::to_seconds(dt);
      bw_samples_.push_back({round_, bps});
      // Expire samples outside the bandwidth window.
      std::size_t keep = 0;
      for (std::size_t i = 0; i < bw_samples_.size(); ++i) {
        if (bw_samples_[i].round + kBwWindowRounds >= round_) {
          bw_samples_[keep++] = bw_samples_[i];
        }
      }
      bw_samples_.resize(keep);
    }
    ++round_;
    round_start_delivered_ = delivered_;
    round_start_time_ = ctx.now;
    next_round_delivered_ = delivered_ + ctx.bytes_in_flight;
    // Startup exit: bandwidth stopped growing >= 25% for three rounds.
    if (!filled_pipe_) {
      const double bw = max_bw_bps();
      if (bw > full_bw_ * 1.25) {
        full_bw_ = bw;
        full_bw_rounds_ = 0;
      } else if (++full_bw_rounds_ >= 3) {
        filled_pipe_ = true;
        cycle_index_ = 0;
        cycle_start_ = ctx.now;
      }
    }
  }

  double max_bw_bps() const {
    double best = 0.0;
    for (const BwSample& s : bw_samples_) best = std::max(best, s.bps);
    return best;
  }

  struct BwSample {
    std::uint64_t round = 0;
    double bps = 0.0;
  };

  bool filled_pipe_ = false;
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  std::uint64_t delivered_ = 0;  // cumulative bytes acknowledged
  std::uint64_t round_ = 0;
  std::uint64_t round_start_delivered_ = 0;
  std::uint64_t next_round_delivered_ = 0;
  sim::Time round_start_time_ = 0;
  std::vector<BwSample> bw_samples_;  // windowed-max delivery rate filter
  int cycle_index_ = 0;
  sim::Time cycle_start_ = 0;
  std::uint32_t prior_cwnd_ = 0;  // window to restore after loss repair
};

}  // namespace

std::unique_ptr<CongestionControl> CongestionControl::make(CcKind kind) {
  switch (kind) {
    case CcKind::kReno: return std::make_unique<Reno>();
    case CcKind::kNewReno: return std::make_unique<NewReno>();
    case CcKind::kCubic: return std::make_unique<Cubic>();
    case CcKind::kBbrLite: return std::make_unique<BbrLite>();
  }
  return std::make_unique<Reno>();
}

}  // namespace hsim::tcp
