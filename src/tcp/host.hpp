// A TCP endpoint host: owns connections, demultiplexes arriving segments by
// 4-tuple, manages listeners and ephemeral ports, and answers segments for
// unknown connections with RST (which is how the paper's pipelining
// connection-management pitfall manifests).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/channel.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "tcp/connection.hpp"

namespace hsim::tcp {

/// Passive-open tunables for one listening port.
struct ListenConfig {
  /// Maximum connections simultaneously in the embryonic (handshake not yet
  /// complete) state. A SYN arriving while the backlog is full is dropped
  /// *silently* — no RST — so the client's SYN retransmission backoff drives
  /// the retry, exactly as a kernel SYN queue overflow behaves. 0 = unlimited.
  std::size_t backlog = 0;
};

/// Per-listener accounting; survives for the lifetime of the listener.
struct ListenerStats {
  std::uint64_t syns_received = 0;  // initial SYNs reaching this port
  std::uint64_t syns_dropped = 0;   // silently discarded (backlog full)
  std::uint64_t accepted = 0;       // handshakes completed
  /// High-water mark of simultaneously embryonic handshakes. Unlike the live
  /// `Listener::embryonic` level (which has returned to zero by the time a run
  /// finishes), the peak is aggregatable across listeners and runs; it is also
  /// published as the peak of the `tcp.listener.embryonic` registry gauge.
  std::uint64_t embryonic_peak = 0;
};

class Host : public net::PacketSink {
 public:
  using AcceptCallback = std::function<void(ConnectionPtr)>;

  Host(sim::EventQueue& queue, net::IpAddr addr, std::string name,
       sim::Rng rng);

  /// Wires this host's transmissions onto `uplink`.
  void attach_uplink(net::Link* uplink) { uplink_ = uplink; }

  /// Active open toward (peer, port). The returned connection is in SYN_SENT;
  /// on_connected fires when the handshake completes.
  ConnectionPtr connect(net::IpAddr peer, net::Port port, TcpOptions options);

  /// Passive open: accept connections on `port`. `on_accept` fires with the
  /// new connection as soon as the three-way handshake completes.
  void listen(net::Port port, AcceptCallback on_accept, TcpOptions options,
              ListenConfig listen_config = {});
  void stop_listening(net::Port port);

  /// Accounting for the listener on `port`, or nullptr if none.
  const ListenerStats* listener_stats(net::Port port) const;

  // PacketSink: a segment arrived from the wire.
  void deliver(net::Packet packet) override;

  // ---- Connection plumbing (used by tcp::Connection) ----
  void transmit(net::Packet packet);
  /// Removes the connection from the demux table, returning the owning
  /// reference so the caller can keep the object alive through a final
  /// callback.
  ConnectionPtr remove_connection(const Connection::Key& key);
  sim::EventQueue& event_queue() { return queue_; }
  sim::Rng& rng() { return rng_; }

  net::IpAddr addr() const { return addr_; }
  const std::string& name() const { return name_; }
  std::size_t open_connections() const { return connections_.size(); }
  /// Total connections ever created on this host (≈ "sockets used").
  std::uint64_t total_connections_created() const { return total_created_; }
  /// Highest simultaneously-open connection count observed.
  std::size_t max_simultaneous_connections() const { return max_open_; }
  void reset_connection_counters();

 private:
  struct Listener {
    AcceptCallback on_accept;
    TcpOptions options;
    ListenConfig config;
    ListenerStats stats;
    std::size_t embryonic = 0;  // handshakes in flight against the backlog
  };

  void send_rst_for(const net::Packet& packet);
  net::Port allocate_ephemeral_port();

  sim::EventQueue& queue_;
  net::IpAddr addr_;
  std::string name_;
  sim::Rng rng_;
  net::Link* uplink_ = nullptr;
  std::map<Connection::Key, ConnectionPtr> connections_;
  std::map<net::Port, Listener> listeners_;
  /// Connections still in the handshake, charged against their listener's
  /// backlog: key -> listening port. Entries leave on accept or teardown.
  std::map<Connection::Key, net::Port> embryonic_;
  net::Port next_ephemeral_ = 10000;
  std::uint64_t total_created_ = 0;
  std::size_t max_open_ = 0;

  /// Aggregate listener metrics, summed over every listener on every host.
  struct Metrics {
    obs::CounterHandle syns_received, syns_dropped, accepted;
    obs::GaugeHandle embryonic;
    static Metrics bind();
  };
  Metrics metrics_ = Metrics::bind();
};

}  // namespace hsim::tcp
