#include "tcp/host.hpp"

#include <utility>

namespace hsim::tcp {

Host::Host(sim::EventQueue& queue, net::IpAddr addr, std::string name,
           sim::Rng rng)
    : queue_(queue), addr_(addr), name_(std::move(name)), rng_(rng) {}

Host::Metrics Host::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.syns_received = obs::counter_handle("tcp.listener.syns_received");
  m.syns_dropped = obs::counter_handle("tcp.listener.syns_dropped");
  m.accepted = obs::counter_handle("tcp.listener.accepted");
  m.embryonic = obs::gauge_handle("tcp.listener.embryonic");
  return m;
}

ConnectionPtr Host::connect(net::IpAddr peer, net::Port port,
                            TcpOptions options) {
  Connection::Key key;
  key.peer_addr = peer;
  key.peer_port = port;
  key.local_port = allocate_ephemeral_port();
  auto conn = std::make_shared<Connection>(*this, key, options);
  connections_[key] = conn;
  ++total_created_;
  max_open_ = std::max(max_open_, connections_.size());
  conn->start_connect();
  return conn;
}

void Host::listen(net::Port port, AcceptCallback on_accept, TcpOptions options,
                  ListenConfig listen_config) {
  listeners_[port] = Listener{std::move(on_accept), options, listen_config,
                              ListenerStats{}, 0};
}

void Host::stop_listening(net::Port port) { listeners_.erase(port); }

const ListenerStats* Host::listener_stats(net::Port port) const {
  auto it = listeners_.find(port);
  return it == listeners_.end() ? nullptr : &it->second.stats;
}

void Host::deliver(net::Packet packet) {
  Connection::Key key;
  key.peer_addr = packet.src;
  key.peer_port = packet.tcp.src_port;
  key.local_port = packet.tcp.dst_port;

  if (auto it = connections_.find(key); it != connections_.end()) {
    // Hold a reference: processing may remove the connection from the table.
    ConnectionPtr conn = it->second;
    conn->segment_arrived(packet);
    return;
  }

  // No connection. A SYN may create one if someone is listening.
  const bool initial_syn = packet.tcp.has(net::flag::kSyn) &&
                           !packet.tcp.has(net::flag::kAck);
  if (initial_syn) {
    if (auto lit = listeners_.find(key.local_port); lit != listeners_.end()) {
      Listener& listener = lit->second;
      ++listener.stats.syns_received;
      metrics_.syns_received.inc();
      if (listener.config.backlog != 0 &&
          listener.embryonic >= listener.config.backlog) {
        // SYN queue overflow: drop silently (no RST). The client's SYN
        // retransmission timer is what retries — a fresh SYN will arrive
        // here again and be re-admitted once the backlog drains.
        ++listener.stats.syns_dropped;
        metrics_.syns_dropped.inc();
        return;
      }
      auto conn = std::make_shared<Connection>(*this, key, listener.options);
      connections_[key] = conn;
      ++total_created_;
      max_open_ = std::max(max_open_, connections_.size());
      ++listener.embryonic;
      listener.stats.embryonic_peak = std::max<std::uint64_t>(
          listener.stats.embryonic_peak, listener.embryonic);
      metrics_.embryonic.add(1);
      embryonic_[key] = key.local_port;
      // Look the listener up again at handshake-completion time: it may have
      // been removed (stop_listening) while the handshake was in flight.
      const net::Port port = key.local_port;
      conn->set_on_connected([this, port, weak = std::weak_ptr(conn)] {
        ConnectionPtr c = weak.lock();
        if (!c) return;
        // Handshake complete: the connection leaves the backlog.
        if (auto emb = embryonic_.find(c->key()); emb != embryonic_.end()) {
          embryonic_.erase(emb);
          metrics_.embryonic.sub(1);
          if (auto found = listeners_.find(port); found != listeners_.end()) {
            --found->second.embryonic;
            ++found->second.stats.accepted;
            metrics_.accepted.inc();
          }
        }
        if (auto found = listeners_.find(port); found != listeners_.end() &&
                                                found->second.on_accept) {
          found->second.on_accept(c);
        }
      });
      conn->start_accept(packet);
      return;
    }
  }

  // Segment for a closed/unknown port: answer with RST (unless it is itself
  // an RST). This is the mechanism behind the paper's pipelining pitfall —
  // requests arriving after a server closed its connection draw resets.
  if (!packet.tcp.has(net::flag::kRst)) send_rst_for(packet);
}

void Host::send_rst_for(const net::Packet& packet) {
  net::Packet rst;
  rst.src = addr_;
  rst.dst = packet.src;
  rst.tcp.src_port = packet.tcp.dst_port;
  rst.tcp.dst_port = packet.tcp.src_port;
  rst.tcp.flags = net::flag::kRst;
  if (packet.tcp.has(net::flag::kAck)) {
    rst.tcp.seq = packet.tcp.ack;
  } else {
    rst.tcp.flags |= net::flag::kAck;
    rst.tcp.ack = packet.tcp.seq + static_cast<std::uint32_t>(
                                       packet.payload.size()) +
                  (packet.tcp.has(net::flag::kSyn) ? 1 : 0) +
                  (packet.tcp.has(net::flag::kFin) ? 1 : 0);
  }
  transmit(std::move(rst));
}

void Host::transmit(net::Packet packet) {
  if (uplink_ != nullptr) uplink_->transmit(std::move(packet));
}

ConnectionPtr Host::remove_connection(const Connection::Key& key) {
  auto it = connections_.find(key);
  if (it == connections_.end()) return nullptr;
  ConnectionPtr conn = std::move(it->second);
  connections_.erase(it);
  // A connection torn down before completing its handshake (RST, retry
  // exhaustion, stop_listening) releases its backlog slot here.
  if (auto emb = embryonic_.find(key); emb != embryonic_.end()) {
    if (auto lit = listeners_.find(emb->second); lit != listeners_.end() &&
                                                 lit->second.embryonic > 0) {
      --lit->second.embryonic;
    }
    metrics_.embryonic.sub(1);
    embryonic_.erase(emb);
  }
  return conn;
}

net::Port Host::allocate_ephemeral_port() { return next_ephemeral_++; }

void Host::reset_connection_counters() {
  total_created_ = 0;
  max_open_ = connections_.size();
}

}  // namespace hsim::tcp
