#include "tcp/connection.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <utility>

#include "tcp/host.hpp"

namespace hsim::tcp {

std::string_view to_string(State s) {
  switch (s) {
    case State::kClosed: return "CLOSED";
    case State::kListen: return "LISTEN";
    case State::kSynSent: return "SYN_SENT";
    case State::kSynRcvd: return "SYN_RCVD";
    case State::kEstablished: return "ESTABLISHED";
    case State::kFinWait1: return "FIN_WAIT_1";
    case State::kFinWait2: return "FIN_WAIT_2";
    case State::kCloseWait: return "CLOSE_WAIT";
    case State::kClosing: return "CLOSING";
    case State::kLastAck: return "LAST_ACK";
    case State::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

std::string_view to_string(ConnError e) {
  switch (e) {
    case ConnError::kNone: return "none";
    case ConnError::kConnectTimeout: return "connect-timeout";
    case ConnError::kRetransmitTimeout: return "retransmit-timeout";
  }
  return "?";
}

Connection::Metrics Connection::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  m.segments_sent = obs::counter_handle("tcp.segments_sent");
  m.segments_received = obs::counter_handle("tcp.segments_received");
  m.bytes_sent = obs::counter_handle("tcp.bytes_sent");
  m.bytes_received = obs::counter_handle("tcp.bytes_received");
  m.retransmits = obs::counter_handle("tcp.retransmits");
  m.fast_retransmits = obs::counter_handle("tcp.fast_retransmits");
  m.rto_fires = obs::counter_handle("tcp.rto_fires");
  m.delayed_acks = obs::counter_handle("tcp.delayed_acks_fired");
  m.nagle_holds = obs::counter_handle("tcp.nagle_holds");
  m.rst_sent = obs::counter_handle("tcp.rst_sent");
  m.rst_received = obs::counter_handle("tcp.rst_received");
  m.time_wait_entered = obs::counter_handle("tcp.time_wait_entered");
  m.opened = obs::counter_handle("tcp.connections_opened");
  m.cc_enter_recovery = obs::counter_handle("tcp.cc.enter_recovery");
  m.cc_enter_loss = obs::counter_handle("tcp.cc.enter_loss");
  m.cc_recovery_to_loss = obs::counter_handle("tcp.cc.recovery_to_loss");
  m.cc_full_recoveries = obs::counter_handle("tcp.cc.full_recoveries");
  m.cc_partial_ack_retx = obs::counter_handle("tcp.cc.partial_ack_retransmits");
  m.cc_spurious_rtos = obs::counter_handle("tcp.cc.spurious_rtos");
  m.cc_after_idle = obs::counter_handle("tcp.cc.after_idle_restarts");
  m.cc_first_loss_dupack = obs::counter_handle("tcp.cc.first_loss.dupack");
  m.cc_first_loss_timeout = obs::counter_handle("tcp.cc.first_loss.timeout");
  m.cc_ca_entries[0] = obs::counter_handle("tcp.cc.ca_entries.slow_start");
  m.cc_ca_entries[1] = obs::counter_handle("tcp.cc.ca_entries.avoidance");
  m.cc_ca_entries[2] = obs::counter_handle("tcp.cc.ca_entries.fast_recovery");
  m.cc_ca_entries[3] = obs::counter_handle("tcp.cc.ca_entries.loss");
  m.cwnd_bytes = obs::histogram_handle("tcp.cwnd_bytes");
  return m;
}

Connection::Connection(Host& host, Key key, TcpOptions options)
    : host_(host),
      key_(key),
      options_(options),
      metrics_(Metrics::bind()),
      cc_(CongestionControl::make(options.cc)),
      rto_(options.initial_rto),
      rto_timer_(host.event_queue()),
      delack_timer_(host.event_queue()),
      time_wait_timer_(host.event_queue()) {
  metrics_.opened.inc();
  obs::Registry* reg = obs::registry();
  if (reg != nullptr && reg->timelines_enabled()) {
    char label[64];
    std::snprintf(label, sizeof label, "%u:%u>%u:%u", host_.addr(),
                  key_.local_port, key_.peer_addr, key_.peer_port);
    timeline_ = reg->make_timeline(label);
  }
}

Connection::~Connection() { flush_forensics(); }

void Connection::flush_forensics() {
  if (forensics_flushed_) return;
  forensics_flushed_ = true;
  // Guard against a connection outliving its registry (handles would dangle).
  if (obs::registry() == nullptr) return;
  const LossForensics& f = cc_->forensics();
  metrics_.cc_enter_recovery.inc(f.enter_recovery);
  metrics_.cc_enter_loss.inc(f.enter_loss);
  metrics_.cc_recovery_to_loss.inc(f.recovery_to_loss);
  metrics_.cc_full_recoveries.inc(f.full_recoveries);
  metrics_.cc_partial_ack_retx.inc(f.partial_ack_retransmits);
  metrics_.cc_spurious_rtos.inc(f.spurious_rtos);
  metrics_.cc_after_idle.inc(f.after_idle_resets);
  if (f.first_loss_reason == LossReason::kDupAck) {
    metrics_.cc_first_loss_dupack.inc();
  } else if (f.first_loss_reason == LossReason::kTimeout) {
    metrics_.cc_first_loss_timeout.inc();
  }
  for (int i = 0; i < 4; ++i) metrics_.cc_ca_entries[i].inc(f.ca_entries[i]);
}

void Connection::tl(obs::TlKind kind, std::uint8_t flags, std::uint64_t a,
                    std::uint64_t b) {
  if (timeline_ != nullptr) {
    timeline_->record(host_.event_queue().now(), kind, flags, a, b);
  }
}

void Connection::set_state(State s) {
  if (s == state_) return;
  tl(obs::TlKind::kStateChange, 0, static_cast<std::uint64_t>(state_),
     static_cast<std::uint64_t>(s));
  state_ = s;
}

void Connection::set_cwnd(std::uint32_t cwnd, std::uint32_t ssthresh) {
  const CaState state = cc_->ca_state();
  const bool changed =
      cwnd != cwnd_ || ssthresh != ssthresh_ || state != ca_state_recorded_;
  cwnd_ = cwnd;
  ssthresh_ = ssthresh;
  metrics_.cwnd_bytes.observe(cwnd);
  if (changed) {
    ca_state_recorded_ = state;
    tl(obs::TlKind::kCwndChange, static_cast<std::uint8_t>(state), cwnd,
       ssthresh);
  }
}

CcContext Connection::cc_ctx() const {
  CcContext ctx;
  ctx.now = host_.event_queue().now();
  ctx.mss = options_.mss;
  ctx.initial_cwnd = options_.initial_cwnd_segments * options_.mss;
  ctx.bytes_in_flight = bytes_in_flight();
  ctx.snd_acked = snd_acked_;
  ctx.snd_max = snd_max_;
  ctx.srtt = srtt_;
  ctx.min_rtt = min_rtt_;
  return ctx;
}

void Connection::sync_cwnd(bool force) {
  if (force || cc_->cwnd() != cwnd_ || cc_->ssthresh() != ssthresh_ ||
      cc_->ca_state() != ca_state_recorded_) {
    set_cwnd(cc_->cwnd(), cc_->ssthresh());
  }
}

// ---------------------------------------------------------------------------
// Wire <-> stream offset mapping
// ---------------------------------------------------------------------------

Seq Connection::wire_seq(Offset data_offset) const {
  return static_cast<Seq>(iss_ + 1 + data_offset);
}

// ---------------------------------------------------------------------------
// Application interface
// ---------------------------------------------------------------------------

std::size_t Connection::send(std::span<const std::uint8_t> data) {
  if (fin_requested_ || state_ == State::kClosed ||
      state_ == State::kTimeWait || was_reset_) {
    return 0;
  }
  const std::size_t room = send_space();
  const std::size_t n = std::min(room, data.size());
  send_buf_.append_copy(data.first(n));
  snd_buffered_ += n;
  if (n < data.size()) send_space_was_exhausted_ = true;
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    schedule_output();
  }
  return n;
}

std::size_t Connection::send(std::string_view text) {
  return send(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::size_t Connection::send(buf::Bytes data) {
  if (fin_requested_ || state_ == State::kClosed ||
      state_ == State::kTimeWait || was_reset_) {
    return 0;
  }
  const std::size_t room = send_space();
  const std::size_t n = std::min(room, data.size());
  send_buf_.append(data.slice(0, n));
  snd_buffered_ += n;
  if (n < data.size()) send_space_was_exhausted_ = true;
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    schedule_output();
  }
  return n;
}

std::size_t Connection::send(const buf::Chain& data, std::size_t limit) {
  if (fin_requested_ || state_ == State::kClosed ||
      state_ == State::kTimeWait || was_reset_) {
    return 0;
  }
  const std::size_t wanted = std::min(limit, data.size());
  const std::size_t room = send_space();
  const std::size_t n = std::min(room, wanted);
  send_buf_.append(data.slice(0, n));
  snd_buffered_ += n;
  if (n < wanted) send_space_was_exhausted_ = true;
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    schedule_output();
  }
  return n;
}

std::size_t Connection::send_space() const {
  const std::size_t used = send_buf_.size();
  return used >= options_.send_buffer ? 0 : options_.send_buffer - used;
}

buf::Chain Connection::read_all() {
  buf::Chain out = std::move(recv_ready_);
  recv_ready_.clear();
  // If we previously advertised a nearly-closed window, reading frees buffer
  // space the peer cannot know about: send a window update so the sender does
  // not stall (the receive-side analogue of the persist timer).
  if (window_update_needed_ && state_ != State::kClosed &&
      state_ != State::kSynSent && state_ != State::kSynRcvd &&
      state_ != State::kTimeWait &&
      advertised_window() >= options_.recv_buffer / 2) {
    window_update_needed_ = false;
    if (!out.empty()) send_pure_ack();
  }
  return out;
}

void Connection::shutdown_send() {
  if (fin_requested_) return;
  fin_requested_ = true;
  if (state_ == State::kEstablished || state_ == State::kCloseWait ||
      state_ == State::kSynRcvd) {
    schedule_output();
  }
}

void Connection::close_naive() {
  // Close both directions "at once": queue the FIN like a graceful close, but
  // also stop accepting incoming data. Any data segment that arrives after
  // this point is answered with RST — destroying, on the peer, responses it
  // had received but not yet read. This reproduces the failure mode in the
  // paper's "Connection Management" section.
  recv_shutdown_ = true;
  shutdown_send();
}

void Connection::abort() {
  if (state_ == State::kClosed) return;
  send_rst(wire_seq(snd_next_));
  become_closed(/*notify_reset=*/false);
}

// ---------------------------------------------------------------------------
// Opening
// ---------------------------------------------------------------------------

void Connection::start_connect() {
  iss_ = host_.rng().next_u32();
  set_state(State::kSynSent);
  syn_sent_ = true;
  cc_->init(cc_ctx());
  sync_cwnd(/*force=*/true);
  net::Packet p;
  p.tcp.seq = iss_;
  p.tcp.flags = net::flag::kSyn;
  p.tcp.window = advertised_window();
  p.tcp.src_port = key_.local_port;
  p.tcp.dst_port = key_.peer_port;
  p.src = host_.addr();
  p.dst = key_.peer_addr;
  ++stats_.segments_sent;
  metrics_.segments_sent.inc();
  tl(obs::TlKind::kSegSent, p.tcp.flags, p.tcp.seq, 0);
  host_.transmit(std::move(p));
  arm_rto();
}

void Connection::start_accept(const net::Packet& syn) {
  iss_ = host_.rng().next_u32();
  irs_ = syn.tcp.seq;
  peer_window_ = syn.tcp.window;
  set_state(State::kSynRcvd);
  syn_sent_ = true;
  cc_->init(cc_ctx());
  sync_cwnd(/*force=*/true);
  net::Packet p;
  p.tcp.seq = iss_;
  p.tcp.ack = irs_ + 1;
  p.tcp.flags = net::flag::kSyn | net::flag::kAck;
  p.tcp.window = advertised_window();
  p.tcp.src_port = key_.local_port;
  p.tcp.dst_port = key_.peer_port;
  p.src = host_.addr();
  p.dst = key_.peer_addr;
  ++stats_.segments_sent;
  metrics_.segments_sent.inc();
  tl(obs::TlKind::kSegSent, p.tcp.flags, p.tcp.seq, 0);
  host_.transmit(std::move(p));
  arm_rto();
}

// ---------------------------------------------------------------------------
// Segment transmission
// ---------------------------------------------------------------------------

std::uint32_t Connection::advertised_window() const {
  std::size_t pending = recv_ready_.size();
  for (const auto& [off, bytes] : reassembly_) pending += bytes.size();
  if (pending >= options_.recv_buffer) return 0;
  return options_.recv_buffer - static_cast<std::uint32_t>(pending);
}

void Connection::send_segment(std::uint8_t flags, Seq seq, buf::Bytes payload,
                              bool is_retransmit) {
  net::Packet p;
  p.src = host_.addr();
  p.dst = key_.peer_addr;
  p.tcp.src_port = key_.local_port;
  p.tcp.dst_port = key_.peer_port;
  p.tcp.seq = seq;
  p.tcp.flags = flags;
  if (flags & net::flag::kAck) {
    p.tcp.ack = static_cast<Seq>(irs_ + 1 + rcv_next_ +
                                 (peer_fin_delivered_ ? 1 : 0));
  }
  p.tcp.window = advertised_window();
  if (p.tcp.window < options_.mss) window_update_needed_ = true;
  // Track the last transmission that occupied sequence space (data or FIN);
  // pure ACKs don't count as "sending" for the RFC 2861 idle-restart check.
  if (!payload.empty() || (flags & net::flag::kFin)) {
    last_send_time_ = host_.event_queue().now();
  }
  p.payload = std::move(payload);

  ++stats_.segments_sent;
  stats_.bytes_sent += p.payload.size();
  if (is_retransmit) ++stats_.retransmits;
  metrics_.segments_sent.inc();
  metrics_.bytes_sent.inc(p.payload.size());
  if (is_retransmit) metrics_.retransmits.inc();
  tl(obs::TlKind::kSegSent, p.tcp.flags, p.tcp.seq, p.payload.size());

  // Any segment carrying an ACK satisfies a pending delayed ACK.
  if (flags & net::flag::kAck) {
    ack_pending_ = false;
    unacked_segments_ = 0;
    delack_timer_.cancel();
  }
  host_.transmit(std::move(p));
}

void Connection::send_pure_ack() {
  send_segment(net::flag::kAck, static_cast<Seq>(wire_seq(snd_next_) +
                                                 (fin_sent_ ? 1 : 0)),
               buf::Bytes{}, false);
}

void Connection::send_rst(Seq seq, bool failure_path) {
  net::Packet p;
  p.src = host_.addr();
  p.dst = key_.peer_addr;
  p.tcp.src_port = key_.local_port;
  p.tcp.dst_port = key_.peer_port;
  p.tcp.seq = seq;
  p.tcp.flags = net::flag::kRst;
  ++stats_.segments_sent;
  metrics_.segments_sent.inc();
  metrics_.rst_sent.inc();
  tl(obs::TlKind::kRstSent, failure_path ? 1 : 0, seq, 0);
  host_.transmit(std::move(p));
}

// ---------------------------------------------------------------------------
// Output engine: window checks, Nagle, FIN piggybacking
// ---------------------------------------------------------------------------

void Connection::schedule_output() {
  if (output_scheduled_) return;
  output_scheduled_ = true;
  host_.event_queue().schedule_in(0, [weak = weak_from_this()] {
    if (ConnectionPtr self = weak.lock()) {
      self->output_scheduled_ = false;
      self->try_send();
    }
  });
}

bool Connection::nagle_blocks(std::size_t segment_len, bool carries_fin) const {
  if (options_.nodelay) return false;
  if (segment_len >= options_.mss) return false;
  if (carries_fin) return false;  // BSD sends the final small segment
  return bytes_in_flight() > 0;
}

void Connection::try_send() {
  const bool sending_state =
      state_ == State::kEstablished || state_ == State::kCloseWait;
  // After a go-back-N timeout pullback we may need to re-send data even
  // though our FIN is already out and the state has advanced.
  const bool recovery_resend =
      (state_ == State::kFinWait1 || state_ == State::kClosing ||
       state_ == State::kLastAck) &&
      snd_next_ < snd_buffered_;
  if (!sending_state && !recovery_resend) return;
  // RFC 2861 idle restart: the connection has sent before, everything is
  // acked, new data is waiting, and at least one RTO has passed since the
  // last transmission — let the CC module decay its window (Reno keeps the
  // legacy behaviour of doing nothing).
  if (last_send_time_ >= 0 && snd_max_ > 0 && bytes_in_flight() == 0 &&
      snd_next_ < snd_buffered_ &&
      host_.event_queue().now() - last_send_time_ >= rto_) {
    cc_->after_idle(cc_ctx());
    sync_cwnd(/*force=*/false);
  }
  bool sent_any = false;
  for (;;) {
    const Offset avail = snd_buffered_ - snd_next_;
    if (avail == 0) break;
    const std::uint64_t window = std::min<std::uint64_t>(cwnd_, peer_window_);
    const Offset flight = bytes_in_flight();
    if (flight >= window) break;
    const std::uint64_t usable = window - flight;
    const std::size_t seg = static_cast<std::size_t>(
        std::min<std::uint64_t>({options_.mss, avail, usable}));
    if (seg == 0) break;
    const bool last_of_avail = (seg == avail);
    const bool carries_fin = last_of_avail && fin_requested_;
    if (nagle_blocks(seg, carries_fin)) {
      ++stats_.nagle_delays;
      metrics_.nagle_holds.inc();
      tl(obs::TlKind::kNagleHold, 0, seg, 0);
      break;
    }

    // Slice [snd_next_, snd_next_+seg) out of the send chain; the chain's
    // front corresponds to stream offset snd_acked_. Zero-copy unless the
    // segment happens to straddle two application writes.
    const std::size_t buf_off = static_cast<std::size_t>(snd_next_ - snd_acked_);
    buf::Bytes payload = send_buf_.slice_bytes(buf_off, seg);

    std::uint8_t flags = net::flag::kAck;
    if (last_of_avail) flags |= net::flag::kPsh;
    if (carries_fin) {
      flags |= net::flag::kFin;
      if (!fin_sent_) {
        fin_sent_ = true;
        set_state(state_ == State::kCloseWait ? State::kLastAck
                                              : State::kFinWait1);
      }
    }
    if (!rtt_sample_) {
      rtt_sample_ = {snd_next_ + seg, host_.event_queue().now()};
    }
    send_segment(flags, wire_seq(snd_next_), std::move(payload),
                 /*is_retransmit=*/snd_next_ < snd_max_);
    snd_next_ += seg;
    snd_max_ = std::max(snd_max_, snd_next_);
    sent_any = true;
    if (carries_fin) break;
  }
  maybe_send_fin();
  if (sent_any) {
    arm_rto();
  } else if (fin_sent_ && !fin_acked_ && !rto_timer_.armed()) {
    arm_rto();
  }
}

void Connection::maybe_send_fin() {
  if (!fin_requested_ || fin_sent_) return;
  if (snd_next_ != snd_buffered_) return;  // data still queued
  // A bare FIN (no data available to carry it).
  fin_sent_ = true;
  send_segment(net::flag::kFin | net::flag::kAck, wire_seq(snd_next_),
               buf::Bytes{}, false);
  set_state(state_ == State::kCloseWait ? State::kLastAck : State::kFinWait1);
  arm_rto();
}

// ---------------------------------------------------------------------------
// Timers / congestion control
// ---------------------------------------------------------------------------

void Connection::arm_rto() {
  rto_timer_.arm(rto_, [this] { on_rto_fire(); });
}

void Connection::on_rto_fire() {
  ++stats_.timeouts;
  rto_ = std::min(rto_ * 2, options_.max_rto);
  metrics_.rto_fires.inc();
  tl(obs::TlKind::kRtoFire, 0, static_cast<std::uint64_t>(rto_),
     consecutive_rtos_ + 1);
  rtt_sample_.reset();  // Karn: never sample retransmitted data

  // Give-up checks: a cap of 0 means "retry forever".
  if (state_ == State::kSynSent || state_ == State::kSynRcvd) {
    if (options_.max_syn_retries != 0 &&
        syn_retries_ >= options_.max_syn_retries) {
      become_failed(ConnError::kConnectTimeout);
      return;
    }
    ++syn_retries_;
  } else {
    if (options_.max_data_retransmits != 0 &&
        consecutive_rtos_ >= options_.max_data_retransmits) {
      become_failed(ConnError::kRetransmitTimeout);
      return;
    }
    ++consecutive_rtos_;
  }

  if (state_ == State::kSynSent) {
    net::Packet p;
    p.src = host_.addr();
    p.dst = key_.peer_addr;
    p.tcp.src_port = key_.local_port;
    p.tcp.dst_port = key_.peer_port;
    p.tcp.seq = iss_;
    p.tcp.flags = net::flag::kSyn;
    p.tcp.window = advertised_window();
    ++stats_.segments_sent;
    ++stats_.retransmits;
    metrics_.segments_sent.inc();
    metrics_.retransmits.inc();
    tl(obs::TlKind::kSegSent, p.tcp.flags, p.tcp.seq, 0);
    host_.transmit(std::move(p));
    arm_rto();
    return;
  }
  if (state_ == State::kSynRcvd) {
    net::Packet p;
    p.src = host_.addr();
    p.dst = key_.peer_addr;
    p.tcp.src_port = key_.local_port;
    p.tcp.dst_port = key_.peer_port;
    p.tcp.seq = iss_;
    p.tcp.ack = irs_ + 1;
    p.tcp.flags = net::flag::kSyn | net::flag::kAck;
    p.tcp.window = advertised_window();
    ++stats_.segments_sent;
    ++stats_.retransmits;
    metrics_.segments_sent.inc();
    metrics_.retransmits.inc();
    tl(obs::TlKind::kSegSent, p.tcp.flags, p.tcp.seq, 0);
    host_.transmit(std::move(p));
    arm_rto();
    return;
  }

  const Offset unacked_data = snd_next_ - snd_acked_;
  if (unacked_data == 0 && !(fin_sent_ && !fin_acked_)) return;

  // Congestion response to a timeout: the module collapses its window
  // (Reno: one segment + half-flight ssthresh).
  cc_->on_timeout(cc_ctx());
  sync_cwnd(/*force=*/true);
  dup_acks_ = 0;
  // Arm the spurious-RTO probe: if the next advancing ACK lands sooner than
  // one min-RTT, it must have been triggered by the original flight — the
  // timeout fired for data that had actually been delivered.
  rto_collapse_time_ = host_.event_queue().now();

  if (unacked_data > 0) {
    // Go-back-N: retransmit the earliest unacked segment now and pull
    // snd_next_ back so ACK-driven sending re-covers the whole lost window
    // (a timeout usually means everything in flight was lost).
    const std::size_t seg = static_cast<std::size_t>(
        std::min<Offset>(options_.mss, unacked_data));
    // Re-slice the front of the send chain: the retransmission aliases the
    // same bytes the original segment carried, no rebuild.
    buf::Bytes payload = send_buf_.slice_bytes(0, seg);
    std::uint8_t flags = net::flag::kAck;
    const bool reaches_end = (snd_acked_ + seg == snd_buffered_);
    if (reaches_end) flags |= net::flag::kPsh;
    if (fin_sent_ && reaches_end) flags |= net::flag::kFin;
    send_segment(flags, wire_seq(snd_acked_), std::move(payload), true);
    snd_next_ = snd_acked_ + seg;
  } else {
    // Bare FIN retransmission.
    send_segment(net::flag::kFin | net::flag::kAck, wire_seq(snd_next_),
                 buf::Bytes{}, true);
  }
  arm_rto();
}

bool Connection::on_new_data_acked(Offset newly_acked_end,
                                   std::size_t acked_bytes) {
  // RTT sample (Karn's rule: sample only if it covers an untouched send).
  if (rtt_sample_ && newly_acked_end >= rtt_sample_->first) {
    const sim::Time sample = host_.event_queue().now() - rtt_sample_->second;
    rtt_sample_.reset();
    if (srtt_ == 0) {
      srtt_ = sample;
      rttvar_ = sample / 2;
    } else {
      const sim::Time err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
      srtt_ += (sample - srtt_) / 8;
      rttvar_ += (err - rttvar_) / 4;
    }
    rto_ = std::clamp(srtt_ + 4 * rttvar_, options_.min_rto, options_.max_rto);
    if (min_rtt_ == 0 || sample < min_rtt_) min_rtt_ = sample;
    cc_->on_rtt_sample(cc_ctx(), sample);
    sync_cwnd(/*force=*/false);
  }

  consecutive_rtos_ = 0;  // forward progress: the path is alive

  // Spurious-RTO probe: an advancing ACK within one min-RTT of the collapse
  // can only be a response to the pre-RTO flight (a retransmission's ACK
  // needs at least min-RTT). Observational only — the window stays collapsed.
  if (rto_collapse_time_ >= 0) {
    if (min_rtt_ > 0 &&
        host_.event_queue().now() - rto_collapse_time_ < min_rtt_) {
      cc_->note_spurious_rto();
    }
    rto_collapse_time_ = -1;
  }

  // Congestion window growth (and, inside the module, recovery bookkeeping:
  // full-ACK episode exit, partial-ACK repair decisions).
  const bool repair_hole = cc_->on_new_ack(cc_ctx(), acked_bytes);
  sync_cwnd(/*force=*/true);
  dup_acks_ = 0;
  return repair_hole;
}

void Connection::retransmit_front_segment() {
  const Offset unacked = snd_next_ - snd_acked_;
  const std::size_t seg =
      static_cast<std::size_t>(std::min<Offset>(options_.mss, unacked));
  if (seg == 0) return;
  // Reuse the front slice of the send chain — retransmissions alias the
  // bytes the original segment carried.
  buf::Bytes payload = send_buf_.slice_bytes(0, seg);
  std::uint8_t flags = net::flag::kAck;
  const bool reaches_end = (snd_acked_ + seg == snd_buffered_);
  if (fin_sent_ && reaches_end) flags |= net::flag::kFin;
  send_segment(flags, wire_seq(snd_acked_), std::move(payload), true);
  arm_rto();
}

// ---------------------------------------------------------------------------
// Input engine
// ---------------------------------------------------------------------------

void Connection::segment_arrived(const net::Packet& packet) {
  ++stats_.segments_received;
  if (state_ == State::kClosed) return;
  metrics_.segments_received.inc();
  tl(obs::TlKind::kSegRecvd, packet.tcp.flags, packet.tcp.seq,
     packet.payload.size());

  // RST: tear everything down. Unread received data is destroyed — this is
  // the data-loss behaviour the paper's connection-management section warns
  // about.
  if (packet.tcp.has(net::flag::kRst)) {
    metrics_.rst_received.inc();
    tl(obs::TlKind::kRstRecvd, 0, packet.tcp.seq, 0);
    become_closed(/*notify_reset=*/true);
    return;
  }

  // -- Handshake states ----------------------------------------------------
  if (state_ == State::kSynSent) {
    if (packet.tcp.has(net::flag::kSyn) && packet.tcp.has(net::flag::kAck) &&
        packet.tcp.ack == iss_ + 1) {
      irs_ = packet.tcp.seq;
      syn_acked_ = true;
      peer_window_ = packet.tcp.window;
      set_state(State::kEstablished);
      rto_timer_.cancel();
      rto_ = options_.initial_rto;
      if (srtt_ == 0) {
        // Use the handshake as the first RTT estimate.
        srtt_ = options_.min_rto / 2;
      }
      send_pure_ack();
      if (on_connected_) on_connected_();
      try_send();
    }
    return;
  }
  if (state_ == State::kSynRcvd) {
    if (packet.tcp.has(net::flag::kAck) && packet.tcp.ack == iss_ + 1) {
      syn_acked_ = true;
      peer_window_ = packet.tcp.window;
      set_state(State::kEstablished);
      rto_timer_.cancel();
      rto_ = options_.initial_rto;
      if (on_connected_) on_connected_();
      // Fall through: the handshake ACK may carry data (client pipelining
      // requests into the third handshake segment is legal).
    } else if (packet.tcp.has(net::flag::kSyn)) {
      // Duplicate SYN: retransmit SYN-ACK via the RTO path eventually.
      return;
    } else {
      return;
    }
  }
  if (state_ == State::kTimeWait) {
    // Peer retransmitted its FIN: re-ACK it.
    if (packet.tcp.has(net::flag::kFin)) send_pure_ack();
    return;
  }

  if (packet.tcp.has(net::flag::kAck)) handle_ack(packet);
  if (state_ == State::kClosed) return;  // handle_ack may complete a close

  const bool had_payload = !packet.payload.empty();
  if (had_payload || packet.tcp.has(net::flag::kFin)) {
    accept_payload(packet);
  }
}

void Connection::handle_ack(const net::Packet& packet) {
  peer_window_ = packet.tcp.window;
  const Seq ack = packet.tcp.ack;
  const Seq cur = wire_seq(snd_acked_);
  const std::int32_t diff = static_cast<std::int32_t>(ack - cur);

  if (diff < 0) return;  // old ACK

  if (diff == 0) {
    // Potential duplicate ACK (RFC 5681: no payload, no window change, data
    // outstanding).
    if (packet.payload.empty() && !packet.tcp.has(net::flag::kSyn) &&
        !packet.tcp.has(net::flag::kFin) && bytes_in_flight() > 0 &&
        ack == last_ack_received_) {
      ++dup_acks_;
      cc_->on_duplicate_ack(cc_ctx(), dup_acks_);
      sync_cwnd(/*force=*/false);
      if (dup_acks_ == 3 && cc_->on_loss_detected(cc_ctx())) {
        // The module (re-)entered fast recovery (Reno re-halves on repeat
        // 3-dup-ack episodes; NewReno-style modules decline while already
        // recovering, so the retransmit and the halving are skipped).
        ++stats_.fast_retransmits;
        metrics_.fast_retransmits.inc();
        tl(obs::TlKind::kFastRetransmit, 0, wire_seq(snd_acked_), 0);
        sync_cwnd(/*force=*/true);
        rtt_sample_.reset();
        retransmit_front_segment();
      }
    }
    last_ack_received_ = ack;
    try_send();  // window update may have opened the send window
    return;
  }

  last_ack_received_ = ack;

  // New data (and possibly our FIN) acknowledged. Compare against the
  // high-water mark, not snd_next_: after a go-back-N pullback an ACK may
  // cover segments from the original flight.
  const Offset ackable = snd_max_ - snd_acked_;
  std::size_t acked_bytes = 0;
  if (static_cast<Offset>(diff) > ackable) {
    // The ACK covers all transmitted data plus our FIN.
    acked_bytes = static_cast<std::size_t>(ackable);
    if (fin_sent_) fin_acked_ = true;
  } else {
    acked_bytes = static_cast<std::size_t>(diff);
  }

  send_buf_.pop_front(acked_bytes);
  snd_acked_ += acked_bytes;
  if (snd_next_ < snd_acked_) snd_next_ = snd_acked_;
  if (on_new_data_acked(snd_acked_, acked_bytes)) {
    // NewReno-style partial-ACK repair: the ACK exposed the next hole;
    // retransmit it immediately instead of waiting for three more dups.
    retransmit_front_segment();
  }

  // Restart or cancel the retransmission timer.
  if (bytes_in_flight() > 0 || (fin_sent_ && !fin_acked_)) {
    arm_rto();
  } else {
    rto_timer_.cancel();
  }

  // Close-sequence state transitions driven by our FIN being acknowledged.
  if (fin_acked_) {
    if (state_ == State::kFinWait1) {
      if (peer_fin_delivered_) {
        enter_time_wait();
      } else {
        set_state(State::kFinWait2);
      }
    } else if (state_ == State::kClosing) {
      enter_time_wait();
    } else if (state_ == State::kLastAck) {
      become_closed(/*notify_reset=*/false);
      return;
    }
  }

  if (send_space_was_exhausted_ && send_space() > 0) {
    send_space_was_exhausted_ = false;
    if (on_send_space_) on_send_space_();
  }
  try_send();
}

void Connection::accept_payload(const net::Packet& packet) {
  // Naive-close mode: the receiving direction is gone; arriving data hits a
  // closed door and draws an RST.
  if (recv_shutdown_ && !packet.payload.empty()) {
    send_rst(static_cast<Seq>(wire_seq(snd_next_) + (fin_sent_ ? 1 : 0)));
    become_closed(/*notify_reset=*/false);
    return;
  }

  const Seq expected = static_cast<Seq>(irs_ + 1 + rcv_next_);
  const std::int64_t rel = static_cast<std::int32_t>(packet.tcp.seq - expected);
  const std::int64_t seg_start = static_cast<std::int64_t>(rcv_next_) + rel;
  const std::size_t len = packet.payload.size();

  bool out_of_order = false;
  if (len > 0) {
    if (seg_start + static_cast<std::int64_t>(len) <=
        static_cast<std::int64_t>(rcv_next_)) {
      // Entirely old data: pure duplicate; ACK immediately.
      out_of_order = true;
    } else {
      std::size_t skip = 0;
      Offset store_at = static_cast<Offset>(seg_start);
      if (seg_start < static_cast<std::int64_t>(rcv_next_)) {
        skip = static_cast<std::size_t>(
            static_cast<std::int64_t>(rcv_next_) - seg_start);
        store_at = rcv_next_;
      }
      // Shared slice of the arriving segment — reassembly and the app-facing
      // ready chain alias the sender's original buffer.
      buf::Bytes bytes = packet.payload.slice(skip);
      if (store_at == rcv_next_) {
        rcv_next_ += bytes.size();
        stats_.bytes_received += bytes.size();
        metrics_.bytes_received.inc(bytes.size());
        recv_ready_.append(std::move(bytes));
        deliver_in_order();
      } else {
        out_of_order = true;
        auto [it, inserted] = reassembly_.try_emplace(store_at, bytes);
        if (!inserted && it->second.size() < bytes.size()) {
          it->second = std::move(bytes);
        }
      }
    }
  }

  // FIN handling: the FIN occupies the sequence slot after the segment data.
  if (packet.tcp.has(net::flag::kFin)) {
    const Offset fin_off = static_cast<Offset>(seg_start) + len;
    if (!peer_fin_offset_) peer_fin_offset_ = fin_off;
  }

  bool fin_just_delivered = false;
  if (peer_fin_offset_ && !peer_fin_delivered_ &&
      rcv_next_ == *peer_fin_offset_) {
    peer_fin_delivered_ = true;
    fin_just_delivered = true;
    if (state_ == State::kEstablished) {
      set_state(State::kCloseWait);
    } else if (state_ == State::kFinWait1) {
      if (fin_acked_) {
        enter_time_wait();
      } else {
        set_state(State::kClosing);
      }
    } else if (state_ == State::kFinWait2) {
      enter_time_wait();
    }
  }

  // Let the application react *before* we decide how to ACK, so that
  // application responses (HTTP replies, further pipelined requests) can
  // carry the ACK with them instead of costing a separate packet.
  ack_pending_ = true;
  if (len > 0) ++unacked_segments_;
  if (!recv_ready_.empty() && on_data_) on_data_();
  if (fin_just_delivered && on_peer_fin_) on_peer_fin_();
  if (state_ == State::kClosed) return;  // app may have aborted

  if (ack_pending_) {
    schedule_ack(/*force_now=*/out_of_order || fin_just_delivered);
  }
}

void Connection::deliver_in_order() {
  // Pull contiguous segments out of the reassembly queue.
  for (auto it = reassembly_.begin(); it != reassembly_.end();) {
    if (it->first > rcv_next_) break;
    buf::Bytes& bytes = it->second;
    if (it->first + bytes.size() <= rcv_next_) {
      it = reassembly_.erase(it);
      continue;
    }
    const std::size_t skip = static_cast<std::size_t>(rcv_next_ - it->first);
    stats_.bytes_received += bytes.size() - skip;
    metrics_.bytes_received.inc(bytes.size() - skip);
    rcv_next_ += bytes.size() - skip;
    recv_ready_.append(bytes.slice(skip));
    it = reassembly_.erase(it);
  }
}

void Connection::schedule_ack(bool force_now) {
  if (force_now || !options_.delayed_ack || unacked_segments_ >= 2) {
    send_pure_ack();
    return;
  }
  if (!delack_timer_.armed()) {
    delack_timer_.arm(options_.delayed_ack_timeout, [this] {
      if (ack_pending_) {
        ++stats_.delayed_acks_fired;
        metrics_.delayed_acks.inc();
        tl(obs::TlKind::kDelayedAck);
        send_pure_ack();
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void Connection::enter_time_wait() {
  set_state(State::kTimeWait);
  metrics_.time_wait_entered.inc();
  rto_timer_.cancel();
  time_wait_timer_.arm(options_.time_wait_duration,
                       [this] { become_closed(false); });
}

void Connection::become_failed(ConnError error) {
  if (state_ == State::kClosed) return;
  error_ = error;
  flush_forensics();
  // Best-effort RST so the peer does not linger half-open if the path heals.
  send_rst(static_cast<Seq>(wire_seq(snd_next_) + (fin_sent_ ? 1 : 0)),
           /*failure_path=*/true);
  set_state(State::kClosed);
  rto_timer_.cancel();
  delack_timer_.cancel();
  time_wait_timer_.cancel();
  recv_ready_.clear();
  reassembly_.clear();
  send_buf_.clear();
  // A failed connection loses unread data exactly like a reset, so on_reset
  // is the fallback for applications that do not wire on_failed.
  Callback cb = on_failed_ ? on_failed_ : on_reset_;
  ConnectionPtr self = host_.remove_connection(key_);
  if (cb) cb();
}

void Connection::become_closed(bool notify_reset) {
  if (state_ == State::kClosed) return;
  flush_forensics();
  set_state(State::kClosed);
  rto_timer_.cancel();
  delack_timer_.cancel();
  time_wait_timer_.cancel();
  if (notify_reset) {
    was_reset_ = true;
    // BSD semantics: an incoming RST destroys data the application has not
    // yet read from the socket.
    recv_ready_.clear();
    reassembly_.clear();
  }
  send_buf_.clear();
  // Keep `this` alive through the callback: removing the connection from the
  // host's table may drop the last owning reference.
  Callback cb = notify_reset ? on_reset_ : on_closed_;
  ConnectionPtr self = host_.remove_connection(key_);
  if (cb) cb();
}

// ---------------------------------------------------------------------------
// Timeline rendering
// ---------------------------------------------------------------------------

std::string format_timeline(const obs::ConnTimeline& timeline) {
  std::string out = "=== timeline " + timeline.label() + " ===\n";
  char line[192];
  for (const obs::TlEvent& e : timeline.events()) {
    const double t = sim::to_seconds(e.time);
    switch (e.kind) {
      case obs::TlKind::kStateChange:
        std::snprintf(line, sizeof line, "%10.6f  STATE    %s -> %s\n", t,
                      std::string(to_string(static_cast<State>(e.a))).c_str(),
                      std::string(to_string(static_cast<State>(e.b))).c_str());
        break;
      case obs::TlKind::kSegSent:
        std::snprintf(line, sizeof line,
                      "%10.6f  SEND     %-4s seq=%llu len=%llu\n", t,
                      net::flags_to_string(e.flags).c_str(),
                      static_cast<unsigned long long>(e.a),
                      static_cast<unsigned long long>(e.b));
        break;
      case obs::TlKind::kSegRecvd:
        std::snprintf(line, sizeof line,
                      "%10.6f  RECV     %-4s seq=%llu len=%llu\n", t,
                      net::flags_to_string(e.flags).c_str(),
                      static_cast<unsigned long long>(e.a),
                      static_cast<unsigned long long>(e.b));
        break;
      case obs::TlKind::kCwndChange:
        std::snprintf(line, sizeof line,
                      "%10.6f  CWND     cwnd=%llu ssthresh=%llu state=%s\n", t,
                      static_cast<unsigned long long>(e.a),
                      static_cast<unsigned long long>(e.b),
                      std::string(to_string(static_cast<CaState>(e.flags)))
                          .c_str());
        break;
      case obs::TlKind::kRtoFire:
        std::snprintf(line, sizeof line,
                      "%10.6f  RTO-FIRE backed-off-to=%.3fs consecutive=%llu\n",
                      t, sim::to_seconds(static_cast<sim::Time>(e.a)),
                      static_cast<unsigned long long>(e.b));
        break;
      case obs::TlKind::kFastRetransmit:
        std::snprintf(line, sizeof line, "%10.6f  FAST-RTX seq=%llu\n", t,
                      static_cast<unsigned long long>(e.a));
        break;
      case obs::TlKind::kDelayedAck:
        std::snprintf(line, sizeof line, "%10.6f  DELACK   timer fired\n", t);
        break;
      case obs::TlKind::kNagleHold:
        std::snprintf(line, sizeof line, "%10.6f  NAGLE    held len=%llu\n", t,
                      static_cast<unsigned long long>(e.a));
        break;
      case obs::TlKind::kRstSent:
        std::snprintf(line, sizeof line, "%10.6f  RST-SENT seq=%llu%s\n", t,
                      static_cast<unsigned long long>(e.a),
                      e.flags != 0 ? " (failure give-up)" : "");
        break;
      case obs::TlKind::kRstRecvd:
        std::snprintf(line, sizeof line,
                      "%10.6f  RST-RECV seq=%llu (peer reset)\n", t,
                      static_cast<unsigned long long>(e.a));
        break;
      case obs::TlKind::kNote:
        std::snprintf(line, sizeof line, "%10.6f  NOTE     a=%llu b=%llu\n", t,
                      static_cast<unsigned long long>(e.a),
                      static_cast<unsigned long long>(e.b));
        break;
    }
    out += line;
  }
  if (timeline.dropped() > 0) {
    std::snprintf(line, sizeof line, "(%llu earlier events dropped)\n",
                  static_cast<unsigned long long>(timeline.dropped()));
    out += line;
  }
  return out;
}

}  // namespace hsim::tcp
