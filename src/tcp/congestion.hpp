// Pluggable congestion control.
//
// Every cwnd/ssthresh decision that used to be inlined in tcp::Connection
// lives behind this event-hook interface, shaped like Shadow's tcp_cong.h
// and BSD's tcp_cc.h: the connection owns transmission (what to send, when
// to retransmit, how to slice the send chain) and reports events; the
// module owns the window (cwnd/ssthresh) and answers policy questions
// (enter recovery? retransmit on this partial ACK?).
//
// The base class runs a common congestion-avoidance state machine
// (slow-start / avoidance / fast-recovery / loss, the Linux CA-state shape)
// and maintains the per-connection loss-forensics counters, so every module
// gets identical bookkeeping for free; modules implement only the window
// arithmetic via the protected cc_* hooks.
//
// Four modules ship:
//   kReno     — the original hard-wired behaviour, byte-exact with it: VJ
//               slow start, AIMD avoidance, halve-on-3-dup-acks, collapse to
//               one segment on RTO. The default everywhere.
//   kNewReno  — Reno plus RFC 6582-style partial-ACK handling: while in
//               fast recovery a partial ACK retransmits the next hole
//               immediately and does NOT re-halve the window.
//   kCubic    — RFC 8312 time-based window growth: concave approach to the
//               last w_max, convex probing beyond it, beta = 0.7
//               multiplicative decrease with fast convergence.
//   kBbrLite  — a BBR-flavoured model: windowed-max delivery rate x
//               windowed-min RTT gives a BDP estimate; cwnd tracks
//               gain x BDP through a startup phase and a probe-bandwidth
//               pacing-gain cycle. Loss is survived, not obeyed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "sim/time.hpp"

namespace hsim::tcp {

/// Which congestion-control module a connection runs (TcpOptions::cc).
enum class CcKind : std::uint8_t {
  kReno = 0,
  kNewReno = 1,
  kCubic = 2,
  kBbrLite = 3,
};

std::string_view to_string(CcKind kind);
/// Parses "reno" / "newreno" / "cubic" / "bbr" (the --cc flag spellings).
/// Returns false and leaves *out untouched on an unknown name.
bool parse_cc_kind(std::string_view name, CcKind* out);
/// All four kinds, for exhaustive iteration in tests and benches.
inline constexpr CcKind kAllCcKinds[] = {CcKind::kReno, CcKind::kNewReno,
                                         CcKind::kCubic, CcKind::kBbrLite};

/// Congestion-avoidance state, the Linux tcp_ca_state shape folded to the
/// four phases this stack distinguishes. Carried in the flags byte of
/// kCwndChange timeline events and counted in LossForensics.
enum class CaState : std::uint8_t {
  kSlowStart = 0,     // open, cwnd < ssthresh
  kAvoidance = 1,     // open, cwnd >= ssthresh
  kFastRecovery = 2,  // between 3-dup-ack loss detection and the full ACK
  kLoss = 3,          // between an RTO and the ACK covering the loss point
};

std::string_view to_string(CaState s);

/// What first put the connection into a loss episode.
enum class LossReason : std::uint8_t {
  kNone = 0,
  kDupAck = 1,   // 3 duplicate ACKs (fast retransmit)
  kTimeout = 2,  // retransmission timer
};

std::string_view to_string(LossReason r);

/// Per-connection loss forensics, modelled on the bpf-tcp-measurements
/// collector structs: what started the first loss episode, how often each
/// CA state was entered, the dangerous recovery->loss transitions, and
/// retransmissions the module itself requested. Maintained by the
/// CongestionControl base class; aggregated across connections into the
/// tcp.cc.* registry counters by tcp::Connection.
struct LossForensics {
  LossReason first_loss_reason = LossReason::kNone;
  sim::Time first_loss_time = 0;  // valid iff first_loss_reason != kNone

  /// Entries into each CA state (indexed by CaState). kSlowStart counts
  /// re-entries after a loss episode, not the initial state.
  std::uint32_t ca_entries[4] = {0, 0, 0, 0};

  std::uint32_t enter_recovery = 0;    // 3-dup-ack episodes (incl. re-entries)
  std::uint32_t enter_loss = 0;        // RTO-driven episodes
  std::uint32_t recovery_to_loss = 0;  // RTO fired while in fast recovery
  std::uint32_t full_recoveries = 0;   // recovery exited by a full ACK
  std::uint32_t partial_ack_retransmits = 0;  // module-requested hole repairs
  /// RTOs whose collapse was contradicted by the very next ACK: it covered
  /// more than the post-RTO retransmission could explain, so the original
  /// flight had been delivered and the timeout was spurious. Counted, never
  /// undone (observational, keeps Reno byte-exact).
  std::uint32_t spurious_rtos = 0;
  std::uint32_t after_idle_resets = 0;  // idle-restart hook invocations
};

/// Snapshot of the sender state a hook may consult. Built by the connection
/// at every hook call; offsets are 64-bit stream positions (not wire seqs).
struct CcContext {
  sim::Time now = 0;
  std::uint32_t mss = 1460;
  std::uint32_t initial_cwnd = 2 * 1460;  // initial_cwnd_segments * mss
  std::uint64_t bytes_in_flight = 0;      // snd_next - snd_acked
  std::uint64_t snd_acked = 0;            // cumulative acked stream offset
  std::uint64_t snd_max = 0;              // highest offset ever transmitted
  sim::Time srtt = 0;                     // smoothed RTT (0 until measured)
  sim::Time min_rtt = 0;                  // min RTT observed (0 until measured)
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  static std::unique_ptr<CongestionControl> make(CcKind kind);

  virtual CcKind kind() const = 0;
  std::string_view name() const { return to_string(kind()); }

  // ---- Event hooks (called by tcp::Connection) --------------------------

  /// Connection entering SYN_SENT / SYN_RCVD: set the initial window.
  void init(const CcContext& ctx);

  /// A cumulative ACK advanced snd_acked by acked_bytes (possibly 0 when it
  /// covered only a FIN). Returns true when the module wants the first
  /// unacked segment retransmitted right now (NewReno partial-ACK repair);
  /// the connection owns the actual transmission.
  bool on_new_ack(const CcContext& ctx, std::size_t acked_bytes);

  /// A duplicate ACK (RFC 5681 definition) arrived; count includes this one.
  /// The 3-dup-ack loss detection itself stays in the connection, which
  /// calls on_loss_detected when the threshold hits.
  void on_duplicate_ack(const CcContext& ctx, std::uint32_t count);

  /// The connection's loss detector fired (3rd duplicate ACK). Returns true
  /// when the module (re-)entered fast recovery — only then does the
  /// connection fast-retransmit and count it. Reno always re-enters (and
  /// re-halves); NewReno-style modules decline while already recovering.
  bool on_loss_detected(const CcContext& ctx);

  /// The retransmission timer fired with data (or a FIN) outstanding.
  void on_timeout(const CcContext& ctx);

  /// A Karn-valid RTT measurement completed.
  void on_rtt_sample(const CcContext& ctx, sim::Time rtt);

  /// The connection was idle for at least one RTO and is about to send
  /// again (RFC 2861 restart). Reno keeps the legacy no-op behaviour.
  void after_idle(const CcContext& ctx);

  /// The connection detected that the most recent RTO was spurious (the
  /// next ACK covered data only the pre-RTO flight could have delivered).
  void note_spurious_rto();

  // ---- State the connection reads ---------------------------------------

  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  CaState ca_state() const;
  const LossForensics& forensics() const { return forensics_; }

 protected:
  // ---- Module hooks: window arithmetic only -----------------------------
  virtual void cc_init(const CcContext& ctx) = 0;
  /// Window growth for an ACK of acked_bytes. Called on every advancing ACK,
  /// including partial ACKs during recovery and ACKs during loss; modules
  /// that freeze the window while recovering check ca_state() themselves.
  virtual void cc_new_ack(const CcContext& ctx, std::size_t acked_bytes) = 0;
  virtual void cc_duplicate_ack(const CcContext& ctx, std::uint32_t count);
  /// Whether a 3-dup-ack event while already in fast recovery re-enters it
  /// (Reno: yes, re-halving; everyone else: no).
  virtual bool cc_reenter_recovery() const { return true; }
  /// Multiplicative decrease on entering fast recovery.
  virtual void cc_enter_fast_recovery(const CcContext& ctx) = 0;
  /// Full ACK ended the episode (fast recovery or loss).
  virtual void cc_exit_recovery(const CcContext& ctx);
  /// A partial ACK arrived during fast recovery. Return true to retransmit
  /// the next hole immediately (NewReno-style repair).
  virtual bool cc_partial_ack(const CcContext& ctx, std::size_t acked_bytes);
  /// Window collapse on RTO.
  virtual void cc_timeout(const CcContext& ctx) = 0;
  virtual void cc_rtt_sample(const CcContext& ctx, sim::Time rtt);
  virtual void cc_after_idle(const CcContext& ctx);

  /// The one shared flight/half computation (satellite: the RTO and 3-dup-ack
  /// paths used to re-derive this independently and could drift): half the
  /// conservatively-estimated flight, floored at two segments (RFC 5681).
  std::uint32_t halved_window(const CcContext& ctx) const;

  /// Reno/NewReno/CUBIC-slow-start shared growth: slow start adds one MSS
  /// per full MSS acked; congestion avoidance adds mss^2/cwnd per ACK.
  void reno_growth(const CcContext& ctx, std::size_t acked_bytes);

  bool in_recovery() const { return episode_ != Episode::kNone; }
  bool in_loss() const { return episode_ == Episode::kLoss; }

  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;

 private:
  enum class Episode : std::uint8_t { kNone, kFastRecovery, kLoss };

  void note_first_loss(LossReason reason, sim::Time now);

  Episode episode_ = Episode::kNone;
  /// Stream offset whose cumulative ACK ends the current episode (snd_max at
  /// episode entry, the RFC 6582 "recover" variable).
  std::uint64_t recovery_point_ = 0;
  LossForensics forensics_;
};

}  // namespace hsim::tcp
