// Per-connection TCP tunables.
//
// Defaults approximate a mid-1990s BSD-derived stack, which is the behaviour
// the paper's measurements depend on (200 ms delayed ACK, Nagle enabled,
// 1460-byte Ethernet MSS, slow start from a small initial window).
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "tcp/congestion.hpp"

namespace hsim::tcp {

struct TcpOptions {
  /// Maximum segment size (payload bytes per segment).
  std::uint32_t mss = 1460;

  /// Congestion-control module (tcp/congestion.hpp). kReno is byte-exact
  /// with the pre-refactor hard-wired behaviour and stays the default.
  CcKind cc = CcKind::kReno;

  /// Disables the Nagle algorithm (TCP_NODELAY). The paper recommends HTTP/1.1
  /// implementations that buffer output set this.
  bool nodelay = false;

  /// Delayed-ACK: hold a pure ACK hoping to piggyback it, up to
  /// `delayed_ack_timeout`, but always ACK every second full segment.
  bool delayed_ack = true;
  sim::Time delayed_ack_timeout = sim::milliseconds(200);

  /// Initial congestion window in segments. The paper notes "some TCP stacks
  /// implement slow start using one TCP segment whereas others use two".
  std::uint32_t initial_cwnd_segments = 2;

  /// Receive buffer = advertised window limit. Mid-1990s stacks typically
  /// defaulted to 8-16 KB socket buffers; 16 KB keeps a 28.8k modem's queue
  /// from overflowing while still covering the WAN bandwidth-delay product.
  std::uint32_t recv_buffer = 16384;

  /// Cap on unsent+unacked application data buffered in the sender.
  std::uint32_t send_buffer = 128 * 1024;

  /// Retransmission timer bounds (Jacobson/Karn estimator in between).
  sim::Time min_rto = sim::milliseconds(500);
  sim::Time max_rto = sim::seconds(60);
  sim::Time initial_rto = sim::seconds(3);

  /// Handshake give-up: abandon the connection attempt after the initial
  /// SYN (or SYN-ACK) plus this many retransmissions go unanswered; the
  /// application sees on_failed with ConnError::kConnectTimeout. 0 = retry
  /// forever (pre-fault-injection behaviour).
  std::uint32_t max_syn_retries = 6;

  /// Established-state give-up: after this many *consecutive* retransmission
  /// timeouts with no forward progress (no new data acked), the connection is
  /// torn down and on_failed fires with ConnError::kRetransmitTimeout instead
  /// of doubling the RTO through a dead link forever. 0 = never give up.
  std::uint32_t max_data_retransmits = 15;

  /// How long a fully-closed initiating endpoint lingers in TIME_WAIT.
  sim::Time time_wait_duration = sim::seconds(30);
};

}  // namespace hsim::tcp
