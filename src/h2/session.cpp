#include "h2/session.hpp"

#include <algorithm>
#include <cctype>

namespace hsim::h2 {

namespace {

std::string frame_metric_suffix(FrameType t) {
  std::string s(to_string(t));
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

constexpr std::uint8_t kAllFrameTypes[] = {
    static_cast<std::uint8_t>(FrameType::kData),
    static_cast<std::uint8_t>(FrameType::kHeaders),
    static_cast<std::uint8_t>(FrameType::kRstStream),
    static_cast<std::uint8_t>(FrameType::kSettings),
    static_cast<std::uint8_t>(FrameType::kPushPromise),
    static_cast<std::uint8_t>(FrameType::kGoAway),
    static_cast<std::uint8_t>(FrameType::kWindowUpdate),
};

}  // namespace

Session::Metrics Session::Metrics::bind() {
  Metrics m;
  if (obs::registry() == nullptr) return m;
  for (std::uint8_t t : kAllFrameTypes) {
    const std::string suffix = frame_metric_suffix(static_cast<FrameType>(t));
    m.frames_sent[t] = obs::counter_handle("h2.frames_sent." + suffix);
    m.frames_received[t] = obs::counter_handle("h2.frames_received." + suffix);
  }
  m.data_bytes_sent = obs::counter_handle("h2.data_bytes_sent");
  m.data_bytes_received = obs::counter_handle("h2.data_bytes_received");
  m.flow_stalls = obs::counter_handle("h2.flow_stalls");
  m.streams_opened = obs::counter_handle("h2.streams_opened");
  m.pushes_promised = obs::counter_handle("h2.pushes_promised");
  m.pushes_accepted = obs::counter_handle("h2.pushes_accepted");
  m.pushes_reset = obs::counter_handle("h2.pushes_reset");
  m.goaways_sent = obs::counter_handle("h2.goaways_sent");
  m.goaways_received = obs::counter_handle("h2.goaways_received");
  m.conn_errors = obs::counter_handle("h2.conn_errors");
  return m;
}

Session::Session(sim::EventQueue& clock, SessionConfig config, WriteFn write)
    : clock_(clock),
      config_(config),
      write_(std::move(write)),
      decoder_(config.max_frame_size),
      metrics_(Metrics::bind()),
      next_local_id_(config.is_server ? 2 : 1) {
  if (!config_.is_server) {
    buf::Chain preface;
    preface.append_copy(kClientPreface);
    write_(std::move(preface));
  }
  Frame settings;
  settings.type = FrameType::kSettings;
  settings.payload = encode_settings_payload({
      {kSettingsEnablePush, config_.enable_push ? 1u : 0u},
      {kSettingsMaxConcurrentStreams, config_.max_concurrent_streams},
      {kSettingsInitialWindowSize, config_.initial_window},
      {kSettingsMaxFrameSize, config_.max_frame_size},
  });
  emit(std::move(settings));
  if (config_.initial_window > kDefaultInitialWindow) {
    const std::uint32_t inc = config_.initial_window - kDefaultInitialWindow;
    Frame wu;
    wu.type = FrameType::kWindowUpdate;
    wu.payload = encode_window_update_payload(inc);
    emit(std::move(wu));
    conn_recv_window_ += inc;
  }
}

// ---------------------------------------------------------------------------
// Stream bookkeeping
// ---------------------------------------------------------------------------

Session::Stream& Session::open_stream(std::uint32_t id, bool is_push,
                                      std::uint8_t weight) {
  Stream s;
  s.id = id;
  s.weight = weight;
  s.is_push = is_push;
  s.send_window = peer_initial_window_;
  s.recv_window = config_.initial_window;
  s.tl.id = id;
  s.tl.push = is_push;
  s.tl.opened = clock_.now();
  stats_.streams_opened++;
  metrics_.streams_opened.inc();
  return streams_.emplace(id, std::move(s)).first->second;
}

Session::Stream* Session::find(std::uint32_t id) {
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

const Session::Stream* Session::find(std::uint32_t id) const {
  auto it = streams_.find(id);
  return it == streams_.end() ? nullptr : &it->second;
}

namespace {
bool is_closed(bool reset, bool local_closed, bool remote_closed) {
  return reset || (local_closed && remote_closed);
}
}  // namespace

void Session::maybe_close(Stream& s) {
  s.tl.reset = s.reset;
  if (is_closed(s.reset, s.local_closed, s.remote_closed) && s.tl.closed == 0)
    s.tl.closed = clock_.now();
}

bool Session::stream_closed(std::uint32_t id) const {
  const Stream* s = find(id);
  return s != nullptr && is_closed(s->reset, s->local_closed, s->remote_closed);
}

bool Session::stream_was_reset(std::uint32_t id) const {
  const Stream* s = find(id);
  return s != nullptr && s->reset;
}

const http::Response* Session::stream_partial(std::uint32_t id) const {
  const Stream* s = find(id);
  if (s == nullptr || !s->headers_received) return nullptr;
  return &s->response;
}

std::vector<StreamTimeline> Session::timelines() const {
  std::vector<StreamTimeline> out;
  out.reserve(streams_.size());
  for (const auto& [id, s] : streams_) out.push_back(s.tl);
  return out;
}

std::optional<std::int64_t> Session::stream_send_window(
    std::uint32_t id) const {
  const Stream* s = find(id);
  if (s == nullptr) return std::nullopt;
  return s->send_window;
}

std::size_t Session::open_stream_count() const {
  std::size_t n = 0;
  for (const auto& [id, s] : streams_)
    if (!is_closed(s.reset, s.local_closed, s.remote_closed)) ++n;
  return n;
}

std::size_t Session::queued_send_bytes() const {
  std::size_t n = 0;
  for (const auto& [id, s] : streams_) n += s.send_queue.size();
  return n;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

void Session::emit(Frame frame) {
  stats_.frames_sent++;
  metrics_.frames_sent[static_cast<std::uint8_t>(frame.type)].inc();
  write_(encode_frame(frame));
}

Session::Stream* Session::pick_next_stream() {
  if (conn_send_window_ <= 0) return nullptr;
  bool any = false;
  std::uint8_t best_weight = 0;
  for (const auto& [id, s] : streams_) {
    if (s.reset || s.send_queue.empty() || s.send_window <= 0) continue;
    if (!any || s.weight > best_weight) {
      best_weight = s.weight;
      any = true;
    }
  }
  if (!any) return nullptr;
  std::uint32_t last = 0;
  if (auto it = rr_last_.find(best_weight); it != rr_last_.end())
    last = it->second;
  Stream* first_eligible = nullptr;
  Stream* after_last = nullptr;
  for (auto& [id, s] : streams_) {
    if (s.reset || s.send_queue.empty() || s.send_window <= 0 ||
        s.weight != best_weight)
      continue;
    if (first_eligible == nullptr) first_eligible = &s;
    if (id > last && after_last == nullptr) {
      after_last = &s;
      break;
    }
  }
  Stream* chosen = after_last != nullptr ? after_last : first_eligible;
  rr_last_[best_weight] = chosen->id;
  return chosen;
}

void Session::pump_streams() {
  while (Stream* s = pick_next_stream()) {
    std::size_t n = s->send_queue.size();
    n = std::min(n, static_cast<std::size_t>(peer_max_frame_size_));
    n = std::min(n, static_cast<std::size_t>(s->send_window));
    n = std::min(n, static_cast<std::size_t>(conn_send_window_));
    Frame f;
    f.type = FrameType::kData;
    f.stream_id = s->id;
    f.payload = s->send_queue.split_front(n);
    const bool fin = s->send_queue.empty() && s->end_after_send;
    if (fin) f.flags |= kFlagEndStream;
    s->send_window -= static_cast<std::int64_t>(n);
    conn_send_window_ -= static_cast<std::int64_t>(n);
    s->stalled = false;
    s->tl.data_bytes += n;
    if (s->tl.first_data == 0) s->tl.first_data = clock_.now();
    stats_.data_bytes_sent += n;
    metrics_.data_bytes_sent.inc(n);
    emit(std::move(f));
    if (fin) {
      s->local_closed = true;
      maybe_close(*s);
    }
  }
  note_stalls();
}

void Session::note_stalls() {
  for (auto& [id, s] : streams_) {
    if (s.reset || s.send_queue.empty() || s.stalled) continue;
    if (s.send_window <= 0 || conn_send_window_ <= 0) {
      s.stalled = true;
      s.tl.flow_stalls++;
      stats_.flow_stalls++;
      metrics_.flow_stalls.inc();
    }
  }
}

// ---------------------------------------------------------------------------
// Public senders
// ---------------------------------------------------------------------------

std::uint32_t Session::submit_request(const http::Request& req,
                                      std::uint8_t weight) {
  const std::uint32_t id = next_local_id_;
  next_local_id_ += 2;
  Stream& s = open_stream(id, /*is_push=*/false, weight);
  Frame f;
  f.type = FrameType::kHeaders;
  // Simulated workloads (GET / conditional GET / HEAD) carry no request
  // body, so the request fits one HEADERS frame with END_STREAM.
  f.flags = kFlagEndHeaders | kFlagEndStream;
  f.stream_id = id;
  f.payload = encode_request_block(req);
  s.local_closed = true;
  s.tl.headers = clock_.now();
  emit(std::move(f));
  return id;
}

void Session::submit_response(std::uint32_t stream_id,
                              const http::Response& res) {
  Stream* s = find(stream_id);
  if (s == nullptr || s->reset || failed()) return;
  Frame f;
  f.type = FrameType::kHeaders;
  f.flags = kFlagEndHeaders;
  f.stream_id = stream_id;
  f.payload = encode_response_block(res);
  const bool has_body = !res.status_forbids_body() && !res.body.empty();
  if (!has_body) f.flags |= kFlagEndStream;
  if (s->tl.headers == 0) s->tl.headers = clock_.now();
  emit(std::move(f));
  if (has_body) {
    s->send_queue.append(res.body);
    s->end_after_send = true;
    pump_streams();
  } else {
    s->local_closed = true;
    maybe_close(*s);
  }
}

std::optional<std::uint32_t> Session::promise_push(std::uint32_t parent_stream,
                                                   const http::Request& req,
                                                   std::uint8_t weight) {
  if (!peer_enable_push_ || goaway_sent_ || goaway_received_ || failed())
    return std::nullopt;
  Stream* parent = find(parent_stream);
  if (parent == nullptr || parent->reset) return std::nullopt;
  const std::uint32_t id = next_local_id_;
  next_local_id_ += 2;
  Frame f;
  f.type = FrameType::kPushPromise;
  f.flags = kFlagEndHeaders;
  f.stream_id = parent_stream;
  f.payload = encode_push_promise_payload(id, req);
  Stream& s = open_stream(id, /*is_push=*/true, weight);
  // The client never sends on a promised stream.
  s.remote_closed = true;
  stats_.pushes_promised++;
  metrics_.pushes_promised.inc();
  emit(std::move(f));
  return id;
}

void Session::push_response(std::uint32_t promised_id,
                            const http::Response& res) {
  submit_response(promised_id, res);
}

void Session::reset_stream(std::uint32_t id, ErrorCode code) {
  if (failed()) return;
  Frame f;
  f.type = FrameType::kRstStream;
  f.stream_id = id;
  f.payload = encode_rst_payload(code);
  if (Stream* s = find(id)) {
    s->reset = true;
    s->send_queue.clear();
    s->end_after_send = false;
    maybe_close(*s);
  }
  emit(std::move(f));
}

void Session::send_goaway(ErrorCode code) {
  if (goaway_sent_) return;
  goaway_sent_ = true;
  Frame f;
  f.type = FrameType::kGoAway;
  f.payload = encode_goaway_payload(
      GoAway{last_processed_peer_id_, static_cast<std::uint32_t>(code)});
  stats_.goaways_sent++;
  metrics_.goaways_sent.inc();
  emit(std::move(f));
}

void Session::connection_error(ErrorCode code, std::string message) {
  if (error_) return;
  error_ = DecodeError{code, std::move(message)};
  stats_.conn_errors++;
  metrics_.conn_errors.inc();
  // Announce the failure even if a clean GOAWAY already went out — the
  // error code is the attribution the peer's forensics key on.
  goaway_sent_ = false;
  send_goaway(code);
  if (on_connection_error) on_connection_error(*error_);
}

// ---------------------------------------------------------------------------
// Input
// ---------------------------------------------------------------------------

void Session::receive(buf::Chain data) {
  if (failed()) return;
  decoder_.feed(std::move(data));
  while (!failed()) {
    std::optional<Frame> frame = decoder_.next();
    if (!frame) break;
    stats_.frames_received++;
    metrics_.frames_received[static_cast<std::uint8_t>(frame->type)].inc();
    switch (frame->type) {
      case FrameType::kData: handle_data(*frame); break;
      case FrameType::kHeaders: handle_headers(*frame); break;
      case FrameType::kRstStream: handle_rst(*frame); break;
      case FrameType::kSettings: handle_settings(*frame); break;
      case FrameType::kPushPromise: handle_push_promise(*frame); break;
      case FrameType::kGoAway: handle_goaway(*frame); break;
      case FrameType::kWindowUpdate: handle_window_update(*frame); break;
    }
  }
  if (decoder_.failed() && !error_) {
    const DecodeError err = *decoder_.error();
    connection_error(err.code, err.message);
  }
}

void Session::handle_settings(const Frame& f) {
  if (f.has_flag(kFlagAck)) return;
  auto settings = parse_settings_payload(f.payload);
  if (!settings) {
    connection_error(ErrorCode::kFrameSizeError, "malformed SETTINGS");
    return;
  }
  for (const Setting& s : *settings) {
    switch (s.id) {
      case kSettingsEnablePush:
        if (s.value > 1) {
          connection_error(ErrorCode::kProtocolError,
                           "ENABLE_PUSH must be 0 or 1");
          return;
        }
        peer_enable_push_ = s.value == 1;
        break;
      case kSettingsMaxConcurrentStreams:
        peer_max_concurrent_ = s.value;
        break;
      case kSettingsInitialWindowSize: {
        if (s.value > static_cast<std::uint32_t>(kMaxWindow)) {
          connection_error(ErrorCode::kFlowControlError,
                           "INITIAL_WINDOW_SIZE exceeds 2^31-1");
          return;
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(s.value) - peer_initial_window_;
        peer_initial_window_ = static_cast<std::int64_t>(s.value);
        for (auto& [id, st] : streams_) {
          if (st.reset) continue;
          st.send_window += delta;
          if (st.send_window > kMaxWindow) {
            connection_error(ErrorCode::kFlowControlError,
                             "stream window overflow via SETTINGS");
            return;
          }
        }
        break;
      }
      case kSettingsMaxFrameSize:
        if (s.value == 0) {
          connection_error(ErrorCode::kProtocolError, "MAX_FRAME_SIZE of 0");
          return;
        }
        peer_max_frame_size_ = s.value;
        break;
      default:
        break;  // unknown settings are ignored
    }
  }
  Frame ack;
  ack.type = FrameType::kSettings;
  ack.flags = kFlagAck;
  emit(std::move(ack));
  pump_streams();
}

void Session::handle_window_update(const Frame& f) {
  const std::uint32_t inc = *parse_window_update_payload(f.payload);
  if (inc == 0) {
    connection_error(ErrorCode::kProtocolError, "zero window increment");
    return;
  }
  if (f.stream_id == 0) {
    conn_send_window_ += inc;
    if (conn_send_window_ > kMaxWindow) {
      connection_error(ErrorCode::kFlowControlError,
                       "connection window overflow");
      return;
    }
  } else {
    Stream* s = find(f.stream_id);
    if (s == nullptr) {
      connection_error(ErrorCode::kProtocolError,
                       "WINDOW_UPDATE on idle stream " +
                           std::to_string(f.stream_id));
      return;
    }
    if (s->reset ||
        is_closed(s->reset, s->local_closed, s->remote_closed))
      return;  // late update for a finished stream
    s->send_window += inc;
    if (s->send_window > kMaxWindow) {
      connection_error(ErrorCode::kFlowControlError,
                       "stream window overflow");
      return;
    }
  }
  pump_streams();
}

void Session::account_receive(Stream* s, std::size_t n) {
  if (!config_.auto_window_update || n == 0) return;
  const std::uint32_t half = config_.initial_window / 2;
  conn_recv_consumed_ += static_cast<std::uint32_t>(n);
  if (conn_recv_consumed_ >= half) {
    Frame wu;
    wu.type = FrameType::kWindowUpdate;
    wu.payload = encode_window_update_payload(conn_recv_consumed_);
    conn_recv_window_ += conn_recv_consumed_;
    conn_recv_consumed_ = 0;
    emit(std::move(wu));
  }
  if (s != nullptr && !s->remote_closed && !s->reset) {
    s->recv_consumed += static_cast<std::uint32_t>(n);
    if (s->recv_consumed >= half) {
      Frame wu;
      wu.type = FrameType::kWindowUpdate;
      wu.stream_id = s->id;
      wu.payload = encode_window_update_payload(s->recv_consumed);
      s->recv_window += s->recv_consumed;
      s->recv_consumed = 0;
      emit(std::move(wu));
    }
  }
}

void Session::handle_data(Frame& f) {
  const std::size_t n = f.payload.size();
  conn_recv_window_ -= static_cast<std::int64_t>(n);
  if (conn_recv_window_ < 0) {
    connection_error(ErrorCode::kFlowControlError,
                     "DATA overruns connection window");
    return;
  }
  Stream* s = find(f.stream_id);
  if (s == nullptr) {
    connection_error(ErrorCode::kProtocolError,
                     "DATA on idle stream " + std::to_string(f.stream_id));
    return;
  }
  if (s->reset) {
    // In-flight data for a stream we cancelled: discard the payload but
    // return the connection window the peer charged for it.
    account_receive(nullptr, n);
    return;
  }
  if (s->remote_closed) {
    connection_error(ErrorCode::kProtocolError, "DATA on closed stream");
    return;
  }
  s->recv_window -= static_cast<std::int64_t>(n);
  if (s->recv_window < 0) {
    connection_error(ErrorCode::kFlowControlError,
                     "DATA overruns stream window");
    return;
  }
  if (!config_.is_server && !s->headers_received) {
    connection_error(ErrorCode::kProtocolError, "DATA before HEADERS");
    return;
  }
  if (s->tl.first_data == 0) s->tl.first_data = clock_.now();
  s->tl.data_bytes += n;
  stats_.data_bytes_received += n;
  metrics_.data_bytes_received.inc(n);
  const bool fin = f.has_flag(kFlagEndStream);
  if (config_.is_server) {
    f.payload.for_each([&](std::span<const std::uint8_t> run) {
      s->request.body.insert(s->request.body.end(), run.begin(), run.end());
    });
  } else {
    s->response.body.append(std::move(f.payload));
  }
  account_receive(fin ? nullptr : s, n);
  if (!config_.is_server && on_stream_data) on_stream_data(s->id, n);
  if (fin) {
    s->remote_closed = true;
    maybe_close(*s);
    if (config_.is_server) {
      last_processed_peer_id_ = std::max(last_processed_peer_id_, s->id);
      if (on_request) on_request(s->id, std::move(s->request));
    } else if (s->is_push) {
      if (on_push_response) on_push_response(s->id, std::move(s->response));
    } else {
      if (on_response) on_response(s->id, std::move(s->response));
    }
  }
}

void Session::handle_headers(const Frame& f) {
  if (config_.is_server) {
    // A new client-initiated stream.
    if ((f.stream_id & 1) == 0 || f.stream_id <= highest_peer_id_) {
      connection_error(ErrorCode::kProtocolError,
                       "bad client stream id " + std::to_string(f.stream_id));
      return;
    }
    highest_peer_id_ = f.stream_id;
    auto req = decode_request_block(f.payload);
    if (!req) {
      connection_error(ErrorCode::kProtocolError,
                       "malformed request header block");
      return;
    }
    if (goaway_sent_ ||
        open_stream_count() >= config_.max_concurrent_streams) {
      // Refused before any processing: the client may retry elsewhere.
      Frame rst;
      rst.type = FrameType::kRstStream;
      rst.stream_id = f.stream_id;
      rst.payload = encode_rst_payload(ErrorCode::kRefusedStream);
      emit(std::move(rst));
      return;
    }
    Stream& s = open_stream(f.stream_id, /*is_push=*/false, 16);
    s.tl.headers = clock_.now();
    if (f.has_flag(kFlagEndStream)) {
      s.remote_closed = true;
      s.request = std::move(*req);
      last_processed_peer_id_ = std::max(last_processed_peer_id_, s.id);
      if (on_request) on_request(s.id, std::move(s.request));
    } else {
      s.request = std::move(*req);  // body follows in DATA frames
    }
    return;
  }
  // Client side: response headers on a stream we opened or were promised.
  Stream* s = find(f.stream_id);
  if (s == nullptr) {
    connection_error(ErrorCode::kProtocolError,
                     "HEADERS on idle stream " + std::to_string(f.stream_id));
    return;
  }
  if (s->reset) return;  // in-flight response for a cancelled push
  if (s->headers_received) {
    connection_error(ErrorCode::kProtocolError, "duplicate HEADERS");
    return;
  }
  auto res = decode_response_block(f.payload);
  if (!res) {
    connection_error(ErrorCode::kProtocolError,
                     "malformed response header block");
    return;
  }
  s->headers_received = true;
  s->response = std::move(*res);
  if (s->tl.headers == 0) s->tl.headers = clock_.now();
  if (f.has_flag(kFlagEndStream)) {
    s->remote_closed = true;
    maybe_close(*s);
    if (s->is_push) {
      if (on_push_response) on_push_response(s->id, std::move(s->response));
    } else {
      if (on_response) on_response(s->id, std::move(s->response));
    }
  }
}

void Session::handle_push_promise(const Frame& f) {
  if (config_.is_server) {
    connection_error(ErrorCode::kProtocolError,
                     "PUSH_PROMISE from a client");
    return;
  }
  auto promise = parse_push_promise_payload(f.payload);
  if (!promise) {
    connection_error(ErrorCode::kProtocolError, "malformed PUSH_PROMISE");
    return;
  }
  if ((promise->promised_id & 1) != 0 ||
      promise->promised_id <= highest_peer_id_) {
    connection_error(ErrorCode::kProtocolError,
                     "bad promised stream id " +
                         std::to_string(promise->promised_id));
    return;
  }
  Stream* parent = find(f.stream_id);
  if (parent == nullptr) {
    connection_error(ErrorCode::kProtocolError,
                     "PUSH_PROMISE on idle stream");
    return;
  }
  highest_peer_id_ = promise->promised_id;
  Stream& s = open_stream(promise->promised_id, /*is_push=*/true, 8);
  s.local_closed = true;  // we never send on a promised stream
  s.tl.headers = clock_.now();
  const bool accept =
      config_.enable_push &&
      (!on_push_promise || on_push_promise(s.id, promise->request));
  if (accept) {
    stats_.pushes_accepted++;
    metrics_.pushes_accepted.inc();
  } else {
    stats_.pushes_reset++;
    metrics_.pushes_reset.inc();
    reset_stream(s.id, ErrorCode::kCancel);
  }
}

void Session::handle_rst(const Frame& f) {
  const std::uint32_t code = *parse_rst_payload(f.payload);
  Stream* s = find(f.stream_id);
  if (s == nullptr) return;  // already forgotten — benign
  if (s->reset) return;
  s->reset = true;
  s->send_queue.clear();
  s->end_after_send = false;
  maybe_close(*s);
  if (on_stream_reset)
    on_stream_reset(f.stream_id, static_cast<ErrorCode>(code));
}

void Session::handle_goaway(const Frame& f) {
  const GoAway g = *parse_goaway_payload(f.payload);
  goaway_received_ = true;
  peer_goaway_ = g;
  stats_.goaways_received++;
  metrics_.goaways_received.inc();
  if (on_goaway) on_goaway(g);
}

}  // namespace hsim::h2
